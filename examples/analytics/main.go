// Analytics: partition a skewed graph with Distributed NE, then run the
// engine's whole application suite over it — the paper's Table-5 workloads
// (SSSP, WCC, PageRank) plus BFS trees, k-core decomposition, triangle
// counting, label propagation, and a custom vertex program through the
// engine.Program interface.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/engine"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func main() {
	g := gen.RMAT(13, 16, 42)
	res, err := dne.Partition(g, 8, dne.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %v into 8 parts, RF %.3f\n\n",
		g, res.Partitioning.Measure(g).ReplicationFactor)

	e := engine.New(g, res.Partitioning)

	// Reachability + distances.
	dist := e.SSSP(0)
	reach, maxd := 0, int64(0)
	for _, d := range dist {
		if d != math.MaxInt64 {
			reach++
			if d > maxd {
				maxd = d
			}
		}
	}
	fmt.Printf("SSSP from 0: %d reachable, eccentricity %d (%d supersteps)\n",
		reach, maxd, e.Supersteps)

	// Components.
	e.ResetStats()
	labels := e.WCC()
	comps := map[graph.Vertex]int{}
	for v, l := range labels {
		if g.Degree(graph.Vertex(v)) > 0 {
			comps[l]++
		}
	}
	fmt.Printf("WCC: %d components among covered vertices\n", len(comps))

	// Structure: coreness and triangles.
	e.ResetStats()
	core := e.Coreness()
	var maxCore int32
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	tri := e.Triangles()
	fmt.Printf("degeneracy (max coreness): %d   triangles: %d\n", maxCore, tri)

	// Influence: PageRank top-3.
	e.ResetStats()
	pr := e.PageRank(20, 0.85)
	idx := make([]int, len(pr))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pr[idx[a]] > pr[idx[b]] })
	fmt.Printf("PageRank top-3: v%d (%.5f), v%d (%.5f), v%d (%.5f) — COM %.1f MB\n",
		idx[0], pr[idx[0]], idx[1], pr[idx[1]], idx[2], pr[idx[2]],
		float64(e.CommBytes)/(1<<20))

	// Communities.
	e.ResetStats()
	lpa := e.LabelPropagation(20)
	seen := map[graph.Vertex]struct{}{}
	for v, l := range lpa {
		if g.Degree(graph.Vertex(v)) > 0 {
			seen[l] = struct{}{}
		}
	}
	fmt.Printf("label propagation: %d communities after %d supersteps\n",
		len(seen), e.Supersteps)

	// Custom vertex program: average neighbor degree, one line per concept.
	deg := g.Degrees()
	avgNbr := e.Run(avgNeighborDegree{deg: deg}, 1)
	var hi graph.Vertex
	for v := range avgNbr {
		if avgNbr[v] > avgNbr[hi] {
			hi = graph.Vertex(v)
		}
	}
	fmt.Printf("custom program: vertex %d has the best-connected neighborhood (avg nbr degree %.1f)\n",
		hi, avgNbr[hi])
}

// avgNeighborDegree computes each vertex's mean neighbor degree in one
// gather round — the kind of one-off analytic the Program interface exists
// for.
type avgNeighborDegree struct{ deg []int64 }

func (p avgNeighborDegree) Init(graph.Vertex) float64 { return 0 }
func (p avgNeighborDegree) Gather(u graph.Vertex, _ float64, _ graph.Vertex) float64 {
	return float64(p.deg[u])
}
func (p avgNeighborDegree) Apply(v graph.Vertex, _, sum float64) (float64, bool) {
	if p.deg[v] == 0 {
		return 0, false
	}
	return sum / float64(p.deg[v]), true
}
