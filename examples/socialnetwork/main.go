// Socialnetwork: the paper's motivating scenario (§1) — partition a skewed
// social graph, then run PageRank, SSSP and WCC on a vertex-cut engine and
// watch partition quality turn into communication savings (Table 5).
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/engine"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	spec, _ := datasets.ByName("Orkut")
	g := spec.Build(0)
	fmt.Printf("social graph stand-in %s: %v\n\n", spec.Name, g)

	const parts = 16
	for _, name := range []string{"random", "dne"} {
		pr, spec, err := methods.New(name, partition.NewSpec(parts, 7))
		if err != nil {
			log.Fatal(err)
		}
		res, err := pr.Partition(context.Background(), g, spec)
		if err != nil {
			log.Fatal(err)
		}
		q := res.Quality
		e := engine.New(g, res.Partitioning)

		start := time.Now()
		ranks := e.PageRank(10, 0.85)
		prTime := time.Since(start)
		prComm := e.CommBytes

		e.ResetStats()
		start = time.Now()
		dist := e.SSSP(0)
		ssspTime := time.Since(start)
		ssspComm := e.CommBytes

		e.ResetStats()
		start = time.Now()
		labels := e.WCC()
		wccTime := time.Since(start)
		wccComm := e.CommBytes

		fmt.Printf("%-6s RF=%.2f  EB=%.2f\n", pr.Name(), q.ReplicationFactor, q.EdgeBalance)
		fmt.Printf("  PageRank(10): %8v  comm %6.1f MB\n", prTime, mb(prComm))
		fmt.Printf("  SSSP:         %8v  comm %6.1f MB\n", ssspTime, mb(ssspComm))
		fmt.Printf("  WCC:          %8v  comm %6.1f MB\n\n", wccTime, mb(wccComm))

		// Keep the compiler honest about results being real.
		_ = ranks[0]
		_ = dist[0]
		_ = labels[0]
	}
	fmt.Println("The DNE rows should show several-fold lower communication at similar")
	fmt.Println("or better runtime — the paper's Table 5 effect.")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
