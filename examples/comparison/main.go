// Comparison: run every partitioner in the repository on one skewed graph
// and print a Fig-8-style quality/performance table.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/lppart"
	"github.com/distributedne/dne/internal/metispart"
	"github.com/distributedne/dne/internal/nepart"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/sheep"
	"github.com/distributedne/dne/internal/streampart"
)

func main() {
	spec, _ := datasets.ByName("Pokec")
	g := spec.Build(0)
	const parts = 32
	fmt.Printf("%s stand-in, %v, %d partitions\n\n", spec.Name, g, parts)

	partitioners := []partition.Partitioner{
		hashpart.Random{Seed: 1},
		hashpart.Grid{Seed: 1},
		hashpart.DBH{Seed: 1},
		hashpart.Hybrid{Seed: 1},
		hashpart.Oblivious{Seed: 1},
		hashpart.HybridGinger{Seed: 1},
		streampart.HDRF{Seed: 1},
		streampart.SNE{Seed: 1},
		nepart.NE{Seed: 1},
		sheep.Sheep{Seed: 1},
		lppart.Spinner{Seed: 1},
		lppart.XtraPuLP{Seed: 1},
		&metispart.METIS{Seed: 1},
		dne.New(),
	}
	t := &bench.Table{Header: []string{"partitioner", "RF", "edge-bal", "vert-bal", "time"}}
	for _, pr := range partitioners {
		run := bench.Execute(pr, g, parts)
		if run.Err != nil {
			log.Fatalf("%s: %v", pr.Name(), run.Err)
		}
		t.Add(pr.Name(), run.Quality.ReplicationFactor, run.Quality.EdgeBalance,
			run.Quality.VertexBalance, run.Elapsed)
	}
	t.Print(os.Stdout)
	fmt.Println("\nNE should have the lowest RF, D.NE close behind at a fraction of the time;")
	fmt.Println("hash methods (Rand./2D-R./DBH) sit far above — the paper's Fig. 8 / Table 4 shape.")
}
