// Comparison: run every partitioner in the repository on one skewed graph
// and print a Fig-8-style quality/performance table.
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	spec, _ := datasets.ByName("Pokec")
	g := spec.Build(0)
	const parts = 32
	fmt.Printf("%s stand-in, %v, %d partitions\n\n", spec.Name, g, parts)

	// Every registered method, straight from the registry.
	t := &bench.Table{Header: []string{"partitioner", "RF", "edge-bal", "vert-bal", "time"}}
	for _, name := range methods.Names() {
		pr, spec, err := methods.New(name, partition.NewSpec(parts, 1))
		if err != nil {
			log.Fatal(err)
		}
		run := bench.Execute(context.Background(), pr, g, spec)
		if run.Err != nil {
			log.Fatalf("%s: %v", pr.Name(), run.Err)
		}
		t.Add(pr.Name(), run.Quality.ReplicationFactor, run.Quality.EdgeBalance,
			run.Quality.VertexBalance, run.Elapsed)
	}
	t.Print(os.Stdout)
	fmt.Println("\nNE should have the lowest RF, D.NE close behind at a fraction of the time;")
	fmt.Println("hash methods (Rand./2D-R./DBH) sit far above — the paper's Fig. 8 / Table 4 shape.")
}
