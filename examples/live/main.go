// Live graphs: the §8 dynamic-graph extension as a serving subsystem.
// Edges arrive and depart while the graph answers queries — arrivals are
// placed incrementally by the replica-aware greedy partitioner, land in
// append-only EShard logs, accumulate in a mutable overlay over the
// immutable CSR base, and a compactor folds them into fresh epochs that
// readers pin and never block on. The same directory reopens to the
// bit-identical graph after a graceful Close.
//
//	go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/live"
)

func main() {
	dir, err := os.MkdirTemp("", "example-live-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open an empty live graph: 8 partitions, seeded placement. The
	//    directory will hold the partitioner checkpoint (state.dls) and the
	//    append-only per-partition logs (part-NNNN.esh / dead-NNNN.esh).
	const parts, seed = 8, 42
	lv, err := live.Open(dir, live.Config{NumParts: parts, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Today's traffic: a seeded churn stream (10% deletions) over a
	//    skewed social graph. Apply ingests a batch — greedy placement,
	//    log append, overlay update — and publishes ONE new epoch per
	//    batch: the batch is the visibility granularity.
	g := gen.RMAT(13, 16, seed)
	stream := dynpart.Churn(g, 300_000, 0.1, seed)
	const batch = 4096
	for lo := 0; lo < len(stream); lo += batch {
		hi := min(lo+batch, len(stream))
		if _, err := lv.Apply(stream[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	st := lv.Stats()
	fmt.Printf("ingested %d events: |E|=%d RF=%.3f balance=%.3f epoch=%d (%d auto-compactions)\n",
		len(stream), st.NumEdges, st.ReplicationFactor, st.EdgeBalance, st.Epoch, st.Compactions)

	// 3. Readers pin an epoch once and query a frozen view. Compaction
	//    publishes a NEW epoch; the pinned one stays valid and immutable,
	//    so the answers below are batch-consistent even though the base
	//    CSR is rebuilt underneath.
	ep := lv.Epoch()
	before, err := ep.Neighbors(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := lv.Compact(); err != nil {
		log.Fatal(err)
	}
	after, err := ep.Neighbors(0) // same pinned epoch: identical answer
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned epoch %d: deg(0)=%d before compaction, %d after (frozen view)\n",
		ep.Seq(), len(before), len(after))
	hop, err := lv.Epoch().KHop(context.Background(), 0, 2) // fresh epoch sees the compacted base
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh epoch %d: 2-hop from 0 visits %d vertices (%d cross-shard hops)\n",
		lv.Epoch().Seq(), len(hop.Vertices), hop.CrossShardHops)

	// 4. Greedy placement keeps insert streams balanced on its own, so give
	//    the rebalancer real work: a correlated departure wave empties half
	//    of each low partition, pushing the others over the α cap. The
	//    bounded rebalance then migrates at most `budget` edges, each as a
	//    delete+re-add pair through the same logs, so durability and
	//    epochs see it as ordinary traffic.
	ep = lv.Epoch()
	var wave []dynpart.Event
	for s := 0; s < ep.NumShards()/2; s++ {
		packed := ep.ShardEdgesPacked(s)
		for _, k := range packed[:len(packed)/2] {
			wave = append(wave, dynpart.Event{Op: dynpart.Remove, Edge: graph.UnpackEdge(k)})
		}
	}
	if _, err := lv.Apply(wave); err != nil {
		log.Fatal(err)
	}
	moved, err := lv.Rebalance(5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("departure wave of %d edges, then rebalance moved %d (%d bytes migrated)\n",
		len(wave), moved, lv.Stats().MigratedBytes)

	// 5. Close seals the logs (terminator + footer) and checkpoints the
	//    partitioner state; reopening the directory replays to the
	//    bit-identical graph — same (edge, owner) checksum.
	sum := lv.Checksum()
	if err := lv.Close(); err != nil {
		log.Fatal(err)
	}
	lv2, err := live.Open(dir, live.Config{}) // parts/seed adopted from the checkpoint
	if err != nil {
		log.Fatal(err)
	}
	defer lv2.Close()
	if lv2.Checksum() != sum {
		log.Fatalf("restart drifted: %#x != %#x", lv2.Checksum(), sum)
	}
	fmt.Printf("reopened from disk: checksum %#x unchanged across restart\n", sum)
}
