// Quickstart: partition a synthetic skewed graph with Distributed NE and
// inspect the result. This is the smallest end-to-end use of the library:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/gen"
)

func main() {
	// 1. A skewed graph: RMAT with 2^14 vertices and ~16 edges per vertex
	//    (the Graph500 parameters the paper's synthetic evaluation uses).
	g := gen.RMAT(14, 16, 42)
	fmt.Printf("input: %v (max degree %d)\n", g, g.MaxDegree())

	// 2. Partition it 8 ways with the paper's default parameters
	//    (imbalance α = 1.1, multi-expansion λ = 0.1).
	cfg := dne.DefaultConfig()
	cfg.Seed = 42
	res, err := dne.Partition(g, 8, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect quality and execution metrics.
	q := res.Partitioning.Measure(g)
	fmt.Printf("replication factor: %.3f (lower is better; random hashing gives ~%0.1f)\n",
		q.ReplicationFactor, 6.0)
	fmt.Printf("edge balance: %.3f (target α = 1.1; multi-expansion batches can overshoot slightly)\n", q.EdgeBalance)
	fmt.Printf("supersteps: %d   inter-machine traffic: %.1f MB   mem score: %.1f B/edge\n",
		res.Iterations, float64(res.CommBytes)/(1<<20), res.MemScore(g.NumEdges()))

	// 4. The per-edge assignment is in res.Partitioning.Owner, aligned with
	//    g.Edges(); per-partition sizes:
	fmt.Println("partition sizes:", res.Partitioning.EdgeCounts())

	// 5. The communication is fully accounted, so the network time a real
	//    cluster would add is estimable under an alpha-beta cost model.
	fmt.Printf("simulated network time: %v (InfiniBand EDR) / %v (10GbE)\n",
		res.SimulatedNetworkTime(cluster.InfiniBandEDR(), 8),
		res.SimulatedNetworkTime(cluster.TenGbE(), 8))
}
