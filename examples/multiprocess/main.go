// Multiprocess: run Distributed NE across real OS processes with per-rank
// edge shards as the unit of input. This example builds cmd/gengraph and
// cmd/dneworker, writes the input as shard files, launches one worker per
// machine, and lets them shuffle + partition over the TCP transport — the
// closest local analogue of the paper's multi-machine deployment. No worker
// process ever holds the full graph.
//
// Run from the repository root:
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

func main() {
	const (
		size  = 4
		addr  = "127.0.0.1:17750"
		scale = "11"
		ef    = "8"
	)
	tmp, err := os.MkdirTemp("", "dne-multiprocess")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	workerBin := filepath.Join(tmp, "dneworker")
	genBin := filepath.Join(tmp, "gengraph")
	for _, b := range [][2]string{{workerBin, "./cmd/dneworker"}, {genBin, "./cmd/gengraph"}} {
		build := exec.Command("go", "build", "-o", b[0], b[1])
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			log.Fatalf("building %s: %v", b[1], err)
		}
	}

	shardDir := filepath.Join(tmp, "shards")
	gen := exec.Command(genBin, "-kind", "rmat", "-scale", scale, "-ef", ef,
		"-shards", fmt.Sprint(2*size), "-shard-dir", shardDir)
	gen.Stdout, gen.Stderr = os.Stdout, os.Stderr
	if err := gen.Run(); err != nil {
		log.Fatalf("writing shards: %v", err)
	}

	fmt.Printf("launching %d worker processes (router at %s, shards in %s)...\n", size, addr, shardDir)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cmd := exec.Command(workerBin,
				"-rank", fmt.Sprint(rank),
				"-size", fmt.Sprint(size),
				"-addr", addr,
				"-shard-dir", shardDir,
			)
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			errs[rank] = cmd.Run()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			log.Fatalf("worker %d failed: %v", rank, err)
		}
	}
	fmt.Println("all workers finished; the rank-0 RESULT line above is the partitioning.")
}
