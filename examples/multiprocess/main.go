// Multiprocess: run Distributed NE across real OS processes. This example
// builds cmd/dneworker, launches one worker per machine, and lets them
// partition the same deterministic RMAT graph over the TCP transport —
// the closest local analogue of the paper's multi-machine deployment.
//
// Run from the repository root:
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

func main() {
	const (
		size  = 4
		addr  = "127.0.0.1:17750"
		scale = "11"
		ef    = "8"
	)
	bin := filepath.Join(os.TempDir(), "dneworker-example")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dneworker")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		log.Fatalf("building dneworker: %v", err)
	}
	defer os.Remove(bin)

	fmt.Printf("launching %d worker processes (router at %s)...\n", size, addr)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cmd := exec.Command(bin,
				"-rank", fmt.Sprint(rank),
				"-size", fmt.Sprint(size),
				"-addr", addr,
				"-rmat", scale,
				"-ef", ef,
			)
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			errs[rank] = cmd.Run()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			log.Fatalf("worker %d failed: %v", rank, err)
		}
	}
	fmt.Println("all workers finished; the rank-0 RESULT line above is the partitioning.")
}
