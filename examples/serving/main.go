// Serving: the offline-build / online-serve split. Partition a graph with
// two methods of very different replication factor, materialize each result
// into a sharded query store, serve the same traversal workload from both,
// and watch the better partitioning pay fewer cross-shard hops. Finally,
// snapshot a store and restore it — the restart path a server uses to come
// back without re-partitioning.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

func main() {
	ctx := context.Background()

	// 1. One graph, two partitionings: random hashing (high RF) vs NE
	//    (low RF). The spec is identical; only the method differs.
	g := gen.RMAT(12, 8, 42)
	fmt.Printf("input: %v\n\n", g)
	spec := partition.NewSpec(8, 42)

	stores := map[string]*store.Store{}
	for _, name := range []string{"random", "ne"} {
		pr, resolved, err := methods.New(name, spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pr.Partition(ctx, g, resolved)
		if err != nil {
			log.Fatal(err)
		}
		// 2. Build: per-shard CSR stores + vertex→master routing table +
		//    mirror index, straight from the partitioner result.
		st, err := store.Build(g, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s RF %.3f → %d shards, %d vertex replicas\n",
			pr.Name(), res.Quality.ReplicationFactor, st.NumShards(), st.TotalReplicas())
		stores[name] = st
	}

	// 3. Point queries route by the mirror index: degree sums over every
	//    replica shard, neighbors concatenate disjoint per-shard lists.
	st := stores["ne"]
	v := uint32(7)
	deg, _ := st.Degree(v)
	ns, _ := st.Neighbors(v)
	master, _ := st.Master(v)
	fmt.Printf("\nvertex %d: master shard %d, replicas %v, degree %d, first neighbors %v\n",
		v, master, st.Replicas(v), deg, ns[:min(5, len(ns))])

	// 4. Traversals fan out one goroutine per shard and merge frontiers.
	hop, err := st.KHop(ctx, v, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-hop from %d: %d vertices, levels %v, %d cross-shard hops, %d shard tasks\n",
		v, len(hop.Vertices), hop.LevelSizes, hop.CrossShardHops, hop.ShardTasks)

	// 5. Same workload against both stores: replication factor becomes a
	//    measured serving cost.
	fmt.Println()
	cfg := bench.ServingConfig{Queries: 2000, Workers: 4, KHopRatio: 0.3, KHopK: 2, Seed: 7}
	for _, name := range []string{"random", "ne"} {
		rep, err := bench.RunServing(ctx, stores[name], cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %6.0f qps   p95 %v   %.2f hops/query\n",
			name, rep.Throughput, rep.LatencyP95, rep.HopsPerQuery)
	}

	// 6. Snapshot round trip: a restarted server reads the snapshot and
	//    serves identical answers without re-partitioning.
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, st); err != nil {
		log.Fatal(err)
	}
	snapBytes := buf.Len()
	restored, err := store.ReadSnapshot(&buf)
	if err != nil {
		log.Fatal(err)
	}
	d2, _ := restored.Degree(v)
	fmt.Printf("\nsnapshot: %d bytes; restored store degree(%d) = %d (same answer, no re-partitioning)\n",
		snapBytes, v, d2)
}
