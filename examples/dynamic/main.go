// Dynamic graphs (§8 future work): partition a snapshot with Distributed NE,
// then maintain the partitioning incrementally while the graph churns —
// insertions placed greedily with the neighbor-expansion heuristics,
// deletions retracting replicas exactly, and a periodic bounded rebalance.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
)

func main() {
	const parts = 16

	// 1. Yesterday's snapshot of a skewed social graph, partitioned offline
	//    with Distributed NE.
	snapshot := gen.RMAT(13, 16, 42)
	res, err := dne.Partition(snapshot, parts, dne.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %v, DNE RF %.3f in %d supersteps\n",
		snapshot, res.Partitioning.Measure(snapshot).ReplicationFactor, res.Iterations)

	// 2. Seed the incremental maintainer from the static result.
	d, err := dynpart.FromStatic(snapshot, res.Partitioning, dynpart.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded: %d edges, live-vertex RF %.3f\n", d.NumEdges(), d.ReplicationFactor())

	// 3. Today's churn: edges from a future region of the graph arrive
	//    (growth), 20% of events are unfriendings (deletions).
	future := gen.RMAT(13, 16, 43)
	stream := dynpart.Churn(future, 200_000, 0.2, 7)
	const batch = 50_000
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		d.Apply(stream[lo:hi])
		moved := d.Rebalance(1000) // bounded Leopard-style re-examination
		fmt.Printf("after %7d events: |E|=%7d RF=%.3f edge-balance=%.3f (rebalanced %d)\n",
			hi, d.NumEdges(), d.ReplicationFactor(), d.EdgeBalance(), moved)
	}

	// 4. Consistency is checkable at any time (O(|E|)).
	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants hold; total migrated edges:", d.Moved())
}
