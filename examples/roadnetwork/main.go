// Roadnetwork: the §7.7 non-skewed case. On near-planar, low-degree road
// networks the vertex partitioners (METIS-family) reach RF ≈ 1.0 and
// Distributed NE matches them, while hash-based edge partitioners stay far
// worse — the paper's argument that DNE is safe to use even off its target
// workload.
//
//	go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	const parts = 64
	t := &bench.Table{Header: []string{"graph", "Rand.", "2D-R.", "ParMETIS", "Sheep", "D.NE", "thm1-bound"}}
	for _, rd := range datasets.Roads {
		g := rd.Build(0)
		cells := []any{fmt.Sprintf("%s %v", rd.Name, g)}
		for _, name := range []string{"random", "grid", "metis", "sheep", "dne"} {
			pr, spec, err := methods.New(name, partition.NewSpec(parts, 3))
			if err != nil {
				log.Fatal(err)
			}
			run := bench.Execute(context.Background(), pr, g, spec)
			if run.Err != nil {
				log.Fatalf("%s: %v", pr.Name(), run.Err)
			}
			cells = append(cells, run.Quality.ReplicationFactor)
		}
		cells = append(cells, bound.Theorem1(g.NumEdges(), int64(g.NumVertices()), parts))
		t.Add(cells...)
	}
	t.Print(os.Stdout)
	fmt.Println("\nExpected shape (paper Table 6): hash methods ~3.5, ParMETIS/Sheep/D.NE ~1.0.")
}
