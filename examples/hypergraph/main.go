// Hypergraphs (§8 future work): lift parallel neighbor expansion from edges
// to hyperedges and compare it against hashing and HDRF-style streaming on a
// skewed hypergraph (group memberships, multi-author papers, multi-item
// transactions...).
//
//	go run ./examples/hypergraph
package main

import (
	"fmt"
	"log"

	"github.com/distributedne/dne/internal/hyperpart"
)

func main() {
	// A skewed hypergraph: 16k hyperedges averaging 5 pins over 8k vertices,
	// pin popularity Zipf-distributed (a few celebrity vertices appear in
	// thousands of groups).
	h := hyperpart.RandomHypergraph(1<<13, 16_000, 5, 42)
	fmt.Printf("hypergraph: |V|=%d hyperedges=%d pins=%d\n",
		h.NumVertices(), h.NumHyperedges(), h.NumPins())

	// Clique expansion explodes quadratically — the reason hypergraph-native
	// partitioning exists.
	clique := hyperpart.CliqueExpansion(h)
	fmt.Printf("clique expansion would need %d graph edges (%.1fx the pins)\n\n",
		clique.NumEdges(), float64(clique.NumEdges())/float64(h.NumPins()))

	const parts = 16
	fmt.Printf("%-8s %12s %12s %12s\n", "method", "RF", "pin-balance", "edge-balance")
	for _, pr := range []hyperpart.Partitioner{
		hyperpart.Random{Seed: 1},
		hyperpart.Greedy{Seed: 1},
		hyperpart.NE{Seed: 1},
	} {
		pt, err := pr.Partition(h, parts)
		if err != nil {
			log.Fatal(err)
		}
		if err := pt.Validate(h); err != nil {
			log.Fatal(err)
		}
		q := pt.Measure(h)
		fmt.Printf("%-8s %12.3f %12.3f %12.3f\n", pr.Name(), q.ReplicationFactor, q.PinBalance, q.EdgeBalance)
	}
	fmt.Println("\nH-NE is the paper's parallel expansion lifted to hyperedges:")
	fmt.Println("every part grows from a seed hyperedge, claiming the incident")
	fmt.Println("hyperedge that adds the fewest new replicas.")
}
