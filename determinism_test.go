package dnebench

import (
	"context"
	"hash/fnv"
	"testing"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// ownersChecksum is partition.Checksum — the shared currency that dnepart
// -checksum and the multi-process dneworker print, so the golden values
// below are directly comparable with CLI output.
func ownersChecksum(owner []int32) uint64 { return partition.Checksum(owner) }

// Most checksums below were produced by the map/comparator-sort
// implementations that predate internal/dsa (the hash-map boundaries, the
// sort.Slice CSR build, the per-machine subgraph scans); the dense rewrite
// reproduces them bit for bit. The four replica-greedy streaming methods
// (hdrf, sne, fennel, oblivious) were re-goldened when the input API moved
// to edge sources: their in-memory rng.Perm(|E|) — which requires random
// access to the whole edge list — became the O(|E|/B)-memory streaming
// bucket shuffle (graph.Shuffled), a different but equally deterministic
// seeded order. Every other method, including the order-independent
// streaming hash rules (random, grid, dbh, hybrid) and ginger, is unchanged
// from the pre-dsa output. Same partition.Spec (seed) ⇒ same Partitioning,
// for every registered method, on both the graph and the source path
// (TestSourcePathMatchesInMemory below).

func graphChecksum(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range g.Edges() {
		buf[0], buf[1], buf[2], buf[3] = byte(e.U), byte(e.U>>8), byte(e.U>>16), byte(e.U>>24)
		buf[4], buf[5], buf[6], buf[7] = byte(e.V), byte(e.V>>8), byte(e.V>>16), byte(e.V>>24)
		h.Write(buf[:])
	}
	for v := graph.Vertex(0); v < g.NumVertices(); v++ {
		ie := g.IncidentEdges(v)
		for i, nb := range g.Neighbors(v) {
			buf[0], buf[1], buf[2], buf[3] = byte(nb), byte(nb>>8), byte(nb>>16), byte(nb>>24)
			buf[4], buf[5], buf[6], buf[7] = byte(ie[i]), byte(ie[i]>>8), byte(ie[i]>>16), byte(ie[i]>>24)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestGraphBuildGolden(t *testing.T) {
	if got := graphChecksum(gen.RMAT(12, 8, 7)); got != 0x861602950186f519 {
		t.Fatalf("RMAT(12,8,7) graph checksum %#x changed (edges or CSR layout differ from the pre-dsa build)", got)
	}
	if got := graphChecksum(gen.Road(48, 48, 3)); got != 0x7add2b10d585a25 {
		t.Fatalf("Road(48,48,3) graph checksum %#x changed", got)
	}
}

func TestSeededPartitioningsGolden(t *testing.T) {
	golden := map[string]map[string]uint64{
		"rmat12": {
			"dbh":       0xbffd72f4e31363d2,
			"distlp":    0x9ae611968fb9abd7,
			"dne":       0x4b30ae3631512257,
			"fennel":    0x376e7b2745cf56e3,
			"ginger":    0x2fd4affa7fdfd472,
			"grid":      0x387902484d2ebfb3,
			"hdrf":      0xb14938594be6f7b5,
			"hybrid":    0xa3191c3543d1f451,
			"hyperne":   0xa179c2c51bda1922,
			"metis":     0xdfec932faa158691,
			"ne":        0x156a04e9a1f79e51,
			"oblivious": 0x376e7b2745cf56e3,
			"random":    0xdc2f30f3ebb52141,
			"sheep":     0x32fff370a3dba6e6,
			"sne":       0x20eb0f1f3b23da87,
			"spinner":   0xa3e562226d0d1582,
			"xtrapulp":  0xbea748b41315df3,
		},
		"road48": {
			"dbh":       0xa8627938ae39f763,
			"distlp":    0x9a8262c1cb0e8687,
			"dne":       0x28600f34e6ea3ae3,
			"fennel":    0x7431a426ea7b4580,
			"ginger":    0xfdc7021ab9aa02c4,
			"grid":      0x9048c3b95dcfff76,
			"hdrf":      0xb78f089113cb0a83,
			"hybrid":    0x19194b08b14c9d77,
			"hyperne":   0xd2755c4c77aeb315,
			"metis":     0x634a4b33bc4d49c3,
			"ne":        0x2e756c365a468980,
			"oblivious": 0x7431a426ea7b4580,
			"random":    0x6d7c8e4a77840284,
			"sheep":     0xbb7bef9bc890a434,
			"sne":       0x1d5fb3f801523726,
			"spinner":   0xc1aa2bd08ab55a14,
			"xtrapulp":  0xa92c8f0858f9f737,
		},
	}
	graphs := map[string]*graph.Graph{
		"rmat12": gen.RMAT(12, 8, 7),
		"road48": gen.Road(48, 48, 3),
	}
	for glabel, want := range golden {
		g := graphs[glabel]
		for name, sum := range want {
			t.Run(glabel+"/"+name, func(t *testing.T) {
				if testing.Short() && glabel == "road48" {
					t.Skip("short: one graph is enough")
				}
				p, spec, err := methods.New(name, partition.Spec{NumParts: 8, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.Partition(context.Background(), g, spec)
				if err != nil {
					t.Fatal(err)
				}
				if got := ownersChecksum(res.Partitioning.Owner); got != sum {
					t.Fatalf("%s on %s: seeded partitioning checksum %#x, want %#x (pre-dsa output)", name, glabel, got, sum)
				}
			})
		}
	}
}

// TestDynamicSeededStreamGolden pins the dynamic partitioner to its seeded
// output: a churn stream applied with interleaved bounded rebalancing must
// be a pure function of (stream, seed). The second case seeds from a
// maximally skewed static assignment so the migration path — previously a
// Go map iteration, now sorted canonical order — does real work (thousands
// of moves) under the checksum.
func TestDynamicSeededStreamGolden(t *testing.T) {
	t.Run("churn", func(t *testing.T) {
		g := gen.RMAT(10, 8, 7)
		d, err := dynpart.New(8, dynpart.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		events := dynpart.Churn(g, 20000, 0.2, 7)
		for i := 0; i < len(events); i += 1000 {
			end := min(i+1000, len(events))
			d.Apply(events[i:end])
			d.Rebalance(256)
		}
		if got := d.Checksum(); got != 0xf39bcedd789c988e {
			t.Fatalf("seeded churn checksum %#x changed", got)
		}
	})
	t.Run("rebalance", func(t *testing.T) {
		g := gen.RMAT(10, 8, 7)
		p := partition.New(8, g.NumEdges())
		for i := range p.Owner {
			p.Owner[i] = 0
		}
		d, err := dynpart.FromStatic(g, p, dynpart.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		moved := d.Rebalance(4000)
		d.Apply(dynpart.Churn(g, 10000, 0.3, 7))
		moved += d.Rebalance(4000)
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if moved == 0 {
			t.Fatal("rebalance moved nothing; the migration path is not exercised")
		}
		if got := d.Checksum(); got != 0xabb74040e0b9b326 {
			t.Fatalf("seeded rebalance checksum %#x changed (moved %d)", got, moved)
		}
	})
}

// writeCanonicalShards writes g as count canonical EShard stripes into a
// fresh directory and returns it. Read back in shard-index order the
// stripes replay the canonical edge list, which is what makes the source
// path comparable bit for bit with the in-memory path.
func writeCanonicalShards(t *testing.T, g *graph.Graph, count int) string {
	t.Helper()
	dir := t.TempDir()
	if err := graph.WriteCanonicalShards(dir, g, count); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestSourcePathMatchesInMemory is the differential check of the source
// redesign: for every Streams-capable method, partitioning the seeded RMAT
// from a canonical shard directory (the O(chunk) disk path) must equal the
// in-memory graph path bit for bit — same owner checksum, same quality
// numbers.
func TestSourcePathMatchesInMemory(t *testing.T) {
	g := gen.RMAT(12, 8, 7)
	dir := writeCanonicalShards(t, g, 4)
	src, err := graph.DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Info().NumEdges != g.NumEdges() {
		t.Fatalf("shard dir declares %d edges, graph has %d", src.Info().NumEdges, g.NumEdges())
	}
	streams := methods.StreamNames()
	if len(streams) < 8 {
		t.Fatalf("expected at least 8 stream-capable methods, got %v", streams)
	}
	for _, name := range streams {
		t.Run(name, func(t *testing.T) {
			spec := partition.NewSpec(8, 7)
			pr, resolved, err := methods.New(name, spec)
			if err != nil {
				t.Fatal(err)
			}
			mem, err := pr.Partition(context.Background(), g, resolved)
			if err != nil {
				t.Fatal(err)
			}
			srcRes, err := methods.PartitionSource(context.Background(), name, src, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ownersChecksum(srcRes.Partitioning.Owner), ownersChecksum(mem.Partitioning.Owner); got != want {
				t.Fatalf("source-path checksum %#x != in-memory %#x", got, want)
			}
			if srcRes.Quality != mem.Quality {
				t.Fatalf("source-path quality %+v != in-memory %+v", srcRes.Quality, mem.Quality)
			}
			if err := srcRes.Partitioning.Validate(g); err != nil {
				t.Fatal(err)
			}
			if _, warned := srcRes.Stats.Extra["materialized_graph_bytes"]; warned {
				t.Fatalf("stream-capable %s was materialized: %+v", name, srcRes.Stats)
			}
		})
	}
}

// TestNonStreamingMethodMaterializes checks the transparent fallback: a
// method without the Streams capability still partitions a source, with the
// materialization surfaced in its stats.
func TestNonStreamingMethodMaterializes(t *testing.T) {
	g := gen.RMAT(10, 8, 7)
	dir := writeCanonicalShards(t, g, 2)
	src, err := graph.DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := methods.PartitionSource(context.Background(), "ne", src, partition.NewSpec(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Extra["materialized_graph_bytes"] <= 0 {
		t.Fatalf("materialization not surfaced in stats: %+v", res.Stats)
	}
	if res.Stats.Phases[0].Name != "materialize" {
		t.Fatalf("materialize phase missing: %+v", res.Stats.Phases)
	}
	pr, resolved, err := methods.New("ne", partition.NewSpec(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := pr.Partition(context.Background(), g, resolved)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ownersChecksum(res.Partitioning.Owner), ownersChecksum(mem.Partitioning.Owner); got != want {
		t.Fatalf("materialized source-path checksum %#x != in-memory %#x", got, want)
	}
}

// TestStreamingMemoryBudget is the acceptance check of the source redesign:
// HDRF partitions the seeded ~1M-edge RMAT from a shard directory with an
// accounted peak at most 1/4 of the materialized-graph baseline (the
// in-memory path's accounted peak, dominated by the resident graph), while
// producing the bit-identical partitioning.
func TestStreamingMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short: 1M-edge differential run")
	}
	g := gen.RMAT(16, 16, 7)
	dir := writeCanonicalShards(t, g, 4)
	src, err := graph.DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := partition.NewSpec(16, 7)
	pr, resolved, err := methods.New("hdrf", spec)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := pr.Partition(context.Background(), g, resolved)
	if err != nil {
		t.Fatal(err)
	}
	srcRes, err := methods.PartitionSource(context.Background(), "hdrf", src, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ownersChecksum(srcRes.Partitioning.Owner), ownersChecksum(mem.Partitioning.Owner); got != want {
		t.Fatalf("source-path checksum %#x != in-memory %#x", got, want)
	}
	baseline := mem.Stats.PeakMemBytes
	stream := srcRes.Stats.PeakMemBytes
	t.Logf("|E|=%d: stream path %.1f MiB vs materialized baseline %.1f MiB (%.2fx less)",
		g.NumEdges(), float64(stream)/(1<<20), float64(baseline)/(1<<20), float64(baseline)/float64(stream))
	if baseline < g.MemoryFootprint() {
		t.Fatalf("baseline %d does not even account the resident graph (%d)", baseline, g.MemoryFootprint())
	}
	if stream*4 > baseline {
		t.Fatalf("stream path peak %d B exceeds 1/4 of the materialized baseline %d B", stream, baseline)
	}
}
