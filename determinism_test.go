package dnebench

import (
	"context"
	"hash/fnv"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// ownersChecksum is partition.Checksum — the shared currency that dnepart
// -checksum and the multi-process dneworker print, so the golden values
// below are directly comparable with CLI output.
func ownersChecksum(owner []int32) uint64 { return partition.Checksum(owner) }

// The checksums below were produced by the map/comparator-sort
// implementations that predate internal/dsa (the hash-map boundaries, the
// sort.Slice CSR build, the per-machine subgraph scans). The dense rewrite
// is required to reproduce every one of them bit for bit: same
// partition.Spec (seed) ⇒ same Partitioning, for every registered method,
// across the graph core and both expansion partitioner families.

func graphChecksum(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range g.Edges() {
		buf[0], buf[1], buf[2], buf[3] = byte(e.U), byte(e.U>>8), byte(e.U>>16), byte(e.U>>24)
		buf[4], buf[5], buf[6], buf[7] = byte(e.V), byte(e.V>>8), byte(e.V>>16), byte(e.V>>24)
		h.Write(buf[:])
	}
	for v := graph.Vertex(0); v < g.NumVertices(); v++ {
		ie := g.IncidentEdges(v)
		for i, nb := range g.Neighbors(v) {
			buf[0], buf[1], buf[2], buf[3] = byte(nb), byte(nb>>8), byte(nb>>16), byte(nb>>24)
			buf[4], buf[5], buf[6], buf[7] = byte(ie[i]), byte(ie[i]>>8), byte(ie[i]>>16), byte(ie[i]>>24)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestGraphBuildGolden(t *testing.T) {
	if got := graphChecksum(gen.RMAT(12, 8, 7)); got != 0x861602950186f519 {
		t.Fatalf("RMAT(12,8,7) graph checksum %#x changed (edges or CSR layout differ from the pre-dsa build)", got)
	}
	if got := graphChecksum(gen.Road(48, 48, 3)); got != 0x7add2b10d585a25 {
		t.Fatalf("Road(48,48,3) graph checksum %#x changed", got)
	}
}

func TestSeededPartitioningsGolden(t *testing.T) {
	golden := map[string]map[string]uint64{
		"rmat12": {
			"dbh":       0xbffd72f4e31363d2,
			"distlp":    0x9ae611968fb9abd7,
			"dne":       0x4b30ae3631512257,
			"fennel":    0x82c28491ae573f60,
			"ginger":    0x2fd4affa7fdfd472,
			"grid":      0x387902484d2ebfb3,
			"hdrf":      0xdfe49f1596553f16,
			"hybrid":    0xa3191c3543d1f451,
			"hyperne":   0xa179c2c51bda1922,
			"metis":     0xdfec932faa158691,
			"ne":        0x156a04e9a1f79e51,
			"oblivious": 0x82c28491ae573f60,
			"random":    0xdc2f30f3ebb52141,
			"sheep":     0x32fff370a3dba6e6,
			"sne":       0xcb62d7acb7b909a3,
			"spinner":   0xa3e562226d0d1582,
			"xtrapulp":  0xbea748b41315df3,
		},
		"road48": {
			"dbh":       0xa8627938ae39f763,
			"distlp":    0x9a8262c1cb0e8687,
			"dne":       0x28600f34e6ea3ae3,
			"fennel":    0xd21aac0d43f0b1b2,
			"ginger":    0xfdc7021ab9aa02c4,
			"grid":      0x9048c3b95dcfff76,
			"hdrf":      0xb7e08e9f6a56a507,
			"hybrid":    0x19194b08b14c9d77,
			"hyperne":   0xd2755c4c77aeb315,
			"metis":     0x634a4b33bc4d49c3,
			"ne":        0x2e756c365a468980,
			"oblivious": 0xd21aac0d43f0b1b2,
			"random":    0x6d7c8e4a77840284,
			"sheep":     0xbb7bef9bc890a434,
			"sne":       0x3890a1e2339e6e12,
			"spinner":   0xc1aa2bd08ab55a14,
			"xtrapulp":  0xa92c8f0858f9f737,
		},
	}
	graphs := map[string]*graph.Graph{
		"rmat12": gen.RMAT(12, 8, 7),
		"road48": gen.Road(48, 48, 3),
	}
	for glabel, want := range golden {
		g := graphs[glabel]
		for name, sum := range want {
			t.Run(glabel+"/"+name, func(t *testing.T) {
				if testing.Short() && glabel == "road48" {
					t.Skip("short: one graph is enough")
				}
				p, spec, err := methods.New(name, partition.Spec{NumParts: 8, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.Partition(context.Background(), g, spec)
				if err != nil {
					t.Fatal(err)
				}
				if got := ownersChecksum(res.Partitioning.Owner); got != sum {
					t.Fatalf("%s on %s: seeded partitioning checksum %#x, want %#x (pre-dsa output)", name, glabel, got, sum)
				}
			})
		}
	}
}
