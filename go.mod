module github.com/distributedne/dne

go 1.22
