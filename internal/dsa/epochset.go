package dsa

// EpochSet is a reusable set over dense ids [0, n) with O(1) Clear: instead
// of zeroing the slab, Clear bumps an epoch counter and membership is
// "stamp equals current epoch". It replaces the per-superstep
// map[Vertex]struct{} allocations in the expansion supersteps.
//
// The epoch is a uint32; after 2^32−1 Clears the stamps are zeroed once to
// avoid stale-epoch aliasing, keeping Clear amortized O(1) forever.
type EpochSet struct {
	stamp []uint32
	epoch uint32
}

// NewEpochSet returns an empty set over [0, n).
func NewEpochSet(n int) *EpochSet {
	return &EpochSet{stamp: make([]uint32, n), epoch: 1}
}

// Clear empties the set.
func (s *EpochSet) Clear() {
	s.epoch++
	if s.epoch == 0 { // wrapped: old stamps would alias the new epoch
		clear(s.stamp)
		s.epoch = 1
	}
}

// Has reports whether v is in the set.
func (s *EpochSet) Has(v uint32) bool { return s.stamp[v] == s.epoch }

// Add inserts v and reports whether it was newly added.
func (s *EpochSet) Add(v uint32) bool {
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	return true
}

// Len returns the domain size n.
func (s *EpochSet) Len() int { return len(s.stamp) }

// MemoryFootprint returns the bytes held by the stamp slab.
func (s *EpochSet) MemoryFootprint() int64 { return int64(len(s.stamp)) * 4 }
