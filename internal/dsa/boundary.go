package dsa

// Boundary is the expansion frontier of (Distributed) Neighbor Expansion: a
// priority queue of ⟨Drest(v), v⟩ pairs supporting lazy score refresh, plus
// an optional "expanded" set for vertices that must never re-enter (Alg. 1 /
// Alg. 4 of the paper).
//
// All membership state lives in flat slabs indexed by dense vertex id and
// stamped with an epoch counter, so Reset is O(1) and a single Boundary is
// reused across partitions (NE) or supersteps (Distributed NE) without
// reallocation. Scores are refreshed by re-pushing and skipping stale heap
// entries on pop, exactly like the map-based implementation it replaces; the
// pop sequence is the same total order by (Drest, v).
//
// Invariants:
//   - A vertex is live iff mark[v] == epoch; its current score is score[v].
//   - A vertex is expanded iff done[v] == epoch; expanded vertices ignore
//     Update and never re-enter until Reset.
//   - Stale heap entries (score changed, vertex popped or expanded) are
//     detected on pop by comparing against score/mark and discarded.
type Boundary struct {
	h     MinHeap4
	score []int32
	mark  []uint32 // mark[v] == epoch ⇔ v live in the boundary
	done  []uint32 // done[v] == epoch ⇔ v expanded (PopK users)
	epoch uint32
	size  int
	peak  int
}

// NewBoundary returns a Boundary over vertex ids [0, n).
func NewBoundary(n int) *Boundary {
	return &Boundary{
		score: make([]int32, n),
		mark:  make([]uint32, n),
		done:  make([]uint32, n),
		epoch: 1,
	}
}

// Reset empties the boundary and the expanded set in O(1) by bumping the
// epoch. The slabs are reused; no allocation happens. After 2^32−1 Resets
// the stamps are zeroed once so stale epochs can never alias, as in
// EpochSet.Clear.
func (b *Boundary) Reset() {
	b.epoch++
	if b.epoch == 0 {
		clear(b.mark)
		clear(b.done)
		b.epoch = 1
	}
	b.h.Reset()
	b.size = 0
}

// Len returns the number of live boundary vertices.
func (b *Boundary) Len() int { return b.size }

// Update inserts v with score d, or refreshes its score if v is already
// live. Expanded vertices are ignored; unchanged scores are not re-pushed.
func (b *Boundary) Update(v uint32, d int32) {
	if b.done[v] == b.epoch {
		return
	}
	if b.mark[v] == b.epoch {
		if b.score[v] == d {
			return
		}
	} else {
		b.mark[v] = b.epoch
		b.size++
		if b.size > b.peak {
			b.peak = b.size
		}
	}
	b.score[v] = d
	b.h.Push(d, v)
}

// PopMin removes and returns the live vertex with the minimal (score, id)
// pair. It returns false when the boundary is empty.
func (b *Boundary) PopMin() (uint32, bool) {
	for b.h.Len() > 0 {
		e := b.h.Pop()
		if b.mark[e.V] != b.epoch || b.score[e.V] != e.K {
			continue // stale entry
		}
		b.mark[e.V] = 0
		b.size--
		return e.V, true
	}
	return 0, false
}

// PopK removes and returns up to k minimum-score vertices, additionally
// stopping once the popped vertices' cumulative score reaches budget (the
// expected number of one-hop edges the batch will allocate, so a single
// multi-expansion superstep cannot overshoot the α cap, Eq. 2). At least one
// vertex is returned when the boundary is non-empty and budget > 0. Popped
// vertices are marked expanded and never re-enter until Reset. The returned
// slice aliases dst's backing array.
func (b *Boundary) PopK(k int, budget int64, dst []uint32) []uint32 {
	dst = dst[:0]
	var cum int64
	for len(dst) < k && cum < budget && b.h.Len() > 0 {
		e := b.h.Pop()
		if b.mark[e.V] != b.epoch || b.score[e.V] != e.K {
			continue // stale entry
		}
		b.mark[e.V] = 0
		b.done[e.V] = b.epoch
		b.size--
		dst = append(dst, e.V)
		cum += int64(e.K)
	}
	return dst
}

// BoundaryEntry is one live (vertex, score) pair of a Snapshot.
type BoundaryEntry struct {
	V     uint32
	Score int32
}

// Snapshot captures the boundary's logical state: the live (vertex, score)
// pairs and the expanded vertex set, both in ascending vertex order. Because
// the pop sequence is the total order by (score, id) — stale heap entries
// are skipped — this logical state fully determines future behavior; the
// physical heap layout need not be preserved. Used by the checkpoint layer.
func (b *Boundary) Snapshot() (live []BoundaryEntry, done []uint32) {
	for v := range b.mark {
		if b.mark[v] == b.epoch {
			live = append(live, BoundaryEntry{V: uint32(v), Score: b.score[v]})
		}
		if b.done[v] == b.epoch {
			done = append(done, uint32(v))
		}
	}
	return live, done
}

// Restore rebuilds the boundary from a Snapshot, replacing any current
// content. The restored boundary pops the exact same sequence as the
// snapshotted one.
func (b *Boundary) Restore(live []BoundaryEntry, done []uint32, peak int) {
	b.Reset()
	for _, v := range done {
		b.done[v] = b.epoch
	}
	for _, e := range live {
		b.Update(e.V, e.Score)
	}
	if peak > b.peak {
		b.peak = peak
	}
}

// MemoryFootprint returns the bytes held by the boundary's dense slabs and
// the heap's peak backing array: 12 bytes per vertex id in the domain plus 8
// per peak heap entry. Unlike the map-based predecessor there is no
// per-entry bucket overhead to charge.
func (b *Boundary) MemoryFootprint() int64 {
	return int64(len(b.score))*4 +
		int64(len(b.mark))*4 +
		int64(len(b.done))*4 +
		b.h.MemoryFootprint()
}

// Peak returns the maximum number of simultaneously live vertices observed.
func (b *Boundary) Peak() int { return b.peak }
