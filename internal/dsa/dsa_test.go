package dsa

import (
	"container/heap"
	"math/rand"
	"slices"
	"testing"
)

// --- reference implementations (the map/container-heap structures the dense
// ones replaced; kept here so every release is differentially checked
// against them) ---

type refEntry struct {
	v uint32
	d int32
}

type refHeap []refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].v < h[j].v
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// refBoundary is the old map-based lazy boundary.
type refBoundary struct {
	h        refHeap
	score    map[uint32]int32
	expanded map[uint32]struct{}
}

func newRefBoundary() *refBoundary {
	return &refBoundary{score: map[uint32]int32{}, expanded: map[uint32]struct{}{}}
}

func (b *refBoundary) update(v uint32, d int32) {
	if _, done := b.expanded[v]; done {
		return
	}
	if old, ok := b.score[v]; ok && old == d {
		return
	}
	b.score[v] = d
	heap.Push(&b.h, refEntry{v: v, d: d})
}

func (b *refBoundary) popK(k int, budget int64) []uint32 {
	var out []uint32
	var cum int64
	for len(out) < k && cum < budget && b.h.Len() > 0 {
		e := heap.Pop(&b.h).(refEntry)
		cur, live := b.score[e.v]
		if !live || cur != e.d {
			continue
		}
		delete(b.score, e.v)
		b.expanded[e.v] = struct{}{}
		out = append(out, e.v)
		cum += int64(e.d)
	}
	return out
}

func (b *refBoundary) popMin() (uint32, bool) {
	for b.h.Len() > 0 {
		e := heap.Pop(&b.h).(refEntry)
		if cur, ok := b.score[e.v]; ok && cur == e.d {
			delete(b.score, e.v)
			return e.v, true
		}
	}
	return 0, false
}

// --- MinHeap4 ---

func TestMinHeap4MatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var h MinHeap4
		var ref refHeap
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			k := int32(rng.Intn(50))
			v := uint32(rng.Intn(300))
			h.Push(k, v)
			heap.Push(&ref, refEntry{v: v, d: k})
		}
		for ref.Len() > 0 {
			want := heap.Pop(&ref).(refEntry)
			got := h.Pop()
			if got.K != want.d || got.V != want.v {
				t.Fatalf("trial %d: pop mismatch: got (%d,%d) want (%d,%d)",
					trial, got.K, got.V, want.d, want.v)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: heap not drained: %d left", trial, h.Len())
		}
	}
}

// TestBoundaryPopOrderMatchesReference drives the dense boundary and the old
// map/container-heap boundary through identical randomized update/pop
// sequences and asserts identical pop order — the bit-for-bit determinism
// contract the partitioners rely on.
func TestBoundaryPopOrderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 512
	b := NewBoundary(n)
	for trial := 0; trial < 30; trial++ {
		b.Reset()
		ref := newRefBoundary()
		var scratch []uint32
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0, 1: // batch of updates
				for i := 0; i < rng.Intn(40); i++ {
					v := uint32(rng.Intn(n))
					d := int32(rng.Intn(30))
					b.Update(v, d)
					ref.update(v, d)
				}
			case 2: // popK with budget
				k := 1 + rng.Intn(8)
				budget := int64(1 + rng.Intn(40))
				got := b.PopK(k, budget, scratch)
				want := ref.popK(k, budget)
				if !slices.Equal(got, want) {
					t.Fatalf("trial %d step %d: popK(%d,%d) = %v, want %v",
						trial, step, k, budget, got, want)
				}
				scratch = got
			}
			if b.Len() != len(ref.score) {
				t.Fatalf("trial %d step %d: len %d != ref %d", trial, step, b.Len(), len(ref.score))
			}
		}
		// Drain.
		for {
			got := b.PopK(4, 1<<40, scratch)
			want := ref.popK(4, 1<<40)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d drain: %v != %v", trial, got, want)
			}
			if len(want) == 0 {
				break
			}
		}
	}
}

// TestBoundaryPopMinMatchesReference covers the NE-style popMin path,
// including epoch reuse across partitions.
func TestBoundaryPopMinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 256
	b := NewBoundary(n)
	for part := 0; part < 40; part++ {
		b.Reset()
		ref := newRefBoundary()
		for step := 0; step < 150; step++ {
			if rng.Intn(3) > 0 {
				v := uint32(rng.Intn(n))
				d := int32(rng.Intn(20) - 5)
				b.Update(v, d)
				ref.update(v, d)
			} else {
				gotV, gotOK := b.PopMin()
				wantV, wantOK := ref.popMin()
				if gotOK != wantOK || gotV != wantV {
					t.Fatalf("part %d step %d: popMin (%d,%v) != (%d,%v)",
						part, step, gotV, gotOK, wantV, wantOK)
				}
			}
		}
	}
}

func TestBoundaryExpandedNeverReenters(t *testing.T) {
	b := NewBoundary(8)
	b.Update(3, 5)
	got := b.PopK(1, 100, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("popK = %v, want [3]", got)
	}
	b.Update(3, 1) // expanded: must be ignored
	if b.Len() != 0 {
		t.Fatalf("expanded vertex re-entered: len=%d", b.Len())
	}
	b.Reset()
	b.Update(3, 1) // after Reset it may re-enter
	if b.Len() != 1 {
		t.Fatalf("vertex did not re-enter after Reset: len=%d", b.Len())
	}
}

func TestBoundaryPopKBudget(t *testing.T) {
	b := NewBoundary(16)
	for v := uint32(0); v < 10; v++ {
		b.Update(v, 4)
	}
	// budget 9 : pops scores 4+4 = 8 < 9, then one more (cum check is
	// pre-pop), matching the reference loop's "cum < budget" condition.
	got := b.PopK(10, 9, nil)
	ref := newRefBoundary()
	for v := uint32(0); v < 10; v++ {
		ref.update(v, 4)
	}
	want := ref.popK(10, 9)
	if !slices.Equal(got, want) {
		t.Fatalf("budget semantics differ: %v vs %v", got, want)
	}
}

func TestBoundaryResetEpochWrap(t *testing.T) {
	b := NewBoundary(4)
	b.Update(1, 7)
	b.PopK(1, 100, nil) // 1 expanded in epoch 1
	b.epoch = ^uint32(0)
	b.mark[2] = 1 // stale stamps that would alias the post-wrap epoch
	b.done[3] = 1
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("stale live membership after epoch wrap")
	}
	b.Update(3, 5) // done[3] must not suppress the insert
	if b.Len() != 1 {
		t.Fatal("stale expanded stamp survived epoch wrap")
	}
	if v, ok := b.PopMin(); !ok || v != 3 {
		t.Fatalf("PopMin = (%d,%v), want (3,true)", v, ok)
	}
}

// --- EpochSet ---

func TestEpochSet(t *testing.T) {
	s := NewEpochSet(10)
	if s.Has(4) {
		t.Fatal("fresh set has 4")
	}
	if !s.Add(4) || s.Add(4) {
		t.Fatal("Add semantics wrong")
	}
	if !s.Has(4) {
		t.Fatal("4 missing after Add")
	}
	s.Clear()
	if s.Has(4) {
		t.Fatal("4 survived Clear")
	}
	if !s.Add(4) {
		t.Fatal("re-Add after Clear failed")
	}
}

func TestEpochSetWrap(t *testing.T) {
	s := NewEpochSet(4)
	s.Add(1)
	s.epoch = ^uint32(0) // force wrap on next Clear
	s.stamp[2] = 1       // stale stamp equal to the post-wrap epoch
	s.Clear()
	if s.Has(2) || s.Has(1) {
		t.Fatal("stale membership after epoch wrap")
	}
}

// --- sorts ---

func TestSortU32MatchesSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 5, sortSmall - 1, sortSmall + 1, 50_000} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() >> uint(rng.Intn(20)) // mix of ranges
		}
		want := slices.Clone(keys)
		slices.Sort(want)
		SortU32(keys)
		if !slices.Equal(keys, want) {
			t.Fatalf("n=%d: SortU32 mismatch", n)
		}
	}
}

func TestSortU64MatchesSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 3, sortSmall + 7, 120_000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() >> uint(rng.Intn(40))
		}
		want := slices.Clone(keys)
		slices.Sort(want)
		SortU64(keys)
		if !slices.Equal(keys, want) {
			t.Fatalf("n=%d: SortU64 mismatch", n)
		}
	}
}

// TestRadixSortParallelPath forces the multi-worker scatter path (a
// single-core machine would otherwise only run w=1) and checks stability of
// the digit passes via full ordering.
func TestRadixSortParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 30_000)
	for i := range keys {
		keys[i] = uint64(rng.Uint32()) // exercises the skip of high passes
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	got := slices.Clone(keys)
	radixSortWorkers(got, make([]uint64, len(got)), 4, 4)
	if !slices.Equal(got, want) {
		t.Fatal("parallel radix mismatch")
	}
	// And uniform input (every pass skipped).
	uni := make([]uint64, 10_000)
	for i := range uni {
		uni[i] = 42
	}
	radixSortWorkers(uni, make([]uint64, len(uni)), 4, 3)
	for _, k := range uni {
		if k != 42 {
			t.Fatal("uniform input corrupted")
		}
	}
}

func BenchmarkSortU64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 1<<20)
	for i := range keys {
		keys[i] = uint64(rng.Uint32())<<32 | uint64(rng.Uint32())
	}
	scratch := make([]uint64, len(keys))
	work := make([]uint64, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		SortU64Scratch(work, scratch)
	}
}

// BenchmarkBoundaryPopK measures the popK hot path: a large churn of
// updates and budgeted pops, the per-superstep pattern of Distributed NE.
func BenchmarkBoundaryPopK(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(8))
	vs := make([]uint32, 1<<18)
	ds := make([]int32, len(vs))
	for i := range vs {
		vs[i] = uint32(rng.Intn(n))
		ds[i] = int32(rng.Intn(256))
	}
	bd := NewBoundary(n)
	var scratch []uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Reset()
		for j := range vs {
			bd.Update(vs[j], ds[j])
			if j&1023 == 1023 {
				scratch = bd.PopK(64, 1<<20, scratch)
			}
		}
		for bd.Len() > 0 {
			scratch = bd.PopK(256, 1<<30, scratch)
		}
	}
}

// BenchmarkBoundaryPopKReference is the map/container-heap predecessor on
// the same workload, so `go test -bench BoundaryPopK` prints the before and
// after side by side.
func BenchmarkBoundaryPopKReference(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(8))
	vs := make([]uint32, 1<<18)
	ds := make([]int32, len(vs))
	for i := range vs {
		vs[i] = uint32(rng.Intn(n))
		ds[i] = int32(rng.Intn(256))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := newRefBoundary()
		for j := range vs {
			bd.update(vs[j], ds[j])
			if j&1023 == 1023 {
				bd.popK(64, 1<<20)
			}
		}
		for len(bd.score) > 0 {
			bd.popK(256, 1<<30)
		}
	}
}
