package dsa

import (
	"math/rand"
	"testing"
)

func TestBoundarySnapshotRestorePopsIdentically(t *testing.T) {
	// A restored boundary must pop the exact sequence the original would:
	// the snapshot's logical (live, done) state fully determines behavior
	// even though the physical heap layout is discarded.
	rng := rand.New(rand.NewSource(17))
	const n = 500
	b := NewBoundary(n)
	for i := 0; i < 300; i++ {
		b.Update(uint32(rng.Intn(n)), int32(rng.Intn(50)))
	}
	// Expand a batch so the done-set is non-empty, then refresh some scores
	// to plant stale heap entries.
	b.PopK(20, 1<<30, make([]uint32, 0, 20))
	for i := 0; i < 100; i++ {
		b.Update(uint32(rng.Intn(n)), int32(rng.Intn(50)))
	}

	live, done := b.Snapshot()
	r := NewBoundary(n)
	r.Restore(live, done, b.Peak())

	if r.Len() != b.Len() {
		t.Fatalf("restored Len %d != original %d", r.Len(), b.Len())
	}
	if r.Peak() < b.Peak() {
		t.Fatalf("restored Peak %d < original %d", r.Peak(), b.Peak())
	}
	for {
		v1, ok1 := b.PopMin()
		v2, ok2 := r.PopMin()
		if ok1 != ok2 {
			t.Fatalf("pop streams diverge: original ok=%v restored ok=%v", ok1, ok2)
		}
		if !ok1 {
			break
		}
		if v1 != v2 {
			t.Fatalf("pop streams diverge: original %d restored %d", v1, v2)
		}
	}
}

func TestBoundaryRestoreHonorsDoneSet(t *testing.T) {
	b := NewBoundary(10)
	b.Update(3, 5)
	b.Update(7, 1)
	b.PopK(1, 1<<30, nil) // expands vertex 7
	live, done := b.Snapshot()
	if len(done) != 1 || done[0] != 7 {
		t.Fatalf("done = %v, want [7]", done)
	}

	r := NewBoundary(10)
	r.Restore(live, done, 0)
	r.Update(7, 0) // expanded: must be ignored
	if v, ok := r.PopMin(); !ok || v != 3 {
		t.Fatalf("PopMin = %d,%v, want 3,true", v, ok)
	}
	if _, ok := r.PopMin(); ok {
		t.Fatal("expanded vertex re-entered after restore")
	}
}
