// Package dsa provides the dense, allocation-free data structures shared by
// the partitioners' hot paths: a monomorphic 4-ary min-heap over
// ⟨score, vertex⟩ pairs, an epoch-stamped dense boundary (the expansion
// frontier of NE and Distributed NE), reusable epoch-stamped vertex sets, and
// parallel radix sorts for the primitive slices every CSR build funnels
// through.
//
// The paper's scalability argument (§4, §7.3) rests on per-machine state
// being flat arrays indexed by dense vertex ids rather than hash tables;
// this package is that argument applied to the reproduction's own inner
// loops. All structures are deterministic: identical call sequences produce
// identical observable results, bit for bit, which the partitioners rely on
// for seeded reproducibility.
package dsa

// KV is a ⟨key, vertex⟩ heap entry. The heap order is ascending by (K, V);
// the vertex id tie-break makes every pop sequence over distinct entries a
// total order, which keeps seeded partitioner runs reproducible.
type KV struct {
	K int32
	V uint32
}

// kvLess is the single comparison the heap is specialized to.
func kvLess(a, b KV) bool {
	return a.K < b.K || (a.K == b.K && a.V < b.V)
}

// MinHeap4 is a monomorphic 4-ary min-heap of KV entries. Compared with
// container/heap it avoids interface boxing, indirect comparator calls, and
// per-push allocations; the 4-ary layout halves the tree depth, trading two
// extra sibling comparisons per level for better cache behaviour on the
// sift-down path. The zero value is an empty heap.
type MinHeap4 struct {
	a       []KV
	peakCap int
}

// Len returns the number of entries (including stale ones pushed by lazy
// decrease-key users).
func (h *MinHeap4) Len() int { return len(h.a) }

// Reset empties the heap, retaining capacity.
func (h *MinHeap4) Reset() {
	if cap(h.a) > h.peakCap {
		h.peakCap = cap(h.a)
	}
	h.a = h.a[:0]
}

// Push inserts the pair ⟨k, v⟩.
func (h *MinHeap4) Push(k int32, v uint32) {
	h.a = append(h.a, KV{K: k, V: v})
	a := h.a
	i := len(a) - 1
	e := a[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !kvLess(e, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = e
}

// Pop removes and returns the minimum entry. It panics on an empty heap,
// matching container/heap.
func (h *MinHeap4) Pop() KV {
	a := h.a
	top := a[0]
	n := len(a) - 1
	e := a[n]
	h.a = a[:n]
	if n > 0 {
		h.siftDown(e)
	}
	return top
}

// siftDown places e starting from the root of the (already shrunk) heap.
func (h *MinHeap4) siftDown(e KV) {
	a := h.a
	n := len(a)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if kvLess(a[j], a[m]) {
				m = j
			}
		}
		if !kvLess(a[m], e) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = e
}

// MemoryFootprint returns the bytes held by the heap's backing array at its
// peak capacity (8 bytes per entry).
func (h *MinHeap4) MemoryFootprint() int64 {
	c := cap(h.a)
	if h.peakCap > c {
		c = h.peakCap
	}
	return int64(c) * 8
}
