package dsa

// ScatterByBucket is one stable counting-sort scatter pass — the same
// machinery as SortU64's radix passes, exposed for callers that group a
// chunk of records by a small bucket id before spilling each group with one
// contiguous write. keys and pos move together; bucket[i] is the
// destination group of record i and must be < nb. outKeys/outPos receive
// the grouped records (len(keys) each); offs must have room for nb+1
// entries and returns the group boundaries: group b occupies
// outKeys[offs[b]:offs[b+1]] in original (stable) order. cursor is caller
// scratch of at least nb entries, so a per-chunk caller allocates nothing.
func ScatterByBucket(keys []uint64, pos []int64, bucket []uint8, nb int, outKeys []uint64, outPos []int64, offs, cursor []int) []int {
	offs = offs[:nb+1]
	for i := range offs {
		offs[i] = 0
	}
	for _, b := range bucket {
		offs[b+1]++
	}
	for b := 1; b <= nb; b++ {
		offs[b] += offs[b-1]
	}
	cursor = cursor[:nb]
	copy(cursor, offs[:nb])
	for i, b := range bucket {
		at := cursor[b]
		cursor[b]++
		outKeys[at] = keys[i]
		outPos[at] = pos[i]
	}
	return offs
}
