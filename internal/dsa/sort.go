package dsa

import (
	"runtime"
	"slices"
	"sync"
)

// Parallel least-significant-digit radix sort over primitive keys, 16 bits
// per pass. Every pass is stable, so the overall sort is stable; uniform
// passes (all keys sharing one digit, e.g. the high halves of small vertex
// ids) are detected from the histogram and skipped entirely. With one
// worker the passes degenerate to a plain counting sort with no goroutine
// or synchronisation overhead.

const (
	radixBits = 16
	radixSize = 1 << radixBits
	radixMask = radixSize - 1

	// sortSmall is the length below which pdqsort beats the histogram setup.
	sortSmall = 1 << 11
	// sortMinChunk is the smallest per-worker chunk worth a goroutine.
	sortMinChunk = 1 << 16
)

// SortU32 sorts keys ascending.
func SortU32(keys []uint32) {
	if len(keys) < sortSmall {
		slices.Sort(keys)
		return
	}
	radixSort(keys, make([]uint32, len(keys)), 2)
}

// SortU64 sorts keys ascending.
func SortU64(keys []uint64) {
	if len(keys) < sortSmall {
		slices.Sort(keys)
		return
	}
	radixSort(keys, make([]uint64, len(keys)), 4)
}

// SortU64Scratch sorts keys ascending reusing scratch (which must be at
// least as long as keys) so repeated builds allocate nothing.
func SortU64Scratch(keys, scratch []uint64) {
	if len(keys) < sortSmall {
		slices.Sort(keys)
		return
	}
	radixSort(keys, scratch[:len(keys)], 4)
}

// sortWorkers picks the worker count for n keys: bounded by GOMAXPROCS and
// by the minimum useful chunk size, so a single-core machine (or a small
// input) runs the sequential path.
func sortWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if maxW := n / sortMinChunk; w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return w
}

func radixSort[T uint32 | uint64](keys, buf []T, passes int) {
	radixSortWorkers(keys, buf, passes, sortWorkers(len(keys)))
}

func radixSortWorkers[T uint32 | uint64](keys, buf []T, passes, w int) {
	if len(keys) == 0 {
		return
	}
	hist := make([]int, w*radixSize)
	src, dst := keys, buf
	for pass := 0; pass < passes; pass++ {
		if scatterPass(src, dst, uint(pass*radixBits), w, hist) {
			src, dst = dst, src
		}
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// scatterPass performs one stable counting pass of src into dst on the digit
// at shift, using w workers over contiguous chunks. It reports whether a
// scatter happened (false = the digit was uniform and the pass was skipped).
// hist is w*radixSize scratch.
func scatterPass[T uint32 | uint64](src, dst []T, shift uint, w int, hist []int) bool {
	n := len(src)
	chunk := (n + w - 1) / w
	clear(hist)

	// Per-worker digit histograms.
	parallelChunks(n, chunk, w, func(wi, lo, hi int) {
		h := hist[wi*radixSize : (wi+1)*radixSize]
		for _, k := range src[lo:hi] {
			h[uint(k>>shift)&radixMask]++
		}
	})

	// Skip the pass when every key shares one digit value (common for the
	// high halves of small ids).
	nonzero := 0
	for d := 0; d < radixSize && nonzero < 2; d++ {
		for wi := 0; wi < w; wi++ {
			if hist[wi*radixSize+d] > 0 {
				nonzero++
				break
			}
		}
	}
	if nonzero < 2 {
		return false
	}

	// Exclusive prefix in (digit, worker) order: within one digit, chunks
	// keep their original order, which is what makes the pass stable.
	sum := 0
	for d := 0; d < radixSize; d++ {
		for wi := 0; wi < w; wi++ {
			i := wi*radixSize + d
			c := hist[i]
			hist[i] = sum
			sum += c
		}
	}

	parallelChunks(n, chunk, w, func(wi, lo, hi int) {
		h := hist[wi*radixSize : (wi+1)*radixSize]
		for _, k := range src[lo:hi] {
			d := uint(k>>shift) & radixMask
			dst[h[d]] = k
			h[d]++
		}
	})
	return true
}

// parallelChunks runs fn(worker, lo, hi) over w contiguous chunks of [0, n).
// With one worker it calls fn inline.
func parallelChunks(n, chunk, w int, fn func(wi, lo, hi int)) {
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			fn(wi, lo, hi)
		}(wi, lo, hi)
	}
	wg.Wait()
}
