package store

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// randomPartitioning assigns every edge a uniform random owner.
func randomPartitioning(g *graph.Graph, numParts int, seed int64) *partition.Partitioning {
	rng := rand.New(rand.NewSource(seed))
	p := partition.New(numParts, g.NumEdges())
	for i := range p.Owner {
		p.Owner[i] = int32(rng.Intn(numParts))
	}
	return p
}

// rangePartitioning assigns contiguous edge ranges to parts — a low-RF
// baseline for locality-sensitive tests (canonical edge order groups edges
// by their smaller endpoint).
func rangePartitioning(g *graph.Graph, numParts int) *partition.Partitioning {
	p := partition.New(numParts, g.NumEdges())
	m := g.NumEdges()
	for i := range p.Owner {
		p.Owner[i] = int32(int64(i) * int64(numParts) / m)
	}
	return p
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"rmat":   gen.RMAT(8, 8, 1),
		"er":     gen.ER(500, 2000, 2),
		"road":   gen.Road(20, 20, 3),
		"star":   gen.Star(64),
		"single": graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}}),
	}
}

func buildRandom(t *testing.T, g *graph.Graph, parts int, seed int64) *Store {
	t.Helper()
	st, err := BuildPartitioning(g, randomPartitioning(g, parts, seed))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return st
}

func TestBuildRejectsIncomplete(t *testing.T) {
	g := gen.ER(50, 100, 1)
	p := partition.New(4, g.NumEdges()) // all unassigned
	if _, err := BuildPartitioning(g, p); err == nil {
		t.Fatal("incomplete partitioning accepted")
	}
	if _, err := Build(g, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// TestRoutingInvariants checks the tentpole's core invariants: every vertex
// has exactly one in-range master, a covered vertex's master is one of its
// replicas, and the mirror index totals match partition.Quality exactly.
func TestRoutingInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, parts := range []int{1, 3, 8} {
			p := randomPartitioning(g, parts, 42)
			st, err := BuildPartitioning(g, p)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, parts, err)
			}
			q := p.Measure(g)
			if got := st.TotalReplicas(); got != q.Replicas {
				t.Errorf("%s/%d: TotalReplicas = %d, Quality.Replicas = %d", name, parts, got, q.Replicas)
			}
			if got, want := st.ReplicationFactor(), q.ReplicationFactor; got != want {
				t.Errorf("%s/%d: RF = %v, want %v", name, parts, got, want)
			}
			var shardVertTotal int
			for s := 0; s < st.NumShards(); s++ {
				shardVertTotal += st.ShardVertices(s)
			}
			if int64(shardVertTotal) != q.Replicas {
				t.Errorf("%s/%d: shard vertex total %d != replicas %d", name, parts, shardVertTotal, q.Replicas)
			}
			for v := graph.Vertex(0); v < g.NumVertices(); v++ {
				m, err := st.Master(v)
				if err != nil {
					t.Fatalf("%s/%d: master(%d): %v", name, parts, v, err)
				}
				if m < 0 || int(m) >= parts {
					t.Fatalf("%s/%d: master(%d) = %d out of range", name, parts, v, m)
				}
				reps := st.Replicas(v)
				if g.Degree(v) > 0 {
					found := false
					for _, s := range reps {
						if s == m {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s/%d: master %d of covered vertex %d not a replica %v", name, parts, m, v, reps)
					}
				} else if len(reps) != 0 {
					t.Fatalf("%s/%d: isolated vertex %d has replicas %v", name, parts, v, reps)
				}
			}
			if _, err := st.Master(g.NumVertices()); err == nil {
				t.Errorf("%s/%d: out-of-range master accepted", name, parts)
			}
		}
	}
}

// TestDegreeAndNeighborsMatchGraph checks that sharded point queries
// reassemble exactly the underlying graph's adjacency.
func TestDegreeAndNeighborsMatchGraph(t *testing.T) {
	for name, g := range testGraphs(t) {
		st := buildRandom(t, g, 5, 7)
		for v := graph.Vertex(0); v < g.NumVertices(); v++ {
			d, err := st.Degree(v)
			if err != nil {
				t.Fatal(err)
			}
			if d != g.Degree(v) {
				t.Fatalf("%s: degree(%d) = %d, want %d", name, v, d, g.Degree(v))
			}
			ns, err := st.Neighbors(v)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]graph.Vertex(nil), g.Neighbors(v)...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(ns) != len(want) {
				t.Fatalf("%s: neighbors(%d) len %d, want %d", name, v, len(ns), len(want))
			}
			for i := range ns {
				if ns[i] != want[i] {
					t.Fatalf("%s: neighbors(%d)[%d] = %d, want %d", name, v, i, ns[i], want[i])
				}
			}
		}
		if _, err := st.Degree(g.NumVertices() + 10); err == nil {
			t.Error("out-of-range degree accepted")
		}
		if _, err := st.Neighbors(g.NumVertices()); err == nil {
			t.Error("out-of-range neighbors accepted")
		}
	}
}

func TestBatchQueries(t *testing.T) {
	g := gen.ER(200, 800, 5)
	st := buildRandom(t, g, 4, 5)
	vs := []graph.Vertex{0, 5, 17, 199}
	ds, err := st.DegreeBatch(vs)
	if err != nil {
		t.Fatal(err)
	}
	nss, err := st.NeighborsBatch(vs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if ds[i] != g.Degree(v) {
			t.Errorf("batch degree(%d) = %d, want %d", v, ds[i], g.Degree(v))
		}
		if int64(len(nss[i])) != g.Degree(v) {
			t.Errorf("batch neighbors(%d) len %d, want %d", v, len(nss[i]), g.Degree(v))
		}
	}
	if _, err := st.DegreeBatch([]graph.Vertex{0, 1 << 30}); err == nil {
		t.Error("out-of-range batch accepted")
	}
}

// bfsOracle is a single-threaded BFS over g up to depth k, returning
// (vertices sorted by depth then id, parallel depths).
func bfsOracle(g *graph.Graph, src graph.Vertex, k int) ([]graph.Vertex, []int32) {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []graph.Vertex{src}
	verts := []graph.Vertex{src}
	depths := []int32{0}
	for d := int32(1); int(d) <= k && len(frontier) > 0; d++ {
		var next []graph.Vertex
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, w := range next {
			verts = append(verts, w)
			depths = append(depths, d)
		}
		frontier = next
	}
	return verts, depths
}

// TestKHopMatchesOracle is the tentpole acceptance test: the fan-out BFS
// over shards equals a single-threaded BFS on the whole graph.
func TestKHopMatchesOracle(t *testing.T) {
	ctx := context.Background()
	for name, g := range testGraphs(t) {
		for _, parts := range []int{1, 4, 7} {
			st := buildRandom(t, g, parts, 99)
			rng := rand.New(rand.NewSource(13))
			for trial := 0; trial < 10; trial++ {
				src := graph.Vertex(rng.Intn(int(g.NumVertices())))
				k := rng.Intn(5)
				got, err := st.KHop(ctx, src, k)
				if err != nil {
					t.Fatalf("%s/%d: khop(%d,%d): %v", name, parts, src, k, err)
				}
				wantV, wantD := bfsOracle(g, src, k)
				if len(got.Vertices) != len(wantV) {
					t.Fatalf("%s/%d: khop(%d,%d) found %d vertices, oracle %d",
						name, parts, src, k, len(got.Vertices), len(wantV))
				}
				for i := range wantV {
					if got.Vertices[i] != wantV[i] || got.Depths[i] != wantD[i] {
						t.Fatalf("%s/%d: khop(%d,%d)[%d] = (%d,%d), oracle (%d,%d)",
							name, parts, src, k, i, got.Vertices[i], got.Depths[i], wantV[i], wantD[i])
					}
				}
				var lvlTotal int64
				for _, l := range got.LevelSizes {
					lvlTotal += l
				}
				if lvlTotal != int64(len(got.Vertices)) {
					t.Fatalf("%s/%d: level sizes sum %d != %d vertices", name, parts, lvlTotal, len(got.Vertices))
				}
			}
		}
	}
}

func TestKHopEdgeCases(t *testing.T) {
	g := gen.ER(100, 300, 1)
	st := buildRandom(t, g, 4, 1)
	res, err := st.KHop(context.Background(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != 1 || res.Vertices[0] != 3 || res.CrossShardHops != 0 {
		t.Fatalf("0-hop result %+v", res)
	}
	if _, err := st.KHop(context.Background(), 1000, 2); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := st.KHop(context.Background(), 0, -1); err == nil {
		t.Error("negative k accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.KHop(ctx, 0, 3); err == nil {
		t.Error("cancelled context not honored")
	}
}

// TestCrossShardHopsTrackReplication checks the economic claim of the
// subsystem: a single shard serves with zero cross-shard hops, and a
// partitioning with higher replication factor pays more hops on the same
// workload than a lower-RF one.
func TestCrossShardHopsTrackReplication(t *testing.T) {
	g := gen.RMAT(9, 8, 4)
	ctx := context.Background()

	one := buildRandom(t, g, 1, 1)
	lowRF, err := BuildPartitioning(g, rangePartitioning(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	highRF := buildRandom(t, g, 8, 2) // random assignment maximizes RF

	if lowRF.ReplicationFactor() >= highRF.ReplicationFactor() {
		t.Fatalf("test premise broken: range RF %.3f >= random RF %.3f",
			lowRF.ReplicationFactor(), highRF.ReplicationFactor())
	}

	workload := func(st *Store) int64 {
		st.ResetMetrics()
		rng := rand.New(rand.NewSource(7))
		for q := 0; q < 50; q++ {
			v := graph.Vertex(rng.Intn(int(g.NumVertices())))
			if _, err := st.Neighbors(v); err != nil {
				t.Fatal(err)
			}
			if _, err := st.KHop(ctx, v, 2); err != nil {
				t.Fatal(err)
			}
		}
		return st.Metrics().CrossShardHops
	}

	hOne, hLow, hHigh := workload(one), workload(lowRF), workload(highRF)
	if hOne != 0 {
		t.Errorf("single shard paid %d cross-shard hops", hOne)
	}
	if hLow >= hHigh {
		t.Errorf("low-RF store paid %d hops, high-RF %d; expected fewer", hLow, hHigh)
	}
}

func TestMetricsCounts(t *testing.T) {
	g := gen.ER(100, 400, 9)
	st := buildRandom(t, g, 4, 9)
	ctx := context.Background()
	if _, err := st.Degree(1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Neighbors(2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.KHop(ctx, 3, 2); err != nil {
		t.Fatal(err)
	}
	m := st.Metrics()
	if m.DegreeQueries != 1 || m.NeighborsQueries != 1 || m.KHopQueries != 1 {
		t.Errorf("query counts %+v", m)
	}
	if m.Queries() != 3 {
		t.Errorf("Queries() = %d", m.Queries())
	}
	var touches int64
	for _, c := range m.PerShardTouches {
		touches += c
	}
	if touches == 0 {
		t.Error("no shard touches recorded")
	}
	if m.TotalLatency <= 0 {
		t.Error("no latency recorded")
	}
	if m.HopsPerQuery() < 0 {
		t.Error("negative hops per query")
	}
	st.ResetMetrics()
	if st.Metrics().Queries() != 0 {
		t.Error("reset did not zero counters")
	}
}

// TestConcurrentQueries exercises the fan-out path under parallel load; the
// CI race job (go test -race) makes this a data-race check.
func TestConcurrentQueries(t *testing.T) {
	g := gen.RMAT(8, 8, 11)
	st := buildRandom(t, g, 6, 11)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 100; q++ {
				v := graph.Vertex(rng.Intn(int(g.NumVertices())))
				switch q % 3 {
				case 0:
					if _, err := st.Degree(v); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := st.Neighbors(v); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := st.KHop(ctx, v, 2); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := st.Metrics().Queries(); got != 800 {
		t.Errorf("recorded %d queries, want 800", got)
	}
}
