package store

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// shardPacked groups a graph's canonical edges by a random owner into the
// per-shard packed lists BuildFromShards consumes.
func shardPacked(g *graph.Graph, numShards int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	packed := make([][]uint64, numShards)
	for i := int64(0); i < g.NumEdges(); i++ {
		e := g.Edge(i)
		s := rng.Intn(numShards)
		packed[s] = append(packed[s], graph.PackEdge(e.U, e.V))
	}
	return packed
}

// assertStoresEqual checks two stores answer every routing and adjacency
// query identically.
func assertStoresEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for s := 0; s < a.NumShards(); s++ {
		if a.ShardEdges(s) != b.ShardEdges(s) {
			t.Fatalf("shard %d edges %d vs %d", s, a.ShardEdges(s), b.ShardEdges(s))
		}
	}
	for v := graph.Vertex(0); v < a.NumVertices(); v++ {
		ma, _ := a.Master(v)
		mb, _ := b.Master(v)
		if ma != mb {
			t.Fatalf("master[%d] %d vs %d", v, ma, mb)
		}
		if !slices.Equal(a.Replicas(v), b.Replicas(v)) {
			t.Fatalf("replicas[%d] %v vs %v", v, a.Replicas(v), b.Replicas(v))
		}
		na, _ := a.Neighbors(v)
		nb, _ := b.Neighbors(v)
		if !slices.Equal(na, nb) {
			t.Fatalf("neighbors[%d] %v vs %v", v, na, nb)
		}
	}
}

// TestBuildFromShardsMatchesBuildPartitioning: the two construction paths
// must produce identical stores for the same edge-to-shard assignment.
func TestBuildFromShardsMatchesBuildPartitioning(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			p := randomPartitioning(g, 4, 7)
			a, err := BuildPartitioning(g, p)
			if err != nil {
				t.Fatal(err)
			}
			packed := make([][]uint64, 4)
			for i, o := range p.Owner {
				e := g.Edge(int64(i))
				packed[o] = append(packed[o], graph.PackEdge(e.U, e.V))
			}
			b, err := BuildFromShards(g.NumVertices(), packed)
			if err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, a, b)
		})
	}
}

func TestBuildFromShardsRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		n      uint32
		packed [][]uint64
	}{
		{"no shards", 4, nil},
		{"out of range", 4, [][]uint64{{graph.PackEdge(1, 9)}}},
		{"self loop", 4, [][]uint64{{uint64(2)<<32 | 2}}},
		{"non-canonical", 4, [][]uint64{{uint64(3)<<32 | 1}}},
		{"duplicate in shard", 4, [][]uint64{{graph.PackEdge(0, 1), graph.PackEdge(0, 1)}}},
		{"unsorted shard", 4, [][]uint64{{graph.PackEdge(1, 2), graph.PackEdge(0, 1)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildFromShards(tc.n, tc.packed); err == nil {
				t.Fatalf("accepted bad input")
			}
		})
	}
}

// epochReference applies a delta's adds/dels to per-shard packed lists —
// the from-scratch truth an Epoch must match.
func applyDelta(packed [][]uint64, d *Delta) [][]uint64 {
	out := make([][]uint64, len(packed))
	for s := range packed {
		for _, k := range packed[s] {
			if _, dead := d.dels[s][k]; !dead {
				out[s] = append(out[s], k)
			}
		}
		for v, ns := range d.adds[s] {
			for _, w := range ns {
				if v < w {
					out[s] = append(out[s], graph.PackEdge(v, w))
				}
			}
		}
		slices.Sort(out[s])
	}
	return out
}

// TestEpochOverlayMatchesRebuild: an epoch's every query must agree with a
// store rebuilt from scratch on the delta-applied edge set — including
// degrees, neighbors, KHop results, and the compacted store itself.
func TestEpochOverlayMatchesRebuild(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	const numShards = 4
	packed := shardPacked(g, numShards, 11)
	base, err := BuildFromShards(g.NumVertices(), packed)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate: delete a seeded sample of base edges, insert fresh edges —
	// some between existing vertices, some minting new vertex ids.
	rng := rand.New(rand.NewSource(5))
	d := NewDelta(numShards)
	for s := 0; s < numShards; s++ {
		for _, k := range packed[s] {
			if rng.Intn(10) == 0 {
				e := graph.UnpackEdge(k)
				d.DelEdge(s, e.U, e.V)
			}
		}
	}
	n := g.NumVertices()
	for i := 0; i < 500; i++ {
		u := graph.Vertex(rng.Intn(int(n)))
		v := graph.Vertex(rng.Intn(int(n) + 40)) // some beyond base |V|
		if u == v {
			continue
		}
		s := rng.Intn(numShards)
		if u > v {
			u, v = v, u
		}
		if d.HasAdd(s, u, v) {
			continue
		}
		if slices.Contains(packed[s], graph.PackEdge(u, v)) && !d.HasDel(s, u, v) {
			continue
		}
		d.AddEdge(s, u, v)
	}

	ep := NewEpoch(base, d.Clone(), 1)
	want := applyDelta(packed, d)
	ref, err := BuildFromShards(ep.NumVertices(), want)
	if err != nil {
		t.Fatal(err)
	}

	if ep.NumEdges() != ref.NumEdges() {
		t.Fatalf("epoch edges %d, rebuilt %d", ep.NumEdges(), ref.NumEdges())
	}
	for s := 0; s < numShards; s++ {
		if ep.ShardEdges(s) != ref.ShardEdges(s) {
			t.Fatalf("shard %d: epoch %d, rebuilt %d", s, ep.ShardEdges(s), ref.ShardEdges(s))
		}
		if !slices.Equal(ep.ShardEdgesPacked(s), want[s]) {
			t.Fatalf("shard %d packed edges diverge", s)
		}
	}
	for v := graph.Vertex(0); v < ep.NumVertices(); v++ {
		de, _ := ep.Degree(v)
		dr, _ := ref.Degree(v)
		if de != dr {
			t.Fatalf("degree[%d] epoch %d, rebuilt %d", v, de, dr)
		}
		ne, _ := ep.Neighbors(v)
		nr, _ := ref.Neighbors(v)
		if !slices.Equal(ne, nr) {
			t.Fatalf("neighbors[%d] epoch %v, rebuilt %v", v, ne, nr)
		}
	}
	ctx := context.Background()
	for _, src := range []graph.Vertex{0, 1, 17, n - 1} {
		for _, k := range []int{1, 2, 3} {
			re, err := ep.KHop(ctx, src, k)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := ref.KHop(ctx, src, k)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(re.Vertices, rr.Vertices) || !slices.Equal(re.Depths, rr.Depths) {
				t.Fatalf("khop(%d,%d) diverges: %d vs %d vertices",
					src, k, len(re.Vertices), len(rr.Vertices))
			}
		}
	}

	// Compaction folds the overlay into a fresh base answering identically.
	compacted, err := ep.Compact()
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, compacted, ref)
}

// TestDeltaRemoveAddCancels: retracting an overlay insertion restores the
// exact prior state, so (add, del) pairs of the same edge cancel.
func TestDeltaRemoveAddCancels(t *testing.T) {
	g := gen.ER(200, 800, 9)
	packed := shardPacked(g, 3, 2)
	base, err := BuildFromShards(g.NumVertices(), packed)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta(3)
	if d.RemoveAdd(0, 5, 9) {
		t.Fatal("removed a nonexistent add")
	}
	d.AddEdge(1, 5, 9)
	if !d.HasAdd(1, 5, 9) {
		t.Fatal("add not visible")
	}
	if !d.RemoveAdd(1, 5, 9) {
		t.Fatal("failed to retract the add")
	}
	if d.AddedEdges() != 0 || d.HasAdd(1, 5, 9) {
		t.Fatal("retraction left residue")
	}
	ep := NewEpoch(base, d, 1)
	for v := graph.Vertex(0); v < base.NumVertices(); v++ {
		de, _ := ep.Degree(v)
		db, _ := base.Degree(v)
		if de != db {
			t.Fatalf("degree[%d] drifted: %d vs %d", v, de, db)
		}
	}
}
