package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/distributedne/dne/internal/graph"
)

// Snapshot persistence: a versioned binary encoding of the shard stores and
// routing table, so a server restarts without re-reading the graph or
// re-running a partitioner. Follows the repository's "DNE1"/"DNP1" header
// idiom ("DNS1").
//
// Layout (all little-endian):
//
//	magic u32, version u32, numVertices u32, numShards u32, numEdges u64
//	master table: numVertices × u32
//	per shard: numLocal u32, vertex ids numLocal × u32 (strictly increasing),
//	           local degrees numLocal × u32, targets Σdeg × u32
//
// The mirror index is not serialized; it is rebuilt from the shard vertex
// lists on read, exactly as Build derives it.

// snapMagic identifies the store snapshot format ("DNS1").
const snapMagic = 0x444e5331

// snapVersion is bumped on incompatible layout changes.
const snapVersion = 1

// maxPrealloc caps slice preallocation driven by untrusted header counts;
// larger slices grow incrementally so a corrupt count fails on short read
// instead of attempting a huge allocation.
const maxPrealloc = 1 << 20

// pageEntries is the number of u32 values buffered per I/O batch (32 KiB).
const pageEntries = 8192

// capCount bounds a header-declared element count for preallocation.
func capCount(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// u32Writer batches u32 values into page-sized writes with a sticky error.
type u32Writer struct {
	w   io.Writer
	buf []byte
	err error
}

func newU32Writer(w io.Writer) *u32Writer {
	return &u32Writer{w: w, buf: make([]byte, 0, pageEntries*4)}
}

func (pw *u32Writer) u32(x uint32) {
	if pw.err != nil {
		return
	}
	pw.buf = binary.LittleEndian.AppendUint32(pw.buf, x)
	if len(pw.buf) == cap(pw.buf) {
		pw.flush()
	}
}

func (pw *u32Writer) flush() {
	if pw.err != nil || len(pw.buf) == 0 {
		return
	}
	_, pw.err = pw.w.Write(pw.buf)
	pw.buf = pw.buf[:0]
}

// readU32s streams count little-endian u32 values from r in page-sized
// chunks, calling fn for each; fn errors abort the read.
func readU32s(r io.Reader, count uint64, fn func(i uint64, x uint32) error) error {
	var page [pageEntries * 4]byte
	var done uint64
	for done < count {
		chunk := uint64(pageEntries)
		if rem := count - done; rem < chunk {
			chunk = rem
		}
		b := page[:chunk*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return err
		}
		for i := uint64(0); i < chunk; i++ {
			if err := fn(done+i, binary.LittleEndian.Uint32(b[i*4:])); err != nil {
				return err
			}
		}
		done += chunk
	}
	return nil
}

// WriteSnapshot serializes st.
func WriteSnapshot(w io.Writer, st *Store) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:], st.numVertices)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(st.shards)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(st.numEdges))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	pw := newU32Writer(bw)
	for _, m := range st.master {
		pw.u32(uint32(m))
	}
	for _, sh := range st.shards {
		pw.u32(uint32(len(sh.verts)))
		for _, v := range sh.verts {
			pw.u32(v)
		}
		for l := range sh.verts {
			pw.u32(uint32(sh.off[l+1] - sh.off[l]))
		}
		for _, t := range sh.tgt {
			pw.u32(t)
		}
	}
	pw.flush()
	if pw.err != nil {
		return pw.err
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a Store from the format written by
// WriteSnapshot. Every id, count and offset is validated so a truncated or
// hostile file errors instead of producing an invalid store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic {
		return nil, fmt.Errorf("store: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != snapVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	numShards := binary.LittleEndian.Uint32(hdr[12:])
	numEdges := binary.LittleEndian.Uint64(hdr[16:])
	if numShards == 0 || numShards > 1<<24 {
		return nil, fmt.Errorf("store: snapshot shard count %d out of range", numShards)
	}
	if numEdges > uint64(n)*uint64(n) {
		return nil, fmt.Errorf("store: snapshot edge count %d impossible for %d vertices", numEdges, n)
	}
	st := &Store{
		numVertices: n,
		numEdges:    int64(numEdges),
		shards:      make([]*shard, numShards),
		master:      make([]int32, 0, capCount(uint64(n))),
	}
	err := readU32s(br, uint64(n), func(i uint64, x uint32) error {
		if x >= numShards {
			return fmt.Errorf("store: master[%d] = %d out of range [0,%d)", i, x, numShards)
		}
		st.master = append(st.master, int32(x))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: reading master table: %w", err)
	}

	var totalEdges uint64
	for s := uint32(0); s < numShards; s++ {
		var cnt [4]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("store: reading shard %d size: %w", s, err)
		}
		numLocal := binary.LittleEndian.Uint32(cnt[:])
		if uint64(numLocal) > uint64(n) {
			return nil, fmt.Errorf("store: shard %d declares %d vertices, graph has %d", s, numLocal, n)
		}
		sh := &shard{
			id:    int(s),
			verts: make([]graph.Vertex, 0, capCount(uint64(numLocal))),
			index: make(map[graph.Vertex]uint32, capCount(uint64(numLocal))),
		}
		err := readU32s(br, uint64(numLocal), func(i uint64, x uint32) error {
			if x >= n {
				return fmt.Errorf("vertex id %d out of range [0,%d)", x, n)
			}
			if len(sh.verts) > 0 && x <= sh.verts[len(sh.verts)-1] {
				return fmt.Errorf("vertex ids not strictly increasing at %d", x)
			}
			sh.index[x] = uint32(len(sh.verts))
			sh.verts = append(sh.verts, x)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: reading shard %d vertices: %w", s, err)
		}
		sh.off = make([]int64, 1, capCount(uint64(numLocal)+1))
		err = readU32s(br, uint64(numLocal), func(i uint64, x uint32) error {
			if x == 0 {
				return fmt.Errorf("vertex %d has zero local degree", sh.verts[i])
			}
			sh.off = append(sh.off, sh.off[len(sh.off)-1]+int64(x))
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: reading shard %d degrees: %w", s, err)
		}
		total := uint64(sh.off[len(sh.off)-1])
		if total%2 != 0 {
			return nil, fmt.Errorf("store: shard %d has odd adjacency total %d", s, total)
		}
		sh.edges = int64(total / 2)
		totalEdges += total / 2
		if totalEdges > numEdges {
			return nil, fmt.Errorf("store: shard edges exceed declared total %d", numEdges)
		}
		sh.tgt = make([]graph.Vertex, 0, capCount(total))
		err = readU32s(br, total, func(i uint64, x uint32) error {
			if x >= n {
				return fmt.Errorf("target id %d out of range [0,%d)", x, n)
			}
			sh.tgt = append(sh.tgt, x)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("store: reading shard %d adjacency: %w", s, err)
		}
		st.shards[s] = sh
	}
	if totalEdges != numEdges {
		return nil, fmt.Errorf("store: shards hold %d edges, header declares %d", totalEdges, numEdges)
	}

	// Rebuild the mirror index from the shard vertex lists, then check the
	// routing table is consistent with it: a covered vertex's master must
	// be one of its replicas.
	st.repOff = make([]int64, n+1)
	for _, sh := range st.shards {
		for _, v := range sh.verts {
			st.repOff[v+1]++
		}
	}
	for v := uint32(0); v < n; v++ {
		st.repOff[v+1] += st.repOff[v]
	}
	st.repShard = make([]int32, st.repOff[n])
	repCursor := make([]int64, n)
	for s, sh := range st.shards {
		for _, v := range sh.verts {
			st.repShard[st.repOff[v]+repCursor[v]] = int32(s)
			repCursor[v]++
		}
	}
	for v := uint32(0); v < n; v++ {
		reps := st.repShard[st.repOff[v]:st.repOff[v+1]]
		if len(reps) == 0 {
			continue
		}
		ok := false
		for _, s := range reps {
			if s == st.master[v] {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("store: master %d of vertex %d is not a replica shard", st.master[v], v)
		}
	}
	st.metrics.init(int(numShards))
	return st, nil
}
