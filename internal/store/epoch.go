package store

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"github.com/distributedne/dne/internal/dsa"
	"github.com/distributedne/dne/internal/graph"
)

// compactYieldStride bounds how long compaction-side loops run between
// voluntary yields. Compaction shares the scheduler with live queries that
// pin epochs instead of locking; on a machine with few cores a compactor
// that only gets preempted every ~10ms would add that quantum to query tail
// latency, so the heavy loops yield every stride iterations (~1ms of work)
// to keep foreground tails near steady state.
const compactYieldStride = 1 << 14

// yieldCounter calls runtime.Gosched every compactYieldStride ticks.
type yieldCounter int

func (y *yieldCounter) tick() {
	if *y++; *y%compactYieldStride == 0 {
		runtime.Gosched()
	}
}

// Epoch layer: the live-graph read path. A Store stays the immutable base;
// arrivals and retractions accumulate in a small mutable Delta owned by the
// writer; publishing freezes the delta into an Epoch — an immutable
// (base, delta) pair readers resolve queries against. Readers pin an epoch
// (one atomic pointer load in the live layer) and never observe a partial
// update; a background compactor folds the delta into a fresh base with
// BuildFromShards and publishes the next epoch.

// BuildFromShards materializes per-shard canonical packed edge lists into a
// Store — the compaction path, where the edge-to-shard assignment already
// exists and no graph or owner array does. shardEdges[s] holds shard s's
// edges as PackEdge keys (u < v); duplicates within a shard and endpoints
// ≥ numVertices are rejected.
func BuildFromShards(numVertices uint32, shardEdges [][]uint64) (*Store, error) {
	numShards := len(shardEdges)
	if numShards == 0 {
		return nil, fmt.Errorf("store: no shards")
	}
	st := &Store{
		numVertices: numVertices,
		shards:      make([]*shard, numShards),
		master:      make([]int32, numVertices),
	}
	var yield yieldCounter
	for s, packed := range shardEdges {
		deg := make(map[graph.Vertex]int64)
		var prev uint64
		for i, k := range packed {
			u, v := graph.Vertex(k>>32), graph.Vertex(k)
			if u >= v {
				return nil, fmt.Errorf("store: shard %d edge %d (%d,%d) not canonical", s, i, u, v)
			}
			if v >= numVertices {
				return nil, fmt.Errorf("store: shard %d edge %d endpoint %d out of range [0,%d)", s, i, v, numVertices)
			}
			if i > 0 && k <= prev {
				return nil, fmt.Errorf("store: shard %d edges not strictly increasing at %d", s, i)
			}
			prev = k
			deg[u]++
			deg[v]++
			yield.tick()
		}
		sh := &shard{id: s, index: make(map[graph.Vertex]uint32, len(deg))}
		sh.verts = make([]graph.Vertex, 0, len(deg))
		for v := range deg {
			sh.verts = append(sh.verts, v)
		}
		dsa.SortU32(sh.verts)
		sh.off = make([]int64, len(sh.verts)+1)
		for l, v := range sh.verts {
			sh.index[v] = uint32(l)
			sh.off[l+1] = sh.off[l] + deg[v]
		}
		sh.tgt = make([]graph.Vertex, sh.off[len(sh.verts)])
		cursor := make([]int64, len(sh.verts))
		for _, k := range packed {
			u, v := graph.Vertex(k>>32), graph.Vertex(k)
			lu, lv := sh.index[u], sh.index[v]
			sh.tgt[sh.off[lu]+cursor[lu]] = v
			cursor[lu]++
			sh.tgt[sh.off[lv]+cursor[lv]] = u
			cursor[lv]++
			yield.tick()
		}
		sh.edges = int64(len(packed))
		st.numEdges += sh.edges
		st.shards[s] = sh
	}
	st.buildRouting()
	st.metrics.init(numShards)
	return st, nil
}

// Delta is the mutable overlay of edge insertions and deletions a live
// writer accumulates between epochs. It is not safe for concurrent use; the
// live layer serializes writers and freezes a snapshot into each published
// Epoch. Deletions may only name base edges — retracting an overlay
// insertion must go through RemoveAdd instead, so an (add, del) pair of the
// same edge cancels exactly.
type Delta struct {
	adds []map[graph.Vertex][]graph.Vertex // per shard: v -> appended neighbors
	dels []map[uint64]struct{}             // per shard: deleted base edges, packed
	addN []int64                           // per-shard inserted edge counts
	delN []int64                           // per-shard deleted edge counts
	maxV graph.Vertex                      // highest vertex id named by an add, +1
}

// NewDelta returns an empty overlay for numShards shards.
func NewDelta(numShards int) *Delta {
	d := &Delta{
		adds: make([]map[graph.Vertex][]graph.Vertex, numShards),
		dels: make([]map[uint64]struct{}, numShards),
		addN: make([]int64, numShards),
		delN: make([]int64, numShards),
	}
	for s := range d.adds {
		d.adds[s] = make(map[graph.Vertex][]graph.Vertex)
		d.dels[s] = make(map[uint64]struct{})
	}
	return d
}

// AddEdge records the insertion of edge (u,v) on shard s.
func (d *Delta) AddEdge(s int, u, v graph.Vertex) {
	d.adds[s][u] = append(d.adds[s][u], v)
	d.adds[s][v] = append(d.adds[s][v], u)
	d.addN[s]++
	if u >= d.maxV {
		d.maxV = u + 1
	}
	if v >= d.maxV {
		d.maxV = v + 1
	}
}

// RemoveAdd retracts a prior AddEdge of (u,v) on shard s, returning false
// if no such overlay insertion exists (the caller then records a base
// deletion instead).
func (d *Delta) RemoveAdd(s int, u, v graph.Vertex) bool {
	if !removeOne(d.adds[s], u, v) {
		return false
	}
	removeOne(d.adds[s], v, u)
	d.addN[s]--
	return true
}

func removeOne(adj map[graph.Vertex][]graph.Vertex, u, v graph.Vertex) bool {
	ns := adj[u]
	for i, w := range ns {
		if w == v {
			ns[i] = ns[len(ns)-1]
			if len(ns) == 1 {
				delete(adj, u)
			} else {
				adj[u] = ns[:len(ns)-1]
			}
			return true
		}
	}
	return false
}

// DelEdge records the deletion of base edge (u,v) from shard s.
func (d *Delta) DelEdge(s int, u, v graph.Vertex) {
	d.dels[s][graph.PackEdge(u, v)] = struct{}{}
	d.delN[s]++
}

// HasDel reports whether base edge (u,v) is already deleted on shard s.
func (d *Delta) HasDel(s int, u, v graph.Vertex) bool {
	_, ok := d.dels[s][graph.PackEdge(u, v)]
	return ok
}

// HasAdd reports whether the overlay holds an insertion of (u,v) on shard s.
func (d *Delta) HasAdd(s int, u, v graph.Vertex) bool {
	for _, w := range d.adds[s][u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddedEdges returns the total overlay insertions across shards.
func (d *Delta) AddedEdges() int64 {
	var t int64
	for _, n := range d.addN {
		t += n
	}
	return t
}

// DeletedEdges returns the total overlay deletions across shards.
func (d *Delta) DeletedEdges() int64 {
	var t int64
	for _, n := range d.delN {
		t += n
	}
	return t
}

// Clone deep-copies the overlay — the publish path, so readers of the
// frozen epoch never race the writer's continuing mutations.
func (d *Delta) Clone() *Delta {
	c := &Delta{
		adds: make([]map[graph.Vertex][]graph.Vertex, len(d.adds)),
		dels: make([]map[uint64]struct{}, len(d.dels)),
		addN: slices.Clone(d.addN),
		delN: slices.Clone(d.delN),
		maxV: d.maxV,
	}
	for s := range d.adds {
		c.adds[s] = make(map[graph.Vertex][]graph.Vertex, len(d.adds[s]))
		for v, ns := range d.adds[s] {
			c.adds[s][v] = slices.Clone(ns)
		}
		c.dels[s] = make(map[uint64]struct{}, len(d.dels[s]))
		for k := range d.dels[s] {
			c.dels[s][k] = struct{}{}
		}
	}
	return c
}

// Epoch is one immutable snapshot of the live graph: a base Store plus a
// frozen Delta (nil for a compacted epoch). Safe for concurrent use;
// queries resolve against base-minus-deletions plus insertions.
type Epoch struct {
	base        *Store
	delta       *Delta
	seq         uint64
	numVertices uint32
}

// NewEpoch freezes (base, delta) into snapshot number seq. delta may be
// nil; the caller must not mutate it afterwards (clone first).
func NewEpoch(base *Store, delta *Delta, seq uint64) *Epoch {
	n := base.numVertices
	if delta != nil && uint32(delta.maxV) > n {
		n = uint32(delta.maxV)
	}
	return &Epoch{base: base, delta: delta, seq: seq, numVertices: n}
}

// Seq returns the epoch's publish sequence number.
func (e *Epoch) Seq() uint64 { return e.seq }

// Base returns the underlying immutable store.
func (e *Epoch) Base() *Store { return e.base }

// NumVertices returns |V| as of this epoch (base, extended by any overlay
// insertions naming new vertex ids).
func (e *Epoch) NumVertices() uint32 { return e.numVertices }

// NumShards returns the shard count.
func (e *Epoch) NumShards() int { return len(e.base.shards) }

// NumEdges returns the live edge count: base + insertions − deletions.
func (e *Epoch) NumEdges() int64 {
	n := e.base.numEdges
	if e.delta != nil {
		n += e.delta.AddedEdges() - e.delta.DeletedEdges()
	}
	return n
}

// ShardEdges returns the live edge count of shard s.
func (e *Epoch) ShardEdges(s int) int64 {
	n := e.base.shards[s].edges
	if e.delta != nil {
		n += e.delta.addN[s] - e.delta.delN[s]
	}
	return n
}

// OverlayEdges returns the overlay's (insertions, deletions) totals — the
// compaction debt of this epoch.
func (e *Epoch) OverlayEdges() (added, deleted int64) {
	if e.delta == nil {
		return 0, 0
	}
	return e.delta.AddedEdges(), e.delta.DeletedEdges()
}

// Replicas returns the shards holding a live copy of v, sorted by shard
// id. Base replica lists are not shrunk by overlay deletions until
// compaction — a fully-deleted replica still answers (with an empty
// adjacency), it just costs a fetch; compaction removes it.
func (e *Epoch) Replicas(v graph.Vertex) []int32 {
	var base []int32
	if v < e.base.numVertices {
		base = e.base.Replicas(v)
	}
	if e.delta == nil {
		return base
	}
	var extra []int32
	for s := range e.delta.adds {
		if len(e.delta.adds[s][v]) == 0 {
			continue
		}
		if _, found := slices.BinarySearch(base, int32(s)); !found {
			extra = append(extra, int32(s))
		}
	}
	if len(extra) == 0 {
		return base
	}
	merged := append(slices.Clone(base), extra...)
	slices.Sort(merged)
	return merged
}

// Master returns the shard owning v's primary copy. Vertices minted by the
// overlay (beyond the base's |V|) are hash-routed until a compaction folds
// them into the base routing table.
func (e *Epoch) Master(v graph.Vertex) (int32, error) {
	if v >= e.numVertices {
		return 0, fmt.Errorf("store: vertex %d out of range [0,%d)", v, e.numVertices)
	}
	if v < e.base.numVertices {
		return e.base.master[v], nil
	}
	return int32(v % uint32(len(e.base.shards))), nil
}

// shardNeighborsInto appends v's live neighbors on shard s to out: the base
// adjacency minus deleted edges, plus overlay insertions.
func (e *Epoch) shardNeighborsInto(s int, v graph.Vertex, out []graph.Vertex) []graph.Vertex {
	if v < e.base.numVertices {
		base := e.base.shards[s].neighborsOf(v)
		if e.delta == nil || len(e.delta.dels[s]) == 0 {
			out = append(out, base...)
		} else {
			for _, w := range base {
				if _, dead := e.delta.dels[s][graph.PackEdge(v, w)]; !dead {
					out = append(out, w)
				}
			}
		}
	}
	if e.delta != nil {
		out = append(out, e.delta.adds[s][v]...)
	}
	return out
}

// ShardHasEdge reports whether shard s holds the live edge (u,v): inserted
// in the overlay, or present in the base and not deleted. Cost is one scan
// of u's local base adjacency, so callers pass the lower-degree endpoint
// as u.
func (e *Epoch) ShardHasEdge(s int, u, v graph.Vertex) bool {
	if e.delta != nil && e.delta.HasAdd(s, u, v) {
		return true
	}
	if u >= e.base.numVertices {
		return false
	}
	for _, w := range e.base.shards[s].neighborsOf(u) {
		if w == v {
			return e.delta == nil || !e.delta.HasDel(s, u, v)
		}
	}
	return false
}

// Degree returns v's live global degree across its replica shards.
func (e *Epoch) Degree(v graph.Vertex) (int64, error) {
	if v >= e.numVertices {
		return 0, fmt.Errorf("store: vertex %d out of range [0,%d)", v, e.numVertices)
	}
	var d int64
	for _, s := range e.Replicas(v) {
		if v < e.base.numVertices {
			d += e.base.shards[s].degreeOf(v)
		}
		if e.delta != nil {
			d += int64(len(e.delta.adds[s][v]))
			if v < e.base.numVertices {
				for _, w := range e.base.shards[s].neighborsOf(v) {
					if _, dead := e.delta.dels[s][graph.PackEdge(v, w)]; dead {
						d--
					}
				}
			}
		}
	}
	return d, nil
}

// Neighbors returns v's live neighbor set, sorted. Each live edge is held
// by exactly one shard, so the per-shard lists concatenate without
// duplicates.
func (e *Epoch) Neighbors(v graph.Vertex) ([]graph.Vertex, error) {
	if v >= e.numVertices {
		return nil, fmt.Errorf("store: vertex %d out of range [0,%d)", v, e.numVertices)
	}
	var out []graph.Vertex
	for _, s := range e.Replicas(v) {
		out = e.shardNeighborsInto(int(s), v, out)
	}
	slices.Sort(out)
	return out, nil
}

// KHop runs the same level-synchronous BFS as Store.KHop, resolved against
// the epoch: one goroutine per touched shard per level, each scanning its
// base adjacency through the deletion filter plus its overlay insertions.
func (e *Epoch) KHop(ctx context.Context, v graph.Vertex, k int) (*KHopResult, error) {
	if v >= e.numVertices {
		return nil, fmt.Errorf("store: vertex %d out of range [0,%d)", v, e.numVertices)
	}
	if k < 0 {
		return nil, fmt.Errorf("store: negative hop count %d", k)
	}
	res := &KHopResult{
		Source:     v,
		K:          k,
		Vertices:   []graph.Vertex{v},
		Depths:     []int32{0},
		LevelSizes: []int64{1},
	}
	visited := make([]uint64, (e.numVertices+63)/64)
	visited[v/64] |= 1 << (v % 64)
	frontier := []graph.Vertex{v}
	numShards := len(e.base.shards)
	perShard := make([][]graph.Vertex, numShards)
	outs := make([][]graph.Vertex, numShards)

	for depth := int32(1); int(depth) <= k && len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for s := range perShard {
			perShard[s] = perShard[s][:0]
		}
		for _, u := range frontier {
			reps := e.Replicas(u)
			for _, s := range reps {
				perShard[s] = append(perShard[s], u)
			}
			res.CrossShardHops += crossHops(len(reps))
		}
		var wg sync.WaitGroup
		for s := range perShard {
			if len(perShard[s]) == 0 {
				outs[s] = outs[s][:0]
				continue
			}
			res.ShardTasks++
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				out := outs[s][:0]
				for _, u := range perShard[s] {
					out = e.shardNeighborsInto(s, u, out)
				}
				outs[s] = out
			}(s)
		}
		wg.Wait()

		var next []graph.Vertex
		for s := range outs {
			for _, w := range outs[s] {
				if visited[w/64]&(1<<(w%64)) == 0 {
					visited[w/64] |= 1 << (w % 64)
					next = append(next, w)
				}
			}
		}
		slices.Sort(next)
		for _, w := range next {
			res.Vertices = append(res.Vertices, w)
			res.Depths = append(res.Depths, depth)
		}
		if len(next) > 0 {
			res.LevelSizes = append(res.LevelSizes, int64(len(next)))
		}
		frontier = next
	}
	return res, nil
}

// ShardEdgesPacked returns shard s's live canonical edge list, sorted — the
// compaction input. Base edges appear twice in the shard CSR (once per
// endpoint), so only the u < w direction is emitted.
func (e *Epoch) ShardEdgesPacked(s int) []uint64 {
	sh := e.base.shards[s]
	out := make([]uint64, 0, e.ShardEdges(s))
	var yield yieldCounter
	for l, u := range sh.verts {
		for _, w := range sh.tgt[sh.off[l]:sh.off[l+1]] {
			yield.tick()
			if u >= w {
				continue
			}
			k := graph.PackEdge(u, w)
			if e.delta != nil {
				if _, dead := e.delta.dels[s][k]; dead {
					continue
				}
			}
			out = append(out, k)
		}
	}
	if e.delta != nil {
		for v, ns := range e.delta.adds[s] {
			for _, w := range ns {
				if v < w {
					out = append(out, graph.PackEdge(v, w))
				}
			}
		}
	}
	slices.Sort(out)
	return out
}

// Compact folds the epoch into a fresh base Store with an empty overlay.
// The result serves identical queries; replica lists shed fully-deleted
// copies and overlay vertices join the routing table.
func (e *Epoch) Compact() (*Store, error) {
	packed := make([][]uint64, len(e.base.shards))
	for s := range packed {
		packed[s] = e.ShardEdgesPacked(s)
	}
	return BuildFromShards(e.numVertices, packed)
}
