package store

import (
	"sync/atomic"
	"time"
)

// queryKind indexes the per-kind query counters.
type queryKind int

const (
	qDegree queryKind = iota
	qNeighbors
	qKHop
	numKinds
)

// metrics is the store's live instrumentation: lock-free counters bumped on
// every query so serving cost can be read off a running store.
type metrics struct {
	queries  [numKinds]atomic.Int64
	hops     atomic.Int64 // cross-shard hops (replica fetches beyond the first)
	tasks    atomic.Int64 // KHop per-shard scan tasks
	latency  atomic.Int64 // summed query wall time, ns
	perShard []atomic.Int64
}

func (m *metrics) init(numShards int) {
	m.perShard = make([]atomic.Int64, numShards)
}

// begin counts one query of kind k and returns the closure that records its
// latency; call it when the query finishes.
func (m *metrics) begin(k queryKind) func() {
	m.queries[k].Add(1)
	start := time.Now()
	return func() { m.latency.Add(int64(time.Since(start))) }
}

func (m *metrics) touchShard(s int) { m.perShard[s].Add(1) }
func (m *metrics) addHops(n int64)  { m.hops.Add(n) }
func (m *metrics) addTasks(n int64) { m.tasks.Add(n) }

// Metrics is a point-in-time snapshot of a store's serving counters.
type Metrics struct {
	DegreeQueries    int64   `json:"degreeQueries"`
	NeighborsQueries int64   `json:"neighborsQueries"`
	KHopQueries      int64   `json:"khopQueries"`
	CrossShardHops   int64   `json:"crossShardHops"`
	ShardTasks       int64   `json:"shardTasks"`
	PerShardTouches  []int64 `json:"perShardTouches"`
	// TotalLatency is the summed wall time of all finished queries.
	TotalLatency time.Duration `json:"totalLatencyNs"`
}

// Queries is the total query count across kinds.
func (m Metrics) Queries() int64 {
	return m.DegreeQueries + m.NeighborsQueries + m.KHopQueries
}

// HopsPerQuery is the average cross-shard fan-out per query — the measured
// serving analogue of the partitioning's replication factor.
func (m Metrics) HopsPerQuery() float64 {
	q := m.Queries()
	if q == 0 {
		return 0
	}
	return float64(m.CrossShardHops) / float64(q)
}

// Metrics returns a snapshot of the store's counters. Queries in flight may
// be partially reflected; counters are individually exact.
func (st *Store) Metrics() Metrics {
	m := Metrics{
		DegreeQueries:    st.metrics.queries[qDegree].Load(),
		NeighborsQueries: st.metrics.queries[qNeighbors].Load(),
		KHopQueries:      st.metrics.queries[qKHop].Load(),
		CrossShardHops:   st.metrics.hops.Load(),
		ShardTasks:       st.metrics.tasks.Load(),
		TotalLatency:     time.Duration(st.metrics.latency.Load()),
		PerShardTouches:  make([]int64, len(st.metrics.perShard)),
	}
	for i := range st.metrics.perShard {
		m.PerShardTouches[i] = st.metrics.perShard[i].Load()
	}
	return m
}

// ResetMetrics zeroes all counters (between workload phases).
func (st *Store) ResetMetrics() {
	for k := range st.metrics.queries {
		st.metrics.queries[k].Store(0)
	}
	st.metrics.hops.Store(0)
	st.metrics.tasks.Store(0)
	st.metrics.latency.Store(0)
	for i := range st.metrics.perShard {
		st.metrics.perShard[i].Store(0)
	}
}
