package store

import (
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/obs"
)

// queryKind indexes the per-kind query counters.
type queryKind int

const (
	qDegree queryKind = iota
	qNeighbors
	qKHop
	numKinds
)

// kindNames are the exported label values, indexed by queryKind.
var kindNames = [numKinds]string{"degree", "neighbors", "khop"}

// Obs bundles the store's externally registered instruments: per-endpoint
// latency histograms and the exported touch/hop/task counters. All handles
// are nil-safe, so a store with no Obs (or a nil registry) records nothing
// beyond its built-in counters. One Obs may be shared by many stores — the
// families then aggregate across them, which is what a serving process
// wants on /metrics.
type Obs struct {
	latency [numKinds]*obs.Histogram
	touches *obs.Counter
	hops    *obs.Counter
	tasks   *obs.Counter
}

// NewObs registers the store metric families on reg and returns the handle
// to hang on stores via SetObs. A nil registry yields a fully no-op handle.
func NewObs(reg *obs.Registry) *Obs {
	o := &Obs{
		touches: reg.Counter("dne_store_shard_touches_total",
			"Shard fetches performed by store queries."),
		hops: reg.Counter("dne_store_cross_shard_hops_total",
			"Replica fetches beyond the first, summed over queries."),
		tasks: reg.Counter("dne_store_shard_tasks_total",
			"Per-shard scan tasks fanned out by KHop traversals."),
	}
	for k := range o.latency {
		o.latency[k] = reg.DurationHistogram("dne_store_query_duration_seconds",
			"Store query latency by endpoint.", "kind", kindNames[k])
	}
	return o
}

// metrics is the store's live instrumentation: lock-free counters bumped on
// every query so serving cost can be read off a running store, plus the
// optional obs handles exported on /metrics.
type metrics struct {
	queries  [numKinds]atomic.Int64
	hops     atomic.Int64 // cross-shard hops (replica fetches beyond the first)
	tasks    atomic.Int64 // KHop per-shard scan tasks
	latency  atomic.Int64 // summed query wall time, ns
	perShard []atomic.Int64
	obs      atomic.Pointer[Obs] // nil = uninstrumented
}

func (m *metrics) init(numShards int) {
	m.perShard = make([]atomic.Int64, numShards)
}

// SetObs attaches (or, with nil, detaches) the exported instruments.
// Safe to call on a serving store; queries pick the handle up atomically.
func (st *Store) SetObs(o *Obs) { st.metrics.obs.Store(o) }

// begin counts one query of kind k and returns the closure that records its
// latency; call it when the query finishes.
func (m *metrics) begin(k queryKind) func() {
	m.queries[k].Add(1)
	start := time.Now()
	return func() {
		d := int64(time.Since(start))
		m.latency.Add(d)
		if o := m.obs.Load(); o != nil {
			o.latency[k].Observe(d)
		}
	}
}

func (m *metrics) touchShard(s int) {
	m.perShard[s].Add(1)
	if o := m.obs.Load(); o != nil {
		o.touches.Inc()
	}
}

func (m *metrics) addHops(n int64) {
	m.hops.Add(n)
	if o := m.obs.Load(); o != nil {
		o.hops.Add(n)
	}
}

func (m *metrics) addTasks(n int64) {
	m.tasks.Add(n)
	if o := m.obs.Load(); o != nil {
		o.tasks.Add(n)
	}
}

// Metrics is a point-in-time snapshot of a store's serving counters.
type Metrics struct {
	DegreeQueries    int64   `json:"degreeQueries"`
	NeighborsQueries int64   `json:"neighborsQueries"`
	KHopQueries      int64   `json:"khopQueries"`
	CrossShardHops   int64   `json:"crossShardHops"`
	ShardTasks       int64   `json:"shardTasks"`
	PerShardTouches  []int64 `json:"perShardTouches"`
	// TotalLatency is the summed wall time of all finished queries.
	TotalLatency time.Duration `json:"totalLatencyNs"`
}

// Queries is the total query count across kinds.
func (m Metrics) Queries() int64 {
	return m.DegreeQueries + m.NeighborsQueries + m.KHopQueries
}

// HopsPerQuery is the average cross-shard fan-out per query — the measured
// serving analogue of the partitioning's replication factor.
func (m Metrics) HopsPerQuery() float64 {
	q := m.Queries()
	if q == 0 {
		return 0
	}
	return float64(m.CrossShardHops) / float64(q)
}

// Metrics returns a snapshot of the store's counters. Queries in flight may
// be partially reflected; counters are individually exact.
func (st *Store) Metrics() Metrics {
	m := Metrics{
		DegreeQueries:    st.metrics.queries[qDegree].Load(),
		NeighborsQueries: st.metrics.queries[qNeighbors].Load(),
		KHopQueries:      st.metrics.queries[qKHop].Load(),
		CrossShardHops:   st.metrics.hops.Load(),
		ShardTasks:       st.metrics.tasks.Load(),
		TotalLatency:     time.Duration(st.metrics.latency.Load()),
		PerShardTouches:  make([]int64, len(st.metrics.perShard)),
	}
	for i := range st.metrics.perShard {
		m.PerShardTouches[i] = st.metrics.perShard[i].Load()
	}
	return m
}

// ResetMetrics zeroes all counters (between workload phases).
func (st *Store) ResetMetrics() {
	for k := range st.metrics.queries {
		st.metrics.queries[k].Store(0)
	}
	st.metrics.hops.Store(0)
	st.metrics.tasks.Store(0)
	st.metrics.latency.Store(0)
	for i := range st.metrics.perShard {
		st.metrics.perShard[i].Store(0)
	}
}
