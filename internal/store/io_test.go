package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func TestSnapshotRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		orig := buildRandom(t, g, 5, 21)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, orig); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.NumVertices() != orig.NumVertices() || got.NumEdges() != orig.NumEdges() ||
			got.NumShards() != orig.NumShards() || got.TotalReplicas() != orig.TotalReplicas() {
			t.Fatalf("%s: shape mismatch after round trip", name)
		}
		for v := graph.Vertex(0); v < g.NumVertices(); v++ {
			mo, _ := orig.Master(v)
			mg, _ := got.Master(v)
			if mo != mg {
				t.Fatalf("%s: master(%d) %d != %d", name, v, mg, mo)
			}
			do, _ := orig.Degree(v)
			dg, _ := got.Degree(v)
			if do != dg {
				t.Fatalf("%s: degree(%d) %d != %d", name, v, dg, do)
			}
		}
		// Traversals agree after restore.
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 5; trial++ {
			src := graph.Vertex(rng.Intn(int(g.NumVertices())))
			a, err := orig.KHop(context.Background(), src, 3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.KHop(context.Background(), src, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Vertices) != len(b.Vertices) || a.CrossShardHops != b.CrossShardHops {
				t.Fatalf("%s: khop diverged after round trip", name)
			}
			for i := range a.Vertices {
				if a.Vertices[i] != b.Vertices[i] || a.Depths[i] != b.Depths[i] {
					t.Fatalf("%s: khop vertex %d diverged", name, i)
				}
			}
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("definitely not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	g := gen.ER(300, 1200, 3)
	st := buildRandom(t, g, 4, 3)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must error, never yield a store.
	for _, cut := range []int{1, 10, 23, 24, 100, len(full) / 2, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func corruptAt(t *testing.T, mutate func(b []byte)) error {
	t.Helper()
	g := gen.ER(100, 400, 8)
	st := buildRandom(t, g, 4, 8)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	mutate(b)
	_, err := ReadSnapshot(bytes.NewReader(b))
	return err
}

func TestSnapshotRejectsCorruptHeader(t *testing.T) {
	cases := map[string]func(b []byte){
		"bad magic":   func(b []byte) { b[0] = 'X' },
		"bad version": func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) },
		"zero shards": func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) },
		"huge shards": func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1<<31-1) },
		// Hostile edge count: the reader must fail on the count mismatch,
		// not allocate per the header.
		"huge edges":        func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) },
		"impossible edges":  func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<62) },
		"master out of rng": func(b []byte) { binary.LittleEndian.PutUint32(b[24:], 1<<20) },
	}
	for name, mutate := range cases {
		if err := corruptAt(t, mutate); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotRejectsHostileVertexCount(t *testing.T) {
	// A header that claims 2^32-1 vertices over a tiny body must error from
	// a short read without preallocating gigabytes (capped prealloc).
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 1<<32-1)
	binary.LittleEndian.PutUint32(hdr[12:], 4)
	binary.LittleEndian.PutUint64(hdr[16:], 10)
	body := append(hdr[:], make([]byte, 64)...)
	if _, err := ReadSnapshot(bytes.NewReader(body)); err == nil {
		t.Error("hostile vertex count accepted")
	}
}
