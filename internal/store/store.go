// Package store is the online serving layer over an edge partitioning: it
// materializes a partitioning into immutable per-shard CSR stores plus a
// vertex→master routing table and mirror index, and serves concurrent
// point and traversal queries across the shards.
//
// The offline partitioners in this repository minimize replication factor
// (Eq. 1 of the paper); the store turns that static metric into a measured
// serving cost. Every query records how many shards it had to touch beyond
// the first — the cross-shard hops — so two partitionings with different
// replication factors produce measurably different serving traffic for the
// same workload.
package store

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"github.com/distributedne/dne/internal/dsa"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// shard is one partition's immutable CSR slice of the graph: the edges the
// partitioning assigned to it, indexed by the (global) vertices they touch.
type shard struct {
	id    int
	verts []graph.Vertex          // global ids present in this shard, sorted
	index map[graph.Vertex]uint32 // global id -> local slot
	off   []int64                 // CSR offsets, len(verts)+1
	tgt   []graph.Vertex          // neighbor global ids
	edges int64                   // owned edge count
}

// degreeOf returns v's local degree in the shard (0 if absent).
func (s *shard) degreeOf(v graph.Vertex) int64 {
	l, ok := s.index[v]
	if !ok {
		return 0
	}
	return s.off[l+1] - s.off[l]
}

// neighborsOf returns v's local adjacency slice (nil if absent). Callers
// must not mutate it.
func (s *shard) neighborsOf(v graph.Vertex) []graph.Vertex {
	l, ok := s.index[v]
	if !ok {
		return nil
	}
	return s.tgt[s.off[l]:s.off[l+1]]
}

// Store serves point and traversal queries over a sharded graph. It is
// immutable after Build/ReadSnapshot and safe for concurrent use.
type Store struct {
	numVertices uint32
	numEdges    int64
	shards      []*shard

	// master[v] is the shard that owns v's primary copy: the replica shard
	// where v has the highest local degree (ties to the lowest shard id).
	// Isolated vertices are hash-routed so every vertex has exactly one
	// master even when no edge covers it.
	master []int32

	// Mirror index, flattened: replicas of v are
	// repShard[repOff[v]:repOff[v+1]], sorted by shard id. A vertex's
	// mirrors are its replicas minus its master.
	repOff   []int64
	repShard []int32

	metrics metrics
}

// Build materializes a partitioner result into a Store.
func Build(g *graph.Graph, res *partition.Result) (*Store, error) {
	if res == nil || res.Partitioning == nil {
		return nil, fmt.Errorf("store: nil partitioning result")
	}
	return BuildPartitioning(g, res.Partitioning)
}

// BuildPartitioning materializes a raw partitioning into a Store. The
// partitioning must be complete and in range for g (Validate).
func BuildPartitioning(g *graph.Graph, p *partition.Partitioning) (*Store, error) {
	if err := p.Validate(g); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if p.NumParts <= 0 {
		return nil, fmt.Errorf("store: no shards")
	}
	numShards := p.NumParts
	n := g.NumVertices()

	// Local degree of every (shard, vertex) pair with at least one owned
	// edge: each edge contributes to both endpoints in its owner shard.
	deg := make([]map[graph.Vertex]int64, numShards)
	for s := range deg {
		deg[s] = make(map[graph.Vertex]int64)
	}
	for i, o := range p.Owner {
		e := g.Edge(int64(i))
		deg[o][e.U]++
		deg[o][e.V]++
	}

	st := &Store{
		numVertices: n,
		numEdges:    g.NumEdges(),
		shards:      make([]*shard, numShards),
		master:      make([]int32, n),
	}
	for s := 0; s < numShards; s++ {
		sh := &shard{id: s, index: make(map[graph.Vertex]uint32, len(deg[s]))}
		sh.verts = make([]graph.Vertex, 0, len(deg[s]))
		for v := range deg[s] {
			sh.verts = append(sh.verts, v)
		}
		dsa.SortU32(sh.verts)
		sh.off = make([]int64, len(sh.verts)+1)
		for l, v := range sh.verts {
			sh.index[v] = uint32(l)
			sh.off[l+1] = sh.off[l] + deg[s][v]
		}
		sh.tgt = make([]graph.Vertex, sh.off[len(sh.verts)])
		st.shards[s] = sh
	}

	// Fill adjacency: one pass over the edges, appending each endpoint to
	// the other's local list in the owner shard.
	cursor := make([][]int64, numShards)
	for s := range cursor {
		cursor[s] = make([]int64, len(st.shards[s].verts))
	}
	for i, o := range p.Owner {
		e := g.Edge(int64(i))
		sh := st.shards[o]
		lu, lv := sh.index[e.U], sh.index[e.V]
		sh.tgt[sh.off[lu]+cursor[o][lu]] = e.V
		cursor[o][lu]++
		sh.tgt[sh.off[lv]+cursor[o][lv]] = e.U
		cursor[o][lv]++
		sh.edges++
	}

	st.buildRouting()
	st.metrics.init(numShards)
	return st, nil
}

// buildRouting derives the mirror index and master table from the filled
// shards: replica lists sorted by shard id, masters at the replica shard
// with the highest local degree (ties to the lowest id), isolated vertices
// hash-routed so routing is total. Shared by BuildPartitioning and
// BuildFromShards so the two construction paths cannot drift.
func (st *Store) buildRouting() {
	n := st.numVertices
	numShards := len(st.shards)

	// Mirror index: replica count per vertex, then a fill pass in shard
	// order so each vertex's replica list comes out sorted by shard id.
	st.repOff = make([]int64, n+1)
	for s := 0; s < numShards; s++ {
		for _, v := range st.shards[s].verts {
			st.repOff[v+1]++
		}
	}
	for v := uint32(0); v < n; v++ {
		st.repOff[v+1] += st.repOff[v]
	}
	st.repShard = make([]int32, st.repOff[n])
	repCursor := make([]int64, n)
	for s := 0; s < numShards; s++ {
		for _, v := range st.shards[s].verts {
			st.repShard[st.repOff[v]+repCursor[v]] = int32(s)
			repCursor[v]++
		}
	}

	// Route every vertex to a master: the replica shard with the highest
	// local degree; isolated vertices hash to a shard so routing is total.
	for v := uint32(0); v < n; v++ {
		reps := st.repShard[st.repOff[v]:st.repOff[v+1]]
		if len(reps) == 0 {
			st.master[v] = int32(v % uint32(numShards))
			continue
		}
		best := reps[0]
		bestDeg := st.shards[best].degreeOf(v)
		for _, s := range reps[1:] {
			if d := st.shards[s].degreeOf(v); d > bestDeg {
				best, bestDeg = s, d
			}
		}
		st.master[v] = best
	}
}

// NumVertices returns |V| of the graph the store was built from.
func (st *Store) NumVertices() uint32 { return st.numVertices }

// NumEdges returns the total owned edge count across shards (== |E|).
func (st *Store) NumEdges() int64 { return st.numEdges }

// NumShards returns the shard count (the partitioning's NumParts).
func (st *Store) NumShards() int { return len(st.shards) }

// ShardEdges returns the number of edges owned by shard s.
func (st *Store) ShardEdges(s int) int64 { return st.shards[s].edges }

// ShardVertices returns the number of vertex replicas held by shard s.
func (st *Store) ShardVertices(s int) int { return len(st.shards[s].verts) }

// Master returns the shard owning v's primary copy.
func (st *Store) Master(v graph.Vertex) (int32, error) {
	if v >= st.numVertices {
		return 0, fmt.Errorf("store: vertex %d out of range [0,%d)", v, st.numVertices)
	}
	return st.master[v], nil
}

// Replicas returns the shards holding a copy of v, sorted by shard id.
// Callers must not mutate the returned slice.
func (st *Store) Replicas(v graph.Vertex) []int32 {
	if v >= st.numVertices {
		return nil
	}
	return st.repShard[st.repOff[v]:st.repOff[v+1]]
}

// TotalReplicas returns Σp |V(Ep)| — the numerator of the paper's
// replication factor, and the size of the mirror index.
func (st *Store) TotalReplicas() int64 { return int64(len(st.repShard)) }

// ReplicationFactor returns TotalReplicas / |V| (0 for an empty store).
func (st *Store) ReplicationFactor() float64 {
	if st.numVertices == 0 {
		return 0
	}
	return float64(len(st.repShard)) / float64(st.numVertices)
}

// Degree returns v's global degree by summing its local degree on every
// replica shard. Touching each replica beyond the first counts as a
// cross-shard hop.
func (st *Store) Degree(v graph.Vertex) (int64, error) {
	stop := st.metrics.begin(qDegree)
	defer stop()
	if v >= st.numVertices {
		return 0, fmt.Errorf("store: vertex %d out of range [0,%d)", v, st.numVertices)
	}
	var d int64
	reps := st.Replicas(v)
	for _, s := range reps {
		st.metrics.touchShard(int(s))
		d += st.shards[s].degreeOf(v)
	}
	st.metrics.addHops(crossHops(len(reps)))
	return d, nil
}

// Neighbors returns v's full neighbor set. Each edge lives on exactly one
// shard, so the per-shard adjacency lists are disjoint and their
// concatenation (master shard first, then mirrors) is the global list,
// which is sorted before returning.
func (st *Store) Neighbors(v graph.Vertex) ([]graph.Vertex, error) {
	stop := st.metrics.begin(qNeighbors)
	defer stop()
	if v >= st.numVertices {
		return nil, fmt.Errorf("store: vertex %d out of range [0,%d)", v, st.numVertices)
	}
	reps := st.Replicas(v)
	var out []graph.Vertex
	m := st.master[v]
	for _, s := range reps {
		if s != m {
			continue
		}
		st.metrics.touchShard(int(s))
		out = append(out, st.shards[s].neighborsOf(v)...)
	}
	for _, s := range reps {
		if s == m {
			continue
		}
		st.metrics.touchShard(int(s))
		out = append(out, st.shards[s].neighborsOf(v)...)
	}
	st.metrics.addHops(crossHops(len(reps)))
	slices.Sort(out)
	return out, nil
}

// DegreeBatch returns the global degree of every vertex in vs.
func (st *Store) DegreeBatch(vs []graph.Vertex) ([]int64, error) {
	out := make([]int64, len(vs))
	for i, v := range vs {
		d, err := st.Degree(v)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// NeighborsBatch returns the neighbor set of every vertex in vs.
func (st *Store) NeighborsBatch(vs []graph.Vertex) ([][]graph.Vertex, error) {
	out := make([][]graph.Vertex, len(vs))
	for i, v := range vs {
		ns, err := st.Neighbors(v)
		if err != nil {
			return nil, err
		}
		out[i] = ns
	}
	return out, nil
}

// crossHops is the cross-shard cost of touching r replica shards: the
// fetches beyond the first. A vertex mastered and mirrored nowhere else
// costs zero; every extra mirror is one hop — which is exactly what a low
// replication factor minimizes.
func crossHops(r int) int64 {
	if r <= 1 {
		return 0
	}
	return int64(r - 1)
}

// KHopResult is the outcome of a KHop traversal.
type KHopResult struct {
	Source graph.Vertex
	K      int
	// Vertices are all vertices within distance ≤ K of Source (Source
	// included), ordered by (depth, id); Depths is parallel to it.
	Vertices []graph.Vertex
	Depths   []int32
	// LevelSizes[d] is the number of vertices first reached at depth d.
	LevelSizes []int64
	// CrossShardHops is the replica fetches beyond the first per expanded
	// frontier vertex — the traffic a distributed BFS pays for mirrors.
	CrossShardHops int64
	// ShardTasks is the number of per-shard scan tasks the traversal
	// fanned out (one goroutine each).
	ShardTasks int64
}

// KHop runs a level-synchronous BFS from v to depth k. Each level the
// frontier is routed to every shard holding a copy of a frontier vertex;
// one goroutine per touched shard scans its local adjacency, and the
// results merge into the next frontier. The fan-out is where a
// partitioning's replication factor becomes serving cost: every mirror of
// a frontier vertex is one extra shard fetch.
func (st *Store) KHop(ctx context.Context, v graph.Vertex, k int) (*KHopResult, error) {
	stop := st.metrics.begin(qKHop)
	defer stop()
	if v >= st.numVertices {
		return nil, fmt.Errorf("store: vertex %d out of range [0,%d)", v, st.numVertices)
	}
	if k < 0 {
		return nil, fmt.Errorf("store: negative hop count %d", k)
	}
	res := &KHopResult{
		Source:     v,
		K:          k,
		Vertices:   []graph.Vertex{v},
		Depths:     []int32{0},
		LevelSizes: []int64{1},
	}
	visited := make([]uint64, (st.numVertices+63)/64)
	visited[v/64] |= 1 << (v % 64)
	frontier := []graph.Vertex{v}
	perShard := make([][]graph.Vertex, len(st.shards))
	outs := make([][]graph.Vertex, len(st.shards))

	for depth := int32(1); int(depth) <= k && len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Route the frontier: every replica shard of a frontier vertex
		// must scan its share of the adjacency, since each shard holds a
		// disjoint subset of the incident edges.
		for s := range perShard {
			perShard[s] = perShard[s][:0]
		}
		for _, u := range frontier {
			reps := st.Replicas(u)
			for _, s := range reps {
				perShard[s] = append(perShard[s], u)
			}
			res.CrossShardHops += crossHops(len(reps))
		}
		var wg sync.WaitGroup
		for s := range perShard {
			if len(perShard[s]) == 0 {
				outs[s] = outs[s][:0]
				continue
			}
			res.ShardTasks++
			st.metrics.touchShard(s)
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sh := st.shards[s]
				out := outs[s][:0]
				for _, u := range perShard[s] {
					out = append(out, sh.neighborsOf(u)...)
				}
				outs[s] = out
			}(s)
		}
		wg.Wait()

		var next []graph.Vertex
		for s := range outs {
			for _, w := range outs[s] {
				if visited[w/64]&(1<<(w%64)) == 0 {
					visited[w/64] |= 1 << (w % 64)
					next = append(next, w)
				}
			}
		}
		slices.Sort(next)
		for _, w := range next {
			res.Vertices = append(res.Vertices, w)
			res.Depths = append(res.Depths, depth)
		}
		if len(next) > 0 {
			res.LevelSizes = append(res.LevelSizes, int64(len(next)))
		}
		frontier = next
	}
	st.metrics.addHops(res.CrossShardHops)
	st.metrics.addTasks(res.ShardTasks)
	return res, nil
}
