// Package datasets provides named synthetic stand-ins for the paper's
// evaluation datasets (Table 2 and §7.7). The real graphs (Pokec … WebUK,
// SNAP road networks) are not redistributable with this repository, so each
// stand-in matches its original's degree skew (RMAT recursive structure,
// web-like graphs use a heavier diagonal) and edge factor, scaled down by
// roughly 64× so every experiment runs on one host. Pass a positive shift to
// Build to scale any dataset back up toward paper size.
package datasets

import (
	"fmt"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// Spec describes one synthetic stand-in.
type Spec struct {
	// Name matches the paper's dataset label.
	Name string
	// Scale: the stand-in has 2^Scale vertices by default.
	Scale int
	// EdgeFactor: edge samples per vertex (paper's EF column).
	EdgeFactor int
	// Params: RMAT quadrant probabilities (web graphs are more diagonal).
	Params gen.RMATParams
	Seed   int64
	// PaperVertices/PaperEdges record the original's size for reporting.
	PaperVertices string
	PaperEdges    string
}

// Build generates the graph with 2^(Scale+shift) vertices (shift may be
// negative for quick tests).
func (s Spec) Build(shift int) *graph.Graph {
	sc := s.Scale + shift
	if sc < 4 {
		sc = 4
	}
	return gen.RMATWith(s.Params, sc, s.EdgeFactor, s.Seed)
}

func (s Spec) String() string {
	return fmt.Sprintf("%s(2^%d,EF%d)", s.Name, s.Scale, s.EdgeFactor)
}

var social = gen.Graph500
var webby = gen.RMATParams{A: 0.65, B: 0.15, C: 0.15, D: 0.05}

// Skewed are the seven skewed stand-ins of Table 2, in the paper's order.
var Skewed = []Spec{
	{Name: "Pokec", Scale: 14, EdgeFactor: 19, Params: social, Seed: 101, PaperVertices: "1.63M", PaperEdges: "30.62M"},
	{Name: "Flickr", Scale: 14, EdgeFactor: 14, Params: social, Seed: 102, PaperVertices: "2.30M", PaperEdges: "33.14M"},
	{Name: "LiveJ.", Scale: 15, EdgeFactor: 14, Params: social, Seed: 103, PaperVertices: "4.84M", PaperEdges: "68.47M"},
	{Name: "Orkut", Scale: 14, EdgeFactor: 38, Params: social, Seed: 104, PaperVertices: "3.07M", PaperEdges: "117.18M"},
	{Name: "Twitter", Scale: 15, EdgeFactor: 32, Params: social, Seed: 105, PaperVertices: "41.65M", PaperEdges: "1.46B"},
	{Name: "FriendSter", Scale: 15, EdgeFactor: 27, Params: social, Seed: 106, PaperVertices: "65.60M", PaperEdges: "1.80B"},
	{Name: "WebUK", Scale: 15, EdgeFactor: 32, Params: webby, Seed: 107, PaperVertices: "105.15M", PaperEdges: "3.72B"},
}

// Mid returns the four mid-size stand-ins used by Fig. 6 and Table 4
// (Pokec, Flickr, LiveJ., Orkut).
func Mid() []Spec { return Skewed[:4] }

// ByName returns the skewed stand-in with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Skewed {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// RoadSpec describes one §7.7 road-network stand-in.
type RoadSpec struct {
	Name       string
	Rows, Cols int
	Seed       int64
}

// Build generates the lattice. shift scales the side lengths by 2^(shift/2)
// steps (0 = default).
func (r RoadSpec) Build(shift int) *graph.Graph {
	f := 1.0
	for i := 0; i < shift; i++ {
		f *= 1.4
	}
	for i := 0; i > shift; i-- {
		f /= 1.4
	}
	rows := int(float64(r.Rows) * f)
	cols := int(float64(r.Cols) * f)
	if rows < 8 {
		rows = 8
	}
	if cols < 8 {
		cols = 8
	}
	return gen.Road(rows, cols, r.Seed)
}

// Roads are stand-ins for the California / Pennsylvania / Texas road
// networks (~1/10 linear scale of the originals).
var Roads = []RoadSpec{
	{Name: "Calif.", Rows: 200, Cols: 220, Seed: 201},
	{Name: "Penn.", Rows: 150, Cols: 160, Seed: 202},
	{Name: "Tex.", Rows: 170, Cols: 180, Seed: 203},
}
