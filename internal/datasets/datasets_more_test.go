package datasets

import (
	"testing"
)

func TestAllSkewedSpecsBuild(t *testing.T) {
	for _, s := range Skewed {
		g := s.Build(-4) // tiny
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", s.Name)
		}
	}
}

func TestShiftScalesEdges(t *testing.T) {
	s := Skewed[0]
	small := s.Build(-4)
	big := s.Build(-2)
	if big.NumEdges() < 2*small.NumEdges() {
		t.Errorf("shift -2 edges %d not well above shift -4 edges %d",
			big.NumEdges(), small.NumEdges())
	}
}

func TestByNameAllSpecs(t *testing.T) {
	for _, s := range Skewed {
		got, ok := ByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("ByName(%q) failed", s.Name)
		}
	}
	if _, ok := ByName("definitely-not-a-dataset"); ok {
		t.Error("unknown name resolved")
	}
}

func TestMidIsSubsetOfSkewed(t *testing.T) {
	mid := Mid()
	if len(mid) == 0 || len(mid) > len(Skewed) {
		t.Fatalf("Mid() size %d", len(mid))
	}
	for i, s := range mid {
		if s.Name != Skewed[i].Name {
			t.Errorf("Mid()[%d] = %s, want %s", i, s.Name, Skewed[i].Name)
		}
	}
}

func TestRoadSpecsBuild(t *testing.T) {
	for _, r := range Roads {
		g := r.Build(-4)
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty road network", r.Name)
		}
		// Road networks are sparse: average degree must stay below ~4.
		if g.AvgDegree() > 4.5 {
			t.Errorf("%s: avg degree %.2f too high for a road network", r.Name, g.AvgDegree())
		}
	}
}
