package datasets

import "testing"

func TestSkewedSpecsBuild(t *testing.T) {
	for _, spec := range Skewed {
		g := spec.Build(-4) // tiny for test speed
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", spec.Name)
		}
		// Every stand-in must be skewed: heavy tail far above the mean.
		if g.MaxDegree() < 5*int64(g.AvgDegree()) {
			t.Errorf("%s: max degree %d vs avg %.1f — not skewed", spec.Name, g.MaxDegree(), g.AvgDegree())
		}
	}
}

func TestShiftScalesVertices(t *testing.T) {
	spec := Skewed[0]
	small := spec.Build(-2)
	big := spec.Build(-1)
	if big.NumVertices() != 2*small.NumVertices() {
		t.Errorf("shift must double vertices: %d vs %d", small.NumVertices(), big.NumVertices())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Twitter"); !ok {
		t.Error("Twitter stand-in missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestMidIsFour(t *testing.T) {
	mid := Mid()
	if len(mid) != 4 || mid[0].Name != "Pokec" || mid[3].Name != "Orkut" {
		t.Errorf("Mid() = %v", mid)
	}
}

func TestRoadsBuildNonSkewed(t *testing.T) {
	for _, rd := range Roads {
		g := rd.Build(-2)
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty road network", rd.Name)
		}
		if g.MaxDegree() > 8 {
			t.Errorf("%s: max degree %d — road networks are near-uniform", rd.Name, g.MaxDegree())
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Skewed[0].String()
	if s == "" {
		t.Error("empty spec string")
	}
}
