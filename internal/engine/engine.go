// Package engine is a vertex-cut (edge-partitioned) distributed
// graph-processing engine in the PowerGraph/PowerLyra family, used to
// reproduce Table 5 (§7.6): it executes SSSP, WCC and PageRank over any edge
// partitioning and reports elapsed time, per-partition workload balance and
// the master–mirror replica synchronisation volume that partition quality
// controls.
//
// Execution follows the synchronous gather-apply-scatter model: each
// partition owns its edge set and computes partial per-vertex aggregates
// locally; mirrors ship partials to each vertex's master (gather), masters
// apply the update, and new values are shipped back to mirrors (scatter).
// Communication is accounted analytically — valueBytes per mirror hop — and
// per-partition busy time is measured on real goroutines.
package engine

import (
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// valueBytes is the accounted wire size of one vertex value update
// (vertex id + value).
const valueBytes = 12

// localEdge is an edge in partition-local vertex indices.
type localEdge struct {
	u, v int32
}

// part is one partition's share of the graph.
type part struct {
	verts []graph.Vertex // sorted global ids of local vertices (replicas)
	edges []localEdge
	busy  time.Duration // accumulated compute time
}

func (p *part) localID(v graph.Vertex) int32 {
	i := sort.Search(len(p.verts), func(i int) bool { return p.verts[i] >= v })
	return int32(i)
}

// Engine executes vertex programs over an edge-partitioned graph.
type Engine struct {
	g     *graph.Graph
	parts []*part
	// replicasOf[v] = partitions holding v (sorted); masterOf[v] is the
	// first of them.
	replicasOf [][]int32
	masterOf   []int32

	// CommBytes accumulates gather+scatter traffic across all supersteps.
	CommBytes int64
	// Supersteps counts executed iterations.
	Supersteps int
}

// New builds an engine from a complete partitioning of g.
func New(g *graph.Graph, pt *partition.Partitioning) *Engine {
	e := &Engine{g: g}
	e.parts = make([]*part, pt.NumParts)
	for q := range e.parts {
		e.parts[q] = &part{}
	}
	n := int(g.NumVertices())
	e.replicasOf = make([][]int32, n)
	e.masterOf = make([]int32, n)
	for v := range e.masterOf {
		e.masterOf[v] = -1
	}
	// Collect local vertex sets.
	for i, o := range pt.Owner {
		ed := g.Edge(int64(i))
		for _, v := range [2]graph.Vertex{ed.U, ed.V} {
			reps := e.replicasOf[v]
			found := false
			for _, r := range reps {
				if r == o {
					found = true
					break
				}
			}
			if !found {
				e.replicasOf[v] = append(reps, o)
			}
		}
	}
	for v := 0; v < n; v++ {
		reps := e.replicasOf[v]
		slices.Sort(reps)
		if len(reps) > 0 {
			e.masterOf[v] = reps[0]
		}
		for _, q := range reps {
			e.parts[q].verts = append(e.parts[q].verts, graph.Vertex(v))
		}
	}
	// Local edge lists in local indices (verts are already sorted because
	// they were appended in ascending v order).
	for i, o := range pt.Owner {
		ed := g.Edge(int64(i))
		p := e.parts[o]
		p.edges = append(p.edges, localEdge{p.localID(ed.U), p.localID(ed.V)})
	}
	return e
}

// NewFromSource builds an engine from an edge source and a partitioning
// computed over that source (methods.PartitionSource): the source is
// materialized once — the engine's superstep machinery needs the CSR — and
// for canonical sources the owner indexing lines up exactly with the
// materialized edge list.
func NewFromSource(src graph.Source, pt *partition.Partitioning) (*Engine, error) {
	g, err := graph.FromSource(src, nil)
	if err != nil {
		return nil, err
	}
	if err := pt.Validate(g); err != nil {
		return nil, err
	}
	return New(g, pt), nil
}

// NumParts returns the partition count.
func (e *Engine) NumParts() int { return len(e.parts) }

// WorkloadBalance returns max/mean of per-partition busy time accumulated so
// far (the WB column of Table 5).
func (e *Engine) WorkloadBalance() float64 {
	var total, max time.Duration
	for _, p := range e.parts {
		total += p.busy
		if p.busy > max {
			max = p.busy
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(e.parts))
	return float64(max) / mean
}

// ResetStats clears communication and balance accounting.
func (e *Engine) ResetStats() {
	e.CommBytes = 0
	e.Supersteps = 0
	for _, p := range e.parts {
		p.busy = 0
	}
}

// runParallel executes fn(q) for every partition on its own goroutine and
// adds the measured busy time to each partition.
func (e *Engine) runParallel(fn func(q int)) {
	var wg sync.WaitGroup
	for q := range e.parts {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			start := time.Now()
			fn(q)
			e.parts[q].busy += time.Since(start)
		}(q)
	}
	wg.Wait()
}

// accountSync charges one gather+scatter round for vertex v: each mirror
// sends a partial to the master and receives the new value.
func (e *Engine) accountSync(v graph.Vertex) {
	mirrors := len(e.replicasOf[v]) - 1
	if mirrors > 0 {
		e.CommBytes += int64(mirrors) * valueBytes * 2
	}
}

// accountScatterOnly charges a master→mirror broadcast for v (used when the
// gather side was quiescent).
func (e *Engine) accountScatterOnly(v graph.Vertex) {
	mirrors := len(e.replicasOf[v]) - 1
	if mirrors > 0 {
		e.CommBytes += int64(mirrors) * valueBytes
	}
}
