package engine

import (
	"math"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// prProgram re-implements PageRank as a user Program; it must match the
// built-in within float tolerance.
type prProgram struct {
	n       float64
	deg     []int64
	damping float64
}

func (p prProgram) Init(graph.Vertex) float64 { return 1 / p.n }
func (p prProgram) Gather(u graph.Vertex, uVal float64, _ graph.Vertex) float64 {
	return uVal / float64(p.deg[u])
}
func (p prProgram) Apply(_ graph.Vertex, cur, sum float64) (float64, bool) {
	return (1-p.damping)/p.n + p.damping*sum, true
}

func TestProgramMatchesBuiltinPageRank(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	e := buildEngineR(t, g, 4)
	const iters = 15
	builtin := e.PageRank(iters, 0.85)
	prog := prProgram{n: float64(g.NumVertices()), deg: g.Degrees(), damping: 0.85}
	custom := e.Run(prog, iters)
	for v := range builtin {
		if g.Degree(graph.Vertex(v)) == 0 {
			continue
		}
		if math.Abs(builtin[v]-custom[v]) > 1e-12 {
			t.Fatalf("vertex %d: builtin %.15f custom %.15f", v, builtin[v], custom[v])
		}
	}
}

// degreeProgram converges in one productive superstep: each vertex counts
// its neighbors.
type degreeProgram struct{}

func (degreeProgram) Init(graph.Vertex) float64                          { return 0 }
func (degreeProgram) Gather(graph.Vertex, float64, graph.Vertex) float64 { return 1 }
func (degreeProgram) Apply(_ graph.Vertex, cur, sum float64) (float64, bool) {
	return sum, sum != cur
}

func TestProgramQuiescenceStopsRun(t *testing.T) {
	g := gen.RMAT(8, 4, 1)
	e := buildEngineR(t, g, 4)
	e.ResetStats()
	vals := e.Run(degreeProgram{}, 0)
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) == 0 {
			continue
		}
		if vals[v] != float64(g.Degree(v)) {
			t.Fatalf("vertex %d: %v, want %d", v, vals[v], g.Degree(v))
		}
	}
	// One productive superstep + one quiescent confirmation.
	if e.Supersteps > 2 {
		t.Errorf("supersteps %d, want <= 2", e.Supersteps)
	}
}

func TestProgramMaxSuperstepsHonored(t *testing.T) {
	// A program that always reports change must stop at the cap.
	g := gen.RMAT(8, 4, 2)
	e := buildEngineR(t, g, 2)
	e.ResetStats()
	e.Run(prProgram{n: float64(g.NumVertices()), deg: g.Degrees(), damping: 0.85}, 7)
	if e.Supersteps != 7 {
		t.Errorf("supersteps %d, want 7", e.Supersteps)
	}
}
