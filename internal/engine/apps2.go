package engine

import (
	"cmp"
	"slices"

	"github.com/distributedne/dne/internal/graph"
)

// BFSTree computes a breadth-first spanning forest from source and returns
// the parent of every vertex (source's parent is itself; unreachable vertices
// have parent NoParent). Frontier-driven like SSSP, but ships parent ids, so
// its communication equals SSSP's while exercising a different apply rule.
const NoParent = ^graph.Vertex(0)

// BFSTree returns the BFS parent array rooted at source.
func (e *Engine) BFSTree(source graph.Vertex) []graph.Vertex {
	n := int(e.g.NumVertices())
	parent := make([]graph.Vertex, n)
	for v := range parent {
		parent[v] = NoParent
	}
	parent[source] = source
	active := make([]bool, n)
	active[source] = true
	e.accountScatterOnly(source)

	partials := make([][]graph.Vertex, len(e.parts))
	for q, p := range e.parts {
		partials[q] = make([]graph.Vertex, len(p.verts))
	}
	for {
		e.Supersteps++
		e.runParallel(func(q int) {
			p := e.parts[q]
			prop := partials[q]
			for i := range prop {
				prop[i] = NoParent
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				// Deterministic: offer the smallest active neighbor as parent.
				if active[gu] && gu < prop[le.v] {
					prop[le.v] = gu
				}
				if active[gv] && gv < prop[le.u] {
					prop[le.u] = gv
				}
			}
		})
		nextActive := make([]bool, n)
		any := false
		for q, p := range e.parts {
			prop := partials[q]
			for i, gv := range p.verts {
				if prop[i] != NoParent && parent[gv] == NoParent {
					parent[gv] = prop[i]
					nextActive[gv] = true
				} else if prop[i] != NoParent && nextActive[gv] && prop[i] < parent[gv] {
					// Another partition offered a smaller parent this same
					// superstep; keep the apply deterministic.
					parent[gv] = prop[i]
				}
			}
		}
		for v := 0; v < n; v++ {
			if nextActive[v] {
				any = true
				e.accountSync(graph.Vertex(v))
			}
		}
		active = nextActive
		if !any {
			break
		}
	}
	return parent
}

// Coreness computes the k-core number of every vertex by the distributed
// h-index iteration (Lü et al., "The H-index of a network node"): start from
// c(v) = deg(v) and repeatedly set c(v) to the h-index of its neighbors'
// current values. The fixpoint is exactly the coreness, and each round is a
// gather over the vertex's neighborhood — a natural GAS program.
func (e *Engine) Coreness() []int32 {
	n := int(e.g.NumVertices())
	core := make([]int32, n)
	for v := 0; v < n; v++ {
		core[v] = int32(e.g.Degree(graph.Vertex(v)))
	}
	// neighborVals[q] collects, for each local vertex, its neighbors' current
	// core estimates over the partition's local edges; estimates for
	// neighbors reached through other partitions arrive via the master merge,
	// which concatenates per-partition lists before computing the h-index.
	type bucket struct{ vals [][]int32 }
	buckets := make([]bucket, len(e.parts))
	for q, p := range e.parts {
		buckets[q].vals = make([][]int32, len(p.verts))
	}
	for {
		e.Supersteps++
		e.runParallel(func(q int) {
			p := e.parts[q]
			b := &buckets[q]
			for i := range b.vals {
				b.vals[i] = b.vals[i][:0]
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				b.vals[le.v] = append(b.vals[le.v], core[gu])
				b.vals[le.u] = append(b.vals[le.u], core[gv])
			}
		})
		// Master merge: gather all partial neighbor lists per vertex, compute
		// the h-index, detect change.
		changed := false
		merged := make([][]int32, n)
		for q, p := range e.parts {
			for i, gv := range p.verts {
				if len(buckets[q].vals[i]) > 0 {
					merged[gv] = append(merged[gv], buckets[q].vals[i]...)
				}
			}
		}
		for v := 0; v < n; v++ {
			if len(merged[v]) == 0 {
				continue
			}
			h := hIndex(merged[v])
			if h < core[v] {
				core[v] = h
				changed = true
				e.accountSync(graph.Vertex(v))
			}
		}
		if !changed {
			break
		}
	}
	return core
}

// hIndex returns the largest h such that at least h values are >= h.
// It mutates vals (sorts descending).
func hIndex(vals []int32) int32 {
	slices.SortFunc(vals, func(a, b int32) int { return cmp.Compare(b, a) })
	var h int32
	for i, v := range vals {
		if v >= int32(i+1) {
			h = int32(i + 1)
		} else {
			break
		}
	}
	return h
}

// Triangles returns the global triangle count. Each partition intersects the
// (globally known, mirror-replicated) sorted adjacency lists of its own
// edges' endpoints; since every edge is owned by exactly one partition and
// each triangle has three edges, the owned-edge intersection total is 3×the
// triangle count. Compute is charged to the owning partition, making this
// the canonical "edge balance drives workload balance" app.
func (e *Engine) Triangles() int64 {
	e.Supersteps++
	counts := make([]int64, len(e.parts))
	e.runParallel(func(q int) {
		p := e.parts[q]
		var c int64
		for _, le := range p.edges {
			gu, gv := p.verts[le.u], p.verts[le.v]
			c += intersectCount(e.g.Neighbors(gu), e.g.Neighbors(gv))
		}
		counts[q] = c
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	// Mirror adjacency is shipped once per edge endpoint at load time in a
	// real deployment; charge one sync per covered vertex as a conservative
	// stand-in.
	for v := 0; v < int(e.g.NumVertices()); v++ {
		e.accountScatterOnly(graph.Vertex(v))
	}
	return total / 3
}

// intersectCount returns |a ∩ b| for ascending-sorted neighbor slices.
func intersectCount(a, b []graph.Vertex) int64 {
	var c int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// LabelPropagation runs synchronous community detection for at most maxIters
// supersteps: every vertex adopts the most frequent label among its
// neighbors, breaking ties toward the smaller label (deterministic). Returns
// the final labels. Communities in disjoint components never mix.
func (e *Engine) LabelPropagation(maxIters int) []graph.Vertex {
	n := int(e.g.NumVertices())
	label := make([]graph.Vertex, n)
	for v := range label {
		label[v] = graph.Vertex(v)
	}
	type pair struct {
		l graph.Vertex
		c int32
	}
	// Per-partition label-count maps for local vertices.
	partial := make([][]map[graph.Vertex]int32, len(e.parts))
	for q, p := range e.parts {
		partial[q] = make([]map[graph.Vertex]int32, len(p.verts))
	}
	for it := 0; it < maxIters; it++ {
		e.Supersteps++
		e.runParallel(func(q int) {
			p := e.parts[q]
			for i := range partial[q] {
				partial[q][i] = nil
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				if partial[q][le.v] == nil {
					partial[q][le.v] = make(map[graph.Vertex]int32)
				}
				partial[q][le.v][label[gu]]++
				if partial[q][le.u] == nil {
					partial[q][le.u] = make(map[graph.Vertex]int32)
				}
				partial[q][le.u][label[gv]]++
			}
		})
		// Master merge.
		counts := make([]map[graph.Vertex]int32, n)
		for q, p := range e.parts {
			for i, gv := range p.verts {
				if partial[q][i] == nil {
					continue
				}
				if counts[gv] == nil {
					counts[gv] = make(map[graph.Vertex]int32)
				}
				//lint:ordered commutative count merge; += is order-insensitive
				for l, c := range partial[q][i] {
					counts[gv][l] += c
				}
			}
		}
		changed := false
		for v := 0; v < n; v++ {
			if counts[v] == nil {
				continue
			}
			best := pair{l: label[v], c: 0}
			if c, ok := counts[v][label[v]]; ok {
				best.c = c
			}
			//lint:ordered argmax with a total-order tie-break is iteration-order-insensitive
			for l, c := range counts[v] {
				if c > best.c || (c == best.c && l < best.l) {
					best = pair{l: l, c: c}
				}
			}
			if best.l != label[v] {
				label[v] = best.l
				changed = true
				e.accountSync(graph.Vertex(v))
			}
		}
		if !changed {
			break
		}
	}
	return label
}
