package engine

import "github.com/distributedne/dne/internal/graph"

// Program is a user-defined synchronous gather-apply vertex program over
// float64 state — the same model the built-in apps use, exposed so
// downstream code can run custom analytics over any edge partitioning
// without touching engine internals.
//
// Each superstep: for every edge (u,v) in every partition, the engine calls
// Gather twice (u→v and v→u) and sums the contributions per target vertex
// (partition-locally first, then across partitions at the master); Apply
// then produces each vertex's next value and reports whether it changed.
// Only changed vertices are sync-accounted, and the run stops when no vertex
// changes or MaxSupersteps elapse.
type Program interface {
	// Init returns vertex v's initial value.
	Init(v graph.Vertex) float64
	// Gather returns the contribution of neighbor u (with value uVal) to v.
	Gather(u graph.Vertex, uVal float64, v graph.Vertex) float64
	// Apply combines v's current value with the gathered sum, returning the
	// next value and whether it should count as changed (activating sync).
	Apply(v graph.Vertex, cur, sum float64) (next float64, changed bool)
}

// Run executes p until quiescence or maxSupersteps (0 = unlimited) and
// returns the final vertex values.
func (e *Engine) Run(p Program, maxSupersteps int) []float64 {
	n := int(e.g.NumVertices())
	val := make([]float64, n)
	for v := 0; v < n; v++ {
		val[v] = p.Init(graph.Vertex(v))
	}
	partials := make([][]float64, len(e.parts))
	for q, pt := range e.parts {
		partials[q] = make([]float64, len(pt.verts))
	}
	sum := make([]float64, n)
	for step := 0; maxSupersteps == 0 || step < maxSupersteps; step++ {
		e.Supersteps++
		e.runParallel(func(q int) {
			pt := e.parts[q]
			acc := partials[q]
			for i := range acc {
				acc[i] = 0
			}
			for _, le := range pt.edges {
				gu, gv := pt.verts[le.u], pt.verts[le.v]
				acc[le.v] += p.Gather(gu, val[gu], gv)
				acc[le.u] += p.Gather(gv, val[gv], gu)
			}
		})
		for v := 0; v < n; v++ {
			sum[v] = 0
		}
		for q, pt := range e.parts {
			acc := partials[q]
			for i, gv := range pt.verts {
				sum[gv] += acc[i]
			}
		}
		anyChanged := false
		for v := 0; v < n; v++ {
			if len(e.replicasOf[v]) == 0 {
				continue
			}
			next, changed := p.Apply(graph.Vertex(v), val[v], sum[v])
			val[v] = next
			if changed {
				anyChanged = true
				e.accountSync(graph.Vertex(v))
			}
		}
		if !anyChanged {
			break
		}
	}
	return val
}
