package engine

import (
	"context"
	"math"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// buildEngine partitions g with a registry method and wraps the result in
// an Engine.
func buildEngine(t *testing.T, g *graph.Graph, method string, seed int64, parts int) *Engine {
	t.Helper()
	pr, spec, err := methods.New(method, partition.NewSpec(parts, seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Partition(context.Background(), g, spec)
	if err != nil {
		t.Fatal(err)
	}
	return New(g, res.Partitioning)
}

// refBFS is a sequential reference for SSSP on unweighted graphs.
func refBFS(g *graph.Graph, src graph.Vertex) []int64 {
	n := int(g.NumVertices())
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == math.MaxInt64 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// refWCC is a sequential union-find reference for connected components.
func refWCC(g *graph.Graph) []graph.Vertex {
	n := int(g.NumVertices())
	parent := make([]graph.Vertex, n)
	for v := range parent {
		parent[v] = graph.Vertex(v)
	}
	var find func(graph.Vertex) graph.Vertex
	find = func(v graph.Vertex) graph.Vertex {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, e := range g.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	labels := make([]graph.Vertex, n)
	for v := range labels {
		labels[v] = find(graph.Vertex(v))
	}
	return labels
}

func TestSSSPMatchesBFSAcrossPartitionings(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	want := refBFS(g, 0)
	for _, p := range []string{"random", "dne"} {
		e := buildEngine(t, g, p, 1, 4)
		got := e.SSSP(0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", p, v, got[v], want[v])
			}
		}
		if e.CommBytes <= 0 {
			t.Errorf("%s: no communication recorded", p)
		}
	}
}

func TestWCCMatchesUnionFind(t *testing.T) {
	g := gen.RMAT(9, 4, 5)
	want := refWCC(g)
	e := buildEngine(t, g, "grid", 2, 4)
	got := e.WCC()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.RMAT(9, 8, 7)
	e := buildEngine(t, g, "dne", 0, 4)
	pr := e.PageRank(20, 0.85)
	var sum float64
	for v := 0; v < int(g.NumVertices()); v++ {
		// Isolated vertices keep their initial mass but receive no base;
		// only covered vertices participate.
		sum += pr[v]
	}
	// Dangling mass leaks in standard PR without dangling redistribution;
	// the sum must stay within (0.5, 1.001] for this graph family.
	if sum <= 0.5 || sum > 1.001 {
		t.Errorf("pagerank mass = %f, want ~1", sum)
	}
}

func TestPageRankIndependentOfPartitioning(t *testing.T) {
	g := gen.RMAT(8, 8, 11)
	e1 := buildEngine(t, g, "random", 1, 4)
	e2 := buildEngine(t, g, "dne", 0, 4)
	pr1 := e1.PageRank(10, 0.85)
	pr2 := e2.PageRank(10, 0.85)
	for v := range pr1 {
		if math.Abs(pr1[v]-pr2[v]) > 1e-12 {
			t.Fatalf("pr[%d] differs across partitionings: %g vs %g", v, pr1[v], pr2[v])
		}
	}
}

func TestBetterPartitioningReducesCommunication(t *testing.T) {
	g := gen.RMAT(10, 16, 13)
	eRand := buildEngine(t, g, "random", 1, 8)
	eDNE := buildEngine(t, g, "dne", 0, 8)
	eRand.PageRank(5, 0.85)
	eDNE.PageRank(5, 0.85)
	if eDNE.CommBytes >= eRand.CommBytes {
		t.Errorf("DNE comm %d should be below Random comm %d", eDNE.CommBytes, eRand.CommBytes)
	}
}

func TestWorkloadBalanceReported(t *testing.T) {
	g := gen.RMAT(9, 8, 17)
	e := buildEngine(t, g, "dne", 0, 4)
	e.PageRank(5, 0.85)
	if wb := e.WorkloadBalance(); wb < 1 {
		t.Errorf("workload balance %f < 1", wb)
	}
}
