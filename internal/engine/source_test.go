package engine

import (
	"context"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	_ "github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// TestNewFromSourceMatchesNew: an engine built from a source-partitioned
// stream behaves identically to one built from the materialized graph —
// same replica layout, same degree sums per partition.
func TestNewFromSourceMatchesNew(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	src := graph.SourceOf(g)
	res, err := methods.PartitionSource(context.Background(), "dbh", src, partition.NewSpec(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	fromSrc, err := NewFromSource(src, res.Partitioning)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(g, res.Partitioning)
	if fromSrc.NumParts() != ref.NumParts() {
		t.Fatalf("parts %d != %d", fromSrc.NumParts(), ref.NumParts())
	}
	a, b := fromSrc.WCC(), ref.WCC()
	if len(a) != len(b) {
		t.Fatalf("WCC lengths differ: %d vs %d", len(a), len(b))
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("WCC label of vertex %d differs: %d vs %d", v, a[v], b[v])
		}
	}
}
