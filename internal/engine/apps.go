package engine

import (
	"math"

	"github.com/distributedne/dne/internal/graph"
)

// PageRank runs the synchronous PageRank vertex program for the given number
// of iterations (the paper uses 100; Table-5 reproduction defaults to fewer,
// COM scales linearly) and returns the final ranks. Every vertex is active
// every superstep, so this is the heaviest communication workload (§7.6).
func (e *Engine) PageRank(iterations int, damping float64) []float64 {
	n := int(e.g.NumVertices())
	deg := e.g.Degrees()
	pr := make([]float64, n)
	for v := range pr {
		pr[v] = 1.0 / float64(n)
	}
	// Per-partition partial accumulators, merged at masters each superstep.
	partials := make([][]float64, len(e.parts))
	for q, p := range e.parts {
		partials[q] = make([]float64, len(p.verts))
	}
	next := make([]float64, n)
	base := (1 - damping) / float64(n)
	for it := 0; it < iterations; it++ {
		e.Supersteps++
		// Gather: each partition scans its local edges and accumulates
		// pr[u]/deg[u] contributions in local scratch.
		e.runParallel(func(q int) {
			p := e.parts[q]
			acc := partials[q]
			for i := range acc {
				acc[i] = 0
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				acc[le.v] += pr[gu] / float64(deg[gu])
				acc[le.u] += pr[gv] / float64(deg[gv])
			}
		})
		// Apply at masters (sequential merge) + sync accounting.
		for v := 0; v < n; v++ {
			next[v] = 0
		}
		for q, p := range e.parts {
			acc := partials[q]
			for i, gv := range p.verts {
				next[gv] += acc[i]
			}
		}
		for v := 0; v < n; v++ {
			if len(e.replicasOf[v]) == 0 {
				continue
			}
			next[v] = base + damping*next[v]
			e.accountSync(graph.Vertex(v))
		}
		pr, next = next, pr
	}
	return pr
}

// SSSP computes unweighted single-source shortest paths (the paper's SSSP
// workload with Vertex 0 as source) and returns the distance array
// (math.MaxInt64 = unreachable). Only frontier activity generates compute
// and communication, making it the lightest workload.
func (e *Engine) SSSP(source graph.Vertex) []int64 {
	n := int(e.g.NumVertices())
	const inf = math.MaxInt64
	dist := make([]int64, n)
	for v := range dist {
		dist[v] = inf
	}
	dist[source] = 0
	active := make([]bool, n)
	active[source] = true
	e.accountScatterOnly(source)

	partials := make([][]int64, len(e.parts))
	for q, p := range e.parts {
		partials[q] = make([]int64, len(p.verts))
	}
	for {
		e.Supersteps++
		anyActive := false
		e.runParallel(func(q int) {
			p := e.parts[q]
			prop := partials[q]
			for i := range prop {
				prop[i] = inf
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				if active[gu] && dist[gu]+1 < prop[le.v] {
					prop[le.v] = dist[gu] + 1
				}
				if active[gv] && dist[gv]+1 < prop[le.u] {
					prop[le.u] = dist[gv] + 1
				}
			}
		})
		// Apply at masters; vertices whose distance improves become the next
		// frontier and are synced to mirrors.
		nextActive := make([]bool, n)
		for q, p := range e.parts {
			prop := partials[q]
			for i, gv := range p.verts {
				if prop[i] < dist[gv] {
					dist[gv] = prop[i]
					nextActive[gv] = true
				}
			}
		}
		for v := 0; v < n; v++ {
			if nextActive[v] {
				anyActive = true
				e.accountSync(graph.Vertex(v))
			}
		}
		active = nextActive
		if !anyActive {
			break
		}
	}
	return dist
}

// WCC computes weakly connected components by min-label propagation and
// returns the component label of every vertex (its smallest-id member).
func (e *Engine) WCC() []graph.Vertex {
	n := int(e.g.NumVertices())
	label := make([]graph.Vertex, n)
	active := make([]bool, n)
	for v := range label {
		label[v] = graph.Vertex(v)
		active[v] = true
	}
	partials := make([][]graph.Vertex, len(e.parts))
	for q, p := range e.parts {
		partials[q] = make([]graph.Vertex, len(p.verts))
	}
	for {
		e.Supersteps++
		e.runParallel(func(q int) {
			p := e.parts[q]
			prop := partials[q]
			for i, gv := range p.verts {
				prop[i] = label[gv]
			}
			for _, le := range p.edges {
				gu, gv := p.verts[le.u], p.verts[le.v]
				if active[gu] && label[gu] < prop[le.v] {
					prop[le.v] = label[gu]
				}
				if active[gv] && label[gv] < prop[le.u] {
					prop[le.u] = label[gv]
				}
			}
		})
		nextActive := make([]bool, n)
		changed := false
		for q, p := range e.parts {
			prop := partials[q]
			for i, gv := range p.verts {
				if prop[i] < label[gv] {
					label[gv] = prop[i]
					nextActive[gv] = true
				}
			}
		}
		for v := 0; v < n; v++ {
			if nextActive[v] {
				changed = true
				e.accountSync(graph.Vertex(v))
			}
		}
		active = nextActive
		if !changed {
			break
		}
	}
	return label
}
