package engine

import (
	"math"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// buildEngineR builds an engine over a Random partitioning (helper shared by
// the apps2 tests; engine_test.go's buildEngine takes an explicit
// partitioner).
func buildEngineR(t *testing.T, g *graph.Graph, parts int) *Engine {
	t.Helper()
	return buildEngine(t, g, "random", 5, parts)
}

func TestBFSTreeConsistentWithSSSP(t *testing.T) {
	g := gen.RMAT(9, 8, 11)
	e := buildEngineR(t, g, 4)
	dist := e.SSSP(0)
	parent := e.BFSTree(0)
	for v := 0; v < int(g.NumVertices()); v++ {
		reachable := dist[v] != math.MaxInt64
		hasParent := parent[v] != NoParent
		if reachable != hasParent {
			t.Fatalf("vertex %d: reachable=%v but hasParent=%v", v, reachable, hasParent)
		}
		if !reachable || v == 0 {
			continue
		}
		p := parent[v]
		// Parent must be exactly one BFS level above.
		if dist[p]+1 != dist[v] {
			t.Errorf("vertex %d: dist %d but parent %d has dist %d", v, dist[v], p, dist[p])
		}
		// Parent must actually be a neighbor.
		found := false
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("vertex %d: parent %d is not a neighbor", v, p)
		}
	}
	if parent[0] != 0 {
		t.Errorf("source parent %d, want self", parent[0])
	}
}

// corenessRef is the classic sequential peeling algorithm.
func corenessRef(g *graph.Graph) []int32 {
	n := int(g.NumVertices())
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(graph.Vertex(v)))
	}
	core := make([]int32, n)
	removed := make([]bool, n)
	// Peel minimum-degree vertices; a vertex's core number is the maximum
	// degree threshold seen up to its removal.
	var runMax int32
	for {
		min := int32(math.MaxInt32)
		minV := -1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < min {
				min = deg[v]
				minV = v
			}
		}
		if minV < 0 {
			break
		}
		if min > runMax {
			runMax = min
		}
		removed[minV] = true
		core[minV] = runMax
		for _, u := range g.Neighbors(graph.Vertex(minV)) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return core
}

func TestCorenessMatchesPeeling(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.RMAT(8, 8, 3),
		gen.Road(12, 12, 1),
		gen.RingPlusComplete(6),
	} {
		e := buildEngineR(t, g, 4)
		got := e.Coreness()
		want := corenessRef(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v vertex %d: coreness %d, want %d", g, v, got[v], want[v])
			}
		}
	}
}

func TestCorenessCompleteGraph(t *testing.T) {
	// K_n: every vertex has coreness n−1.
	var edges []graph.Edge
	const n = 9
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g := graph.FromEdges(n, edges)
	e := buildEngineR(t, g, 3)
	for v, c := range e.Coreness() {
		if c != n-1 {
			t.Errorf("vertex %d: coreness %d, want %d", v, c, n-1)
		}
	}
}

// trianglesRef counts triangles by brute force.
func trianglesRef(g *graph.Graph) int64 {
	n := g.NumVertices()
	adj := make(map[[2]graph.Vertex]bool)
	for _, e := range g.Edges() {
		adj[[2]graph.Vertex{e.U, e.V}] = true
	}
	has := func(a, b graph.Vertex) bool {
		if a > b {
			a, b = b, a
		}
		return adj[[2]graph.Vertex{a, b}]
	}
	var c int64
	for u := graph.Vertex(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if has(u, v) && has(v, w) && has(u, w) {
					c++
				}
			}
		}
	}
	return c
}

func TestTrianglesMatchesBruteForce(t *testing.T) {
	g := gen.RMAT(7, 6, 5)
	e := buildEngineR(t, g, 4)
	got := e.Triangles()
	want := trianglesRef(g)
	if got != want {
		t.Fatalf("triangles %d, want %d", got, want)
	}
}

func TestTrianglesCompleteGraph(t *testing.T) {
	// K_n has C(n,3) triangles.
	var edges []graph.Edge
	const n = 10
	for u := uint32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g := graph.FromEdges(n, edges)
	e := buildEngineR(t, g, 5)
	want := int64(n * (n - 1) * (n - 2) / 6)
	if got := e.Triangles(); got != want {
		t.Fatalf("K%d triangles %d, want %d", n, got, want)
	}
}

func TestTrianglesPureLattice(t *testing.T) {
	// A pure 4-neighbor grid (no diagonals — gen.Road adds ~5% shortcuts)
	// has no triangles.
	const rows, cols = 10, 10
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	g := graph.FromEdges(rows*cols, edges)
	e := buildEngineR(t, g, 4)
	if got := e.Triangles(); got != 0 {
		t.Fatalf("lattice triangles %d, want 0", got)
	}
}

func TestLabelPropagationDisjointCliques(t *testing.T) {
	// Two disjoint cliques must end with two distinct labels, and labels must
	// be uniform within each clique.
	var edges []graph.Edge
	const k = 6
	for u := uint32(0); u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			edges = append(edges, graph.Edge{U: u + k, V: v + k})
		}
	}
	g := graph.FromEdges(2*k, edges)
	e := buildEngineR(t, g, 3)
	labels := e.LabelPropagation(50)
	for v := uint32(1); v < k; v++ {
		if labels[v] != labels[0] {
			t.Errorf("clique A vertex %d: label %d != %d", v, labels[v], labels[0])
		}
		if labels[v+k] != labels[k] {
			t.Errorf("clique B vertex %d: label %d != %d", v+k, labels[v+k], labels[k])
		}
	}
	if labels[0] == labels[k] {
		t.Error("disjoint cliques share a label")
	}
}

func TestLabelPropagationTerminates(t *testing.T) {
	g := gen.RMAT(9, 8, 2)
	e := buildEngineR(t, g, 4)
	labels := e.LabelPropagation(30)
	if len(labels) != int(g.NumVertices()) {
		t.Fatalf("labels length %d", len(labels))
	}
	if e.Supersteps > 30 {
		t.Errorf("supersteps %d exceeded cap", e.Supersteps)
	}
}

func TestAppsAccountCommunication(t *testing.T) {
	// Any partitioning with RF > 1 must charge replica-sync bytes for every
	// app; the engine's Table-5 COM column depends on it.
	g := gen.RMAT(9, 8, 7)
	e := buildEngineR(t, g, 8)
	apps := []struct {
		name string
		run  func()
	}{
		{"bfs", func() { e.BFSTree(0) }},
		{"coreness", func() { e.Coreness() }},
		{"triangles", func() { e.Triangles() }},
		{"lpa", func() { e.LabelPropagation(10) }},
	}
	for _, app := range apps {
		e.ResetStats()
		app.run()
		if e.CommBytes <= 0 {
			t.Errorf("%s: no communication accounted", app.name)
		}
		if e.Supersteps <= 0 {
			t.Errorf("%s: no supersteps accounted", app.name)
		}
	}
}
