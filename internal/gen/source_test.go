package gen

import (
	"io"
	"testing"

	"github.com/distributedne/dne/internal/graph"
)

func drainSource(t *testing.T, src graph.Source) []uint64 {
	t.Helper()
	es, err := src.Edges()
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	var keys []uint64
	for {
		chunk, _, err := es.Next()
		if err == io.EOF {
			return keys
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, chunk...)
	}
}

// TestRMATSourceReplaysStream: the pull-style source yields exactly the
// StreamRMAT sample sequence (canonicalized, self loops dropped), the same
// on every pass, and materializes to the same graph as RMAT.
func TestRMATSourceReplaysStream(t *testing.T) {
	const scale, ef, seed = 10, 8, 5
	var want []uint64
	StreamRMAT(scale, ef, seed, func(u, v uint32) {
		if u != v {
			want = append(want, graph.PackEdge(u, v))
		}
	})
	src := RMATSource(scale, ef, seed)
	if src.Info().NumVertices != 1<<scale {
		t.Fatalf("info %+v", src.Info())
	}
	for pass := 0; pass < 2; pass++ {
		got := drainSource(t, src)
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d samples, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pass %d sample %d: %#x != %#x", pass, i, got[i], want[i])
			}
		}
	}
	g, err := graph.FromSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := RMAT(scale, ef, seed)
	if g.NumVertices() != ref.NumVertices() || g.NumEdges() != ref.NumEdges() {
		t.Fatalf("materialized %v != %v", g, ref)
	}
}

// TestERSourceReplaysStream: same property for the Erdős–Rényi source.
func TestERSourceReplaysStream(t *testing.T) {
	const n, m, seed = 500, 4000, 9
	var want []uint64
	StreamER(n, m, seed, func(u, v uint32) {
		if u != v {
			want = append(want, graph.PackEdge(u, v))
		}
	})
	got := drainSource(t, ERSource(n, m, seed))
	if len(got) != len(want) {
		t.Fatalf("%d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %#x != %#x", i, got[i], want[i])
		}
	}
}
