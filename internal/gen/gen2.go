package gen

import (
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
)

// BarabasiAlbert generates a preferential-attachment graph: starting from an
// (m+1)-clique, each new vertex attaches to m existing vertices chosen with
// probability proportional to degree (implemented with the repeated-endpoint
// list, which realises exact preferential attachment). The result has the
// heavy power-law tail (α ≈ 3) that motivates the paper's skewed-graph focus,
// with a different tail shape than RMAT — useful for checking that quality
// orderings are not an RMAT artifact.
func BarabasiAlbert(n uint32, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if uint32(m)+1 > n {
		m = int(n) - 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// Repeated-endpoint list: every edge contributes both endpoints, so
	// sampling uniformly from it is degree-proportional sampling.
	var endpoints []graph.Vertex
	// Seed clique on vertices 0..m.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)})
			endpoints = append(endpoints, graph.Vertex(u), graph.Vertex(v))
		}
	}
	targets := make(map[graph.Vertex]struct{}, m)
	picked := make([]graph.Vertex, 0, m)
	for v := graph.Vertex(m + 1); v < graph.Vertex(n); v++ {
		clear(targets)
		picked = picked[:0]
		for len(picked) < m {
			u := endpoints[rng.Intn(len(endpoints))]
			if _, dup := targets[u]; dup {
				continue
			}
			targets[u] = struct{}{}
			picked = append(picked, u) // insertion order keeps runs reproducible
		}
		for _, u := range picked {
			edges = append(edges, graph.Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	return graph.FromEdges(n, edges)
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors (k even), with each edge
// rewired to a uniform random endpoint with probability beta. At beta=0 it
// is a regular lattice (the non-skewed contrast case, like §7.7's road
// networks); at beta=1 it approaches a random graph. Degrees stay
// concentrated around k for all beta — no heavy tail.
func WattsStrogatz(n uint32, k int, beta float64, seed int64) *graph.Graph {
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := uint32(0); v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + uint32(j)) % n
			if rng.Float64() < beta {
				// Rewire the far endpoint uniformly, avoiding self loops
				// (duplicates are compacted by FromEdges).
				w := uint32(rng.Intn(int(n)))
				for w == v {
					w = uint32(rng.Intn(int(n)))
				}
				u = w
			}
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return graph.FromEdges(n, edges)
}
