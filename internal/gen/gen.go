// Package gen provides deterministic synthetic graph generators covering
// every workload class in the paper's evaluation: RMAT (Graph500 parameters,
// §7.1), Chung–Lu power-law graphs (§6 Table 1 setting), Erdős–Rényi graphs,
// road-network-like lattices (§7.7), and the ring+complete construction used
// in the Theorem-2 tightness proof (§6).
//
// All generators take an explicit seed and produce the same graph for the
// same arguments on every platform.
package gen

import (
	"math"
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
)

// RMATParams are the recursive-matrix quadrant probabilities. Graph500 uses
// A=0.57, B=0.19, C=0.19, D=0.05.
type RMATParams struct {
	A, B, C, D float64
}

// Graph500 is the standard Graph500 RMAT parameter set.
var Graph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT generates an RMAT graph with 2^scale vertices and edgeFactor·2^scale
// edge samples (before dedup/self-loop removal, as in Graph500). ScaleN in
// the paper means a graph with 2^N vertices.
func RMAT(scale int, edgeFactor int, seed int64) *graph.Graph {
	return RMATWith(Graph500, scale, edgeFactor, seed)
}

// RMATWith is RMAT with explicit quadrant parameters.
func RMATWith(p RMATParams, scale int, edgeFactor int, seed int64) *graph.Graph {
	n := uint32(1) << scale
	m := int64(edgeFactor) << scale
	edges := make([]graph.Edge, 0, m)
	StreamRMATWith(p, scale, edgeFactor, seed, func(u, v uint32) {
		edges = append(edges, graph.Edge{U: u, V: v})
	})
	return graph.FromEdges(n, edges)
}

// StreamRMAT is RMAT as a stream: the identical raw edge sequence, emitted
// one sample at a time instead of materialized, so a caller (cmd/gengraph's
// shard writer) runs in O(1) memory regardless of scale. FromEdges over the
// emitted samples reproduces RMAT(scale, edgeFactor, seed) exactly.
func StreamRMAT(scale int, edgeFactor int, seed int64, emit func(u, v uint32)) {
	StreamRMATWith(Graph500, scale, edgeFactor, seed, emit)
}

// StreamRMATWith is StreamRMAT with explicit quadrant parameters.
func StreamRMATWith(p RMATParams, scale int, edgeFactor int, seed int64, emit func(u, v uint32)) {
	m := int64(edgeFactor) << scale
	s := newRMATSampler(p, scale, seed)
	for i := int64(0); i < m; i++ {
		emit(s.sample())
	}
}

// rmatSampler draws one RMAT edge sample at a time; both the emit-style
// streams and the pull-style RMATSource consume it, so the two produce the
// identical raw sample sequence for the same arguments.
type rmatSampler struct {
	rng   *rand.Rand
	scale int
	a, ab float64
	cNorm float64
}

func newRMATSampler(p RMATParams, scale int, seed int64) *rmatSampler {
	return &rmatSampler{
		rng:   rand.New(rand.NewSource(seed)),
		scale: scale,
		a:     p.A,
		ab:    p.A + p.B,
		cNorm: p.C / (p.C + p.D),
	}
}

func (s *rmatSampler) sample() (uint32, uint32) {
	var u, v uint32
	for bit := s.scale - 1; bit >= 0; bit-- {
		r := s.rng.Float64()
		if r < s.ab {
			// top half: u bit stays 0
			if r >= s.a {
				v |= 1 << bit
			}
		} else {
			u |= 1 << bit
			if s.rng.Float64() < s.cNorm {
				// quadrant C: v bit 0
			} else {
				v |= 1 << bit
			}
		}
	}
	return u, v
}

// PowerLaw generates a Chung–Lu style graph whose degree sequence follows a
// discrete power law Pr[d] ∝ d^(−alpha) with minimum degree 1 (the Clauset
// et al. formulation used in §6). n is the number of vertices.
func PowerLaw(n uint32, alpha float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Sample target degrees by inverse-CDF of the zeta distribution,
	// truncated at n-1.
	maxDeg := int(n) - 1
	if maxDeg < 1 {
		maxDeg = 1
	}
	weights := make([]float64, n)
	var total float64
	for v := range weights {
		d := sampleZipf(rng, alpha, maxDeg)
		weights[v] = float64(d)
		total += float64(d)
	}
	// Chung–Lu: each endpoint chosen proportionally to weight; number of
	// edges = total/2.
	m := int64(total / 2)
	cum := make([]float64, n+1)
	for v := uint32(0); v < n; v++ {
		cum[v+1] = cum[v] + weights[v]
	}
	pick := func() uint32 {
		x := rng.Float64() * total
		lo, hi := uint32(0), n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= n {
			lo = n - 1
		}
		return lo
	}
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		edges = append(edges, graph.Edge{U: pick(), V: pick()})
	}
	return graph.FromEdges(n, edges)
}

// sampleZipf draws from Pr[d] ∝ d^(−alpha), d ∈ [1,maxDeg], by rejection on
// the continuous Pareto envelope.
func sampleZipf(rng *rand.Rand, alpha float64, maxDeg int) int {
	for {
		u := rng.Float64()
		// Inverse CDF of continuous Pareto with xmin=1: x = (1-u)^(-1/(alpha-1))
		x := math.Pow(1-u, -1/(alpha-1))
		d := int(x)
		if d < 1 {
			d = 1
		}
		if d <= maxDeg {
			return d
		}
	}
}

// ER generates an Erdős–Rényi G(n, m) graph with m edge samples.
func ER(n uint32, m int64, seed int64) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	StreamER(n, m, seed, func(u, v uint32) {
		edges = append(edges, graph.Edge{U: u, V: v})
	})
	return graph.FromEdges(n, edges)
}

// StreamER is ER as a stream (same raw sample sequence, O(1) memory).
func StreamER(n uint32, m int64, seed int64, emit func(u, v uint32)) {
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < m; i++ {
		emit(uint32(rng.Int63n(int64(n))), uint32(rng.Int63n(int64(n))))
	}
}

// Road generates a road-network-like graph: a rows×cols lattice where a
// fraction of edges are perturbed (removed or re-wired to a short diagonal),
// giving the low, near-uniform degrees (~2.8 avg) of the paper's §7.7 road
// networks.
func Road(rows, cols int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.9 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows && rng.Float64() < 0.9 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < 0.05 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	return graph.FromEdges(uint32(rows*cols), edges)
}

// RingPlusComplete builds the Theorem-2 tightness construction: a complete
// graph on n vertices (n(n−1)/2 edges) plus a disjoint ring with n(n−1)/2
// vertices and edges. The adversarial partition count is |P| = n(n−1)/2.
func RingPlusComplete(n int) *graph.Graph {
	ringLen := n * (n - 1) / 2
	total := uint32(n + ringLen)
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	base := uint32(n)
	for i := 0; i < ringLen; i++ {
		edges = append(edges, graph.Edge{
			U: base + uint32(i),
			V: base + uint32((i+1)%ringLen),
		})
	}
	return graph.FromEdges(total, edges)
}

// Star generates a star graph: vertex 0 connected to all others. Useful as a
// worst-case skew test.
func Star(n uint32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	return graph.FromEdges(n, edges)
}
