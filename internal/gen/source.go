package gen

import (
	"io"
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
)

// RMATSource is the RMAT generator as a graph.Source: each pass replays the
// exact raw sample sequence of StreamRMAT(scale, edgeFactor, seed) —
// canonicalized, self loops dropped, duplicates kept — in O(chunk) memory.
// It is the route to partitioning a synthetic graph far larger than RAM
// without ever writing it down: the stream positions index the raw sample
// stream, not the deduplicated canonical list, so results are comparable
// across runs of the same source but not with a materialized RMAT graph.
func RMATSource(scale, edgeFactor int, seed int64) graph.Source {
	return genSource{
		name:        "rmat",
		numVertices: uint32(1) << scale,
		samples:     int64(edgeFactor) << scale,
		sampler: func() func() (uint32, uint32) {
			s := newRMATSampler(Graph500, scale, seed)
			return s.sample
		},
	}
}

// ERSource is the Erdős–Rényi generator as a graph.Source, replaying
// StreamER(n, m, seed)'s sample sequence per pass.
func ERSource(n uint32, m int64, seed int64) graph.Source {
	return genSource{
		name:        "er",
		numVertices: n,
		samples:     m,
		sampler: func() func() (uint32, uint32) {
			rng := rand.New(rand.NewSource(seed))
			return func() (uint32, uint32) {
				return uint32(rng.Int63n(int64(n))), uint32(rng.Int63n(int64(n)))
			}
		},
	}
}

// genSource adapts a deterministic sampler factory into a re-streamable
// source. NumEdges is reported unknown: self loops are dropped on the fly,
// so the post-drop count is only discoverable by a pass (SourceCounts does
// exactly that when a method needs it).
type genSource struct {
	name        string
	numVertices uint32
	samples     int64
	sampler     func() func() (uint32, uint32)
}

func (s genSource) Info() graph.SourceInfo {
	return graph.SourceInfo{Name: s.name, NumVertices: s.numVertices}
}

func (s genSource) Edges() (graph.EdgeStream, error) {
	return &genStream{
		sample:    s.sampler(),
		remaining: s.samples,
		buf:       make([]uint64, 0, graph.SourceChunkEdges),
	}, nil
}

type genStream struct {
	sample    func() (uint32, uint32)
	remaining int64
	buf       []uint64
}

func (st *genStream) Next() ([]uint64, []int64, error) {
	buf := st.buf[:0]
	for st.remaining > 0 && len(buf) < graph.SourceChunkEdges {
		st.remaining--
		u, v := st.sample()
		if u == v {
			continue // self loop, dropped as FromEdges would
		}
		buf = append(buf, graph.PackEdge(u, v))
	}
	if len(buf) == 0 {
		return nil, nil, io.EOF
	}
	return buf, nil, nil
}

func (st *genStream) Close() error { return nil }
