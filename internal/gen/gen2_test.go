package gen

import (
	"testing"

	"github.com/distributedne/dne/internal/graph"
)

func giniOf(g *graph.Graph) float64 {
	// Inline Gini over degrees (avoids importing powerlaw, which imports
	// gen in its tests).
	var vals []int64
	var sum float64
	for v := uint32(0); v < g.NumVertices(); v++ {
		d := g.Degree(v)
		vals = append(vals, d)
		sum += float64(d)
	}
	if sum == 0 {
		return 0
	}
	// O(n^2) is fine at test sizes.
	var num float64
	for _, a := range vals {
		for _, b := range vals {
			if a > b {
				num += float64(a - b)
			} else {
				num += float64(b - a)
			}
		}
	}
	return num / (2 * float64(len(vals)) * sum)
}

func TestBarabasiAlbertShape(t *testing.T) {
	const n, m = 2000, 3
	g := BarabasiAlbert(n, m, 7)
	if g.NumVertices() != n {
		t.Fatalf("|V|=%d", g.NumVertices())
	}
	// Seed clique C(m+1,2) + m per subsequent vertex, minus any duplicate
	// attachments (targets is a set, so none).
	want := int64(m*(m+1)/2 + (n-m-1)*m)
	if g.NumEdges() != want {
		t.Errorf("|E|=%d, want %d", g.NumEdges(), want)
	}
	// Minimum degree is m (every late vertex attaches m times).
	for v := uint32(0); v < n; v++ {
		if g.Degree(v) < int64(m) {
			t.Fatalf("vertex %d degree %d < m", v, g.Degree(v))
		}
	}
	// Preferential attachment concentrates degree: the max must far exceed
	// the mean.
	if g.MaxDegree() < 5*int64(g.AvgDegree()) {
		t.Errorf("max degree %d not skewed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertDegenerateParams(t *testing.T) {
	g := BarabasiAlbert(5, 10, 1) // m > n-1 gets clamped
	if g.NumVertices() != 5 {
		t.Fatalf("|V|=%d", g.NumVertices())
	}
	if g.NumEdges() != 10 { // K5
		t.Errorf("|E|=%d, want 10 (K5)", g.NumEdges())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta=0: exact ring lattice, every degree == k.
	const n, k = 500, 6
	g := WattsStrogatz(n, k, 0, 3)
	if g.NumEdges() != int64(n*k/2) {
		t.Fatalf("|E|=%d, want %d", g.NumEdges(), n*k/2)
	}
	for v := uint32(0); v < n; v++ {
		if g.Degree(v) != k {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), k)
		}
	}
}

func TestWattsStrogatzRewiringKeepsConcentration(t *testing.T) {
	const n, k = 1000, 8
	g := WattsStrogatz(n, k, 0.3, 5)
	// Rewiring plus dedup loses a few edges; stay within 2%.
	if g.NumEdges() < int64(n*k/2*98/100) {
		t.Errorf("|E|=%d lost too many edges to dedup", g.NumEdges())
	}
	if gini := giniOf(g); gini > 0.15 {
		t.Errorf("WS gini %.3f — should stay non-skewed", gini)
	}
}

func TestSkewContrastBAvsWS(t *testing.T) {
	ba := BarabasiAlbert(1500, 4, 1)
	ws := WattsStrogatz(1500, 8, 0.1, 1)
	gBA, gWS := giniOf(ba), giniOf(ws)
	if gBA < gWS+0.2 {
		t.Errorf("BA gini %.3f not clearly above WS %.3f", gBA, gWS)
	}
}

func TestGenerators2Deterministic(t *testing.T) {
	a := BarabasiAlbert(300, 3, 9)
	b := BarabasiAlbert(300, 3, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic")
	}
	for i, e := range a.Edges() {
		if b.Edge(int64(i)) != e {
			t.Fatal("BA edge lists differ")
		}
	}
	c := WattsStrogatz(300, 4, 0.2, 9)
	d := WattsStrogatz(300, 4, 0.2, 9)
	for i, e := range c.Edges() {
		if d.Edge(int64(i)) != e {
			t.Fatal("WS edge lists differ")
		}
	}
}
