package gen

import (
	"math"
	"testing"

	"github.com/distributedne/dne/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(10, 8, 7)
	b := RMAT(10, 8, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for i := int64(0); i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("edge mismatch for same seed")
		}
	}
	c := RMAT(10, 8, 8)
	if c.NumEdges() == a.NumEdges() {
		// Extremely unlikely to collide exactly in count AND content.
		same := true
		for i := int64(0); i < a.NumEdges(); i++ {
			if a.Edge(i) != c.Edge(i) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(12, 16, 3)
	// RMAT with Graph500 parameters is heavily skewed: the max degree
	// must far exceed the average.
	if g.MaxDegree() < 20*int64(g.AvgDegree()) {
		t.Errorf("max degree %d not skewed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	if g.NumVertices() != 1<<12 {
		t.Errorf("|V| = %d, want %d", g.NumVertices(), 1<<12)
	}
}

func TestPowerLawDegreeDistribution(t *testing.T) {
	g := PowerLaw(1<<13, 2.5, 11)
	if g.NumEdges() == 0 {
		t.Fatal("empty power-law graph")
	}
	// Most vertices should have low degree; a heavy tail must exist.
	low := 0
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) <= 2 {
			low++
		}
	}
	if frac := float64(low) / float64(g.NumVertices()); frac < 0.5 {
		t.Errorf("only %.2f of vertices are low-degree; expected power-law mass at dmin", frac)
	}
	if g.MaxDegree() < 10 {
		t.Errorf("max degree %d lacks a heavy tail", g.MaxDegree())
	}
}

func TestERSize(t *testing.T) {
	g := ER(1000, 5000, 5)
	if g.NumVertices() != 1000 {
		t.Errorf("|V| = %d", g.NumVertices())
	}
	// Dedup and self-loop removal shave a little off the 5000 samples.
	if g.NumEdges() < 4500 || g.NumEdges() > 5000 {
		t.Errorf("|E| = %d, want ~5000", g.NumEdges())
	}
}

func TestRoadIsNearUniformDegree(t *testing.T) {
	g := Road(50, 60, 9)
	if g.NumVertices() != 3000 {
		t.Errorf("|V| = %d", g.NumVertices())
	}
	if g.MaxDegree() > 8 {
		t.Errorf("road network max degree %d too high", g.MaxDegree())
	}
	avg := g.AvgDegree()
	if avg < 2.0 || avg > 4.5 {
		t.Errorf("avg degree %.2f outside road-network range", avg)
	}
}

func TestRingPlusCompleteStructure(t *testing.T) {
	n := 4
	g := RingPlusComplete(n)
	ringLen := n * (n - 1) / 2
	wantV := uint32(n + ringLen)
	wantE := int64(n*(n-1)/2 + ringLen)
	if g.NumVertices() != wantV {
		t.Errorf("|V| = %d, want %d", g.NumVertices(), wantV)
	}
	if g.NumEdges() != wantE {
		t.Errorf("|E| = %d, want %d", g.NumEdges(), wantE)
	}
	// Clique vertices have degree n-1, ring vertices degree 2.
	for v := uint32(0); v < uint32(n); v++ {
		if g.Degree(v) != int64(n-1) {
			t.Errorf("clique vertex %d degree %d, want %d", v, g.Degree(v), n-1)
		}
	}
	for v := uint32(n); v < wantV; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("ring vertex %d degree %d, want 2", v, g.Degree(v))
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(100)
	if g.Degree(0) != 99 {
		t.Errorf("hub degree %d, want 99", g.Degree(0))
	}
	if g.NumEdges() != 99 {
		t.Errorf("|E| = %d, want 99", g.NumEdges())
	}
}

func TestSampleZipfBounds(t *testing.T) {
	g := PowerLaw(512, 2.2, 1)
	if int64(g.MaxDegree()) > int64(g.NumVertices()) {
		t.Error("degree exceeds vertex count")
	}
	if math.IsNaN(g.AvgDegree()) {
		t.Error("NaN average degree")
	}
}

var _ = graph.Edge{} // keep import for doc reference
