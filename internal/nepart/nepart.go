// Package nepart implements sequential Neighbor Expansion (NE) from Zhang et
// al., "Graph Edge Partitioning via Neighborhood Heuristic", KDD 2017 — the
// offline single-machine algorithm that Distributed NE parallelises. It is
// the quality gold standard of Table 4 (best RF, slowest runtime).
package nepart

import (
	"context"
	"errors"
	"math/rand"

	"github.com/distributedne/dne/internal/dsa"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// NE is the sequential neighbor-expansion partitioner.
type NE struct {
	// Alpha is the imbalance factor (default 1.1).
	Alpha float64
	Seed  int64
}

// Name returns the display label.
func (NE) Name() string { return "NE" }

// Partition implements partition.Partitioner. Partitions are grown one at a
// time: each starts from a random vertex and repeatedly expands the boundary
// vertex with minimal remaining degree, allocating its free edges plus any
// two-hop edges that fall inside the partition's vertex set (Condition (5)).
func (ne NE) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return ne.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the expansion core; it polls ctx every
// partition.CheckEvery allocated edges.
func (ne NE) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	alpha := ne.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	if alpha < 1 {
		return nil, errors.New("nepart: alpha must be >= 1")
	}
	totalE := g.NumEdges()
	p := partition.New(numParts, totalE)
	capEdges := int64(alpha * float64(totalE) / float64(numParts))
	if capEdges < 1 {
		capEdges = 1
	}
	rng := rand.New(rand.NewSource(ne.Seed))

	n := int(g.NumVertices())
	drest := make([]int32, n)
	for v := 0; v < n; v++ {
		drest[v] = int32(g.Degree(uint32(v)))
	}
	// inPart[v] == current partition epoch iff v ∈ V(Ep) being built.
	inPart := make([]int32, n)
	for v := range inPart {
		inPart[v] = -1
	}
	var allocated int64
	// freeCursor scans for seed vertices with remaining edges.
	freeCursor := 0

	// The boundary — a lazy min-heap keyed by remaining degree — is one
	// dense epoch-stamped structure reused across all partitions (Reset is
	// O(1)), shared with Distributed NE via internal/dsa.
	bnd := dsa.NewBoundary(n)

	for q := 0; q < numParts && allocated < totalE; q++ {
		qi := int32(q)
		var count int64
		bnd.Reset()
		// Last partition absorbs everything that remains.
		budget := capEdges
		if q == numParts-1 {
			budget = totalE - allocated
		}
		for count < budget && allocated < totalE {
			if allocated%partition.CheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			var v graph.Vertex
			if pv, ok := bnd.PopMin(); ok {
				v = pv
			} else {
				sv, ok := seedVertex(g, p.Owner, &freeCursor, rng)
				if !ok {
					break
				}
				v = sv
			}
			inPart[v] = qi
			// One-hop allocation.
			nb := g.Neighbors(v)
			ie := g.IncidentEdges(v)
			for s, u := range nb {
				ei := ie[s]
				if p.Owner[ei] != partition.None {
					continue
				}
				p.Owner[ei] = qi
				count++
				allocated++
				drest[v]--
				drest[u]--
				if inPart[u] != qi {
					inPart[u] = qi
					bnd.Update(u, drest[u])
					// Two-hop: u's free edges to vertices already in V(Eq).
					unb := g.Neighbors(u)
					uie := g.IncidentEdges(u)
					for t, w := range unb {
						wi := uie[t]
						if p.Owner[wi] != partition.None || inPart[w] != qi || w == v {
							continue
						}
						p.Owner[wi] = qi
						count++
						allocated++
						drest[u]--
						drest[w]--
					}
				}
			}
		}
	}
	// Any remainder (only when the last partition's budget arithmetic leaves
	// stragglers) goes to the last partition.
	if allocated < totalE {
		for i := range p.Owner {
			if p.Owner[i] == partition.None {
				p.Owner[i] = int32(numParts - 1)
			}
		}
	}
	return p, nil
}

// seedVertex returns a vertex with at least one unallocated edge.
func seedVertex(g *graph.Graph, owner []int32, cursor *int, rng *rand.Rand) (graph.Vertex, bool) {
	m := len(owner)
	if m == 0 {
		return 0, false
	}
	start := (*cursor + rng.Intn(m)) % m
	for k := 0; k < m; k++ {
		i := (start + k) % m
		if owner[i] == partition.None {
			*cursor = i
			e := g.Edge(int64(i))
			if rng.Intn(2) == 0 {
				return e.U, true
			}
			return e.V, true
		}
	}
	return 0, false
}
