package nepart

import (
	"testing"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/streampart"
)

// graphT lets the bound test range over named graphs.
type graphT struct{ g *graph.Graph }

func TestNEBalanceWithinAlpha(t *testing.T) {
	g := gen.RMAT(11, 16, 5)
	for _, alpha := range []float64{1.05, 1.1, 1.5} {
		pt, err := NE{Seed: 1, Alpha: alpha}.Partition(g, 16)
		if err != nil {
			t.Fatal(err)
		}
		q := pt.Measure(g)
		// Eq. (2)'s real constraint is on the max: |Ep| < α|E|/P, with one
		// expansion step able to overshoot by the selected vertex's
		// residual degree.
		cap := int64(alpha*float64(g.NumEdges())/16) + g.MaxDegree()
		if q.MaxPartEdges > cap {
			t.Errorf("alpha=%.2f: max part %d exceeds cap %d", alpha, q.MaxPartEdges, cap)
		}
	}
}

func TestNEBeatsHDRFOnSkewedGraph(t *testing.T) {
	// Table 4's quality ordering: offline NE < streaming HDRF in RF.
	g := gen.RMAT(11, 16, 9)
	const p = 16
	ne, err := NE{Seed: 2}.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	hdrf, err := streampart.HDRF{Seed: 2}.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	neRF := ne.Measure(g).ReplicationFactor
	hdrfRF := hdrf.Measure(g).ReplicationFactor
	if neRF >= hdrfRF {
		t.Errorf("NE RF %.3f not below HDRF RF %.3f", neRF, hdrfRF)
	}
}

func TestNEWithinTheorem1StyleBound(t *testing.T) {
	// Zhang et al. prove a sequential-expansion bound of the same form as
	// the paper's Theorem 1; the implementation must stay under the
	// (|E|+|V|+|P|)/|V| form on several families.
	for name, g := range map[string]*graphT{
		"rmat": {gen.RMAT(9, 8, 1)},
		"road": {gen.Road(20, 20, 1)},
		"star": {gen.Star(1 << 8)},
	} {
		pt, err := NE{Seed: 1}.Partition(g.g, 8)
		if err != nil {
			t.Fatal(err)
		}
		rf := pt.Measure(g.g).ReplicationFactor
		ub := bound.Theorem1(g.g.NumEdges(), int64(g.g.NumVertices()), 8)
		if rf > ub {
			t.Errorf("%s: NE RF %.3f exceeds bound %.3f", name, rf, ub)
		}
	}
}

func TestNEDeterministic(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	a, _ := NE{Seed: 7}.Partition(g, 8)
	b, _ := NE{Seed: 7}.Partition(g, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("owners differ at %d", i)
		}
	}
}
