package nepart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
)

func testGraph() *graph.Graph { return gen.RMAT(11, 8, 4) }

func TestValidComplete(t *testing.T) {
	g := testGraph()
	for _, parts := range []int{1, 2, 8, 64} {
		pt, err := NE{Seed: 1}.Partition(g, parts)
		if err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
	}
}

func TestBestInClassQuality(t *testing.T) {
	// NE is the paper's quality gold standard (Table 4): it should clearly
	// beat hash-based and greedy streaming methods.
	g := testGraph()
	pt, err := NE{Seed: 1}.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	ne := pt.Measure(g).ReplicationFactor
	ob, err := hashpart.Oblivious{Seed: 1}.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if obRF := ob.Measure(g).ReplicationFactor; ne >= obRF {
		t.Errorf("NE RF %.3f should beat Oblivious %.3f", ne, obRF)
	}
}

func TestBalanceRespectsAlpha(t *testing.T) {
	g := testGraph()
	const parts = 8
	pt, err := NE{Seed: 1, Alpha: 1.1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	cap := int64(1.1*float64(g.NumEdges())/parts) + g.MaxDegree()
	for q, c := range pt.EdgeCounts() {
		if q == parts-1 {
			continue // last partition absorbs the remainder by design
		}
		if c > cap {
			t.Errorf("partition %d: %d edges over cap %d", q, c, cap)
		}
	}
}

func TestAlphaValidation(t *testing.T) {
	g := testGraph()
	if _, err := (NE{Alpha: 0.5}).Partition(g, 4); err == nil {
		t.Error("alpha < 1 must be rejected")
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph()
	a, _ := NE{Seed: 9}.Partition(g, 8)
	b, _ := NE{Seed: 9}.Partition(g, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatal("NE not deterministic for fixed seed")
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disjoint triangles: expansion must reseed across components.
	g := graph.FromEdges(0, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	pt, err := NE{Seed: 2}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
}
