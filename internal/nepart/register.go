package nepart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "ne",
		Summary: "sequential neighbor expansion, the quality gold standard (Zhang et al., KDD'17)",
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "imbalance factor α ≥ 1", Min: 1, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "NE", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return NE{Alpha: spec.Float("alpha", 1.1), Seed: spec.Seed}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
}
