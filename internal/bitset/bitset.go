// Package bitset provides a small dynamic bitset used to track the set of
// partitions a vertex replica belongs to. Partition counts in this repository
// range from 2 to a few thousand, so a word-array bitset is both compact and
// fast (the paper stresses avoiding hash-map-based metadata, §7.3).
package bitset

import "math/bits"

// Set is a fixed-capacity bitset. The zero value of a Set with no words has
// capacity 0; allocate with New.
type Set struct {
	words []uint64
}

// New returns a set able to hold bits [0, n).
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// WordsFor returns the number of uint64 words a set of capacity n uses.
func WordsFor(n int) int { return (n + 63) / 64 }

// Set sets bit i.
func (s Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IntersectInto writes the intersection of a and b into dst and reports
// whether it is non-empty. dst must have the same word length as a and b.
func IntersectInto(dst, a, b Set) bool {
	nonEmpty := false
	for i := range dst.words {
		w := a.words[i] & b.words[i]
		dst.words[i] = w
		if w != 0 {
			nonEmpty = true
		}
	}
	return nonEmpty
}

// Or sets s |= o.
func (s Set) Or(o Set) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Min returns the smallest set bit, or -1 if the set is empty.
func (s Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Reset clears all bits.
func (s Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Words exposes the backing words (read-only use).
func (s Set) Words() []uint64 { return s.words }

// FromWords wraps an existing word slice as a Set view. Mutations through
// the view write to the slice; used to pack many small per-vertex sets into
// one flat slab.
func FromWords(words []uint64) Set { return Set{words: words} }

// MemoryFootprint returns the bytes held by the backing array.
func (s Set) MemoryFootprint() int64 { return int64(len(s.words)) * 8 }
