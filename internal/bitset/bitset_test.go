package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Error("new set should be empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("unexpected bits set")
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear failed")
	}
	if s.Min() != 0 {
		t.Errorf("Min = %d, want 0", s.Min())
	}
	s.Reset()
	if !s.Empty() || s.Min() != -1 {
		t.Error("Reset failed")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestIntersectAndOr(t *testing.T) {
	a, b, dst := New(100), New(100), New(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if !IntersectInto(dst, a, b) {
		t.Fatal("intersection should be non-empty")
	}
	if dst.Count() != 1 || !dst.Has(70) {
		t.Error("wrong intersection")
	}
	b.Clear(70)
	if IntersectInto(dst, a, b) {
		t.Error("intersection should be empty now")
	}
	a.Or(b)
	if !a.Has(99) {
		t.Error("Or failed")
	}
}

func TestClone(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Has(6) {
		t.Error("Clone shares storage")
	}
	if !c.Has(5) {
		t.Error("Clone lost bits")
	}
}

func TestQuickSetHasCount(t *testing.T) {
	// Property: after setting an arbitrary subset of [0,512), Has matches
	// membership and Count matches the distinct count.
	f := func(idx []uint16) bool {
		s := New(512)
		seen := map[int]bool{}
		for _, i := range idx {
			b := int(i) % 512
			s.Set(b)
			seen[b] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for b := 0; b < 512; b++ {
			if s.Has(b) != seen[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 64: 1, 65: 2, 1024: 16}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
