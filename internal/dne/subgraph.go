package dne

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
)

// subGraph is one allocation process's share of the input graph (§4 "Data
// Structure"): a CSR over the locally-owned (unique) edges, per-edge atomic
// owner words, and per-local-vertex partition bitsets and free-degree
// counters. Vertices are replicated across machines; edges are not.
type subGraph struct {
	numParts int

	// Distinct local vertices, sorted; index into the arrays below is the
	// "local vertex id".
	verts []graph.Vertex

	// CSR over local edges: each local undirected edge appears in two
	// adjacency lists.
	off    []int64
	target []graph.Vertex // neighbor (global id)
	eIdx   []int32        // local edge index for the adjacency slot

	edges     []graph.Edge // local edges
	globalIdx []int64      // canonical (global) edge index of each local edge
	owner     []int32      // partition owning local edge i, or -1 (CAS'd)

	partSets []bitset.Set // partitions each local vertex belongs to
	drest    []int32      // free (unallocated) local degree per local vertex

	freeEdges int64 // number of unallocated local edges
	seedCur   int   // rotating cursor for random-seed scans

	// conflicts counts same-superstep contention: a partition found an edge
	// it wanted already claimed *in the current superstep* by a different
	// partition (the paper's CAS-resolved allocation conflict, §4). Only
	// populated under Config.ParallelAllocation. Read atomically.
	conflicts int64
	// claimIter tags each local edge with the superstep in which it was
	// claimed (parallel mode only; used to recognise same-round contention).
	claimIter []int32
}

// buildSubGraph extracts rank's 2D-hash share of g.
func buildSubGraph(g *graph.Graph, gd grid, rank, numParts int) *subGraph {
	sg := &subGraph{numParts: numParts}
	for i, e := range g.Edges() {
		if gd.edgeOwner(e.U, e.V) != rank {
			continue
		}
		sg.edges = append(sg.edges, e)
		sg.globalIdx = append(sg.globalIdx, int64(i))
	}
	// Collect distinct local vertices.
	sg.verts = make([]graph.Vertex, 0, len(sg.edges))
	for _, e := range sg.edges {
		sg.verts = append(sg.verts, e.U, e.V)
	}
	sort.Slice(sg.verts, func(i, j int) bool { return sg.verts[i] < sg.verts[j] })
	uniq := sg.verts[:0]
	for i, v := range sg.verts {
		if i == 0 || v != sg.verts[i-1] {
			uniq = append(uniq, v)
		}
	}
	sg.verts = uniq

	n := len(sg.verts)
	sg.off = make([]int64, n+1)
	for _, e := range sg.edges {
		sg.off[sg.localID(e.U)+1]++
		sg.off[sg.localID(e.V)+1]++
	}
	for v := 0; v < n; v++ {
		sg.off[v+1] += sg.off[v]
	}
	sg.target = make([]graph.Vertex, sg.off[n])
	sg.eIdx = make([]int32, sg.off[n])
	cursor := make([]int64, n)
	for i, e := range sg.edges {
		lu, lv := sg.localID(e.U), sg.localID(e.V)
		pu := sg.off[lu] + cursor[lu]
		sg.target[pu] = e.V
		sg.eIdx[pu] = int32(i)
		cursor[lu]++
		pv := sg.off[lv] + cursor[lv]
		sg.target[pv] = e.U
		sg.eIdx[pv] = int32(i)
		cursor[lv]++
	}
	sg.owner = make([]int32, len(sg.edges))
	for i := range sg.owner {
		sg.owner[i] = -1
	}
	sg.partSets = make([]bitset.Set, n)
	for v := range sg.partSets {
		sg.partSets[v] = bitset.New(numParts)
	}
	sg.drest = make([]int32, n)
	for v := 0; v < n; v++ {
		sg.drest[v] = int32(sg.off[v+1] - sg.off[v])
	}
	sg.freeEdges = int64(len(sg.edges))
	return sg
}

// localID returns the local index of global vertex v, or -1 if v is not
// local.
func (sg *subGraph) localID(v graph.Vertex) int {
	i := sort.Search(len(sg.verts), func(i int) bool { return sg.verts[i] >= v })
	if i < len(sg.verts) && sg.verts[i] == v {
		return i
	}
	return -1
}

// allocateEdge tries to claim local edge le for partition p; it returns true
// on success. Conflicts between concurrently expanding partitions are
// resolved by this CAS (§4: "The conflict ... is solved by a CAS operation").
func (sg *subGraph) allocateEdge(le int32, p int32) bool {
	if !atomic.CompareAndSwapInt32(&sg.owner[le], -1, p) {
		return false
	}
	e := sg.edges[le]
	if lu := sg.localID(e.U); lu >= 0 {
		atomic.AddInt32(&sg.drest[lu], -1)
	}
	if lv := sg.localID(e.V); lv >= 0 {
		atomic.AddInt32(&sg.drest[lv], -1)
	}
	atomic.AddInt64(&sg.freeEdges, -1)
	return true
}

// allocOneHop performs Alg. 3 AllocateOneHopNeighbors for a single received
// ⟨v, p⟩ pair. It returns the new local boundary pairs ⟨u, p⟩ and appends the
// allocated local edge indices to out.
func (sg *subGraph) allocOneHop(v graph.Vertex, p int32, out *[]int32) []vp {
	lv := sg.localID(v)
	if lv < 0 {
		return nil
	}
	var bp []vp
	for s := sg.off[lv]; s < sg.off[lv+1]; s++ {
		le := sg.eIdx[s]
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue
		}
		if !sg.allocateEdge(le, p) {
			continue
		}
		u := sg.target[s]
		sg.partSets[lv].Set(int(p))
		if lu := sg.localID(u); lu >= 0 {
			sg.partSets[lu].Set(int(p))
		}
		bp = append(bp, vp{V: u, P: p})
		*out = append(*out, le)
	}
	return bp
}

// allocOneHopDeferred is allocOneHop for the intra-machine parallel mode
// (Config.ParallelAllocation): edge claims use the CAS exactly as in the
// paper's Algorithm 3, but partition-bitset updates are *recorded* into defs
// instead of applied, because bitsets are not atomic; the caller applies them
// sequentially after the parallel phase. iter tags claims so that losing a
// wanted edge to a different partition *within the same superstep* is
// counted as an allocation conflict (§4). Returns the number of edges
// claimed.
func (sg *subGraph) allocOneHopDeferred(v graph.Vertex, p int32, iter int32, out *[]int32, bp *[]vp, defs *[]vp) int {
	lv := sg.localID(v)
	if lv < 0 {
		return 0
	}
	if sg.claimIter == nil {
		panic("dne: allocOneHopDeferred requires claimIter (parallel mode)")
	}
	claimed := 0
	for s := sg.off[lv]; s < sg.off[lv+1]; s++ {
		le := sg.eIdx[s]
		if o := atomic.LoadInt32(&sg.owner[le]); o != -1 {
			if o != p && atomic.LoadInt32(&sg.claimIter[le]) == iter {
				atomic.AddInt64(&sg.conflicts, 1)
			}
			continue
		}
		if !sg.allocateEdge(le, p) {
			atomic.AddInt64(&sg.conflicts, 1)
			continue // lost the CAS race itself
		}
		atomic.StoreInt32(&sg.claimIter[le], iter)
		claimed++
		u := sg.target[s]
		*defs = append(*defs, vp{V: v, P: p}, vp{V: u, P: p})
		*bp = append(*bp, vp{V: u, P: p})
		*out = append(*out, le)
	}
	return claimed
}

// applySync records that vertex v now belongs to partition p (replica
// synchronisation, Alg. 2 Line 3). Returns the local id, or -1.
func (sg *subGraph) applySync(v graph.Vertex, p int32) int {
	lv := sg.localID(v)
	if lv >= 0 {
		sg.partSets[lv].Set(int(p))
	}
	return lv
}

// allocTwoHop performs Alg. 3 AllocateTwoHopNeighbors for one synced boundary
// vertex u: any free local edge (u,w) whose endpoints already share a
// partition is allocated to the smallest such partition (Condition (5) never
// increases replication). sizesView is this machine's working view of the
// global |Eq| vector (gathered last iteration plus local increments); it is
// used both for the argmin on Line 16 and to enforce the α cap of Eq. (2),
// and is incremented for every allocation made here. Allocated local edge
// indices are appended to out.
// twoBudget additionally caps how many two-hop edges this machine may give
// each partition this iteration (a 1/P fair share of the partition's
// remaining capacity), bounding the cross-machine overshoot that the
// one-iteration-stale sizesView cannot see.
func (sg *subGraph) allocTwoHop(u graph.Vertex, sizesView, twoBudget []int64, capEdges int64, scratch bitset.Set, out *[]int32) {
	lu := sg.localID(u)
	if lu < 0 {
		return
	}
	if atomic.LoadInt32(&sg.drest[lu]) == 0 {
		return
	}
	for s := sg.off[lu]; s < sg.off[lu+1]; s++ {
		le := sg.eIdx[s]
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue
		}
		w := sg.target[s]
		lw := sg.localID(w)
		if lw < 0 {
			continue
		}
		if !bitset.IntersectInto(scratch, sg.partSets[lu], sg.partSets[lw]) {
			continue
		}
		best := int32(-1)
		var bestSize int64
		scratch.ForEach(func(q int) {
			if sizesView[q] >= capEdges || twoBudget[q] <= 0 {
				return // would violate the balance constraint
			}
			if best == -1 || sizesView[q] < bestSize {
				best = int32(q)
				bestSize = sizesView[q]
			}
		})
		if best == -1 {
			continue
		}
		if sg.allocateEdge(le, best) {
			sizesView[best]++
			twoBudget[best]--
			*out = append(*out, le)
		}
	}
}

// localDrest returns the current free local degree of v (Alg. 2 Line 5).
func (sg *subGraph) localDrest(v graph.Vertex) int32 {
	lv := sg.localID(v)
	if lv < 0 {
		return 0
	}
	return atomic.LoadInt32(&sg.drest[lv])
}

// randomSeed picks a vertex that still has a free local edge, scanning from a
// rotating cursor so repeated seeds cover the whole subgraph. Returns false
// if every local edge is allocated.
func (sg *subGraph) randomSeed(rng *rand.Rand) (graph.Vertex, bool) {
	if atomic.LoadInt64(&sg.freeEdges) == 0 {
		return 0, false
	}
	n := len(sg.edges)
	start := sg.seedCur
	if n > 0 {
		start = (sg.seedCur + rng.Intn(n)) % n
	}
	for k := 0; k < n; k++ {
		le := (start + k) % n
		if atomic.LoadInt32(&sg.owner[le]) == -1 {
			sg.seedCur = (le + 1) % n
			e := sg.edges[le]
			if rng.Intn(2) == 0 {
				return e.U, true
			}
			return e.V, true
		}
	}
	return 0, false
}

// sweepLeftovers force-assigns every remaining free edge to the smallest
// candidate partition (preferring partitions already covering an endpoint).
// It returns the number of swept edges. Used only when every partition hit
// the α cap with edges still unallocated (§ DESIGN.md "leftover sweep").
func (sg *subGraph) sweepLeftovers(partSizes []int64, scratch bitset.Set) int64 {
	var swept int64
	for le := range sg.edges {
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue
		}
		e := sg.edges[le]
		lu, lv := sg.localID(e.U), sg.localID(e.V)
		best := int32(-1)
		var bestSize int64
		consider := func(q int) {
			if best == -1 || partSizes[q] < bestSize {
				best = int32(q)
				bestSize = partSizes[q]
			}
		}
		scratch.Reset()
		if lu >= 0 {
			scratch.Or(sg.partSets[lu])
		}
		if lv >= 0 {
			scratch.Or(sg.partSets[lv])
		}
		if !scratch.Empty() {
			scratch.ForEach(consider)
		} else {
			for q := 0; q < sg.numParts; q++ {
				consider(q)
			}
		}
		if sg.allocateEdge(int32(le), best) {
			partSizes[best]++
			swept++
		}
	}
	return swept
}

// memoryFootprint returns an analytic byte count of this subgraph's arrays,
// used by the Fig-9 memory score.
func (sg *subGraph) memoryFootprint() int64 {
	bytes := int64(len(sg.verts))*4 +
		int64(len(sg.off))*8 +
		int64(len(sg.target))*4 +
		int64(len(sg.eIdx))*4 +
		int64(len(sg.edges))*8 +
		int64(len(sg.globalIdx))*8 +
		int64(len(sg.owner))*4 +
		int64(len(sg.claimIter))*4 +
		int64(len(sg.drest))*4
	for _, s := range sg.partSets {
		bytes += s.MemoryFootprint()
	}
	return bytes
}
