package dne

import (
	"math/rand"
	"sync/atomic"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
)

// subGraph is one allocation process's share of the input graph (§4 "Data
// Structure"): a CSR over the locally-owned (unique) edges, per-edge atomic
// owner words, and per-local-vertex partition bitsets and free-degree
// counters. Vertices are replicated across machines; edges are not.
//
// All per-vertex state is held in flat slabs indexed by local vertex id, and
// the global→local translation is a dense array (lid) rather than a binary
// search — the paper's compact-arrays-not-hash-tables argument (§7.3)
// applied to the reproduction's own inner loops.
type subGraph struct {
	numParts int

	// Distinct local vertices, sorted; index into the arrays below is the
	// "local vertex id".
	verts []graph.Vertex

	// lid[g] is the local id of global vertex g, or -1 when g has no local
	// edge. Dense: len = |V| of the input graph.
	lid []int32

	// CSR over local edges: each local undirected edge appears in two
	// adjacency lists.
	off    []int64
	target []graph.Vertex // neighbor (global id)
	eIdx   []int32        // local edge index for the adjacency slot

	// aliveLen[lv] bounds the adjacency slots of lv still worth scanning:
	// the sequential allocation paths compact surviving free slots to the
	// front of lv's range (stably, preserving ascending edge-index order),
	// so repeated expansions of hub vertices do not rescan allocated edges.
	// Invariant: every free local edge incident to lv lies in
	// target/eIdx[off[lv] : off[lv]+aliveLen[lv]].
	aliveLen []int32

	edges     []graph.Edge // local edges
	globalIdx []int64      // canonical (global) edge index of each local edge
	owner     []int32      // partition owning local edge i, or -1 (CAS'd)

	// Partition membership bitsets, one per local vertex, packed into a
	// single slab of wordsPer words each; partSet(lv) is the view.
	partWords []uint64
	wordsPer  int

	drest []int32 // free (unallocated) local degree per local vertex

	freeEdges int64 // number of unallocated local edges
	seedCur   int   // rotating cursor for random-seed scans

	// conflicts counts same-superstep contention: a partition found an edge
	// it wanted already claimed *in the current superstep* by a different
	// partition (the paper's CAS-resolved allocation conflict, §4). Only
	// populated under Config.ParallelAllocation. Read atomically.
	conflicts int64
	// claimIter tags each local edge with the superstep in which it was
	// claimed (parallel mode only; used to recognise same-round contention).
	claimIter []int32
}

// buildSubGraph extracts rank's 2D-hash share of g with a single scan: the
// legacy whole-graph path (PartitionOver), where every rank holds g and
// pulls out its own share. The shard data plane builds the identical
// subgraph from shuffled edges instead (buildSubGraphPacked).
func buildSubGraph(g *graph.Graph, gd grid, rank, numParts int) *subGraph {
	var bucket []int64
	for i, e := range g.Edges() {
		if gd.edgeOwner(e.U, e.V) == rank {
			bucket = append(bucket, int64(i))
		}
	}
	return buildSubGraphFrom(g, numParts, bucket)
}

// buildSubGraphFrom materializes the subgraph over the given canonical edge
// indices (ascending).
func buildSubGraphFrom(g *graph.Graph, numParts int, bucket []int64) *subGraph {
	edges := make([]graph.Edge, len(bucket))
	for i, gi := range bucket {
		edges[i] = g.Edge(gi)
	}
	return buildSubGraphCore(g.NumVertices(), numParts, edges, bucket)
}

// buildSubGraphPacked materializes the subgraph from sorted, deduplicated
// packed edge keys — the form the distributed shuffle delivers. No global
// edge array is consulted and no global edge indices exist; result
// collection keys by the packed edges themselves. Because ascending packed
// order IS ascending canonical-index order, the resulting subgraph is
// field-for-field identical to the bucket-driven build (minus globalIdx).
func buildSubGraphPacked(numVertices uint32, numParts int, packed []uint64) *subGraph {
	edges := make([]graph.Edge, len(packed))
	for i, k := range packed {
		edges[i] = graph.UnpackEdge(k)
	}
	return buildSubGraphCore(numVertices, numParts, edges, nil)
}

// buildSubGraphCore builds the subgraph over local canonical edges
// (ascending canonical order). globalIdx, when non-nil, records each local
// edge's global canonical index for index-keyed result collection.
func buildSubGraphCore(numVertices uint32, numParts int, edges []graph.Edge, globalIdx []int64) *subGraph {
	sg := &subGraph{numParts: numParts, globalIdx: globalIdx}
	sg.edges = edges

	// Distinct local vertices, ascending, and the dense global→local map:
	// mark endpoints in lid, then one scan over the id space assigns local
	// ids in ascending global order.
	nGlobal := int(numVertices)
	sg.lid = make([]int32, nGlobal)
	for i := range sg.lid {
		sg.lid[i] = -1
	}
	for _, e := range sg.edges {
		sg.lid[e.U] = 0
		sg.lid[e.V] = 0
	}
	count := 0
	for v := 0; v < nGlobal; v++ {
		if sg.lid[v] == 0 {
			count++
		}
	}
	sg.verts = make([]graph.Vertex, 0, count)
	for v := 0; v < nGlobal; v++ {
		if sg.lid[v] == 0 {
			sg.lid[v] = int32(len(sg.verts))
			sg.verts = append(sg.verts, graph.Vertex(v))
		}
	}

	n := len(sg.verts)
	sg.off = make([]int64, n+1)
	for _, e := range sg.edges {
		sg.off[sg.lid[e.U]+1]++
		sg.off[sg.lid[e.V]+1]++
	}
	for v := 0; v < n; v++ {
		sg.off[v+1] += sg.off[v]
	}
	sg.target = make([]graph.Vertex, sg.off[n])
	sg.eIdx = make([]int32, sg.off[n])
	cursor := make([]int32, n)
	for i, e := range sg.edges {
		lu, lv := sg.lid[e.U], sg.lid[e.V]
		pu := sg.off[lu] + int64(cursor[lu])
		sg.target[pu] = e.V
		sg.eIdx[pu] = int32(i)
		cursor[lu]++
		pv := sg.off[lv] + int64(cursor[lv])
		sg.target[pv] = e.U
		sg.eIdx[pv] = int32(i)
		cursor[lv]++
	}
	sg.owner = make([]int32, len(sg.edges))
	for i := range sg.owner {
		sg.owner[i] = -1
	}
	sg.wordsPer = bitset.WordsFor(numParts)
	sg.partWords = make([]uint64, n*sg.wordsPer)
	sg.drest = make([]int32, n)
	sg.aliveLen = make([]int32, n)
	for v := 0; v < n; v++ {
		d := int32(sg.off[v+1] - sg.off[v])
		sg.drest[v] = d
		sg.aliveLen[v] = d
	}
	sg.freeEdges = int64(len(sg.edges))
	return sg
}

// localID returns the local index of global vertex v, or -1 if v is not
// local.
func (sg *subGraph) localID(v graph.Vertex) int { return int(sg.lid[v]) }

// partSet returns the partition-membership bitset view of local vertex lv.
func (sg *subGraph) partSet(lv int) bitset.Set {
	return bitset.FromWords(sg.partWords[lv*sg.wordsPer : (lv+1)*sg.wordsPer])
}

// allocateEdge tries to claim local edge le for partition p; it returns true
// on success. Conflicts between concurrently expanding partitions are
// resolved by this CAS (§4: "The conflict ... is solved by a CAS operation").
func (sg *subGraph) allocateEdge(le int32, p int32) bool {
	if !atomic.CompareAndSwapInt32(&sg.owner[le], -1, p) {
		return false
	}
	e := sg.edges[le]
	if lu := sg.lid[e.U]; lu >= 0 {
		atomic.AddInt32(&sg.drest[lu], -1)
	}
	if lv := sg.lid[e.V]; lv >= 0 {
		atomic.AddInt32(&sg.drest[lv], -1)
	}
	atomic.AddInt64(&sg.freeEdges, -1)
	return true
}

// allocOneHop performs Alg. 3 AllocateOneHopNeighbors for a single received
// ⟨v, p⟩ pair. It returns the new local boundary pairs ⟨u, p⟩ and appends the
// allocated local edge indices to out. Sequential mode only: every free slot
// of v is claimed here, so v's alive adjacency empties.
func (sg *subGraph) allocOneHop(v graph.Vertex, p int32, out *[]int32) []vp {
	lv := int64(sg.lid[v])
	if lv < 0 {
		return nil
	}
	var bp []vp
	base := sg.off[lv]
	for s := base; s < base+int64(sg.aliveLen[lv]); s++ {
		le := sg.eIdx[s]
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue
		}
		if !sg.allocateEdge(le, p) {
			continue
		}
		u := sg.target[s]
		sg.partSet(int(lv)).Set(int(p))
		if lu := sg.lid[u]; lu >= 0 {
			sg.partSet(int(lu)).Set(int(p))
		}
		bp = append(bp, vp{V: u, P: p})
		*out = append(*out, le)
	}
	// Every slot in the alive range is now allocated (either previously or
	// by this call), so the compacted free adjacency of v is empty.
	sg.aliveLen[lv] = 0
	return bp
}

// allocOneHopDeferred is allocOneHop for the intra-machine parallel mode
// (Config.ParallelAllocation): edge claims use the CAS exactly as in the
// paper's Algorithm 3, but partition-bitset updates are *recorded* into defs
// instead of applied, because bitsets are not atomic; the caller applies them
// sequentially after the parallel phase. iter tags claims so that losing a
// wanted edge to a different partition *within the same superstep* is
// counted as an allocation conflict (§4). Returns the number of edges
// claimed. Workers may scan the same vertex concurrently, so this path reads
// the alive range but never compacts it.
func (sg *subGraph) allocOneHopDeferred(v graph.Vertex, p int32, iter int32, out *[]int32, bp *[]vp, defs *[]vp) int {
	lv := int64(sg.lid[v])
	if lv < 0 {
		return 0
	}
	if sg.claimIter == nil {
		panic("dne: allocOneHopDeferred requires claimIter (parallel mode)")
	}
	claimed := 0
	base := sg.off[lv]
	for s := base; s < base+int64(sg.aliveLen[lv]); s++ {
		le := sg.eIdx[s]
		if o := atomic.LoadInt32(&sg.owner[le]); o != -1 {
			if o != p && atomic.LoadInt32(&sg.claimIter[le]) == iter {
				atomic.AddInt64(&sg.conflicts, 1)
			}
			continue
		}
		if !sg.allocateEdge(le, p) {
			atomic.AddInt64(&sg.conflicts, 1)
			continue // lost the CAS race itself
		}
		atomic.StoreInt32(&sg.claimIter[le], iter)
		claimed++
		u := sg.target[s]
		*defs = append(*defs, vp{V: v, P: p}, vp{V: u, P: p})
		*bp = append(*bp, vp{V: u, P: p})
		*out = append(*out, le)
	}
	return claimed
}

// applySync records that vertex v now belongs to partition p (replica
// synchronisation, Alg. 2 Line 3). Returns the local id, or -1.
func (sg *subGraph) applySync(v graph.Vertex, p int32) int {
	lv := sg.lid[v]
	if lv >= 0 {
		sg.partSet(int(lv)).Set(int(p))
	}
	return int(lv)
}

// allocTwoHop performs Alg. 3 AllocateTwoHopNeighbors for one synced boundary
// vertex u: any free local edge (u,w) whose endpoints already share a
// partition is allocated to the smallest such partition (Condition (5) never
// increases replication). sizesView is this machine's working view of the
// global |Eq| vector (gathered last iteration plus local increments); it is
// used both for the argmin on Line 16 and to enforce the α cap of Eq. (2),
// and is incremented for every allocation made here. Allocated local edge
// indices are appended to out.
// twoBudget additionally caps how many two-hop edges this machine may give
// each partition this iteration (a 1/P fair share of the partition's
// remaining capacity), bounding the cross-machine overshoot that the
// one-iteration-stale sizesView cannot see.
// Runs in the sequential phase, so it stably compacts u's surviving free
// slots to the front of the alive range as it scans.
func (sg *subGraph) allocTwoHop(u graph.Vertex, sizesView, twoBudget []int64, capEdges int64, scratch bitset.Set, out *[]int32) {
	lu := int64(sg.lid[u])
	if lu < 0 {
		return
	}
	if atomic.LoadInt32(&sg.drest[lu]) == 0 {
		return
	}
	base := sg.off[lu]
	alive := int64(sg.aliveLen[lu])
	setU := sg.partSet(int(lu))
	var keep int64
	for s := int64(0); s < alive; s++ {
		le := sg.eIdx[base+s]
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue // allocated: drop from the alive range
		}
		w := sg.target[base+s]
		lw := sg.lid[w]
		if lw < 0 {
			// Never allocatable here; keep (still a free edge of u).
			sg.eIdx[base+keep] = le
			sg.target[base+keep] = w
			keep++
			continue
		}
		if !bitset.IntersectInto(scratch, setU, sg.partSet(int(lw))) {
			sg.eIdx[base+keep] = le
			sg.target[base+keep] = w
			keep++
			continue
		}
		best := int32(-1)
		var bestSize int64
		scratch.ForEach(func(q int) {
			if sizesView[q] >= capEdges || twoBudget[q] <= 0 {
				return // would violate the balance constraint
			}
			if best == -1 || sizesView[q] < bestSize {
				best = int32(q)
				bestSize = sizesView[q]
			}
		})
		if best == -1 {
			sg.eIdx[base+keep] = le
			sg.target[base+keep] = w
			keep++
			continue
		}
		if sg.allocateEdge(le, best) {
			sizesView[best]++
			twoBudget[best]--
			*out = append(*out, le)
		} else {
			sg.eIdx[base+keep] = le
			sg.target[base+keep] = w
			keep++
		}
	}
	sg.aliveLen[lu] = int32(keep)
}

// localDrest returns the current free local degree of v (Alg. 2 Line 5).
func (sg *subGraph) localDrest(v graph.Vertex) int32 {
	lv := sg.lid[v]
	if lv < 0 {
		return 0
	}
	return atomic.LoadInt32(&sg.drest[lv])
}

// randomSeed picks a vertex that still has a free local edge, scanning from a
// rotating cursor so repeated seeds cover the whole subgraph. Returns false
// if every local edge is allocated.
func (sg *subGraph) randomSeed(rng *rand.Rand) (graph.Vertex, bool) {
	if atomic.LoadInt64(&sg.freeEdges) == 0 {
		return 0, false
	}
	n := len(sg.edges)
	start := sg.seedCur
	if n > 0 {
		start = (sg.seedCur + rng.Intn(n)) % n
	}
	for k := 0; k < n; k++ {
		le := (start + k) % n
		if atomic.LoadInt32(&sg.owner[le]) == -1 {
			sg.seedCur = (le + 1) % n
			e := sg.edges[le]
			if rng.Intn(2) == 0 {
				return e.U, true
			}
			return e.V, true
		}
	}
	return 0, false
}

// sweepLeftovers force-assigns every remaining free edge to the smallest
// candidate partition (preferring partitions already covering an endpoint).
// It returns the number of swept edges. Used only when every partition hit
// the α cap with edges still unallocated (§ DESIGN.md "leftover sweep").
func (sg *subGraph) sweepLeftovers(partSizes []int64, scratch bitset.Set) int64 {
	var swept int64
	for le := range sg.edges {
		if atomic.LoadInt32(&sg.owner[le]) != -1 {
			continue
		}
		e := sg.edges[le]
		lu, lv := sg.lid[e.U], sg.lid[e.V]
		best := int32(-1)
		var bestSize int64
		consider := func(q int) {
			if best == -1 || partSizes[q] < bestSize {
				best = int32(q)
				bestSize = partSizes[q]
			}
		}
		scratch.Reset()
		if lu >= 0 {
			scratch.Or(sg.partSet(int(lu)))
		}
		if lv >= 0 {
			scratch.Or(sg.partSet(int(lv)))
		}
		if !scratch.Empty() {
			scratch.ForEach(consider)
		} else {
			for q := 0; q < sg.numParts; q++ {
				consider(q)
			}
		}
		if sg.allocateEdge(int32(le), best) {
			partSizes[best]++
			swept++
		}
	}
	return swept
}

// memoryFootprint returns an analytic byte count of this subgraph's arrays,
// used by the Fig-9 memory score. The dense global→local map and the packed
// partition-bitset slab are charged at their true flat-array sizes; no
// hash-map entry overhead exists any more.
func (sg *subGraph) memoryFootprint() int64 {
	return int64(len(sg.verts))*4 +
		int64(len(sg.lid))*4 +
		int64(len(sg.off))*8 +
		int64(len(sg.target))*4 +
		int64(len(sg.eIdx))*4 +
		int64(len(sg.aliveLen))*4 +
		int64(len(sg.edges))*8 +
		int64(len(sg.globalIdx))*8 +
		int64(len(sg.owner))*4 +
		int64(len(sg.claimIter))*4 +
		int64(len(sg.drest))*4 +
		int64(len(sg.partWords))*8
}
