package dne

import (
	"context"
	"slices"
	"sync"
	"testing"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// hashShards splits g's edges into p shards the way gengraph does: routed
// by an endpoint-independent hash, unsorted relative to grid ownership, and
// with some duplicated edges — the raw-stream shape PartitionShards must
// digest (the shuffle dedups at the owner).
func hashShards(g *graph.Graph, p int) []*graph.Shard {
	shards := make([]*graph.Shard, p)
	for r := range shards {
		shards[r] = &graph.Shard{NumVertices: g.NumVertices()}
	}
	for i, e := range g.Edges() {
		k := graph.PackEdge(e.U, e.V)
		r := int((k * 0x9e3779b97f4a7c15 >> 33) % uint64(p))
		shards[r].Packed = append(shards[r].Packed, k)
		if i%17 == 0 { // duplicate ~6% of edges into a different shard
			shards[(r+1)%p].Packed = append(shards[(r+1)%p].Packed, k)
		}
	}
	return shards
}

func runShardCluster(t *testing.T, shards []*graph.Shard, cfg Config) (*ShardResult, []*MachineStats) {
	t.Helper()
	p := len(shards)
	c := cluster.New(p)
	var mu sync.Mutex
	var root *ShardResult
	stats := make([]*MachineStats, p)
	err := c.Run(func(comm cluster.Comm) error {
		res, st, err := PartitionShards(context.Background(), comm, shards[comm.Rank()], cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		stats[comm.Rank()] = st
		if res != nil {
			root = res
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		t.Fatal("rank 0 returned no result")
	}
	return root, stats
}

func TestPartitionShardsMatchesWholeGraphRun(t *testing.T) {
	// Shard-based DNE over hash-routed, duplicated shards must reproduce
	// the in-process whole-graph partitioning bit for bit: same edges in
	// canonical order, same owners, for square and non-square grids.
	g := gen.RMAT(10, 8, 7)
	for _, p := range []int{2, 5, 9} {
		cfg := DefaultConfig()
		cfg.Seed = 11
		want, err := Partition(g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runShardCluster(t, hashShards(g, p), cfg)
		if res.NumEdges() != g.NumEdges() {
			t.Fatalf("p=%d: %d edges collected, graph has %d", p, res.NumEdges(), g.NumEdges())
		}
		for i, e := range g.Edges() {
			if res.Keys[i] != graph.PackEdge(e.U, e.V) {
				t.Fatalf("p=%d: edge %d key mismatch", p, i)
			}
		}
		if !slices.Equal(res.Owner, want.Partitioning.Owner) {
			t.Fatalf("p=%d: shard-based owners differ from whole-graph owners", p)
		}
		if res.Checksum() != partition.Checksum(want.Partitioning.Owner) {
			t.Fatalf("p=%d: checksum mismatch", p)
		}
	}
}

func TestPartitionShardsUnevenAndEmptyShards(t *testing.T) {
	// All edges concentrated in one shard, every other rank empty: the
	// shuffle must redistribute and the result must still match.
	g := gen.RMAT(9, 8, 3)
	const p = 4
	cfg := DefaultConfig()
	cfg.Seed = 2
	want, err := Partition(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*graph.Shard, p)
	for r := range shards {
		shards[r] = &graph.Shard{NumVertices: g.NumVertices()}
	}
	for _, e := range g.Edges() {
		shards[3].Packed = append(shards[3].Packed, graph.PackEdge(e.U, e.V))
	}
	res, _ := runShardCluster(t, shards, cfg)
	if !slices.Equal(res.Owner, want.Partitioning.Owner) {
		t.Fatal("owners differ with concentrated shards")
	}
	bal := res.EdgeBalance()
	if bal <= 0 {
		t.Fatalf("EdgeBalance = %v", bal)
	}
}

func TestPartitionShardsOverTCPMatchesInProcess(t *testing.T) {
	// The acceptance path: a 4-rank TCP run over disjoint shards must
	// produce the identical partitioning (same checksum) as the in-process
	// run — serialization, router framing and the chunked shuffle included.
	g := gen.RMAT(8, 8, 5)
	const parts = 4
	cfg := DefaultConfig()
	cfg.Seed = 17

	inproc, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := partition.Checksum(inproc.Partitioning.Owner)

	shards := hashShards(g, parts)
	addr, wait, err := cluster.StartRouter("127.0.0.1:0", parts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var root *ShardResult
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for rank := 0; rank < parts; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := cluster.DialTCP(addr, rank, parts)
			if err != nil {
				errs[rank] = err
				return
			}
			res, _, err := PartitionShards(context.Background(), node, shards[rank], cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			mu.Lock()
			if res != nil {
				root = res
			}
			mu.Unlock()
			errs[rank] = node.Close()
		}(rank)
	}
	wg.Wait()
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if root == nil {
		t.Fatal("rank 0 returned no result")
	}
	if got := root.Checksum(); got != wantSum {
		t.Fatalf("TCP shard run checksum %#x != in-process %#x", got, wantSum)
	}
}

func TestPartitionShardsRejectsBadConfig(t *testing.T) {
	c := cluster.New(2)
	shard := func() *graph.Shard {
		return &graph.Shard{NumVertices: 4, Packed: []uint64{graph.PackEdge(0, 1)}}
	}
	bad := DefaultConfig()
	bad.Alpha = 0.5
	err := c.Run(func(comm cluster.Comm) error {
		_, _, err := PartitionShards(context.Background(), comm, shard(), bad)
		return err
	})
	if err == nil {
		t.Error("alpha < 1 accepted")
	}
	// Empty shards everywhere: a collective error, not a hang.
	c = cluster.New(2)
	err = c.Run(func(comm cluster.Comm) error {
		_, _, err := PartitionShards(context.Background(), comm,
			&graph.Shard{NumVertices: 4}, DefaultConfig())
		return err
	})
	if err == nil {
		t.Error("empty shards accepted")
	}
}

// TestShardDataPlaneMemoryScaling is the headline memory claim of the
// sharded data plane: on the seeded 1M-edge RMAT at P=16, the per-rank peak
// allocation of shard-based DNE must be at most 1/4 of the whole-graph
// path's, while the partitioning stays bit-identical. The accounting is the
// same analytic model on both sides (subgraph + boundary + scratch slabs +
// input), with the input term the only difference: the whole-graph path
// keeps g resident on every rank; the shard path peaks at the shuffle and
// then runs on the received subgraph alone.
func TestShardDataPlaneMemoryScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("short: 1M-edge RMAT")
	}
	g := gen.RMAT(16, 16, 42)
	const p = 16
	cfg := DefaultConfig()
	cfg.Seed = 42

	res, shardStats := runShardCluster(t, graph.ShardsOf(g, p), cfg)

	c := cluster.New(p)
	var mu sync.Mutex
	fullStats := make([]*MachineStats, p)
	var fullOwner []int32
	err := c.Run(func(comm cluster.Comm) error {
		owner, st, err := PartitionOver(context.Background(), comm, g, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		fullStats[comm.Rank()] = st
		if owner != nil {
			fullOwner = owner
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if !slices.Equal(res.Owner, fullOwner) {
		t.Fatal("shard-based and whole-graph partitionings differ")
	}
	peak := func(stats []*MachineStats) int64 {
		var m int64
		for _, st := range stats {
			if st.MemBytes > m {
				m = st.MemBytes
			}
		}
		return m
	}
	shardPeak, fullPeak := peak(shardStats), peak(fullStats)
	t.Logf("per-rank peak at P=%d on |E|=%d: shard path %.1f MiB, whole-graph path %.1f MiB (%.2fx)",
		p, g.NumEdges(), float64(shardPeak)/(1<<20), float64(fullPeak)/(1<<20),
		float64(fullPeak)/float64(shardPeak))
	if shardPeak <= 0 || fullPeak <= 0 {
		t.Fatalf("missing accounting: shard %d, full %d", shardPeak, fullPeak)
	}
	if 4*shardPeak > fullPeak {
		t.Errorf("shard-path peak %d B not <= 1/4 of whole-graph peak %d B", shardPeak, fullPeak)
	}
}

// BenchmarkPartitionShards measures the full shard data plane (shuffle +
// expansion) in process at P=16.
func BenchmarkPartitionShards(b *testing.B) {
	g := gen.RMAT(14, 16, 21)
	const p = 16
	cfg := DefaultConfig()
	cfg.Seed = 21
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := graph.ShardsOf(g, p)
		c := cluster.New(p)
		err := c.Run(func(comm cluster.Comm) error {
			_, _, err := PartitionShards(context.Background(), comm, shards[comm.Rank()], cfg)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
