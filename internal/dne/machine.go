package dne

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dsa"
	"github.com/distributedne/dne/internal/graph"
)

// vpSet tracks the ⟨vertex, partition⟩ pairs already seen in one superstep.
// For partition counts up to 64 it is a dense epoch-stamped slab (one stamp
// word and one partition bitmask per vertex, cleared in O(1)); beyond that
// it falls back to a reusable map. Both give identical membership answers,
// so the superstep's pair ordering — and therefore the partitioning — does
// not depend on which representation runs.
type vpSet struct {
	set  *dsa.EpochSet
	mask []uint64
	m    map[vp]struct{}
}

func newVPSet(n uint32, p int) *vpSet {
	if p <= 64 {
		return &vpSet{set: dsa.NewEpochSet(int(n)), mask: make([]uint64, n)}
	}
	return &vpSet{m: make(map[vp]struct{})}
}

func (s *vpSet) clear() {
	if s.m != nil {
		clear(s.m)
		return
	}
	s.set.Clear()
}

// add inserts the pair and reports whether it was newly added.
func (s *vpSet) add(x vp) bool {
	if s.m != nil {
		if _, ok := s.m[x]; ok {
			return false
		}
		s.m[x] = struct{}{}
		return true
	}
	bit := uint64(1) << uint(x.P)
	if s.set.Add(x.V) {
		s.mask[x.V] = bit
		return true
	}
	if s.mask[x.V]&bit != 0 {
		return false
	}
	s.mask[x.V] |= bit
	return true
}

func (s *vpSet) memoryFootprint() int64 {
	if s.m != nil {
		return 0 // transient map, sized by the superstep's traffic
	}
	return s.set.MemoryFootprint() + int64(len(s.mask))*8
}

// machineResult is what one machine reports back to the driver.
type machineResult struct {
	iterations int
	swept      int64
	memBytes   int64
	partEdges  int64 // |Ep| held by this machine's expansion process at the end
	commBytes  int64
	commMsgs   int64
	conflicts  int64 // lost CAS claims (ParallelAllocation only)
	wasted     int64 // selection deliveries that allocated nothing here
	selections int64 // all selection deliveries processed here
}

// machineInput bundles what one machine's expansion + allocation process
// needs. The subgraph is built by the caller (from a distributed shuffle,
// from precomputed buckets, or by scanning a whole graph), so the superstep
// loop itself never touches global edge arrays.
type machineInput struct {
	sg          *subGraph
	numVertices uint32 // global |V| (vertex ids are global everywhere)
	totalEdges  int64  // global deduplicated |E|
	// residentBytes is input memory held for the entire run (the whole-graph
	// path charges the full graph here; the shard path charges nothing — its
	// shard is released after the shuffle).
	residentBytes int64
	// inputPeakBytes is the transient peak of the input phase (shard +
	// shuffle buffers); the reported peak is the max of the two phases.
	inputPeakBytes int64
	// ckpt, when non-nil, persists the loop state every ckpt.every
	// supersteps (at the superstep boundary, before the superstep runs).
	ckpt *Checkpointer
	// resume, when non-nil, is a loaded checkpoint to restart from instead
	// of the initial state. All ranks must agree (negotiated collectively by
	// the fault-tolerant driver): the initial free-edge gather is skipped on
	// resume, so a mixed fresh/resumed mesh would deadlock.
	resume *machineCkpt
}

// runMachine executes one machine's combined expansion + allocation process
// (§3.3: one expansion process and one allocation process per machine; this
// machine's expansion process computes partition `rank`).
//
// Cancellation is collective: each machine stamps ctx's state onto the
// select messages it already sends to every machine each superstep, and all
// machines abort together at the end of the superstep in which any flag was
// seen. Deciding on received flags (identical on every machine) rather than
// on the racy local ctx keeps the lock-step protocol deadlock-free.
//
// Result collection is the caller's job (collectOwnersByIndex or
// collectOwnersByKey), after this returns.
func runMachine(ctx context.Context, comm cluster.Comm, cfg Config, in machineInput, res *machineResult) error {
	p := comm.Size()
	rank := comm.Rank()
	gd := newGrid(p)
	sg := in.sg
	if cfg.ParallelAllocation {
		// Superstep tags for conflict accounting; iter starts at 1, so the
		// zero value never aliases a live superstep.
		sg.claimIter = make([]int32, len(sg.edges))
	}
	// The counting wrapper leaves the seeded stream untouched (bit-identical
	// to a bare source) while letting checkpoints record the draw position.
	src := newCountingSource(cfg.Seed ^ (int64(rank)+1)*0x9e3779b9)
	rng := rand.New(src)
	bnd := dsa.NewBoundary(int(in.numVertices))

	// replicaProcs resolves a vertex's replica machine set: the grid
	// row ∪ column by default, or all machines under the BroadcastReplicas
	// ablation (DESIGN.md §4.2).
	allProcs := make([]int, p)
	for q := range allProcs {
		allProcs[q] = q
	}
	replicaProcs := func(v graph.Vertex, buf []int) []int {
		if cfg.BroadcastReplicas {
			return allProcs
		}
		return gd.vertexProcs(v, buf)
	}

	totalE := in.totalEdges
	capEdges := int64(cfg.Alpha * float64(totalE) / float64(p))
	if capEdges < 1 {
		capEdges = 1
	}

	// Globally gathered state, refreshed once per iteration.
	partSizes := make([]int64, p)    // |Eq| for every partition q
	freeVec := make([]int64, p)      // free (unallocated) edges per machine
	localPerPart := make([]int64, p) // edges this machine allocated, per owner

	myFree := make([]int64, p)
	var epEdges []graph.Edge
	if in.resume == nil {
		myFree[rank] = sg.freeEdges
		freeVec = cluster.AllGatherSumVec(comm, myFree)
		epEdges = make([]graph.Edge, 0, capEdges)
	}
	scratch := bitset.New(p)
	var procsBuf []int
	outPairs := make([][]vp, p)
	syncOut := make([][]vp, p)
	bItems := make([][]boundaryItem, p)
	eOut := make([][]graph.Edge, p)

	// Per-superstep scratch, allocated once and cleared in O(1) per
	// iteration (epoch bumps and length resets) instead of reallocating
	// maps every superstep. Dense trade-off: each machine holds ~40 bytes
	// per *global* vertex id of resident slabs (boundary, pair set, merge
	// accumulator) — O(1) lookups and zero per-superstep allocation, paid
	// for with O(|P|·|V|) total footprint in the in-process simulation. The
	// Fig-9 memory accounting below charges all of it honestly.
	n := in.numVertices
	seenBP := newVPSet(n, p)         // ⟨v,p⟩ pairs already in the boundary update
	seenV := dsa.NewEpochSet(int(n)) // vertices already two-hop-processed
	mergedSet := dsa.NewEpochSet(int(n))
	mergedVal := make([]int32, n) // summed Drest per merged boundary vertex
	var mergedOrder []graph.Vertex
	var popBuf []uint32
	var allocLocal []int32
	var orderBP []vp
	sizesView := make([]int64, p)
	twoBudget := make([]int64, p)

	done := false // this machine's expansion finished
	iter := 0
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultMaxIterations
	}

	lastCkpt := int64(-1)
	if in.resume != nil {
		st := in.resume
		if len(st.partSizes) != p || len(st.freeVec) != p || len(st.localPerPart) != p {
			return fmt.Errorf("dne: checkpoint gathered vectors sized for %d parts, run has %d", len(st.partSizes), p)
		}
		if err := st.restoreInto(sg, bnd, src); err != nil {
			return err
		}
		copy(partSizes, st.partSizes)
		copy(freeVec, st.freeVec)
		copy(localPerPart, st.localPerPart)
		// Only the length of the partition's own edge set is ever read
		// (budget arithmetic, the done test, the |Ep| stat), so the restored
		// set is length-accurate and content-free.
		epCap := capEdges
		if st.epCount > epCap {
			epCap = st.epCount
		}
		epEdges = make([]graph.Edge, st.epCount, epCap)
		done = st.done
		iter = int(st.iter)
		lastCkpt = st.iter
		res.wasted = st.wasted
		res.selections = st.selections
	}

	for {
		// Checkpoint at the superstep boundary: the loop state as of "about
		// to run superstep iter+1". Failures are loud — a run asked to
		// checkpoint must not silently continue without crash protection.
		if in.ckpt != nil && int64(iter) > lastCkpt && iter%in.ckpt.every == 0 {
			st := captureCkpt(iter, done, sg, bnd, src, partSizes, freeVec, localPerPart, int64(len(epEdges)), res)
			if err := in.ckpt.WriteState(st); err != nil {
				return err
			}
			lastCkpt = int64(iter)
		}
		iter++
		if iter > maxIter {
			return fmt.Errorf("dne: machine %d exceeded %d iterations (|E| allocated: %d/%d)",
				rank, maxIter, sum(partSizes), totalE)
		}

		// ------- Phase A: vertex selection (Alg. 1 L3–7 / Alg. 4) -------
		for q := 0; q < p; q++ {
			outPairs[q] = outPairs[q][:0]
		}
		seedTo := -1
		if !done {
			if bnd.Len() > 0 {
				k := 1
				if !cfg.SingleExpansion {
					k = int(math.Ceil(cfg.Lambda * float64(bnd.Len())))
					if k < 1 {
						k = 1
					}
				}
				budget := capEdges - int64(len(epEdges))
				popBuf = bnd.PopK(k, budget, popBuf)
				for _, v := range popBuf {
					procsBuf = replicaProcs(v, procsBuf[:0])
					for _, pr := range procsBuf {
						outPairs[pr] = append(outPairs[pr], vp{V: v, P: int32(rank)})
					}
				}
			} else {
				// Random seed (Alg. 1 L7): prefer the local allocation
				// process, fall back to the nearest machine with free edges.
				if freeVec[rank] > 0 {
					seedTo = rank
				} else {
					for off := 1; off < p; off++ {
						t := (rank + off) % p
						if freeVec[t] > 0 {
							seedTo = t
							break
						}
					}
				}
			}
		}
		wantCancel := ctx.Err() != nil
		for q := 0; q < p; q++ {
			body := selectBody{Pairs: outPairs[q], Cancel: wantCancel}
			if q == seedTo {
				body.SeedReq = true
				body.SeedPart = int32(rank)
			}
			comm.Send(q, tagSelect, body)
		}

		// ------- Phase B1: one-hop allocation (Alg. 2 L2, Alg. 3) -------
		for q := 0; q < p; q++ {
			bItems[q] = bItems[q][:0]
			syncOut[q] = syncOut[q][:0]
			eOut[q] = eOut[q][:0]
		}
		allocLocal = allocLocal[:0]
		orderBP = orderBP[:0]
		seenBP.clear()
		// Working view of global |Eq|: last gather plus local increments,
		// used to enforce the α cap within the iteration.
		copy(sizesView, partSizes)
		var pairs []vp
		anyCancel := false
		for _, m := range comm.RecvN(tagSelect, p) {
			body := m.Body.(selectBody)
			pairs = append(pairs, body.Pairs...)
			if body.Cancel {
				anyCancel = true
			}
			if body.SeedReq {
				if v, ok := sg.randomSeed(rng); ok {
					bItems[m.From] = append(bItems[m.From],
						boundaryItem{V: v, Drest: sg.localDrest(v)})
				}
			}
		}
		res.selections += int64(len(pairs))
		if cfg.ParallelAllocation && len(pairs) > 1 {
			bp := allocOneHopParallel(sg, pairs, int32(iter), sizesView, capEdges, &allocLocal, &res.wasted)
			for _, b := range bp {
				if seenBP.add(b) {
					orderBP = append(orderBP, b)
				}
			}
		} else {
			for _, pair := range pairs {
				if sizesView[pair.P] >= capEdges {
					continue // partition's budget already exhausted
				}
				before := len(allocLocal)
				for _, b := range sg.allocOneHop(pair.V, pair.P, &allocLocal) {
					if seenBP.add(b) {
						orderBP = append(orderBP, b)
					}
				}
				if len(allocLocal) == before {
					res.wasted++
				}
				sizesView[pair.P] += int64(len(allocLocal) - before)
			}
		}

		// ------- Phase B2: replica synchronisation (Alg. 2 L3) -------
		for _, bpPair := range orderBP {
			procsBuf = replicaProcs(bpPair.V, procsBuf[:0])
			for _, pr := range procsBuf {
				if pr != rank {
					syncOut[pr] = append(syncOut[pr], bpPair)
				}
			}
		}
		for q := 0; q < p; q++ {
			comm.Send(q, tagSync, syncBody{Pairs: syncOut[q]})
		}
		synced := orderBP
		for _, m := range comm.RecvN(tagSync, p) {
			for _, pair := range m.Body.(syncBody).Pairs {
				if sg.applySync(pair.V, pair.P) >= 0 && seenBP.add(pair) {
					synced = append(synced, pair)
				}
			}
		}

		// ------- Phase B3: two-hop allocation (Alg. 2 L4, Alg. 3) -------
		for q := 0; q < p; q++ {
			twoBudget[q] = 0
			if rem := capEdges - partSizes[q]; rem > 0 {
				twoBudget[q] = rem/int64(p) + 1
			}
		}
		seenV.Clear()
		for _, pair := range synced {
			if !seenV.Add(pair.V) {
				continue
			}
			sg.allocTwoHop(pair.V, sizesView, twoBudget, capEdges, scratch, &allocLocal)
		}

		// ------- Phase B4: local Drest + result shipping (Alg. 2 L5–7) -------
		for _, pair := range synced {
			bItems[pair.P] = append(bItems[pair.P],
				boundaryItem{V: pair.V, Drest: sg.localDrest(pair.V)})
		}
		for _, le := range allocLocal {
			q := sg.owner[le]
			eOut[q] = append(eOut[q], sg.edges[le])
			localPerPart[q]++
		}
		for q := 0; q < p; q++ {
			comm.Send(q, tagBoundary, boundaryBody{Items: bItems[q]})
			comm.Send(q, tagEdges, edgesBody{Edges: eOut[q]})
		}

		// ------- Phase C: boundary/edge-set update (Alg. 1 L10–13) -------
		mergedSet.Clear()
		mergedOrder = mergedOrder[:0]
		for _, m := range comm.RecvN(tagBoundary, p) {
			for _, it := range m.Body.(boundaryBody).Items {
				if mergedSet.Add(it.V) {
					mergedVal[it.V] = it.Drest
					mergedOrder = append(mergedOrder, it.V)
				} else {
					mergedVal[it.V] += it.Drest
				}
			}
		}
		for _, v := range mergedOrder {
			bnd.Update(v, mergedVal[v])
		}
		for _, m := range comm.RecvN(tagEdges, p) {
			epEdges = append(epEdges, m.Body.(edgesBody).Edges...)
		}

		// ------- Termination check (Alg. 1 L14–15) -------
		partSizes = cluster.AllGatherSumVec(comm, localPerPart)
		myFree[rank] = sg.freeEdges
		for q := range myFree {
			if q != rank {
				myFree[q] = 0
			}
		}
		freeVec = cluster.AllGatherSumVec(comm, myFree)
		if anyCancel {
			// Every machine received the same flag set, so every machine
			// returns here, at the same superstep boundary.
			if err := ctx.Err(); err != nil {
				return err
			}
			return context.Canceled
		}
		allocated := sum(partSizes)
		// |Ep| of this machine's own partition is known exactly: every edge
		// allocated to q is shipped to q within the same superstep.
		done = int64(len(epEdges)) >= capEdges || allocated == totalE
		if allocated == totalE {
			break
		}
		allDone := true
		for q := 0; q < p; q++ {
			if partSizes[q] < capEdges {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}

	// Leftover sweep: only reachable when every partition saturated its α cap
	// while edges remained.
	var swept int64
	if sum(partSizes) < totalE {
		swept = sg.sweepLeftovers(partSizes, scratch)
		swept = cluster.AllGatherSum(comm, swept)
	}

	// Snapshot communication stats before result collection: the gather the
	// caller performs next is measurement plumbing, not part of the
	// algorithm's traffic.
	res.commBytes = comm.Stats().BytesSent.Load()
	res.commMsgs = comm.Stats().MessagesSent.Load()
	res.conflicts = atomic.LoadInt64(&sg.conflicts)
	res.iterations = iter
	res.swept = swept
	res.partEdges = int64(len(epEdges))
	// Peak memory is the max over the run's two phases: the input phase
	// (shard + shuffle buffers, transient) and the expansion phase (subgraph
	// + boundary + scratch slabs + the partition's own edges, plus whatever
	// input stays resident — the whole graph on the legacy path, nothing on
	// the shard path).
	expansion := in.residentBytes + sg.memoryFootprint() + int64(len(epEdges))*8 +
		bnd.MemoryFootprint() + seenBP.memoryFootprint() + seenV.MemoryFootprint() +
		mergedSet.MemoryFootprint() + int64(len(mergedVal))*4
	res.memBytes = max(expansion, in.inputPeakBytes)
	return nil
}

// collectOwnersByIndex ships every machine's (global edge index, owner)
// pairs to rank 0, which writes them into ownerOut (ignored elsewhere).
// Usable only for subgraphs built with global indices (the whole-graph
// path).
func collectOwnersByIndex(comm cluster.Comm, sg *subGraph, ownerOut []int32) {
	comm.Send(0, tagResult, resultBody{Idx: sg.globalIdx, Owner: sg.owner})
	if comm.Rank() != 0 {
		return
	}
	for _, m := range comm.RecvN(tagResult, comm.Size()) {
		body := m.Body.(resultBody)
		for i, gi := range body.Idx {
			ownerOut[gi] = body.Owner[i]
		}
	}
}

// collectOwnersByKey ships every machine's (packed edge, owner) pairs to
// rank 0 and merges the sorted runs there. No global edge indices are
// involved, so it works when no rank ever saw the whole graph. At rank 0 it
// returns the complete edge set in ascending canonical order with each
// edge's owner; other ranks return nils.
func collectOwnersByKey(comm cluster.Comm, sg *subGraph) ([]uint64, []int32) {
	keys := make([]uint64, len(sg.edges))
	for i, e := range sg.edges {
		keys[i] = graph.PackEdge(e.U, e.V)
	}
	comm.Send(0, tagResult, shardResultBody{Keys: keys, Owner: sg.owner})
	if comm.Rank() != 0 {
		return nil, nil
	}
	p := comm.Size()
	runs := make([][]uint64, 0, p)
	owners := make([][]int32, 0, p)
	total := 0
	for _, m := range comm.RecvN(tagResult, p) {
		body := m.Body.(shardResultBody)
		runs = append(runs, body.Keys)
		owners = append(owners, body.Owner)
		total += len(body.Keys)
	}
	// K-way merge of the per-machine runs (each already ascending; the 2D
	// hash makes them disjoint, so no tie-breaking is needed). A binary
	// min-heap over the run heads keeps the merge O(|E| log P) instead of
	// scanning all P cursors per element.
	outKeys := make([]uint64, 0, total)
	outOwners := make([]int32, 0, total)
	cur := make([]int, len(runs))
	type head struct {
		key uint64
		run int
	}
	heap := make([]head, 0, len(runs))
	push := func(h head) {
		heap = append(heap, h)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].key <= heap[i].key {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() head {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < last && heap[l].key < heap[smallest].key {
				smallest = l
			}
			if r < last && heap[r].key < heap[smallest].key {
				smallest = r
			}
			if smallest == i {
				break
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
		return top
	}
	for r := range runs {
		if len(runs[r]) > 0 {
			push(head{key: runs[r][0], run: r})
		}
	}
	for len(heap) > 0 {
		h := pop()
		r := h.run
		outKeys = append(outKeys, h.key)
		outOwners = append(outOwners, owners[r][cur[r]])
		cur[r]++
		if cur[r] < len(runs[r]) {
			push(head{key: runs[r][cur[r]], run: r})
		}
	}
	return outKeys, outOwners
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// allocOneHopParallel is the Config.ParallelAllocation implementation of
// phase B1: selection pairs are processed by a strided worker pool; edge
// claims race through the CAS in allocateEdge (lost claims increment
// sg.conflicts), budget enforcement uses an atomic view of the per-partition
// sizes, and partition-bitset updates are deferred to a sequential
// application after the workers join (bitsets are not atomic). sizesView is
// updated in place to reflect the allocations. Returns the new boundary
// pairs (possibly with duplicates; the caller dedups).
func allocOneHopParallel(sg *subGraph, pairs []vp, iter int32, sizesView []int64, capEdges int64, allocOut *[]int32, wasted *int64) []vp {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(pairs) {
		nw = len(pairs)
	}
	if nw > 8 {
		nw = 8
	}
	type workerResult struct {
		alloc  []int32
		bp     []vp
		defs   []vp
		wasted int64
	}
	results := make([]workerResult, nw)
	atomicSizes := make([]int64, len(sizesView))
	copy(atomicSizes, sizesView)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			for i := w; i < len(pairs); i += nw {
				pair := pairs[i]
				if atomic.LoadInt64(&atomicSizes[pair.P]) >= capEdges {
					continue
				}
				n := sg.allocOneHopDeferred(pair.V, pair.P, iter, &r.alloc, &r.bp, &r.defs)
				if n == 0 {
					r.wasted++
				} else {
					atomic.AddInt64(&atomicSizes[pair.P], int64(n))
				}
			}
		}(w)
	}
	wg.Wait()
	var bp []vp
	for w := range results {
		*allocOut = append(*allocOut, results[w].alloc...)
		bp = append(bp, results[w].bp...)
		*wasted += results[w].wasted
		for _, d := range results[w].defs {
			sg.applySync(d.V, d.P)
		}
	}
	copy(sizesView, atomicSizes)
	return bp
}
