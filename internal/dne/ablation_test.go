package dne

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
)

func TestBroadcastReplicasSameResultMoreTraffic(t *testing.T) {
	// Broadcasting replica updates to all machines is a strict superset of
	// the grid multicast: machines outside the row∪column hold no incident
	// edges, so every extra delivery is a no-op. The partitioning must be
	// bit-identical; the traffic must be strictly higher.
	g := gen.RMAT(10, 8, 3)
	const parts = 9
	cfg := DefaultConfig()
	cfg.Seed = 5
	grid, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BroadcastReplicas = true
	bcast, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid.Partitioning.Owner {
		if grid.Partitioning.Owner[i] != bcast.Partitioning.Owner[i] {
			t.Fatalf("edge %d: grid owner %d != broadcast owner %d",
				i, grid.Partitioning.Owner[i], bcast.Partitioning.Owner[i])
		}
	}
	if bcast.CommBytes <= grid.CommBytes {
		t.Errorf("broadcast bytes %d not above grid bytes %d", bcast.CommBytes, grid.CommBytes)
	}
	t.Logf("fanout ablation: grid %d bytes, broadcast %d bytes (%.2fx)",
		grid.CommBytes, bcast.CommBytes, float64(bcast.CommBytes)/float64(grid.CommBytes))
}

func TestParallelAllocationCompleteAndBalanced(t *testing.T) {
	g := gen.RMAT(11, 16, 7)
	cfg := DefaultConfig()
	cfg.ParallelAllocation = true
	res, err := Partition(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	q := res.Partitioning.Measure(g)
	if q.EdgeBalance > 1.35 {
		t.Errorf("edge balance %.3f too loose under parallel allocation", q.EdgeBalance)
	}
	// Quality must stay in the same class as the sequential mode.
	seq, err := Partition(g, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seqRF := seq.Partitioning.Measure(g).ReplicationFactor
	if q.ReplicationFactor > seqRF*1.25 {
		t.Errorf("parallel RF %.3f degraded beyond 25%% of sequential %.3f",
			q.ReplicationFactor, seqRF)
	}
}

func TestSelectionCountersReported(t *testing.T) {
	g := gen.RMAT(10, 8, 2)
	res, err := Partition(g, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSelections <= 0 {
		t.Fatal("no selections counted")
	}
	if res.WastedSelections < 0 || res.WastedSelections > res.TotalSelections {
		t.Fatalf("wasted %d outside [0,%d]", res.WastedSelections, res.TotalSelections)
	}
	if res.CASConflicts != 0 {
		t.Errorf("sequential mode reported %d CAS conflicts, want 0", res.CASConflicts)
	}
}

func TestWastedSelectionsGrowWithLambda(t *testing.T) {
	// Staleness ablation (DESIGN.md §4.4): larger λ batches pop more
	// boundary vertices per superstep against the same stale scores, so the
	// wasted-delivery *rate* must not shrink as λ grows, and λ=1 must waste
	// strictly more deliveries than λ=0.01 in absolute terms per iteration.
	g := gen.RMAT(11, 16, 13)
	rate := func(lambda float64) float64 {
		cfg := DefaultConfig()
		cfg.Lambda = lambda
		res, err := Partition(g, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.WastedSelections) / float64(res.TotalSelections)
	}
	lo, hi := rate(0.01), rate(1.0)
	if hi < lo*0.5 {
		t.Errorf("waste rate at λ=1 (%.4f) unexpectedly far below λ=0.01 (%.4f)", hi, lo)
	}
	t.Logf("stale-Drest waste rate: λ=0.01 %.4f, λ=1.0 %.4f", lo, hi)
}
