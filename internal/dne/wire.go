package dne

import (
	"context"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
)

// init registers every DNE message body with the gob-based TCP transport so
// cmd/dneworker can run the identical superstep protocol across OS
// processes.
func init() {
	cluster.RegisterBody(selectBody{})
	cluster.RegisterBody(syncBody{})
	cluster.RegisterBody(boundaryBody{})
	cluster.RegisterBody(edgesBody{})
	cluster.RegisterBody(resultBody{})
	cluster.RegisterBody(sweepBody{})
	cluster.RegisterBody(cluster.Int64Body(0))
	cluster.RegisterBody(cluster.Int64SliceBody(nil))
}

// PartitionOver runs this machine's share of Distributed NE over an
// arbitrary communicator (in-process or TCP). Every rank must call it with
// the same graph, configuration and partition count (= comm.Size()). The
// returned slice is non-nil only at rank 0 and holds the owner of every
// canonical edge of g. Cancelling ctx aborts the run at the next superstep
// boundary, collectively across all ranks.
func PartitionOver(ctx context.Context, comm cluster.Comm, g *graph.Graph, cfg Config) ([]int32, *MachineStats, error) {
	var res machineResult
	var owner []int32
	if comm.Rank() == 0 {
		owner = make([]int32, g.NumEdges())
		for i := range owner {
			owner[i] = -1
		}
	}
	if err := runMachine(ctx, comm, g, cfg, &res, owner, nil); err != nil {
		return nil, nil, err
	}
	return owner, &MachineStats{
		Iterations: res.iterations,
		SweptEdges: res.swept,
		MemBytes:   res.memBytes,
		PartEdges:  res.partEdges,
		CommBytes:  res.commBytes,
		CommMsgs:   res.commMsgs,
	}, nil
}

// MachineStats is the public view of one machine's execution metrics.
type MachineStats struct {
	Iterations int
	SweptEdges int64
	MemBytes   int64
	PartEdges  int64
	CommBytes  int64
	CommMsgs   int64
}
