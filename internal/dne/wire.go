package dne

import (
	"context"
	"errors"
	"fmt"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// init registers every DNE message body with the gob-based TCP transport so
// cmd/dneworker can run the identical superstep protocol across OS
// processes.
func init() {
	cluster.RegisterBody(selectBody{})
	cluster.RegisterBody(syncBody{})
	cluster.RegisterBody(boundaryBody{})
	cluster.RegisterBody(edgesBody{})
	cluster.RegisterBody(resultBody{})
	cluster.RegisterBody(shardResultBody{})
	cluster.RegisterBody(sweepBody{})
	cluster.RegisterBody(cluster.Int64Body(0))
	cluster.RegisterBody(cluster.Int64SliceBody(nil))
	cluster.RegisterBody(cluster.Uint64SliceBody(nil))
}

// recoverConnLost converts a dead-transport panic (a peer crashed, the
// router tore the mesh down, or the dial context fired) into a returned
// error, so a multi-process run fails with a diagnosable message instead of
// a goroutine panic. Any other panic is re-raised.
func recoverConnLost(err *error) {
	if r := recover(); r != nil {
		if cl, ok := r.(*cluster.ConnLostError); ok {
			*err = fmt.Errorf("dne: %w", cl)
			return
		}
		panic(r)
	}
}

// PartitionOver runs this machine's share of Distributed NE over an
// arbitrary communicator (in-process or TCP) with every rank holding the
// complete graph. Every rank must call it with the same graph,
// configuration and partition count (= comm.Size()). The returned slice is
// non-nil only at rank 0 and holds the owner of every canonical edge of g.
// Cancelling ctx aborts the run at the next superstep boundary,
// collectively across all ranks.
//
// This is the legacy whole-graph path: per-rank peak memory is O(|E|)
// because each rank stores g. PartitionShards is the scalable entry point —
// each rank feeds in only its own edge shard.
func PartitionOver(ctx context.Context, comm cluster.Comm, g *graph.Graph, cfg Config) (_ []int32, _ *MachineStats, err error) {
	defer recoverConnLost(&err)
	var res machineResult
	var owner []int32
	if comm.Rank() == 0 {
		owner = make([]int32, g.NumEdges())
		for i := range owner {
			owner[i] = -1
		}
	}
	sg := buildSubGraph(g, newGrid(comm.Size()), comm.Rank(), comm.Size())
	in := machineInput{
		sg:          sg,
		numVertices: g.NumVertices(),
		totalEdges:  g.NumEdges(),
		// The whole graph stays resident for the entire run on this path.
		residentBytes: g.MemoryFootprint(),
	}
	if err := runMachine(ctx, comm, cfg, in, &res); err != nil {
		return nil, nil, err
	}
	collectOwnersByIndex(comm, sg, owner)
	return owner, res.stats(), nil
}

// ShardResult is the assembled outcome of a shard-based run, available at
// rank 0 only: the complete deduplicated edge set in ascending canonical
// order (packed keys) and each edge's owning partition.
type ShardResult struct {
	NumParts int
	Keys     []uint64 // packed canonical edges, ascending
	Owner    []int32  // owner[i] is the partition of Keys[i]
}

// NumEdges returns the global deduplicated edge count.
func (r *ShardResult) NumEdges() int64 { return int64(len(r.Keys)) }

// EdgeCounts returns per-partition edge counts.
func (r *ShardResult) EdgeCounts() []int64 {
	counts := make([]int64, r.NumParts)
	for _, o := range r.Owner {
		counts[o]++
	}
	return counts
}

// EdgeBalance returns max |Eq| / avg |Eq| (the paper's balance metric).
func (r *ShardResult) EdgeBalance() float64 {
	if len(r.Keys) == 0 {
		return 0
	}
	var maxC int64
	for _, c := range r.EdgeCounts() {
		if c > maxC {
			maxC = c
		}
	}
	return float64(maxC) * float64(r.NumParts) / float64(len(r.Keys))
}

// Checksum returns the FNV-64a checksum of the owner sequence in canonical
// edge order — directly comparable with partition.Checksum of an in-process
// run over the same graph, seed and partition count.
func (r *ShardResult) Checksum() uint64 { return partition.Checksum(r.Owner) }

// PartitionShards runs Distributed NE with a per-rank edge shard as the
// unit of input: no rank ever holds the full graph during partitioning.
// Every rank calls it with its own shard (an arbitrary, possibly duplicated
// slice of the raw edge stream — shard files from cmd/gengraph, or a stripe
// from graph.ShardsOf); the ranks' shards together must cover the graph.
// The shard is consumed: its edge slice is released after the shuffle so
// the rank's peak memory stays O(|E|/P + boundary) through the superstep
// loop. Result collection is the one deliberate exception: rank 0 assembles
// the final (edge, owner) sequence — 12 bytes per global edge, well under
// the graph+CSR it never builds — after the algorithm (and its reported
// peak-memory stat) has finished.
//
// The result is non-nil at rank 0 only. The seeded partitioning is
// bit-identical to the in-process whole-graph run with the same seed,
// graph and partition count.
func PartitionShards(ctx context.Context, comm cluster.Comm, shard *graph.Shard, cfg Config) (_ *ShardResult, _ *MachineStats, err error) {
	defer recoverConnLost(&err)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	var res machineResult
	keys, owners, err := runShardMachine(ctx, comm, shard, cfg, &res)
	if err != nil {
		return nil, nil, err
	}
	if comm.Rank() != 0 {
		return nil, res.stats(), nil
	}
	return &ShardResult{NumParts: comm.Size(), Keys: keys, Owner: owners}, res.stats(), nil
}

// runShardMachine is the per-rank body of the shard data plane: shuffle the
// local shard to grid owners, build the subgraph from received edges only,
// run the superstep loop, and collect (key, owner) runs at rank 0.
func runShardMachine(ctx context.Context, comm cluster.Comm, shard *graph.Shard, cfg Config, res *machineResult) ([]uint64, []int32, error) {
	p := comm.Size()
	gd := newGrid(p)
	shardBytes := shard.Bytes()
	local, shuffleBytes := shuffleShard(comm, gd, shard.Packed)
	// The shard has served its purpose; release it so the expansion phase
	// runs on the subgraph alone.
	shard.Packed = nil
	totalE := cluster.AllGatherSum(comm, int64(len(local)))
	if totalE == 0 {
		return nil, nil, errors.New("dne: shards hold no edges")
	}
	sg := buildSubGraphPacked(shard.NumVertices, p, local)
	in := machineInput{
		sg:             sg,
		numVertices:    shard.NumVertices,
		totalEdges:     totalE,
		inputPeakBytes: shardBytes + shuffleBytes,
	}
	if err := runMachine(ctx, comm, cfg, in, res); err != nil {
		return nil, nil, err
	}
	keys, owners := collectOwnersByKey(comm, sg)
	return keys, owners, nil
}

// FTOptions configures PartitionShardsFT, the fault-tolerant shard driver.
type FTOptions struct {
	// Checkpoint persists and restores this rank's superstep state. Required.
	Checkpoint *Checkpointer
	// Connect dials a fresh communicator for one mesh generation. Called
	// once per attempt; after a transport loss the previous communicator is
	// aborted and Connect is called again (it should retry internally, e.g.
	// cluster.DialTCPRetry, while the router's rejoin window is open).
	Connect func(ctx context.Context) (cluster.Comm, error)
	// LoadShard re-reads this rank's input shard. Called on any attempt that
	// cannot restore from a checkpoint (including the first), so the driver
	// never needs the shard held in memory across attempts.
	LoadShard func() (*graph.Shard, error)
	// MaxRestarts bounds how many transport losses are survived before the
	// last error is returned. <= 0 means 3.
	MaxRestarts int
	// Logf, when non-nil, receives one line per recovery event.
	Logf func(format string, args ...any)
}

// closableComm is what Connect usually returns: a Comm whose transport can
// be shut down cleanly (Close) or abandoned like a crash (Abort).
// *cluster.TCPNode implements it; in-process test comms may not, in which
// case teardown is the test harness's business.
type closableComm interface {
	Close() error
	Abort() error
}

// PartitionShardsFT is PartitionShards with superstep checkpointing and
// bounded rejoin: when the transport dies mid-run (*cluster.ConnLostError* —
// a peer crashed or the router tore the mesh down), the rank reconnects via
// opt.Connect, all ranks of the new mesh negotiate the newest superstep
// every one of them can restore (cluster.AllGatherMin over local checkpoint
// inventories), and the run resumes from that boundary. The recovered
// partitioning is bit-identical to a fault-free run's: the checkpoint
// captures every input to future supersteps, including the PRNG position.
//
// A rank that finds no common checkpoint (negotiated superstep -1, e.g. the
// failure predated the first checkpoint) restarts from its shard via
// opt.LoadShard. The communicator is owned by this call: closed cleanly on
// success, aborted on failure.
func PartitionShardsFT(ctx context.Context, cfg Config, opt FTOptions) (*ShardResult, *MachineStats, error) {
	if opt.Checkpoint == nil || opt.Connect == nil || opt.LoadShard == nil {
		return nil, nil, errors.New("dne: FTOptions requires Checkpoint, Connect and LoadShard")
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	maxRestarts := opt.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 3
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var lastErr error
	for attempt := 0; attempt <= maxRestarts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if attempt > 0 {
			ckptObs.rejoins.Add(1)
			logf("dne: rank %d rejoining after transport loss (attempt %d/%d): %v",
				opt.Checkpoint.rank, attempt, maxRestarts, lastErr)
		}
		comm, err := opt.Connect(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("dne: connect (attempt %d): %w", attempt, err)
		}
		result, stats, err := runShardAttempt(ctx, comm, cfg, opt, logf)
		if err == nil {
			if cc, ok := comm.(closableComm); ok {
				cc.Close()
			}
			return result, stats, nil
		}
		if cc, ok := comm.(closableComm); ok {
			cc.Abort()
		}
		var cl *cluster.ConnLostError
		if !errors.As(err, &cl) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("dne: %d restarts exhausted: %w", maxRestarts, lastErr)
}

// runShardAttempt is one mesh generation of the fault-tolerant driver:
// negotiate the resume point, restore or rebuild, run, collect.
func runShardAttempt(ctx context.Context, comm cluster.Comm, cfg Config, opt FTOptions, logf func(string, ...any)) (_ *ShardResult, _ *MachineStats, err error) {
	defer recoverConnLost(&err)
	c := opt.Checkpoint
	p := comm.Size()
	var res machineResult
	in := machineInput{ckpt: c}

	// Negotiate the newest superstep every rank can restore. The collective
	// doubles as the rejoin barrier: survivors block here until the restarted
	// rank's hello completes the mesh.
	newest := c.Newest()
	resume := cluster.AllGatherMin(comm, newest)
	if resume >= 0 {
		numVertices, totalE, packed, err := c.LoadBase()
		if err != nil {
			return nil, nil, err
		}
		st, err := c.LoadState(resume)
		if err != nil {
			return nil, nil, err
		}
		logf("dne: rank %d restoring checkpoint at superstep %d (%d local edges)", c.rank, resume, len(packed))
		in.sg = buildSubGraphPacked(numVertices, p, packed)
		in.numVertices = numVertices
		in.totalEdges = totalE
		in.resume = st
	} else {
		shard, err := opt.LoadShard()
		if err != nil {
			return nil, nil, fmt.Errorf("dne: loading shard: %w", err)
		}
		gd := newGrid(p)
		shardBytes := shard.Bytes()
		local, shuffleBytes := shuffleShard(comm, gd, shard.Packed)
		shard.Packed = nil
		totalE := cluster.AllGatherSum(comm, int64(len(local)))
		if totalE == 0 {
			return nil, nil, errors.New("dne: shards hold no edges")
		}
		if err := c.WriteBase(shard.NumVertices, totalE, local); err != nil {
			return nil, nil, err
		}
		in.sg = buildSubGraphPacked(shard.NumVertices, p, local)
		in.numVertices = shard.NumVertices
		in.totalEdges = totalE
		in.inputPeakBytes = shardBytes + shuffleBytes
	}
	if err := runMachine(ctx, comm, cfg, in, &res); err != nil {
		return nil, nil, err
	}
	keys, owners := collectOwnersByKey(comm, in.sg)
	if comm.Rank() != 0 {
		return nil, res.stats(), nil
	}
	return &ShardResult{NumParts: p, Keys: keys, Owner: owners}, res.stats(), nil
}

// MachineStats is the public view of one machine's execution metrics.
type MachineStats struct {
	Iterations int
	SweptEdges int64
	MemBytes   int64
	PartEdges  int64
	CommBytes  int64
	CommMsgs   int64
}

func (r *machineResult) stats() *MachineStats {
	return &MachineStats{
		Iterations: r.iterations,
		SweptEdges: r.swept,
		MemBytes:   r.memBytes,
		PartEdges:  r.partEdges,
		CommBytes:  r.commBytes,
		CommMsgs:   r.commMsgs,
	}
}
