package dne

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/distributedne/dne/internal/dsa"
)

func testCkpt(t *testing.T, cfg Config) *Checkpointer {
	t.Helper()
	c, err := NewCheckpointer(t.TempDir(), 1, 4, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sampleState(iter int64) *machineCkpt {
	return &machineCkpt{
		iter: iter, done: false, epCount: 17, seedCur: 3, conflicts: 2,
		wasted: 5, selections: 9, rng63: 100, rng64: 7, bndPeak: 12,
		partSizes:    []int64{10, 20, 30, 40},
		freeVec:      []int64{1, 2, 3, 4},
		localPerPart: []int64{0, 1, 0, 2},
		owner:        []int32{-1, 0, 3, -1, 2},
		eIdx:         []int32{0, 1, 2, 3, 4, 0},
		aliveLen:     []int32{2, 1},
		partWords:    []uint64{0xdeadbeef, 0x1},
		claimIter:    nil,
		bndLive:      []dsa.BoundaryEntry{{V: 3, Score: 2}, {V: 9, Score: 5}},
		bndDone:      []uint32{1, 4},
	}
}

func statesEqual(a, b *machineCkpt) bool {
	if a.iter != b.iter || a.done != b.done || a.epCount != b.epCount ||
		a.seedCur != b.seedCur || a.conflicts != b.conflicts ||
		a.wasted != b.wasted || a.selections != b.selections ||
		a.rng63 != b.rng63 || a.rng64 != b.rng64 || a.bndPeak != b.bndPeak {
		return false
	}
	eqI64 := func(x, y []int64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqI32 := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eqI64(a.partSizes, b.partSizes) || !eqI64(a.freeVec, b.freeVec) || !eqI64(a.localPerPart, b.localPerPart) {
		return false
	}
	if !eqI32(a.owner, b.owner) || !eqI32(a.eIdx, b.eIdx) || !eqI32(a.aliveLen, b.aliveLen) {
		return false
	}
	if (a.claimIter == nil) != (b.claimIter == nil) || !eqI32(a.claimIter, b.claimIter) {
		return false
	}
	if len(a.partWords) != len(b.partWords) {
		return false
	}
	for i := range a.partWords {
		if a.partWords[i] != b.partWords[i] {
			return false
		}
	}
	if len(a.bndLive) != len(b.bndLive) || len(a.bndDone) != len(b.bndDone) {
		return false
	}
	for i := range a.bndLive {
		if a.bndLive[i] != b.bndLive[i] {
			return false
		}
	}
	for i := range a.bndDone {
		if a.bndDone[i] != b.bndDone[i] {
			return false
		}
	}
	return true
}

func TestCheckpointStateRoundtrip(t *testing.T) {
	c := testCkpt(t, DefaultConfig())
	want := sampleState(4)
	if err := c.WriteState(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadState(4)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(want, got) {
		t.Fatalf("roundtrip mismatch:\nwrote %+v\nread  %+v", want, got)
	}
}

func TestCheckpointStateRoundtripParallelMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ParallelAllocation = true
	c := testCkpt(t, cfg)
	want := sampleState(2)
	want.claimIter = []int32{0, 5, 0, 1, 2}
	if err := c.WriteState(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadState(2)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(want, got) {
		t.Fatal("claimIter did not survive the roundtrip")
	}
}

func TestCheckpointBaseRoundtrip(t *testing.T) {
	c := testCkpt(t, DefaultConfig())
	packed := []uint64{1, 2, 3, 1 << 40, 1<<63 - 1}
	if err := c.WriteBase(999, 1234, packed); err != nil {
		t.Fatal(err)
	}
	nv, te, got, err := c.LoadBase()
	if err != nil {
		t.Fatal(err)
	}
	if nv != 999 || te != 1234 || len(got) != len(packed) {
		t.Fatalf("base roundtrip: |V|=%d |E|=%d len=%d", nv, te, len(got))
	}
	for i := range packed {
		if got[i] != packed[i] {
			t.Fatalf("packed[%d] = %d, want %d", i, got[i], packed[i])
		}
	}
}

// TestCheckpointHostileFiles feeds the loader torn, corrupted, and
// mismatched checkpoint files; every one must be rejected with an error, and
// none may panic or return partially-restored state.
func TestCheckpointHostileFiles(t *testing.T) {
	cfg := DefaultConfig()
	otherCfg := cfg
	otherCfg.Seed = cfg.Seed + 1

	cases := []struct {
		name   string
		mutate func(t *testing.T, c *Checkpointer, path string)
	}{
		{"truncated mid-header", func(t *testing.T, c *Checkpointer, path string) {
			truncateFile(t, path, 20)
		}},
		{"truncated mid-payload", func(t *testing.T, c *Checkpointer, path string) {
			truncateFile(t, path, fileSize(t, path)/2)
		}},
		{"missing digest", func(t *testing.T, c *Checkpointer, path string) {
			truncateFile(t, path, fileSize(t, path)-8)
		}},
		{"flipped payload byte", func(t *testing.T, c *Checkpointer, path string) {
			flipByte(t, path, fileSize(t, path)/2)
		}},
		{"flipped digest byte", func(t *testing.T, c *Checkpointer, path string) {
			flipByte(t, path, fileSize(t, path)-1)
		}},
		{"bad magic", func(t *testing.T, c *Checkpointer, path string) {
			flipByte(t, path, 0)
		}},
		{"absurd section count", func(t *testing.T, c *Checkpointer, path string) {
			// Overwrite the first section length (after the 15-word header)
			// with a count that would allocate petabytes if trusted.
			patchU64(t, path, 15*8, 1<<60)
		}},
		{"empty file", func(t *testing.T, c *Checkpointer, path string) {
			truncateFile(t, path, 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCkpt(t, cfg)
			if err := c.WriteState(sampleState(3)); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, c, c.statePath(3))
			if st, err := c.LoadState(3); err == nil {
				t.Fatalf("hostile file loaded without error: %+v", st)
			}
		})
	}

	t.Run("wrong configuration", func(t *testing.T) {
		dir := t.TempDir()
		c1, _ := NewCheckpointer(dir, 1, 4, 1, cfg)
		if err := c1.WriteState(sampleState(3)); err != nil {
			t.Fatal(err)
		}
		c2, _ := NewCheckpointer(dir, 1, 4, 1, otherCfg)
		if _, err := c2.LoadState(3); err == nil {
			t.Fatal("checkpoint from a different seed was accepted")
		}
		if got := c2.Newest(); got != -1 {
			t.Fatalf("Newest saw a foreign-config checkpoint: %d", got)
		}
	})

	t.Run("superstep filename mismatch", func(t *testing.T) {
		c := testCkpt(t, cfg)
		if err := c.WriteState(sampleState(3)); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(c.statePath(3), c.statePath(7)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadState(7); err == nil {
			t.Fatal("state file renamed to a different superstep was accepted")
		}
	})
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}
}

func patchU64(t *testing.T, path string, off int64, v uint64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPruneKeepsNewestTwo(t *testing.T) {
	c := testCkpt(t, DefaultConfig())
	if err := c.WriteBase(10, 10, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 5; s++ {
		if err := c.WriteState(sampleState(s)); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, "state-*.dnc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("prune left %d state files, want 2: %v", len(matches), matches)
	}
	if got := c.Newest(); got != 4 {
		t.Fatalf("Newest = %d, want 4", got)
	}
	if _, err := c.LoadState(3); err != nil {
		t.Fatalf("second-newest checkpoint must stay loadable: %v", err)
	}
}

func TestCheckpointNewestRequiresBase(t *testing.T) {
	c := testCkpt(t, DefaultConfig())
	if got := c.Newest(); got != -1 {
		t.Fatalf("empty dir: Newest = %d, want -1", got)
	}
	if err := c.WriteState(sampleState(2)); err != nil {
		t.Fatal(err)
	}
	if got := c.Newest(); got != -1 {
		t.Fatalf("states without a base are unrestorable: Newest = %d, want -1", got)
	}
	if err := c.WriteBase(10, 10, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Newest(); got != 2 {
		t.Fatalf("Newest = %d, want 2", got)
	}
}

func TestCountingSourceMatchesBareSource(t *testing.T) {
	// The wrapper must not perturb the stream: seeded runs stay bit-identical
	// to the pre-checkpointing code.
	a := rand.New(rand.NewSource(99))
	b := rand.New(newCountingSource(99))
	for i := 0; i < 1000; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d: bare %d != counted %d", i, x, y)
		}
	}
}

func TestCountingSourceSkipReplaysPosition(t *testing.T) {
	src := newCountingSource(7)
	r := rand.New(src)
	// Mixed draw types: Intn consumes Int63, Uint64 consumes Uint64.
	for i := 0; i < 57; i++ {
		r.Intn(100)
	}
	for i := 0; i < 13; i++ {
		r.Uint64()
	}
	n63, n64 := src.n63, src.n64
	want := make([]int, 20)
	for i := range want {
		want[i] = r.Intn(1 << 20)
	}

	replay := newCountingSource(7)
	replay.skip(n63, n64)
	r2 := rand.New(replay)
	for i := range want {
		if got := r2.Intn(1 << 20); got != want[i] {
			t.Fatalf("draw %d after skip: got %d want %d", i, got, want[i])
		}
	}
}
