package dne

import (
	"slices"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// gridBuckets splits g's canonical edge indices by owning machine with the
// reference per-rank scan, for the differential tests below.
func gridBuckets(g *graph.Graph, gd grid, p int) [][]int64 {
	buckets := make([][]int64, p)
	for i, e := range g.Edges() {
		r := gd.edgeOwner(e.U, e.V)
		buckets[r] = append(buckets[r], int64(i))
	}
	return buckets
}

// TestBuildSubGraphEquivalence checks that the three subgraph builds — the
// self-extracting scan, the bucket-driven build, and the packed build the
// shuffle uses — produce identical subgraphs, field for field.
func TestBuildSubGraphEquivalence(t *testing.T) {
	g := gen.RMAT(11, 8, 9)
	const p = 6
	gd := newGrid(p)
	buckets := gridBuckets(g, gd, p)
	for rank := 0; rank < p; rank++ {
		a := buildSubGraph(g, gd, rank, p)
		b := buildSubGraphFrom(g, p, buckets[rank])
		packed := make([]uint64, len(buckets[rank]))
		for i, gi := range buckets[rank] {
			e := g.Edge(gi)
			packed[i] = graph.PackEdge(e.U, e.V)
		}
		c := buildSubGraphPacked(g.NumVertices(), p, packed)
		if !slices.Equal(a.verts, c.verts) || !slices.Equal(a.lid, c.lid) ||
			!slices.Equal(a.off, c.off) || !slices.Equal(a.target, c.target) ||
			!slices.Equal(a.eIdx, c.eIdx) || !slices.Equal(a.edges, c.edges) ||
			!slices.Equal(a.drest, c.drest) || !slices.Equal(a.aliveLen, c.aliveLen) {
			t.Fatalf("rank %d: packed build differs from scan build", rank)
		}
		if c.globalIdx != nil {
			t.Fatalf("rank %d: packed build must not carry global indices", rank)
		}
		if !slices.Equal(a.verts, b.verts) {
			t.Fatalf("rank %d: verts differ", rank)
		}
		if !slices.Equal(a.lid, b.lid) {
			t.Fatalf("rank %d: lid differs", rank)
		}
		if !slices.Equal(a.off, b.off) {
			t.Fatalf("rank %d: off differs", rank)
		}
		if !slices.Equal(a.target, b.target) {
			t.Fatalf("rank %d: target differs", rank)
		}
		if !slices.Equal(a.eIdx, b.eIdx) {
			t.Fatalf("rank %d: eIdx differs", rank)
		}
		if !slices.Equal(a.edges, b.edges) {
			t.Fatalf("rank %d: edges differ", rank)
		}
		if !slices.Equal(a.globalIdx, b.globalIdx) {
			t.Fatalf("rank %d: globalIdx differs", rank)
		}
		if !slices.Equal(a.drest, b.drest) || !slices.Equal(a.aliveLen, b.aliveLen) {
			t.Fatalf("rank %d: drest/aliveLen differ", rank)
		}
	}
}

// TestSubGraphLocalIDDense spot-checks the dense global→local map against
// the sorted verts slice it is derived from.
func TestSubGraphLocalIDDense(t *testing.T) {
	g := gen.RMAT(10, 6, 3)
	gd := newGrid(4)
	sg := buildSubGraph(g, gd, 2, 4)
	for lv, v := range sg.verts {
		if got := sg.localID(v); got != lv {
			t.Fatalf("localID(%d) = %d, want %d", v, got, lv)
		}
	}
	seen := make(map[graph.Vertex]bool, len(sg.verts))
	for _, v := range sg.verts {
		seen[v] = true
	}
	for v := graph.Vertex(0); v < g.NumVertices(); v++ {
		if !seen[v] && sg.localID(v) != -1 {
			t.Fatalf("localID(%d) = %d for non-local vertex", v, sg.localID(v))
		}
	}
}

// BenchmarkBuildSubGraphPacked measures the shard data plane's build: the
// packed-edge subgraph materialization for all 16 machines (the shuffle's
// routing/exchange is benchmarked separately by BenchmarkPartitionShards).
func BenchmarkBuildSubGraphPacked(b *testing.B) {
	g := gen.RMAT(14, 16, 21)
	const p = 16
	gd := newGrid(p)
	buckets := gridBuckets(g, gd, p)
	packed := make([][]uint64, p)
	for rank := 0; rank < p; rank++ {
		packed[rank] = make([]uint64, len(buckets[rank]))
		for i, gi := range buckets[rank] {
			e := g.Edge(gi)
			packed[rank][i] = graph.PackEdge(e.U, e.V)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rank := 0; rank < p; rank++ {
			sg := buildSubGraphPacked(g.NumVertices(), p, packed[rank])
			if len(sg.edges) == 0 {
				b.Fatal("empty subgraph")
			}
		}
	}
}

// BenchmarkBuildSubGraphScan is the whole-graph path's self-extracting
// build (every rank scans all of g), for the same total work.
func BenchmarkBuildSubGraphScan(b *testing.B) {
	g := gen.RMAT(14, 16, 21)
	const p = 16
	gd := newGrid(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rank := 0; rank < p; rank++ {
			sg := buildSubGraph(g, gd, rank, p)
			if len(sg.edges) == 0 {
				b.Fatal("empty subgraph")
			}
		}
	}
}
