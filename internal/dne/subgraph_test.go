package dne

import (
	"slices"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// TestEdgeBucketsMatchesScan checks the single-pass grid-bucketed
// extraction — sequential and chunk-parallel — against the per-rank scan,
// for several machine counts (square and non-square grids).
func TestEdgeBucketsMatchesScan(t *testing.T) {
	g := gen.RMAT(11, 8, 5)
	for _, p := range []int{1, 3, 8, 17} {
		gd := newGrid(p)
		want := make([][]int64, p)
		for i, e := range g.Edges() {
			r := gd.edgeOwner(e.U, e.V)
			want[r] = append(want[r], int64(i))
		}
		for _, w := range []int{1, 2, 5} {
			got := edgeBucketsWorkers(g, gd, p, w)
			for r := 0; r < p; r++ {
				if !slices.Equal(got[r], want[r]) {
					t.Fatalf("p=%d w=%d rank %d: bucket mismatch (%d vs %d edges)",
						p, w, r, len(got[r]), len(want[r]))
				}
			}
		}
	}
}

// TestBuildSubGraphFromEquivalence checks that the bucket-driven build and
// the self-extracting build produce identical subgraphs, field for field.
func TestBuildSubGraphFromEquivalence(t *testing.T) {
	g := gen.RMAT(11, 8, 9)
	const p = 6
	gd := newGrid(p)
	buckets := edgeBuckets(g, gd, p)
	for rank := 0; rank < p; rank++ {
		a := buildSubGraph(g, gd, rank, p)
		b := buildSubGraphFrom(g, p, buckets[rank])
		if !slices.Equal(a.verts, b.verts) {
			t.Fatalf("rank %d: verts differ", rank)
		}
		if !slices.Equal(a.lid, b.lid) {
			t.Fatalf("rank %d: lid differs", rank)
		}
		if !slices.Equal(a.off, b.off) {
			t.Fatalf("rank %d: off differs", rank)
		}
		if !slices.Equal(a.target, b.target) {
			t.Fatalf("rank %d: target differs", rank)
		}
		if !slices.Equal(a.eIdx, b.eIdx) {
			t.Fatalf("rank %d: eIdx differs", rank)
		}
		if !slices.Equal(a.edges, b.edges) {
			t.Fatalf("rank %d: edges differ", rank)
		}
		if !slices.Equal(a.globalIdx, b.globalIdx) {
			t.Fatalf("rank %d: globalIdx differs", rank)
		}
		if !slices.Equal(a.drest, b.drest) || !slices.Equal(a.aliveLen, b.aliveLen) {
			t.Fatalf("rank %d: drest/aliveLen differ", rank)
		}
	}
}

// TestSubGraphLocalIDDense spot-checks the dense global→local map against
// the sorted verts slice it is derived from.
func TestSubGraphLocalIDDense(t *testing.T) {
	g := gen.RMAT(10, 6, 3)
	gd := newGrid(4)
	sg := buildSubGraph(g, gd, 2, 4)
	for lv, v := range sg.verts {
		if got := sg.localID(v); got != lv {
			t.Fatalf("localID(%d) = %d, want %d", v, got, lv)
		}
	}
	seen := make(map[graph.Vertex]bool, len(sg.verts))
	for _, v := range sg.verts {
		seen[v] = true
	}
	for v := graph.Vertex(0); v < g.NumVertices(); v++ {
		if !seen[v] && sg.localID(v) != -1 {
			t.Fatalf("localID(%d) = %d for non-local vertex", v, sg.localID(v))
		}
	}
}

// BenchmarkBuildSubGraph measures the driver path: one grid-bucketed pass
// over the edges plus per-machine CSR materialization, for all 16 machines.
func BenchmarkBuildSubGraph(b *testing.B) {
	g := gen.RMAT(14, 16, 21)
	const p = 16
	gd := newGrid(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := edgeBuckets(g, gd, p)
		for rank := 0; rank < p; rank++ {
			sg := buildSubGraphFrom(g, p, buckets[rank])
			if len(sg.edges) == 0 {
				b.Fatal("empty subgraph")
			}
		}
	}
}

// BenchmarkBuildSubGraphScan is the self-extracting fallback the
// multi-process transport uses (and the closest surviving relative of the
// old per-machine scan), for the same total work.
func BenchmarkBuildSubGraphScan(b *testing.B) {
	g := gen.RMAT(14, 16, 21)
	const p = 16
	gd := newGrid(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rank := 0; rank < p; rank++ {
			sg := buildSubGraph(g, gd, rank, p)
			if len(sg.edges) == 0 {
				b.Fatal("empty subgraph")
			}
		}
	}
}
