package dne

import "github.com/distributedne/dne/internal/obs"

// RegisterMetrics exposes the process-cumulative checkpoint/recovery
// aggregates on reg. Families emit only kinds that have fired, so a
// fault-free process scrapes clean. Nil registry → no-op.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dne_checkpoint_events_total",
		"Checkpoint lifecycle events in this process: states written, states restored, and mesh rejoins after a transport loss.",
		func(emit func(v float64, kv ...string)) {
			for _, e := range []struct {
				kind string
				v    int64
			}{
				{"written", ckptObs.written.Load()},
				{"restored", ckptObs.restored.Load()},
				{"rejoin", ckptObs.rejoins.Load()},
			} {
				if e.v > 0 {
					emit(float64(e.v), "kind", e.kind)
				}
			}
		})
	reg.CounterFunc("dne_checkpoint_bytes_total",
		"Total bytes of checkpoint state and base files written by this process.",
		func(emit func(v float64, kv ...string)) {
			if v := ckptObs.bytes.Load(); v > 0 {
				emit(float64(v))
			}
		})
}
