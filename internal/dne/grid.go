package dne

import "slices"

// grid implements the 2D-hash initial distribution of §4 ("Data Structure").
// Machines are arranged in an R×C logical grid (R·C ≥ P, cells folded onto
// machines modulo P). An edge (u,v) is owned by the cell at (h1(u) mod R,
// h2(v) mod C); consequently every edge incident to a vertex x lives in x's
// grid row or column, so the replica set of x is *computed* from its id —
// O(√P) machines — instead of being stored, which is the paper's
// space-efficiency argument for trillion-edge graphs.
type grid struct {
	r, c, p int
}

func newGrid(p int) grid {
	r := 1
	for (r+1)*(r+1) <= p {
		r++
	}
	c := (p + r - 1) / r
	return grid{r: r, c: c, p: p}
}

// splitmix64 is a strong, cheap 64-bit mixer (public-domain constants).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashRow(v uint32) uint64 { return splitmix64(uint64(v) ^ 0xDEC0DE) }
func hashCol(v uint32) uint64 { return splitmix64(uint64(v) ^ 0xC0FFEE) }

// edgeOwner returns the machine owning canonical edge (u,v).
func (g grid) edgeOwner(u, v uint32) int {
	i := int(hashRow(u) % uint64(g.r))
	j := int(hashCol(v) % uint64(g.c))
	return (i*g.c + j) % g.p
}

// vertexProcs appends to dst the sorted, deduplicated set of machines that
// can hold edges incident to x (x's grid row ∪ column).
func (g grid) vertexProcs(x uint32, dst []int) []int {
	i := int(hashRow(x) % uint64(g.r))
	j := int(hashCol(x) % uint64(g.c))
	for jj := 0; jj < g.c; jj++ {
		dst = append(dst, (i*g.c+jj)%g.p)
	}
	for ii := 0; ii < g.r; ii++ {
		dst = append(dst, (ii*g.c+j)%g.p)
	}
	slices.Sort(dst)
	out := dst[:0]
	for k, pr := range dst {
		if k == 0 || pr != dst[k-1] {
			out = append(out, pr)
		}
	}
	return out
}
