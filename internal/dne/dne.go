// Package dne implements Distributed Neighbor Expansion (Distributed NE),
// the parallel and distributed edge-partitioning algorithm of Hanai et al.,
// "Distributed Edge Partitioning for Trillion-edge Graphs", VLDB 2019.
//
// The algorithm computes a |P|-way edge partitioning by growing all |P|
// partitions simultaneously ("parallel expansion", §3): each partition
// greedily expands its edge set from a random seed vertex, always expanding
// the boundary vertex whose remaining degree — and therefore the increase in
// vertex replication — is minimal. Edges are held uniquely by 2D-hashed
// allocation processes; vertices are replicated and synchronised (§4).
// Multi-expansion (§5) batches the λ·|B| best boundary vertices per
// superstep to cut iteration counts by orders of magnitude.
//
// The distributed runtime is an in-process message-passing cluster
// (internal/cluster); every machine is a goroutine, and all coordination is
// via tagged, size-accounted messages, so communication volume and iteration
// counts are faithful to the distributed algorithm even on one host.
package dne

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// defaultMaxIterations bounds the superstep loop as a safety net; realistic
// runs with λ=0.1 finish in tens of iterations (§5, Fig. 6).
const defaultMaxIterations = 1 << 20

// Config holds the algorithm parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Alpha is the imbalance factor α ≥ 1.0 of Eq. (2). Paper setting: 1.1.
	Alpha float64
	// Lambda is the multi-expansion factor λ ∈ (0,1] (§5). Paper setting:
	// 0.1. Ignored when SingleExpansion is set.
	Lambda float64
	// SingleExpansion selects exactly one boundary vertex per iteration,
	// the Theorem-1 setting (§6).
	SingleExpansion bool
	// Seed drives every random choice (initial vertices, seed scans).
	Seed int64
	// MaxIterations bounds the superstep loop (0 = a large default).
	MaxIterations int
	// BroadcastReplicas disables the 2D-hash fanout optimisation: selected
	// vertices are multicast to all |P| machines instead of the O(√P) grid
	// row ∪ column. Ablation knob for DESIGN.md §4.2; quality is unaffected,
	// communication volume grows.
	BroadcastReplicas bool
	// ParallelAllocation processes the received selections of each
	// allocation superstep on multiple goroutines per machine, resolving
	// contended edge claims by CAS exactly as the paper's Algorithm 3 ("do
	// in parallel", conflicts "solved by a CAS operation"). Edge ownership
	// between simultaneously-requesting partitions then depends on race
	// winners, so runs are NOT bit-reproducible; the default sequential mode
	// is deterministic and allocates identically. Ablation knob for
	// DESIGN.md §4.1 (Result.CASConflicts).
	ParallelAllocation bool
}

// DefaultConfig returns the paper's parameter setting (α=1.1, λ=0.1).
func DefaultConfig() Config {
	return Config{Alpha: 1.1, Lambda: 0.1}
}

// Result is a partitioning together with the run's execution metrics.
type Result struct {
	Partitioning *partition.Partitioning
	// Iterations is the number of supersteps executed (Fig. 6 metric).
	Iterations int
	// SweptEdges counts edges assigned by the final leftover sweep
	// (normally 0).
	SweptEdges int64
	// CommBytes / CommMessages are the total inter-machine traffic of the
	// partitioning itself (result collection excluded).
	CommBytes    int64
	CommMessages int64
	// MemBytes is the analytic peak memory across all machines (graph
	// shares + partition edge sets + boundaries); MemScore = MemBytes/|E|
	// is the Fig. 9 metric.
	MemBytes int64
	Elapsed  time.Duration
	// CASConflicts counts contended edge claims lost to a concurrent
	// partition (non-zero only with Config.ParallelAllocation).
	CASConflicts int64
	// WastedSelections counts selection deliveries ⟨v,p⟩ that allocated no
	// one-hop edge on the receiving machine — the cost of stale boundary
	// Drest scores (DESIGN.md §4.4).
	WastedSelections int64
	// TotalSelections counts all selection deliveries, the denominator for
	// the staleness rate.
	TotalSelections int64
}

// MemScore returns MemBytes normalised by the number of edges (Fig. 9).
func (r *Result) MemScore(numEdges int64) float64 {
	if numEdges == 0 {
		return 0
	}
	return float64(r.MemBytes) / float64(numEdges)
}

// SimulatedNetworkTime estimates the network component this run would add
// on a physical cluster of the given size under the cost model — the
// substitution bridge between the in-process runtime (memcpy-fast
// communication) and the paper's InfiniBand testbed. Each superstep is
// charged four synchronisation rounds (select, sync, boundary/edges, and
// the termination all-gathers), matching the protocol in machine.go.
func (r *Result) SimulatedNetworkTime(m cluster.CostModel, machines int) time.Duration {
	return m.Estimate(r.CommMessages, r.CommBytes, r.Iterations*4, machines)
}

// Partition runs Distributed NE on g with numParts machines (the paper runs
// one partition per machine, §3.3) and returns the partitioning plus metrics.
func Partition(g *graph.Graph, numParts int, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), g, numParts, cfg)
}

// validate checks the algorithm parameters.
func (cfg Config) validate() error {
	if cfg.Alpha < 1.0 {
		return fmt.Errorf("dne: alpha must be >= 1.0, got %g", cfg.Alpha)
	}
	if !cfg.SingleExpansion && (cfg.Lambda <= 0 || cfg.Lambda > 1) {
		return fmt.Errorf("dne: lambda must be in (0,1], got %g", cfg.Lambda)
	}
	return nil
}

// PartitionCtx is Partition with cancellation: the superstep loop checks
// ctx once per iteration (collectively, so all machines abort together) and
// returns ctx's error.
//
// It is a thin adapter onto the sharded data plane: the in-memory graph is
// split into |P| synthetic shards (contiguous stripes of the canonical edge
// list) and every machine runs the same shuffle → subgraph → superstep
// pipeline a true multi-process run uses, so the in-process simulation
// exercises the exact distributed code path. The seeded partitioning is
// bit-identical to the pre-shard driver (same subgraphs, same protocol).
func PartitionCtx(ctx context.Context, g *graph.Graph, numParts int, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if numParts <= 0 {
		return nil, fmt.Errorf("dne: numParts must be positive, got %d", numParts)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.NumEdges() == 0 {
		return nil, errors.New("dne: graph has no edges")
	}

	c := cluster.New(numParts)
	results := make([]machineResult, numParts)
	p := partition.New(numParts, g.NumEdges())

	start := time.Now()
	shards := graph.ShardsOf(g, numParts)
	var rootKeys []uint64
	var rootOwners []int32
	err := c.Run(func(comm cluster.Comm) error {
		keys, owners, err := runShardMachine(ctx, comm, shards[comm.Rank()], cfg, &results[comm.Rank()])
		if comm.Rank() == 0 {
			rootKeys, rootOwners = keys, owners
		}
		return err
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	// The merged keys are the canonical edge list in ascending order, so the
	// merged owners line up 1:1 with g's edge indices.
	if int64(len(rootKeys)) != g.NumEdges() {
		return nil, fmt.Errorf("dne: collected %d edges, graph has %d", len(rootKeys), g.NumEdges())
	}
	copy(p.Owner, rootOwners)

	res := &Result{Partitioning: p, Elapsed: elapsed}
	for _, mr := range results {
		if mr.iterations > res.Iterations {
			res.Iterations = mr.iterations
		}
		res.MemBytes += mr.memBytes
		res.CommBytes += mr.commBytes
		res.CommMessages += mr.commMsgs
		res.CASConflicts += mr.conflicts
		res.WastedSelections += mr.wasted
		res.TotalSelections += mr.selections
	}
	res.SweptEdges = results[0].swept
	return res, nil
}

// Partitioner adapts PartitionCtx to the v2 partition.Partitioner
// interface. It is stateless: configuration arrives in the Spec (alpha,
// lambda, single_expansion, broadcast_replicas, parallel_allocation,
// max_iterations), and the run's metrics are folded into Result.Stats —
// iteration count, communication volume, the analytic peak memory (the
// Fig. 9 MemScore numerator) and the simulated network time under the
// paper's InfiniBand cost model in Extra.
type Partitioner struct{}

// Name implements partition.Partitioner.
func (Partitioner) Name() string { return "D.NE" }

// ConfigFromSpec maps a resolved Spec onto the algorithm's Config,
// applying the paper's defaults for unset parameters.
func ConfigFromSpec(spec partition.Spec) Config {
	return Config{
		Alpha:              spec.Float("alpha", 1.1),
		Lambda:             spec.Float("lambda", 0.1),
		SingleExpansion:    spec.Bool("single_expansion", false),
		Seed:               spec.Seed,
		MaxIterations:      spec.Int("max_iterations", 0),
		BroadcastReplicas:  spec.Bool("broadcast_replicas", false),
		ParallelAllocation: spec.Bool("parallel_allocation", false),
	}
}

// Partition implements partition.Partitioner.
func (Partitioner) Partition(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := PartitionCtx(ctx, g, spec.NumParts, ConfigFromSpec(spec))
	if err != nil {
		return nil, err
	}
	out := &partition.Result{Partitioning: res.Partitioning}
	st := &out.Stats
	st.Method = "dne"
	st.NumParts = spec.NumParts
	st.AddPhase("expand", res.Elapsed)
	st.PeakMemBytes = res.MemBytes
	st.Iterations = res.Iterations
	st.CommBytes = res.CommBytes
	st.CommMessages = res.CommMessages
	st.SweptEdges = res.SweptEdges
	st.SetExtra("cas_conflicts", float64(res.CASConflicts))
	st.SetExtra("wasted_selections", float64(res.WastedSelections))
	st.SetExtra("total_selections", float64(res.TotalSelections))
	st.SetExtra("simulated_network_ms",
		float64(res.SimulatedNetworkTime(cluster.InfiniBandEDR(), spec.NumParts).Microseconds())/1000)
	out.Finish(g, start)
	return out, nil
}
