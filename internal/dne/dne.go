// Package dne implements Distributed Neighbor Expansion (Distributed NE),
// the parallel and distributed edge-partitioning algorithm of Hanai et al.,
// "Distributed Edge Partitioning for Trillion-edge Graphs", VLDB 2019.
//
// The algorithm computes a |P|-way edge partitioning by growing all |P|
// partitions simultaneously ("parallel expansion", §3): each partition
// greedily expands its edge set from a random seed vertex, always expanding
// the boundary vertex whose remaining degree — and therefore the increase in
// vertex replication — is minimal. Edges are held uniquely by 2D-hashed
// allocation processes; vertices are replicated and synchronised (§4).
// Multi-expansion (§5) batches the λ·|B| best boundary vertices per
// superstep to cut iteration counts by orders of magnitude.
//
// The distributed runtime is an in-process message-passing cluster
// (internal/cluster); every machine is a goroutine, and all coordination is
// via tagged, size-accounted messages, so communication volume and iteration
// counts are faithful to the distributed algorithm even on one host.
package dne

import (
	"errors"
	"fmt"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// defaultMaxIterations bounds the superstep loop as a safety net; realistic
// runs with λ=0.1 finish in tens of iterations (§5, Fig. 6).
const defaultMaxIterations = 1 << 20

// Config holds the algorithm parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Alpha is the imbalance factor α ≥ 1.0 of Eq. (2). Paper setting: 1.1.
	Alpha float64
	// Lambda is the multi-expansion factor λ ∈ (0,1] (§5). Paper setting:
	// 0.1. Ignored when SingleExpansion is set.
	Lambda float64
	// SingleExpansion selects exactly one boundary vertex per iteration,
	// the Theorem-1 setting (§6).
	SingleExpansion bool
	// Seed drives every random choice (initial vertices, seed scans).
	Seed int64
	// MaxIterations bounds the superstep loop (0 = a large default).
	MaxIterations int
	// BroadcastReplicas disables the 2D-hash fanout optimisation: selected
	// vertices are multicast to all |P| machines instead of the O(√P) grid
	// row ∪ column. Ablation knob for DESIGN.md §4.2; quality is unaffected,
	// communication volume grows.
	BroadcastReplicas bool
	// ParallelAllocation processes the received selections of each
	// allocation superstep on multiple goroutines per machine, resolving
	// contended edge claims by CAS exactly as the paper's Algorithm 3 ("do
	// in parallel", conflicts "solved by a CAS operation"). Edge ownership
	// between simultaneously-requesting partitions then depends on race
	// winners, so runs are NOT bit-reproducible; the default sequential mode
	// is deterministic and allocates identically. Ablation knob for
	// DESIGN.md §4.1 (Result.CASConflicts).
	ParallelAllocation bool
}

// DefaultConfig returns the paper's parameter setting (α=1.1, λ=0.1).
func DefaultConfig() Config {
	return Config{Alpha: 1.1, Lambda: 0.1}
}

// Result is a partitioning together with the run's execution metrics.
type Result struct {
	Partitioning *partition.Partitioning
	// Iterations is the number of supersteps executed (Fig. 6 metric).
	Iterations int
	// SweptEdges counts edges assigned by the final leftover sweep
	// (normally 0).
	SweptEdges int64
	// CommBytes / CommMessages are the total inter-machine traffic of the
	// partitioning itself (result collection excluded).
	CommBytes    int64
	CommMessages int64
	// MemBytes is the analytic peak memory across all machines (graph
	// shares + partition edge sets + boundaries); MemScore = MemBytes/|E|
	// is the Fig. 9 metric.
	MemBytes int64
	Elapsed  time.Duration
	// CASConflicts counts contended edge claims lost to a concurrent
	// partition (non-zero only with Config.ParallelAllocation).
	CASConflicts int64
	// WastedSelections counts selection deliveries ⟨v,p⟩ that allocated no
	// one-hop edge on the receiving machine — the cost of stale boundary
	// Drest scores (DESIGN.md §4.4).
	WastedSelections int64
	// TotalSelections counts all selection deliveries, the denominator for
	// the staleness rate.
	TotalSelections int64
}

// MemScore returns MemBytes normalised by the number of edges (Fig. 9).
func (r *Result) MemScore(numEdges int64) float64 {
	if numEdges == 0 {
		return 0
	}
	return float64(r.MemBytes) / float64(numEdges)
}

// SimulatedNetworkTime estimates the network component this run would add
// on a physical cluster of the given size under the cost model — the
// substitution bridge between the in-process runtime (memcpy-fast
// communication) and the paper's InfiniBand testbed. Each superstep is
// charged four synchronisation rounds (select, sync, boundary/edges, and
// the termination all-gathers), matching the protocol in machine.go.
func (r *Result) SimulatedNetworkTime(m cluster.CostModel, machines int) time.Duration {
	return m.Estimate(r.CommMessages, r.CommBytes, r.Iterations*4, machines)
}

// Partition runs Distributed NE on g with numParts machines (the paper runs
// one partition per machine, §3.3) and returns the partitioning plus metrics.
func Partition(g *graph.Graph, numParts int, cfg Config) (*Result, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("dne: numParts must be positive, got %d", numParts)
	}
	if cfg.Alpha < 1.0 {
		return nil, fmt.Errorf("dne: alpha must be >= 1.0, got %g", cfg.Alpha)
	}
	if !cfg.SingleExpansion && (cfg.Lambda <= 0 || cfg.Lambda > 1) {
		return nil, fmt.Errorf("dne: lambda must be in (0,1], got %g", cfg.Lambda)
	}
	if g.NumEdges() == 0 {
		return nil, errors.New("dne: graph has no edges")
	}

	c := cluster.New(numParts)
	results := make([]machineResult, numParts)
	p := partition.New(numParts, g.NumEdges())

	start := time.Now()
	err := c.Run(func(comm cluster.Comm) error {
		return runMachine(comm, g, cfg, &results[comm.Rank()], p.Owner)
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	res := &Result{Partitioning: p, Elapsed: elapsed}
	for _, mr := range results {
		if mr.iterations > res.Iterations {
			res.Iterations = mr.iterations
		}
		res.MemBytes += mr.memBytes
		res.CommBytes += mr.commBytes
		res.CommMessages += mr.commMsgs
		res.CASConflicts += mr.conflicts
		res.WastedSelections += mr.wasted
		res.TotalSelections += mr.selections
	}
	res.SweptEdges = results[0].swept
	return res, nil
}

// Partitioner adapts Partition to the partition.Partitioner interface used
// by the experiment harness. It retains the last Result so the harness can
// read iteration counts, communication volume and the analytic memory score.
type Partitioner struct {
	Cfg  Config
	Last *Result
}

// New returns a Partitioner with the paper's default configuration.
func New() *Partitioner { return &Partitioner{Cfg: DefaultConfig()} }

// Name implements partition.Partitioner.
func (pt *Partitioner) Name() string { return "D.NE" }

// Partition implements partition.Partitioner.
func (pt *Partitioner) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	res, err := Partition(g, numParts, pt.Cfg)
	if err != nil {
		return nil, err
	}
	pt.Last = res
	return res.Partitioning, nil
}

// MemBytes implements the harness's MemReporter: the analytic peak memory of
// the last run, summed across machines.
func (pt *Partitioner) MemBytes() int64 {
	if pt.Last == nil {
		return 0
	}
	return pt.Last.MemBytes
}
