package dne

import (
	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
)

// Message tags used by the DNE superstep protocol. Every machine sends
// exactly one message of each phase tag to every machine per iteration
// (possibly with an empty payload), so receivers always know how many
// messages to expect; payloads are routed using the 2D-hash replica sets, so
// *bytes* still follow the paper's O(√P) multicast fan-out.
const (
	tagSelect cluster.Tag = cluster.TagUser + iota
	tagSync
	tagBoundary
	tagEdges
	tagResult
	tagSweep
)

// vp is a ⟨vertex, partition⟩ pair (the paper's VP/BP elements).
type vp struct {
	V graph.Vertex
	P int32
}

// selectBody carries the expansion vertices multicast to allocators
// (Line 8, Alg. 1 / Line 9, Alg. 4) plus an optional random-seed request
// (getRandomVertex(), Alg. 1 Line 7).
type selectBody struct {
	Pairs    []vp
	SeedReq  bool  // this machine asks the receiver for a random seed vertex
	SeedPart int32 // partition the seed is for
	Cancel   bool  // sender's context is cancelled; abort collectively
}

// WireSize implements cluster.Body.
func (b selectBody) WireSize() int { return 8*len(b.Pairs) + 6 }

// syncBody synchronises newly-added vertex allocation ids among replicas
// (SyncVertexAllocations, Alg. 2 Line 3).
type syncBody struct {
	Pairs []vp
}

// WireSize implements cluster.Body.
func (b syncBody) WireSize() int { return 8 * len(b.Pairs) }

// boundaryItem is one new boundary vertex with this allocator's local Drest
// contribution (Alg. 2 Lines 5–6).
type boundaryItem struct {
	V     graph.Vertex
	Drest int32
}

// boundaryBody is sent allocator → expansion process p.
type boundaryBody struct {
	Items []boundaryItem
}

// WireSize implements cluster.Body.
func (b boundaryBody) WireSize() int { return 8 * len(b.Items) }

// edgesBody carries newly allocated edges back to the expansion process that
// owns them (Alg. 2 Line 7); at the end of the run each machine holds its
// entire partition, which is the paper's data-flow goal (§3.3).
type edgesBody struct {
	Edges []graph.Edge
}

// WireSize implements cluster.Body.
func (b edgesBody) WireSize() int { return 8 * len(b.Edges) }

// resultBody reports (global edge index, owner) pairs to the master for
// assembling the final Partitioning (whole-graph path).
type resultBody struct {
	Idx   []int64
	Owner []int32
}

// WireSize implements cluster.Body.
func (b resultBody) WireSize() int { return 8*len(b.Idx) + 4*len(b.Owner) }

// shardResultBody reports (packed canonical edge, owner) pairs to the
// master — the shard path's result currency: no rank knows global edge
// indices because no rank ever saw the global edge list.
type shardResultBody struct {
	Keys  []uint64
	Owner []int32
}

// WireSize implements cluster.Body.
func (b shardResultBody) WireSize() int { return 8*len(b.Keys) + 4*len(b.Owner) }

// sweepBody instructs allocators to sweep leftover edges (only possible when
// every partition hit the α cap in the same iteration) and reports counts.
type sweepBody struct {
	Count int64
}

// WireSize implements cluster.Body.
func (b sweepBody) WireSize() int { return 8 }
