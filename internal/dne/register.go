package dne

import (
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "dne",
		Aliases: []string{"d.ne", "distributedne"},
		Summary: "Distributed Neighbor Expansion (Hanai et al., VLDB'19): parallel greedy expansion on an in-process message-passing cluster",
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "imbalance factor α ≥ 1 of Eq. (2)", Min: 1, Max: 16, HasBounds: true},
			{Name: "lambda", Kind: methods.Float, Default: 0.1, Doc: "multi-expansion factor λ ∈ (0,1] (§5)", Min: 1e-6, Max: 1, HasBounds: true},
			{Name: "single_expansion", Kind: methods.Bool, Default: false, Doc: "expand one boundary vertex per iteration (Theorem-1 setting, §6)"},
			{Name: "broadcast_replicas", Kind: methods.Bool, Default: false, Doc: "ablation: multicast selections to all machines instead of the O(√P) grid"},
			{Name: "parallel_allocation", Kind: methods.Bool, Default: false, Doc: "ablation: CAS-resolved parallel one-hop allocation (non-deterministic)"},
			{Name: "max_iterations", Kind: methods.Int, Default: 0, Doc: "superstep cap (0 = large default)", Min: 0, Max: 1 << 20, HasBounds: true},
		},
		Factory: func() partition.Partitioner { return Partitioner{} },
	})
}
