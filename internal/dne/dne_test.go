package dne

import (
	"testing"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.RMAT(10, 8, 42) // 1024 vertices, ~8k edge samples
}

func TestPartitionCoversAllEdges(t *testing.T) {
	g := testGraph(t)
	for _, p := range []int{1, 2, 4, 7, 16} {
		res, err := Partition(g, p, DefaultConfig())
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := res.Partitioning.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestBalanceWithinAlpha(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	res, err := Partition(g, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Partitioning.EdgeCounts()
	// Cap can be overshot by one multi-expansion batch of a high-degree
	// vertex; allow the max-degree slack.
	cap := int64(cfg.Alpha*float64(g.NumEdges())/8) + g.MaxDegree()
	for q, c := range counts {
		if c > cap {
			t.Errorf("partition %d has %d edges, cap %d", q, c, cap)
		}
	}
}

func TestTheorem1UpperBoundHolds(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.SingleExpansion = true
	for _, p := range []int{2, 4, 8} {
		res, err := Partition(g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := res.Partitioning.Measure(g)
		ub := bound.Theorem1(g.NumEdges(), int64(g.NumVertices()), p)
		if q.ReplicationFactor > ub {
			t.Errorf("P=%d: RF %.3f exceeds Theorem-1 bound %.3f", p, q.ReplicationFactor, ub)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	a, err := Partition(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Partitioning.Owner {
		if a.Partitioning.Owner[i] != b.Partitioning.Owner[i] {
			t.Fatalf("owner mismatch at edge %d: %d vs %d", i,
				a.Partitioning.Owner[i], b.Partitioning.Owner[i])
		}
	}
}

func TestQualityBeatsRandomHash(t *testing.T) {
	g := testGraph(t)
	res, err := Partition(g, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Partitioning.Measure(g)
	// Random 1D hash on this graph gives RF well above 3; DNE should be
	// clearly better. Use a loose threshold to avoid flakiness.
	if q.ReplicationFactor > 3.0 {
		t.Errorf("DNE RF %.3f unexpectedly high", q.ReplicationFactor)
	}
}
