package dne

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/distributedne/dne/internal/dsa"
)

// Superstep checkpointing: each rank persists its machine-local state at
// superstep boundaries so a killed worker can restart, rejoin the mesh, and
// resume — with the recovered run bit-identical to a fault-free one.
//
// Two files per rank, following the repository's versioned-header idiom:
//
//   - base-rNNN.dnc ("DNB1"): the immutable post-shuffle input — the rank's
//     sorted packed edge keys plus |V| and global |E|. Written once; the
//     subgraph's static structure (CSR, offsets) is rebuilt from it.
//   - state-rNNN-sNNNNNNNN.dnc ("DNC1"): the mutable overlay at superstep s —
//     owner words, compacted adjacency (eIdx + aliveLen), partition bitsets,
//     boundary live/done sets, PRNG draw counts, gathered vectors, loop
//     counters. Everything derivable (drest, freeEdges, the target array) is
//     recomputed on load instead of stored.
//
// Both carry a config fingerprint (seed, α, λ, |P|, mode flags) and end in
// an FNV-64a digest of the full payload; writes go through a temp file +
// rename so a crash mid-write can never leave a readable half-checkpoint.
//
// Only the two newest state files are retained. That suffices for recovery:
// the superstep loop's termination all-gathers mean no rank can finish
// superstep i+1 before every rank finished superstep i, so the newest
// checkpoint supersteps across ranks differ by at most one interval — the
// negotiated min (cluster.AllGatherMin) is always present on every rank.

const (
	ckptStateMagic = 0x444e4331 // "DNC1"
	ckptBaseMagic  = 0x444e4231 // "DNB1"
	ckptVersion    = 1
	ckptKeep       = 2
)

// ckptObs aggregates process-cumulative checkpoint/rejoin events, exposed
// via RegisterMetrics.
var ckptObs struct {
	written  atomic.Int64
	restored atomic.Int64
	rejoins  atomic.Int64
	bytes    atomic.Int64
}

// Checkpointer owns one rank's checkpoint directory.
type Checkpointer struct {
	dir   string
	rank  int
	size  int
	every int
	fp    uint64 // config fingerprint
}

// NewCheckpointer prepares dir for rank's checkpoints of a size-rank run
// under cfg. every is the checkpoint interval in supersteps (<=0 means 1).
func NewCheckpointer(dir string, rank, size, every int, cfg Config) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("dne: checkpoint dir: %w", err)
	}
	if every <= 0 {
		every = 1
	}
	return &Checkpointer{dir: dir, rank: rank, size: size, every: every, fp: configFingerprint(cfg, size)}, nil
}

// configFingerprint digests the parameters that determine a run's message
// protocol and random choices; checkpoints from a differently-configured run
// are invisible rather than wrongly restored.
func configFingerprint(cfg Config, size int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(size))
	put(uint64(cfg.Seed))
	put(math.Float64bits(cfg.Alpha))
	put(math.Float64bits(cfg.Lambda))
	var flags uint64
	if cfg.SingleExpansion {
		flags |= 1
	}
	if cfg.BroadcastReplicas {
		flags |= 2
	}
	if cfg.ParallelAllocation {
		flags |= 4
	}
	put(flags)
	put(uint64(cfg.MaxIterations))
	return h.Sum64()
}

func (c *Checkpointer) basePath() string {
	return filepath.Join(c.dir, fmt.Sprintf("base-r%03d.dnc", c.rank))
}

func (c *Checkpointer) statePath(superstep int64) string {
	return filepath.Join(c.dir, fmt.Sprintf("state-r%03d-s%08d.dnc", c.rank, superstep))
}

// machineCkpt is the deserialized mutable state of one rank at one
// superstep boundary (top of the loop, before the superstep runs).
type machineCkpt struct {
	iter       int64
	done       bool
	epCount    int64
	seedCur    int64
	conflicts  int64
	wasted     int64
	selections int64
	rng63      uint64 // Int63 draws consumed from the counting source
	rng64      uint64 // Uint64 draws consumed from the counting source
	bndPeak    int64

	partSizes    []int64
	freeVec      []int64
	localPerPart []int64

	owner     []int32
	eIdx      []int32
	aliveLen  []int32
	partWords []uint64
	claimIter []int32 // nil unless ParallelAllocation

	bndLive []dsa.BoundaryEntry
	bndDone []uint32
}

// hashedWriter tees writes through an FNV-64a digest.
type hashedWriter struct {
	w io.Writer
	h interface {
		io.Writer
		Sum64() uint64
	}
}

func (hw *hashedWriter) Write(p []byte) (int, error) {
	hw.h.Write(p)
	return hw.w.Write(p)
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64Slice(w io.Writer, xs []uint64) error {
	if err := writeU64(w, uint64(len(xs))); err != nil {
		return err
	}
	var page [8192 * 8]byte
	for len(xs) > 0 {
		n := min(len(xs), 8192)
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint64(page[i*8:], x)
		}
		if _, err := w.Write(page[:n*8]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func writeI64Slice(w io.Writer, xs []int64) error {
	if err := writeU64(w, uint64(len(xs))); err != nil {
		return err
	}
	for _, x := range xs {
		if err := writeU64(w, uint64(x)); err != nil {
			return err
		}
	}
	return nil
}

func writeI32Slice(w io.Writer, xs []int32) error {
	if err := writeU64(w, uint64(len(xs))); err != nil {
		return err
	}
	var page [8192 * 4]byte
	for len(xs) > 0 {
		n := min(len(xs), 8192)
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint32(page[i*4:], uint32(x))
		}
		if _, err := w.Write(page[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func writeU32Slice(w io.Writer, xs []uint32) error {
	if err := writeU64(w, uint64(len(xs))); err != nil {
		return err
	}
	var page [8192 * 4]byte
	for len(xs) > 0 {
		n := min(len(xs), 8192)
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint32(page[i*4:], x)
		}
		if _, err := w.Write(page[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// ckptMaxCount caps a single section's declared element count (2^32): well
// above any real per-rank slab, well below anything that could wrap an
// allocation size.
const ckptMaxCount = 1 << 32

func readCount(r io.Reader) (int, error) {
	n, err := readU64(r)
	if err != nil {
		return 0, err
	}
	if n > ckptMaxCount {
		return 0, fmt.Errorf("dne: checkpoint section declares %d elements", n)
	}
	return int(n), nil
}

func readU64Slice(r io.Reader) ([]uint64, error) {
	n, err := readCount(r)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	var page [8192 * 8]byte
	for off := 0; off < n; {
		chunk := min(8192, n-off)
		b := page[:chunk*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out[off+i] = binary.LittleEndian.Uint64(b[i*8:])
		}
		off += chunk
	}
	return out, nil
}

func readI64Slice(r io.Reader) ([]int64, error) {
	u, err := readU64Slice(r)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(u))
	for i, x := range u {
		out[i] = int64(x)
	}
	return out, nil
}

func readI32Slice(r io.Reader) ([]int32, error) {
	n, err := readCount(r)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	var page [8192 * 4]byte
	for off := 0; off < n; {
		chunk := min(8192, n-off)
		b := page[:chunk*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out[off+i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
		}
		off += chunk
	}
	return out, nil
}

func readU32Slice(r io.Reader) ([]uint32, error) {
	n, err := readCount(r)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	var page [8192 * 4]byte
	for off := 0; off < n; {
		chunk := min(8192, n-off)
		b := page[:chunk*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out[off+i] = binary.LittleEndian.Uint32(b[i*4:])
		}
		off += chunk
	}
	return out, nil
}

// atomicWrite streams fill into path via a temp file + fsync + rename, so
// the file either exists complete or not at all.
func atomicWrite(path string, fill func(w io.Writer) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := fill(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	info, _ := f.Stat()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	var n int64
	if info != nil {
		n = info.Size()
	}
	return n, nil
}

// WriteBase persists the rank's immutable post-shuffle input.
func (c *Checkpointer) WriteBase(numVertices uint32, totalEdges int64, packed []uint64) error {
	n, err := atomicWrite(c.basePath(), func(w io.Writer) error {
		hw := &hashedWriter{w: w, h: fnv.New64a()}
		for _, v := range []uint64{ckptBaseMagic, ckptVersion, uint64(c.rank), uint64(c.size), c.fp,
			uint64(numVertices), uint64(totalEdges)} {
			if err := writeU64(hw, v); err != nil {
				return err
			}
		}
		if err := writeU64Slice(hw, packed); err != nil {
			return err
		}
		return writeU64(w, hw.h.Sum64())
	})
	if err != nil {
		return fmt.Errorf("dne: writing checkpoint base: %w", err)
	}
	ckptObs.bytes.Add(n)
	return nil
}

// LoadBase reads back the post-shuffle input, validating the fingerprint
// and digest.
func (c *Checkpointer) LoadBase() (numVertices uint32, totalEdges int64, packed []uint64, err error) {
	f, err := os.Open(c.basePath())
	if err != nil {
		return 0, 0, nil, fmt.Errorf("dne: opening checkpoint base: %w", err)
	}
	defer f.Close()
	digest := fnv.New64a()
	br := bufio.NewReaderSize(f, 1<<16)
	r := io.TeeReader(br, digest)
	var hdr [7]uint64
	for i := range hdr {
		if hdr[i], err = readU64(r); err != nil {
			return 0, 0, nil, fmt.Errorf("dne: reading checkpoint base header: %w", err)
		}
	}
	if hdr[0] != ckptBaseMagic || hdr[1] != ckptVersion {
		return 0, 0, nil, fmt.Errorf("dne: checkpoint base has bad magic/version %#x/%d", hdr[0], hdr[1])
	}
	if hdr[2] != uint64(c.rank) || hdr[3] != uint64(c.size) || hdr[4] != c.fp {
		return 0, 0, nil, errors.New("dne: checkpoint base belongs to a different run configuration")
	}
	if packed, err = readU64Slice(r); err != nil {
		return 0, 0, nil, fmt.Errorf("dne: reading checkpoint base edges: %w", err)
	}
	want := digest.Sum64()
	got, err := readU64(br)
	if err != nil || got != want {
		return 0, 0, nil, fmt.Errorf("dne: checkpoint base digest mismatch (read err: %v)", err)
	}
	return uint32(hdr[5]), int64(hdr[6]), packed, nil
}

// WriteState persists the mutable overlay at st.iter and prunes all but the
// newest ckptKeep state files.
func (c *Checkpointer) WriteState(st *machineCkpt) error {
	var flags uint64
	if st.done {
		flags |= 1
	}
	if st.claimIter != nil {
		flags |= 2
	}
	n, err := atomicWrite(c.statePath(st.iter), func(w io.Writer) error {
		hw := &hashedWriter{w: w, h: fnv.New64a()}
		for _, v := range []uint64{ckptStateMagic, ckptVersion, uint64(c.rank), uint64(c.size), c.fp,
			uint64(st.iter), flags, uint64(st.epCount), uint64(st.seedCur), uint64(st.conflicts),
			uint64(st.wasted), uint64(st.selections), st.rng63, st.rng64, uint64(st.bndPeak)} {
			if err := writeU64(hw, v); err != nil {
				return err
			}
		}
		for _, xs := range [][]int64{st.partSizes, st.freeVec, st.localPerPart} {
			if err := writeI64Slice(hw, xs); err != nil {
				return err
			}
		}
		for _, xs := range [][]int32{st.owner, st.eIdx, st.aliveLen, st.claimIter} {
			if err := writeI32Slice(hw, xs); err != nil {
				return err
			}
		}
		if err := writeU64Slice(hw, st.partWords); err != nil {
			return err
		}
		if err := writeU64(hw, uint64(len(st.bndLive))); err != nil {
			return err
		}
		for _, e := range st.bndLive {
			var b [8]byte
			binary.LittleEndian.PutUint32(b[0:], e.V)
			binary.LittleEndian.PutUint32(b[4:], uint32(e.Score))
			if _, err := hw.Write(b[:]); err != nil {
				return err
			}
		}
		if err := writeU32Slice(hw, st.bndDone); err != nil {
			return err
		}
		return writeU64(w, hw.h.Sum64())
	})
	if err != nil {
		return fmt.Errorf("dne: writing checkpoint state s%d: %w", st.iter, err)
	}
	ckptObs.written.Add(1)
	ckptObs.bytes.Add(n)
	c.prune()
	return nil
}

// LoadState reads the overlay checkpointed at the given superstep.
func (c *Checkpointer) LoadState(superstep int64) (*machineCkpt, error) {
	f, err := os.Open(c.statePath(superstep))
	if err != nil {
		return nil, fmt.Errorf("dne: opening checkpoint state: %w", err)
	}
	defer f.Close()
	digest := fnv.New64a()
	br := bufio.NewReaderSize(f, 1<<16)
	r := io.TeeReader(br, digest)
	var hdr [15]uint64
	for i := range hdr {
		if hdr[i], err = readU64(r); err != nil {
			return nil, fmt.Errorf("dne: reading checkpoint state header: %w", err)
		}
	}
	if hdr[0] != ckptStateMagic || hdr[1] != ckptVersion {
		return nil, fmt.Errorf("dne: checkpoint state has bad magic/version %#x/%d", hdr[0], hdr[1])
	}
	if hdr[2] != uint64(c.rank) || hdr[3] != uint64(c.size) || hdr[4] != c.fp {
		return nil, errors.New("dne: checkpoint state belongs to a different run configuration")
	}
	if int64(hdr[5]) != superstep {
		return nil, fmt.Errorf("dne: checkpoint state claims superstep %d, file named %d", hdr[5], superstep)
	}
	flags := hdr[6]
	st := &machineCkpt{
		iter: int64(hdr[5]), done: flags&1 != 0,
		epCount: int64(hdr[7]), seedCur: int64(hdr[8]), conflicts: int64(hdr[9]),
		wasted: int64(hdr[10]), selections: int64(hdr[11]),
		rng63: hdr[12], rng64: hdr[13], bndPeak: int64(hdr[14]),
	}
	for _, dst := range []*[]int64{&st.partSizes, &st.freeVec, &st.localPerPart} {
		if *dst, err = readI64Slice(r); err != nil {
			return nil, fmt.Errorf("dne: reading checkpoint vectors: %w", err)
		}
	}
	for _, dst := range []*[]int32{&st.owner, &st.eIdx, &st.aliveLen, &st.claimIter} {
		if *dst, err = readI32Slice(r); err != nil {
			return nil, fmt.Errorf("dne: reading checkpoint slabs: %w", err)
		}
	}
	if flags&2 == 0 {
		st.claimIter = nil
	}
	if st.partWords, err = readU64Slice(r); err != nil {
		return nil, fmt.Errorf("dne: reading checkpoint bitsets: %w", err)
	}
	nLive, err := readCount(r)
	if err != nil {
		return nil, fmt.Errorf("dne: reading checkpoint boundary: %w", err)
	}
	st.bndLive = make([]dsa.BoundaryEntry, nLive)
	for i := range st.bndLive {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("dne: reading checkpoint boundary: %w", err)
		}
		st.bndLive[i] = dsa.BoundaryEntry{
			V:     binary.LittleEndian.Uint32(b[0:]),
			Score: int32(binary.LittleEndian.Uint32(b[4:])),
		}
	}
	if st.bndDone, err = readU32Slice(r); err != nil {
		return nil, fmt.Errorf("dne: reading checkpoint boundary done set: %w", err)
	}
	want := digest.Sum64()
	got, err := readU64(br)
	if err != nil || got != want {
		return nil, fmt.Errorf("dne: checkpoint state digest mismatch (read err: %v)", err)
	}
	ckptObs.restored.Add(1)
	return st, nil
}

// Newest returns the newest superstep with a valid-looking state checkpoint
// for this rank and configuration (header check only; the digest is
// verified by LoadState), or -1. A rank with state checkpoints but no
// readable base also reports -1 — it could not restore from them.
func (c *Checkpointer) Newest() int64 {
	if _, err := os.Stat(c.basePath()); err != nil {
		return -1
	}
	best := int64(-1)
	for _, s := range c.listStates() {
		if s <= best {
			continue
		}
		if c.validHeader(s) {
			best = s
		}
	}
	return best
}

// listStates returns the superstep numbers of this rank's state files,
// ascending.
func (c *Checkpointer) listStates() []int64 {
	prefix := fmt.Sprintf("state-r%03d-s", c.rank)
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".dnc") {
			continue
		}
		s, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".dnc"), 10, 64)
		if err != nil || s < 0 {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validHeader cheaply checks magic/version/rank/size/fingerprint of one
// state file.
func (c *Checkpointer) validHeader(superstep int64) bool {
	f, err := os.Open(c.statePath(superstep))
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [6]uint64
	for i := range hdr {
		if hdr[i], err = readU64(f); err != nil {
			return false
		}
	}
	return hdr[0] == ckptStateMagic && hdr[1] == ckptVersion &&
		hdr[2] == uint64(c.rank) && hdr[3] == uint64(c.size) &&
		hdr[4] == c.fp && int64(hdr[5]) == superstep
}

// prune removes all but the newest ckptKeep state files.
func (c *Checkpointer) prune() {
	states := c.listStates()
	for len(states) > ckptKeep {
		os.Remove(c.statePath(states[0]))
		states = states[1:]
	}
}
