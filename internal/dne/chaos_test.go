package dne

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/gen"
)

func TestChaosTransportGivesIdenticalPartitioning(t *testing.T) {
	// Cross-sender message arrival order is scrambled by the Chaos wrapper;
	// the algorithm re-sorts by (From, Seq), so the result must be
	// bit-identical to the plain in-process run. This is the executable form
	// of the §4 claim that the protocol's semantics do not depend on
	// delivery timing.
	g := gen.RMAT(9, 8, 11)
	const parts = 5
	cfg := DefaultConfig()
	cfg.Seed = 3

	plain, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c := cluster.New(parts)
	owners := make([][]int32, parts)
	var mu sync.Mutex
	err = c.Run(func(comm cluster.Comm) error {
		w := cluster.NewChaos(comm, int64(comm.Rank())*131+7, 150*time.Microsecond)
		defer w.Close()
		owner, _, err := PartitionOver(context.Background(), w, g, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		owners[comm.Rank()] = owner
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	chaotic := owners[0]
	if chaotic == nil {
		t.Fatal("rank 0 returned no result")
	}
	for i := range chaotic {
		if chaotic[i] != plain.Partitioning.Owner[i] {
			t.Fatalf("edge %d: chaos owner %d != plain owner %d",
				i, chaotic[i], plain.Partitioning.Owner[i])
		}
	}
}
