package dne

import (
	"slices"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dsa"
)

// shuffleShard is the distributed ingest of the sharded data plane: every
// rank holds an arbitrary slice of the raw edge stream (a shard) and must
// end up holding exactly its 2D-grid share of the deduplicated graph. Each
// rank routes its local packed edges to their grid owners, exchanges the
// buckets with one chunked AllToAll, then sorts and deduplicates what it
// received. Duplicate edges land on the same owner (ownership is a pure
// function of the endpoints), so local deduplication is global
// deduplication — and ascending packed order is ascending canonical order,
// which makes the result identical to the share a whole-graph scan would
// have extracted.
//
// Peak memory per rank is O(|shard| + |received|). The returned peakBytes
// is the analytic transient peak of the exchange's own buffers (routed
// copies, received buckets, merged slice) — the shard itself is charged by
// the caller, which owns it.
func shuffleShard(comm cluster.Comm, gd grid, packed []uint64) (local []uint64, peakBytes int64) {
	p := comm.Size()
	// Counting pass, then fill: two passes over the shard instead of P
	// growing buffers.
	counts := make([]int, p)
	for _, k := range packed {
		counts[gd.edgeOwner(uint32(k>>32), uint32(k))]++
	}
	out := make([][]uint64, p)
	for q := 0; q < p; q++ {
		out[q] = make([]uint64, 0, counts[q])
	}
	for _, k := range packed {
		q := gd.edgeOwner(uint32(k>>32), uint32(k))
		out[q] = append(out[q], k)
	}
	in := cluster.AllToAllU64(comm, out)
	total := 0
	for _, v := range in {
		total += len(v)
	}
	local = make([]uint64, 0, total)
	for _, v := range in {
		local = append(local, v...)
	}
	dsa.SortU64(local)
	local = slices.Compact(local)
	// Routed copies + received buckets + merged slice, co-resident at the
	// exchange's peak. The shard itself is the caller's to account (it owns
	// the slice and releases it after the shuffle).
	peakBytes = 8 * int64(len(packed)+total+total)
	return local, peakBytes
}
