package dne

import (
	"container/heap"

	"github.com/distributedne/dne/internal/graph"
)

// boundary is the expansion process's priority queue of ⟨Drest(v), v⟩ pairs
// (Alg. 1). Scores are refreshed whenever a vertex re-enters the new-boundary
// set (the paper recomputes local Drest for every synced BPnew vertex, §4
// phase 4); refreshes are applied lazily by re-pushing and skipping stale
// heap entries on pop. Vertices that have been expanded never re-enter.
type boundary struct {
	h        scoreHeap
	score    map[graph.Vertex]int32
	expanded map[graph.Vertex]struct{}
	peak     int
}

type scoreEntry struct {
	v     graph.Vertex
	drest int32
}

type scoreHeap []scoreEntry

func (h scoreHeap) Len() int { return len(h) }
func (h scoreHeap) Less(i, j int) bool {
	if h[i].drest != h[j].drest {
		return h[i].drest < h[j].drest
	}
	return h[i].v < h[j].v // deterministic tie-break
}
func (h scoreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x any)   { *h = append(*h, x.(scoreEntry)) }
func (h *scoreHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newBoundary() *boundary {
	return &boundary{
		score:    make(map[graph.Vertex]int32),
		expanded: make(map[graph.Vertex]struct{}),
	}
}

// update inserts v with the given global Drest, or refreshes its score if v
// is already in the boundary. Expanded vertices are ignored.
func (b *boundary) update(v graph.Vertex, drest int32) {
	if _, done := b.expanded[v]; done {
		return
	}
	if old, ok := b.score[v]; ok && old == drest {
		return
	}
	b.score[v] = drest
	heap.Push(&b.h, scoreEntry{v: v, drest: drest})
	if len(b.score) > b.peak {
		b.peak = len(b.score)
	}
}

// len returns the number of live boundary vertices.
func (b *boundary) len() int { return len(b.score) }

// popK removes and returns up to k minimum-Drest vertices
// (popK-MinDrestVertices, Alg. 4), additionally stopping once the popped
// vertices' cumulative Drest reaches budget — the expected number of one-hop
// edges the batch will allocate — so a single multi-expansion superstep
// cannot overshoot the α cap (Eq. 2). At least one vertex is returned when
// the boundary is non-empty and budget > 0. The returned vertices are marked
// expanded.
func (b *boundary) popK(k int, budget int64) []graph.Vertex {
	out := make([]graph.Vertex, 0, k)
	var cum int64
	for len(out) < k && cum < budget && b.h.Len() > 0 {
		e := heap.Pop(&b.h).(scoreEntry)
		cur, live := b.score[e.v]
		if !live || cur != e.drest {
			continue // stale heap entry
		}
		delete(b.score, e.v)
		b.expanded[e.v] = struct{}{}
		out = append(out, e.v)
		cum += int64(e.drest)
	}
	return out
}

// memoryFootprint estimates the boundary's peak byte usage for the Fig-9
// memory score (map entry ≈ 16 bytes + heap entry 8 bytes).
func (b *boundary) memoryFootprint() int64 {
	return int64(b.peak) * 24
}
