package dne

// The expansion process's boundary — the priority queue of ⟨Drest(v), v⟩
// pairs of Alg. 1 / Alg. 4, with lazy score refresh and an expanded set —
// is dsa.Boundary: flat epoch-stamped slabs indexed by vertex id plus a
// monomorphic 4-ary min-heap, shared with the sequential NE partitioner
// (internal/nepart). The map/container-heap implementation it replaced is
// preserved as the differential-test reference in internal/dsa, which
// asserts identical pop order on randomized update/pop sequences.
