package dne

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/distributedne/dne/internal/dsa"
)

// countingSource wraps the seeded math/rand source and counts every draw, so
// a checkpoint can record the PRNG position and a restore can fast-forward
// to it — the stream itself is untouched, keeping seeded runs bit-identical
// to the pre-checkpointing code.
type countingSource struct {
	src      rand.Source64
	n63, n64 uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *countingSource) Int63() int64 {
	s.n63++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *countingSource) Uint64() uint64 {
	s.n64++
	return s.src.Uint64()
}

// Seed implements rand.Source.
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// skip replays n63 Int63 and n64 Uint64 draws on a freshly-seeded source,
// leaving it at the exact recorded position.
func (s *countingSource) skip(n63, n64 uint64) {
	for i := uint64(0); i < n63; i++ {
		s.src.Int63()
	}
	for i := uint64(0); i < n64; i++ {
		s.src.Uint64()
	}
	s.n63, s.n64 = n63, n64
}

// captureCkpt snapshots the superstep loop's mutable state. The slice
// fields alias the live slabs — WriteState streams them out synchronously
// before the loop mutates anything, so no copies are taken.
func captureCkpt(iter int, done bool, sg *subGraph, bnd *dsa.Boundary, src *countingSource,
	partSizes, freeVec, localPerPart []int64, epCount int64, res *machineResult) *machineCkpt {
	live, doneSet := bnd.Snapshot()
	return &machineCkpt{
		iter: int64(iter), done: done, epCount: epCount,
		seedCur: int64(sg.seedCur), conflicts: atomic.LoadInt64(&sg.conflicts),
		wasted: res.wasted, selections: res.selections,
		rng63: src.n63, rng64: src.n64, bndPeak: int64(bnd.Peak()),
		partSizes: partSizes, freeVec: freeVec, localPerPart: localPerPart,
		owner: sg.owner, eIdx: sg.eIdx, aliveLen: sg.aliveLen, partWords: sg.partWords,
		claimIter: sg.claimIter, bndLive: live, bndDone: doneSet,
	}
}

// restoreInto applies a loaded overlay onto a freshly-rebuilt subgraph,
// boundary, and PRNG. Every index read from the file is bounds-checked, so
// a corrupt-but-digest-valid checkpoint errors instead of corrupting
// memory. The derivable state — the target array (which allocTwoHop
// compacts in step with eIdx), the free-degree slab, and the free-edge
// count — is recomputed rather than trusted.
func (st *machineCkpt) restoreInto(sg *subGraph, bnd *dsa.Boundary, src *countingSource) error {
	nEdges := len(sg.edges)
	if len(st.owner) != nEdges || len(st.eIdx) != len(sg.eIdx) ||
		len(st.aliveLen) != len(sg.aliveLen) || len(st.partWords) != len(sg.partWords) {
		return errors.New("dne: checkpoint slabs do not match the rebuilt subgraph")
	}
	for _, o := range st.owner {
		if o < -1 || int(o) >= sg.numParts {
			return fmt.Errorf("dne: checkpoint owner %d out of range", o)
		}
	}
	for _, le := range st.eIdx {
		if le < 0 || int(le) >= nEdges {
			return fmt.Errorf("dne: checkpoint edge index %d out of range", le)
		}
	}
	for lv, a := range st.aliveLen {
		if a < 0 || int64(a) > sg.off[lv+1]-sg.off[lv] {
			return fmt.Errorf("dne: checkpoint alive length %d exceeds degree of local vertex %d", a, lv)
		}
	}
	if st.seedCur < 0 || (nEdges > 0 && st.seedCur >= int64(nEdges)) {
		return fmt.Errorf("dne: checkpoint seed cursor %d out of range", st.seedCur)
	}
	copy(sg.owner, st.owner)
	copy(sg.eIdx, st.eIdx)
	copy(sg.aliveLen, st.aliveLen)
	copy(sg.partWords, st.partWords)
	sg.seedCur = int(st.seedCur)
	sg.conflicts = st.conflicts
	if st.claimIter != nil {
		if sg.claimIter == nil || len(st.claimIter) != len(sg.claimIter) {
			return errors.New("dne: checkpoint claim tags do not match the run mode")
		}
		copy(sg.claimIter, st.claimIter)
	}
	// Rebuild target to mirror the checkpointed eIdx order slot for slot.
	n := len(sg.verts)
	for lv := 0; lv < n; lv++ {
		v := sg.verts[lv]
		for s := sg.off[lv]; s < sg.off[lv+1]; s++ {
			e := sg.edges[sg.eIdx[s]]
			if e.U == v {
				sg.target[s] = e.V
			} else {
				sg.target[s] = e.U
			}
		}
	}
	clear(sg.drest)
	var free int64
	for le, o := range sg.owner {
		if o != -1 {
			continue
		}
		free++
		e := sg.edges[le]
		if lu := sg.lid[e.U]; lu >= 0 {
			sg.drest[lu]++
		}
		if lv := sg.lid[e.V]; lv >= 0 {
			sg.drest[lv]++
		}
	}
	sg.freeEdges = free
	nV := uint32(len(sg.lid))
	for _, e := range st.bndLive {
		if e.V >= nV {
			return fmt.Errorf("dne: checkpoint boundary vertex %d out of range", e.V)
		}
	}
	for _, v := range st.bndDone {
		if v >= nV {
			return fmt.Errorf("dne: checkpoint expanded vertex %d out of range", v)
		}
	}
	bnd.Restore(st.bndLive, st.bndDone, int(st.bndPeak))
	src.skip(st.rng63, st.rng64)
	return nil
}
