package dne

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// genConnector serves one in-process cluster per mesh generation: each
// rank's Connect blocks until all P ranks have asked for the current
// generation, then a fresh cluster is built and shared — the in-process
// analogue of the TCP router's rejoin window.
type genConnector struct {
	mu           sync.Mutex
	cond         *sync.Cond
	p            int
	gen, waiting int
	cur          *cluster.Cluster
}

func newGenConnector(p int) *genConnector {
	g := &genConnector{p: p}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// connect returns (generation, cluster) once all P ranks of that generation
// have arrived.
func (g *genConnector) connect() (int, *cluster.Cluster) {
	g.mu.Lock()
	defer g.mu.Unlock()
	myGen := g.gen
	g.waiting++
	if g.waiting == g.p {
		g.cur = cluster.New(g.p)
		g.waiting = 0
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == myGen {
			g.cond.Wait()
		}
	}
	return myGen, g.cur
}

// genFault keys a fault schedule: inject cfg into this rank's communicator
// of this mesh generation.
type genFault struct{ gen, rank int }

// runFTCluster runs PartitionShardsFT on every rank over in-process
// clusters, injecting the scheduled faults, and returns rank 0's result
// plus the number of kills that actually fired.
func runFTCluster(t *testing.T, g *graph.Graph, parts int, cfg Config, schedule map[genFault]cluster.FaultConfig) (*ShardResult, int64) {
	t.Helper()
	conn := newGenConnector(parts)
	dirs := make([]string, parts)
	for r := range dirs {
		dirs[r] = t.TempDir()
	}
	var fired atomic.Int64
	var mu sync.Mutex
	var result *ShardResult
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for rank := 0; rank < parts; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ckpt, err := NewCheckpointer(dirs[rank], rank, parts, 1, cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			connect := func(context.Context) (cluster.Comm, error) {
				g, cl := conn.connect()
				comm := cl.Node(rank)
				if fc, ok := schedule[genFault{g, rank}]; ok {
					f := cluster.NewFault(comm, fc)
					// Mirror the TCP router's whole-mesh teardown: one dead
					// rank fails every survivor's next blocked receive.
					f.OnKill = func(err error) {
						fired.Add(1)
						cl.FailAll(err)
					}
					return f, nil
				}
				return comm, nil
			}
			res, _, err := PartitionShardsFT(context.Background(), cfg, FTOptions{
				Checkpoint: ckpt,
				Connect:    connect,
				LoadShard: func() (*graph.Shard, error) {
					return graph.ShardsOf(g, parts)[rank], nil
				},
				MaxRestarts: 4,
				Logf:        t.Logf,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			if res != nil {
				mu.Lock()
				result = res
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if result == nil {
		t.Fatal("rank 0 returned no result")
	}
	return result, fired.Load()
}

// referenceRun is the fault-free shard run: the checksum every recovered
// run must reproduce, plus per-rank op counts for placing precise kills.
func referenceRun(t *testing.T, g *graph.Graph, parts int, cfg Config) (uint64, []uint64) {
	t.Helper()
	shards := graph.ShardsOf(g, parts)
	c := cluster.New(parts)
	ops := make([]uint64, parts)
	var mu sync.Mutex
	var sum uint64
	err := c.Run(func(comm cluster.Comm) error {
		f := cluster.NewFault(comm, cluster.FaultConfig{}) // count ops, inject nothing
		res, _, err := PartitionShards(context.Background(), f, shards[comm.Rank()], cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		ops[comm.Rank()] = f.Ops()
		if res != nil {
			sum = res.Checksum()
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum, ops
}

func TestFTRecoverySingleKillBitIdentical(t *testing.T) {
	g := gen.RMAT(9, 8, 11)
	const parts = 4
	cfg := DefaultConfig()
	cfg.Seed = 5

	want, ops := referenceRun(t, g, parts, cfg)

	// Kill rank 2 at ~40% of its fault-free op count: mid-superstep-loop,
	// well past the first checkpoint and well before result collection.
	schedule := map[genFault]cluster.FaultConfig{
		{gen: 0, rank: 2}: {KillAtOp: ops[2] * 4 / 10},
	}
	res, fired := runFTCluster(t, g, parts, cfg, schedule)
	if fired == 0 {
		t.Fatal("scheduled kill never fired; the test exercised nothing")
	}
	if got := res.Checksum(); got != want {
		t.Fatalf("recovered checksum %#x != fault-free %#x", got, want)
	}
}

func TestFTRecoveryRepeatedKillsBitIdentical(t *testing.T) {
	g := gen.RMAT(9, 8, 11)
	const parts = 4
	cfg := DefaultConfig()
	cfg.Seed = 5

	want, ops := referenceRun(t, g, parts, cfg)

	// Two successive generations die: rank 1 early in the first mesh, then
	// rank 3 shortly after the resumed second mesh gets going. The third
	// mesh runs to completion.
	schedule := map[genFault]cluster.FaultConfig{
		{gen: 0, rank: 1}: {KillAtOp: ops[1] / 4},
		{gen: 1, rank: 3}: {KillAtOp: 300},
	}
	res, fired := runFTCluster(t, g, parts, cfg, schedule)
	if fired < 2 {
		t.Fatalf("only %d of 2 scheduled kills fired", fired)
	}
	if got := res.Checksum(); got != want {
		t.Fatalf("recovered checksum %#x != fault-free %#x", got, want)
	}
}

func TestFTRecoveryKillBeforeFirstCheckpoint(t *testing.T) {
	// A kill during the very first ops — before any checkpoint exists —
	// negotiates superstep -1 and restarts cleanly from the shards.
	g := gen.RMAT(8, 8, 3)
	const parts = 3
	cfg := DefaultConfig()
	cfg.Seed = 9

	want, _ := referenceRun(t, g, parts, cfg)
	schedule := map[genFault]cluster.FaultConfig{
		{gen: 0, rank: 1}: {KillAtOp: 2},
	}
	res, fired := runFTCluster(t, g, parts, cfg, schedule)
	if fired == 0 {
		t.Fatal("scheduled kill never fired")
	}
	if got := res.Checksum(); got != want {
		t.Fatalf("restarted checksum %#x != fault-free %#x", got, want)
	}
}
