package dne

import (
	"context"
	"sync"
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

func TestTheorem2Tightness(t *testing.T) {
	// The Theorem-2 construction: complete graph on n vertices plus a
	// disjoint ring, partitioned |P| = n(n−1)/2 ways. The adversarial
	// schedule of the proof drives RF toward the upper bound; any valid run
	// must stay under it, and on this graph the bound is within a small
	// factor of the worst achievable RF.
	n := 6
	g := gen.RingPlusComplete(n)
	parts := n * (n - 1) / 2
	cfg := DefaultConfig()
	cfg.SingleExpansion = true
	res, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	q := res.Partitioning.Measure(g)
	ub := bound.Theorem1(g.NumEdges(), int64(g.NumVertices()), parts)
	if q.ReplicationFactor > ub {
		t.Errorf("RF %.3f exceeds bound %.3f", q.ReplicationFactor, ub)
	}
	// The bound must be meaningful here: for this family
	// UB = (2n(n−1)+n)/(n(n−1)/2+n) → 4 from below as n grows.
	if ub >= 4 {
		t.Errorf("unexpected bound %.3f for ring+complete (asymptote is 4)", ub)
	}
}

func TestGridEdgeOwnerConsistentWithVertexProcs(t *testing.T) {
	// Property: the owner of any edge (u,v) must be in vertexProcs(u) and
	// vertexProcs(v) — otherwise multicasts would miss allocations.
	f := func(u, v uint32, pRaw uint8) bool {
		p := int(pRaw%63) + 2
		gd := newGrid(p)
		owner := gd.edgeOwner(u, v)
		inU, inV := false, false
		for _, pr := range gd.vertexProcs(u, nil) {
			if pr == owner {
				inU = true
			}
		}
		for _, pr := range gd.vertexProcs(v, nil) {
			if pr == owner {
				inV = true
			}
		}
		return inU && inV && owner >= 0 && owner < p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGridFanoutIsSqrtP(t *testing.T) {
	for _, p := range []int{4, 16, 64, 256} {
		gd := newGrid(p)
		procs := gd.vertexProcs(12345, nil)
		// Row ∪ column ≤ R + C − overlap; must be well below p.
		if len(procs) > gd.r+gd.c {
			t.Errorf("P=%d: fanout %d exceeds R+C=%d", p, len(procs), gd.r+gd.c)
		}
		if p >= 16 && len(procs) >= p {
			t.Errorf("P=%d: fanout %d not sub-linear", p, len(procs))
		}
	}
}

func TestSubgraphPartitionIsCompleteAndDisjoint(t *testing.T) {
	// The 2D-hash distribution must place every edge on exactly one machine.
	g := gen.RMAT(9, 8, 3)
	const p = 7
	gd := newGrid(p)
	seen := make([]int, g.NumEdges())
	for rank := 0; rank < p; rank++ {
		sg := buildSubGraph(g, gd, rank, p)
		for _, gi := range sg.globalIdx {
			seen[gi]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("edge %d held by %d machines", i, c)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := gen.RMAT(6, 4, 1)
	if _, err := Partition(g, 0, DefaultConfig()); err == nil {
		t.Error("numParts=0 must fail")
	}
	bad := DefaultConfig()
	bad.Alpha = 0.9
	if _, err := Partition(g, 2, bad); err == nil {
		t.Error("alpha<1 must fail")
	}
	bad = DefaultConfig()
	bad.Lambda = 2
	if _, err := Partition(g, 2, bad); err == nil {
		t.Error("lambda>1 must fail")
	}
	empty := graph.FromEdges(4, nil)
	if _, err := Partition(empty, 2, DefaultConfig()); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestMoreMachinesThanUsefulStillCompletes(t *testing.T) {
	// More partitions than a tiny graph can fill: expansion processes idle
	// out and the sweep (if any) finishes the job.
	g := graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	res, err := Partition(g, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestStarGraphSingleHub(t *testing.T) {
	// Every edge shares the hub: RF of the hub is |P| but leaves stay at 1;
	// the algorithm must terminate and respect the cap.
	g := gen.Star(1 << 10)
	res, err := Partition(g, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	q := res.Partitioning.Measure(g)
	// hub replicated ≤ 4 times: RF ≤ (|V| - 1 + 4)/|V| ≈ 1.003
	if q.ReplicationFactor > 1.01 {
		t.Errorf("star RF %.4f too high", q.ReplicationFactor)
	}
}

func TestTCPTransportMatchesInProcess(t *testing.T) {
	// The same graph, seed and machine count must give the identical
	// partitioning over the TCP transport — the algorithm cannot tell
	// transports apart.
	g := gen.RMAT(8, 8, 5)
	const parts = 3
	cfg := DefaultConfig()
	cfg.Seed = 17

	inproc, err := Partition(g, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addr, wait, err := cluster.StartRouter("127.0.0.1:0", parts)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([][]int32, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for rank := 0; rank < parts; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := cluster.DialTCP(addr, rank, parts)
			if err != nil {
				errs[rank] = err
				return
			}
			owner, _, err := PartitionOver(context.Background(), node, g, cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			owners[rank] = owner
			errs[rank] = node.Close()
		}(rank)
	}
	wg.Wait()
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	tcpOwner := owners[0]
	if tcpOwner == nil {
		t.Fatal("rank 0 returned no result")
	}
	pt := &partition.Partitioning{NumParts: parts, Owner: tcpOwner}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i := range tcpOwner {
		if tcpOwner[i] != inproc.Partitioning.Owner[i] {
			t.Fatalf("edge %d: TCP owner %d != in-process owner %d",
				i, tcpOwner[i], inproc.Partitioning.Owner[i])
		}
	}
}

func TestIterationCountsDropWithLambda(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	iters := func(lambda float64) int {
		cfg := DefaultConfig()
		cfg.Lambda = lambda
		res, err := Partition(g, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations
	}
	low, high := iters(0.01), iters(1.0)
	if high >= low {
		t.Errorf("iterations at λ=1 (%d) should be far below λ=0.01 (%d)", high, low)
	}
}

func TestMemAndCommReported(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	res, err := Partition(g, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemBytes <= 0 || res.CommBytes <= 0 || res.CommMessages <= 0 {
		t.Errorf("metrics missing: mem=%d comm=%d msgs=%d",
			res.MemBytes, res.CommBytes, res.CommMessages)
	}
	if res.MemScore(g.NumEdges()) <= 0 {
		t.Error("mem score missing")
	}
}
