package hyperpart

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/distributedne/dne/internal/bitset"
)

// Partitioner is implemented by every hypergraph partitioner here.
type Partitioner interface {
	Name() string
	Partition(h *Hypergraph, numParts int) (*Partitioning, error)
}

// Random assigns each hyperedge to a uniform random part — the hash
// baseline, directly analogous to 1D-hash edge partitioning.
type Random struct{ Seed int64 }

// Name implements Partitioner.
func (Random) Name() string { return "Rand" }

// Partition implements Partitioner.
func (r Random) Partition(h *Hypergraph, numParts int) (*Partitioning, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("hyperpart: numParts must be positive, got %d", numParts)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	p := &Partitioning{NumParts: numParts, Owner: make([]int32, h.NumHyperedges())}
	for i := range p.Owner {
		p.Owner[i] = int32(rng.Intn(numParts))
	}
	return p, nil
}

// Greedy is HDRF-style streaming for hyperedges: each hyperedge goes to the
// part maximizing (pins already replicated there) − balance penalty, with an
// α cap on per-part pin counts.
type Greedy struct {
	Alpha float64 // pin-balance cap, default 1.1
	Seed  int64
}

// Name implements Partitioner.
func (Greedy) Name() string { return "Greedy" }

// Partition implements Partitioner.
func (gr Greedy) Partition(h *Hypergraph, numParts int) (*Partitioning, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("hyperpart: numParts must be positive, got %d", numParts)
	}
	alpha := gr.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	capPins := int64(alpha * float64(h.NumPins()) / float64(numParts))
	if capPins < 1 {
		capPins = 1
	}
	sets := make([]bitset.Set, h.NumVertices())
	for v := range sets {
		sets[v] = bitset.New(numParts)
	}
	pinCounts := make([]int64, numParts)
	p := &Partitioning{NumParts: numParts, Owner: make([]int32, h.NumHyperedges())}
	rng := rand.New(rand.NewSource(gr.Seed))
	for _, i := range rng.Perm(h.NumHyperedges()) {
		pins := h.Pins(int32(i))
		best := int32(-1)
		bestScore := math.Inf(-1)
		for q := 0; q < numParts; q++ {
			if pinCounts[q]+int64(len(pins)) > capPins && !allAtCap(pinCounts, capPins) {
				continue
			}
			var gain float64
			for _, pin := range pins {
				if sets[pin].Has(q) {
					gain++
				}
			}
			load := float64(pinCounts[q]) / float64(capPins)
			if s := gain - float64(len(pins))*load*load; s > bestScore {
				bestScore = s
				best = int32(q)
			}
		}
		if best == -1 {
			best = leastLoaded(pinCounts)
		}
		p.Owner[i] = best
		pinCounts[best] += int64(len(pins))
		for _, pin := range pins {
			sets[pin].Set(int(best))
		}
	}
	return p, nil
}

func allAtCap(counts []int64, cap int64) bool {
	for _, c := range counts {
		if c < cap {
			return false
		}
	}
	return true
}

func leastLoaded(counts []int64) int32 {
	best := int32(0)
	for q := 1; q < len(counts); q++ {
		if counts[q] < counts[best] {
			best = int32(q)
		}
	}
	return best
}

// NE is the neighbor-expansion analog on hypergraphs: all |P| parts grow in
// round-robin "parallel" fashion from random seed hyperedges; each step a
// part claims the unclaimed incident hyperedge (sharing ≥1 pin with the
// part's covered vertices) that adds the fewest new replicas, re-seeding
// randomly when its frontier empties — exactly the §3.1 expansion with
// hyperedges in place of edges.
type NE struct {
	Alpha float64 // pin-balance cap, default 1.1
	Seed  int64
}

// Name implements Partitioner.
func (NE) Name() string { return "H-NE" }

// frontierItem scores a candidate hyperedge for a part.
type frontierItem struct {
	he    int32
	score int32 // new pins the claim would add (lower = better)
}

type frontierHeap []frontierItem

func (h frontierHeap) Len() int { return len(h) }
func (h frontierHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].he < h[j].he
}
func (h frontierHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *frontierHeap) Push(x any)   { *h = append(*h, x.(frontierItem)) }
func (h *frontierHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Partition implements Partitioner.
func (ne NE) Partition(h *Hypergraph, numParts int) (*Partitioning, error) {
	return ne.PartitionCtx(context.Background(), h, numParts)
}

// PartitionCtx is the expansion core; it polls ctx once per round-robin
// expansion round.
func (ne NE) PartitionCtx(ctx context.Context, h *Hypergraph, numParts int) (*Partitioning, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if numParts <= 0 {
		return nil, fmt.Errorf("hyperpart: numParts must be positive, got %d", numParts)
	}
	alpha := ne.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	m := h.NumHyperedges()
	if m == 0 {
		return &Partitioning{NumParts: numParts}, nil
	}
	capPins := int64(alpha * float64(h.NumPins()) / float64(numParts))
	if capPins < 1 {
		capPins = 1
	}
	rng := rand.New(rand.NewSource(ne.Seed))
	owner := make([]int32, m)
	for i := range owner {
		owner[i] = -1
	}
	covered := make([]bitset.Set, h.NumVertices())
	for v := range covered {
		covered[v] = bitset.New(numParts)
	}
	pinCounts := make([]int64, numParts)
	frontiers := make([]frontierHeap, numParts)
	remaining := int64(m)
	seedCursor := 0

	newPins := func(he int32, q int) int32 {
		var c int32
		for _, pin := range h.Pins(he) {
			if !covered[pin].Has(q) {
				c++
			}
		}
		return c
	}
	claim := func(he int32, q int) {
		owner[he] = int32(q)
		remaining--
		pinCounts[q] += int64(len(h.Pins(he)))
		for _, pin := range h.Pins(he) {
			if covered[pin].Has(q) {
				continue
			}
			covered[pin].Set(q)
			// New covered vertex: its other incident hyperedges join q's
			// frontier.
			for _, inc := range h.Incident(pin) {
				if owner[inc] == -1 && inc != he {
					heap.Push(&frontiers[q], frontierItem{he: inc, score: newPins(inc, q)})
				}
			}
		}
	}
	seed := func(q int) bool {
		// Rotating scan for an unclaimed hyperedge, starting at a random
		// offset (the paper's getRandomVertex analog).
		if remaining == 0 {
			return false
		}
		start := (seedCursor + rng.Intn(m)) % m
		for k := 0; k < m; k++ {
			he := int32((start + k) % m)
			if owner[he] == -1 {
				seedCursor = int(he) + 1
				claim(he, q)
				return true
			}
		}
		return false
	}

	// Round-robin parallel expansion: one claim per part per round, exactly
	// the single-expansion schedule of Algorithm 1.
	active := make([]bool, numParts)
	for q := range active {
		active[q] = true
	}
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		progressed := false
		for q := 0; q < numParts; q++ {
			if !active[q] {
				continue
			}
			if pinCounts[q] >= capPins {
				active[q] = false
				continue
			}
			// Pop the lowest-new-replica frontier hyperedge, skipping stale
			// (already claimed) entries and rescoring stale scores lazily.
			var claimed bool
			for frontiers[q].Len() > 0 {
				it := heap.Pop(&frontiers[q]).(frontierItem)
				if owner[it.he] != -1 {
					continue
				}
				if s := newPins(it.he, q); s < it.score {
					// Coverage grew since this entry was scored; requeue with
					// the fresher (lower) score — lazy rescoring keeps the
					// pop order faithful to the current frontier.
					heap.Push(&frontiers[q], frontierItem{he: it.he, score: s})
					continue
				}
				claim(it.he, q)
				claimed = true
				break
			}
			if !claimed {
				if !seed(q) {
					active[q] = false
					continue
				}
			}
			progressed = true
		}
		if !progressed {
			// All parts capped with hyperedges left: sweep the leftovers to
			// the least pin-loaded parts (the leftover sweep of DESIGN.md).
			for he := int32(0); he < int32(m); he++ {
				if owner[he] == -1 {
					q := leastLoaded(pinCounts)
					claim(he, int(q))
				}
			}
		}
	}
	return &Partitioning{NumParts: numParts, Owner: owner}, nil
}
