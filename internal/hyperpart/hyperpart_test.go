package hyperpart

import (
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestBuildDedupsAndDrops(t *testing.T) {
	h := Build(0, [][]graph.Vertex{
		{3, 1, 3, 1}, // dup pins
		{},           // dropped
		{7},
	})
	if h.NumHyperedges() != 2 {
		t.Fatalf("hyperedges %d, want 2", h.NumHyperedges())
	}
	if h.NumVertices() != 8 {
		t.Fatalf("vertices %d, want 8 (inferred)", h.NumVertices())
	}
	pins := h.Pins(0)
	if len(pins) != 2 || pins[0] != 1 || pins[1] != 3 {
		t.Fatalf("pins %v", pins)
	}
	if h.Degree(3) != 1 || h.Degree(7) != 1 || h.Degree(0) != 0 {
		t.Fatal("degree wrong")
	}
	if inc := h.Incident(1); len(inc) != 1 || inc[0] != 0 {
		t.Fatalf("incident %v", inc)
	}
}

func TestCliqueExpansionSizes(t *testing.T) {
	h := Build(0, [][]graph.Vertex{{0, 1, 2}, {2, 3}})
	g := CliqueExpansion(h)
	// Triangle (3 edges) + edge (1) = 4 distinct edges.
	if g.NumEdges() != 4 {
		t.Fatalf("clique expansion edges %d, want 4", g.NumEdges())
	}
}

func TestStarExpansionSizes(t *testing.T) {
	h := Build(0, [][]graph.Vertex{{0, 1, 2}, {2, 3}})
	g, first := StarExpansion(h)
	if g.NumEdges() != 5 { // 3 + 2 pins
		t.Fatalf("star expansion edges %d, want 5", g.NumEdges())
	}
	if first != 4 {
		t.Fatalf("first aux %d, want 4", first)
	}
	if g.NumVertices() != 6 { // 4 original + 2 hubs
		t.Fatalf("star vertices %d, want 6", g.NumVertices())
	}
	if g.Degree(first) != 3 || g.Degree(first+1) != 2 {
		t.Fatal("hub degrees wrong")
	}
}

func testHG(seed int64) *Hypergraph {
	return RandomHypergraph(1<<11, 4000, 5, seed)
}

func TestAllPartitionersProduceValidPartitionings(t *testing.T) {
	h := testHG(1)
	for _, pr := range []Partitioner{Random{Seed: 1}, Greedy{Seed: 1}, NE{Seed: 1}} {
		for _, parts := range []int{2, 8, 17} {
			pt, err := pr.Partition(h, parts)
			if err != nil {
				t.Fatalf("%s P=%d: %v", pr.Name(), parts, err)
			}
			if err := pt.Validate(h); err != nil {
				t.Fatalf("%s P=%d: %v", pr.Name(), parts, err)
			}
		}
	}
}

func TestPartitionerValidation(t *testing.T) {
	h := testHG(2)
	for _, pr := range []Partitioner{Random{}, Greedy{}, NE{}} {
		if _, err := pr.Partition(h, 0); err == nil {
			t.Errorf("%s: numParts=0 must fail", pr.Name())
		}
	}
}

func TestQualityOrderingNEBeatsGreedyBeatsRandom(t *testing.T) {
	// The whole point of lifting neighbor expansion to hypergraphs: on a
	// skewed hypergraph, H-NE ≤ Greedy < Random in replication factor.
	h := testHG(3)
	const parts = 16
	rf := func(pr Partitioner) float64 {
		pt, err := pr.Partition(h, parts)
		if err != nil {
			t.Fatal(err)
		}
		return pt.Measure(h).ReplicationFactor
	}
	rnd := rf(Random{Seed: 4})
	grd := rf(Greedy{Seed: 4})
	ne := rf(NE{Seed: 4})
	if grd >= rnd*0.9 {
		t.Errorf("Greedy RF %.3f not clearly below Random %.3f", grd, rnd)
	}
	if ne >= rnd*0.9 {
		t.Errorf("H-NE RF %.3f not clearly below Random %.3f", ne, rnd)
	}
	t.Logf("RF: Random %.3f Greedy %.3f H-NE %.3f", rnd, grd, ne)
}

func TestNEPinBalanceWithinAlpha(t *testing.T) {
	h := testHG(5)
	pt, err := NE{Alpha: 1.1, Seed: 6}.Partition(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(h)
	// Cap is on pins; one oversized hyperedge can overshoot by its pin count,
	// and the leftover sweep can add more — allow α plus slack.
	if q.PinBalance > 1.3 {
		t.Errorf("pin balance %.3f too loose", q.PinBalance)
	}
}

func TestTwoUniformMatchesEdgePartitioningMetrics(t *testing.T) {
	// On a 2-uniform hypergraph (a plain graph), the hypergraph replication
	// metric must equal the edge-partitioning replicas for the same
	// assignment.
	g := gen.RMAT(9, 8, 7)
	h := FromGraph(g)
	if int64(h.NumHyperedges()) != g.NumEdges() {
		t.Fatalf("hyperedges %d != edges %d", h.NumHyperedges(), g.NumEdges())
	}
	ept, err := hashpart.Random{Seed: 9}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	hpt := &Partitioning{NumParts: 8, Owner: ept.Owner}
	hq := hpt.Measure(h)
	eq := ept.Measure(g)
	if hq.Replicas != eq.Replicas {
		t.Fatalf("hypergraph replicas %d != graph replicas %d", hq.Replicas, eq.Replicas)
	}
	if hq.EdgeBalance != eq.EdgeBalance {
		t.Fatalf("edge balance %.4f != %.4f", hq.EdgeBalance, eq.EdgeBalance)
	}
}

func TestNEDeterministicForSeed(t *testing.T) {
	h := testHG(8)
	a, _ := NE{Seed: 11}.Partition(h, 8)
	b, _ := NE{Seed: 11}.Partition(h, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("hyperedge %d: %d != %d", i, a.Owner[i], b.Owner[i])
		}
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := Build(4, nil)
	pt, err := NE{Seed: 1}.Partition(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(h); err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(h)
	if q.ReplicationFactor != 0 || q.Replicas != 0 {
		t.Fatalf("empty quality %+v", q)
	}
}

func TestQuickBuildIncidenceConsistent(t *testing.T) {
	// Property: for every hyperedge i and pin v, i appears in Incident(v),
	// and Σ degrees == Σ pins.
	f := func(raw [][3]uint8, extra []uint8) bool {
		hes := make([][]graph.Vertex, 0, len(raw))
		for k, r := range raw {
			pins := []graph.Vertex{graph.Vertex(r[0]), graph.Vertex(r[1]), graph.Vertex(r[2])}
			if k < len(extra) {
				pins = append(pins, graph.Vertex(extra[k]))
			}
			hes = append(hes, pins)
		}
		h := Build(0, hes)
		var degSum int64
		for v := uint32(0); v < h.NumVertices(); v++ {
			degSum += h.Degree(v)
		}
		if degSum != h.NumPins() {
			return false
		}
		for i := 0; i < h.NumHyperedges(); i++ {
			for _, pin := range h.Pins(int32(i)) {
				found := false
				for _, inc := range h.Incident(pin) {
					if inc == int32(i) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
