package hyperpart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	// hyperne bridges the hypergraph-native NE onto ordinary graphs: the
	// graph is viewed as a 2-uniform hypergraph (one hyperedge per edge, in
	// canonical order), so the hyperedge assignment IS the edge assignment.
	methods.Register(methods.Descriptor{
		Name:    "hyperne",
		Aliases: []string{"h-ne"},
		Summary: "hypergraph neighbor expansion applied to the graph's 2-uniform hypergraph view (§8 extension)",
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "pin-balance cap α ≥ 1", Min: 1, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "H-NE", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				hp, err := NE{
					Alpha: spec.Float("alpha", 1.1),
					Seed:  spec.Seed,
				}.PartitionCtx(ctx, FromGraph(g), spec.NumParts)
				if err != nil {
					return nil, err
				}
				p := partition.New(spec.NumParts, g.NumEdges())
				copy(p.Owner, hp.Owner)
				return p, nil
			}}
		},
	})
}
