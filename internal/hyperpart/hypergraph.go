// Package hyperpart extends edge partitioning to hypergraphs — the second
// future-work direction of §8 (citing the Social Hash Partitioner, Kabiljo
// et al. VLDB'17). A hyperedge connects any number of vertices ("pins");
// partitioning assigns each hyperedge to exactly one part and replicates
// vertices, so the quality metric is the same replication factor as Eq. (1)
// with |V(Ep)| counting pins.
//
// Three partitioners are provided: Random (hash baseline), Greedy (HDRF-like
// streaming) and NE (the neighbor-expansion analog: every part grows from a
// seed hyperedge by repeatedly claiming the incident hyperedge that adds the
// fewest new replicas — the paper's parallel-expansion heuristic lifted to
// hypergraphs).
package hyperpart

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
)

// Hypergraph is an immutable hypergraph in CSR form: hyperedge i's pins are
// Pins(i); vertex v's incident hyperedges are Incident(v).
type Hypergraph struct {
	n uint32 // number of vertices

	// Hyperedge -> pins CSR.
	edgeOff []int64
	pins    []graph.Vertex

	// Vertex -> incident hyperedges CSR.
	vertOff  []int64
	incident []int32
}

// Build constructs a hypergraph from pin lists. Duplicate pins within a
// hyperedge are removed; empty hyperedges are dropped; numVertices may be 0
// to infer max pin + 1.
func Build(numVertices uint32, hyperedges [][]graph.Vertex) *Hypergraph {
	h := &Hypergraph{}
	maxV := uint32(0)
	cleaned := make([][]graph.Vertex, 0, len(hyperedges))
	for _, he := range hyperedges {
		pins := append([]graph.Vertex(nil), he...)
		sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
		out := pins[:0]
		for i, p := range pins {
			if i == 0 || p != pins[i-1] {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			continue
		}
		if last := out[len(out)-1]; last >= maxV {
			maxV = last + 1
		}
		cleaned = append(cleaned, out)
	}
	if numVertices == 0 {
		numVertices = maxV
	} else if maxV > numVertices {
		panic(fmt.Sprintf("hyperpart: pin %d exceeds numVertices %d", maxV-1, numVertices))
	}
	h.n = numVertices
	h.edgeOff = make([]int64, len(cleaned)+1)
	for i, pins := range cleaned {
		h.edgeOff[i+1] = h.edgeOff[i] + int64(len(pins))
	}
	h.pins = make([]graph.Vertex, h.edgeOff[len(cleaned)])
	for i, pins := range cleaned {
		copy(h.pins[h.edgeOff[i]:], pins)
	}
	// Vertex incidence CSR.
	h.vertOff = make([]int64, numVertices+1)
	for _, p := range h.pins {
		h.vertOff[p+1]++
	}
	for v := uint32(0); v < numVertices; v++ {
		h.vertOff[v+1] += h.vertOff[v]
	}
	h.incident = make([]int32, len(h.pins))
	cursor := make([]int64, numVertices)
	for i := range cleaned {
		for _, p := range h.Pins(int32(i)) {
			h.incident[h.vertOff[p]+cursor[p]] = int32(i)
			cursor[p]++
		}
	}
	return h
}

// FromGraph views an ordinary graph as a 2-uniform hypergraph (one 2-pin
// hyperedge per edge, same order as g.Edges()); edge partitioning is then
// the special case, which the tests exploit.
func FromGraph(g *graph.Graph) *Hypergraph {
	hes := make([][]graph.Vertex, g.NumEdges())
	for i, e := range g.Edges() {
		hes[i] = []graph.Vertex{e.U, e.V}
	}
	return Build(g.NumVertices(), hes)
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() uint32 { return h.n }

// NumHyperedges returns the number of hyperedges.
func (h *Hypergraph) NumHyperedges() int { return len(h.edgeOff) - 1 }

// NumPins returns the total pin count Σ_e |e|.
func (h *Hypergraph) NumPins() int64 { return int64(len(h.pins)) }

// Pins returns hyperedge i's pins, ascending. Callers must not mutate.
func (h *Hypergraph) Pins(i int32) []graph.Vertex {
	return h.pins[h.edgeOff[i]:h.edgeOff[i+1]]
}

// Incident returns the hyperedges containing v. Callers must not mutate.
func (h *Hypergraph) Incident(v graph.Vertex) []int32 {
	return h.incident[h.vertOff[v]:h.vertOff[v+1]]
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v graph.Vertex) int64 {
	return h.vertOff[v+1] - h.vertOff[v]
}

// CliqueExpansion converts h to an ordinary graph by connecting every pin
// pair within each hyperedge (duplicates are compacted by graph.FromEdges).
// Pin counts beyond a few hundred make this quadratic blow-up the reason
// hypergraph-native partitioning exists; the function is still exact.
func CliqueExpansion(h *Hypergraph) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < h.NumHyperedges(); i++ {
		pins := h.Pins(int32(i))
		for a := 0; a < len(pins); a++ {
			for b := a + 1; b < len(pins); b++ {
				edges = append(edges, graph.Edge{U: pins[a], V: pins[b]})
			}
		}
	}
	return graph.FromEdges(h.n, edges)
}

// StarExpansion converts h to an ordinary graph by introducing one auxiliary
// hub vertex per hyperedge connected to each pin. It returns the graph and
// the id of the first auxiliary vertex (auxiliary i represents hyperedge i).
func StarExpansion(h *Hypergraph) (*graph.Graph, graph.Vertex) {
	first := h.n
	var edges []graph.Edge
	for i := 0; i < h.NumHyperedges(); i++ {
		hub := first + graph.Vertex(i)
		for _, p := range h.Pins(int32(i)) {
			edges = append(edges, graph.Edge{U: p, V: hub})
		}
	}
	return graph.FromEdges(h.n+uint32(h.NumHyperedges()), edges), first
}

// Partitioning assigns each hyperedge to a part.
type Partitioning struct {
	NumParts int
	Owner    []int32 // len == NumHyperedges()
}

// Validate checks completeness and range.
func (p *Partitioning) Validate(h *Hypergraph) error {
	if len(p.Owner) != h.NumHyperedges() {
		return fmt.Errorf("hyperpart: owner length %d != #hyperedges %d", len(p.Owner), h.NumHyperedges())
	}
	for i, o := range p.Owner {
		if o < 0 || int(o) >= p.NumParts {
			return fmt.Errorf("hyperpart: hyperedge %d has invalid owner %d", i, o)
		}
	}
	return nil
}

// Quality bundles the hypergraph partitioning metrics.
type Quality struct {
	// ReplicationFactor is Σ_p |V(Ep)| / |covered vertices| — the fanout
	// metric of the Social Hash Partitioner.
	ReplicationFactor float64
	Replicas          int64
	// PinBalance is max/mean of per-part pin counts (compute cost ∝ pins).
	PinBalance float64
	// EdgeBalance is max/mean of per-part hyperedge counts.
	EdgeBalance float64
}

// Measure computes Quality over h.
func (p *Partitioning) Measure(h *Hypergraph) Quality {
	sets := make([]bitset.Set, h.n)
	for v := range sets {
		sets[v] = bitset.New(p.NumParts)
	}
	pinCounts := make([]int64, p.NumParts)
	edgeCounts := make([]int64, p.NumParts)
	for i, o := range p.Owner {
		edgeCounts[o]++
		for _, pin := range h.Pins(int32(i)) {
			sets[pin].Set(int(o))
			pinCounts[o]++
		}
	}
	var replicas, covered int64
	for v := uint32(0); v < h.n; v++ {
		c := int64(sets[v].Count())
		replicas += c
		if c > 0 {
			covered++
		}
	}
	q := Quality{Replicas: replicas}
	if covered > 0 {
		q.ReplicationFactor = float64(replicas) / float64(covered)
	}
	q.PinBalance = balanceOf(pinCounts)
	q.EdgeBalance = balanceOf(edgeCounts)
	return q
}

func balanceOf(xs []int64) float64 {
	var sum, max int64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(xs)))
}

// RandomHypergraph generates a skewed random hypergraph: m hyperedges whose
// pin counts are 2 + Poisson-ish(meanPins−2) and whose pins favor low-id
// vertices with a Zipf-like popularity (mirroring how social-hash workloads
// group skewed entities).
func RandomHypergraph(n uint32, m int, meanPins float64, seed int64) *Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(n-1))
	hes := make([][]graph.Vertex, m)
	for i := range hes {
		k := 2
		for extra := meanPins - 2; extra > 0; extra-- {
			if rng.Float64() < minF(extra, 1) {
				k++
			}
		}
		pins := make([]graph.Vertex, 0, k)
		for len(pins) < k {
			// 60% of pins follow the Zipf popularity (celebrities), the rest
			// are uniform; all-Zipf membership would collapse most
			// hyperedges onto a handful of vertices.
			if rng.Float64() < 0.6 {
				pins = append(pins, graph.Vertex(zipf.Uint64()))
			} else {
				pins = append(pins, graph.Vertex(rng.Intn(int(n))))
			}
		}
		hes[i] = pins
	}
	return Build(n, hes)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
