package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/distributedne/dne/internal/partition"
)

// State persistence: a versioned binary encoding of the placement slabs so
// ingestion survives restarts without replaying the event stream. Follows
// the repository's "DNS1"/"DNP1" header idiom ("DLS1").
//
// Layout (all little-endian):
//
//	magic u32, version u32, numParts u32, numVertices u32
//	numEdges u64, events u64, moved u64, migratedBytes u64
//	alpha f64bits, balanceWeight f64bits, seed u64
//	sizes numParts × u64
//	deg slab numVertices × u32
//	counts slab numVertices×numParts × u32
//	checksum u64 (FNV-64a of everything before it)
//
// The ReplicaSets bit view and the replica counter are derived from the
// counts slab on load, exactly as the live path maintains them.

// stateMagic identifies the live-state format ("DLS1").
const stateMagic = 0x444c5331

// stateVersion is bumped on incompatible layout changes.
const stateVersion = 1

// maxPrealloc caps slice preallocation driven by untrusted header counts.
const maxPrealloc = 1 << 20

func capCount(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// hashWriter tees writes through the running FNV-64a state digest.
type hashWriter struct {
	w   io.Writer
	sum uint64
}

func (hw *hashWriter) Write(p []byte) (int, error) {
	hw.sum = fnvWrite(hw.sum, p)
	return hw.w.Write(p)
}

// WriteState serializes st.
func WriteState(w io.Writer, st *State) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hw := &hashWriter{w: bw, sum: fnvNew()}
	var hdr [16 + 32 + 24]byte
	binary.LittleEndian.PutUint32(hdr[0:], stateMagic)
	binary.LittleEndian.PutUint32(hdr[4:], stateVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(st.cfg.NumParts))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(st.deg)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(st.numEdges))
	binary.LittleEndian.PutUint64(hdr[24:], st.events)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(st.moved))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(st.migratedBytes))
	binary.LittleEndian.PutUint64(hdr[48:], math.Float64bits(st.cfg.Alpha))
	binary.LittleEndian.PutUint64(hdr[56:], math.Float64bits(st.cfg.BalanceWeight))
	binary.LittleEndian.PutUint64(hdr[64:], uint64(st.cfg.Seed))
	if _, err := hw.Write(hdr[:]); err != nil {
		return err
	}
	var b8 [8]byte
	for _, s := range st.sizes {
		binary.LittleEndian.PutUint64(b8[:], uint64(s))
		if _, err := hw.Write(b8[:]); err != nil {
			return err
		}
	}
	if err := writeU32s(hw, st.deg); err != nil {
		return err
	}
	if err := writeU32s(hw, st.counts); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b8[:], hw.sum)
	if _, err := bw.Write(b8[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeU32s(w io.Writer, xs []uint32) error {
	var page [8192 * 4]byte
	for len(xs) > 0 {
		n := min(len(xs), 8192)
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint32(page[i*4:], x)
		}
		if _, err := w.Write(page[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

// hashReader tees reads through the running FNV-64a digest.
type hashReader struct {
	r   io.Reader
	sum uint64
}

func (hr *hashReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	hr.sum = fnvWrite(hr.sum, p[:n])
	return n, err
}

// ReadState reconstructs a State from the format written by WriteState.
// Every count is validated and the payload digest checked, so a truncated
// or hostile file errors instead of producing inconsistent placement state.
func ReadState(r io.Reader) (*State, error) {
	hr := &hashReader{r: bufio.NewReaderSize(r, 1<<16), sum: fnvNew()}
	var hdr [16 + 32 + 24]byte
	if _, err := io.ReadFull(hr, hdr[:]); err != nil {
		return nil, fmt.Errorf("live: reading state header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != stateMagic {
		return nil, fmt.Errorf("live: bad state magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != stateVersion {
		return nil, fmt.Errorf("live: unsupported state version %d (want %d)", v, stateVersion)
	}
	numParts := binary.LittleEndian.Uint32(hdr[8:])
	numVertices := binary.LittleEndian.Uint32(hdr[12:])
	numEdges := binary.LittleEndian.Uint64(hdr[16:])
	events := binary.LittleEndian.Uint64(hdr[24:])
	moved := binary.LittleEndian.Uint64(hdr[32:])
	migratedBytes := binary.LittleEndian.Uint64(hdr[40:])
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(hdr[48:]))
	weight := math.Float64frombits(binary.LittleEndian.Uint64(hdr[56:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[64:]))
	if numParts == 0 || numParts > maxParts {
		return nil, fmt.Errorf("live: state partition count %d out of range (0,%d]", numParts, maxParts)
	}
	if math.IsNaN(alpha) || alpha < 1 || math.IsNaN(weight) {
		return nil, fmt.Errorf("live: state declares invalid alpha %g / weight %g", alpha, weight)
	}
	st, err := NewState(Config{NumParts: int(numParts), Alpha: alpha, BalanceWeight: weight, Seed: seed})
	if err != nil {
		return nil, err
	}
	st.numEdges = int64(numEdges)
	st.events = events
	st.moved = int64(moved)
	st.migratedBytes = int64(migratedBytes)

	var b8 [8]byte
	var sizeSum int64
	for q := range st.sizes {
		if _, err := io.ReadFull(hr, b8[:]); err != nil {
			return nil, fmt.Errorf("live: reading partition sizes: %w", err)
		}
		s := int64(binary.LittleEndian.Uint64(b8[:]))
		if s < 0 {
			return nil, fmt.Errorf("live: partition %d declares negative size", q)
		}
		st.sizes[q] = s
		sizeSum += s
	}
	if sizeSum != st.numEdges {
		return nil, fmt.Errorf("live: partition sizes sum to %d, header declares %d edges", sizeSum, numEdges)
	}

	st.deg, err = readU32Slab(hr, uint64(numVertices), "degree")
	if err != nil {
		return nil, err
	}
	st.counts, err = readU32Slab(hr, uint64(numVertices)*uint64(numParts), "incidence")
	if err != nil {
		return nil, err
	}
	want := hr.sum
	if _, err := io.ReadFull(hr.r, b8[:]); err != nil {
		return nil, fmt.Errorf("live: reading state checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(b8[:]); got != want {
		return nil, fmt.Errorf("live: state checksum %#x does not match payload %#x", got, want)
	}

	// Derive the bit view and counters, validating row/degree agreement.
	st.reps = partition.NewReplicaSets(int(numParts), numVertices)
	var degSum int64
	for v := uint32(0); v < numVertices; v++ {
		var rowSum uint32
		row := st.counts[int(v)*int(numParts) : (int(v)+1)*int(numParts)]
		for q, c := range row {
			if c > 0 {
				st.replicas++
				st.reps.Set(v, q)
				rowSum += c
			}
		}
		if rowSum != st.deg[v] {
			return nil, fmt.Errorf("live: vertex %d degree %d != incidence sum %d", v, st.deg[v], rowSum)
		}
		degSum += int64(st.deg[v])
	}
	if degSum != 2*st.numEdges {
		return nil, fmt.Errorf("live: degree sum %d != 2×%d edges", degSum, st.numEdges)
	}
	return st, nil
}

func readU32Slab(r io.Reader, count uint64, what string) ([]uint32, error) {
	out := make([]uint32, 0, capCount(count))
	var page [8192 * 4]byte
	var done uint64
	for done < count {
		chunk := min(uint64(8192), count-done)
		b := page[:chunk*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("live: reading %s slab: %w", what, err)
		}
		for i := uint64(0); i < chunk; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[i*4:]))
		}
		done += chunk
	}
	return out, nil
}
