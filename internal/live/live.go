package live

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/store"
)

// logNumVertices is the vertex bound declared by the per-partition logs:
// the live vertex universe grows with the stream, so logs are unbounded.
const logNumVertices = ^uint32(0)

// defaultMinOverlay is the smallest auto-compaction threshold: the overlay
// may always grow to this many mutations before a compaction triggers.
const defaultMinOverlay = 1 << 16

// Live is the dynamic-graph subsystem rooted in one directory:
//
//	state.dls       placement state (DLS1), written on checkpoints
//	part-NNNN.esh   per-partition append-only insertion log (EShard)
//	dead-NNNN.esh   per-partition append-only tombstone log (EShard)
//
// Mutations (Apply, Rebalance, Compact) serialize on one mutex; queries
// never take it — they pin the current Epoch with one atomic load and run
// against that immutable snapshot, so readers never block and never
// observe a partial batch.
type Live struct {
	dir string

	mu      sync.Mutex
	st      *State
	base    *store.Store
	pending *store.Delta // writer-side overlay vs base (shares maps with view)
	view    *store.Epoch // writer-side view (base, pending); mu-guarded
	adds    []*graph.ShardWriter
	dead    []*graph.ShardWriter
	seq     uint64
	ncomp   int64 // compactions performed
	closed  bool

	epoch       atomic.Pointer[store.Epoch] // published snapshot; readers load and go
	lastPublish atomic.Int64                // UnixNano of the last published epoch

	recovery Recovery // what Open had to repair; immutable afterwards

	// Maintenance duration histograms, attached by RegisterMetrics; nil
	// (the default) records nothing.
	obsApply     *obs.Histogram
	obsCompact   *obs.Histogram
	obsRebalance *obs.Histogram
}

// MaxOverlay returns the overlay mutation count that triggers an automatic
// compaction at the end of an Apply batch: an eighth of the base (so
// compaction work amortizes geometrically), floored at defaultMinOverlay.
func (l *Live) maxOverlay() int64 {
	return max(defaultMinOverlay, l.base.NumEdges()/8)
}

// Open opens (or creates) a live graph in dir. If placement state was
// saved, cfg must agree with it on NumParts (zero NumParts adopts the
// saved config); without a state file the logs alone rebuild the state, so
// a crash between checkpoints loses no durable mutation.
func Open(dir string, cfg Config) (*Live, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var st *State
	statePath := filepath.Join(dir, "state.dls")
	if f, err := os.Open(statePath); err == nil {
		st, err = func() (*State, error) { defer f.Close(); return ReadState(f) }()
		if err != nil {
			return nil, err
		}
		if cfg.NumParts != 0 && cfg.NumParts != st.cfg.NumParts {
			return nil, fmt.Errorf("live: state holds %d partitions, config asks %d", st.cfg.NumParts, cfg.NumParts)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		if cfg.NumParts == 0 {
			// No checkpoint and no requested count: the logs themselves
			// carry it (each log's shard header declares Count).
			if n, err := countLogs(dir); err != nil {
				return nil, err
			} else if n > 0 {
				cfg.NumParts = n
			}
		}
		if st, err = NewState(cfg); err != nil {
			return nil, err
		}
	}
	numParts := st.cfg.NumParts

	// Crash consistency first: a process SIGKILLed mid-append leaves a log
	// with a torn tail (partial frame, no terminator). Truncate each such
	// log back to its last valid chunk and reseal it before replaying —
	// un-fsynced appends were never durable, so dropping them is within the
	// durability contract.
	rec, err := recoverLogs(dir, numParts)
	if err != nil {
		return nil, err
	}

	// Replay the logs: per partition, live edges are insertions minus
	// tombstones (counts alternate 1/0 per edge — an edge is tombstoned
	// only while live, re-inserted only while dead).
	packed := make([][]uint64, numParts)
	var maxV graph.Vertex
	for q := 0; q < numParts; q++ {
		counts := make(map[uint64]int64)
		if err := replayLog(logPath(dir, "part", q), func(k uint64) { counts[k]++ }); err != nil {
			return nil, err
		}
		if err := replayLog(logPath(dir, "dead", q), func(k uint64) { counts[k]-- }); err != nil {
			return nil, err
		}
		for k, c := range counts {
			if c == 1 {
				packed[q] = append(packed[q], k)
			} else if c != 0 {
				return nil, fmt.Errorf("live: partition %d log count %d for edge %#x (want 0 or 1)", q, c, k)
			}
		}
		slices.Sort(packed[q])
		if n := len(packed[q]); n > 0 {
			if v := graph.Vertex(packed[q][n-1]); v >= maxV {
				maxV = v + 1
			}
		}
	}

	rebuildFromLogs := func() {
		for q, ks := range packed {
			for _, k := range ks {
				e := graph.UnpackEdge(k)
				st.grow(max(e.U, e.V))
				st.addIncidence(e.U, int32(q))
				st.addIncidence(e.V, int32(q))
				st.sizes[q]++
				st.numEdges++
			}
		}
	}

	if st.events == 0 && st.numEdges == 0 {
		// No saved state (or a fresh directory): rebuild the slabs from the
		// replayed live edge set. Placement history (events, moved) is
		// unknowable from logs alone and restarts at zero.
		rebuildFromLogs()
	} else if stateMatchesLogs(st, packed) == nil {
		// Saved state agrees with the logs exactly: resume it, history
		// included.
	} else if mismatch := stateMatchesLogs(st, packed); rec.DroppedBytes > 0 || logsCoverState(st, packed) {
		// The checkpoint describes a moment the logs no longer (torn tail
		// recovered behind it) or not yet (appends landed after it — the
		// checkpoint is stale) capture. The logs are the durable truth:
		// discard the checkpointed slabs and rebuild placement from replay.
		// Placement history restarts at zero, like a stateless open.
		fresh, err := NewState(st.cfg)
		if err != nil {
			return nil, err
		}
		st = fresh
		rebuildFromLogs()
		rec.StateRebuilt = true
		rec.StateMismatch = mismatch.Error()
		liveObs.stateRebuilds.Add(1)
	} else {
		// Logs replay fewer edges than the checkpoint with no torn tail in
		// sight: the directory mixes runs or a log was tampered with.
		// Rebuilding would silently corrupt placement — refuse.
		return nil, stateMatchesLogs(st, packed)
	}
	if n := uint32(len(st.deg)); n > uint32(maxV) {
		maxV = graph.Vertex(n)
	}
	if maxV == 0 {
		maxV = 1 // BuildFromShards wants a nonempty universe even when idle
	}

	base, err := store.BuildFromShards(uint32(maxV), packed)
	if err != nil {
		return nil, err
	}
	l := &Live{
		dir:      dir,
		st:       st,
		base:     base,
		pending:  store.NewDelta(numParts),
		recovery: rec,
	}
	l.view = store.NewEpoch(base, l.pending, 0)
	if l.adds, err = openLogs(dir, "part", numParts); err != nil {
		return nil, err
	}
	if l.dead, err = openLogs(dir, "dead", numParts); err != nil {
		l.closeLogs()
		return nil, err
	}
	l.publishLocked()
	return l, nil
}

func logPath(dir, kind string, q int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%04d.esh", kind, q))
}

// countLogs counts contiguous part-NNNN.esh logs from 0 — the partition
// count of a directory whose checkpoint is missing (0 if no logs).
func countLogs(dir string) (int, error) {
	n := 0
	for ; n < maxParts; n++ {
		if _, err := os.Stat(logPath(dir, "part", n)); os.IsNotExist(err) {
			break
		} else if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// replayLog streams every packed edge of an EShard log into fn; a missing
// file is an empty log.
func replayLog(path string, fn func(k uint64)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sr, err := graph.NewShardReader(f)
	if err != nil {
		return fmt.Errorf("live: %s: %w", path, err)
	}
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("live: %s: %w", path, err)
		}
		for _, k := range chunk {
			fn(k)
		}
	}
}

// openLogs opens every per-partition log of one kind for appending,
// creating missing ones.
func openLogs(dir, kind string, numParts int) ([]*graph.ShardWriter, error) {
	out := make([]*graph.ShardWriter, numParts)
	for q := range out {
		path := logPath(dir, kind, q)
		sw, err := graph.OpenShardAppend(path)
		if os.IsNotExist(err) {
			sw, err = graph.CreateShardFile(path, graph.ShardInfo{
				NumVertices: logNumVertices, Index: uint32(q), Count: uint32(numParts),
			})
		}
		if err != nil {
			for _, o := range out[:q] {
				if o != nil {
					o.Close()
				}
			}
			return nil, fmt.Errorf("live: opening %s: %w", path, err)
		}
		out[q] = sw
	}
	return out, nil
}

func (l *Live) closeLogs() {
	for _, ws := range [2][]*graph.ShardWriter{l.adds, l.dead} {
		for _, w := range ws {
			if w != nil {
				w.Close()
			}
		}
	}
}

// publishLocked freezes the pending overlay into the next epoch. Callers
// hold mu.
func (l *Live) publishLocked() {
	l.seq++
	var frozen *store.Delta
	if l.pending.AddedEdges() != 0 || l.pending.DeletedEdges() != 0 {
		frozen = l.pending.Clone()
	}
	l.epoch.Store(store.NewEpoch(l.base, frozen, l.seq))
	l.lastPublish.Store(time.Now().UnixNano())
}

// Epoch returns the current published snapshot. Queries run entirely
// against it — the pointer is immutable, so a long traversal keeps its
// epoch while writers publish new ones.
func (l *Live) Epoch() *store.Epoch { return l.epoch.Load() }

// State returns the placement state for inspection. Mutating it outside
// the Live methods corrupts the subsystem.
func (l *Live) State() *State { return l.st }

// ownerLocked resolves the partition holding live edge (u,v), −1 when the
// edge is absent. The scan runs from the lower-degree endpoint, so lookup
// cost is O(P + min-degree), not hub-degree.
func (l *Live) ownerLocked(u, v graph.Vertex) int32 {
	a, b := u, v
	if l.st.Degree(b) < l.st.Degree(a) {
		a, b = b, a
	}
	if l.st.Degree(a) == 0 {
		return -1
	}
	owner := int32(-1)
	l.st.EachReplica(a, func(q int) {
		if owner < 0 && l.view.ShardHasEdge(q, a, b) {
			owner = int32(q)
		}
	})
	return owner
}

// Apply ingests a batch of events in order and returns how many changed
// state (duplicate insertions, self loops and deletions of absent edges
// don't count). One epoch is published per batch, so batching amortizes
// the overlay freeze; when the overlay outgrows maxOverlay the batch ends
// with an automatic compaction.
func (l *Live) Apply(events []dynpart.Event) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("live: closed")
	}
	start := time.Now()
	defer func() { l.obsApply.Observe(int64(time.Since(start))) }()
	changed := 0
	for _, ev := range events {
		c := ev.Edge.Canon()
		switch ev.Op {
		case dynpart.Add:
			if c.U == c.V {
				continue
			}
			if l.ownerLocked(c.U, c.V) >= 0 {
				continue
			}
			q := l.st.Place(c.U, c.V)
			k := graph.PackEdge(c.U, c.V)
			if err := l.adds[q].AppendPacked(k); err != nil {
				return changed, err
			}
			l.st.ApplyInsert(c.U, c.V, q)
			l.pending.AddEdge(int(q), c.U, c.V)
			changed++
		case dynpart.Remove:
			q := l.ownerLocked(c.U, c.V)
			if q < 0 {
				continue
			}
			k := graph.PackEdge(c.U, c.V)
			if err := l.dead[q].AppendPacked(k); err != nil {
				return changed, err
			}
			l.st.ApplyDelete(c.U, c.V, q)
			if !l.pending.RemoveAdd(int(q), c.U, c.V) {
				l.pending.DelEdge(int(q), c.U, c.V)
			}
			changed++
		default:
			return changed, fmt.Errorf("live: unknown op %d", ev.Op)
		}
	}
	added, deleted := l.pending.AddedEdges(), l.pending.DeletedEdges()
	if added+deleted > l.maxOverlay() {
		if err := l.compactLocked(); err != nil {
			return changed, err
		}
	} else {
		l.publishLocked()
	}
	return changed, nil
}

// Rebalance migrates up to budget edges from partitions above the α cap to
// strictly less-loaded destinations, preferring moves that do not add
// replicas. Migrations are ordinary overlay mutations — a tombstone on the
// source, an insertion on the target — published as one epoch, so readers
// see each move atomically. The pass is deterministic (partitions in id
// order, edges in canonical order). Returns the number of edges moved.
func (l *Live) Rebalance(budget int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("live: closed")
	}
	start := time.Now()
	defer func() { l.obsRebalance.Observe(int64(time.Since(start))) }()
	cap := l.st.capEdges(0)
	moved := 0
	sizes := l.st.sizes
	for q := int32(0); int(q) < l.st.cfg.NumParts && moved < budget; q++ {
		if sizes[q] <= cap {
			continue
		}
		for _, k := range l.view.ShardEdgesPacked(int(q)) {
			if sizes[q] <= cap || moved >= budget {
				break
			}
			e := graph.UnpackEdge(k)
			t := l.st.BestTarget(e.U, e.V, q)
			if t < 0 {
				continue
			}
			if err := l.dead[q].AppendPacked(k); err != nil {
				return moved, err
			}
			if err := l.adds[t].AppendPacked(k); err != nil {
				return moved, err
			}
			l.st.ApplyMove(e.U, e.V, q, t)
			if !l.pending.RemoveAdd(int(q), e.U, e.V) {
				l.pending.DelEdge(int(q), e.U, e.V)
			}
			l.pending.AddEdge(int(t), e.U, e.V)
			moved++
		}
	}
	if moved > 0 {
		l.publishLocked()
	}
	return moved, nil
}

// Compact folds the overlay into a fresh base store, rewrites the
// per-partition logs to exactly the live edge set, checkpoints the
// placement state, and publishes the compacted epoch. Readers keep serving
// from their pinned epochs throughout; only writers wait.
func (l *Live) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("live: closed")
	}
	return l.compactLocked()
}

func (l *Live) compactLocked() error {
	start := time.Now()
	defer func() { l.obsCompact.Observe(int64(time.Since(start))) }()
	numParts := l.st.cfg.NumParts
	packed := make([][]uint64, numParts)
	// The writer view's vertex bound is stale (fixed at its creation), so
	// derive the universe from the state slabs and the edges themselves.
	n := max(l.base.NumVertices(), uint32(len(l.st.deg)), 1)
	for q := 0; q < numParts; q++ {
		packed[q] = l.view.ShardEdgesPacked(q)
		if m := len(packed[q]); m > 0 {
			if v := uint32(packed[q][m-1]) + 1; v > n {
				n = v
			}
		}
	}
	base, err := store.BuildFromShards(n, packed)
	if err != nil {
		return err
	}

	// Rewrite the logs to the live edge set: fresh adds, empty tombstones,
	// written beside and renamed over the old generation so a crash
	// mid-compaction leaves a replayable directory.
	for q := 0; q < numParts; q++ {
		if err := l.adds[q].Close(); err != nil {
			return err
		}
		if err := l.dead[q].Close(); err != nil {
			return err
		}
	}
	for q := 0; q < numParts; q++ {
		if err := writeLogFile(logPath(l.dir, "part", q), q, numParts, packed[q]); err != nil {
			return err
		}
		if err := writeLogFile(logPath(l.dir, "dead", q), q, numParts, nil); err != nil {
			return err
		}
	}
	if l.adds, err = openLogs(l.dir, "part", numParts); err != nil {
		return err
	}
	if l.dead, err = openLogs(l.dir, "dead", numParts); err != nil {
		return err
	}

	l.base = base
	l.pending = store.NewDelta(numParts)
	l.view = store.NewEpoch(base, l.pending, 0)
	l.ncomp++
	if err := l.checkpointLocked(); err != nil {
		return err
	}
	l.publishLocked()
	return nil
}

// writeLogFile atomically replaces path with a fresh log holding packed.
func writeLogFile(path string, q, numParts int, packed []uint64) error {
	tmp := path + ".tmp"
	sw, err := graph.CreateShardFile(tmp, graph.ShardInfo{
		NumVertices: logNumVertices, Index: uint32(q), Count: uint32(numParts),
	})
	if err != nil {
		return err
	}
	for _, k := range packed {
		if err := sw.AppendPacked(k); err != nil {
			sw.Close()
			return err
		}
	}
	if err := sw.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Checkpoint saves the placement state so the next Open can skip the slab
// rebuild and verify the logs against it.
func (l *Live) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("live: closed")
	}
	return l.checkpointLocked()
}

func (l *Live) checkpointLocked() error {
	path := filepath.Join(l.dir, "state.dls")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteState(f, l.st); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Close checkpoints the state and seals the logs (footer rewrite). The
// last published epoch keeps serving pinned readers.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	for q := range l.adds {
		if err := l.adds[q].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.dead[q].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := l.checkpointLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Checksum digests the full live graph — every partition's sorted live
// edge list, owner included — the bit-identity currency for seeded ingest
// runs (the dnepart -checksum analogue for dynamic streams).
func (l *Live) Checksum() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := fnvNew()
	var b [12]byte
	for q := 0; q < l.st.cfg.NumParts; q++ {
		for _, k := range l.view.ShardEdgesPacked(q) {
			binary.LittleEndian.PutUint64(b[:8], k)
			binary.LittleEndian.PutUint32(b[8:], uint32(q))
			h = fnvWrite(h, b[:])
		}
	}
	return h
}

// Stats is an observable snapshot of the subsystem.
type Stats struct {
	NumParts          int     `json:"num_parts"`
	NumEdges          int64   `json:"num_edges"`
	NumVertices       int64   `json:"num_vertices"`
	ReplicationFactor float64 `json:"replication_factor"`
	EdgeBalance       float64 `json:"edge_balance"`
	Sizes             []int64 `json:"sizes"`
	Events            uint64  `json:"events"`
	Moved             int64   `json:"moved"`
	MigratedBytes     int64   `json:"migrated_bytes"`
	Epoch             uint64  `json:"epoch"`
	OverlayAdds       int64   `json:"overlay_adds"`
	OverlayDels       int64   `json:"overlay_dels"`
	Compactions       int64   `json:"compactions"`
}

// Stats returns the current snapshot.
func (l *Live) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	added, deleted := l.pending.AddedEdges(), l.pending.DeletedEdges()
	return Stats{
		NumParts:          l.st.cfg.NumParts,
		NumEdges:          l.st.numEdges,
		NumVertices:       l.st.NumVertices(),
		ReplicationFactor: l.st.ReplicationFactor(),
		EdgeBalance:       l.st.EdgeBalance(),
		Sizes:             l.st.Sizes(),
		Events:            l.st.events,
		Moved:             l.st.moved,
		MigratedBytes:     l.st.migratedBytes,
		Epoch:             l.seq,
		OverlayAdds:       added,
		OverlayDels:       deleted,
		Compactions:       l.ncomp,
	}
}
