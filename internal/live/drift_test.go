package live

import (
	"context"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// rfDriftBound is the declared quality contract of incremental placement:
// on a seeded RMAT arrival stream the live replication factor stays within
// this factor of batch HDRF re-partitioning the same prefix. Measured
// headroom is ~1.07–1.08× across seeds and prefixes; the bound leaves
// slack for generator drift without ever letting incremental quality decay
// to "just re-partition everything" territory.
const rfDriftBound = 1.25

// batchCoveredRF is replicas per covered vertex — comparable with the live
// metric, which only ever sees vertices that have an edge (batch Quality
// divides by total |V|, isolated vertices included).
func batchCoveredRF(q partition.Quality) float64 {
	covered := q.Replicas - q.VertexCuts
	return float64(q.Replicas) / float64(covered)
}

// TestLiveRFDriftWithinBound is the quality property test (the
// TestStreamingMemoryBudget pattern applied to quality): at several
// prefixes of seeded RMAT arrival streams, incremental live placement must
// hold its replication factor within rfDriftBound of a full batch HDRF
// re-partition of the same prefix.
func TestLiveRFDriftWithinBound(t *testing.T) {
	seeds := []int64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		g := gen.RMAT(13, 8, seed)
		events := arrivalStream(g, seed)
		l, err := Open(t.TempDir(), Config{NumParts: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		for _, frac := range []float64{0.25, 0.5, 1.0} {
			n := int(float64(len(events)) * frac)
			for applied < n {
				b := min(applied+4096, n)
				if _, err := l.Apply(events[applied:b]); err != nil {
					t.Fatal(err)
				}
				applied = b
			}
			liveRF := l.State().ReplicationFactor()

			prefix := make([]graph.Edge, n)
			for i := range prefix {
				prefix[i] = events[i].Edge
			}
			pg := graph.FromEdges(0, prefix)
			pr, spec, err := methods.New("hdrf", partition.Spec{NumParts: 8, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := pr.Partition(context.Background(), pg, spec)
			if err != nil {
				t.Fatal(err)
			}
			batchRF := batchCoveredRF(res.Quality)
			ratio := liveRF / batchRF
			t.Logf("seed %d prefix %.0f%%: live RF %.3f, batch HDRF RF %.3f, drift %.3fx",
				seed, frac*100, liveRF, batchRF, ratio)
			if ratio > rfDriftBound {
				t.Fatalf("seed %d prefix %.0f%%: live RF %.3f drifts %.3fx past batch HDRF %.3f (bound %.2fx)",
					seed, frac*100, liveRF, ratio, batchRF, rfDriftBound)
			}
		}
		l.Close()
	}
}
