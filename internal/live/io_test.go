package live

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
)

// populatedState builds a state with real placement history.
func populatedState(t *testing.T) *State {
	t.Helper()
	st, err := NewState(Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ER(200, 900, 3)
	for _, e := range g.Edges() {
		st.ApplyInsert(e.U, e.V, st.Place(e.U, e.V))
	}
	for i, e := range g.Edges() {
		if i%7 == 0 {
			// Retract from the owner we can recompute via the rows.
			for q := 0; q < 4; q++ {
				if st.HasReplica(e.U, q) && st.HasReplica(e.V, q) {
					st.ApplyDelete(e.U, e.V, int32(q))
					break
				}
			}
		}
	}
	return st
}

// TestStateRoundTrip: save/load must reproduce the exact placement state —
// checksum, counters, invariants — and future placements must agree.
func TestStateRoundTrip(t *testing.T) {
	st := populatedState(t)
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != st.Checksum() {
		t.Fatalf("state checksum %#x, want %#x", got.Checksum(), st.Checksum())
	}
	if got.Events() != st.Events() || got.NumEdges() != st.NumEdges() {
		t.Fatalf("counters drifted: %d/%d vs %d/%d", got.Events(), got.NumEdges(), st.Events(), st.NumEdges())
	}
	if got.Config() != st.Config() {
		t.Fatalf("config drifted: %+v vs %+v", got.Config(), st.Config())
	}
	if a, b := got.Place(3, 199), st.Place(3, 199); a != b {
		t.Fatalf("loaded state places (3,199) on %d, original on %d", a, b)
	}
}

// TestStateRejectsHostileInput mirrors the repository's snapshot-hardening
// style: every mutation of a valid state file must error on load.
func TestStateRejectsHostileInput(t *testing.T) {
	st := populatedState(t)
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
	}{
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			wantErr: "magic",
		},
		{
			name:    "bad version",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 99); return b },
			wantErr: "version",
		},
		{
			name:    "zero partitions",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 0); return b },
			wantErr: "partition count",
		},
		{
			name:    "huge partition count",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 1<<30); return b },
			wantErr: "partition count",
		},
		{
			name:    "invalid alpha",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint64(b[48:], 0); return b },
			wantErr: "alpha",
		},
		{
			name:    "truncated slab",
			mutate:  func(b []byte) []byte { return b[:len(b)-200] },
			wantErr: "", // any error
		},
		{
			name:    "truncated checksum",
			mutate:  func(b []byte) []byte { return b[:len(b)-3] },
			wantErr: "checksum",
		},
		{
			name: "payload tampered",
			mutate: func(b []byte) []byte {
				b[len(b)-100] ^= 0x40 // inside the counts slab
				return b
			},
			wantErr: "", // checksum or row mismatch, either is a catch
		},
		{
			name: "checksum tampered",
			mutate: func(b []byte) []byte {
				b[len(b)-1] ^= 0xff
				return b
			},
			wantErr: "checksum",
		},
		{
			name: "edge count lies",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[16:], 1)
				return b
			},
			wantErr: "", // sizes-vs-header check (checksum also fires)
		},
		{
			name:    "empty file",
			mutate:  func(b []byte) []byte { return nil },
			wantErr: "header",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), valid...))
			_, err := ReadState(bytes.NewReader(mutated))
			if err == nil {
				t.Fatal("hostile state file loaded without error")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestStatePlacementMatchesDynpart: live placement must score identically
// to dynpart's greedy rule — the live state is that rule promoted to dense
// slabs, so a pure insert stream lands every edge on the same partition.
func TestStatePlacementMatchesDynpart(t *testing.T) {
	st, err := NewState(Config{NumParts: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dynpart.New(6, dynpart.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := gen.RMAT(9, 8, 2)
	for _, e := range g.Edges() {
		q := st.Place(e.U, e.V)
		st.ApplyInsert(e.U, e.V, q)
		if got := dp.AddEdge(e); got != q {
			t.Fatalf("edge %v: live places %d, dynpart %d", e, q, got)
		}
	}
	if rfLive, rfDyn := st.ReplicationFactor(), dp.ReplicationFactor(); rfLive != rfDyn {
		t.Fatalf("replication factor diverges: %g vs %g", rfLive, rfDyn)
	}
}
