package live

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/store"
)

// arrivalStream returns g's edges as insertion events in a seeded random
// arrival order — the live workload shape: edges trickle in, not sorted.
func arrivalStream(g *graph.Graph, seed int64) []dynpart.Event {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	out := make([]dynpart.Event, len(edges))
	for i, p := range rng.Perm(len(edges)) {
		out[i] = dynpart.Event{Op: dynpart.Add, Edge: edges[p]}
	}
	return out
}

func applyAll(t *testing.T, l *Live, events []dynpart.Event, batch int) int {
	t.Helper()
	changed := 0
	for i := 0; i < len(events); i += batch {
		n, err := l.Apply(events[i:min(i+batch, len(events))])
		if err != nil {
			t.Fatal(err)
		}
		changed += n
	}
	return changed
}

// TestLiveIngestServesGraph: ingesting a whole graph must leave an epoch
// answering Degree/Neighbors/KHop exactly like a batch-built store over
// the same edges.
func TestLiveIngestServesGraph(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	l, err := Open(t.TempDir(), Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	events := arrivalStream(g, 7)
	if n := applyAll(t, l, events, 1000); n != int(g.NumEdges()) {
		t.Fatalf("applied %d events, graph has %d edges", n, g.NumEdges())
	}
	if err := l.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-inserting everything is a full no-op.
	if n := applyAll(t, l, events, 997); n != 0 {
		t.Fatalf("re-insert changed %d edges", n)
	}

	ep := l.Epoch()
	if ep.NumEdges() != g.NumEdges() {
		t.Fatalf("epoch holds %d edges, graph has %d", ep.NumEdges(), g.NumEdges())
	}
	packed := make([][]uint64, ep.NumShards())
	for s := range packed {
		packed[s] = ep.ShardEdgesPacked(s)
	}
	ref, err := store.BuildFromShards(ep.NumVertices(), packed)
	if err != nil {
		t.Fatal(err)
	}
	// The live universe covers every vertex with an edge; trailing isolated
	// vertices of g may sit beyond it.
	n := min(ep.NumVertices(), g.NumVertices())
	for v := graph.Vertex(n); v < g.NumVertices(); v++ {
		if len(g.Neighbors(v)) != 0 {
			t.Fatalf("vertex %d has edges but is outside the live universe [0,%d)", v, n)
		}
	}
	for v := graph.Vertex(0); v < n; v++ {
		want, _ := ref.Neighbors(v)
		got, err := ep.Neighbors(v)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("neighbors[%d] = %v, want %v", v, got, want)
		}
		if slices.Compare(got, g.Neighbors(v)) != 0 {
			t.Fatalf("neighbors[%d] diverge from the source graph", v)
		}
	}
	kl, err := ep.KHop(context.Background(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := ref.KHop(context.Background(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(kl.Vertices, kr.Vertices) {
		t.Fatal("khop diverges from the rebuilt store")
	}
}

// TestLiveChecksumInvariantToBatchAndCompaction: the live checksum is a
// pure function of the event stream — batch size, interleaved manual
// compactions, and rebalance budget slicing must not change it.
func TestLiveChecksumInvariantToBatchAndCompaction(t *testing.T) {
	g := gen.RMAT(9, 8, 5)
	base := arrivalStream(g, 11)
	// Salt in deletions and re-insertions.
	events := make([]dynpart.Event, 0, len(base)+len(base)/3)
	rng := rand.New(rand.NewSource(13))
	for i, ev := range base {
		events = append(events, ev)
		if i%3 == 0 {
			victim := base[rng.Intn(i+1)].Edge
			events = append(events, dynpart.Event{Op: dynpart.Remove, Edge: victim})
		}
	}

	run := func(batch int, compactEvery int) (uint64, uint64) {
		l, err := Open(t.TempDir(), Config{NumParts: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i, n := 0, 0; i < len(events); i, n = i+batch, n+1 {
			if _, err := l.Apply(events[i:min(i+batch, len(events))]); err != nil {
				t.Fatal(err)
			}
			if compactEvery > 0 && n%compactEvery == compactEvery-1 {
				if err := l.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.State().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return l.Checksum(), l.State().Checksum()
	}

	sum1, st1 := run(500, 0)
	sum2, st2 := run(77, 3)
	sum3, st3 := run(len(events), 1)
	if sum1 != sum2 || sum1 != sum3 {
		t.Fatalf("live checksum depends on batching/compaction: %#x %#x %#x", sum1, sum2, sum3)
	}
	if st1 != st2 || st1 != st3 {
		t.Fatalf("state checksum depends on batching/compaction: %#x %#x %#x", st1, st2, st3)
	}
}

// TestLiveResume: closing mid-stream and reopening must resume to the exact
// same final state — and so must a reopen that lost the checkpoint (state
// rebuilt from logs), since placement depends only on the slabs.
func TestLiveResume(t *testing.T) {
	g := gen.RMAT(9, 8, 9)
	events := arrivalStream(g, 3)
	for i := 0; i < len(events); i += 5 {
		events[i].Op = dynpart.Remove
		events[i].Edge = events[rand.New(rand.NewSource(int64(i))).Intn(i+1)].Edge
	}
	half := len(events) / 2

	oneShot := func() uint64 {
		l, err := Open(t.TempDir(), Config{NumParts: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		applyAll(t, l, events, 311)
		return l.Checksum()
	}
	want := oneShot()

	for _, dropCheckpoint := range []bool{false, true} {
		dir := t.TempDir()
		l, err := Open(dir, Config{NumParts: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		applyAll(t, l, events[:half], 311)
		midState := l.State().Checksum()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if dropCheckpoint {
			if err := os.Remove(filepath.Join(dir, "state.dls")); err != nil {
				t.Fatal(err)
			}
		}
		l, err = Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if l.State().NumParts() != 4 {
			t.Fatalf("resume lost the partition count: %d", l.State().NumParts())
		}
		if got := l.State().Checksum(); got != midState {
			t.Fatalf("dropCheckpoint=%v: resumed state checksum %#x, want %#x", dropCheckpoint, got, midState)
		}
		if err := l.State().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		applyAll(t, l, events[half:], 311)
		if got := l.Checksum(); got != want {
			t.Fatalf("dropCheckpoint=%v: resumed run checksum %#x, one-shot %#x", dropCheckpoint, got, want)
		}
		l.Close()
	}
}

// TestLiveRecoversTruncatedFooter: a log torn inside its footer (the
// SIGKILL-during-Close shape) holds every chunk intact; reopen must reseal
// it and resume with nothing lost.
func TestLiveRecoversTruncatedFooter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{NumParts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, l, arrivalStream(gen.ER(100, 400, 2), 1), 100)
	want := l.Checksum()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := logPath(dir, "part", 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = b[:len(b)-5] // truncate into the footer
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Config{})
	if err != nil {
		t.Fatalf("torn footer must recover, got: %v", err)
	}
	defer l.Close()
	if rec := l.Recovery(); rec.TornLogs != 1 || rec.DroppedBytes == 0 {
		t.Fatalf("recovery report %+v, want 1 torn log with dropped bytes", rec)
	}
	if got := l.Checksum(); got != want {
		t.Fatalf("recovered checksum %#x != pre-crash %#x (no chunk was lost)", got, want)
	}
	if err := l.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRecoversTornChunk: a SIGKILL mid-append tears a log inside a
// chunk, losing edges. Reopen must truncate to the last valid chunk,
// discard the now-stale placement checkpoint, and rebuild from replay —
// fewer edges, but a consistent graph.
func TestLiveRecoversTornChunk(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{NumParts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, l, arrivalStream(gen.ER(100, 400, 2), 1), 100)
	before := l.Stats().NumEdges
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := logPath(dir, "part", 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = b[:len(b)-25] // through footer+terminator into the last chunk's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Config{})
	if err != nil {
		t.Fatalf("torn chunk must recover, got: %v", err)
	}
	defer l.Close()
	rec := l.Recovery()
	if rec.TornLogs != 1 || !rec.StateRebuilt {
		t.Fatalf("recovery report %+v, want torn log + state rebuild", rec)
	}
	after := l.Stats().NumEdges
	if after >= before || after == 0 {
		t.Fatalf("replayed %d edges after losing a tail from %d", after, before)
	}
	if err := l.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The recovered graph must keep working: it accepts new edges.
	if _, err := l.Apply([]dynpart.Event{{Op: dynpart.Add, Edge: graph.Edge{U: 900, V: 901}}}); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().NumEdges; got != after+1 {
		t.Fatalf("post-recovery apply: %d edges, want %d", got, after+1)
	}
}

// TestLiveRejectsUnrecoverableLog: a log whose header is destroyed has no
// valid prefix to salvage; Open must refuse rather than guess.
func TestLiveRejectsUnrecoverableLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{NumParts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(t, l, arrivalStream(gen.ER(100, 400, 2), 1), 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := logPath(dir, "part", 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff // destroy the magic
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("opened a directory with an unrecoverable log")
	}
}

// TestLiveRebalance: deletions skew the load; a bounded rebalance must
// migrate edges off the overloaded partition, stay within budget, account
// migration bytes, and leave a consistent, still-correct graph.
func TestLiveRebalance(t *testing.T) {
	g := gen.ER(400, 6000, 4)
	l, err := Open(t.TempDir(), Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	applyAll(t, l, arrivalStream(g, 4), 1000)

	// Delete most edges everywhere except partition 0.
	ep := l.Epoch()
	var dels []dynpart.Event
	for q := 1; q < 4; q++ {
		for i, k := range ep.ShardEdgesPacked(q) {
			if i%10 != 0 {
				dels = append(dels, dynpart.Event{Op: dynpart.Remove, Edge: graph.UnpackEdge(k)})
			}
		}
	}
	applyAll(t, l, dels, 1000)
	sizes := l.State().Sizes()
	cap := l.State().capEdges(0)
	if sizes[0] <= cap {
		t.Skipf("partition 0 not overloaded (%v, cap %d); skew assumption broken", sizes, cap)
	}

	const budget = 200
	moved, err := l.Rebalance(budget)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || moved > budget {
		t.Fatalf("moved %d edges, want in (0,%d]", moved, budget)
	}
	if l.State().Moved() != int64(moved) {
		t.Fatalf("state counts %d moves, rebalance reported %d", l.State().Moved(), moved)
	}
	if l.State().MigratedBytes() != int64(moved)*16 {
		t.Fatalf("migrated bytes %d, want %d", l.State().MigratedBytes(), moved*16)
	}
	if err := l.State().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The edge set is preserved — only owners changed.
	var total int64
	ep = l.Epoch()
	for q := 0; q < 4; q++ {
		total += int64(len(ep.ShardEdgesPacked(q)))
	}
	if total != l.State().NumEdges() {
		t.Fatalf("epoch holds %d edges, state %d", total, l.State().NumEdges())
	}
	// Deterministic: the same history replays to the same checksum.
	sum := l.Checksum()
	l2, err := Open(t.TempDir(), Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	applyAll(t, l2, arrivalStream(g, 4), 1000)
	applyAll(t, l2, dels, 1000)
	if _, err := l2.Rebalance(budget); err != nil {
		t.Fatal(err)
	}
	if got := l2.Checksum(); got != sum {
		t.Fatalf("rebalance not deterministic: %#x vs %#x", got, sum)
	}
}

// TestLiveConcurrentReadersNeverError: queries pin epochs while a writer
// ingests, compacts and rebalances concurrently. Run under -race this is
// the "readers never block, never tear" check.
func TestLiveConcurrentReadersNeverError(t *testing.T) {
	g := gen.RMAT(10, 8, 6)
	l, err := Open(t.TempDir(), Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	events := arrivalStream(g, 6)
	// Seed a prefix so readers have something from the start.
	applyAll(t, l, events[:len(events)/4], 4096)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := l.Epoch()
				v := graph.Vertex(rng.Intn(int(ep.NumVertices())))
				if _, err := ep.KHop(context.Background(), v, 2); err != nil {
					t.Errorf("khop: %v", err)
					return
				}
				if _, err := ep.Neighbors(v); err != nil {
					t.Errorf("neighbors: %v", err)
					return
				}
			}
		}(r)
	}
	for i := len(events) / 4; i < len(events); i += 2048 {
		if _, err := l.Apply(events[i:min(i+2048, len(events))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rebalance(500); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
