// Package live is the dynamic-graph subsystem: it accepts a stream of edge
// insertions and deletions, assigns each arrival to a partition
// incrementally, and serves queries throughout — no full re-partition, no
// reader stalls. It is the §8 "dynamic graphs" extension made concrete:
//
//   - State is the persistable streaming-partitioner state (dense degree and
//     incidence slabs plus a partition.ReplicaSets bit view) applying
//     dynpart's replica-aware greedy placement, RNG-free and therefore a
//     pure function of the event stream.
//   - Arrivals land in per-partition append-only EShard logs (an add log and
//     a tombstone log per partition), O(chunk) memory.
//   - Reads resolve against a store.Epoch — immutable base CSR plus a small
//     frozen overlay — pinned with one atomic load; a background compaction
//     folds the overlay into a fresh base and publishes the next epoch.
//   - A bounded-budget rebalancer migrates edges off overloaded partitions
//     as ordinary overlay deltas, so migrations ride the same epoch
//     machinery as arrivals.
package live

import (
	"encoding/binary"
	"fmt"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Config parameterizes a live partitioner.
type Config struct {
	// NumParts is the partition (serving shard) count. Required.
	NumParts int
	// Alpha is the imbalance factor α ≥ 1 of Eq. (2), enforced against the
	// moving edge count. Default 1.1.
	Alpha float64
	// BalanceWeight scales the balance penalty in the placement score.
	// Default 1.0.
	BalanceWeight float64
	// Seed identifies the run for provenance. Placement itself is RNG-free;
	// the seed is persisted and checked on resume so state files are not
	// silently mixed across runs.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.NumParts <= 0 || c.NumParts > maxParts {
		return c, fmt.Errorf("live: numParts %d out of range (0,%d]", c.NumParts, maxParts)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.1
	}
	if c.Alpha < 1 {
		return c, fmt.Errorf("live: alpha must be >= 1, got %g", c.Alpha)
	}
	if c.BalanceWeight == 0 {
		c.BalanceWeight = 1
	}
	return c, nil
}

// maxParts bounds the partition count (the incidence slab is |V|×P).
const maxParts = 1 << 12

// State is the incremental placement state: per-vertex live degree, the
// |V|×P incidence-count slab (how many of v's edges live on each
// partition — exact retraction needs counts, not bits), the ReplicaSets
// bit view derived from it, and per-partition sizes. All slabs are dense
// and grow geometrically as the stream mints vertex ids.
//
// State is not safe for concurrent use; Live serializes writers.
type State struct {
	cfg      Config
	deg      []uint32 // per-vertex live degree
	counts   []uint32 // row-major |V|×P incidence counts
	reps     *partition.ReplicaSets
	sizes    []int64 // per-partition edge counts
	numEdges int64
	replicas int64 // Σ_v |parts(v)|, maintained incrementally

	// events counts applied mutations, moved counts rebalancer migrations,
	// migratedBytes the log traffic those migrations wrote — all persisted.
	events        uint64
	moved         int64
	migratedBytes int64
}

// NewState returns empty placement state for cfg.
func NewState(cfg Config) (*State, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &State{
		cfg:   cfg,
		reps:  partition.NewReplicaSets(cfg.NumParts, 0),
		sizes: make([]int64, cfg.NumParts),
	}, nil
}

// Config returns the resolved configuration.
func (st *State) Config() Config { return st.cfg }

// NumParts returns the partition count.
func (st *State) NumParts() int { return st.cfg.NumParts }

// NumEdges returns the live edge count.
func (st *State) NumEdges() int64 { return st.numEdges }

// NumVertices returns the number of vertices with at least one live edge.
func (st *State) NumVertices() int64 {
	var n int64
	for _, d := range st.deg {
		if d > 0 {
			n++
		}
	}
	return n
}

// Events returns the number of applied mutations.
func (st *State) Events() uint64 { return st.events }

// Moved returns the number of edges the rebalancer has migrated.
func (st *State) Moved() int64 { return st.moved }

// MigratedBytes returns the log bytes written by migrations.
func (st *State) MigratedBytes() int64 { return st.migratedBytes }

// Sizes returns a copy of the per-partition edge counts.
func (st *State) Sizes() []int64 {
	out := make([]int64, len(st.sizes))
	copy(out, st.sizes)
	return out
}

// Degree returns v's live degree (0 for never-seen vertices).
func (st *State) Degree(v graph.Vertex) uint32 {
	if int(v) >= len(st.deg) {
		return 0
	}
	return st.deg[v]
}

// ReplicationFactor returns Σ_v |parts(v)| / |V_live| (Eq. 1), 0 when empty.
func (st *State) ReplicationFactor() float64 {
	n := st.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(st.replicas) / float64(n)
}

// EdgeBalance returns max |Ep| / mean |Ep| (1 when empty).
func (st *State) EdgeBalance() float64 {
	var sum, max int64
	for _, s := range st.sizes {
		sum += s
		if s > max {
			max = s
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(st.sizes)))
}

// grow extends the per-vertex slabs to cover v.
func (st *State) grow(v graph.Vertex) {
	if int(v) < len(st.deg) {
		return
	}
	n := max(int(v)+1, 2*len(st.deg))
	deg := make([]uint32, n)
	copy(deg, st.deg)
	st.deg = deg
	counts := make([]uint32, n*st.cfg.NumParts)
	copy(counts, st.counts)
	st.counts = counts
	st.reps.Grow(uint32(n))
}

// countsRow returns v's incidence-count row (nil for never-seen vertices).
func (st *State) countsRow(v graph.Vertex) []uint32 {
	if int(v) >= len(st.deg) {
		return nil
	}
	p := st.cfg.NumParts
	return st.counts[int(v)*p : (int(v)+1)*p]
}

// HasReplica reports whether v has at least one live edge on partition q.
func (st *State) HasReplica(v graph.Vertex, q int) bool {
	row := st.countsRow(v)
	return row != nil && row[q] > 0
}

// EachReplica calls fn for every partition holding a live edge of v, in
// ascending id order.
func (st *State) EachReplica(v graph.Vertex, fn func(q int)) {
	if int(v) >= len(st.deg) || st.deg[v] == 0 {
		return
	}
	st.reps.Row(v).ForEach(fn)
}

// capEdges is the α cap against the current edge count plus extra pending
// insertions; it moves as the graph grows, so a long insert stream cannot
// wedge every partition at once.
func (st *State) capEdges(extra int64) int64 {
	c := int64(st.cfg.Alpha * float64(st.numEdges+extra) / float64(st.cfg.NumParts))
	if c < 1 {
		c = 1
	}
	return c
}

// Place scores every partition for inserting edge (u,v):
//
//	score(q) = [u on q] + [v on q] − w·(size_q / cap)²,
//
// so partitions already covering both endpoints (no new replicas)
// dominate, then one endpoint, and the quadratic penalty steers ties and
// spill-over to underloaded partitions. Partitions at the α cap are
// excluded unless all are (then the least-loaded wins). Ties break to the
// lowest id — the whole rule is RNG-free, so placement is a pure function
// of the event stream. Place does not mutate state.
func (st *State) Place(u, v graph.Vertex) int32 {
	cap := st.capEdges(1)
	ru, rv := st.countsRow(u), st.countsRow(v)
	best := int32(-1)
	bestScore := float64(-1 << 62)
	for q := 0; q < st.cfg.NumParts; q++ {
		if st.sizes[q] >= cap {
			continue
		}
		var gain float64
		if ru != nil && ru[q] > 0 {
			gain++
		}
		if rv != nil && rv[q] > 0 {
			gain++
		}
		load := float64(st.sizes[q]) / float64(cap)
		score := gain - st.cfg.BalanceWeight*load*load
		if score > bestScore {
			bestScore = score
			best = int32(q)
		}
	}
	if best == -1 {
		best = 0
		for q := 1; q < st.cfg.NumParts; q++ {
			if st.sizes[q] < st.sizes[best] {
				best = int32(q)
			}
		}
	}
	return best
}

// BestTarget picks the migration destination for moving edge (u,v) off
// partition q: maximize endpoint coverage, then prefer lower load; only
// strictly less-loaded destinations qualify (−1 if none). Deterministic,
// mirroring dynpart's rebalance scoring.
func (st *State) BestTarget(u, v graph.Vertex, q int32) int32 {
	ru, rv := st.countsRow(u), st.countsRow(v)
	best := int32(-1)
	bestKey := float64(-1 << 62)
	for t := int32(0); t < int32(st.cfg.NumParts); t++ {
		if t == q || st.sizes[t] >= st.sizes[q]-1 {
			continue
		}
		var gain float64
		if ru[t] > 0 {
			gain++
		}
		if rv[t] > 0 {
			gain++
		}
		key := gain - float64(st.sizes[t])/float64(st.sizes[q]+1)
		if key > bestKey {
			bestKey = key
			best = t
		}
	}
	return best
}

// ApplyInsert records edge (u,v) on partition q.
func (st *State) ApplyInsert(u, v graph.Vertex, q int32) {
	st.grow(max(u, v))
	st.addIncidence(u, q)
	st.addIncidence(v, q)
	st.sizes[q]++
	st.numEdges++
	st.events++
}

// ApplyDelete retracts edge (u,v) from partition q. Replica sets shrink
// exactly: a vertex leaves a partition with its last incident edge there.
func (st *State) ApplyDelete(u, v graph.Vertex, q int32) {
	st.dropIncidence(u, q)
	st.dropIncidence(v, q)
	st.sizes[q]--
	st.numEdges--
	st.events++
}

// ApplyMove migrates edge (u,v) from partition q to t, counting the move
// and the log bytes the migration writes (one tombstone + one add record).
func (st *State) ApplyMove(u, v graph.Vertex, q, t int32) {
	st.dropIncidence(u, q)
	st.dropIncidence(v, q)
	st.sizes[q]--
	st.addIncidence(u, t)
	st.addIncidence(v, t)
	st.sizes[t]++
	st.moved++
	st.migratedBytes += 2 * 8 // packed edge record in the dead and add logs
	st.events++
}

func (st *State) addIncidence(v graph.Vertex, q int32) {
	st.deg[v]++
	row := st.countsRow(v)
	if row[q] == 0 {
		st.replicas++
		st.reps.Set(v, int(q))
	}
	row[q]++
}

func (st *State) dropIncidence(v graph.Vertex, q int32) {
	st.deg[v]--
	row := st.countsRow(v)
	row[q]--
	if row[q] == 0 {
		st.replicas--
		st.reps.Row(v).Clear(int(q))
	}
}

// CheckInvariants verifies slab consistency: every vertex's degree equals
// its incidence-row sum, the replica counter and bit view match the rows,
// and partition sizes sum to the edge count twice over the degree slab.
// O(|V|×P); tests call it after update storms.
func (st *State) CheckInvariants() error {
	var degSum, replicas int64
	p := st.cfg.NumParts
	for v := range st.deg {
		var rowSum uint32
		row := st.counts[v*p : (v+1)*p]
		for q, c := range row {
			if (c > 0) != st.reps.Row(graph.Vertex(v)).Has(q) {
				return fmt.Errorf("live: vertex %d partition %d bit view disagrees with count %d", v, q, c)
			}
			if c > 0 {
				replicas++
			}
			rowSum += c
		}
		if rowSum != st.deg[v] {
			return fmt.Errorf("live: vertex %d degree %d != incidence sum %d", v, st.deg[v], rowSum)
		}
		degSum += int64(st.deg[v])
	}
	if degSum != 2*st.numEdges {
		return fmt.Errorf("live: degree sum %d != 2×%d edges", degSum, st.numEdges)
	}
	if replicas != st.replicas {
		return fmt.Errorf("live: replica counter %d, rows hold %d", st.replicas, replicas)
	}
	var sum int64
	for _, s := range st.sizes {
		if s < 0 {
			return fmt.Errorf("live: negative partition size %d", s)
		}
		sum += s
	}
	if sum != st.numEdges {
		return fmt.Errorf("live: partition sizes sum to %d, state holds %d edges", sum, st.numEdges)
	}
	return nil
}

// Checksum returns an FNV-64a digest of the placement-relevant state: the
// per-partition sizes and every vertex's incidence row. Two states with
// equal checksums place future arrivals identically.
func (st *State) Checksum() uint64 {
	h := fnvNew()
	var b [8]byte
	for _, s := range st.sizes {
		binary.LittleEndian.PutUint64(b[:], uint64(s))
		h = fnvWrite(h, b[:])
	}
	p := st.cfg.NumParts
	for v := range st.deg {
		if st.deg[v] == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		binary.LittleEndian.PutUint32(b[4:], st.deg[v])
		h = fnvWrite(h, b[:])
		for q, c := range st.counts[v*p : (v+1)*p] {
			if c == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(b[:4], uint32(q))
			binary.LittleEndian.PutUint32(b[4:], c)
			h = fnvWrite(h, b[:])
		}
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvNew() uint64 { return fnvOffset64 }

func fnvWrite(h uint64, b []byte) uint64 {
	for _, x := range b {
		h ^= uint64(x)
		h *= fnvPrime64
	}
	return h
}
