package live

import (
	"fmt"
	"os"
	"sync/atomic"

	"github.com/distributedne/dne/internal/graph"
)

// liveObs aggregates process-cumulative crash-recovery events, exposed via
// RegisterMetrics.
var liveObs struct {
	tornLogs      atomic.Int64
	tornBytes     atomic.Int64
	stateRebuilds atomic.Int64
}

// Recovery describes what Open had to repair to bring the directory back to
// a consistent state. The zero value means a clean open.
type Recovery struct {
	// TornLogs is how many log files had a torn tail truncated and resealed.
	TornLogs int
	// DroppedBytes is the total torn-tail bytes discarded across all logs.
	DroppedBytes int64
	// StateRebuilt reports that the placement checkpoint disagreed with the
	// recovered logs and was discarded; placement was rebuilt from replay
	// (history counters restarted at zero).
	StateRebuilt bool
	// StateMismatch is the discrepancy that forced the rebuild, empty
	// otherwise.
	StateMismatch string
}

// Recovered reports whether Open repaired anything.
func (r Recovery) Recovered() bool { return r.TornLogs > 0 || r.StateRebuilt }

// String renders a one-line operator-facing summary.
func (r Recovery) String() string {
	if !r.Recovered() {
		return "clean"
	}
	s := fmt.Sprintf("%d torn log(s), %d bytes dropped", r.TornLogs, r.DroppedBytes)
	if r.StateRebuilt {
		s += "; placement state rebuilt from logs (" + r.StateMismatch + ")"
	}
	return s
}

// Recovery returns what Open repaired when the live graph was opened.
func (l *Live) Recovery() Recovery { return l.recovery }

// recoverLogs repairs every existing per-partition log with a torn tail
// before anything reads or appends to them. Valid logs are untouched.
func recoverLogs(dir string, numParts int) (Recovery, error) {
	var rec Recovery
	for _, kind := range []string{"part", "dead"} {
		for q := 0; q < numParts; q++ {
			path := logPath(dir, kind, q)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				continue
			} else if err != nil {
				return rec, err
			}
			_, dropped, err := graph.RecoverShardTail(path)
			if err != nil {
				return rec, fmt.Errorf("live: recovering %s: %w", path, err)
			}
			if dropped > 0 {
				rec.TornLogs++
				rec.DroppedBytes += dropped
				liveObs.tornLogs.Add(1)
				liveObs.tornBytes.Add(dropped)
			}
		}
	}
	return rec, nil
}

// stateMatchesLogs reports (as an error, nil = match) whether the
// checkpointed placement slabs agree exactly with the replayed live edge
// sets.
func stateMatchesLogs(st *State, packed [][]uint64) error {
	var total int64
	for q := range packed {
		n := int64(len(packed[q]))
		if st.sizes[q] != n {
			return fmt.Errorf("live: state says partition %d holds %d edges, logs replay %d", q, st.sizes[q], n)
		}
		total += n
	}
	if st.numEdges != total {
		return fmt.Errorf("live: state holds %d edges, logs replay %d", st.numEdges, total)
	}
	return nil
}

// logsCoverState reports whether every partition's replayed log holds at
// least as many edges as the checkpoint claims — the signature of a
// checkpoint that is merely stale (appends landed after it) rather than a
// directory whose logs shrank underneath it.
func logsCoverState(st *State, packed [][]uint64) bool {
	for q := range packed {
		if int64(len(packed[q])) < st.sizes[q] {
			return false
		}
	}
	return true
}
