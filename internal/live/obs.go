package live

import (
	"strconv"
	"time"

	"github.com/distributedne/dne/internal/obs"
)

// RegisterMetrics registers the live-graph metric families on reg and
// attaches the maintenance duration histograms. Gauge families read
// Stats() at scrape time, so a scrape always sees the current placement;
// the duration histograms are recorded by Apply/Compact/Rebalance as they
// run. A nil registry leaves the subsystem uninstrumented.
func (l *Live) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mu.Lock()
	l.obsApply = reg.DurationHistogram("dne_live_apply_duration_seconds",
		"Wall time of live ingest batches (automatic compactions included).")
	l.obsCompact = reg.DurationHistogram("dne_live_compact_duration_seconds",
		"Wall time of overlay compactions.")
	l.obsRebalance = reg.DurationHistogram("dne_live_rebalance_duration_seconds",
		"Wall time of bounded rebalance passes.")
	l.mu.Unlock()

	gauge := func(name, help string, read func(Stats) float64) {
		reg.GaugeFunc(name, help, func(emit func(v float64, kv ...string)) {
			emit(read(l.Stats()))
		})
	}
	counter := func(name, help string, read func(Stats) float64) {
		reg.CounterFunc(name, help, func(emit func(v float64, kv ...string)) {
			emit(read(l.Stats()))
		})
	}
	gauge("dne_live_edges", "Live edges currently placed.",
		func(s Stats) float64 { return float64(s.NumEdges) })
	gauge("dne_live_vertices", "Vertices named by live edges.",
		func(s Stats) float64 { return float64(s.NumVertices) })
	gauge("dne_live_partitions", "Partition count of the live graph.",
		func(s Stats) float64 { return float64(s.NumParts) })
	gauge("dne_live_replication_factor", "Replication factor of the live placement.",
		func(s Stats) float64 { return s.ReplicationFactor })
	gauge("dne_live_edge_balance", "Max/mean partition edge count (1.0 = even).",
		func(s Stats) float64 { return s.EdgeBalance })
	gauge("dne_live_epoch", "Sequence number of the published epoch.",
		func(s Stats) float64 { return float64(s.Epoch) })
	counter("dne_live_events_total", "Mutation events applied since the placement state was created.",
		func(s Stats) float64 { return float64(s.Events) })
	counter("dne_live_moved_edges_total", "Edges migrated by rebalance passes.",
		func(s Stats) float64 { return float64(s.Moved) })
	counter("dne_live_migrated_bytes_total", "Bytes moved by rebalance passes (log append accounting).",
		func(s Stats) float64 { return float64(s.MigratedBytes) })
	counter("dne_live_compactions_total", "Overlay compactions performed.",
		func(s Stats) float64 { return float64(s.Compactions) })

	reg.GaugeFunc("dne_live_overlay_mutations",
		"Uncompacted overlay mutations by operation.",
		func(emit func(v float64, kv ...string)) {
			s := l.Stats()
			emit(float64(s.OverlayAdds), "op", "add")
			emit(float64(s.OverlayDels), "op", "del")
		})
	reg.GaugeFunc("dne_live_partition_edges",
		"Live edges per partition.",
		func(emit func(v float64, kv ...string)) {
			for q, n := range l.Stats().Sizes {
				emit(float64(n), "partition", strconv.Itoa(q))
			}
		})
	reg.CounterFunc("dne_live_recovery_events_total",
		"Crash-recovery events in this process: torn log tails truncated and placement-state rebuilds from replay.",
		func(emit func(v float64, kv ...string)) {
			for _, e := range []struct {
				kind string
				v    int64
			}{
				{"torn_log", liveObs.tornLogs.Load()},
				{"state_rebuild", liveObs.stateRebuilds.Load()},
			} {
				if e.v > 0 {
					emit(float64(e.v), "kind", e.kind)
				}
			}
		})
	reg.CounterFunc("dne_live_recovery_dropped_bytes_total",
		"Torn-tail bytes discarded while recovering live logs.",
		func(emit func(v float64, kv ...string)) {
			if v := liveObs.tornBytes.Load(); v > 0 {
				emit(float64(v))
			}
		})
	reg.GaugeFunc("dne_live_epoch_age_seconds",
		"Seconds since the current epoch was published.",
		func(emit func(v float64, kv ...string)) {
			last := l.lastPublish.Load()
			if last == 0 {
				emit(0)
				return
			}
			emit(time.Since(time.Unix(0, last)).Seconds())
		})
}
