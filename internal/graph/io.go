package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Vertex ids must fit in uint32.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{Vertex(u), Vertex(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return FromEdges(0, edges), nil
}

// WriteEdgeList writes the graph as a text edge list ("u v" per line).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary edge-list format.
const binaryMagic = 0x444e4531 // "DNE1"

// WriteBinary writes a compact binary encoding: magic, |V|, |E|, then pairs of
// little-endian uint32 endpoints.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], g.NumVertices())
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(buf[0:], e.U)
		binary.LittleEndian.PutUint32(buf[4:], e.V)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic in binary edge list")
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	edges := make([]Edge, 0, m)
	var buf [8]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		edges = append(edges, Edge{
			binary.LittleEndian.Uint32(buf[0:]),
			binary.LittleEndian.Uint32(buf[4:]),
		})
	}
	return FromEdges(n, edges), nil
}
