package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Vertex ids must fit in uint32.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{Vertex(u), Vertex(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return FromEdges(0, edges), nil
}

// WriteEdgeList writes the graph as a text edge list ("u v" per line).
// Lines are formatted with strconv.AppendUint into a reused buffer rather
// than per-edge Fprintf; on multi-million-edge graphs that removes the
// dominant formatting cost.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 32)
	for _, e := range g.Edges() {
		buf = strconv.AppendUint(buf[:0], uint64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(e.V), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary edge-list format.
const binaryMagic = 0x444e4531 // "DNE1"

// maxPrealloc caps slice preallocation driven by untrusted header counts: a
// hostile edge count past this bound grows incrementally and fails on the
// short read instead of attempting a huge up-front allocation.
const maxPrealloc = 1 << 20

// Vertex-claim bounds for untrusted headers (found by FuzzBinarySource): a
// graph is O(|V|) to materialize, so a 16-byte file declaring 4G vertices
// and no edges would otherwise command a multi-GiB adjacency allocation.
// Claims up to maxFreeVertices are always accepted; beyond that the file
// must have paid for the claim with real edge bytes, at most
// maxVerticesPerEdge vertices per edge read. Both bounds are far outside
// anything a legitimate writer produces (gengraph emits |E| ≥ |V|/2; road
// networks sit near |E| ≈ 1.2·|V|).
const (
	maxFreeVertices    = 1 << 20
	maxVerticesPerEdge = 256
)

// checkVertexClaim validates an untrusted vertex-count claim against the
// number of edges backing it (read from, or declared by, the stream).
func checkVertexClaim(n uint32, edges uint64) error {
	if uint64(n) > maxFreeVertices && uint64(n) > edges*maxVerticesPerEdge {
		return fmt.Errorf("graph: header claims %d vertices but stream holds only %d edges; claim exceeds %d + %d per edge",
			n, edges, maxFreeVertices, maxVerticesPerEdge)
	}
	return nil
}

// ioPageEdges is the number of edges batched per binary read/write (32 KiB).
const ioPageEdges = 4096

// WriteBinary writes a compact binary encoding: magic, |V|, |E|, then pairs of
// little-endian uint32 endpoints, batched into page-sized writes.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], g.NumVertices())
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, ioPageEdges*8)
	for _, e := range g.Edges() {
		buf = binary.LittleEndian.AppendUint32(buf, e.U)
		buf = binary.LittleEndian.AppendUint32(buf, e.V)
		if len(buf) == cap(buf) {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format written by WriteBinary. The header is treated
// as untrusted: preallocation is capped, and every endpoint is validated
// against the declared vertex count, so a truncated or corrupt file errors
// instead of producing an invalid graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic in binary edge list")
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	prealloc := m
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	edges := make([]Edge, 0, prealloc)
	page := make([]byte, ioPageEdges*8)
	for done := uint64(0); done < m; {
		chunk := uint64(ioPageEdges)
		if rem := m - done; rem < chunk {
			chunk = rem
		}
		b := page[:chunk*8]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", done, err)
		}
		for i := uint64(0); i < chunk; i++ {
			u := binary.LittleEndian.Uint32(b[i*8:])
			v := binary.LittleEndian.Uint32(b[i*8+4:])
			if u >= n || v >= n {
				return nil, fmt.Errorf("graph: edge %d endpoint (%d,%d) out of range [0,%d)",
					done+i, u, v, n)
			}
			edges = append(edges, Edge{u, v})
		}
		done += chunk
	}
	if err := checkVertexClaim(n, uint64(len(edges))); err != nil {
		return nil, err
	}
	return FromEdges(n, edges), nil
}
