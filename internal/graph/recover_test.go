package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTwoChunkShard materializes a shard with two chunks (3 + 2 edges) so
// torn-tail cases can land inside the second frame while the first survives.
// Layout: 28-byte header, chunk1 at 28 (4+24), chunk2 at 56 (4+16),
// terminator at 76, footer at 80, total 88 bytes.
func writeTwoChunkShard(t *testing.T, path string) ([]byte, []uint64) {
	t.Helper()
	first := []Edge{{0, 1}, {1, 2}, {2, 3}}
	writeShardFile(t, path, 64, first)
	sw, err := OpenShardAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	second := []Edge{{5, 6}, {7, 8}}
	for _, e := range second {
		if err := sw.Append(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for _, e := range append(first, second...) {
		want = append(want, PackEdge(e.U, e.V))
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 88 {
		t.Fatalf("fixture is %d bytes, layout comments assume 88", len(b))
	}
	return b, want
}

// TestRecoverShardTail: every tail a SIGKILL (or bit rot) can leave behind
// either recovers to the longest valid chunk prefix or — when the header
// itself is gone — fails without touching the file. Recovered files must be
// fully valid: readable, reopenable for append, and idempotent under a
// second recovery pass.
func TestRecoverShardTail(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func(b []byte) []byte
		wantEdges int    // prefix length surviving recovery
		wantDrop  bool   // droppedBytes > 0 expected
		wantErr   string // non-empty: recovery must fail mentioning this
	}{
		{
			name:      "valid file untouched",
			mutate:    func(b []byte) []byte { return b },
			wantEdges: 5,
		},
		{
			name:      "torn mid-footer",
			mutate:    func(b []byte) []byte { return b[:len(b)-5] },
			wantEdges: 5,
			wantDrop:  true,
		},
		{
			name:      "missing terminator",
			mutate:    func(b []byte) []byte { return b[:76] },
			wantEdges: 5,
		},
		{
			name:      "torn mid-chunk-count",
			mutate:    func(b []byte) []byte { return b[:58] },
			wantEdges: 3,
			wantDrop:  true,
		},
		{
			name:      "torn mid-payload",
			mutate:    func(b []byte) []byte { return b[:70] },
			wantEdges: 3,
			wantDrop:  true,
		},
		{
			name:      "junk after terminator",
			mutate:    func(b []byte) []byte { return append(b, 0xaa, 0xbb, 0xcc) },
			wantEdges: 5,
			wantDrop:  true,
		},
		{
			name: "garbage edges in tail chunk",
			mutate: func(b []byte) []byte {
				b[60+4] = 0xff // edge {5,6} becomes non-canonical (u >= v)
				return b
			},
			wantEdges: 3,
			wantDrop:  true,
		},
		{
			name: "hostile chunk length",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[56:], maxShardChunkEdges+1)
				return b
			},
			wantEdges: 3,
			wantDrop:  true,
		},
		{
			name: "footer total tampered",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[len(b)-8:], 99)
				return b
			},
			wantEdges: 5,
			wantDrop:  true,
		},
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			wantErr: "bad magic",
		},
		{
			name:    "bad version",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 99); return b },
			wantErr: "unsupported version",
		},
		{
			name:    "truncated header",
			mutate:  func(b []byte) []byte { return b[:20] },
			wantErr: "header",
		},
		{
			name:    "empty file",
			mutate:  func(b []byte) []byte { return nil },
			wantErr: "header",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.esh")
			base, want := writeTwoChunkShard(t, path)
			mutated := tc.mutate(append([]byte(nil), base...))
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}

			edges, dropped, err := RecoverShardTail(path)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("recovered an unrecoverable file (%d edges)", edges)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				after, rerr := os.ReadFile(path)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if !bytes.Equal(mutated, after) {
					t.Fatal("failed recovery modified the file")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if int(edges) != tc.wantEdges {
				t.Fatalf("recovered %d edges, want %d", edges, tc.wantEdges)
			}
			if tc.wantDrop && dropped == 0 {
				t.Fatal("expected dropped tail bytes, got 0")
			}
			if !tc.wantDrop && tc.name == "valid file untouched" {
				after, rerr := os.ReadFile(path)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if dropped != 0 || !bytes.Equal(base, after) {
					t.Fatalf("valid file was modified (dropped=%d)", dropped)
				}
			}

			// The recovered file must be a fully valid shard replaying
			// exactly the surviving prefix.
			s := readShardFileT(t, path)
			if len(s.Packed) != tc.wantEdges {
				t.Fatalf("read back %d edges, want %d", len(s.Packed), tc.wantEdges)
			}
			for i := 0; i < tc.wantEdges; i++ {
				if s.Packed[i] != want[i] {
					t.Fatalf("edge %d = %#x, want %#x", i, s.Packed[i], want[i])
				}
			}

			// A second pass must be a no-op.
			edges2, dropped2, err := RecoverShardTail(path)
			if err != nil || edges2 != edges || dropped2 != 0 {
				t.Fatalf("recovery not idempotent: edges %d->%d dropped %d err %v",
					edges, edges2, dropped2, err)
			}

			// And the file must accept further appends.
			sw, err := OpenShardAppend(path)
			if err != nil {
				t.Fatalf("recovered file rejected for append: %v", err)
			}
			if err := sw.Append(40, 41); err != nil {
				t.Fatal(err)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			if s := readShardFileT(t, path); len(s.Packed) != tc.wantEdges+1 {
				t.Fatalf("post-recovery append: %d edges, want %d", len(s.Packed), tc.wantEdges+1)
			}
		})
	}
}
