package graph

import (
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validBinaryBytes builds a well-formed DNE1 binary edge list for the
// mutation cases below. Layout: 16-byte header (magic, |V|, |E|), then 8
// bytes per edge (two little-endian uint32 endpoints).
func validBinaryBytes(t *testing.T) []byte {
	t.Helper()
	edges := make([]Edge, 0, 600)
	for i := uint32(0); i < 600; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := FromEdges(0, edges)
	path := filepath.Join(t.TempDir(), "v.dne")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// drainSource pulls a full pass, returning the first error (io.EOF mapped
// to nil).
func drainSource(src Source) error {
	es, err := src.Edges()
	if err != nil {
		return err
	}
	defer es.Close()
	for {
		if _, _, err := es.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestBinarySourceRejectsHostileInput is the source counterpart of the
// ReadBinary/ShardReader hardening suites: every corrupted header or
// payload must error — on open or during the pass — never panic, never
// yield a short or invalid stream.
func TestBinarySourceRejectsHostileInput(t *testing.T) {
	base := validBinaryBytes(t)
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
		// onOpen means BinarySource itself must fail; otherwise the error
		// must surface while draining the pass.
		onOpen bool
	}{
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			wantErr: "bad magic",
			onOpen:  true,
		},
		{
			name:    "truncated header",
			mutate:  func(b []byte) []byte { return b[:10] },
			wantErr: "header",
			onOpen:  true,
		},
		{
			name:    "truncated chunk",
			mutate:  func(b []byte) []byte { return b[:len(b)-5] },
			wantErr: "reading edge",
		},
		{
			name:    "empty payload with declared edges",
			mutate:  func(b []byte) []byte { return b[:16] },
			wantErr: "reading edge",
		},
		{
			name: "out-of-range endpoint",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[16:], 1<<30) // first edge's U
				return b
			},
			wantErr: "out of range",
		},
		{
			name: "over-declared edge count",
			mutate: func(b []byte) []byte {
				m := binary.LittleEndian.Uint64(b[8:])
				binary.LittleEndian.PutUint64(b[8:], m+100)
				return b
			},
			wantErr: "reading edge",
		},
		{
			name: "hostile huge edge count",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[8:], 1<<40)
				return b
			},
			wantErr: "reading edge",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), base...))
			path := filepath.Join(t.TempDir(), "h.dne")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := BinarySource(path)
			if tc.onOpen {
				if err == nil {
					t.Fatalf("hostile file accepted at open")
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			err = drainSource(src)
			if err == nil {
				t.Fatal("hostile stream drained without error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDirSourceRejectsBrokenShardSets: the directory source shares
// ReadShardDir's validation — incomplete sets, duplicated indices, mixed
// headers and truncated files are rejected at open.
func TestDirSourceRejectsBrokenShardSets(t *testing.T) {
	g := testSourceGraph()
	write := func(t *testing.T, dir, name string, sh *Shard, index, count uint32) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(f, sh, index, count); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	shards := ShardsOf(g, 2)

	t.Run("empty dir", func(t *testing.T) {
		if _, err := DirSource(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.esh") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "shard-0000-of-0002.esh", shards[0], 0, 2)
		if _, err := DirSource(dir); err == nil || !strings.Contains(err.Error(), "declare 2 shards") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("duplicate index", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "a.esh", shards[0], 0, 2)
		write(t, dir, "b.esh", shards[1], 0, 2)
		if _, err := DirSource(dir); err == nil || !strings.Contains(err.Error(), "shard index 0 in both") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("inconsistent headers", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "a.esh", shards[0], 0, 2)
		other := &Shard{NumVertices: g.NumVertices() + 7, Packed: shards[1].Packed}
		write(t, dir, "b.esh", other, 1, 2)
		if _, err := DirSource(dir); err == nil || !strings.Contains(err.Error(), "inconsistent") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated file", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "shard-0000-of-0002.esh", shards[0], 0, 2)
		path := write(t, dir, "shard-0001-of-0002.esh", shards[1], 1, 2)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)-6], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := DirSource(dir); err == nil {
			t.Fatal("truncated shard set accepted")
		}
	})
}

// TestDirSourceRejectsTrailingBytes: a valid shard file with a forged
// second terminator+footer appended must be rejected at scan time — before
// the bogus tail can skew the directory's exact |E| hint and drive an
// owner-array overrun in a streaming core.
func TestDirSourceRejectsTrailingBytes(t *testing.T) {
	g := testSourceGraph()
	dir := t.TempDir()
	if err := WriteCanonicalShards(dir, g, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ShardFileName(0, 1))
	var tail [12]byte // forged terminator + understated footer
	binary.LittleEndian.PutUint64(tail[4:], uint64(g.NumEdges())-100)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(tail[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DirSource(dir); err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("forged tail accepted: %v", err)
	}
}
