package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"

	"github.com/distributedne/dne/internal/dsa"
)

// EShard is the sharded on-disk edge format: the unit of input for a
// distributed run, so that no rank ever has to hold (or regenerate) the full
// graph. A shard file holds one rank's slice of the raw edge stream as
// packed uint64 canonical edges, framed into bounded chunks so both the
// writer and the reader run in O(chunk) memory regardless of graph scale.
//
// Layout (all little-endian):
//
//	header (28 bytes): magic "ESH1", version, |V| (global), shard index,
//	                   shard count, declared edge count (or unknown sentinel)
//	chunks:            uint32 edge count in (0, maxShardChunkEdges], then
//	                   count packed uint64 edges (u<<32|v with u < v)
//	terminator:        uint32 zero, then a uint64 footer with the total edge
//	                   count actually written
//
// The footer lets a streaming writer (which cannot seek back to patch the
// header) still give readers an end-to-end truncation check, and the
// per-chunk counts bound every allocation the reader makes against a
// hostile or corrupt file.
const (
	shardMagic   = 0x45534831 // "ESH1"
	shardVersion = 1

	// unknownEdgeCount in the header means the shard was streamed and the
	// authoritative count is in the footer.
	unknownEdgeCount = ^uint64(0)

	// shardChunkEdges is the writer's flush granularity (64 KiB of payload).
	shardChunkEdges = 8192

	// maxShardChunkEdges caps the chunk size a reader will accept; a hostile
	// chunk length past this bound errors instead of driving a huge
	// allocation (512 KiB of payload).
	maxShardChunkEdges = 1 << 16
)

// ShardRoute returns the shard a raw edge is routed to when writing a
// sharded graph: a strong hash of the canonical key, so shards are balanced
// and duplicate samples of the same edge land in the same shard. Any
// disjoint routing works for correctness (the distributed shuffle re-routes
// by grid owner and deduplicates), but a fixed one keeps shard files
// reproducible.
func ShardRoute(k uint64, count uint32) uint32 {
	// splitmix64 finalizer (public-domain constants).
	k += 0x9e3779b97f4a7c15
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	k ^= k >> 31
	return uint32(k % uint64(count))
}

// PackEdge packs an undirected edge into its canonical uint64 key
// (min<<32 | max). The ascending order of packed keys is exactly the
// lexicographic (U, V) order of canonical edges.
func PackEdge(u, v Vertex) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// UnpackEdge is the inverse of PackEdge.
func UnpackEdge(k uint64) Edge {
	return Edge{U: Vertex(k >> 32), V: Vertex(k)}
}

// ShardInfo describes one shard's place in a sharded graph.
type ShardInfo struct {
	NumVertices uint32 // global |V|
	Index       uint32 // this shard's index in [0, Count)
	Count       uint32 // number of shards the graph was split into
	NumEdges    uint64 // declared edge count; unknown for streamed shards
}

func (si ShardInfo) validate() error {
	if si.Count == 0 {
		return fmt.Errorf("graph: shard count must be positive")
	}
	if si.Index >= si.Count {
		return fmt.Errorf("graph: shard index %d out of range [0,%d)", si.Index, si.Count)
	}
	return nil
}

// ShardWriter streams packed edges into the EShard format. Memory use is one
// chunk regardless of how many edges are appended; Close writes the
// terminator and footer.
type ShardWriter struct {
	bw    *bufio.Writer
	buf   []byte
	inBuf int // edges currently buffered
	total uint64
	err   error
	info  ShardInfo
	f     *os.File // owned file (CreateShardFile / OpenShardAppend); closed by Close
}

// NewShardWriter writes the EShard header for info and returns a writer.
// The declared edge count is the streaming-unknown sentinel; readers use the
// footer written by Close.
func NewShardWriter(w io.Writer, info ShardInfo) (*ShardWriter, error) {
	if err := info.validate(); err != nil {
		return nil, err
	}
	sw := &ShardWriter{bw: bufio.NewWriter(w), buf: make([]byte, 0, shardChunkEdges*8), info: info}
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], info.NumVertices)
	binary.LittleEndian.PutUint32(hdr[12:], info.Index)
	binary.LittleEndian.PutUint32(hdr[16:], info.Count)
	binary.LittleEndian.PutUint64(hdr[20:], unknownEdgeCount)
	if _, err := sw.bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: writing shard header: %w", err)
	}
	return sw, nil
}

// Append adds an undirected edge, canonicalizing it first. Self loops are
// dropped (as FromEdges would drop them) so shard consumers never see them.
func (sw *ShardWriter) Append(u, v Vertex) error {
	if u == v {
		return nil
	}
	return sw.AppendPacked(PackEdge(u, v))
}

// AppendPacked adds an already-packed canonical edge key.
func (sw *ShardWriter) AppendPacked(k uint64) error {
	if sw.err != nil {
		return sw.err
	}
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf, k)
	sw.inBuf++
	sw.total++
	if sw.inBuf == shardChunkEdges {
		return sw.flushChunk()
	}
	return nil
}

func (sw *ShardWriter) flushChunk() error {
	if sw.inBuf == 0 {
		return sw.err
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(sw.inBuf))
	if _, err := sw.bw.Write(cnt[:]); err != nil {
		sw.err = err
		return err
	}
	if _, err := sw.bw.Write(sw.buf); err != nil {
		sw.err = err
		return err
	}
	sw.buf = sw.buf[:0]
	sw.inBuf = 0
	return nil
}

// NumWritten returns the number of edges appended so far (for a reopened
// writer, the edges already in the file included).
func (sw *ShardWriter) NumWritten() uint64 { return sw.total }

// Info returns the shard placement the writer was created or reopened with.
func (sw *ShardWriter) Info() ShardInfo { return sw.info }

// Close flushes the final chunk and writes the terminator and footer. For
// writers that own their file (CreateShardFile, OpenShardAppend) the file is
// also closed. The writer is unusable afterwards.
func (sw *ShardWriter) Close() error {
	if err := sw.flushChunk(); err != nil {
		sw.closeFile()
		return err
	}
	var tail [12]byte // zero chunk count + uint64 footer
	binary.LittleEndian.PutUint64(tail[4:], sw.total)
	if _, err := sw.bw.Write(tail[:]); err != nil {
		sw.err = err
		sw.closeFile()
		return err
	}
	sw.err = fmt.Errorf("graph: shard writer closed")
	if err := sw.bw.Flush(); err != nil {
		sw.closeFile()
		return err
	}
	return sw.closeFile()
}

func (sw *ShardWriter) closeFile() error {
	if sw.f == nil {
		return nil
	}
	f := sw.f
	sw.f = nil
	return f.Close()
}

// CreateShardFile creates (or truncates) path and returns a writer that owns
// the file: Close writes the terminator and footer and closes it.
func CreateShardFile(path string, info ShardInfo) (*ShardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sw, err := NewShardWriter(f, info)
	if err != nil {
		f.Close()
		return nil, err
	}
	sw.f = f
	return sw, nil
}

// OpenShardAppend reopens an existing EShard file for appending: the frame
// structure is validated end to end exactly as a reader would (bounded chunk
// lengths, footer matching the summed chunk counts, nothing after the
// terminator — a truncated or tampered file errors instead of being extended),
// the 12-byte terminator+footer tail is cut off, and subsequent Appends
// continue the chunk sequence where the file left off. Close rewrites the
// terminator and footer with the new total. The header's declared edge count
// is rewritten to the streaming-unknown sentinel up front, so even a crash
// between open and close leaves a file whose header never contradicts its
// contents (readers detect the missing terminator instead).
func OpenShardAppend(path string) (*ShardWriter, error) {
	sf, err := peekShardFile(path, true)
	if err != nil {
		return nil, err
	}
	if sf.compressed {
		// Reopening a compressed shard for append would need the last chunk's
		// delta context restored; raw append streams (the live path) use
		// EShard, so keep this opener raw-only.
		return nil, fmt.Errorf("graph: %s: appending to compressed (ESZ1) shards is not supported", path)
	}
	info, total := sf.info, sf.numEdges
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	// Header count -> unknown sentinel: the authoritative count lives in the
	// footer from now on.
	var sentinel [8]byte
	binary.LittleEndian.PutUint64(sentinel[:], unknownEdgeCount)
	if _, err := f.WriteAt(sentinel[:], 20); err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: rewriting shard header count: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(st.Size() - 12); err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: truncating shard tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	info.NumEdges = unknownEdgeCount
	return &ShardWriter{
		bw:    bufio.NewWriter(f),
		buf:   make([]byte, 0, shardChunkEdges*8),
		total: total,
		info:  info,
		f:     f,
	}, nil
}

// ShardReader streams an EShard file chunk by chunk. The header is treated
// as untrusted: every chunk length is bounded, every endpoint is validated
// against the declared vertex count, and the footer must match the edges
// actually read, so truncated or hostile files error instead of yielding a
// bad shard.
type ShardReader struct {
	br   *bufio.Reader
	info ShardInfo
	page []byte
	buf  []uint64
	read uint64
	done bool
}

// NewShardReader parses and validates the header.
func NewShardReader(r io.Reader) (*ShardReader, error) {
	return newShardReaderFrom(bufio.NewReader(r))
}

// newShardReaderFrom is NewShardReader over an existing buffered reader, so
// format-dispatching openers (NewChunkReader) can peek the magic first.
func newShardReaderFrom(br *bufio.Reader) (*ShardReader, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading shard header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		return nil, fmt.Errorf("graph: bad magic in edge shard")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		return nil, fmt.Errorf("graph: unsupported shard version %d", v)
	}
	info := ShardInfo{
		NumVertices: binary.LittleEndian.Uint32(hdr[8:]),
		Index:       binary.LittleEndian.Uint32(hdr[12:]),
		Count:       binary.LittleEndian.Uint32(hdr[16:]),
		NumEdges:    binary.LittleEndian.Uint64(hdr[20:]),
	}
	if err := info.validate(); err != nil {
		return nil, err
	}
	return &ShardReader{br: br, info: info}, nil
}

// Info returns the shard's header metadata.
func (sr *ShardReader) Info() ShardInfo { return sr.info }

// Next returns the next chunk of packed edges. The returned slice is reused
// by subsequent calls. It returns io.EOF after the terminator, once the
// footer has been validated against the edges read.
func (sr *ShardReader) Next() ([]uint64, error) {
	if sr.done {
		return nil, io.EOF
	}
	var cnt [4]byte
	if _, err := io.ReadFull(sr.br, cnt[:]); err != nil {
		return nil, fmt.Errorf("graph: reading shard chunk header at edge %d: %w", sr.read, err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n == 0 {
		// Terminator: validate the footer and the declared header count.
		var foot [8]byte
		if _, err := io.ReadFull(sr.br, foot[:]); err != nil {
			return nil, fmt.Errorf("graph: reading shard footer: %w", err)
		}
		total := binary.LittleEndian.Uint64(foot[:])
		if total != sr.read {
			return nil, fmt.Errorf("graph: shard footer declares %d edges, read %d", total, sr.read)
		}
		if sr.info.NumEdges != unknownEdgeCount && sr.info.NumEdges != sr.read {
			return nil, fmt.Errorf("graph: shard header declares %d edges, read %d", sr.info.NumEdges, sr.read)
		}
		sr.done = true
		return nil, io.EOF
	}
	if n > maxShardChunkEdges {
		return nil, fmt.Errorf("graph: shard chunk of %d edges exceeds cap %d", n, maxShardChunkEdges)
	}
	if cap(sr.page) < int(n)*8 {
		sr.page = make([]byte, n*8)
		sr.buf = make([]uint64, n)
	}
	page := sr.page[:n*8]
	if _, err := io.ReadFull(sr.br, page); err != nil {
		return nil, fmt.Errorf("graph: reading shard chunk at edge %d: %w", sr.read, err)
	}
	buf := sr.buf[:n]
	nv := uint64(sr.info.NumVertices)
	for i := range buf {
		k := binary.LittleEndian.Uint64(page[i*8:])
		u, v := k>>32, k&0xffffffff
		if u >= v {
			return nil, fmt.Errorf("graph: shard edge %d (%d,%d) not canonical (want u < v)",
				sr.read+uint64(i), u, v)
		}
		if v >= nv {
			return nil, fmt.Errorf("graph: shard edge %d endpoint %d out of range [0,%d)",
				sr.read+uint64(i), v, nv)
		}
		buf[i] = k
	}
	sr.read += uint64(n)
	return buf, nil
}

// Shard is one rank's in-memory slice of a sharded graph: the global vertex
// count plus packed canonical edges. Edges may contain duplicates (the raw
// stream is not globally deduplicated); SortDedup or the distributed shuffle
// compacts them.
type Shard struct {
	NumVertices uint32
	Packed      []uint64
}

// NumEdges returns the number of packed edges held (duplicates included).
func (s *Shard) NumEdges() int64 { return int64(len(s.Packed)) }

// Bytes returns the memory held by the packed edge slice.
func (s *Shard) Bytes() int64 { return int64(len(s.Packed)) * 8 }

// SortDedup sorts the packed edges ascending and removes duplicates in
// place. Ascending packed order is canonical (U, V) order.
func (s *Shard) SortDedup() {
	dsa.SortU64(s.Packed)
	s.Packed = slices.Compact(s.Packed)
}

// ReadShard loads a whole EShard stream into memory, with capped
// preallocation against hostile headers.
func ReadShard(r io.Reader) (*Shard, error) {
	sr, err := NewShardReader(r)
	if err != nil {
		return nil, err
	}
	prealloc := sr.Info().NumEdges
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	s := &Shard{NumVertices: sr.Info().NumVertices, Packed: make([]uint64, 0, prealloc)}
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		s.Packed = append(s.Packed, chunk...)
	}
}

// WriteShard writes s as an EShard stream with the given placement.
func WriteShard(w io.Writer, s *Shard, index, count uint32) error {
	sw, err := NewShardWriter(w, ShardInfo{NumVertices: s.NumVertices, Index: index, Count: count})
	if err != nil {
		return err
	}
	for _, k := range s.Packed {
		if err := sw.AppendPacked(k); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ShardsOf splits g into p synthetic shards — contiguous stripes of the
// canonical edge list. It is the whole-graph adapter for the shard-based
// data plane: a driver that already holds g in memory hands stripe r to rank
// r and the distributed shuffle takes it from there. The stripes are
// disjoint, cover every edge exactly once, and are already sorted and
// deduplicated (they inherit both from the canonical list).
func ShardsOf(g *Graph, p int) []*Shard {
	if p <= 0 {
		panic(fmt.Sprintf("graph: shard count must be positive, got %d", p))
	}
	edges := g.Edges()
	m := len(edges)
	out := make([]*Shard, p)
	for r := 0; r < p; r++ {
		lo, hi := r*m/p, (r+1)*m/p
		packed := make([]uint64, hi-lo)
		for i, e := range edges[lo:hi] {
			packed[i] = PackEdge(e.U, e.V)
		}
		out[r] = &Shard{NumVertices: g.NumVertices(), Packed: packed}
	}
	return out
}

// LocalCSR is a compressed adjacency over a shard's local vertices only: no
// array is sized by the global vertex count, which is what lets a rank index
// its share of a graph whose |V| exceeds its memory. Local vertex ids are
// positions in the sorted Verts slice.
type LocalCSR struct {
	Verts  []Vertex // sorted distinct local vertices
	Off    []int64  // len(Verts)+1 offsets into Target
	Target []Vertex // neighbor global ids, per local adjacency slot
}

// CSR builds the local CSR of the shard's edges. The shard is not modified;
// duplicates contribute parallel adjacency slots, so callers wanting a
// simple graph should SortDedup first.
func (s *Shard) CSR() *LocalCSR {
	// Distinct endpoints, sorted: collect, sort, compact — all O(local).
	verts := make([]Vertex, 0, 2*len(s.Packed))
	for _, k := range s.Packed {
		verts = append(verts, Vertex(k>>32), Vertex(k))
	}
	dsa.SortU32(verts)
	verts = slices.Compact(verts)
	lidOf := func(v Vertex) int {
		i, _ := slices.BinarySearch(verts, v)
		return i
	}
	n := len(verts)
	c := &LocalCSR{Verts: verts, Off: make([]int64, n+1)}
	for _, k := range s.Packed {
		c.Off[lidOf(Vertex(k>>32))+1]++
		c.Off[lidOf(Vertex(k))+1]++
	}
	for v := 0; v < n; v++ {
		c.Off[v+1] += c.Off[v]
	}
	c.Target = make([]Vertex, c.Off[n])
	cursor := make([]int64, n)
	for _, k := range s.Packed {
		u, v := Vertex(k>>32), Vertex(k)
		lu, lv := lidOf(u), lidOf(v)
		c.Target[c.Off[lu]+cursor[lu]] = v
		cursor[lu]++
		c.Target[c.Off[lv]+cursor[lv]] = u
		cursor[lv]++
	}
	return c
}

// LocalID returns the local id of global vertex v, or -1 when v has no local
// edge. O(log |local V|): the mapping is computed, not stored globally.
func (c *LocalCSR) LocalID(v Vertex) int {
	i := sort.Search(len(c.Verts), func(j int) bool { return c.Verts[j] >= v })
	if i < len(c.Verts) && c.Verts[i] == v {
		return i
	}
	return -1
}

// Degree returns the local degree of local vertex lv.
func (c *LocalCSR) Degree(lv int) int64 { return c.Off[lv+1] - c.Off[lv] }

// Neighbors returns the neighbor global ids of local vertex lv. Callers must
// not mutate the slice.
func (c *LocalCSR) Neighbors(lv int) []Vertex { return c.Target[c.Off[lv]:c.Off[lv+1]] }
