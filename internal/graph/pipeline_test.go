package graph

import (
	"io"
	"slices"
	"testing"
)

// countingSource wraps a source and counts how many passes (Edges calls)
// are opened on it — the probe for the shuffle I/O-amplification fix.
type countingSource struct {
	inner Source
	opens int
}

func (c *countingSource) Info() SourceInfo { return c.inner.Info() }
func (c *countingSource) Edges() (EdgeStream, error) {
	c.opens++
	return c.inner.Edges()
}

func drainStream(t *testing.T, src Source) (keys []uint64, pos []int64) {
	t.Helper()
	st, err := src.Edges()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var raw int64
	for {
		ck, cp, err := st.Next()
		if err == io.EOF {
			return keys, pos
		}
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range ck {
			p := raw + int64(j)
			if cp != nil {
				p = cp[j]
			}
			keys = append(keys, k)
			pos = append(pos, p)
		}
		raw += int64(len(ck))
	}
}

// TestPrefetchedTransparent: the decode-ahead decorator must be invisible —
// identical keys and positions, across multiple passes.
func TestPrefetchedTransparent(t *testing.T) {
	base := PackedSource("test", 1<<12, sortedTestKeys(3*SourceChunkEdges+99, 1<<12, 31))
	pref := Prefetched(base, 3)
	wantK, wantP := drainStream(t, base)
	for pass := 0; pass < 2; pass++ {
		gotK, gotP := drainStream(t, pref)
		if !slices.Equal(gotK, wantK) || !slices.Equal(gotP, wantP) {
			t.Fatalf("pass %d: prefetched stream differs from inner stream", pass)
		}
	}
}

// TestPipedShuffleMatchesShuffled is the heart of the pipeline's
// determinism claim: for every seed, the single-pass spill-based shuffle
// must emit the exact key and position sequence of the B-pass sequential
// shuffle.
func TestPipedShuffleMatchesShuffled(t *testing.T) {
	base := PackedSource("test", 1<<12, sortedTestKeys(2*SourceChunkEdges+777, 1<<12, 13))
	for _, seed := range []int64{1, 7, 42, 1_000_003} {
		wantK, wantP := drainStream(t, Shuffled(base, seed))
		gotK, gotP := drainStream(t, PipedShuffle(base, seed))
		if !slices.Equal(gotK, wantK) {
			t.Fatalf("seed %d: piped shuffle emits different keys", seed)
		}
		if !slices.Equal(gotP, wantP) {
			t.Fatalf("seed %d: piped shuffle emits different positions", seed)
		}
	}
}

// TestPipedShuffleMatchesShuffledOverPrefetch: the full pipelined stack
// (PipedShuffle over Prefetched) still matches, and Unwrap exposes the
// prefetcher, not the raw source.
func TestPipedShuffleMatchesShuffledOverPrefetch(t *testing.T) {
	base := PackedSource("test", 1<<11, sortedTestKeys(20_000, 1<<11, 9))
	piped := Piped(base, 42, true)
	wantK, wantP := drainStream(t, Shuffled(base, 42))
	gotK, gotP := drainStream(t, piped)
	if !slices.Equal(gotK, wantK) || !slices.Equal(gotP, wantP) {
		t.Fatal("piped stack differs from sequential shuffle")
	}
	u, ok := piped.(Unwrapper)
	if !ok {
		t.Fatal("piped shuffle does not unwrap")
	}
	if _, isPref := u.Unwrap().(*prefetchedSource); !isPref {
		t.Fatalf("Unwrap returned %T, want the prefetched source", u.Unwrap())
	}
}

// TestShuffleStreamOpenCounts pins the I/O amplification this PR fixes:
// one full pass over Shuffled opens the underlying source once PER BUCKET
// (the documented B× re-read), while PipedShuffle opens it exactly once.
func TestShuffleStreamOpenCounts(t *testing.T) {
	keys := sortedTestKeys(10_000, 1<<10, 3)

	seq := &countingSource{inner: PackedSource("test", 1<<10, keys)}
	drainStream(t, Shuffled(seq, 42))
	if seq.opens != ShuffleBuckets {
		t.Errorf("sequential shuffle opened the source %d times, want %d (one per bucket)",
			seq.opens, ShuffleBuckets)
	}

	piped := &countingSource{inner: PackedSource("test", 1<<10, keys)}
	drainStream(t, PipedShuffle(piped, 42))
	if piped.opens != 1 {
		t.Errorf("piped shuffle opened the source %d times, want 1", piped.opens)
	}
}

// TestPipedShuffleEarlyClose: abandoning a pass mid-stream must not leak
// the loader goroutine or spill files (Close blocks until cleanup).
func TestPipedShuffleEarlyClose(t *testing.T) {
	base := PackedSource("test", 1<<12, sortedTestKeys(5*SourceChunkEdges, 1<<12, 17))
	src := PipedShuffle(base, 7)
	st, err := src.Edges()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh pass after an abandoned one must still work and match.
	wantK, _ := drainStream(t, Shuffled(base, 7))
	gotK, _ := drainStream(t, src)
	if !slices.Equal(gotK, wantK) {
		t.Fatal("pass after early close differs")
	}
}
