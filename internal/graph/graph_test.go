package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesDedupAndCanon(t *testing.T) {
	g := FromEdges(0, []Edge{
		{1, 2}, {2, 1}, {1, 2}, // duplicates in both orders
		{3, 3}, // self loop dropped
		{0, 4},
	})
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.U > e.V {
			t.Errorf("edge %v not canonical", e)
		}
	}
}

func TestFromEdgesExplicitVertexCount(t *testing.T) {
	g := FromEdges(10, []Edge{{0, 1}})
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", g.NumVertices())
	}
	if g.Degree(9) != 0 {
		t.Errorf("isolated vertex degree = %d", g.Degree(9))
	}
}

func TestCSRConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var raw []Edge
	for i := 0; i < 500; i++ {
		raw = append(raw, Edge{uint32(rng.Intn(50)), uint32(rng.Intn(50))})
	}
	g := FromEdges(50, raw)
	// Sum of degrees must equal 2|E|.
	var degSum int64
	for v := uint32(0); v < g.NumVertices(); v++ {
		degSum += g.Degree(v)
	}
	if degSum != 2*g.NumEdges() {
		t.Errorf("degree sum %d != 2|E| %d", degSum, 2*g.NumEdges())
	}
	// Every adjacency slot must reference an edge containing both endpoints.
	for v := uint32(0); v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		ie := g.IncidentEdges(v)
		for s, u := range nb {
			e := g.Edge(int64(ie[s]))
			if e.Other(v) != u {
				t.Fatalf("adjacency slot %d of %d inconsistent: %v vs neighbor %d", s, v, e, u)
			}
		}
	}
}

func TestEdgeOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other on a non-endpoint should panic")
		}
	}()
	Edge{1, 2}.Other(3)
}

func TestDegreesAndMax(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	want := []int64{3, 2, 2, 1}
	if got := g.Degrees(); !reflect.DeepEqual(got, want) {
		t.Errorf("Degrees = %v, want %v", got, want)
	}
	if g.AvgDegree() != 2 {
		t.Errorf("AvgDegree = %f, want 2", g.AvgDegree())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {1, 2}, {0, 5}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Errorf("round trip mismatch: %v vs %v", g.Edges(), g2.Edges())
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n% other\n1 2\n\n3 4 extra-ok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("want error for short line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-numeric line")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var raw []Edge
	for i := 0; i < 300; i++ {
		raw = append(raw, Edge{uint32(rng.Intn(100)), uint32(rng.Intn(100))})
	}
	g := FromEdges(100, raw)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Error("binary round trip mismatch")
	}
	if _, err := ReadBinary(strings.NewReader("garbage header bytes...")); err == nil {
		t.Error("want error for bad magic")
	}
}

func TestQuickCanonicalisationInvariant(t *testing.T) {
	// Property: for any edge multiset, FromEdges yields sorted, unique,
	// canonical, self-loop-free edges covering the same vertex pairs.
	f := func(pairs []struct{ U, V uint16 }) bool {
		raw := make([]Edge, 0, len(pairs))
		want := map[Edge]bool{}
		for _, p := range pairs {
			e := Edge{uint32(p.U), uint32(p.V)}
			raw = append(raw, e)
			if p.U != p.V {
				want[e.Canon()] = true
			}
		}
		g := FromEdges(0, raw)
		if int(g.NumEdges()) != len(want) {
			return false
		}
		prev := Edge{}
		for i, e := range g.Edges() {
			if e.U > e.V || !want[e] {
				return false
			}
			if i > 0 && !lessEdge(prev, e) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func lessEdge(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func TestNeighborsSorted(t *testing.T) {
	// CSR fills adjacency in edge-sorted order, so each vertex's neighbor
	// list arrives grouped; verify lookup correctness rather than order.
	g := FromEdges(0, []Edge{{2, 0}, {0, 1}, {2, 1}})
	nb := append([]Vertex(nil), g.Neighbors(2)...)
	sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	if !reflect.DeepEqual(nb, []Vertex{0, 1}) {
		t.Errorf("Neighbors(2) = %v", nb)
	}
}
