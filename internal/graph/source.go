package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync/atomic"
)

// Source is the input side of the partitioner API: a re-streamable supply of
// edges. It is what lets every single-pass method partition a graph larger
// than any machine's memory — the stream is consumed chunk by chunk, never
// materialized.
//
// The contract every implementation honors:
//
//   - Edges opens a fresh pass over the same edge sequence each time it is
//     called (multi-pass methods count degrees on one pass and assign on the
//     next). Passes are deterministic: the same source yields the same
//     sequence every time.
//   - Chunks hold packed canonical keys (PackEdge: min<<32|max) and never
//     contain self loops; sources canonicalize and drop self loops exactly
//     as FromEdges would.
//   - Hints in SourceInfo are exact when non-zero and 0 when unknown.
//
// A source backed by an in-memory Graph (SourceOf) yields the canonical
// deduplicated edge list in index order, so a partitioning computed from it
// is indexed exactly like one computed from the graph itself. Shard
// directories written as canonical stripes (ShardsOf / gengraph -canonical)
// replay that same sequence from disk in O(chunk) memory, which is what
// makes the source path bit-identical to the in-memory path. Raw sources
// (hash-routed shard dirs, generator sample streams) yield a valid stream
// whose positions index the stream itself, duplicates included.
type Source interface {
	// Info returns what the source knows about its stream up front.
	Info() SourceInfo
	// Edges opens a fresh pass over the stream.
	Edges() (EdgeStream, error)
}

// SourceInfo describes a source's stream. Zero values mean unknown; non-zero
// values are exact.
type SourceInfo struct {
	// Name identifies the origin for logs and stats ("graph", "shard-dir:…").
	Name string
	// NumVertices is the global vertex-id space size (max id + 1).
	NumVertices uint32
	// NumEdges is the exact number of edges the stream yields, or 0 when the
	// source cannot know without a pass (generator streams that drop self
	// loops on the fly).
	NumEdges int64
}

// EdgeStream is one pass over a source. The chunks returned by Next are
// reused by subsequent calls; callers must consume them before calling Next
// again.
type EdgeStream interface {
	// Next returns the next chunk of packed canonical edges, or io.EOF after
	// the last chunk. pos, when non-nil, is aligned with keys and carries
	// each edge's position in the source's raw stream; a nil pos means the
	// chunk is sequential — positions continue from the running edge count.
	// Order decorators (Shuffled) emit edges out of raw order and use pos to
	// say where each one came from, so a partitioning's Owner array is
	// always indexed by raw stream position (canonical edge index, for
	// canonical sources) no matter the processing order. A stream that
	// errors is permanently broken.
	Next() (keys []uint64, pos []int64, err error)
	// Close releases the pass's resources. It is safe after io.EOF.
	Close() error
}

// Unwrapper is implemented by order decorators; consumers running
// order-independent passes (degree counting, quality measurement) unwrap to
// scan the raw source directly.
type Unwrapper interface {
	Unwrap() Source
}

// RawSource strips order decorators off src.
func RawSource(src Source) Source {
	for {
		u, ok := src.(Unwrapper)
		if !ok {
			return src
		}
		src = u.Unwrap()
	}
}

// SourceChunkEdges is the chunk granularity of in-process sources (64 KiB of
// payload), matching the EShard on-disk chunking.
const SourceChunkEdges = shardChunkEdges

// SourceBufferBytes is the analytic accounting charge for one open stream's
// chunk buffers (encoded page + decoded chunk at the standard chunk size).
// Stream partitioners add it per pass they hold open.
const SourceBufferBytes = int64(SourceChunkEdges * (8 + 8))

// ---------------------------------------------------------------------------
// Graph-backed source

type graphSource struct{ g *Graph }

// SourceOf adapts an in-memory graph into a Source that yields the canonical
// edge list in index order. It is the bridge that keeps Partition(ctx, g,
// spec) a thin wrapper over the stream path: both consume the exact same
// sequence.
func SourceOf(g *Graph) Source { return graphSource{g} }

func (s graphSource) Info() SourceInfo {
	return SourceInfo{Name: "graph", NumVertices: s.g.NumVertices(), NumEdges: s.g.NumEdges()}
}

func (s graphSource) Edges() (EdgeStream, error) {
	return &graphStream{edges: s.g.Edges(), buf: make([]uint64, 0, SourceChunkEdges)}, nil
}

type graphStream struct {
	edges []Edge
	pos   int
	buf   []uint64
}

func (st *graphStream) Next() ([]uint64, []int64, error) {
	if st.pos >= len(st.edges) {
		return nil, nil, io.EOF
	}
	n := len(st.edges) - st.pos
	if n > SourceChunkEdges {
		n = SourceChunkEdges
	}
	buf := st.buf[:n]
	for i, e := range st.edges[st.pos : st.pos+n] {
		buf[i] = uint64(e.U)<<32 | uint64(e.V) // already canonical
	}
	st.pos += n
	return buf, nil, nil
}

func (st *graphStream) Close() error { return nil }

// ---------------------------------------------------------------------------
// Packed-slice source (shards already in memory, tests)

type packedSource struct {
	name        string
	numVertices uint32
	keys        []uint64
}

// PackedSource wraps an in-memory packed edge slice (canonical keys, no self
// loops) as a Source. The slice is not copied; callers must not mutate it
// while the source is in use.
func PackedSource(name string, numVertices uint32, keys []uint64) Source {
	return packedSource{name: name, numVertices: numVertices, keys: keys}
}

// Source adapts the shard's packed edges into a re-streamable Source.
func (s *Shard) Source() Source { return PackedSource("shard", s.NumVertices, s.Packed) }

func (s packedSource) Info() SourceInfo {
	return SourceInfo{Name: s.name, NumVertices: s.numVertices, NumEdges: int64(len(s.keys))}
}

func (s packedSource) Edges() (EdgeStream, error) {
	return &packedStream{keys: s.keys}, nil
}

type packedStream struct {
	keys []uint64
	pos  int
}

func (st *packedStream) Next() ([]uint64, []int64, error) {
	if st.pos >= len(st.keys) {
		return nil, nil, io.EOF
	}
	n := len(st.keys) - st.pos
	if n > SourceChunkEdges {
		n = SourceChunkEdges
	}
	chunk := st.keys[st.pos : st.pos+n]
	st.pos += n
	return chunk, nil, nil
}

func (st *packedStream) Close() error { return nil }

// ---------------------------------------------------------------------------
// Shard-directory source

// DirSource opens a directory of EShard files (*.esh) as a Source. The shard
// set is validated up front exactly like ReadShardDir — consistent headers,
// every index present exactly once, file count matching the declared shard
// count — and each pass streams the files in shard-index order, one
// O(chunk)-memory ShardReader at a time. For canonical stripe sets
// (gengraph -canonical, ShardsOf) index order replays the canonical edge
// list, so partitionings computed from the directory are bit-identical to
// in-memory ones.
func DirSource(dir string) (Source, error) {
	files, err := scanShardDir(dir, true)
	if err != nil {
		return nil, err
	}
	src := &dirSource{dir: dir, files: files}
	for _, f := range files {
		src.numEdges += int64(f.numEdges)
	}
	return src, nil
}

type shardDirFile struct {
	path       string
	info       ShardInfo
	numEdges   uint64 // authoritative count from the footer
	size       int64  // on-disk bytes
	compressed bool   // ESZ1 rather than raw ESH1
}

// scanShardDir validates a shard directory without streaming edge payloads:
// every header is read and cross-checked. Both raw EShard files (*.esh) and
// compressed ESZ1 files (*.esz) are recognized, and a directory may mix
// them — the formats yield identical edge streams, only the bytes differ.
// With exact set, each file's frame structure is additionally walked
// (seek-based, payloads untouched) to recover its exact edge count — the
// basis of DirSource's |E| hint; without it only the 28-byte headers are
// read, which is all ReadShardDir needs. It is the shared validation under
// ReadShardDir, DirSource, ShardDirStats and graphstat -shard-dir.
func scanShardDir(dir string, exact bool) ([]shardDirFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.esh"))
	if err != nil {
		return nil, err
	}
	zpaths, err := filepath.Glob(filepath.Join(dir, "*.esz"))
	if err != nil {
		return nil, err
	}
	paths = append(paths, zpaths...)
	if len(paths) == 0 {
		return nil, fmt.Errorf("graph: no *.esh or *.esz shard files in %s", dir)
	}
	slices.Sort(paths)
	files := make([]shardDirFile, 0, len(paths))
	seen := make(map[uint32]string)
	for _, path := range paths {
		sf, err := peekShardFile(path, exact)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if prev, dup := seen[sf.info.Index]; dup {
			return nil, fmt.Errorf("graph: shard index %d in both %s and %s", sf.info.Index, prev, path)
		}
		seen[sf.info.Index] = path
		if len(files) > 0 {
			first := files[0]
			if sf.info.NumVertices != first.info.NumVertices || sf.info.Count != first.info.Count {
				return nil, fmt.Errorf("graph: %s header (|V|=%d, %d shards) inconsistent with %s (|V|=%d, %d shards)",
					path, sf.info.NumVertices, sf.info.Count, first.path, first.info.NumVertices, first.info.Count)
			}
		}
		files = append(files, sf)
	}
	if uint32(len(paths)) != files[0].info.Count {
		return nil, fmt.Errorf("graph: %s holds %d shard files but headers declare %d shards",
			dir, len(paths), files[0].info.Count)
	}
	slices.SortFunc(files, func(a, b shardDirFile) int { return int(a.info.Index) - int(b.info.Index) })
	return files, nil
}

// peekShardFile reads one shard file's header and, with exact set,
// recovers its exact edge count by walking the chunk frames — reading each
// chunk header and seeking past the payload — without ever loading edges.
// It dispatches on the magic, so raw EShard and compressed ESZ1 files walk
// under one code path. The walk validates the frame structure end to end:
// bounded chunk lengths, a footer matching the summed counts, and nothing
// after the terminator, so the count the DirSource hint advertises is
// exactly what a streaming pass will yield (a hostile tail appended to a
// valid file cannot skew it).
func peekShardFile(path string, exact bool) (shardDirFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return shardDirFile{}, err
	}
	defer f.Close()
	var hdr [28]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return shardDirFile{}, fmt.Errorf("graph: reading shard header: %w", err)
	}
	var compressed bool
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case shardMagic:
	case zshardMagic:
		compressed = true
	default:
		return shardDirFile{}, fmt.Errorf("graph: bad magic in edge shard")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		return shardDirFile{}, fmt.Errorf("graph: unsupported shard version %d", v)
	}
	info := ShardInfo{
		NumVertices: binary.LittleEndian.Uint32(hdr[8:]),
		Index:       binary.LittleEndian.Uint32(hdr[12:]),
		Count:       binary.LittleEndian.Uint32(hdr[16:]),
		NumEdges:    binary.LittleEndian.Uint64(hdr[20:]),
	}
	if err := info.validate(); err != nil {
		return shardDirFile{}, err
	}
	st, err := f.Stat()
	if err != nil {
		return shardDirFile{}, err
	}
	sf := shardDirFile{path: path, info: info, size: st.Size(), compressed: compressed}
	if !exact {
		return sf, nil
	}
	var total uint64
	offset := int64(28)
	for {
		var cnt [4]byte
		if _, err := f.ReadAt(cnt[:], offset); err != nil {
			return shardDirFile{}, fmt.Errorf("graph: reading shard chunk header at edge %d: %w", total, err)
		}
		offset += 4
		n := binary.LittleEndian.Uint32(cnt[:])
		if n == 0 {
			break
		}
		if n > maxShardChunkEdges {
			return shardDirFile{}, fmt.Errorf("graph: shard chunk of %d edges exceeds cap %d", n, maxShardChunkEdges)
		}
		total += uint64(n)
		if compressed {
			var bl [4]byte
			if _, err := f.ReadAt(bl[:], offset); err != nil {
				return shardDirFile{}, fmt.Errorf("graph: reading compressed shard chunk header at edge %d: %w", total, err)
			}
			offset += 4
			blen := binary.LittleEndian.Uint32(bl[:])
			if blen == 0 || blen > n*maxZChunkPayloadPerEdge {
				return shardDirFile{}, fmt.Errorf("graph: compressed shard chunk payload of %d bytes outside (0,%d]", blen, n*maxZChunkPayloadPerEdge)
			}
			offset += int64(blen)
		} else {
			offset += int64(n) * 8
		}
	}
	var foot [8]byte
	if _, err := f.ReadAt(foot[:], offset); err != nil {
		return shardDirFile{}, fmt.Errorf("graph: reading shard footer: %w", err)
	}
	offset += 8
	if got := binary.LittleEndian.Uint64(foot[:]); got != total {
		return shardDirFile{}, fmt.Errorf("graph: shard footer declares %d edges, chunks hold %d", got, total)
	}
	if info.NumEdges != unknownEdgeCount && info.NumEdges != total {
		return shardDirFile{}, fmt.Errorf("graph: shard header declares %d edges, chunks hold %d", info.NumEdges, total)
	}
	if st.Size() != offset {
		return shardDirFile{}, fmt.Errorf("graph: %d trailing bytes after shard terminator", st.Size()-offset)
	}
	sf.numEdges = total
	return sf, nil
}

// ByteMeter is implemented by sources that can report the total bytes read
// from underlying storage across every pass opened so far. dnepart and the
// stream experiment use it to report on-disk traffic next to edges/sec —
// the number that shows compressed shards moving fewer bytes for the same
// stream.
type ByteMeter interface {
	BytesRead() int64
}

type dirSource struct {
	dir      string
	files    []shardDirFile
	numEdges int64
	bytes    atomic.Int64 // storage bytes read across all passes
}

func (s *dirSource) Info() SourceInfo {
	return SourceInfo{
		Name:        "shard-dir:" + s.dir,
		NumVertices: s.files[0].info.NumVertices,
		NumEdges:    s.numEdges,
	}
}

// BytesRead reports storage bytes consumed by this source's streams so far.
func (s *dirSource) BytesRead() int64 { return s.bytes.Load() }

func (s *dirSource) Edges() (EdgeStream, error) {
	return &dirStream{files: s.files, bytes: &s.bytes}, nil
}

// meteredReader counts bytes pulled from the underlying file into both the
// owning source's meter and the package-wide stream counter behind
// dne_stream_bytes_read_total.
type meteredReader struct {
	r io.Reader
	n *atomic.Int64
}

func (mr meteredReader) Read(p []byte) (int, error) {
	n, err := mr.r.Read(p)
	if n > 0 {
		mr.n.Add(int64(n))
		streamBytesRead.Add(int64(n))
	}
	return n, err
}

type dirStream struct {
	files []shardDirFile
	next  int
	f     *os.File
	cr    ChunkReader
	bytes *atomic.Int64
}

func (st *dirStream) Next() ([]uint64, []int64, error) {
	for {
		if st.cr == nil {
			if st.next >= len(st.files) {
				return nil, nil, io.EOF
			}
			f, err := os.Open(st.files[st.next].path)
			if err != nil {
				return nil, nil, err
			}
			cr, err := NewChunkReader(meteredReader{r: f, n: st.bytes})
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("%s: %w", st.files[st.next].path, err)
			}
			st.f, st.cr = f, cr
			st.next++
		}
		chunk, err := st.cr.Next()
		if err == io.EOF {
			cerr := st.f.Close()
			st.f, st.cr = nil, nil
			if cerr != nil {
				return nil, nil, cerr
			}
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", st.files[st.next-1].path, err)
		}
		return chunk, nil, nil
	}
}

func (st *dirStream) Close() error {
	if st.f != nil {
		err := st.f.Close()
		st.f, st.cr = nil, nil
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Binary edge-list source (the DNE1 format of WriteBinary/ReadBinary)

// BinarySource opens a DNE1 binary edge list (WriteBinary's format) as a
// Source. The header is validated on open and re-validated per pass; like
// ReadBinary, every endpoint is range-checked against the declared vertex
// count and a stream shorter than the declared edge count errors, so a
// truncated or hostile file can never yield a silently short or invalid
// stream. Edges are canonicalized and self loops dropped on the fly, as
// FromEdges would; for files written by WriteBinary (already canonical and
// deduplicated) the stream is exactly the graph's canonical edge list.
func BinarySource(path string) (Source, error) {
	src := &binarySource{path: path}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, m, err := readBinaryHeader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Consumers allocate O(|V|) partitioner state straight from Info(), so
	// the vertex claim must be paid for by the declared edge count before
	// any pass runs; a lying edge count then fails on the short read.
	if err := checkVertexClaim(n, m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	src.numVertices, src.declared = n, m
	return src, nil
}

func readBinaryHeader(r io.Reader) (uint32, uint64, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return 0, 0, fmt.Errorf("graph: bad magic in binary edge list")
	}
	return binary.LittleEndian.Uint32(hdr[4:]), binary.LittleEndian.Uint64(hdr[8:]), nil
}

type binarySource struct {
	path        string
	numVertices uint32
	declared    uint64
}

func (s *binarySource) Info() SourceInfo {
	// The declared edge count bounds the stream, but self loops (legal in
	// hand-written files, dropped by this source exactly as ReadBinary
	// drops them) make the post-drop count unknowable from the header —
	// and hints must be exact or absent. Consumers resolve the true count
	// with one cheap counting pass (SourceCounts).
	return SourceInfo{Name: "binary:" + s.path, NumVertices: s.numVertices}
}

func (s *binarySource) Edges() (EdgeStream, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	n, m, err := readBinaryHeader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", s.path, err)
	}
	if n != s.numVertices || m != s.declared {
		f.Close()
		return nil, fmt.Errorf("%s: header changed between passes (|V| %d->%d, |E| %d->%d)",
			s.path, s.numVertices, n, s.declared, m)
	}
	return &binaryStream{
		f: f, numVertices: n, remaining: m,
		page: make([]byte, ioPageEdges*8),
		buf:  make([]uint64, ioPageEdges),
	}, nil
}

type binaryStream struct {
	f           *os.File
	numVertices uint32
	remaining   uint64
	read        uint64
	page        []byte
	buf         []uint64
}

func (st *binaryStream) Next() ([]uint64, []int64, error) {
	for st.remaining > 0 {
		chunk := uint64(ioPageEdges)
		if st.remaining < chunk {
			chunk = st.remaining
		}
		b := st.page[:chunk*8]
		if _, err := io.ReadFull(st.f, b); err != nil {
			return nil, nil, fmt.Errorf("graph: reading edge %d of declared %d: %w",
				st.read, st.read+st.remaining, err)
		}
		st.remaining -= chunk
		buf := st.buf[:0]
		for i := uint64(0); i < chunk; i++ {
			u := binary.LittleEndian.Uint32(b[i*8:])
			v := binary.LittleEndian.Uint32(b[i*8+4:])
			if u >= st.numVertices || v >= st.numVertices {
				return nil, nil, fmt.Errorf("graph: edge %d endpoint (%d,%d) out of range [0,%d)",
					st.read+i, u, v, st.numVertices)
			}
			if u == v {
				continue // self loop, dropped as FromEdges would
			}
			buf = append(buf, PackEdge(u, v))
		}
		st.read += chunk
		if len(buf) > 0 {
			return buf, nil, nil
		}
	}
	return nil, nil, io.EOF
}

func (st *binaryStream) Close() error { return st.f.Close() }

// ---------------------------------------------------------------------------
// Materialization and counting

// FromSource drains a source into an in-memory Graph, calling check (when
// non-nil) after every chunk so a long materialization stays cancellable.
// It is the transparent-materialization fallback for methods that cannot
// stream; the result is identical to FromPacked over the full stream
// (sorted, deduplicated), so for a canonical source it reproduces the
// original graph exactly.
func FromSource(src Source, check func(seen int64) error) (*Graph, error) {
	info := src.Info()
	prealloc := info.NumEdges
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	keys := make([]uint64, 0, prealloc)
	st, err := RawSource(src).Edges()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for {
		chunk, _, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		keys = append(keys, chunk...)
		if check != nil {
			if err := check(int64(len(keys))); err != nil {
				return nil, err
			}
		}
	}
	return FromPacked(info.NumVertices, keys), nil
}

// SourceCounts returns the source's exact vertex-id space size and edge
// count, from its hints when both are known and otherwise from one counting
// pass (checking check(edges-seen) periodically for cancellation). Streaming
// methods use it to size dense per-vertex state and stream-length state
// up front; because the counting pass is exact, a method behaves identically
// whether or not the source carried hints.
func SourceCounts(src Source, check func(seen int64) error) (numVertices uint32, numEdges int64, err error) {
	info := src.Info()
	if info.NumVertices > 0 && info.NumEdges > 0 {
		return info.NumVertices, info.NumEdges, nil
	}
	st, err := RawSource(src).Edges()
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()
	var maxV uint32
	var seen int64
	for {
		chunk, _, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		for _, k := range chunk {
			if v := Vertex(k); v >= maxV {
				maxV = v + 1
			}
		}
		seen += int64(len(chunk))
		if check != nil {
			if err := check(seen); err != nil {
				return 0, 0, err
			}
		}
	}
	if info.NumVertices > 0 {
		maxV = info.NumVertices
	}
	return maxV, seen, nil
}
