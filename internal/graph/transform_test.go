package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoTriangles builds two disjoint triangles {0,1,2} and {4,5,6} with vertex
// 3 isolated.
func twoTriangles() *Graph {
	return FromEdges(7, []Edge{
		{0, 1}, {1, 2}, {0, 2},
		{4, 5}, {5, 6}, {4, 6},
	})
}

func TestComponentsLabelsAndCount(t *testing.T) {
	g := twoTriangles()
	comp, n := Components(g)
	if n != 3 { // two triangles + isolated vertex 3
		t.Fatalf("components %d, want 3", n)
	}
	for _, v := range []Vertex{0, 1, 2} {
		if comp[v] != 0 {
			t.Errorf("vertex %d: component %d, want 0", v, comp[v])
		}
	}
	for _, v := range []Vertex{4, 5, 6} {
		if comp[v] != 4 {
			t.Errorf("vertex %d: component %d, want 4", v, comp[v])
		}
	}
	if comp[3] != 3 {
		t.Errorf("isolated vertex: component %d, want 3", comp[3])
	}
}

func TestLargestComponent(t *testing.T) {
	// Triangle + a larger path component.
	g := FromEdges(9, []Edge{
		{0, 1}, {1, 2}, {0, 2}, // triangle (3 vertices)
		{4, 5}, {5, 6}, {6, 7}, {7, 8}, // path (5 vertices)
	})
	lc, mapping := LargestComponent(g)
	if lc.NumVertices() != 5 || lc.NumEdges() != 4 {
		t.Fatalf("largest component |V|=%d |E|=%d, want 5/4", lc.NumVertices(), lc.NumEdges())
	}
	if mapping[0] != 4 || mapping[4] != 8 {
		t.Errorf("mapping %v", mapping)
	}
}

func TestInducedSubgraphRelabels(t *testing.T) {
	g := twoTriangles()
	keep := make([]bool, 7)
	keep[4], keep[5], keep[6] = true, true, true
	sub, mapping := InducedSubgraph(g, keep)
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced |V|=%d |E|=%d", sub.NumVertices(), sub.NumEdges())
	}
	for newID, oldID := range mapping {
		if oldID != Vertex(newID)+4 {
			t.Errorf("mapping[%d]=%d", newID, oldID)
		}
	}
}

func TestCompactIDsDropsIsolated(t *testing.T) {
	g := twoTriangles()
	c, mapping := CompactIDs(g)
	if c.NumVertices() != 6 || c.NumEdges() != 6 {
		t.Fatalf("compact |V|=%d |E|=%d", c.NumVertices(), c.NumEdges())
	}
	for _, old := range mapping {
		if old == 3 {
			t.Error("isolated vertex survived compaction")
		}
	}
}

func TestUnion(t *testing.T) {
	a := FromEdges(0, []Edge{{0, 1}, {1, 2}})
	b := FromEdges(5, []Edge{{1, 2}, {3, 4}})
	u := Union(a, b)
	if u.NumVertices() != 5 || u.NumEdges() != 3 { // {0,1},{1,2},{3,4}
		t.Fatalf("union |V|=%d |E|=%d", u.NumVertices(), u.NumEdges())
	}
}

func TestPermutePreservesDegreeMultiset(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	perm := []Vertex{3, 1, 0, 2}
	p := Permute(g, perm)
	if p.NumEdges() != g.NumEdges() {
		t.Fatalf("edges changed: %d -> %d", g.NumEdges(), p.NumEdges())
	}
	countDegrees := func(g *Graph) map[int64]int {
		m := make(map[int64]int)
		for v := Vertex(0); v < Vertex(g.NumVertices()); v++ {
			m[g.Degree(v)]++
		}
		return m
	}
	a, b := countDegrees(g), countDegrees(p)
	for d, c := range a {
		if b[d] != c {
			t.Errorf("degree %d: count %d vs %d", d, c, b[d])
		}
	}
	if p.Degree(perm[0]) != g.Degree(0) {
		t.Error("vertex 0's degree did not follow the permutation")
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate permutation entry")
		}
	}()
	Permute(g, []Vertex{0, 0})
}

func TestDegeneracyKnownGraphs(t *testing.T) {
	// Complete graph K5: degeneracy 4. Path: 1. Triangle: 2. Empty: 0.
	var k5 []Edge
	for u := Vertex(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5 = append(k5, Edge{u, v})
		}
	}
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K5", FromEdges(5, k5), 4},
		{"path", FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 3}}), 1},
		{"triangle", FromEdges(0, []Edge{{0, 1}, {1, 2}, {0, 2}}), 2},
		{"empty", FromEdges(4, nil), 0},
	}
	for _, c := range cases {
		if got := Degeneracy(c.g); got != c.want {
			t.Errorf("%s: degeneracy %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracyBounds(t *testing.T) {
	// 2·degeneracy ≥ max k with a k-core, and degeneracy ≤ max degree.
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	for i := 0; i < 500; i++ {
		edges = append(edges, Edge{Vertex(rng.Intn(100)), Vertex(rng.Intn(100))})
	}
	g := FromEdges(100, edges)
	d := Degeneracy(g)
	if d > g.MaxDegree() {
		t.Errorf("degeneracy %d exceeds max degree %d", d, g.MaxDegree())
	}
	if d <= 0 {
		t.Errorf("degeneracy %d for a dense random graph", d)
	}
}

func TestQuickComponentsPartitionVertices(t *testing.T) {
	// Property: component labels are idempotent (label of label == label)
	// and two endpoint labels always agree.
	f := func(raw []uint16) bool {
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i] % 64), Vertex(raw[i+1] % 64)})
		}
		g := FromEdges(64, edges)
		comp, _ := Components(g)
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e.V] {
				return false
			}
		}
		for v := range comp {
			if comp[comp[v]] != comp[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickLargestComponentIsConnected(t *testing.T) {
	f := func(raw []uint16, n8 uint8) bool {
		n := Vertex(n8%60) + 4
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Vertex(raw[i]) % n, Vertex(raw[i+1]) % n})
		}
		g := FromEdges(uint32(n), edges)
		lc, _ := LargestComponent(g)
		if lc.NumVertices() == 0 {
			return g.NumEdges() == 0 || lc.NumVertices() > 0
		}
		_, count := Components(lc)
		// All isolated vertices were excluded, so the result is exactly one
		// component unless it is a single vertex.
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
