package graph

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// refFromEdges is the sequential comparator-sort reference build the radix
// construction replaced; FromEdges must reproduce it bit for bit.
func refFromEdges(numVertices uint32, raw []Edge) *Graph {
	edges := make([]Edge, 0, len(raw))
	maxV := uint32(0)
	for _, e := range raw {
		if e.U == e.V {
			continue
		}
		c := e.Canon()
		if c.V >= maxV {
			maxV = c.V + 1
		}
		edges = append(edges, c)
	}
	if numVertices == 0 {
		numVertices = maxV
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	g := &Graph{n: numVertices, edges: out}
	g.buildCSRSequential()
	return g
}

func assertGraphsIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n: %d != %d", got.n, want.n)
	}
	if !slices.Equal(got.edges, want.edges) {
		t.Fatalf("edge lists differ (%d vs %d edges)", len(got.edges), len(want.edges))
	}
	if !slices.Equal(got.adjOff, want.adjOff) {
		t.Fatal("adjOff differs")
	}
	if !slices.Equal(got.adjTarget, want.adjTarget) {
		t.Fatal("adjTarget differs")
	}
	if !slices.Equal(got.adjEdge, want.adjEdge) {
		t.Fatal("adjEdge differs")
	}
}

// TestFromEdgesMatchesReference builds randomized multigraphs (with self
// loops and duplicates) through the new radix/parallel path and the old
// sequential path and asserts identical edge lists and CSR arrays.
func TestFromEdgesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := uint32(1 + rng.Intn(5000))
		m := rng.Intn(40_000)
		raw := make([]Edge, m)
		for i := range raw {
			raw[i] = Edge{U: uint32(rng.Intn(int(n))), V: uint32(rng.Intn(int(n)))}
		}
		// Salt in duplicates.
		for i := 0; i+1 < len(raw); i += 7 {
			raw[i+1] = raw[i]
		}
		got := FromEdges(n, raw)
		want := refFromEdges(n, slices.Clone(raw))
		assertGraphsIdentical(t, got, want)
	}
}

// TestBuildCSRWorkersIdentical forces every worker count (a single-core
// machine would otherwise only exercise w=1) and asserts the parallel fill
// produces the sequential layout.
func TestBuildCSRWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	raw := make([]Edge, 30_000)
	for i := range raw {
		raw[i] = Edge{U: uint32(rng.Intn(2000)), V: uint32(rng.Intn(2000))}
	}
	want := FromEdges(2000, raw)
	for _, w := range []int{2, 3, 7, 16} {
		got := &Graph{n: want.n, edges: slices.Clone(want.edges)}
		got.buildCSRWorkers(w)
		assertGraphsIdentical(t, got, want)
	}
}

func TestFromEdgesEmptyAndTiny(t *testing.T) {
	g := FromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %v", g)
	}
	g = FromEdges(0, []Edge{{U: 3, V: 3}}) // only a self loop
	if g.NumEdges() != 0 {
		t.Fatalf("self loop survived: %v", g)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("self loops must not widen the inferred vertex range: %v", g)
	}
	g = FromEdges(0, []Edge{{U: 5, V: 2}, {U: 2, V: 5}})
	if g.NumEdges() != 1 || g.Edge(0) != (Edge{U: 2, V: 5}) {
		t.Fatalf("canon+dedup wrong: %v %v", g, g.Edges())
	}
}

// BenchmarkGraphBuild measures FromEdges end to end (canonicalize, radix
// sort, dedup, CSR fill) on an RMAT-like skewed multigraph.
func BenchmarkGraphBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const n = 1 << 16
	raw := make([]Edge, 1<<20)
	for i := range raw {
		// Skewed endpoints: square the uniform variate toward 0.
		u := uint32(float64(n-1) * rng.Float64() * rng.Float64())
		v := uint32(rng.Intn(n))
		raw[i] = Edge{U: u, V: v}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromEdges(n, raw)
		if g.NumEdges() == 0 {
			b.Fatal("empty build")
		}
	}
}

// BenchmarkGraphBuildReference is the pre-change sequential comparator
// build on the same input, for before/after comparison.
func BenchmarkGraphBuildReference(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const n = 1 << 16
	raw := make([]Edge, 1<<20)
	for i := range raw {
		u := uint32(float64(n-1) * rng.Float64() * rng.Float64())
		v := uint32(rng.Intn(n))
		raw[i] = Edge{U: u, V: v}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := refFromEdges(n, slices.Clone(raw))
		if g.NumEdges() == 0 {
			b.Fatal("empty build")
		}
	}
}
