package graph

import "fmt"

// Preprocessing transforms. Partitioning evaluations (the paper's included)
// conventionally run on the largest connected component with dense vertex
// ids; these helpers provide that pipeline plus the small algebra used by
// tests and tools.

// Components returns a component id for every vertex (ids are the smallest
// vertex id in the component) and the number of components. Isolated
// vertices form singleton components.
func Components(g *Graph) ([]Vertex, int) {
	parent := make([]Vertex, g.n)
	for v := range parent {
		parent[v] = Vertex(v)
	}
	var find func(v Vertex) Vertex
	find = func(v Vertex) Vertex {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b Vertex) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // root at the smaller id, so labels are canonical
	}
	for _, e := range g.edges {
		union(e.U, e.V)
	}
	count := 0
	out := make([]Vertex, g.n)
	for v := Vertex(0); v < Vertex(g.n); v++ {
		out[v] = find(v)
		if out[v] == v {
			count++
		}
	}
	return out, count
}

// LargestComponent returns the induced subgraph of g's largest connected
// component (ties broken toward the smaller component label) with vertices
// relabelled densely, and the mapping newID -> oldID.
func LargestComponent(g *Graph) (*Graph, []Vertex) {
	comp, _ := Components(g)
	sizes := make(map[Vertex]int64)
	for _, c := range comp {
		sizes[c]++
	}
	var best Vertex
	var bestSize int64 = -1
	//lint:ordered argmax with a total-order tie-break is iteration-order-insensitive
	for c, s := range sizes {
		if s > bestSize || (s == bestSize && c < best) {
			best, bestSize = c, s
		}
	}
	keep := make([]bool, g.n)
	for v, c := range comp {
		keep[v] = c == best
	}
	return InducedSubgraph(g, keep)
}

// InducedSubgraph returns the subgraph induced by the vertices with
// keep[v] == true, relabelled densely in ascending old-id order, plus the
// mapping newID -> oldID. keep must have length NumVertices().
func InducedSubgraph(g *Graph, keep []bool) (*Graph, []Vertex) {
	if len(keep) != int(g.n) {
		panic(fmt.Sprintf("graph: keep length %d != |V| %d", len(keep), g.n))
	}
	newID := make([]int64, g.n)
	var mapping []Vertex
	for v := Vertex(0); v < Vertex(g.n); v++ {
		if keep[v] {
			newID[v] = int64(len(mapping))
			mapping = append(mapping, v)
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			edges = append(edges, Edge{Vertex(newID[e.U]), Vertex(newID[e.V])})
		}
	}
	return FromEdges(uint32(len(mapping)), edges), mapping
}

// CompactIDs removes isolated vertices: the result contains exactly the
// vertices with degree > 0, densely relabelled, plus the newID -> oldID
// mapping. Replication-factor comparisons across tools are only meaningful
// after compaction (isolated ids deflate Eq. 1's denominator).
func CompactIDs(g *Graph) (*Graph, []Vertex) {
	keep := make([]bool, g.n)
	for v := Vertex(0); v < Vertex(g.n); v++ {
		keep[v] = g.Degree(v) > 0
	}
	return InducedSubgraph(g, keep)
}

// Union returns the graph on max(|V_a|,|V_b|) vertices whose edge set is the
// union of a's and b's (duplicates compacted).
func Union(a, b *Graph) *Graph {
	n := a.n
	if b.n > n {
		n = b.n
	}
	edges := make([]Edge, 0, len(a.edges)+len(b.edges))
	edges = append(edges, a.edges...)
	edges = append(edges, b.edges...)
	return FromEdges(n, edges)
}

// Permute relabels vertices by perm (old id -> new id), which must be a
// permutation of [0, |V|). Degree structure is preserved; used to test that
// partitioners depend on structure, not on vertex numbering.
func Permute(g *Graph, perm []Vertex) *Graph {
	if len(perm) != int(g.n) {
		panic(fmt.Sprintf("graph: perm length %d != |V| %d", len(perm), g.n))
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if p >= Vertex(g.n) || seen[p] {
			panic("graph: perm is not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		edges[i] = Edge{perm[e.U], perm[e.V]}
	}
	return FromEdges(g.n, edges)
}

// Degeneracy returns the graph degeneracy (max over the peeling order of the
// minimum remaining degree) — a one-number summary of sparsity used by the
// sheep partitioner's analysis and handy for dataset tables.
func Degeneracy(g *Graph) int64 {
	n := int(g.n)
	if n == 0 {
		return 0
	}
	deg := make([]int64, n)
	maxDeg := int64(0)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(Vertex(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket peeling: O(|V| + |E|).
	buckets := make([][]Vertex, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], Vertex(v))
	}
	removed := make([]bool, n)
	var degeneracy int64
	remaining := n
	cur := int64(0)
	for remaining > 0 {
		if cur > 0 && len(buckets[cur-1]) > 0 {
			cur-- // a neighbor's degree dropped below the current level
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		remaining--
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
			}
		}
	}
	return degeneracy
}
