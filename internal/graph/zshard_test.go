package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// sortedTestKeys builds a sorted canonical packed edge list with a skewed
// (clustered-source) shape, the profile ESZ1 is built for.
func sortedTestKeys(n int, numVertices uint32, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		u := uint32(rng.Intn(int(numVertices) - 1))
		// A burst of edges out of u, mimicking a power-law row.
		burst := 1 + rng.Intn(8)
		for b := 0; b < burst && len(keys) < n; b++ {
			v := u + 1 + uint32(rng.Intn(int(numVertices-u-1)))
			keys = append(keys, uint64(u)<<32|uint64(v))
		}
	}
	slices.Sort(keys)
	return keys
}

func zShardBytes(t *testing.T, numVertices uint32, keys []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := NewZShardWriter(&buf, ShardInfo{NumVertices: numVertices, Index: 0, Count: 1, NumEdges: unknownEdgeCount})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := zw.AppendPacked(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drainZ(r io.Reader) ([]uint64, error) {
	zr, err := NewZShardReader(r)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for {
		chunk, err := zr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}

func TestZShardRoundTrip(t *testing.T) {
	// Spans several chunk boundaries, includes duplicates.
	keys := sortedTestKeys(3*shardChunkEdges+517, 1<<14, 7)
	keys = append(keys, keys[len(keys)-1]) // duplicate tail edge
	slices.Sort(keys)
	b := zShardBytes(t, 1<<14, keys)
	got, err := drainZ(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, keys) {
		t.Fatalf("round trip mismatch: wrote %d edges, read %d", len(keys), len(got))
	}
}

// TestZShardCompressesSortedEdges: the format's reason to exist — sorted
// skewed edge lists must come out far smaller than 8 bytes/edge. The ≥2×
// acceptance bar for real RMAT data is asserted end to end in the root
// stream tests; this is the unit-level floor.
func TestZShardCompressesSortedEdges(t *testing.T) {
	keys := sortedTestKeys(200_000, 1<<16, 42)
	b := zShardBytes(t, 1<<16, keys)
	raw := rawShardBytes(uint64(len(keys)))
	if int64(len(b))*2 > raw {
		t.Fatalf("compressed %d bytes vs raw %d: ratio %.2fx below 2x",
			len(b), raw, float64(raw)/float64(len(b)))
	}
}

// TestZShardWriterRejectsUnsorted: sortedness is the format's invariant;
// out-of-order appends must error at write time, not corrupt the stream.
func TestZShardWriterRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	zw, err := NewZShardWriter(&buf, ShardInfo{NumVertices: 64, Index: 0, Count: 1, NumEdges: unknownEdgeCount})
	if err != nil {
		t.Fatal(err)
	}
	if err := zw.AppendPacked(PackEdge(5, 9)); err != nil {
		t.Fatal(err)
	}
	if err := zw.AppendPacked(PackEdge(2, 3)); err == nil {
		t.Fatal("unsorted append accepted")
	}
}

// zChunk hand-assembles one ESZ1 chunk frame from raw varint pairs so the
// hostile cases below can craft payloads no writer would produce.
func zChunk(n uint32, payload []byte) []byte {
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], n)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	return append(frame, payload...)
}

func zFile(numVertices uint32, declared uint64, chunks ...[]byte) []byte {
	var buf bytes.Buffer
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], zshardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], numVertices)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint32(hdr[16:], 1)
	binary.LittleEndian.PutUint64(hdr[20:], unknownEdgeCount)
	buf.Write(hdr[:])
	var total uint64
	for _, c := range chunks {
		buf.Write(c)
		total += uint64(binary.LittleEndian.Uint32(c[0:4]))
	}
	var tail [12]byte
	if declared == ^uint64(0) {
		declared = total // caller wants a consistent footer
	}
	binary.LittleEndian.PutUint64(tail[4:], declared)
	buf.Write(tail[:])
	return buf.Bytes()
}

func uvarints(vals ...uint64) []byte {
	var b []byte
	for _, v := range vals {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// TestZShardReaderRejectsHostileInput is the ESZ1 counterpart of the EShard
// hardening table: truncated varints, overflowing deltas, over-declared
// chunk counts, payload-length lies and footer contradictions must all
// error — never panic, never allocate per a hostile length, never yield an
// invalid edge.
func TestZShardReaderRejectsHostileInput(t *testing.T) {
	const sentinel = ^uint64(0)
	cases := []struct {
		name    string
		build   func() []byte
		wantErr string
	}{
		{
			name: "bad magic",
			build: func() []byte {
				b := zFile(64, sentinel, zChunk(1, uvarints(1, 0)))
				binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef)
				return b
			},
			wantErr: "bad magic",
		},
		{
			name: "unsupported version",
			build: func() []byte {
				b := zFile(64, sentinel, zChunk(1, uvarints(1, 0)))
				binary.LittleEndian.PutUint32(b[4:], 99)
				return b
			},
			wantErr: "version",
		},
		{
			name: "over-declared chunk count",
			build: func() []byte {
				return zFile(64, sentinel, zChunk(1<<30, uvarints(1, 0)))
			},
			wantErr: "exceeds cap",
		},
		{
			name: "zero payload length",
			build: func() []byte {
				c := zChunk(1, nil)
				return zFile(64, sentinel, c)
			},
			wantErr: "outside (0,",
		},
		{
			name: "payload length over cap",
			build: func() []byte {
				// One declared edge but an 11-byte payload: > 10·n.
				return zFile(64, sentinel, zChunk(1, make([]byte, 11)))
			},
			wantErr: "outside (0,",
		},
		{
			name: "truncated varint payload",
			build: func() []byte {
				// A lone continuation byte: Uvarint finds no terminator.
				return zFile(64, sentinel, zChunk(1, []byte{0x80}))
			},
			wantErr: "truncated or oversized",
		},
		{
			name: "oversized varint",
			build: func() []byte {
				// 10 continuation bytes overflow uint64: Uvarint reports
				// overflow, which must surface as an error, not wrap.
				p := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
				return zFile(64, sentinel, zChunk(1, p))
			},
			wantErr: "truncated or oversized",
		},
		{
			name: "source delta overflows vertex range",
			build: func() []byte {
				// du=70 with |V|=64: u out of range.
				return zFile(64, sentinel, zChunk(1, uvarints(70, 0)))
			},
			wantErr: "out of range",
		},
		{
			name: "destination gap overflows vertex range",
			build: func() []byte {
				// u=1, gap puts v at 1+1+80 = 82 with |V|=64.
				return zFile(64, sentinel, zChunk(1, uvarints(1, 80)))
			},
			wantErr: "out of range",
		},
		{
			name: "same-row gap goes non-canonical",
			build: func() []byte {
				// Edge (1,2), then du=0 with gap 0 from prevV=2 is a legal
				// duplicate — but a second chunk resetting prev to (0,0)
				// makes du=0, gap=1 decode (0,1): fine. To force u>=v, use
				// du=0 on the FIRST edge of a chunk: decodes (0, gap) and
				// gap=0 gives the self loop (0,0).
				return zFile(64, sentinel, zChunk(1, uvarints(0, 0)))
			},
			wantErr: "not canonical",
		},
		{
			name: "stream not sorted across chunks",
			build: func() []byte {
				// Chunk 1 ends at (5,6); chunk 2 restarts at (1,2).
				c1 := zChunk(1, uvarints(5, 0))
				c2 := zChunk(1, uvarints(1, 0))
				return zFile(64, sentinel, c1, c2)
			},
			wantErr: "not sorted",
		},
		{
			name: "payload bytes left over",
			build: func() []byte {
				// One edge declared, two encoded: extra bytes must error.
				return zFile(64, sentinel, zChunk(1, uvarints(1, 0, 0, 1)))
			},
			wantErr: "payload bytes left",
		},
		{
			name: "payload too short for declared edges",
			build: func() []byte {
				// Two edges declared, one encoded: the second read runs off
				// the payload end.
				return zFile(64, sentinel, zChunk(2, uvarints(1, 0)))
			},
			wantErr: "truncated or oversized",
		},
		{
			name: "footer undercounts",
			build: func() []byte {
				return zFile(64, 1, zChunk(1, uvarints(1, 0)), zChunk(1, uvarints(2, 0)))
			},
			wantErr: "footer declares",
		},
		{
			name: "header count contradicts footer",
			build: func() []byte {
				b := zFile(64, sentinel, zChunk(1, uvarints(1, 0)))
				binary.LittleEndian.PutUint64(b[20:], 9999)
				return b
			},
			wantErr: "header declares",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := drainZ(bytes.NewReader(tc.build())); err == nil {
				t.Fatal("hostile compressed shard accepted")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestZShardReaderRejectsTruncation: every strict prefix of a valid
// compressed shard must error.
func TestZShardReaderRejectsTruncation(t *testing.T) {
	keys := sortedTestKeys(2*shardChunkEdges+100, 1<<12, 3)
	full := zShardBytes(t, 1<<12, keys)
	for _, cut := range []int{0, 10, 27, 28, 31, 40, len(full) / 2, len(full) - 9, len(full) - 1} {
		if _, err := drainZ(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestNewChunkReaderDispatch: the magic-peek opener must hand back working
// readers for both formats and reject unknown magics.
func TestNewChunkReaderDispatch(t *testing.T) {
	keys := sortedTestKeys(1000, 1<<10, 11)

	var raw bytes.Buffer
	sw, err := NewShardWriter(&raw, ShardInfo{NumVertices: 1 << 10, Index: 0, Count: 1, NumEdges: unknownEdgeCount})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := sw.AppendPacked(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	comp := zShardBytes(t, 1<<10, keys)

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"raw", raw.Bytes()},
		{"compressed", comp},
	} {
		cr, err := NewChunkReader(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var got []uint64
		for {
			chunk, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got = append(got, chunk...)
		}
		if !slices.Equal(got, keys) {
			t.Fatalf("%s: stream mismatch", tc.name)
		}
	}

	if _, err := NewChunkReader(strings.NewReader("XXXXjunkjunkjunk")); err == nil ||
		!strings.Contains(err.Error(), "unknown shard magic") {
		t.Fatalf("unknown magic: got %v", err)
	}
}

// TestRecoverZShardTail: torn compressed tails recover to the longest valid
// chunk prefix, exactly like raw shards.
func TestRecoverZShardTail(t *testing.T) {
	keys := sortedTestKeys(2*shardChunkEdges+700, 1<<12, 19)
	full := zShardBytes(t, 1<<12, keys)

	cases := []struct {
		name string
		cut  int // bytes to keep
	}{
		{"torn mid footer", len(full) - 5},
		{"torn mid payload", len(full) / 2},
		{"torn mid chunk header", 28 + 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "torn.esz")
			if err := os.WriteFile(path, full[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			edges, dropped, err := RecoverShardTail(path)
			if err != nil {
				t.Fatal(err)
			}
			if dropped == 0 && tc.cut != len(full) {
				t.Error("torn file reported as untouched")
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			got, err := drainZ(f)
			if err != nil {
				t.Fatalf("recovered file does not read: %v", err)
			}
			if uint64(len(got)) != edges {
				t.Fatalf("recover reported %d edges, file holds %d", edges, len(got))
			}
			if !slices.Equal(got, keys[:len(got)]) {
				t.Error("recovered edges are not a prefix of the original stream")
			}
		})
	}

	t.Run("valid file untouched", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ok.esz")
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
		edges, dropped, err := RecoverShardTail(path)
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 0 || edges != uint64(len(keys)) {
			t.Fatalf("valid file: edges=%d dropped=%d", edges, dropped)
		}
	})
}

// TestCompressedShardDir: WriteCanonicalShardsCompressed round-trips through
// DirSource with the exact same stream a raw directory yields, and
// ShardDirStats reports the compression.
func TestCompressedShardDir(t *testing.T) {
	g := FromPacked(1<<12, sortedTestKeys(30_000, 1<<12, 23))
	rawDir, zDir := t.TempDir(), t.TempDir()
	if err := WriteCanonicalShards(rawDir, g, 4); err != nil {
		t.Fatal(err)
	}
	if err := WriteCanonicalShardsCompressed(zDir, g, 4); err != nil {
		t.Fatal(err)
	}

	drain := func(dir string) []uint64 {
		t.Helper()
		src, err := DirSource(dir)
		if err != nil {
			t.Fatal(err)
		}
		if src.Info().NumEdges != g.NumEdges() {
			t.Fatalf("%s: hint %d edges, graph has %d", dir, src.Info().NumEdges, g.NumEdges())
		}
		st, err := src.Edges()
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		var out []uint64
		for {
			chunk, _, err := st.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, chunk...)
		}
	}
	if !slices.Equal(drain(rawDir), drain(zDir)) {
		t.Fatal("compressed dir stream differs from raw dir stream")
	}

	stats, err := ShardDirStats(zDir)
	if err != nil {
		t.Fatal(err)
	}
	var disk, rawEq int64
	for _, s := range stats {
		if !s.Compressed {
			t.Errorf("%s not reported compressed", s.Path)
		}
		if s.Ratio <= 1 {
			t.Errorf("%s: ratio %.2f not > 1", s.Path, s.Ratio)
		}
		disk += s.DiskBytes
		rawEq += rawShardBytes(s.Edges)
	}
	if disk*2 > rawEq {
		t.Errorf("compressed dir %d bytes vs raw-equivalent %d: below 2x", disk, rawEq)
	}

	// A mixed directory (raw + compressed stripes of the same set) also
	// validates and streams, since only the magic differs per file.
	mixDir := t.TempDir()
	for i, name := range []string{ShardFileName(0, 4), ZShardFileName(1, 4), ShardFileName(2, 4), ZShardFileName(3, 4)} {
		from := filepath.Join(rawDir, ShardFileName(i, 4))
		if strings.HasSuffix(name, ".esz") {
			from = filepath.Join(zDir, ZShardFileName(i, 4))
		}
		data, err := os.ReadFile(from)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(mixDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !slices.Equal(drain(mixDir), drain(rawDir)) {
		t.Fatal("mixed dir stream differs from raw dir stream")
	}
}

// TestDirSourceMetersBytes: the source reports the storage bytes its passes
// consumed — about the file set size per full pass.
func TestDirSourceMetersBytes(t *testing.T) {
	g := FromPacked(1<<10, sortedTestKeys(5_000, 1<<10, 5))
	dir := t.TempDir()
	if err := WriteCanonicalShardsCompressed(dir, g, 2); err != nil {
		t.Fatal(err)
	}
	src, err := DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	meter, ok := src.(ByteMeter)
	if !ok {
		t.Fatal("DirSource does not implement ByteMeter")
	}
	st, err := src.Edges()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := st.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	stats, err := ShardDirStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	var disk int64
	for _, s := range stats {
		disk += s.DiskBytes
	}
	if got := meter.BytesRead(); got < disk {
		t.Fatalf("meter reports %d bytes, file set is %d", got, disk)
	}
}
