package graph

import (
	"io"
	"math/rand"
)

// ShuffleBuckets is the bucket count of the streaming shuffle: memory is
// bounded by the largest bucket (≈ |E|/ShuffleBuckets edges plus positions),
// at the cost of one underlying pass per bucket. Fixed so that the emitted
// order is a pure function of (raw sequence, seed), never of the machine.
const ShuffleBuckets = 16

// Shuffled decorates a source with a deterministic seeded stream shuffle.
// Replica-greedy streaming partitioners (HDRF, FENNEL, Oblivious, SNE)
// degenerate on adversarially ordered streams — a sorted canonical edge list
// hands every edge an endpoint it shares with its predecessor, so greedy
// replica reuse collapses the whole stream onto one partition. The classic
// fix is a random arrival order; this decorator produces one without
// materializing the stream:
//
//   - each edge key is hashed (with the seed) into one of ShuffleBuckets
//     buckets — a pseudo-random 1/B subsample of the stream;
//   - buckets are emitted in order, each one buffered, Fisher–Yates
//     shuffled with a per-bucket seeded rng, then streamed out.
//
// The emitted order is deterministic for a given (raw edge sequence, seed):
// two sources replaying the same sequence — an in-memory graph and its
// canonical shard stripes on disk — shuffle identically, which is what keeps
// the two partitioning paths bit-identical. Memory is the largest bucket
// (≈|E|·16B/B). Emitted chunks carry raw-stream positions, so consumers
// index their output by raw position exactly as if they had walked the
// stream in order.
//
// I/O amplification: each full pass over the shuffled stream opens and
// re-reads the WHOLE underlying source once per bucket — the fill loop
// below filters one bucket's ~1/B subsample out of a complete pass and
// discards the rest — so a disk-backed source pays B× its size in reads per
// shuffled pass. That trade buys O(|E|/B) memory with zero spill files and
// is fine for in-memory sources, where a "pass" is a pointer walk. For
// cold-disk runs use PipedShuffle (pipeline.go): one scatter pass spills
// every bucket to temp files in raw order, then drains them through the
// identical per-bucket Fisher–Yates — the same emitted order, reading the
// source exactly once (TestShuffleStreamOpenCounts pins both counts).
func Shuffled(src Source, seed int64) Source {
	return &shuffledSource{inner: src, seed: seed}
}

// shuffleBucketOf routes a key to its shuffle bucket: the seed is mixed in
// so different seeds produce unrelated bucketings (and therefore unrelated
// final orders). Shared by Shuffled and PipedShuffle — identical routing is
// half of what makes their emitted orders identical.
func shuffleBucketOf(k uint64, seed int64) uint32 {
	return ShardRoute(k^(uint64(seed)*0x9e3779b97f4a7c15+0x632be59bd9b4e019), ShuffleBuckets)
}

// shuffleBucket is the in-place per-bucket Fisher–Yates with the
// per-(seed, bucket) rng — the other half of the shared emitted order.
func shuffleBucket(keys []uint64, pos []int64, seed int64, bucket uint32) {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(bucket)))
	for i := len(keys) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		keys[i], keys[j] = keys[j], keys[i]
		pos[i], pos[j] = pos[j], pos[i]
	}
}

type shuffledSource struct {
	inner  Source
	seed   int64
	maxBuf int // largest bucket seen by any pass, for analytic accounting
}

func (s *shuffledSource) Info() SourceInfo {
	info := s.inner.Info()
	info.Name = "shuffled:" + info.Name
	return info
}

// Unwrap exposes the raw source for order-independent passes.
func (s *shuffledSource) Unwrap() Source { return s.inner }

// AccountBytes returns the analytic footprint of the largest bucket buffer
// any pass has held (keys + positions).
func (s *shuffledSource) AccountBytes() int64 { return int64(s.maxBuf) * 16 }

func (s *shuffledSource) Edges() (EdgeStream, error) {
	return &shuffledStream{src: s}, nil
}

// bucketOf routes a key to this source's shuffle bucket.
func (s *shuffledSource) bucketOf(k uint64) uint32 {
	return shuffleBucketOf(k, s.seed)
}

type shuffledStream struct {
	src    *shuffledSource
	bucket int
	keys   []uint64
	pos    []int64
	at     int
}

func (st *shuffledStream) Next() ([]uint64, []int64, error) {
	for {
		if st.at < len(st.keys) {
			n := len(st.keys) - st.at
			if n > SourceChunkEdges {
				n = SourceChunkEdges
			}
			keys := st.keys[st.at : st.at+n]
			pos := st.pos[st.at : st.at+n]
			st.at += n
			return keys, pos, nil
		}
		if st.bucket >= ShuffleBuckets {
			return nil, nil, io.EOF
		}
		if err := st.fill(); err != nil {
			return nil, nil, err
		}
	}
}

// fill buffers and shuffles the next bucket with one pass over the raw
// source.
func (st *shuffledStream) fill() error {
	s := st.src
	bucket := uint32(st.bucket)
	st.bucket++
	st.keys = st.keys[:0]
	st.pos = st.pos[:0]
	st.at = 0
	es, err := s.inner.Edges()
	if err != nil {
		return err
	}
	defer es.Close()
	var raw int64
	for {
		chunk, cpos, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for j, k := range chunk {
			p := raw + int64(j)
			if cpos != nil {
				p = cpos[j]
			}
			if s.bucketOf(k) == bucket {
				st.keys = append(st.keys, k)
				st.pos = append(st.pos, p)
			}
		}
		raw += int64(len(chunk))
	}
	// Fisher–Yates with a per-(seed, bucket) rng: in-place, no index array.
	shuffleBucket(st.keys, st.pos, s.seed, bucket)
	if len(st.keys) > s.maxBuf {
		s.maxBuf = len(st.keys)
	}
	return nil
}

func (st *shuffledStream) Close() error {
	st.keys, st.pos = nil, nil
	st.at = 0
	st.bucket = ShuffleBuckets
	return nil
}
