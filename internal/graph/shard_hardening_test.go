package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// validShardBytes builds a well-formed two-chunk shard file the mutation
// cases below corrupt. Offsets within the returned buffer:
//
//	0   header (28 bytes: magic, version, |V|, index, count, edge count)
//	28  chunk 1 count (uint32), then count packed edges
//	...
//	terminator (uint32 0) + footer (uint64 total)
func validShardBytes(t *testing.T, numVertices uint32, edges []Edge) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, ShardInfo{NumVertices: numVertices, Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := sw.Append(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardReaderRejectsHostileInput is the table-driven shard counterpart
// of the ReadBinary hardening tests: every corrupted header, chunk frame or
// payload must error — never panic, never allocate per a hostile count, and
// never yield a shard with invalid edges.
func TestShardReaderRejectsHostileInput(t *testing.T) {
	base := validShardBytes(t, 64, []Edge{{0, 1}, {1, 2}, {2, 63}})
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
	}{
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			wantErr: "bad magic",
		},
		{
			name:    "unsupported version",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 99); return b },
			wantErr: "version",
		},
		{
			name:    "shard index out of range",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:], 7); return b },
			wantErr: "index 7 out of range",
		},
		{
			name:    "zero shard count",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:], 0); return b },
			wantErr: "count must be positive",
		},
		{
			name: "hostile chunk length",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[28:], 1<<30)
				return b
			},
			wantErr: "exceeds cap",
		},
		{
			name: "endpoint out of range",
			mutate: func(b []byte) []byte {
				// First edge becomes (0, 1000) with |V|=64.
				binary.LittleEndian.PutUint64(b[32:], PackEdge(0, 1000))
				return b
			},
			wantErr: "out of range",
		},
		{
			name: "non-canonical edge",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[32:], uint64(2)<<32|1)
				return b
			},
			wantErr: "not canonical",
		},
		{
			name: "self loop",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[32:], uint64(3)<<32|3)
				return b
			},
			wantErr: "not canonical",
		},
		{
			name: "footer undercounts",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[len(b)-8:], 1)
				return b
			},
			wantErr: "footer declares",
		},
		{
			name: "declared header count wrong",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[20:], 9999)
				return b
			},
			wantErr: "header declares",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(bytes.Clone(base))
			_, err := ReadShard(bytes.NewReader(b))
			if err == nil {
				t.Fatal("hostile shard accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestShardReaderRejectsTruncation: every strict prefix of a valid shard
// must error (missing footer, cut chunk, cut header).
func TestShardReaderRejectsTruncation(t *testing.T) {
	edges := make([]Edge, 0, 500)
	for i := uint32(0); i < 500; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	full := validShardBytes(t, 501, edges)
	for _, cut := range []int{0, 10, 27, 28, 30, 40, len(full) / 2, len(full) - 9, len(full) - 1} {
		if _, err := ReadShard(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestShardReaderHostileEdgeCountPrealloc: a header declaring 2^40 edges
// over a tiny body must fail on the short read, with preallocation capped.
func TestShardReaderHostileEdgeCountPrealloc(t *testing.T) {
	var buf bytes.Buffer
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 100)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	binary.LittleEndian.PutUint32(hdr[16:], 1)
	binary.LittleEndian.PutUint64(hdr[20:], 1<<40)
	buf.Write(hdr[:])
	buf.Write(make([]byte, 64))
	if _, err := ReadShard(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("hostile edge count accepted")
	}
}

func TestShardReaderRejectsGarbage(t *testing.T) {
	if _, err := ReadShard(strings.NewReader("not a shard at all, definitely")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadShard(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

// TestShardWriterRejectsBadInfo: the writer validates placement up front.
func TestShardWriterRejectsBadInfo(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewShardWriter(&buf, ShardInfo{NumVertices: 4, Index: 3, Count: 3}); err == nil {
		t.Error("index == count accepted")
	}
	if _, err := NewShardWriter(&buf, ShardInfo{NumVertices: 4, Index: 0, Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
}

// TestShardWriterAppendAfterClose: appends after Close must error, not
// silently write past the footer.
func TestShardWriterAppendAfterClose(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, ShardInfo{NumVertices: 4, Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(0, 1); err == nil {
		t.Error("append after close accepted")
	}
}
