package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// Fuzz targets for the two decoders that face bytes from disk or the
// network: the ESZ1 compressed shard reader and the DNE1 binary edge list.
// Both already carry hostile-input test tables; fuzzing explores the space
// between those hand-written mutations. The contract under fuzzing is the
// hardening contract: any byte string either decodes to in-range canonical
// edges or returns an error — no panics, no unbounded allocation (chunk
// caps bound every make), no silently out-of-range endpoints.
//
// Run locally with:
//
//	go test -run='^$' -fuzz=FuzzZShardReader -fuzztime=30s ./internal/graph
//	go test -run='^$' -fuzz=FuzzBinarySource -fuzztime=30s ./internal/graph

// fuzzSeedZShard builds a small valid ESZ1 file via the real writer so the
// fuzzer starts from well-formed structure.
func fuzzSeedZShard() []byte {
	var buf bytes.Buffer
	zw, err := NewZShardWriter(&buf, ShardInfo{NumVertices: 64, NumEdges: 3, Index: 0, Count: 1})
	if err != nil {
		panic(err)
	}
	for _, e := range []Edge{{1, 2}, {1, 3}, {5, 9}} {
		if err := zw.Append(e.U, e.V); err != nil {
			panic(err)
		}
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzZShardReader(f *testing.F) {
	f.Add(fuzzSeedZShard())
	// The hostile-input table's core mutations, rebuilt as raw seeds:
	// header corruptions, over-declared counts, truncated and overflowing
	// varints (see TestZShardReaderRejectsHostileInput).
	seed := fuzzSeedZShard()
	badMagic := bytes.Clone(seed)
	binary.LittleEndian.PutUint32(badMagic[0:], 0xdeadbeef)
	f.Add(badMagic)
	badVersion := bytes.Clone(seed)
	binary.LittleEndian.PutUint32(badVersion[4:], 99)
	f.Add(badVersion)
	f.Add(seed[:len(seed)-5])                                               // torn tail
	f.Add(seed[:17])                                                        // header only
	f.Add(zFile(64, ^uint64(0), zChunk(1<<30, uvarints(1, 0))))             // over-declared chunk
	f.Add(zFile(64, ^uint64(0), zChunk(1, []byte{0x80})))                   // truncated varint
	f.Add(zFile(64, ^uint64(0), zChunk(1, bytes.Repeat([]byte{0xff}, 10)))) // overflowing varint

	f.Fuzz(func(t *testing.T, data []byte) {
		zr, err := NewZShardReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		info := zr.Info()
		var edges uint64
		for {
			chunk, err := zr.Next()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatalf("empty error message")
				}
				return
			}
			for _, k := range chunk {
				u, v := k>>32, k&0xffffffff
				if u >= v {
					t.Fatalf("non-canonical edge (%d,%d) decoded without error", u, v)
				}
				if v >= uint64(info.NumVertices) {
					t.Fatalf("endpoint %d out of declared range %d", v, info.NumVertices)
				}
			}
			edges += uint64(len(chunk))
			if edges > 1<<24 {
				t.Fatalf("fuzz input decoded past %d edges; runaway stream", edges)
			}
		}
	})
}

// fuzzSeedBinary builds a small valid DNE1 file via the real writer.
func fuzzSeedBinary() []byte {
	edges := make([]Edge, 0, 16)
	for i := uint32(0); i < 16; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := FromEdges(0, edges)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzBinarySource(f *testing.F) {
	seed := fuzzSeedBinary()
	f.Add(seed)
	// The ReadBinary hardening table's core mutations as seeds: truncation,
	// header lies (huge |E|, shrunk |V|), and garbage.
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:16])
	hugeEdges := bytes.Clone(seed)
	binary.LittleEndian.PutUint64(hugeEdges[8:], 1<<60)
	f.Add(hugeEdges)
	smallVerts := bytes.Clone(seed)
	binary.LittleEndian.PutUint32(smallVerts[4:], 2)
	f.Add(smallVerts)
	f.Add([]byte("not a DNE1 file at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must be internally consistent: every edge
		// endpoint within range and the degree sum equal to 2|E|.
		n := g.NumVertices()
		var degSum int64
		for v := uint32(0); v < uint32(n); v++ {
			for _, u := range g.Neighbors(v) {
				if int64(u) >= int64(n) {
					t.Fatalf("neighbor %d out of range %d", u, n)
				}
			}
			degSum += g.Degree(v)
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2|E| = %d", degSum, 2*g.NumEdges())
		}
	})
}
