package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// RecoverShardTail repairs an EShard file whose tail was torn by a crash —
// a process SIGKILLed mid-append leaves a valid chunk prefix followed by a
// partial frame and no terminator. The walk accepts chunks from the start
// for as long as they validate (bounded count, complete payload, canonical
// in-range edges); at the first bad frame the file is truncated back to the
// end of the last good chunk and resealed with a fresh terminator and
// footer. Junk after a valid terminator is likewise dropped.
//
// On success the file is a fully valid EShard holding every edge that was
// durably and correctly written. The returned counts say what happened:
// edges now in the file, and how many tail bytes were discarded (0 means
// the file was already valid and was not modified). The header's declared
// edge count is rewritten to the streaming-unknown sentinel when the tail
// is rewritten, keeping header and contents consistent.
//
// A file whose *header* is unreadable or invalid is not recoverable — there
// is no prefix to salvage — and returns an error.
//
// Compressed ESZ1 shards recover the same way: the magic selects the walk,
// and chunks are accepted for as long as they fully decode (the per-chunk
// delta reset is what makes each chunk independently checkable).
func RecoverShardTail(path string) (edges uint64, droppedBytes int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	var hdr [28]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("graph: unrecoverable shard %s: reading header: %w", path, err)
	}
	compressed := false
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case shardMagic:
	case zshardMagic:
		compressed = true
	default:
		return 0, 0, fmt.Errorf("graph: unrecoverable shard %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		return 0, 0, fmt.Errorf("graph: unrecoverable shard %s: unsupported version %d", path, v)
	}
	info := ShardInfo{
		NumVertices: binary.LittleEndian.Uint32(hdr[8:]),
		Index:       binary.LittleEndian.Uint32(hdr[12:]),
		Count:       binary.LittleEndian.Uint32(hdr[16:]),
		NumEdges:    binary.LittleEndian.Uint64(hdr[20:]),
	}
	if err := info.validate(); err != nil {
		return 0, 0, fmt.Errorf("graph: unrecoverable shard %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := st.Size()

	if compressed {
		edges, droppedBytes, err = recoverZShardTail(f, info, size)
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", path, err)
		}
		return edges, droppedBytes, nil
	}

	// Walk the chunk frames, validating payloads exactly as ShardReader
	// would. lastGood tracks the end of the longest valid chunk prefix.
	var total uint64
	offset := int64(28)
	lastGood := offset
	nv := uint64(info.NumVertices)
	page := make([]byte, maxShardChunkEdges*8)
	sealed := false // saw a terminator whose footer matches
	for {
		var cnt [4]byte
		if _, err := f.ReadAt(cnt[:], offset); err != nil {
			break // torn mid chunk header (or clean EOF with no terminator)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		if n == 0 {
			var foot [8]byte
			if _, err := f.ReadAt(foot[:], offset+4); err != nil {
				break // torn mid footer
			}
			if binary.LittleEndian.Uint64(foot[:]) != total {
				break // footer contradicts the chunks; rewrite it
			}
			sealed = true
			offset += 12
			break
		}
		if n > maxShardChunkEdges {
			break // not a believable frame
		}
		payload := page[:int(n)*8]
		if _, err := f.ReadAt(payload, offset+4); err != nil {
			break // torn mid payload
		}
		ok := true
		for i := 0; i < int(n); i++ {
			k := binary.LittleEndian.Uint64(payload[i*8:])
			u, v := k>>32, k&0xffffffff
			if u >= v || v >= nv {
				ok = false
				break
			}
		}
		if !ok {
			break // garbage where edges should be
		}
		total += uint64(n)
		offset += 4 + int64(n)*8
		lastGood = offset
	}

	if sealed && offset == size {
		// Already a fully valid file (the common, non-crashed case):
		// leave it untouched.
		if info.NumEdges != unknownEdgeCount && info.NumEdges != total {
			// Header contradicts a structurally valid body — fall through
			// and reseal with the sentinel header below.
		} else {
			return total, 0, nil
		}
	}

	// Reseal: drop the torn tail (and any junk after a terminator),
	// rewrite terminator + footer, and point the header at the footer.
	droppedBytes = size - lastGood
	if sealed {
		droppedBytes = size - offset // only junk past the terminator was dropped
	}
	if droppedBytes < 0 {
		droppedBytes = 0
	}
	var sentinel [8]byte
	binary.LittleEndian.PutUint64(sentinel[:], unknownEdgeCount)
	if _, err := f.WriteAt(sentinel[:], 20); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing shard %s: %w", path, err)
	}
	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[4:], total)
	if _, err := f.WriteAt(tail[:], lastGood); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing shard %s: %w", path, err)
	}
	if err := f.Truncate(lastGood + 12); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing shard %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing shard %s: %w", path, err)
	}
	return total, droppedBytes, nil
}
