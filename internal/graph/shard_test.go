package graph

import (
	"bytes"
	"io"
	"slices"
	"testing"
)

func testEdges() []Edge {
	return []Edge{
		{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}, {4, 5}, {0, 5}, {2, 5},
		{3, 1}, // duplicate of {1,3} after canon
	}
}

func TestShardWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, ShardInfo{NumVertices: 6, Index: 2, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{}
	for _, e := range testEdges() {
		if err := sw.Append(e.U, e.V); err != nil {
			t.Fatal(err)
		}
		want = append(want, PackEdge(e.U, e.V))
	}
	if err := sw.Append(3, 3); err != nil { // self loop: dropped
		t.Fatal(err)
	}
	if sw.NumWritten() != uint64(len(want)) {
		t.Fatalf("NumWritten = %d, want %d", sw.NumWritten(), len(want))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices != 6 {
		t.Fatalf("NumVertices = %d", s.NumVertices)
	}
	if !slices.Equal(s.Packed, want) {
		t.Fatalf("packed edges differ: got %v want %v", s.Packed, want)
	}
}

func TestShardRoundTripAcrossChunkBoundaries(t *testing.T) {
	// More edges than one chunk, not a multiple of the chunk size: the
	// partial last chunk and the terminator must both round-trip.
	const n = shardChunkEdges*2 + 137
	var buf bytes.Buffer
	sw, err := NewShardWriter(&buf, ShardInfo{NumVertices: 1 << 20, Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		u := Vertex(i % 1000)
		v := Vertex(1000 + i%7000)
		if err := sw.Append(u, v); err != nil {
			t.Fatal(err)
		}
		want = append(want, PackEdge(u, v))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sr, err := NewShardReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	chunks := 0
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 || len(chunk) > maxShardChunkEdges {
			t.Fatalf("chunk size %d out of bounds", len(chunk))
		}
		got = append(got, chunk...)
		chunks++
	}
	if chunks != 3 {
		t.Fatalf("chunks = %d, want 3", chunks)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("streamed edges differ (%d vs %d)", len(got), len(want))
	}
	// EOF must be sticky.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v", err)
	}
}

func TestShardsOfCoversGraphExactly(t *testing.T) {
	g := FromEdges(0, testEdges())
	for _, p := range []int{1, 2, 3, 5, 16} {
		shards := ShardsOf(g, p)
		if len(shards) != p {
			t.Fatalf("p=%d: got %d shards", p, len(shards))
		}
		var all []uint64
		for _, s := range shards {
			if s.NumVertices != g.NumVertices() {
				t.Fatalf("p=%d: shard |V| %d != %d", p, s.NumVertices, g.NumVertices())
			}
			all = append(all, s.Packed...)
		}
		if int64(len(all)) != g.NumEdges() {
			t.Fatalf("p=%d: shards hold %d edges, graph has %d", p, len(all), g.NumEdges())
		}
		for i, e := range g.Edges() {
			if all[i] != PackEdge(e.U, e.V) {
				t.Fatalf("p=%d: edge %d mismatch", p, i)
			}
		}
	}
}

func TestFromPackedMatchesFromEdges(t *testing.T) {
	raw := testEdges()
	raw = append(raw, Edge{2, 2}, Edge{5, 1}) // self loop + non-canonical
	packed := make([]uint64, len(raw))
	for i, e := range raw {
		packed[i] = uint64(e.U)<<32 | uint64(e.V) // deliberately unc canonicalized
	}
	a := FromEdges(0, raw)
	b := FromPacked(0, packed)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	if !slices.Equal(a.Edges(), b.Edges()) {
		t.Fatal("edge lists differ")
	}
	for v := Vertex(0); v < a.NumVertices(); v++ {
		if !slices.Equal(a.Neighbors(v), b.Neighbors(v)) {
			t.Fatalf("neighbors of %d differ", v)
		}
	}
}

func TestShardSortDedup(t *testing.T) {
	s := &Shard{NumVertices: 10, Packed: []uint64{
		PackEdge(3, 4), PackEdge(0, 1), PackEdge(3, 4), PackEdge(0, 1), PackEdge(2, 9),
	}}
	s.SortDedup()
	want := []uint64{PackEdge(0, 1), PackEdge(2, 9), PackEdge(3, 4)}
	if !slices.Equal(s.Packed, want) {
		t.Fatalf("got %v want %v", s.Packed, want)
	}
}

func TestShardLocalCSRMatchesGlobalCSR(t *testing.T) {
	g := FromEdges(0, testEdges())
	shards := ShardsOf(g, 3)
	for si, s := range shards {
		c := s.CSR()
		// No array sized by the global vertex count.
		if len(c.Verts) > 2*len(s.Packed) {
			t.Fatalf("shard %d: %d local verts for %d edges", si, len(c.Verts), len(s.Packed))
		}
		// Every local adjacency must be a subset of the global adjacency,
		// and local degrees must sum to 2·|local E|.
		var degSum int64
		for lv, v := range c.Verts {
			if got := c.LocalID(v); got != lv {
				t.Fatalf("LocalID(%d) = %d, want %d", v, got, lv)
			}
			degSum += c.Degree(lv)
			global := g.Neighbors(v)
			for _, nb := range c.Neighbors(lv) {
				if !slices.Contains(global, nb) {
					t.Fatalf("shard %d: local edge (%d,%d) not in graph", si, v, nb)
				}
			}
		}
		if degSum != 2*int64(len(s.Packed)) {
			t.Fatalf("shard %d: degree sum %d != 2·%d", si, degSum, len(s.Packed))
		}
		if c.LocalID(g.NumVertices()+100) != -1 {
			t.Fatal("LocalID of absent vertex should be -1")
		}
	}
}

func TestWriteShardReadShard(t *testing.T) {
	s := &Shard{NumVertices: 100, Packed: []uint64{PackEdge(1, 2), PackEdge(5, 99)}}
	var buf bytes.Buffer
	if err := WriteShard(&buf, s, 1, 3); err != nil {
		t.Fatal(err)
	}
	sr, err := NewShardReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info := sr.Info(); info.Index != 1 || info.Count != 3 || info.NumVertices != 100 {
		t.Fatalf("info = %+v", info)
	}
	got, err := ReadShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Packed, s.Packed) {
		t.Fatalf("round trip lost edges: %v", got.Packed)
	}
}
