package graph

import (
	"sync/atomic"

	"github.com/distributedne/dne/internal/obs"
)

// Package-cumulative pipeline instrumentation. Every metered stream (disk
// shard reads) and every pipeline stage (decode prefetcher, bucket scatter,
// shuffle drain) feeds these atomics as it runs; RegisterStreamMetrics
// exposes them on a registry so dneserve's /metrics shows live streaming
// traffic and backpressure without the hot paths ever taking a lock.
var (
	// streamBytesRead counts bytes pulled from storage by metered edge
	// streams (shard-dir sources), across all sources in the process.
	streamBytesRead atomic.Int64

	// streamChunksDecoded counts chunks handed downstream by prefetchers.
	streamChunksDecoded atomic.Int64

	// Stall time per pipeline stage, in nanoseconds: how long each side of a
	// bounded channel spent blocked on the other. decode stalls mean the
	// consumer is the bottleneck (healthy: the disk is ahead); consume
	// stalls mean the decoder can't keep up (the disk or the codec is the
	// ceiling). scatter/drain cover the piped shuffle's two sides.
	stallDecodeNS  atomic.Int64
	stallConsumeNS atomic.Int64
	stallScatterNS atomic.Int64
	stallDrainNS   atomic.Int64
)

// StreamBytesRead reports the process-cumulative storage bytes pulled by
// metered edge streams.
func StreamBytesRead() int64 { return streamBytesRead.Load() }

// RegisterStreamMetrics exposes the streaming pipeline's process-cumulative
// aggregates on reg: bytes read from storage, chunks decoded ahead, and
// per-stage stall seconds (the backpressure signal that says which stage is
// the ceiling). Families emit only once they have fired, so a process that
// never streams scrapes clean. Nil registry → no-op.
func RegisterStreamMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dne_stream_bytes_read_total",
		"Bytes read from storage by edge-shard streams.",
		func(emit func(v float64, kv ...string)) {
			if v := streamBytesRead.Load(); v > 0 {
				emit(float64(v))
			}
		})
	reg.CounterFunc("dne_stream_chunks_decoded_total",
		"Edge chunks decoded ahead by pipeline prefetchers.",
		func(emit func(v float64, kv ...string)) {
			if v := streamChunksDecoded.Load(); v > 0 {
				emit(float64(v))
			}
		})
	reg.CounterFunc("dne_stream_stage_stall_seconds_total",
		"Seconds each pipeline stage spent blocked on its neighbor (stage=decode: producer waited for the consumer; stage=consume: consumer waited for decoded chunks; stage=scatter/drain: the piped shuffle's two sides).",
		func(emit func(v float64, kv ...string)) {
			for _, e := range []struct {
				stage string
				ns    int64
			}{
				{"decode", stallDecodeNS.Load()},
				{"consume", stallConsumeNS.Load()},
				{"scatter", stallScatterNS.Load()},
				{"drain", stallDrainNS.Load()},
			} {
				if e.ns > 0 {
					emit(float64(e.ns)/1e9, "stage", e.stage)
				}
			}
		})
}
