// Package graph provides the in-memory graph representation shared by every
// partitioner in this repository: an undirected, deduplicated edge list with
// an optional CSR (compressed sparse row) adjacency index.
//
// Vertices are dense uint32 identifiers in [0, NumVertices). Edges are
// unordered pairs; the canonical form stores U <= V. Self loops are dropped
// and duplicate edges are compacted at build time, matching the paper's
// preprocessing ("it compacts the duplicated edges", §7.3).
package graph

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/distributedne/dne/internal/dsa"
)

// Vertex is a dense vertex identifier.
type Vertex = uint32

// Edge is an undirected edge in canonical form (U <= V after Build).
type Edge struct {
	U, V Vertex
}

// Canon returns e with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v Vertex) Vertex {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// Graph is an undirected graph with dense vertex ids and canonical,
// deduplicated edges. The zero value is an empty graph; use Build or
// FromEdges to construct a usable one.
type Graph struct {
	n     uint32 // number of vertices
	edges []Edge // canonical, sorted, deduplicated

	// CSR adjacency: for vertex v, neighbors are adjTarget[adjOff[v]:adjOff[v+1]]
	// and adjEdge holds the index into edges for each adjacency slot.
	// Each undirected edge appears twice (once per endpoint), except that a
	// canonical edge {v,v} cannot exist (self loops are removed).
	adjOff    []int64
	adjTarget []Vertex
	adjEdge   []int32
}

// FromEdges builds a graph from raw (possibly duplicated, possibly
// non-canonical) edges. numVertices may be 0, in which case it is inferred as
// max endpoint + 1. Self loops are dropped and duplicates compacted.
//
// Construction is parallel end to end on multi-core machines: canonical
// edges are packed into uint64 keys and sorted with a parallel radix sort
// (replacing the comparator-based sort.Slice), and the CSR adjacency is
// filled by concurrent chunk workers. The result is bit-identical to the
// sequential build: the same sorted, deduplicated edge list and the same
// adjacency layout (each vertex's slots ascending by canonical edge index).
func FromEdges(numVertices uint32, raw []Edge) *Graph {
	keys := make([]uint64, 0, len(raw))
	maxV := uint32(0)
	for _, e := range raw {
		if e.U == e.V {
			continue // self loop
		}
		c := e.Canon()
		if c.V >= maxV {
			maxV = c.V + 1
		}
		keys = append(keys, uint64(c.U)<<32|uint64(c.V))
	}
	return fromKeys(numVertices, maxV, keys)
}

// FromPacked builds a graph from packed edge keys (PackEdge format). Keys
// may be non-canonical, duplicated or self loops; the slice is canonicalized
// and sorted in place. numVertices may be 0, in which case it is inferred.
// The result is identical to FromEdges over the unpacked edges.
func FromPacked(numVertices uint32, keys []uint64) *Graph {
	kept := keys[:0]
	maxV := uint32(0)
	for _, k := range keys {
		u, v := Vertex(k>>32), Vertex(k)
		if u == v {
			continue // self loop
		}
		if u > v {
			u, v = v, u
			k = uint64(u)<<32 | uint64(v)
		}
		if v >= maxV {
			maxV = v + 1
		}
		kept = append(kept, k)
	}
	return fromKeys(numVertices, maxV, kept)
}

// fromKeys finishes construction from canonical packed keys: sorting the
// keys ascending is exactly the (U, V) lexicographic order of the canonical
// edges.
func fromKeys(numVertices, maxV uint32, keys []uint64) *Graph {
	if numVertices == 0 {
		numVertices = maxV
	} else if maxV > numVertices {
		panic(fmt.Sprintf("graph: edge endpoint %d exceeds numVertices %d", maxV-1, numVertices))
	}
	dsa.SortU64(keys)
	edges := make([]Edge, 0, len(keys))
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue // duplicate edge
		}
		edges = append(edges, Edge{U: Vertex(k >> 32), V: Vertex(k)})
	}
	g := &Graph{n: numVertices, edges: edges}
	g.buildCSR()
	return g
}

// csrMinChunk is the smallest per-worker edge chunk worth a goroutine in the
// CSR fill.
const csrMinChunk = 1 << 16

func (g *Graph) buildCSR() {
	w := runtime.GOMAXPROCS(0)
	if maxW := len(g.edges) / csrMinChunk; w > maxW {
		w = maxW
	}
	// The parallel fill needs a w·|V| cursor slab; keep it a small fraction
	// of the CSR being built (4·|E|/|V| workers bounds the slab by the
	// adjacency array size) so sparse wide-id graphs fall back to the
	// sequential path instead of allocating more scratch than output.
	if g.n > 0 {
		if maxW := 4 * len(g.edges) / int(g.n); w > maxW {
			w = maxW
		}
	}
	if w < 1 {
		w = 1
	}
	g.buildCSRWorkers(w)
}

// buildCSRWorkers builds the CSR index with w parallel chunk workers. The
// layout is identical for every w: per-worker incidence counts are converted
// into per-(vertex, chunk) starting cursors, so each worker fills its
// chunk's slots in place and every vertex's adjacency stays ordered by
// ascending edge index, exactly as a single sequential pass would leave it.
func (g *Graph) buildCSRWorkers(w int) {
	n := int(g.n)
	m := len(g.edges)
	if w < 1 {
		w = 1
	}
	if w == 1 {
		g.buildCSRSequential()
		return
	}
	chunk := (m + w - 1) / w
	// cnt[wi*n+v] = number of adjacency slots vertex v receives from chunk
	// wi; converted below into the chunk's starting cursor within v's range.
	cnt := make([]int32, w*n)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		lo, hi := wi*chunk, min((wi+1)*chunk, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			c := cnt[wi*n : (wi+1)*n]
			for _, e := range g.edges[lo:hi] {
				c[e.U]++
				c[e.V]++
			}
		}(wi, lo, hi)
	}
	wg.Wait()

	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		var run int32
		for wi := 0; wi < w; wi++ {
			c := cnt[wi*n+v]
			cnt[wi*n+v] = run
			run += c
		}
		off[v+1] = off[v] + int64(run)
	}
	g.adjOff = off
	total := off[n]
	g.adjTarget = make([]Vertex, total)
	g.adjEdge = make([]int32, total)
	for wi := 0; wi < w; wi++ {
		lo, hi := wi*chunk, min((wi+1)*chunk, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			cur := cnt[wi*n : (wi+1)*n]
			for i := lo; i < hi; i++ {
				e := g.edges[i]
				pu := off[e.U] + int64(cur[e.U])
				g.adjTarget[pu] = e.V
				g.adjEdge[pu] = int32(i)
				cur[e.U]++
				pv := off[e.V] + int64(cur[e.V])
				g.adjTarget[pv] = e.U
				g.adjEdge[pv] = int32(i)
				cur[e.V]++
			}
		}(wi, lo, hi)
	}
	wg.Wait()
}

func (g *Graph) buildCSRSequential() {
	deg := make([]int64, g.n+1)
	for _, e := range g.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for v := uint32(0); v < g.n; v++ {
		deg[v+1] += deg[v]
	}
	g.adjOff = deg
	total := deg[g.n]
	g.adjTarget = make([]Vertex, total)
	g.adjEdge = make([]int32, total)
	cursor := make([]int64, g.n)
	for i, e := range g.edges {
		pu := g.adjOff[e.U] + cursor[e.U]
		g.adjTarget[pu] = e.V
		g.adjEdge[pu] = int32(i)
		cursor[e.U]++
		pv := g.adjOff[e.V] + cursor[e.V]
		g.adjTarget[pv] = e.U
		g.adjEdge[pv] = int32(i)
		cursor[e.V]++
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() uint32 { return g.n }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int64 { return int64(len(g.edges)) }

// Edges returns the canonical edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th canonical edge.
func (g *Graph) Edge(i int64) Edge { return g.edges[i] }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int64 { return g.adjOff[v+1] - g.adjOff[v] }

// Neighbors returns the neighbor vertices of v. Callers must not mutate it.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.adjTarget[g.adjOff[v]:g.adjOff[v+1]]
}

// IncidentEdges returns, for each adjacency slot of v, the index of the
// canonical edge. Callers must not mutate it.
func (g *Graph) IncidentEdges(v Vertex) []int32 {
	return g.adjEdge[g.adjOff[v]:g.adjOff[v+1]]
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int64 {
	var max int64
	for v := uint32(0); v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Degrees returns a fresh slice of all vertex degrees.
func (g *Graph) Degrees() []int64 {
	d := make([]int64, g.n)
	for v := uint32(0); v < g.n; v++ {
		d[v] = g.Degree(v)
	}
	return d
}

// AvgDegree returns 2|E|/|V| (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// MemoryFootprint returns an analytic estimate of the bytes held by the
// graph's core arrays (edge list + CSR). It is used by the Fig-9 memory
// scoring so that all partitioners are accounted identically.
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.edges))*8 + // edges: two uint32
		int64(len(g.adjOff))*8 +
		int64(len(g.adjTarget))*4 +
		int64(len(g.adjEdge))*4
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.n, len(g.edges))
}
