package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestReadBinaryRejectsOutOfRangeEndpoint: a corrupt edge endpoint beyond
// the declared vertex count must error, not panic in FromEdges.
func TestReadBinaryRejectsOutOfRangeEndpoint(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[16:], 1<<30) // first edge's U
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

// TestReadBinaryRejectsTruncation: every strict prefix errors.
func TestReadBinaryRejectsTruncation(t *testing.T) {
	edges := make([]Edge, 0, 1000)
	for i := uint32(0); i < 1000; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := FromEdges(0, edges)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 8, 15, 16, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestReadBinaryHostileEdgeCount: a header declaring 2^40 edges over a tiny
// body must fail on the short read without a huge up-front allocation.
func TestReadBinaryHostileEdgeCount(t *testing.T) {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 100)
	binary.LittleEndian.PutUint64(hdr[8:], 1<<40)
	body := append(hdr[:], make([]byte, 256)...)
	if _, err := ReadBinary(bytes.NewReader(body)); err == nil {
		t.Error("hostile edge count accepted")
	}
}

// TestReadBinaryHostileVertexClaim: a 16-byte file declaring 268M vertices
// and zero edges must be rejected — FromEdges would otherwise materialize an
// O(|V|) adjacency index from nothing. Found by FuzzBinarySource; the
// triggering input is pinned in testdata/fuzz/FuzzBinarySource.
func TestReadBinaryHostileVertexClaim(t *testing.T) {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 1<<28)
	binary.LittleEndian.PutUint64(hdr[8:], 0)
	if _, err := ReadBinary(bytes.NewReader(hdr[:])); err == nil {
		t.Error("unbacked 2^28 vertex claim accepted")
	}
	// The streaming source performs the same check at open time, before any
	// consumer allocates partitioner state from Info().
	if err := checkVertexClaim(1<<28, 0); err == nil {
		t.Error("checkVertexClaim passed an unbacked 2^28 claim")
	}
	// Claims within the free bound, or paid for by edges, stay accepted.
	if err := checkVertexClaim(1<<20, 0); err != nil {
		t.Errorf("free-bound claim rejected: %v", err)
	}
	if err := checkVertexClaim(1<<28, 1<<22); err != nil {
		t.Errorf("edge-backed claim rejected: %v", err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

// TestWriteEdgeListMatchesFprintf pins the fast AppendUint formatting to
// the exact bytes the old Fprintf produced.
func TestWriteEdgeListMatchesFprintf(t *testing.T) {
	g := FromEdges(0, []Edge{{0, 1}, {7, 2}, {1048576, 123456789}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "0 1\n2 7\n1048576 123456789\n"
	if buf.String() != want {
		t.Errorf("WriteEdgeList = %q, want %q", buf.String(), want)
	}
}

// TestBinaryLargeRoundTrip crosses the write-side page boundary so the
// batched writer's flush path is exercised.
func TestBinaryLargeRoundTrip(t *testing.T) {
	edges := make([]Edge, 0, ioPageEdges+100)
	for i := uint32(0); i < ioPageEdges+100; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := FromEdges(0, edges)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for i, e := range g.Edges() {
		if g2.Edge(int64(i)) != e {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}
