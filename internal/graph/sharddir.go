package graph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReadShardDir loads the shard files in dir (*.esh raw, *.esz compressed,
// mixed freely) whose shard index
// satisfies keep (nil keeps all), merged into one Shard. The file set is
// validated by scanShardDir (shared with DirSource and graphstat): same
// vertex count, same declared shard count, each index present exactly once,
// and the file set complete — so a run cannot silently start from a partial
// or mixed-up shard directory. The scan reads headers only; kept files
// alone are read past theirs, merging in shard-index order.
func ReadShardDir(dir string, keep func(index, count uint32) bool) (*Shard, error) {
	files, err := scanShardDir(dir, false)
	if err != nil {
		return nil, err
	}
	merged := &Shard{NumVertices: files[0].info.NumVertices}
	for _, sf := range files {
		if keep != nil && !keep(sf.info.Index, sf.info.Count) {
			continue
		}
		packed, err := readShardFile(sf.path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sf.path, err)
		}
		merged.Packed = append(merged.Packed, packed...)
	}
	return merged, nil
}

// ShardFileName returns the conventional file name of shard i of n
// (shard-0000-of-0016.esh), shared by every writer and consumer of shard
// directories.
func ShardFileName(i, n int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.esh", i, n)
}

// ZShardFileName is ShardFileName for compressed ESZ1 shards
// (shard-0000-of-0016.esz).
func ZShardFileName(i, n int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.esz", i, n)
}

// WriteCanonicalShards stripes g's canonical edge list across count EShard
// files in dir (the ShardsOf layout under the conventional names). Read
// back in shard-index order — DirSource's order — the set replays the
// canonical list exactly, which is what makes streamed partitionings of
// the directory bit-identical to in-memory runs. It is the single writer
// behind gengraph -canonical, the differential tests and the stream
// experiment.
func WriteCanonicalShards(dir string, g *Graph, count int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, sh := range ShardsOf(g, count) {
		f, err := os.Create(filepath.Join(dir, ShardFileName(i, count)))
		if err != nil {
			return err
		}
		if err := WriteShard(f, sh, uint32(i), uint32(count)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCanonicalShardsCompressed is WriteCanonicalShards in the ESZ1
// format: the same canonical stripes under the conventional *.esz names.
// Stripes of a canonical edge list are sorted by construction, which is
// exactly what the compressed writer requires; read back in index order the
// set replays the same stream, only from far fewer disk bytes.
func WriteCanonicalShardsCompressed(dir string, g *Graph, count int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, sh := range ShardsOf(g, count) {
		zw, err := CreateZShardFile(filepath.Join(dir, ZShardFileName(i, count)), ShardInfo{
			NumVertices: sh.NumVertices,
			Index:       uint32(i),
			Count:       uint32(count),
			NumEdges:    unknownEdgeCount,
		})
		if err != nil {
			return err
		}
		for _, k := range sh.Packed {
			if err := zw.AppendPacked(k); err != nil {
				zw.Close()
				return err
			}
		}
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ShardFileStat describes one file of a shard directory for reporting:
// where it is, what it holds, and what that costs on disk. Ratio compares
// the on-disk bytes against the raw 8-byte-per-edge packed encoding (plus
// framing), so a raw EShard file reports ~1× and an ESZ1 file reports its
// real compression factor.
type ShardFileStat struct {
	Path       string
	Index      uint32
	Compressed bool
	Edges      uint64
	DiskBytes  int64
	Ratio      float64 // raw-equivalent bytes / DiskBytes
}

// rawShardBytes is the exact on-disk size of an EShard file holding the
// given packed edges: header + per-chunk 4-byte counts at the standard chunk
// size + 8 bytes per edge + terminator/footer.
func rawShardBytes(edges uint64) int64 {
	chunks := (edges + shardChunkEdges - 1) / shardChunkEdges
	return 28 + int64(chunks)*4 + int64(edges)*8 + 12
}

// ShardDirStats validates dir like DirSource and returns one entry per
// shard file, in index order, with exact decoded edge counts (from the
// frame walk, not the header) and on-disk sizes. graphstat -shard-dir uses
// it to report per-file compression.
func ShardDirStats(dir string) ([]ShardFileStat, error) {
	files, err := scanShardDir(dir, true)
	if err != nil {
		return nil, err
	}
	stats := make([]ShardFileStat, len(files))
	for i, sf := range files {
		stats[i] = ShardFileStat{
			Path:       sf.path,
			Index:      sf.info.Index,
			Compressed: sf.compressed,
			Edges:      sf.numEdges,
			DiskBytes:  sf.size,
		}
		if sf.size > 0 {
			stats[i].Ratio = float64(rawShardBytes(sf.numEdges)) / float64(sf.size)
		}
	}
	return stats, nil
}

// readShardFile streams one shard file's packed edges into memory,
// dispatching on the magic so raw and compressed files read identically.
func readShardFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sr, err := NewChunkReader(f)
	if err != nil {
		return nil, err
	}
	prealloc := sr.Info().NumEdges
	if prealloc == unknownEdgeCount {
		prealloc = 0
	}
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	packed := make([]uint64, 0, prealloc)
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return packed, nil
		}
		if err != nil {
			return nil, err
		}
		packed = append(packed, chunk...)
	}
}
