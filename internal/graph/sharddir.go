package graph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
)

// ReadShardDir loads the EShard files in dir (*.esh) whose shard index
// satisfies keep (nil keeps all), merged into one Shard. Every file's
// header is validated for mutual consistency — same vertex count, same
// declared shard count, each index present exactly once, and the file set
// complete — so a run cannot silently start from a partial or mixed-up
// shard directory. Only kept files are read past their header.
func ReadShardDir(dir string, keep func(index, count uint32) bool) (*Shard, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.esh"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("graph: no *.esh shard files in %s", dir)
	}
	slices.Sort(paths)
	merged := &Shard{}
	seen := make(map[uint32]string)
	var count uint32
	for _, path := range paths {
		info, packed, err := readShardFile(path, keep)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if prev, dup := seen[info.Index]; dup {
			return nil, fmt.Errorf("graph: shard index %d in both %s and %s", info.Index, prev, path)
		}
		seen[info.Index] = path
		if len(seen) == 1 {
			merged.NumVertices = info.NumVertices
			count = info.Count
		} else if info.NumVertices != merged.NumVertices || info.Count != count {
			return nil, fmt.Errorf("graph: %s header (|V|=%d, %d shards) inconsistent with %s (|V|=%d, %d shards)",
				path, info.NumVertices, info.Count, paths[0], merged.NumVertices, count)
		}
		merged.Packed = append(merged.Packed, packed...)
	}
	if uint32(len(paths)) != count {
		return nil, fmt.Errorf("graph: %s holds %d shard files but headers declare %d shards",
			dir, len(paths), count)
	}
	return merged, nil
}

// readShardFile returns the header info of one shard file, plus its packed
// edges when keep accepts the shard's index.
func readShardFile(path string, keep func(index, count uint32) bool) (ShardInfo, []uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return ShardInfo{}, nil, err
	}
	defer f.Close()
	sr, err := NewShardReader(f)
	if err != nil {
		return ShardInfo{}, nil, err
	}
	info := sr.Info()
	if keep != nil && !keep(info.Index, info.Count) {
		return info, nil, nil
	}
	var packed []uint64
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return info, packed, nil
		}
		if err != nil {
			return ShardInfo{}, nil, err
		}
		packed = append(packed, chunk...)
	}
}
