package graph

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReadShardDir loads the EShard files in dir (*.esh) whose shard index
// satisfies keep (nil keeps all), merged into one Shard. The file set is
// validated by scanShardDir (shared with DirSource and graphstat): same
// vertex count, same declared shard count, each index present exactly once,
// and the file set complete — so a run cannot silently start from a partial
// or mixed-up shard directory. The scan reads headers only; kept files
// alone are read past theirs, merging in shard-index order.
func ReadShardDir(dir string, keep func(index, count uint32) bool) (*Shard, error) {
	files, err := scanShardDir(dir, false)
	if err != nil {
		return nil, err
	}
	merged := &Shard{NumVertices: files[0].info.NumVertices}
	for _, sf := range files {
		if keep != nil && !keep(sf.info.Index, sf.info.Count) {
			continue
		}
		packed, err := readShardFile(sf.path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sf.path, err)
		}
		merged.Packed = append(merged.Packed, packed...)
	}
	return merged, nil
}

// ShardFileName returns the conventional file name of shard i of n
// (shard-0000-of-0016.esh), shared by every writer and consumer of shard
// directories.
func ShardFileName(i, n int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.esh", i, n)
}

// WriteCanonicalShards stripes g's canonical edge list across count EShard
// files in dir (the ShardsOf layout under the conventional names). Read
// back in shard-index order — DirSource's order — the set replays the
// canonical list exactly, which is what makes streamed partitionings of
// the directory bit-identical to in-memory runs. It is the single writer
// behind gengraph -canonical, the differential tests and the stream
// experiment.
func WriteCanonicalShards(dir string, g *Graph, count int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, sh := range ShardsOf(g, count) {
		f, err := os.Create(filepath.Join(dir, ShardFileName(i, count)))
		if err != nil {
			return err
		}
		if err := WriteShard(f, sh, uint32(i), uint32(count)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// readShardFile streams one shard file's packed edges into memory.
func readShardFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sr, err := NewShardReader(f)
	if err != nil {
		return nil, err
	}
	prealloc := sr.Info().NumEdges
	if prealloc == unknownEdgeCount {
		prealloc = 0
	}
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	packed := make([]uint64, 0, prealloc)
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return packed, nil
		}
		if err != nil {
			return nil, err
		}
		packed = append(packed, chunk...)
	}
}
