package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ESZ1 is the compressed companion of the EShard format: the same validated
// header/terminator/footer discipline, but chunk payloads hold sorted
// canonical edges as per-chunk delta-encoded sources with varint destination
// gaps instead of raw packed uint64s. Sorted RMAT-style edge lists compress
// several-fold (most gaps fit one byte), which cuts the cold-disk bytes a
// streaming partition run has to move — the point of the pipelined path:
// let the disk, not the CPU, set the ceiling.
//
// Layout (all little-endian):
//
//	header (28 bytes): magic "ESZ1", version, |V| (global), shard index,
//	                   shard count, declared edge count (or unknown sentinel)
//	chunks:            uint32 edge count n in (0, maxShardChunkEdges],
//	                   uint32 payload byte length in (0, 10·n],
//	                   then the delta-encoded payload
//	terminator:        uint32 zero, then a uint64 footer with the total edge
//	                   count actually written
//
// Chunk payload, with (prevU, prevV) reset to (0, 0) at every chunk start so
// chunks stay independently decodable (what tail recovery and the bounded
// reader rely on); every value is an unsigned varint:
//
//	du = u - prevU                 // ≥ 0: the stream is sorted
//	if du > 0:  gap = v - u - 1    // new source row; v > u is canonical
//	if du == 0: gap = v - prevV    // same row; 0 encodes a duplicate edge
//
// The writer enforces global sortedness (ascending packed keys, duplicates
// legal) and the reader re-validates everything a hostile file could abuse:
// chunk counts and payload lengths against hard caps, truncated varints,
// delta overflows past |V|, non-canonical decodes, payload length
// mismatches, and the footer against the edges actually decoded.
const (
	zshardMagic = 0x45535a31 // "ESZ1"

	// maxZChunkPayloadPerEdge bounds a chunk's declared payload length: two
	// varints of at most 5 bytes each per edge (both deltas fit 32 bits), so
	// a hostile length past 10·n bytes errors instead of driving a huge read.
	maxZChunkPayloadPerEdge = 10
)

// ZShardWriter streams sorted packed edges into the ESZ1 format. Memory use
// is one chunk regardless of how many edges are appended; Close writes the
// terminator and footer. Unlike ShardWriter it rejects out-of-order input:
// the compression is the sortedness.
type ZShardWriter struct {
	bw      *bufio.Writer
	keys    []uint64 // edges buffered for the open chunk
	payload []byte   // encode scratch, reused across chunks
	last    uint64   // last appended key, for the sortedness check
	started bool     // at least one edge appended (so last is meaningful)
	total   uint64
	err     error
	info    ShardInfo
	f       *os.File // owned file (CreateZShardFile); closed by Close
}

// NewZShardWriter writes the ESZ1 header for info and returns a writer. The
// declared edge count is the streaming-unknown sentinel; readers use the
// footer written by Close.
func NewZShardWriter(w io.Writer, info ShardInfo) (*ZShardWriter, error) {
	if err := info.validate(); err != nil {
		return nil, err
	}
	zw := &ZShardWriter{
		bw:      bufio.NewWriter(w),
		keys:    make([]uint64, 0, shardChunkEdges),
		payload: make([]byte, 0, shardChunkEdges*3),
		info:    info,
	}
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], zshardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], info.NumVertices)
	binary.LittleEndian.PutUint32(hdr[12:], info.Index)
	binary.LittleEndian.PutUint32(hdr[16:], info.Count)
	binary.LittleEndian.PutUint64(hdr[20:], unknownEdgeCount)
	if _, err := zw.bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: writing compressed shard header: %w", err)
	}
	return zw, nil
}

// Append adds an undirected edge, canonicalizing it first and dropping self
// loops, exactly as ShardWriter.Append would.
func (zw *ZShardWriter) Append(u, v Vertex) error {
	if u == v {
		return nil
	}
	return zw.AppendPacked(PackEdge(u, v))
}

// AppendPacked adds an already-packed canonical edge key. Keys must arrive
// in ascending order (duplicates allowed); a key below the previous one
// errors — ESZ1 stores sorted streams only.
func (zw *ZShardWriter) AppendPacked(k uint64) error {
	if zw.err != nil {
		return zw.err
	}
	if zw.started && k < zw.last {
		zw.err = fmt.Errorf("graph: compressed shard input not sorted: key %#x after %#x", k, zw.last)
		return zw.err
	}
	zw.last, zw.started = k, true
	zw.keys = append(zw.keys, k)
	zw.total++
	if len(zw.keys) == shardChunkEdges {
		return zw.flushChunk()
	}
	return nil
}

func (zw *ZShardWriter) flushChunk() error {
	if len(zw.keys) == 0 {
		return zw.err
	}
	payload := encodeZChunk(zw.payload[:0], zw.keys)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(zw.keys)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := zw.bw.Write(hdr[:]); err != nil {
		zw.err = err
		return err
	}
	if _, err := zw.bw.Write(payload); err != nil {
		zw.err = err
		return err
	}
	zw.payload = payload[:0]
	zw.keys = zw.keys[:0]
	return nil
}

// encodeZChunk appends the delta+varint encoding of the sorted keys to dst.
func encodeZChunk(dst []byte, keys []uint64) []byte {
	var prevU, prevV uint64
	for _, k := range keys {
		u, v := k>>32, k&0xffffffff
		du := u - prevU
		dst = binary.AppendUvarint(dst, du)
		if du > 0 {
			dst = binary.AppendUvarint(dst, v-u-1)
		} else {
			dst = binary.AppendUvarint(dst, v-prevV)
		}
		prevU, prevV = u, v
	}
	return dst
}

// NumWritten returns the number of edges appended so far.
func (zw *ZShardWriter) NumWritten() uint64 { return zw.total }

// Info returns the shard placement the writer was created with.
func (zw *ZShardWriter) Info() ShardInfo { return zw.info }

// Close flushes the final chunk and writes the terminator and footer. For
// writers that own their file (CreateZShardFile) the file is also closed.
// The writer is unusable afterwards.
func (zw *ZShardWriter) Close() error {
	if err := zw.flushChunk(); err != nil {
		zw.closeFile()
		return err
	}
	var tail [12]byte // zero chunk count + uint64 footer
	binary.LittleEndian.PutUint64(tail[4:], zw.total)
	if _, err := zw.bw.Write(tail[:]); err != nil {
		zw.err = err
		zw.closeFile()
		return err
	}
	zw.err = fmt.Errorf("graph: compressed shard writer closed")
	if err := zw.bw.Flush(); err != nil {
		zw.closeFile()
		return err
	}
	return zw.closeFile()
}

func (zw *ZShardWriter) closeFile() error {
	if zw.f == nil {
		return nil
	}
	f := zw.f
	zw.f = nil
	return f.Close()
}

// CreateZShardFile creates (or truncates) path and returns a writer that
// owns the file: Close writes the terminator and footer and closes it.
func CreateZShardFile(path string, info ShardInfo) (*ZShardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	zw, err := NewZShardWriter(f, info)
	if err != nil {
		f.Close()
		return nil, err
	}
	zw.f = f
	return zw, nil
}

// ZShardReader streams an ESZ1 file chunk by chunk, mirroring ShardReader:
// the header is untrusted, every chunk and payload length is bounded, every
// decoded edge is validated (canonical, in range, globally non-decreasing),
// and the footer must match the edges actually decoded.
type ZShardReader struct {
	br      *bufio.Reader
	info    ShardInfo
	page    []byte
	buf     []uint64
	read    uint64
	lastKey uint64
	started bool
	done    bool
}

// NewZShardReader parses and validates the header.
func NewZShardReader(r io.Reader) (*ZShardReader, error) {
	return newZShardReaderFrom(bufio.NewReader(r))
}

func newZShardReaderFrom(br *bufio.Reader) (*ZShardReader, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading compressed shard header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != zshardMagic {
		return nil, fmt.Errorf("graph: bad magic in compressed edge shard")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		return nil, fmt.Errorf("graph: unsupported compressed shard version %d", v)
	}
	info := ShardInfo{
		NumVertices: binary.LittleEndian.Uint32(hdr[8:]),
		Index:       binary.LittleEndian.Uint32(hdr[12:]),
		Count:       binary.LittleEndian.Uint32(hdr[16:]),
		NumEdges:    binary.LittleEndian.Uint64(hdr[20:]),
	}
	if err := info.validate(); err != nil {
		return nil, err
	}
	return &ZShardReader{br: br, info: info}, nil
}

// Info returns the shard's header metadata.
func (zr *ZShardReader) Info() ShardInfo { return zr.info }

// Next returns the next chunk of packed edges. The returned slice is reused
// by subsequent calls. It returns io.EOF after the terminator, once the
// footer has been validated against the edges decoded.
func (zr *ZShardReader) Next() ([]uint64, error) {
	if zr.done {
		return nil, io.EOF
	}
	var hdr [8]byte
	if _, err := io.ReadFull(zr.br, hdr[:4]); err != nil {
		return nil, fmt.Errorf("graph: reading compressed shard chunk header at edge %d: %w", zr.read, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		var foot [8]byte
		if _, err := io.ReadFull(zr.br, foot[:]); err != nil {
			return nil, fmt.Errorf("graph: reading compressed shard footer: %w", err)
		}
		total := binary.LittleEndian.Uint64(foot[:])
		if total != zr.read {
			return nil, fmt.Errorf("graph: compressed shard footer declares %d edges, read %d", total, zr.read)
		}
		if zr.info.NumEdges != unknownEdgeCount && zr.info.NumEdges != zr.read {
			return nil, fmt.Errorf("graph: compressed shard header declares %d edges, read %d", zr.info.NumEdges, zr.read)
		}
		zr.done = true
		return nil, io.EOF
	}
	if n > maxShardChunkEdges {
		return nil, fmt.Errorf("graph: compressed shard chunk of %d edges exceeds cap %d", n, maxShardChunkEdges)
	}
	if _, err := io.ReadFull(zr.br, hdr[4:]); err != nil {
		return nil, fmt.Errorf("graph: reading compressed shard chunk header at edge %d: %w", zr.read, err)
	}
	blen := binary.LittleEndian.Uint32(hdr[4:])
	if blen == 0 || blen > n*maxZChunkPayloadPerEdge {
		return nil, fmt.Errorf("graph: compressed shard chunk payload of %d bytes outside (0,%d]", blen, n*maxZChunkPayloadPerEdge)
	}
	if cap(zr.page) < int(blen) {
		zr.page = make([]byte, blen)
	}
	page := zr.page[:blen]
	if _, err := io.ReadFull(zr.br, page); err != nil {
		return nil, fmt.Errorf("graph: reading compressed shard chunk at edge %d: %w", zr.read, err)
	}
	if cap(zr.buf) < int(n) {
		zr.buf = make([]uint64, n)
	}
	buf := zr.buf[:n]
	last, started, err := decodeZChunk(page, buf, uint64(zr.info.NumVertices), zr.lastKey, zr.started, zr.read)
	if err != nil {
		return nil, err
	}
	zr.lastKey, zr.started = last, started
	zr.read += uint64(n)
	return buf, nil
}

// decodeZChunk decodes one chunk payload into out, validating every edge:
// truncated or oversized varints, delta overflows past numVertices,
// non-canonical (u ≥ v) decodes, leftover or missing payload bytes, and
// keys going backwards relative to lastKey all error. It returns the new
// (lastKey, started) cursor.
func decodeZChunk(payload []byte, out []uint64, numVertices, lastKey uint64, started bool, base uint64) (uint64, bool, error) {
	var prevU, prevV uint64
	at := 0
	for i := range out {
		du, n := binary.Uvarint(payload[at:])
		if n <= 0 {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d: truncated or oversized source delta", base+uint64(i))
		}
		at += n
		gap, n := binary.Uvarint(payload[at:])
		if n <= 0 {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d: truncated or oversized destination gap", base+uint64(i))
		}
		at += n
		u := prevU + du
		var v uint64
		if du > 0 {
			v = u + 1 + gap
		} else {
			v = prevV + gap
		}
		// One range check on v covers u too (v must exceed u), but u is
		// checked first so an overflowing source delta reports as such.
		if u >= numVertices {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d source %d out of range [0,%d)", base+uint64(i), u, numVertices)
		}
		if v >= numVertices {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d endpoint %d out of range [0,%d)", base+uint64(i), v, numVertices)
		}
		if u >= v {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d (%d,%d) not canonical (want u < v)", base+uint64(i), u, v)
		}
		k := u<<32 | v
		if started && k < lastKey {
			return 0, false, fmt.Errorf("graph: compressed shard edge %d key %#x below predecessor %#x (stream not sorted)", base+uint64(i), k, lastKey)
		}
		lastKey, started = k, true
		out[i] = k
		prevU, prevV = u, v
	}
	if at != len(payload) {
		return 0, false, fmt.Errorf("graph: compressed shard chunk at edge %d: %d payload bytes left after %d edges", base, len(payload)-at, len(out))
	}
	return lastKey, started, nil
}

// ChunkReader is the format-independent face of a shard file: both the raw
// EShard reader and the compressed ESZ1 reader stream validated chunks of
// packed canonical edges under it. NewChunkReader dispatches on the magic,
// so every shard consumer (DirSource, ReadShardDir, graphstat) handles
// mixed raw/compressed directories with one code path.
type ChunkReader interface {
	// Info returns the shard's header metadata.
	Info() ShardInfo
	// Next returns the next chunk of packed edges, or io.EOF after the
	// validated terminator. The returned slice is reused across calls.
	Next() ([]uint64, error)
}

// NewChunkReader peeks the 4-byte magic and opens the matching reader:
// EShard ("ESH1") or compressed ESZ1.
func NewChunkReader(r io.Reader) (ChunkReader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("graph: reading shard magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(magic) {
	case shardMagic:
		return newShardReaderFrom(br)
	case zshardMagic:
		return newZShardReaderFrom(br)
	}
	return nil, fmt.Errorf("graph: unknown shard magic %#x (want ESH1 or ESZ1)", binary.LittleEndian.Uint32(magic))
}

// recoverZShardTail is RecoverShardTail's walk for ESZ1 files: chunks are
// accepted from the start for as long as they fully decode (bounded counts
// and payload lengths, valid varints, canonical in-range sorted edges); the
// file is truncated back to the end of the last good chunk and resealed.
// The caller has already read and validated the header.
func recoverZShardTail(f *os.File, info ShardInfo, size int64) (edges uint64, droppedBytes int64, err error) {
	var total uint64
	offset := int64(28)
	lastGood := offset
	nv := uint64(info.NumVertices)
	page := make([]byte, maxShardChunkEdges*maxZChunkPayloadPerEdge)
	out := make([]uint64, maxShardChunkEdges)
	var lastKey uint64
	started := false
	sealed := false
	for {
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:4], offset); err != nil {
			break // torn mid chunk header (or clean EOF with no terminator)
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n == 0 {
			var foot [8]byte
			if _, err := f.ReadAt(foot[:], offset+4); err != nil {
				break // torn mid footer
			}
			if binary.LittleEndian.Uint64(foot[:]) != total {
				break // footer contradicts the chunks; rewrite it
			}
			sealed = true
			offset += 12
			break
		}
		if n > maxShardChunkEdges {
			break // not a believable frame
		}
		if _, err := f.ReadAt(hdr[4:], offset+4); err != nil {
			break
		}
		blen := binary.LittleEndian.Uint32(hdr[4:])
		if blen == 0 || blen > n*maxZChunkPayloadPerEdge {
			break
		}
		payload := page[:blen]
		if _, err := f.ReadAt(payload, offset+8); err != nil {
			break // torn mid payload
		}
		lk, st, err := decodeZChunk(payload, out[:n], nv, lastKey, started, total)
		if err != nil {
			break // garbage where a chunk should be
		}
		lastKey, started = lk, st
		total += uint64(n)
		offset += 8 + int64(blen)
		lastGood = offset
	}

	if sealed && offset == size {
		if info.NumEdges == unknownEdgeCount || info.NumEdges == total {
			// Already a fully valid file: leave it untouched.
			return total, 0, nil
		}
		// Header contradicts a structurally valid body — reseal below.
	}

	droppedBytes = size - lastGood
	if sealed {
		droppedBytes = size - offset // only junk past the terminator was dropped
	}
	if droppedBytes < 0 {
		droppedBytes = 0
	}
	var sentinel [8]byte
	binary.LittleEndian.PutUint64(sentinel[:], unknownEdgeCount)
	if _, err := f.WriteAt(sentinel[:], 20); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing compressed shard: %w", err)
	}
	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[4:], total)
	if _, err := f.WriteAt(tail[:], lastGood); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing compressed shard: %w", err)
	}
	if err := f.Truncate(lastGood + 12); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing compressed shard: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, 0, fmt.Errorf("graph: resealing compressed shard: %w", err)
	}
	return total, droppedBytes, nil
}
