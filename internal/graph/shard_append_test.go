package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeShardFile materializes a fresh shard file at path with the given
// edges and returns its bytes for mutation-based cases.
func writeShardFile(t *testing.T, path string, numVertices uint32, edges []Edge) []byte {
	t.Helper()
	sw, err := CreateShardFile(path, ShardInfo{NumVertices: numVertices, Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := sw.Append(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readShardFileT(t *testing.T, path string) *Shard {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := ReadShard(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardAppendRoundTrip: write, close, reopen for append, extend, close —
// the reader must see the concatenated edge sequence with a valid footer,
// across several append generations and partial final chunks.
func TestShardAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.esh")
	first := []Edge{{0, 1}, {1, 2}, {2, 3}}
	writeShardFile(t, path, 1<<20, first)

	var want []uint64
	for _, e := range first {
		want = append(want, PackEdge(e.U, e.V))
	}
	// Three generations, one of them spilling past the chunk flush boundary
	// so appended chunks and pre-existing chunks coexist.
	for gen, count := range []int{5, shardChunkEdges + 17, 3} {
		sw, err := OpenShardAppend(path)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if sw.NumWritten() != uint64(len(want)) {
			t.Fatalf("gen %d: reopened writer reports %d edges, want %d", gen, sw.NumWritten(), len(want))
		}
		if sw.Info().Count != 1 || sw.Info().NumVertices != 1<<20 {
			t.Fatalf("gen %d: reopened info %+v", gen, sw.Info())
		}
		for i := 0; i < count; i++ {
			u := Vertex(gen*100000 + i)
			if err := sw.Append(u, u+1); err != nil {
				t.Fatal(err)
			}
			want = append(want, PackEdge(u, u+1))
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		s := readShardFileT(t, path)
		if len(s.Packed) != len(want) {
			t.Fatalf("gen %d: read %d edges, want %d", gen, len(s.Packed), len(want))
		}
		for i, k := range want {
			if s.Packed[i] != k {
				t.Fatalf("gen %d: edge %d = %#x, want %#x", gen, i, s.Packed[i], k)
			}
		}
	}
}

// TestShardAppendRewritesDeclaredHeaderCount: a file whose header declares an
// exact edge count (WriteShard does) must come back with the streaming
// sentinel after reopening, so the header can never contradict the extended
// contents.
func TestShardAppendRewritesDeclaredHeaderCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.esh")
	var buf bytes.Buffer
	s := &Shard{NumVertices: 64, Packed: []uint64{PackEdge(1, 2), PackEdge(3, 4)}}
	if err := WriteShard(&buf, s, 0, 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// WriteShard goes through the streaming writer, so patch an exact count
	// into the header to simulate a count-declaring producer.
	binary.LittleEndian.PutUint64(b[20:], 2)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := OpenShardAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(5, 6); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got := readShardFileT(t, path)
	if len(got.Packed) != 3 {
		t.Fatalf("read %d edges, want 3", len(got.Packed))
	}
	hdr, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(hdr[20:]) != ^uint64(0) {
		t.Fatalf("header count %#x not rewritten to the unknown sentinel", binary.LittleEndian.Uint64(hdr[20:]))
	}
}

// TestShardAppendZeroNewEdges: reopen+close with nothing appended must leave
// a byte-identical valid file (footer rewritten with the same total).
func TestShardAppendZeroNewEdges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.esh")
	before := writeShardFile(t, path, 64, []Edge{{0, 1}, {2, 3}})
	sw, err := OpenShardAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("idle reopen changed the file: %d -> %d bytes", len(before), len(after))
	}
}

// TestShardAppendRejectsHostileInput: reopening validates the whole frame
// structure, so every truncation or corruption a crash (or an attacker) can
// leave behind errors instead of silently extending a broken file.
func TestShardAppendRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr string
	}{
		{
			name:    "bad magic",
			mutate:  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef); return b },
			wantErr: "bad magic",
		},
		{
			name:    "truncated mid-payload",
			mutate:  func(b []byte) []byte { return b[:len(b)-20] },
			wantErr: "EOF",
		},
		{
			name:    "truncated footer",
			mutate:  func(b []byte) []byte { return b[:len(b)-4] },
			wantErr: "footer",
		},
		{
			name:    "missing terminator",
			mutate:  func(b []byte) []byte { return b[:len(b)-12] },
			wantErr: "", // any error: the walk runs off the end
		},
		{
			name: "footer total tampered",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[len(b)-8:], 99)
				return b
			},
			wantErr: "footer declares 99",
		},
		{
			name:    "trailing bytes after terminator",
			mutate:  func(b []byte) []byte { return append(b, 0xaa, 0xbb) },
			wantErr: "trailing bytes",
		},
		{
			name: "hostile chunk length",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[28:], maxShardChunkEdges+1)
				return b
			},
			wantErr: "exceeds cap",
		},
		{
			name:    "empty file",
			mutate:  func(b []byte) []byte { return nil },
			wantErr: "header",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "s.esh")
			base := writeShardFile(t, path, 64, []Edge{{0, 1}, {1, 2}, {2, 63}})
			mutated := tc.mutate(append([]byte(nil), base...))
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := OpenShardAppend(path)
			if err == nil {
				sw.Close()
				t.Fatalf("hostile file reopened for append without error")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			// A rejected reopen must not have modified the file.
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(before, after) {
				t.Fatalf("rejected reopen modified the file")
			}
		})
	}
}
