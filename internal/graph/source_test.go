package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// drain pulls a full pass from a source, returning (keys, positions).
// Sequential chunks get synthesized positions, as consumers do.
func drain(t *testing.T, src Source) ([]uint64, []int64) {
	t.Helper()
	es, err := src.Edges()
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	var keys []uint64
	var poss []int64
	var seq int64
	for {
		chunk, pos, err := es.Next()
		if err == io.EOF {
			return keys, poss
		}
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range chunk {
			keys = append(keys, k)
			if pos != nil {
				poss = append(poss, pos[j])
			} else {
				poss = append(poss, seq+int64(j))
			}
		}
		seq += int64(len(chunk))
	}
}

func testSourceGraph() *Graph {
	edges := make([]Edge, 0, 4096)
	for i := uint32(0); i < 1024; i++ {
		edges = append(edges, Edge{i, i + 1}, Edge{i, (i*7 + 3) % 2048}, Edge{i % 5, i + 2})
	}
	return FromEdges(2049, edges)
}

// TestSourceOfReplaysCanonicalList: the graph-backed source yields exactly
// the canonical edge list, with sequential positions, on every pass.
func TestSourceOfReplaysCanonicalList(t *testing.T) {
	g := testSourceGraph()
	src := SourceOf(g)
	info := src.Info()
	if info.NumVertices != g.NumVertices() || info.NumEdges != g.NumEdges() {
		t.Fatalf("info %+v does not match graph %v", info, g)
	}
	for pass := 0; pass < 2; pass++ {
		keys, poss := drain(t, src)
		if int64(len(keys)) != g.NumEdges() {
			t.Fatalf("pass %d: %d keys, want %d", pass, len(keys), g.NumEdges())
		}
		for i, k := range keys {
			if e := g.Edge(int64(i)); k != PackEdge(e.U, e.V) || poss[i] != int64(i) {
				t.Fatalf("pass %d: edge %d mismatch", pass, i)
			}
		}
	}
}

// TestDirSourceMatchesGraphSource: canonical shard stripes read back in
// shard-index order replay the same sequence as the graph source, and the
// directory's hints are exact.
func TestDirSourceMatchesGraphSource(t *testing.T) {
	g := testSourceGraph()
	dir := t.TempDir()
	const count = 3
	for i, sh := range ShardsOf(g, count) {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("shard-%04d-of-%04d.esh", i, count)))
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(f, sh, uint32(i), uint32(count)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	src, err := DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := src.Info()
	if info.NumVertices != g.NumVertices() || info.NumEdges != g.NumEdges() {
		t.Fatalf("dir info %+v does not match graph %v", info, g)
	}
	want, _ := drain(t, SourceOf(g))
	got, _ := drain(t, src)
	if len(got) != len(want) {
		t.Fatalf("dir source yields %d edges, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d: dir %#x != graph %#x", i, got[i], want[i])
		}
	}
}

// TestBinarySourceMatchesGraphSource: a WriteBinary file streamed through
// BinarySource replays the canonical edge list.
func TestBinarySourceMatchesGraphSource(t *testing.T) {
	g := testSourceGraph()
	path := filepath.Join(t.TempDir(), "g.dne")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := BinarySource(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := drain(t, SourceOf(g))
	for pass := 0; pass < 2; pass++ {
		got, _ := drain(t, src)
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d edges, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pass %d edge %d: %#x != %#x", pass, i, got[i], want[i])
			}
		}
	}
}

// TestFromSourceRoundTrip: materializing any canonical source reproduces
// the original graph.
func TestFromSourceRoundTrip(t *testing.T) {
	g := testSourceGraph()
	back, err := FromSource(SourceOf(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %v != %v", back, g)
	}
	for i, e := range back.Edges() {
		if e != g.Edge(int64(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestSourceCountsMatchesHints: the counting pass agrees exactly with the
// hints of a hinted source, so hint presence cannot change behavior. The
// graph's |V| is inferred from its edges — a counting pass can only see
// endpoints, so a trailing isolated vertex would (correctly) be invisible
// to it.
func TestSourceCountsMatchesHints(t *testing.T) {
	g := FromEdges(0, testSourceGraph().Edges())
	src := SourceOf(g)
	v1, e1, err := SourceCounts(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An identical source with the hints withheld.
	blind := hintlessSource{src}
	v2, e2, err := SourceCounts(blind, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || e1 != e2 {
		t.Fatalf("hinted (%d,%d) != counted (%d,%d)", v1, e1, v2, e2)
	}
}

type hintlessSource struct{ Source }

func (s hintlessSource) Info() SourceInfo { return SourceInfo{Name: "blind"} }

// TestShuffledIsDeterministicPermutation: the shuffle decorator emits a
// permutation of the raw stream — every raw position exactly once, keys
// matching their positions — identically on every pass and across sources
// replaying the same sequence, and differently for different seeds.
func TestShuffledIsDeterministicPermutation(t *testing.T) {
	g := testSourceGraph()
	raw, _ := drain(t, SourceOf(g))
	sh := Shuffled(SourceOf(g), 7)
	if RawSource(sh).Info() != SourceOf(g).Info() {
		t.Fatal("RawSource did not unwrap to the graph source")
	}
	keys1, pos1 := drain(t, sh)
	keys2, pos2 := drain(t, sh)
	if len(keys1) != len(raw) {
		t.Fatalf("shuffle yields %d edges, want %d", len(keys1), len(raw))
	}
	seen := make([]bool, len(raw))
	ordered := true
	for i := range keys1 {
		p := pos1[i]
		if p < 0 || p >= int64(len(raw)) || seen[p] {
			t.Fatalf("position %d out of range or repeated", p)
		}
		seen[p] = true
		if keys1[i] != raw[p] {
			t.Fatalf("edge at shuffled index %d does not match raw position %d", i, p)
		}
		if p != int64(i) {
			ordered = false
		}
		if keys1[i] != keys2[i] || pos1[i] != pos2[i] {
			t.Fatalf("pass 2 differs at %d", i)
		}
	}
	if ordered {
		t.Fatal("shuffle left the stream in raw order")
	}
	// A different seed must give a different order.
	keysB, _ := drain(t, Shuffled(SourceOf(g), 8))
	same := true
	for i := range keysB {
		if keysB[i] != keys1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 shuffled identically")
	}
}

// TestBinarySourceSelfLoops: a hand-written DNE1 file may contain self
// loops; the source drops them exactly as ReadBinary would, reports no
// (inexact) |E| hint, and the counting pass sees the post-drop count — so
// stream-capable methods size their output correctly.
func TestBinarySourceSelfLoops(t *testing.T) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, 0x444e4531) // magic
	buf = binary.LittleEndian.AppendUint32(buf, 5)          // |V|
	buf = binary.LittleEndian.AppendUint64(buf, 3)          // declared edges
	for _, e := range [][2]uint32{{0, 1}, {2, 2}, {3, 4}} { // one self loop
		buf = binary.LittleEndian.AppendUint32(buf, e[0])
		buf = binary.LittleEndian.AppendUint32(buf, e[1])
	}
	path := filepath.Join(t.TempDir(), "loop.dne")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := BinarySource(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Info().NumEdges != 0 {
		t.Fatalf("inexact |E| hint reported: %+v", src.Info())
	}
	keys, _ := drain(t, src)
	if len(keys) != 2 {
		t.Fatalf("got %d edges, want 2 (self loop dropped)", len(keys))
	}
	_, ne, err := SourceCounts(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ne != 2 {
		t.Fatalf("counting pass says %d edges, want 2", ne)
	}
}
