package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/dsa"
)

// The streaming pipeline: decorators that overlap a partition run's stages
// with bounded channels instead of running decode → shuffle → assign on one
// goroutine. Both preserve the exact edge sequence of their sequential
// counterparts — Prefetched is order-transparent by construction, and
// PipedShuffle reproduces Shuffled's emission bit for bit — so a pipelined
// run produces the same Owner array, checksum and Quality as a sequential
// one; only the wall clock changes. The sequential paths stay as the
// reference implementation and the golden tests pin the equivalence.

// DefaultPrefetchDepth is how many decoded chunks a Prefetched source keeps
// in flight ahead of its consumer: deep enough to ride out consumer bursts
// (a few hundred KiB of buffered edges), shallow enough that memory stays
// O(chunk).
const DefaultPrefetchDepth = 4

// Prefetched decorates a source with a decode-ahead stage: each pass runs
// the inner stream on its own goroutine, which decodes (and, for disk
// sources, reads) up to depth chunks ahead of the consumer through a
// bounded channel. The consumer sees the exact same chunks in the exact
// same order — the decorator is invisible to determinism — but disk latency
// and decode CPU overlap with downstream work instead of serializing with
// it.
//
// Prefetched deliberately does NOT implement Unwrapper: order-independent
// passes (degree counting, quality measurement) that strip decorators via
// RawSource still land on the prefetcher, so every pass of a pipelined run
// gets decode-ahead, not just the assignment pass.
func Prefetched(src Source, depth int) Source {
	if depth <= 0 {
		depth = DefaultPrefetchDepth
	}
	return &prefetchedSource{inner: src, depth: depth}
}

type prefetchedSource struct {
	inner    Source
	depth    int
	decodeNS atomic.Int64 // cumulative time inside the inner stream's Next
}

// DecodeTime reports the cumulative time this source's decode goroutines
// spent pulling chunks off the inner stream (disk reads + ESZ1 decoding),
// across all passes. Backpressure waits are excluded — those are the stall
// counters. Partition runners surface it as a phase so traces show the
// decode stage of a pipelined run.
func (s *prefetchedSource) DecodeTime() time.Duration {
	return time.Duration(s.decodeNS.Load())
}

func (s *prefetchedSource) Info() SourceInfo {
	info := s.inner.Info()
	info.Name = "prefetch:" + info.Name
	return info
}

// AccountBytes is the analytic footprint of the buffer ring: depth in-flight
// chunks plus the one the consumer holds, keys and positions.
func (s *prefetchedSource) AccountBytes() int64 {
	return int64(s.depth+1) * SourceChunkEdges * 16
}

// BytesRead passes the inner source's storage meter through, so callers
// reporting disk traffic see through the decorator.
func (s *prefetchedSource) BytesRead() int64 {
	if bm, ok := s.inner.(ByteMeter); ok {
		return bm.BytesRead()
	}
	return 0
}

func (s *prefetchedSource) Edges() (EdgeStream, error) {
	st := &prefetchStream{
		filled: make(chan prefetchChunk, s.depth),
		free:   make(chan prefetchChunk, s.depth),
		stop:   make(chan struct{}),
	}
	for i := 0; i < s.depth; i++ {
		st.free <- prefetchChunk{}
	}
	go st.produce(s)
	return st, nil
}

// prefetchChunk is one decoded chunk in flight. keys/posBuf are the owned
// buffers, recycled through the free ring; pos aliases posBuf when the
// inner chunk carried positions and is nil for sequential chunks (the
// nil-ness is part of the stream contract and must survive the copy).
type prefetchChunk struct {
	keys   []uint64
	pos    []int64
	posBuf []int64
	err    error
}

type prefetchStream struct {
	filled chan prefetchChunk
	free   chan prefetchChunk
	stop   chan struct{}
	once   sync.Once
	cur    prefetchChunk
	holds  bool
	done   bool
}

// produce runs on the decode goroutine: pull chunks off the inner stream,
// copy them into ring buffers (the inner stream reuses its chunk memory),
// and hand them downstream. Time blocked waiting for a free buffer or for
// the consumer to take a filled one is decode-side stall — the signal that
// the consumer, not the disk, is the bottleneck.
func (st *prefetchStream) produce(src *prefetchedSource) {
	defer close(st.filled)
	es, err := src.inner.Edges()
	if err != nil {
		select {
		case st.filled <- prefetchChunk{err: err}:
		case <-st.stop:
		}
		return
	}
	defer es.Close()
	for {
		decode := time.Now()
		keys, pos, err := es.Next()
		src.decodeNS.Add(time.Since(decode).Nanoseconds())
		if err == io.EOF {
			return
		}
		if err != nil {
			select {
			case st.filled <- prefetchChunk{err: err}:
			case <-st.stop:
			}
			return
		}
		waitFree := time.Now()
		var c prefetchChunk
		select {
		case c = <-st.free:
		case <-st.stop:
			return
		}
		stallDecodeNS.Add(time.Since(waitFree).Nanoseconds())
		c.err = nil
		c.keys = append(c.keys[:0], keys...)
		if pos != nil {
			c.posBuf = append(c.posBuf[:0], pos...)
			c.pos = c.posBuf
		} else {
			c.pos = nil
		}
		waitSend := time.Now()
		select {
		case st.filled <- c:
		case <-st.stop:
			return
		}
		stallDecodeNS.Add(time.Since(waitSend).Nanoseconds())
		streamChunksDecoded.Add(1)
	}
}

func (st *prefetchStream) Next() ([]uint64, []int64, error) {
	if st.done {
		return nil, nil, io.EOF
	}
	if st.holds {
		st.holds = false
		select {
		case st.free <- st.cur:
		default: // ring full after an error path; drop the buffer
		}
		st.cur = prefetchChunk{}
	}
	wait := time.Now()
	c, ok := <-st.filled
	stallConsumeNS.Add(time.Since(wait).Nanoseconds())
	if !ok {
		st.done = true
		return nil, nil, io.EOF
	}
	if c.err != nil {
		st.done = true
		return nil, nil, c.err
	}
	st.cur, st.holds = c, true
	return c.keys, c.pos, nil
}

func (st *prefetchStream) Close() error {
	st.once.Do(func() { close(st.stop) })
	st.done = true
	return nil
}

// ---------------------------------------------------------------------------
// Piped shuffle

// PipedShuffle is Shuffled with the B× re-read amplification removed: the
// same deterministic bucket shuffle (same routing hash, same per-bucket
// Fisher–Yates rng, bit-identical emitted order), built from ONE pass over
// the underlying source instead of one pass per bucket.
//
// The one pass scatters every edge into its bucket's temp spill file in raw
// stream order (a stable counting-sort pass per chunk — dsa.ScatterByBucket
// — groups each chunk so every bucket gets one contiguous write). Draining
// then loads each spill, applies the identical Fisher–Yates, and emits;
// while bucket b streams out, a loader goroutine reads and shuffles bucket
// b+1, so spill I/O and shuffle CPU overlap emission. Spill files live in a
// fresh temp directory and are removed when the pass ends or is closed.
//
// Memory is the same O(largest bucket) as Shuffled — twice over, since the
// next bucket loads while the current one drains — plus the scatter stage's
// write buffers. Disk cost per pass: |E|·16 bytes written and read back
// once, in exchange for B-1 saved re-reads of the source; for a cold-disk
// source the spill (on scratch storage) is far cheaper than re-decoding
// the shards B times.
func PipedShuffle(src Source, seed int64) Source {
	return &pipedShuffleSource{inner: src, seed: seed}
}

type pipedShuffleSource struct {
	inner     Source
	seed      int64
	maxBuf    atomic.Int64 // largest bucket seen by any pass
	scatterNS atomic.Int64 // cumulative scatter-pass wall time
}

// ScatterTime reports the cumulative wall time this source's passes spent
// in their scatter stage (one source pass + spill writes, included in the
// consumer's overall timing). Partition runners surface it as a phase so
// traces show where a pipelined pass's time went.
func (s *pipedShuffleSource) ScatterTime() time.Duration {
	return time.Duration(s.scatterNS.Load())
}

func (s *pipedShuffleSource) Info() SourceInfo {
	info := s.inner.Info()
	info.Name = "piped-shuffle:" + info.Name
	return info
}

// Unwrap exposes the inner source for order-independent passes. When the
// inner source is Prefetched, those passes keep their decode-ahead.
func (s *pipedShuffleSource) Unwrap() Source { return s.inner }

// AccountBytes: two bucket buffers (draining + loading-ahead) of keys and
// positions, plus the scatter stage's per-bucket spill write buffers, plus
// whatever the inner decorator accounts.
func (s *pipedShuffleSource) AccountBytes() int64 {
	acct := s.maxBuf.Load()*16*2 + ShuffleBuckets*spillBufBytes
	if a, ok := s.inner.(interface{ AccountBytes() int64 }); ok {
		acct += a.AccountBytes()
	}
	return acct
}

// spillBufBytes is the buffered-writer size per bucket spill file during
// the scatter pass.
const spillBufBytes = 64 << 10

// spillRecordBytes is one spilled edge: packed key + raw stream position.
const spillRecordBytes = 16

func (s *pipedShuffleSource) Edges() (EdgeStream, error) {
	return &pipedShuffleStream{s: s}, nil
}

type bucketBatch struct {
	keys []uint64
	pos  []int64
	err  error
}

type pipedShuffleStream struct {
	s       *pipedShuffleSource
	started bool
	done    bool
	loaded  chan bucketBatch
	stop    chan struct{}
	once    sync.Once
	cur     bucketBatch
	at      int
}

func (st *pipedShuffleStream) Next() ([]uint64, []int64, error) {
	if st.done {
		return nil, nil, io.EOF
	}
	if !st.started {
		if err := st.start(); err != nil {
			st.done = true
			return nil, nil, err
		}
	}
	for {
		if st.at < len(st.cur.keys) {
			n := len(st.cur.keys) - st.at
			if n > SourceChunkEdges {
				n = SourceChunkEdges
			}
			keys := st.cur.keys[st.at : st.at+n]
			pos := st.cur.pos[st.at : st.at+n]
			st.at += n
			return keys, pos, nil
		}
		wait := time.Now()
		b, ok := <-st.loaded
		stallDrainNS.Add(time.Since(wait).Nanoseconds())
		if !ok {
			st.done = true
			return nil, nil, io.EOF
		}
		if b.err != nil {
			st.done = true
			return nil, nil, b.err
		}
		st.cur, st.at = b, 0
	}
}

// start runs the scatter pass synchronously (it IS this stream's first
// consumption of the source) and launches the drain loader.
func (st *pipedShuffleStream) start() error {
	begin := time.Now()
	dir, counts, err := st.scatter()
	st.s.scatterNS.Add(time.Since(begin).Nanoseconds())
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return err
	}
	st.started = true
	st.loaded = make(chan bucketBatch)
	st.stop = make(chan struct{})
	go st.load(dir, counts)
	return nil
}

// scatter reads the whole inner source once and spills every edge, in raw
// stream order, into its bucket's temp file.
func (st *pipedShuffleStream) scatter() (dir string, counts [ShuffleBuckets]int64, err error) {
	dir, err = os.MkdirTemp("", "dne-shuffle-")
	if err != nil {
		return "", counts, err
	}
	var files [ShuffleBuckets]*os.File
	var writers [ShuffleBuckets]*bufio.Writer
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for b := range files {
		f, ferr := os.Create(filepath.Join(dir, fmt.Sprintf("bucket-%02d", b)))
		if ferr != nil {
			return dir, counts, ferr
		}
		files[b] = f
		writers[b] = bufio.NewWriterSize(f, spillBufBytes)
	}

	es, err := st.s.inner.Edges()
	if err != nil {
		return dir, counts, err
	}
	defer es.Close()

	var (
		raw     int64
		posBuf  []int64
		bkt     []uint8
		outKeys []uint64
		outPos  []int64
		rec     []byte
		offs    = make([]int, ShuffleBuckets+1)
		cursor  = make([]int, ShuffleBuckets)
	)
	for {
		keys, cpos, nerr := es.Next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			return dir, counts, nerr
		}
		n := len(keys)
		if cap(posBuf) < n {
			posBuf = make([]int64, n)
			bkt = make([]uint8, n)
			outKeys = make([]uint64, n)
			outPos = make([]int64, n)
			rec = make([]byte, n*spillRecordBytes)
		}
		pos := posBuf[:n]
		if cpos != nil {
			copy(pos, cpos)
		} else {
			for j := range pos {
				pos[j] = raw + int64(j)
			}
		}
		for j, k := range keys {
			bkt[j] = uint8(shuffleBucketOf(k, st.s.seed))
		}
		bounds := dsa.ScatterByBucket(keys, pos, bkt[:n], ShuffleBuckets, outKeys[:n], outPos[:n], offs, cursor)
		for b := 0; b < ShuffleBuckets; b++ {
			lo, hi := bounds[b], bounds[b+1]
			if lo == hi {
				continue
			}
			buf := rec[:0]
			for i := lo; i < hi; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, outKeys[i])
				buf = binary.LittleEndian.AppendUint64(buf, uint64(outPos[i]))
			}
			if _, werr := writers[b].Write(buf); werr != nil {
				return dir, counts, werr
			}
			counts[b] += int64(hi - lo)
		}
		raw += int64(n)
	}
	for b := range writers {
		if werr := writers[b].Flush(); werr != nil {
			return dir, counts, werr
		}
		if cerr := files[b].Close(); cerr != nil {
			files[b] = nil
			return dir, counts, cerr
		}
		files[b] = nil
	}
	return dir, counts, nil
}

// load runs on the drain goroutine: read each bucket's spill, apply the
// per-bucket Fisher–Yates, and hand the batch to the consumer. Two batch
// buffers alternate — the unbuffered channel guarantees the consumer has
// released buffer b-2 before b is filled — so bucket b+1 loads and shuffles
// while bucket b streams out.
func (st *pipedShuffleStream) load(dir string, counts [ShuffleBuckets]int64) {
	defer close(st.loaded)
	defer os.RemoveAll(dir)
	var bufs [2]bucketBatch
	for b := 0; b < ShuffleBuckets; b++ {
		batch := &bufs[b%2]
		if err := loadBucket(filepath.Join(dir, fmt.Sprintf("bucket-%02d", b)), counts[b], batch); err != nil {
			select {
			case st.loaded <- bucketBatch{err: err}:
			case <-st.stop:
			}
			return
		}
		shuffleBucket(batch.keys, batch.pos, st.s.seed, uint32(b))
		for {
			old := st.s.maxBuf.Load()
			if n := int64(len(batch.keys)); n <= old || st.s.maxBuf.CompareAndSwap(old, n) {
				break
			}
		}
		wait := time.Now()
		select {
		case st.loaded <- *batch:
		case <-st.stop:
			return
		}
		stallScatterNS.Add(time.Since(wait).Nanoseconds())
	}
}

// loadBucket reads one spill file into the batch's (reused) buffers.
func loadBucket(path string, count int64, batch *bucketBatch) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if cap(batch.keys) < int(count) {
		batch.keys = make([]uint64, count)
		batch.pos = make([]int64, count)
	}
	batch.keys = batch.keys[:count]
	batch.pos = batch.pos[:count]
	br := bufio.NewReaderSize(f, spillBufBytes)
	var rec [spillRecordBytes]byte
	for i := int64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("graph: reading shuffle spill %s record %d: %w", path, i, err)
		}
		batch.keys[i] = binary.LittleEndian.Uint64(rec[0:])
		batch.pos[i] = int64(binary.LittleEndian.Uint64(rec[8:]))
	}
	return nil
}

func (st *pipedShuffleStream) Close() error {
	if st.started {
		st.once.Do(func() { close(st.stop) })
		// Drain until the loader closes the channel so the spill dir is
		// removed before Close returns.
		for range st.loaded {
		}
	}
	st.done = true
	return nil
}

// Piped composes the full pipelined decoration for a partition run:
// decode-ahead on the raw source, and — when shuffle is set — the
// single-pass bucket shuffle above it. The emitted order is identical to
// the sequential Shuffled(src, seed) (or to src itself when shuffle is
// unset); only the stage overlap differs.
func Piped(src Source, seed int64, shuffle bool) Source {
	pref := Prefetched(src, DefaultPrefetchDepth)
	if !shuffle {
		return pref
	}
	return PipedShuffle(pref, seed)
}
