// Package sheep implements an elimination-tree edge partitioner after Margo
// & Seltzer, "A Scalable Distributed Graph Partitioner", VLDB 2015 (Sheep).
//
// Sheep translates the graph into an elimination tree using a degree-ordered
// vertex elimination, maps every graph edge onto a tree node (the
// later-eliminated endpoint), and then solves the much easier problem of
// partitioning a tree into connected, edge-weight-balanced parts. This
// reproduction keeps all three phases but runs the tree construction
// sequentially and bounds fill-in to the spanning structure (the full
// algorithm merges adjacency lists divide-and-conquer style across machines;
// the resulting tree and hence partition quality are equivalent for the
// graph classes evaluated here — strong on webby/low-treewidth graphs, weak
// on dense social graphs, matching §7.2's observations).
package sheep

import (
	"cmp"
	"context"
	"slices"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Sheep is the elimination-tree partitioner.
type Sheep struct {
	// Alpha is the imbalance factor for the tree-partitioning phase
	// (default 1.1).
	Alpha float64
	Seed  int64
}

// Name returns the display label.
func (Sheep) Name() string { return "Sheep" }

// Partition computes the assignment without cancellation support.
func (s Sheep) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return s.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the elimination-tree core; it polls ctx between phases
// and every partition.CheckEvery vertices/edges inside them.
func (s Sheep) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	n := int(g.NumVertices())
	totalE := g.NumEdges()
	p := partition.New(numParts, totalE)
	if n == 0 || totalE == 0 {
		return p, nil
	}

	// Phase 1: elimination order. Sheep eliminates low-degree periphery
	// first so hubs end up near the tree root; on uniform-degree graphs
	// (road networks) pure degree ordering is all ties and destroys
	// locality, so we rank primarily by descending BFS depth (deepest
	// first), which both preserves lattice locality and pushes hubs —
	// reached early by BFS — to the end, then break ties by ascending
	// degree and id for determinism.
	depth := bfsDepths(g)
	order := make([]graph.Vertex, n)
	for v := range order {
		order[v] = graph.Vertex(v)
	}
	slices.SortFunc(order, func(a, b graph.Vertex) int {
		if depth[a] != depth[b] {
			return cmp.Compare(depth[b], depth[a])
		}
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return cmp.Compare(da, db)
		}
		return cmp.Compare(a, b)
	})
	rank := make([]int32, n) // elimination position of each vertex
	for i, v := range order {
		rank[v] = int32(i)
	}

	// Phase 2: elimination tree. The parent of v is its earliest-eliminated
	// neighbor among those eliminated after v (the classic elimination-tree
	// parent on the unfilled graph).
	parent := make([]int32, n)
	for v := 0; v < n; v++ {
		if v%partition.CheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		parent[v] = -1
		best := int32(-1)
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			if rank[u] > rank[v] && (best == -1 || rank[u] < best) {
				best = rank[u]
			}
		}
		if best != -1 {
			parent[v] = int32(order[best])
		}
	}

	// Every graph edge maps to the tree node of its earlier-eliminated
	// endpoint (the node where the edge "disappears" during elimination);
	// nodeWeight counts the edges charged to each vertex.
	nodeWeight := make([]int64, n)
	edgeNode := make([]int32, totalE)
	for i, e := range g.Edges() {
		if i%partition.CheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		node := e.U
		if rank[e.V] < rank[e.U] {
			node = e.V
		}
		edgeNode[i] = int32(node)
		nodeWeight[node]++
	}

	// Phase 3: partition the forest into connected, weight-balanced chunks.
	// Process vertices in elimination order (children before parents),
	// accumulating subtree weights; when a subtree reaches the target size it
	// is split off as one partition.
	// Subtrees are closed once they reach a grain of the target size and
	// bin-packed onto the currently lightest partition, keeping every
	// partition a union of a few connected tree pieces.
	capW := int64(alpha * float64(totalE) / float64(numParts))
	if capW < 1 {
		capW = 1
	}
	grain := totalE / int64(numParts*4)
	if grain < 1 {
		grain = 1
	}
	chunkW := make([]int64, numParts)
	takeChunk := func(w int64) int32 {
		best := int32(0)
		for q := 1; q < numParts; q++ {
			if chunkW[q] < chunkW[best] {
				best = int32(q)
			}
		}
		chunkW[best] += w
		return best
	}
	subtree := make([]int64, n)
	chunk := make([]int32, n)
	for v := range chunk {
		chunk[v] = -1
	}
	for _, v := range order {
		w := subtree[v] + nodeWeight[v]
		if w >= grain {
			// Close this subtree as its own connected piece.
			if chunk[v] == -1 {
				chunk[v] = takeChunk(w)
			}
			w = 0
		}
		if pv := parent[v]; pv >= 0 {
			subtree[pv] += w
		} else if chunk[v] == -1 {
			chunk[v] = takeChunk(w)
		}
	}
	// Propagate chunk labels down from the closest labelled ancestor
	// (process in reverse elimination order: parents before children).
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if chunk[v] != -1 {
			continue
		}
		if pv := parent[v]; pv >= 0 && chunk[pv] != -1 {
			chunk[v] = chunk[pv]
		} else {
			chunk[v] = takeChunk(nodeWeight[v])
		}
	}
	for i := range edgeNode {
		p.Owner[i] = chunk[edgeNode[i]]
	}
	rebalance(p, totalE, numParts, capW)
	return p, nil
}

// bfsDepths returns per-vertex BFS depth, running one BFS per connected
// component rooted at the component's maximum-degree vertex.
func bfsDepths(g *graph.Graph) []int32 {
	n := int(g.NumVertices())
	depth := make([]int32, n)
	for v := range depth {
		depth[v] = -1
	}
	// Roots in descending degree so the highest-degree vertex of each
	// component is its root.
	roots := make([]graph.Vertex, n)
	for v := range roots {
		roots[v] = graph.Vertex(v)
	}
	slices.SortFunc(roots, func(a, b graph.Vertex) int {
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return cmp.Compare(db, da)
		}
		return cmp.Compare(a, b)
	})
	var queue []graph.Vertex
	for _, r := range roots {
		if depth[r] != -1 {
			continue
		}
		depth[r] = 0
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if depth[u] == -1 {
					depth[u] = depth[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return depth
}

// rebalance sweeps edges from over-full partitions into the lightest ones so
// the α constraint holds (the tree cut cannot always balance exactly).
func rebalance(p *partition.Partitioning, totalE int64, numParts int, capW int64) {
	sizes := p.EdgeCounts()
	lightest := func() int32 {
		best := int32(0)
		for q := 1; q < numParts; q++ {
			if sizes[q] < sizes[best] {
				best = int32(q)
			}
		}
		return best
	}
	for i, o := range p.Owner {
		if sizes[o] > capW {
			q := lightest()
			if sizes[q] >= capW {
				break // everything at capacity; leave as is
			}
			sizes[o]--
			sizes[q]++
			p.Owner[i] = q
		}
	}
}
