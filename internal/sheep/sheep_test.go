package sheep

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestValidOnSkewedGraph(t *testing.T) {
	g := gen.RMAT(11, 8, 4)
	for _, parts := range []int{2, 8, 64} {
		pt, err := Sheep{Seed: 1}.Partition(g, parts)
		if err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
	}
}

func TestRoadNetworkQuality(t *testing.T) {
	// The paper's Table 6 story: Sheep is near-ideal on road networks
	// (RF 1.03) where hash methods are ~3.5. Our reproduction stays
	// well under 1.6 at 64 partitions.
	g := gen.Road(120, 120, 5)
	pt, err := Sheep{Seed: 1}.Partition(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	rf := pt.Measure(g).ReplicationFactor
	if rf > 1.6 {
		t.Errorf("Sheep RF on road network = %.3f, want < 1.6", rf)
	}
	hp, err := hashpart.Random{Seed: 1}.Partition(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hrf := hp.Measure(g).ReplicationFactor; rf >= hrf {
		t.Errorf("Sheep RF %.3f should beat Random %.3f", rf, hrf)
	}
}

func TestBalance(t *testing.T) {
	g := gen.RMAT(11, 8, 7)
	const parts = 8
	pt, err := Sheep{Seed: 1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(g)
	if q.EdgeBalance > 1.3 {
		t.Errorf("edge balance %.3f exceeds slack", q.EdgeBalance)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	tiny := graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}})
	pt, err := Sheep{}.Partition(tiny, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(tiny); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.RMAT(10, 4, 2)
	a, _ := Sheep{Seed: 3}.Partition(g, 8)
	b, _ := Sheep{Seed: 3}.Partition(g, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatal("Sheep not deterministic")
		}
	}
}
