package sheep

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "sheep",
		Summary: "elimination-tree partitioner: tree construction plus balanced tree partitioning (Margo & Seltzer, VLDB'15)",
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "imbalance factor of the tree-partitioning phase", Min: 1, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "Sheep", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return Sheep{Alpha: spec.Float("alpha", 1.1), Seed: spec.Seed}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
}
