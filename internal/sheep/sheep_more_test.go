package sheep

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func TestSheepOnTreeIsNearIdeal(t *testing.T) {
	// Sheep's elimination-tree translation is exact on trees: partitioning a
	// balanced binary tree should yield RF close to 1 (few shared
	// separators).
	var edges []graph.Edge
	const n = 1 << 10
	for v := graph.Vertex(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: (v - 1) / 2, V: v})
	}
	g := graph.FromEdges(n, edges)
	pt, err := Sheep{Seed: 1}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	rf := pt.Measure(g).ReplicationFactor
	if rf > 1.35 {
		t.Errorf("tree RF %.3f, expected near 1", rf)
	}
}

func TestSheepPathGraph(t *testing.T) {
	var edges []graph.Edge
	for v := graph.Vertex(0); v < 999; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	g := graph.FromEdges(1000, edges)
	pt, err := Sheep{Seed: 1}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(g)
	// A path cuts at most P−1 vertices between contiguous chunks in the
	// ideal case; elimination ordering won't be perfect but must stay low.
	if q.ReplicationFactor > 1.2 {
		t.Errorf("path RF %.3f", q.ReplicationFactor)
	}
}

func TestSheepBalanceCap(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	pt, err := Sheep{Seed: 2, Alpha: 1.1}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eb := pt.Measure(g).EdgeBalance; eb > 1.25 {
		t.Errorf("edge balance %.3f", eb)
	}
}

func TestSheepDeterministic(t *testing.T) {
	g := gen.RMAT(9, 8, 5)
	a, _ := Sheep{Seed: 9}.Partition(g, 8)
	b, _ := Sheep{Seed: 9}.Partition(g, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("owners differ at %d", i)
		}
	}
}
