// Package metispart is a multilevel vertex partitioner in the METIS family
// (Karypis & Kumar), standing in for ParMETIS in the paper's comparisons. It
// performs heavy-edge-matching coarsening, greedy region-growing initial
// partitioning on the coarsest graph, and boundary Kernighan–Lin/FM
// refinement during uncoarsening. The vertex partition is converted to an
// edge partition by random-endpoint assignment (§7.1), like the other
// vertex-partitioner baselines.
//
// Like real METIS it replicates the graph at every coarsening level, which is
// exactly the memory behaviour Fig. 9 penalises.
package metispart

import (
	"context"
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/lppart"
	"github.com/distributedne/dne/internal/partition"
)

// METIS is the multilevel vertex partitioner.
type METIS struct {
	// CoarsestSize stops coarsening when the graph has at most this many
	// vertices (default 32·numParts).
	CoarsestSize int
	// RefinePasses per uncoarsening level (default 4).
	RefinePasses int
	Seed         int64

	// memLevels records the analytic bytes of every level of the last run,
	// for the Fig-9 memory accounting.
	memLevels int64
}

// Name returns the display label.
func (*METIS) Name() string { return "ParMETIS" }

// MemBytes returns the analytic memory footprint (all coarsening levels) of
// the last Partition call.
func (m *METIS) MemBytes() int64 { return m.memLevels }

// level is a coarsened weighted graph.
type level struct {
	n      int
	adjOff []int64
	adjTo  []int32
	adjW   []int64 // multi-edge weights
	vertW  []int64 // coarse vertex weights (vertex counts)
	// fine2coarse maps the finer level's vertices to this level's.
	fine2coarse []int32
}

// Partition computes the assignment without cancellation support.
func (m *METIS) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return m.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the multilevel core; it polls ctx between coarsening
// levels and refinement passes (each is a bounded amount of work).
func (m *METIS) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	coarsest := m.CoarsestSize
	if coarsest <= 0 {
		coarsest = 32 * numParts
	}
	passes := m.RefinePasses
	if passes <= 0 {
		passes = 4
	}
	rng := rand.New(rand.NewSource(m.Seed))

	// Level 0 from the input graph.
	levels := []*level{baseLevel(g)}
	m.memLevels = levelBytes(levels[0])
	// Cap the coarse-vertex weight like real METIS (maxvwgt): without it,
	// heavy-edge matching on a skewed graph folds the hub's whole
	// neighborhood into one immovable super-vertex and the initial
	// partition degenerates to "everything with the hub".
	maxW := int64(1.5 * float64(g.NumVertices()) / float64(coarsest))
	if maxW < 2 {
		maxW = 2
	}
	for levels[len(levels)-1].n > coarsest {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := levels[len(levels)-1]
		next := coarsen(cur, rng, maxW)
		if next.n > cur.n*97/100 {
			break // diminishing returns: matching almost fully blocked
		}
		levels = append(levels, next)
		m.memLevels += levelBytes(next)
	}

	// Initial partitioning on the coarsest level: greedy region growing by
	// vertex weight.
	top := levels[len(levels)-1]
	labels := initialPartition(top, numParts, rng)

	// Uncoarsen with refinement.
	for li := len(levels) - 1; li > 0; li-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		refine(levels[li], labels, numParts, passes)
		fine := levels[li-1]
		fineLabels := make([]int32, fine.n)
		for v := 0; v < fine.n; v++ {
			fineLabels[v] = labels[levels[li].fine2coarse[v]]
		}
		labels = fineLabels
	}
	refine(levels[0], labels, numParts, passes)
	return lppart.VertexToEdge(g, labels, numParts, m.Seed+1), nil
}

func baseLevel(g *graph.Graph) *level {
	n := int(g.NumVertices())
	l := &level{n: n}
	l.adjOff = make([]int64, n+1)
	total := int64(0)
	for v := 0; v < n; v++ {
		total += g.Degree(graph.Vertex(v))
		l.adjOff[v+1] = total
	}
	l.adjTo = make([]int32, total)
	l.adjW = make([]int64, total)
	for v := 0; v < n; v++ {
		for s, u := range g.Neighbors(graph.Vertex(v)) {
			l.adjTo[l.adjOff[v]+int64(s)] = int32(u)
			l.adjW[l.adjOff[v]+int64(s)] = 1
		}
	}
	l.vertW = make([]int64, n)
	for v := range l.vertW {
		l.vertW[v] = 1
	}
	return l
}

func levelBytes(l *level) int64 {
	return int64(len(l.adjOff))*8 + int64(len(l.adjTo))*4 +
		int64(len(l.adjW))*8 + int64(len(l.vertW))*8 + int64(len(l.fine2coarse))*4
}

// coarsen contracts a heavy-edge matching of l; pairs whose combined vertex
// weight would exceed maxW are not matched (METIS's maxvwgt rule).
func coarsen(l *level, rng *rand.Rand, maxW int64) *level {
	match := make([]int32, l.n)
	for v := range match {
		match[v] = -1
	}
	order := rng.Perm(l.n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64
		for s := l.adjOff[v]; s < l.adjOff[v+1]; s++ {
			u := l.adjTo[s]
			if int(u) != v && match[u] == -1 && l.adjW[s] > bestW &&
				l.vertW[v]+l.vertW[u] <= maxW {
				best = u
				bestW = l.adjW[s]
			}
		}
		if best != -1 {
			match[v] = best
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	// Assign coarse ids.
	coarseID := make([]int32, l.n)
	for v := range coarseID {
		coarseID[v] = -1
	}
	nc := int32(0)
	for v := 0; v < l.n; v++ {
		if coarseID[v] != -1 {
			continue
		}
		coarseID[v] = nc
		if m := match[v]; int(m) != v {
			coarseID[m] = nc
		}
		nc++
	}
	// Build the coarse adjacency with weight aggregation.
	type cedge struct {
		to int32
		w  int64
	}
	adj := make([][]cedge, nc)
	for v := 0; v < l.n; v++ {
		cv := coarseID[v]
		for s := l.adjOff[v]; s < l.adjOff[v+1]; s++ {
			cu := coarseID[l.adjTo[s]]
			if cu == cv {
				continue
			}
			found := false
			for i := range adj[cv] {
				if adj[cv][i].to == cu {
					adj[cv][i].w += l.adjW[s]
					found = true
					break
				}
			}
			if !found {
				adj[cv] = append(adj[cv], cedge{cu, l.adjW[s]})
			}
		}
	}
	out := &level{n: int(nc), fine2coarse: coarseID}
	out.vertW = make([]int64, nc)
	for v := 0; v < l.n; v++ {
		out.vertW[coarseID[v]] += l.vertW[v]
	}
	out.adjOff = make([]int64, nc+1)
	for v := int32(0); v < nc; v++ {
		out.adjOff[v+1] = out.adjOff[v] + int64(len(adj[v]))
	}
	out.adjTo = make([]int32, out.adjOff[nc])
	out.adjW = make([]int64, out.adjOff[nc])
	for v := int32(0); v < nc; v++ {
		for i, ce := range adj[v] {
			out.adjTo[out.adjOff[v]+int64(i)] = ce.to
			out.adjW[out.adjOff[v]+int64(i)] = ce.w
		}
	}
	return out
}

// initialPartition grows numParts regions by BFS over the coarsest graph,
// balancing total vertex weight.
func initialPartition(l *level, numParts int, rng *rand.Rand) []int32 {
	labels := make([]int32, l.n)
	for v := range labels {
		labels[v] = -1
	}
	var totalW int64
	for _, w := range l.vertW {
		totalW += w
	}
	target := totalW/int64(numParts) + 1
	loads := make([]int64, numParts)
	queues := make([][]int32, numParts)
	for q := 0; q < numParts; q++ {
		for try := 0; try < 4*l.n && l.n > 0; try++ {
			v := int32(rng.Intn(l.n))
			if labels[v] == -1 {
				labels[v] = int32(q)
				loads[q] += l.vertW[v]
				queues[q] = append(queues[q], v)
				break
			}
		}
	}
	progress := true
	for progress {
		progress = false
		for q := 0; q < numParts; q++ {
			if loads[q] >= target || len(queues[q]) == 0 {
				continue
			}
			v := queues[q][0]
			queues[q] = queues[q][1:]
			for s := l.adjOff[v]; s < l.adjOff[v+1]; s++ {
				u := l.adjTo[s]
				if labels[u] == -1 {
					labels[u] = int32(q)
					loads[q] += l.vertW[u]
					queues[q] = append(queues[q], u)
				}
			}
			if len(queues[q]) > 0 {
				progress = true
			}
		}
	}
	// Any stragglers go to the lightest partition.
	for v := 0; v < l.n; v++ {
		if labels[v] == -1 {
			best := 0
			for q := 1; q < numParts; q++ {
				if loads[q] < loads[best] {
					best = q
				}
			}
			labels[v] = int32(best)
			loads[best] += l.vertW[v]
		}
	}
	return labels
}

// refine runs boundary FM-style passes: move a vertex to the neighboring
// partition with the largest edge-weight gain if balance permits.
func refine(l *level, labels []int32, numParts int, passes int) {
	loads := make([]int64, numParts)
	var totalW int64
	for v := 0; v < l.n; v++ {
		loads[labels[v]] += l.vertW[v]
		totalW += l.vertW[v]
	}
	capW := int64(1.1 * float64(totalW) / float64(numParts))
	gain := make([]int64, numParts)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < l.n; v++ {
			for q := range gain {
				gain[q] = 0
			}
			for s := l.adjOff[v]; s < l.adjOff[v+1]; s++ {
				gain[labels[l.adjTo[s]]] += l.adjW[s]
			}
			cur := labels[v]
			best := cur
			for q := int32(0); q < int32(numParts); q++ {
				if q == cur || gain[q] <= gain[best] {
					continue
				}
				if loads[q]+l.vertW[v] > capW {
					continue
				}
				best = q
			}
			if best != cur {
				loads[cur] -= l.vertW[v]
				loads[best] += l.vertW[v]
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
