package metispart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestMETISBeatsRandomOnRoad(t *testing.T) {
	// Multilevel partitioning shines on near-planar graphs (the paper's
	// ParMETIS rows in Table 6 are nearly ideal).
	g := gen.Road(60, 60, 3)
	m := &METIS{Seed: 1}
	mpt, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := hashpart.Random{Seed: 1}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	mr := mpt.Measure(g).ReplicationFactor
	rr := rpt.Measure(g).ReplicationFactor
	if mr >= rr*0.5 {
		t.Errorf("METIS RF %.3f not far below Random %.3f", mr, rr)
	}
	if mr > 1.3 {
		t.Errorf("METIS road RF %.3f, paper reports ~1.00", mr)
	}
}

func TestMETISMemoryReporter(t *testing.T) {
	// The coarsening hierarchy replicates the graph per level — the very
	// reason Fig. 9 shows ParMETIS an order of magnitude above DNE. The
	// analytic report must exceed one graph's footprint.
	g := gen.RMAT(10, 8, 3)
	m := &METIS{Seed: 1}
	if _, err := m.Partition(g, 8); err != nil {
		t.Fatal(err)
	}
	if m.MemBytes() <= g.MemoryFootprint() {
		t.Errorf("MemBytes %d not above one graph copy %d — hierarchy unaccounted",
			m.MemBytes(), g.MemoryFootprint())
	}
}

func TestMETISDoesNotCollapseOnSkewedGraph(t *testing.T) {
	// Regression: without the maxvwgt cap during matching, heavy-edge
	// matching folds a skewed graph's hub neighborhood into one immovable
	// super-vertex and every label ends up identical (RF < 1, EB = P).
	g := gen.RMAT(12, 16, 42)
	const p = 16
	pt, err := (&METIS{Seed: 42}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range pt.EdgeCounts() {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < p/2 {
		t.Fatalf("only %d of %d partitions hold edges — coarsening collapsed", nonEmpty, p)
	}
	// The collapse signature was EB exactly P (one part holds everything);
	// skewed hubs keep vertex-partitioning EB high, but not maximal.
	if eb := pt.Measure(g).EdgeBalance; eb > float64(p)*0.9 {
		t.Fatalf("edge balance %.2f ≈ P: one partition holds nearly everything", eb)
	}
}

func TestMETISTinyGraphs(t *testing.T) {
	for _, p := range []int{2, 3} {
		g := gen.Star(8)
		pt, err := (&METIS{Seed: 1}).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}
