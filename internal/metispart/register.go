package metispart

import (
	"context"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// metisPartitioner adapts METIS to the v2 interface, folding the analytic
// multilevel footprint into Result.Stats.
type metisPartitioner struct{}

// Name implements partition.Partitioner.
func (metisPartitioner) Name() string { return "ParMETIS" }

// Partition implements partition.Partitioner.
func (metisPartitioner) Partition(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &METIS{
		CoarsestSize: spec.Int("coarsest_size", 0),
		RefinePasses: spec.Int("refine_passes", 0),
		Seed:         spec.Seed,
	}
	start := time.Now()
	p, err := m.PartitionCtx(ctx, g, spec.NumParts)
	coreElapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &partition.Result{Partitioning: p}
	st := &out.Stats
	st.Method = "metis"
	st.NumParts = spec.NumParts
	st.AddPhase("multilevel", coreElapsed)
	st.PeakMemBytes = m.MemBytes()
	out.Finish(g, start)
	return out, nil
}

func init() {
	methods.Register(methods.Descriptor{
		Name:    "metis",
		Aliases: []string{"parmetis", "p.m."},
		Summary: "multilevel vertex partitioning (coarsen / initial partition / refine), standing in for ParMETIS",
		Params: []methods.ParamSpec{
			{Name: "coarsest_size", Kind: methods.Int, Default: 0, Doc: "stop coarsening at this many vertices (0 = 32·parts)", Min: 0, Max: 1 << 30, HasBounds: true},
			{Name: "refine_passes", Kind: methods.Int, Default: 0, Doc: "refinement passes per level (0 = 4)", Min: 0, Max: 1 << 20, HasBounds: true},
		},
		Factory: func() partition.Partitioner { return metisPartitioner{} },
	})
}
