package metispart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestValid(t *testing.T) {
	g := gen.RMAT(11, 8, 4)
	for _, parts := range []int{2, 8, 32} {
		m := &METIS{Seed: 1}
		pt, err := m.Partition(g, parts)
		if err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", parts, err)
		}
	}
}

func TestNearIdealOnRoadNetworks(t *testing.T) {
	// ParMETIS achieves RF ≈ 1.00 on road networks (paper Table 6); the
	// multilevel stand-in must stay close and far below random hashing.
	g := gen.Road(100, 100, 3)
	m := &METIS{Seed: 1}
	pt, err := m.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	rf := pt.Measure(g).ReplicationFactor
	if rf > 1.25 {
		t.Errorf("METIS RF on road network = %.3f, want < 1.25", rf)
	}
	hp, _ := hashpart.Random{Seed: 1}.Partition(g, 16)
	if hrf := hp.Measure(g).ReplicationFactor; rf >= hrf {
		t.Errorf("METIS RF %.3f should beat Random %.3f", rf, hrf)
	}
}

func TestMemoryAccountingGrowsWithLevels(t *testing.T) {
	g := gen.RMAT(12, 8, 5)
	m := &METIS{Seed: 1}
	if _, err := m.Partition(g, 8); err != nil {
		t.Fatal(err)
	}
	// Multilevel coarsening must account more than the base graph alone —
	// this is exactly the Fig-9 memory penalty.
	base := g.MemoryFootprint()
	if m.MemBytes() <= base/2 {
		t.Errorf("MemBytes %d suspiciously low vs base footprint %d", m.MemBytes(), base)
	}
}

func TestCoarseningTerminatesOnStar(t *testing.T) {
	// Star graphs defeat heavy-edge matching (only the hub can match once);
	// the loop must still terminate.
	g := gen.Star(1 << 12)
	m := &METIS{Seed: 1}
	pt, err := m.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTinyGraph(t *testing.T) {
	g := graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m := &METIS{Seed: 1}
	pt, err := m.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
}
