// Package dynpart maintains an edge partitioning under a stream of edge
// insertions and deletions — the "dynamic graphs" extension the paper lists
// as future work (§8, citing Leopard, Huang & Abadi VLDB'16). The intended
// workflow is:
//
//  1. partition a snapshot with Distributed NE (internal/dne),
//  2. seed a dynpart.Partitioner from that result via FromStatic,
//  3. apply the update stream; each insertion is placed greedily with a
//     replication-aware score, deletions retract replicas exactly, and an
//     optional bounded Rebalance pass migrates edges off overloaded
//     partitions.
//
// The placement score follows the same two heuristics as neighbor expansion
// (§3.1): reuse partitions that already hold both endpoints (Condition (5) —
// zero new replicas), else one endpoint, else the least-loaded partition,
// with a convex balance penalty to keep Eq. (2)'s α constraint.
package dynpart

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Options configures the dynamic partitioner.
type Options struct {
	// Alpha is the imbalance factor α ≥ 1 of Eq. (2), enforced against the
	// current (moving) edge count. Default 1.1.
	Alpha float64
	// BalanceWeight scales the balance penalty in the placement score.
	// Default 1.0.
	BalanceWeight float64
}

// DefaultOptions mirrors the paper's α=1.1 setting.
func DefaultOptions() Options { return Options{Alpha: 1.1, BalanceWeight: 1.0} }

// vertexState tracks one vertex's replica multiset: how many of its incident
// edges live on each partition.
type vertexState struct {
	counts map[int32]int32 // partition -> incident-edge count
}

// Partitioner is an incrementally maintained |P|-way edge partitioning.
// It is not safe for concurrent use.
type Partitioner struct {
	numParts int
	opts     Options

	owner map[graph.Edge]int32 // canonical edge -> partition
	verts map[graph.Vertex]*vertexState
	sizes []int64

	// replicas is Σ_v |parts(v)|, maintained incrementally so RF is O(1).
	replicas int64
	// moved counts edges migrated by Rebalance (observability).
	moved int64
}

// New returns an empty dynamic partitioner.
func New(numParts int, opts Options) (*Partitioner, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("dynpart: numParts must be positive, got %d", numParts)
	}
	if opts.Alpha == 0 {
		opts.Alpha = 1.1
	}
	if opts.Alpha < 1 {
		return nil, fmt.Errorf("dynpart: alpha must be >= 1, got %g", opts.Alpha)
	}
	if opts.BalanceWeight == 0 {
		opts.BalanceWeight = 1
	}
	return &Partitioner{
		numParts: numParts,
		opts:     opts,
		owner:    make(map[graph.Edge]int32),
		verts:    make(map[graph.Vertex]*vertexState),
		sizes:    make([]int64, numParts),
	}, nil
}

// FromStatic seeds a dynamic partitioner from an existing static
// partitioning of g (typically a Distributed NE result).
func FromStatic(g *graph.Graph, pt *partition.Partitioning, opts Options) (*Partitioner, error) {
	if err := pt.Validate(g); err != nil {
		return nil, fmt.Errorf("dynpart: seed partitioning invalid: %w", err)
	}
	d, err := New(pt.NumParts, opts)
	if err != nil {
		return nil, err
	}
	for i, o := range pt.Owner {
		d.insertAt(g.Edge(int64(i)), o)
	}
	return d, nil
}

// NumEdges returns the current number of edges.
func (d *Partitioner) NumEdges() int64 { return int64(len(d.owner)) }

// NumVertices returns the number of vertices with at least one edge.
func (d *Partitioner) NumVertices() int64 { return int64(len(d.verts)) }

// Sizes returns a copy of the per-partition edge counts.
func (d *Partitioner) Sizes() []int64 {
	out := make([]int64, len(d.sizes))
	copy(out, d.sizes)
	return out
}

// Moved returns the number of edges migrated by Rebalance so far.
func (d *Partitioner) Moved() int64 { return d.moved }

// Owner returns the partition of e and whether e is present.
func (d *Partitioner) Owner(e graph.Edge) (int32, bool) {
	q, ok := d.owner[e.Canon()]
	return q, ok
}

// Replicas returns Σ_v |parts(v)| over the current graph.
func (d *Partitioner) Replicas() int64 { return d.replicas }

// ReplicationFactor returns Σ_v |parts(v)| / |V| over the current graph
// (Eq. 1), or 0 when empty.
func (d *Partitioner) ReplicationFactor() float64 {
	if len(d.verts) == 0 {
		return 0
	}
	return float64(d.replicas) / float64(len(d.verts))
}

// EdgeBalance returns max |Ep| / mean |Ep| (1 when empty).
func (d *Partitioner) EdgeBalance() float64 {
	var sum, max int64
	for _, s := range d.sizes {
		sum += s
		if s > max {
			max = s
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(d.sizes)))
}

// capEdges is the α-cap against the current edge count; it moves as the
// graph grows, so a long insert stream cannot wedge every partition at once.
func (d *Partitioner) capEdges(extra int64) int64 {
	total := int64(len(d.owner)) + extra
	c := int64(d.opts.Alpha * float64(total) / float64(d.numParts))
	if c < 1 {
		c = 1
	}
	return c
}

// AddEdge inserts e and returns its assigned partition. Inserting an edge
// that already exists (or a self loop) is a no-op returning the existing
// owner (or -1 for self loops).
func (d *Partitioner) AddEdge(e graph.Edge) int32 {
	c := e.Canon()
	if c.U == c.V {
		return -1
	}
	if q, ok := d.owner[c]; ok {
		return q
	}
	q := d.place(c)
	d.insertAt(c, q)
	return q
}

// place scores every partition for edge e = (u,v):
//
//	score(q) = [u on q] + [v on q] − w·(size_q / cap)²,
//
// so partitions already covering both endpoints (no new replicas) dominate,
// then one endpoint, and the quadratic penalty steers ties and spill-over to
// underloaded partitions. Partitions at the α cap are excluded unless all
// are.
func (d *Partitioner) place(e graph.Edge) int32 {
	cap := d.capEdges(1)
	su := d.verts[e.U]
	sv := d.verts[e.V]
	best := int32(-1)
	bestScore := math.Inf(-1)
	for q := 0; q < d.numParts; q++ {
		if d.sizes[q] >= cap {
			continue
		}
		var gain float64
		if su != nil && su.counts[int32(q)] > 0 {
			gain++
		}
		if sv != nil && sv.counts[int32(q)] > 0 {
			gain++
		}
		load := float64(d.sizes[q]) / float64(cap)
		score := gain - d.opts.BalanceWeight*load*load
		if score > bestScore {
			bestScore = score
			best = int32(q)
		}
	}
	if best == -1 {
		// Every partition is at the cap (α very tight): fall back to the
		// least-loaded one; the cap recomputes upward as edges arrive.
		best = 0
		for q := 1; q < d.numParts; q++ {
			if d.sizes[q] < d.sizes[best] {
				best = int32(q)
			}
		}
	}
	return best
}

// insertAt records e on partition q, updating replica multisets.
func (d *Partitioner) insertAt(e graph.Edge, q int32) {
	d.owner[e] = q
	d.sizes[q]++
	d.addIncidence(e.U, q)
	d.addIncidence(e.V, q)
}

func (d *Partitioner) addIncidence(v graph.Vertex, q int32) {
	st := d.verts[v]
	if st == nil {
		st = &vertexState{counts: make(map[int32]int32)}
		d.verts[v] = st
	}
	if st.counts[q] == 0 {
		d.replicas++
	}
	st.counts[q]++
}

// RemoveEdge deletes e; it reports whether e was present. Replica sets
// shrink exactly: a vertex leaves a partition when its last incident edge
// there disappears, and leaves the structure entirely with its last edge.
func (d *Partitioner) RemoveEdge(e graph.Edge) bool {
	c := e.Canon()
	q, ok := d.owner[c]
	if !ok {
		return false
	}
	delete(d.owner, c)
	d.sizes[q]--
	d.dropIncidence(c.U, q)
	d.dropIncidence(c.V, q)
	return true
}

func (d *Partitioner) dropIncidence(v graph.Vertex, q int32) {
	st := d.verts[v]
	st.counts[q]--
	if st.counts[q] == 0 {
		delete(st.counts, q)
		d.replicas--
	}
	if len(st.counts) == 0 {
		delete(d.verts, v)
	}
}

// Rebalance migrates up to budget edges from partitions above the α cap to
// the least-loaded partitions, preferring edges whose move does not increase
// replication (both endpoints already on the target). It returns the number
// of edges moved. Leopard performs the analogous bounded re-examination on
// every update; batching it keeps the per-update cost O(score) and lets
// callers amortise.
//
// The pass is deterministic: overloaded partitions are visited in id order
// and each partition's edges in canonical (sorted packed) order, so a
// rebalanced partitioner stays a pure function of its update history.
func (d *Partitioner) Rebalance(budget int) int {
	cap := d.capEdges(0)
	moved := 0
	for q := int32(0); q < int32(d.numParts) && moved < budget; q++ {
		if d.sizes[q] <= cap {
			continue
		}
		keys := make([]uint64, 0, d.sizes[q])
		//lint:ordered keys filtered into a slice and sorted before any move
		for e, o := range d.owner {
			if o == q {
				keys = append(keys, graph.PackEdge(e.U, e.V))
			}
		}
		slices.Sort(keys)
		for _, k := range keys {
			if d.sizes[q] <= cap || moved >= budget {
				break
			}
			e := graph.UnpackEdge(k)
			target := d.bestTarget(e, q)
			if target < 0 {
				continue
			}
			d.migrate(e, q, target)
			moved++
		}
	}
	d.moved += int64(moved)
	return moved
}

// bestTarget picks the best destination for moving e off q: the least-loaded
// partition already covering both endpoints, else one endpoint, else the
// globally least-loaded; −1 if no destination is strictly less loaded.
func (d *Partitioner) bestTarget(e graph.Edge, q int32) int32 {
	su, sv := d.verts[e.U], d.verts[e.V]
	best := int32(-1)
	bestKey := math.Inf(-1)
	for t := int32(0); t < int32(d.numParts); t++ {
		if t == q || d.sizes[t] >= d.sizes[q]-1 {
			continue
		}
		var gain float64
		if su.counts[t] > 0 {
			gain++
		}
		if sv.counts[t] > 0 {
			gain++
		}
		// Penalize breaking replicas at the source: endpoints whose only
		// q-incidence is e itself lose a replica (good) but the edge's
		// endpoints gain one at t when absent (bad); gain already counts the
		// latter. Prefer max gain, then min load.
		key := gain - float64(d.sizes[t])/float64(d.sizes[q]+1)
		if key > bestKey {
			bestKey = key
			best = t
		}
	}
	return best
}

func (d *Partitioner) migrate(e graph.Edge, from, to int32) {
	d.owner[e] = to
	d.sizes[from]--
	d.sizes[to]++
	d.dropIncidence2(e.U, from)
	d.dropIncidence2(e.V, from)
	d.addIncidence(e.U, to)
	d.addIncidence(e.V, to)
}

// dropIncidence2 is dropIncidence without the vertex-removal step (the
// vertex keeps at least the migrated edge).
func (d *Partitioner) dropIncidence2(v graph.Vertex, q int32) {
	st := d.verts[v]
	st.counts[q]--
	if st.counts[q] == 0 {
		delete(st.counts, q)
		d.replicas--
	}
}

// Snapshot materialises the current assignment as a partition.Partitioning
// over g, whose canonical edge list must equal the live edge set (build g
// with graph.FromEdges(0, d.Edges())). Unknown edges make it fail.
func (d *Partitioner) Snapshot(g *graph.Graph) (*partition.Partitioning, error) {
	if g.NumEdges() != int64(len(d.owner)) {
		return nil, fmt.Errorf("dynpart: snapshot graph has %d edges, partitioner holds %d",
			g.NumEdges(), len(d.owner))
	}
	pt := partition.New(d.numParts, g.NumEdges())
	for i, e := range g.Edges() {
		q, ok := d.owner[e]
		if !ok {
			return nil, fmt.Errorf("dynpart: snapshot graph edge %v not held", e)
		}
		pt.Owner[i] = q
	}
	return pt, nil
}

// Edges returns the live edge set in canonical (sorted packed) order, so
// downstream consumers — snapshot graphs, checksums — are deterministic.
func (d *Partitioner) Edges() []graph.Edge {
	keys := make([]uint64, 0, len(d.owner))
	//lint:ordered keys packed into a slice and sorted before use
	for e := range d.owner {
		keys = append(keys, graph.PackEdge(e.U, e.V))
	}
	slices.Sort(keys)
	out := make([]graph.Edge, len(keys))
	for i, k := range keys {
		out[i] = graph.UnpackEdge(k)
	}
	return out
}

// Checksum returns an FNV-64a digest of the full live state — every
// canonical edge with its owner, in sorted order — the currency for
// bit-identity assertions on seeded runs.
func (d *Partitioner) Checksum() uint64 {
	keys := make([]uint64, 0, len(d.owner))
	//lint:ordered keys packed into a slice and sorted before use
	for e := range d.owner {
		keys = append(keys, graph.PackEdge(e.U, e.V))
	}
	slices.Sort(keys)
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	var b [12]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(b[:8], k)
		binary.LittleEndian.PutUint32(b[8:], uint32(d.owner[graph.UnpackEdge(k)]))
		for _, x := range b {
			h ^= uint64(x)
			h *= prime64
		}
	}
	return h
}

// CheckInvariants verifies internal consistency (sizes match the owner map,
// replica multisets match incidence, the replica counter is exact). Tests
// and the example call it after update storms; it is O(|E|).
func (d *Partitioner) CheckInvariants() error {
	sizes := make([]int64, d.numParts)
	counts := make(map[graph.Vertex]map[int32]int32)
	//lint:ordered commutative recount of sizes and replicas; no ordered output
	for e, q := range d.owner {
		if q < 0 || int(q) >= d.numParts {
			return fmt.Errorf("dynpart: edge %v has invalid owner %d", e, q)
		}
		if e != e.Canon() || e.U == e.V {
			return fmt.Errorf("dynpart: non-canonical stored edge %v", e)
		}
		sizes[q]++
		for _, v := range [2]graph.Vertex{e.U, e.V} {
			m := counts[v]
			if m == nil {
				m = make(map[int32]int32)
				counts[v] = m
			}
			m[q]++
		}
	}
	for q, s := range sizes {
		if s != d.sizes[q] {
			return fmt.Errorf("dynpart: partition %d size %d, recorded %d", q, s, d.sizes[q])
		}
	}
	if len(counts) != len(d.verts) {
		return fmt.Errorf("dynpart: %d live vertices, recorded %d", len(counts), len(d.verts))
	}
	var replicas int64
	//lint:ordered error-path diagnostics only; any violating vertex is a valid report
	for v, m := range counts {
		st := d.verts[v]
		if st == nil {
			return fmt.Errorf("dynpart: vertex %d missing", v)
		}
		if len(m) != len(st.counts) {
			return fmt.Errorf("dynpart: vertex %d has %d parts, recorded %d", v, len(m), len(st.counts))
		}
		//lint:ordered error-path diagnostics only; any mismatching part is a valid report
		for q, c := range m {
			if st.counts[q] != c {
				return fmt.Errorf("dynpart: vertex %d part %d count %d, recorded %d", v, q, c, st.counts[q])
			}
		}
		replicas += int64(len(m))
	}
	if replicas != d.replicas {
		return fmt.Errorf("dynpart: replicas %d, recorded %d", replicas, d.replicas)
	}
	return nil
}
