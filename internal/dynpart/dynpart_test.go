package dynpart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultOptions()); err == nil {
		t.Error("numParts=0 must fail")
	}
	if _, err := New(4, Options{Alpha: 0.5}); err == nil {
		t.Error("alpha<1 must fail")
	}
	if d, err := New(4, Options{}); err != nil || d == nil {
		t.Errorf("zero options must default, got %v", err)
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	d, _ := New(4, DefaultOptions())
	e := graph.Edge{U: 3, V: 1}
	q := d.AddEdge(e)
	if q < 0 || q >= 4 {
		t.Fatalf("owner %d out of range", q)
	}
	if got, ok := d.Owner(graph.Edge{U: 1, V: 3}); !ok || got != q {
		t.Fatalf("canonical lookup failed: %d %v", got, ok)
	}
	if d.NumEdges() != 1 || d.NumVertices() != 2 {
		t.Fatalf("counts: E=%d V=%d", d.NumEdges(), d.NumVertices())
	}
	if rf := d.ReplicationFactor(); rf != 1 {
		t.Fatalf("single-edge RF %v, want 1", rf)
	}
	if !d.RemoveEdge(e) {
		t.Fatal("remove failed")
	}
	if d.RemoveEdge(e) {
		t.Fatal("double remove succeeded")
	}
	if d.NumEdges() != 0 || d.NumVertices() != 0 {
		t.Fatalf("not empty after removal: E=%d V=%d", d.NumEdges(), d.NumVertices())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopAndDuplicateIgnored(t *testing.T) {
	d, _ := New(2, DefaultOptions())
	if q := d.AddEdge(graph.Edge{U: 5, V: 5}); q != -1 {
		t.Errorf("self loop assigned %d", q)
	}
	q1 := d.AddEdge(graph.Edge{U: 1, V: 2})
	q2 := d.AddEdge(graph.Edge{U: 2, V: 1})
	if q1 != q2 || d.NumEdges() != 1 {
		t.Errorf("duplicate add: %d %d E=%d", q1, q2, d.NumEdges())
	}
}

func TestStreamingRFBeatsRandomAssignment(t *testing.T) {
	g := gen.RMAT(11, 16, 3)
	const p = 16
	d, _ := New(p, DefaultOptions())
	for _, e := range g.Edges() {
		d.AddEdge(e)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Random assignment baseline.
	rnd, _ := New(p, DefaultOptions())
	rng := rand.New(rand.NewSource(1))
	for _, e := range g.Edges() {
		rnd.insertAt(e, int32(rng.Intn(p)))
	}
	if d.ReplicationFactor() >= rnd.ReplicationFactor()*0.8 {
		t.Errorf("greedy RF %.3f not clearly below random RF %.3f",
			d.ReplicationFactor(), rnd.ReplicationFactor())
	}
}

func TestBalanceRespectsAlpha(t *testing.T) {
	g := gen.RMAT(11, 16, 5)
	d, _ := New(8, Options{Alpha: 1.1})
	for _, e := range g.Edges() {
		d.AddEdge(e)
	}
	// The cap moves with |E|; at the end balance must be within ~α plus the
	// discreteness of one edge.
	if eb := d.EdgeBalance(); eb > 1.15 {
		t.Errorf("edge balance %.3f exceeds α slack", eb)
	}
}

func TestSeedFromDNEAndUpdate(t *testing.T) {
	g := gen.RMAT(10, 8, 7)
	res, err := dne.Partition(g, 8, dne.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromStatic(g, res.Partitioning, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	staticQ := res.Partitioning.Measure(g)
	// Same replica total; the RF denominators differ (Measure counts
	// isolated vertex ids, dynpart counts live vertices only).
	if got := d.Replicas(); got != staticQ.Replicas {
		t.Fatalf("seeded replicas %d != static replicas %d", got, staticQ.Replicas)
	}
	staticRF := d.ReplicationFactor() // live-vertex RF of the seed
	// Apply churn: RF must stay within a modest factor of the static
	// quality and invariants must hold.
	events := Churn(gen.RMAT(10, 8, 99), 5000, 0.2, 42)
	d.Apply(events)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.ReplicationFactor() > staticRF*3 {
		t.Errorf("post-churn RF %.3f degraded beyond 3x static %.3f",
			d.ReplicationFactor(), staticRF)
	}
}

func TestSnapshotMatchesInternalMetrics(t *testing.T) {
	g := gen.RMAT(9, 8, 2)
	d, _ := New(4, DefaultOptions())
	for _, e := range g.Edges() {
		d.AddEdge(e)
	}
	snap := graph.FromEdges(0, d.Edges())
	pt, err := d.Snapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(snap); err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(snap)
	// The partitioning's measured RF uses |V| = snap.NumVertices() which
	// counts isolated ids in [0,max]; dynpart counts live vertices only.
	// Compare via replicas instead.
	var liveReplicas int64
	for _, st := range d.verts {
		liveReplicas += int64(len(st.counts))
	}
	if q.Replicas != liveReplicas {
		t.Errorf("snapshot replicas %d != live replicas %d", q.Replicas, liveReplicas)
	}
}

func TestRebalanceReducesOverload(t *testing.T) {
	// Force an overload: assign everything to partition 0 manually, then
	// rebalance with a big budget.
	g := gen.RMAT(9, 8, 4)
	d, _ := New(4, Options{Alpha: 1.1})
	for _, e := range g.Edges() {
		d.insertAt(e, 0)
	}
	before := d.EdgeBalance()
	moved := d.Rebalance(int(g.NumEdges()))
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := d.EdgeBalance()
	if after >= before {
		t.Errorf("balance %.3f did not improve from %.3f", after, before)
	}
	if d.Moved() != int64(moved) {
		t.Errorf("Moved() %d != %d", d.Moved(), moved)
	}
}

func TestRebalanceBudgetRespected(t *testing.T) {
	g := gen.RMAT(9, 8, 8)
	d, _ := New(4, Options{Alpha: 1.01})
	for _, e := range g.Edges() {
		d.insertAt(e, 0)
	}
	if moved := d.Rebalance(10); moved > 10 {
		t.Errorf("moved %d > budget 10", moved)
	}
}

func TestChurnStreamShapes(t *testing.T) {
	g := gen.RMAT(8, 8, 1)
	ev := Churn(g, 2000, 0.3, 7)
	if len(ev) != 2000 {
		t.Fatalf("got %d events", len(ev))
	}
	adds, dels := 0, 0
	for _, e := range ev {
		if e.Op == Add {
			adds++
		} else {
			dels++
		}
	}
	if dels == 0 || adds == 0 {
		t.Fatalf("degenerate stream: %d adds %d dels", adds, dels)
	}
	// Replaying must never double-add or miss-remove.
	d, _ := New(4, DefaultOptions())
	changed := d.Apply(ev)
	if changed != len(ev) {
		t.Errorf("%d/%d events were no-ops — generator emitted invalid ops", len(ev)-changed, len(ev))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomOpSequenceKeepsInvariants(t *testing.T) {
	f := func(ops []uint16, pRaw uint8) bool {
		p := int(pRaw%7) + 2
		d, err := New(p, DefaultOptions())
		if err != nil {
			return false
		}
		live := make(map[graph.Edge]bool)
		for _, op := range ops {
			u := graph.Vertex(op % 23)
			v := graph.Vertex((op / 23) % 23)
			e := graph.Edge{U: u, V: v}.Canon()
			if op%3 == 0 {
				if d.RemoveEdge(e) != live[e] {
					return false
				}
				delete(live, e)
			} else {
				q := d.AddEdge(e)
				if u == v {
					if q != -1 {
						return false
					}
					continue
				}
				live[e] = true
				if q < 0 || int(q) >= p {
					return false
				}
			}
		}
		if int64(len(live)) != d.NumEdges() {
			return false
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
