package dynpart

import (
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
)

// Op is the kind of a stream event.
type Op uint8

// Stream operations.
const (
	Add Op = iota
	Remove
)

// Event is one update in a dynamic-graph stream.
type Event struct {
	Op   Op
	Edge graph.Edge
}

// Apply applies a batch of events in order and returns how many actually
// changed state (duplicate adds and misses don't count).
func (d *Partitioner) Apply(events []Event) int {
	changed := 0
	for _, ev := range events {
		switch ev.Op {
		case Add:
			c := ev.Edge.Canon()
			if c.U == c.V {
				continue
			}
			if _, ok := d.owner[c]; !ok {
				d.AddEdge(c)
				changed++
			}
		case Remove:
			if d.RemoveEdge(ev.Edge) {
				changed++
			}
		}
	}
	return changed
}

// Churn generates a reproducible update stream against a base graph:
// insertions drawn uniformly from the base edges currently absent, deletions
// drawn uniformly from the present ones, with the given deletion
// probability. Deleted edges can be re-inserted later. It is the workload
// used by the dynamic example and benches (social-network churn: mostly
// growth, some unfriending).
func Churn(base *graph.Graph, events int, pDelete float64, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	all := base.Edges()
	absent := make([]graph.Edge, len(all))
	for i, p := range rng.Perm(len(all)) {
		absent[i] = all[p]
	}
	present := make([]graph.Edge, 0, len(all))
	out := make([]Event, 0, events)
	for len(out) < events {
		doDelete := len(present) > 0 && rng.Float64() < pDelete
		if !doDelete && len(absent) == 0 {
			doDelete = len(present) > 0
			if !doDelete {
				break // base graph has no edges at all
			}
		}
		if doDelete {
			i := rng.Intn(len(present))
			e := present[i]
			out = append(out, Event{Op: Remove, Edge: e})
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			absent = append(absent, e)
			continue
		}
		i := rng.Intn(len(absent))
		e := absent[i]
		absent[i] = absent[len(absent)-1]
		absent = absent[:len(absent)-1]
		out = append(out, Event{Op: Add, Edge: e})
		present = append(present, e)
	}
	return out
}
