package lint

import (
	"go/ast"
)

// MapRange flags `for … range` over a map inside deterministic packages.
// Go randomizes map iteration order, so any map-range whose effects can
// reach partitioning output, serialized bytes, or printed reports is a
// latent determinism bug — the golden checksums only hold as long as no
// such site exists.
//
// One idiom is recognized as safe and never flagged: collecting the keys
// for a later sort, i.e. a loop body that is exactly
//
//	keys = append(keys, k)
//
// Every other map-range in a deterministic package must either iterate a
// sorted key slice instead, or carry a //lint:ordered <why> comment stating
// why iteration order cannot reach output (e.g. commutative accumulation).
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flags range-over-map in deterministic packages unless keys are collected " +
		"for sorting or the site carries a //lint:ordered justification",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	if !pass.Det {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !pass.IsMapType(rs.X) {
				return true
			}
			if isKeyCollectLoop(rs) {
				return true
			}
			pass.Reportf(rs.For, "range over map in deterministic package: iteration order is randomized; sort the keys first or justify with //lint:ordered <why>")
			return true
		})
	}
	return nil
}

// isKeyCollectLoop reports whether rs is exactly `for k := range m { s =
// append(s, k) }` (no value variable consumed), the canonical
// collect-then-sort prologue.
func isKeyCollectLoop(rs *ast.RangeStmt) bool {
	if rs.Value != nil {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	asgn, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asgn.Lhs) != 1 || len(asgn.Rhs) != 1 {
		return false
	}
	call, ok := asgn.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	// Every appended element must be the key itself (append(s, k) or a
	// composite containing only k is not attempted — keep the idiom tight).
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != key.Name {
			return false
		}
	}
	return true
}
