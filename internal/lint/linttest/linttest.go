// Package linttest runs analyzer golden corpora, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone. A corpus is a directory holding one Go package whose lines are
// annotated with expectations:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment carries one or more backquoted or double-quoted
// regular expressions; every reported diagnostic must match a want on its
// line, and every want must be matched by a diagnostic. A want may target
// a neighboring line — `// want(-1) "…"` expects the diagnostic one line
// above — which is how corpora annotate diagnostics that land on comment
// lines (the suppression audit). The pragma
//
//	//lint:corpus deterministic
//
// anywhere in the package marks it as part of the deterministic package
// set, enabling the det-scoped analyzers (maprange, seedrand, ctxloop).
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/distributedne/dne/internal/lint"
)

var (
	wantHeadRE = regexp.MustCompile(`(?:^|\s)want(?:\(([+-]\d+)\))?\s`)
	wantRE     = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	line    int
	matched bool
}

// Run loads the package in dir, applies the analyzers, and compares the
// diagnostics against the corpus's // want annotations.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	wants := map[string][]*expectation{} // file -> expectations
	det := false
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.TrimSpace(text) == "lint:corpus deterministic" {
					det = true
					continue
				}
				m := wantHeadRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				rest := text[strings.Index(text, m[0])+len(m[0]):]
				pos := pkg.Fset.Position(c.Pos())
				pos.Line += offset
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants[pos.Filename] = append(wants[pos.Filename],
						&expectation{re: re, raw: raw, line: pos.Line})
				}
			}
		}
	}
	pkg.Det = det

	diags, err := lint.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants[pos.Filename] {
			if w.line == pos.Line && !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.raw)
			}
		}
	}
}
