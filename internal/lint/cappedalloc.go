package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CappedAlloc codifies the capped-preallocation discipline of the shard and
// binary readers: a length decoded from input (an EShard/ESZ1/DNE1 header,
// a varint, a wire frame) must never reach make() unbounded, because a
// hostile 8-byte header would otherwise dial allocation directly.
//
// The check is a per-function, source-order taint walk:
//
//   - taint sources: encoding/binary decodes (binary.LittleEndian.UintN,
//     binary.Read, binary.ReadUvarint/ReadVarint, binary.Uvarint/Varint);
//   - propagation: assignment, arithmetic, and conversions carry taint to
//     the assigned variables;
//   - sanitizers: an ordered comparison (<, >, <=, >=) mentioning the
//     variable — the bound check — or passing it through a function whose
//     name contains min/max/bound/cap/clamp, or reassignment from clean
//     values;
//   - sink: a make() whose length or capacity argument is still tainted.
//
// Equality tests do not sanitize: `if n == 0` says nothing about how large
// n may be. The walk is intra-function by design — a count that crosses a
// function boundary must be re-bounded where it is used.
var CappedAlloc = &Analyzer{
	Name: "cappedalloc",
	Doc: "flags make() sized by a decoded input count with no intervening bound " +
		"check (the ReadBinary/ZShardReader capped-prealloc discipline)",
	Run: runCappedAlloc,
}

func runCappedAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocTaint(pass, fd.Body)
		}
	}
	return nil
}

// sanitizerCall reports whether a called function's bare name suggests it
// bounds its argument.
func sanitizerCall(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, frag := range []string{"min", "max", "bound", "cap", "clamp"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// isBinaryDecode reports whether call is one of the encoding/binary taint
// sources.
func isBinaryDecode(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// binary.ReadUvarint, binary.Read, binary.Uvarint, …
	if qual, ok := sel.X.(*ast.Ident); ok && pass.PkgQualifier(qual, "encoding/binary") {
		switch sel.Sel.Name {
		case "Read", "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
			return true
		}
		return false
	}
	// binary.LittleEndian.Uint64 / binary.BigEndian.Uint32 / …
	if inner, ok := sel.X.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Uint") {
		if qual, ok := inner.X.(*ast.Ident); ok && pass.PkgQualifier(qual, "encoding/binary") {
			return true
		}
	}
	return false
}

// allocTaint is the per-function walk state.
type allocTaint struct {
	pass    *Pass
	tainted map[types.Object]bool
}

func checkAllocTaint(pass *Pass, body *ast.BlockStmt) {
	at := &allocTaint{pass: pass, tainted: map[types.Object]bool{}}
	ast.Inspect(body, at.visit)
}

// exprTainted reports whether expr's subtree mentions a tainted variable or
// contains a decode call directly.
func (at *allocTaint) exprTainted(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := at.pass.TypesInfo.Uses[n]; obj != nil && at.tainted[obj] {
				found = true
				return false
			}
		case *ast.CallExpr:
			if isBinaryDecode(at.pass, n) {
				found = true
				return false
			}
			if sanitizerCall(n) {
				return false // min(n, cap)-style call launders its result
			}
		}
		return true
	})
	return found
}

// lhsObj resolves an assignment target to its variable object (locals and
// struct fields through a selector).
func (at *allocTaint) lhsObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := at.pass.TypesInfo.Defs[e]; obj != nil {
			return obj
		}
		return at.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return at.pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

func (at *allocTaint) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Visit RHS first so `n := binary…; m := n` chains taint, then
		// propagate to every LHS target. Multi-value RHS (v, err := …)
		// taints all targets when the call is a decode.
		taint := false
		for _, rhs := range n.Rhs {
			if at.exprTainted(rhs) {
				taint = true
			}
		}
		for _, lhs := range n.Lhs {
			if obj := at.lhsObj(lhs); obj != nil {
				at.tainted[obj] = taint
			}
		}
	case *ast.BinaryExpr:
		switch n.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			// An ordered comparison is the bound check: every tainted
			// variable it mentions is considered bounded from here on.
			at.sanitizeMentioned(n)
		}
	case *ast.CallExpr:
		fn, ok := n.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" {
			return true
		}
		if _, isBuiltin := at.pass.TypesInfo.Uses[fn].(*types.Builtin); isBuiltin {
			for _, arg := range n.Args[1:] {
				if at.exprTainted(arg) {
					at.pass.Reportf(n.Pos(), "make sized by a count decoded from input with no bound check between decode and allocation; cap it first (see maxPrealloc in internal/graph)")
					break
				}
			}
		}
	}
	return true
}

func (at *allocTaint) sanitizeMentioned(expr ast.Expr) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := at.pass.TypesInfo.Uses[id]; obj != nil && at.tainted[obj] {
				at.tainted[obj] = false
			}
		}
		return true
	})
}
