package lint

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, SeedRand, CappedAlloc, CtxLoop, ObsName}
}

// ByName resolves a comma-separated analyzer selection; an empty selection
// means the full suite.
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	var out []*Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
