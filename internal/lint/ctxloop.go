package lint

import (
	"go/ast"
	"strings"
)

// CtxLoop enforces cancellation discipline on the partitioning hot paths:
// a Partition/PartitionCtx/PartitionStream implementation walks every edge
// of an arbitrarily large graph, so a ctx that is never polled means an
// unkillable multi-minute loop behind a dead client.
//
// Two shapes are flagged in deterministic packages:
//
//  1. a function whose name starts with "Partition" that takes a
//     context.Context and contains loops, but never touches ctx.Err(),
//     ctx.Done(), or a select over the context;
//  2. any condition-less `for {` loop in a function that has a
//     context.Context parameter, when the loop body itself neither polls
//     the context nor selects — the unbounded-superstep shape.
//
// Polling every N iterations (the bound/epoch pattern) satisfies the check:
// it only requires the poll to exist, not to run on every iteration.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flags unbounded loops in Partition implementations that never poll " +
		"ctx.Err()/ctx.Done()",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	if !pass.Det {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcTakesContext(pass, fd) {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Partition") &&
				containsLoop(fd.Body) && !pollsContext(pass, fd.Body) {
				pass.Reportf(fd.Pos(), "%s takes a context and loops but never polls ctx.Err()/ctx.Done(); an edge/superstep loop here is uncancellable", fd.Name.Name)
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				fs, ok := n.(*ast.ForStmt)
				if !ok || fs.Cond != nil || fs.Init != nil || fs.Post != nil {
					return true
				}
				if !pollsContext(pass, fs.Body) {
					pass.Reportf(fs.For, "condition-less for loop without a ctx poll or select in its body; poll ctx.Err()/ctx.Done() so the loop stays cancellable")
				}
				return true
			})
		}
	}
	return nil
}

func funcTakesContext(pass *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil && IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// pollsContext reports whether node consults the context: ctx.Err()/
// ctx.Done() on a context.Context value, a select statement (the channel
// form of the same poll), or forwarding the context into a call — the
// callee then carries the cancellation responsibility (the checkAt/
// runMachine delegation pattern).
func pollsContext(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && IsContextType(tv.Type) {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != "Err" && n.Sel.Name != "Done" {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil && IsContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
