package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader replaces golang.org/x/tools/go/packages with a standard-library
// implementation so the lint suite needs no module downloads: module-local
// imports are resolved by mapping the import path onto the repository
// directory tree, and standard-library imports are type-checked from GOROOT
// source via go/importer's "source" compiler. Everything is memoized in one
// Loader so identical import paths yield identical *types.Package values
// across the whole run.

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Det records membership in the deterministic package set (see
	// IsDeterministicPath); linttest overrides it from a corpus pragma.
	Det bool
}

// Loader loads and type-checks packages of one module.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	ctxt    build.Context
	std     types.Importer

	mu    sync.Mutex
	byDir map[string]*Package
}

var disableCgoOnce sync.Once

// NewLoader creates a loader for the module containing dir. It walks up to
// the enclosing go.mod to learn the module root and path.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source through the process-global build.Default context. Cgo-gated
	// packages (net, os/user) only have pure-Go source variants when cgo is
	// off, so disable it once for the process: the repository itself is
	// pure Go, and type-checking is unaffected.
	disableCgoOnce.Do(func() { build.Default.CgoEnabled = false })
	ctxt := build.Default
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		ctxt:    ctxt,
		std:     importer.ForCompiler(fset, "source", nil),
		byDir:   map[string]*Package{},
	}, nil
}

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// ModPath returns the module path from go.mod.
func (l *Loader) ModPath() string { return l.modPath }

func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-local paths map onto the
// repository tree; everything else (the standard library) goes to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir (non-test files only,
// honoring build constraints), memoized.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if pkg, ok := l.byDir[abs]; ok {
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", abs)
		}
		return pkg, nil
	}
	l.byDir[abs] = nil // cycle marker
	l.mu.Unlock()

	pkg, err := l.loadDir(abs)
	l.mu.Lock()
	if err != nil {
		delete(l.byDir, abs)
	} else {
		l.byDir[abs] = pkg
	}
	l.mu.Unlock()
	return pkg, err
}

func (l *Loader) loadDir(abs string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", abs, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	pkgPath := l.pkgPathFor(abs, bp.Name)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       abs,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Det:       IsDeterministicPath(pkgPath),
	}, nil
}

func (l *Loader) pkgPathFor(abs, name string) string {
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return name
}

// ExpandPatterns resolves command-line package patterns ("./...", "./dir",
// import-path-style) into package directories, skipping testdata, hidden
// directories, and directories with no non-test Go files.
func (l *Loader) ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
