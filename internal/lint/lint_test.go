package lint_test

import (
	"path/filepath"
	"testing"

	"github.com/distributedne/dne/internal/lint"
	"github.com/distributedne/dne/internal/lint/linttest"
)

func corpus(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestMapRangeCorpus(t *testing.T) {
	linttest.Run(t, corpus("maprange", "det"), lint.MapRange)
}

func TestMapRangeOutsideDeterministicSet(t *testing.T) {
	linttest.Run(t, corpus("maprange", "nondet"), lint.MapRange)
}

func TestSeedRandCorpus(t *testing.T) {
	linttest.Run(t, corpus("seedrand", "det"), lint.SeedRand)
}

func TestSeedRandOutsideDeterministicSet(t *testing.T) {
	linttest.Run(t, corpus("seedrand", "nondet"), lint.SeedRand)
}

func TestCappedAllocCorpus(t *testing.T) {
	linttest.Run(t, corpus("cappedalloc", "corpus"), lint.CappedAlloc)
}

func TestCtxLoopCorpus(t *testing.T) {
	linttest.Run(t, corpus("ctxloop", "det"), lint.CtxLoop)
}

func TestObsNameCorpus(t *testing.T) {
	linttest.Run(t, corpus("obsname", "corpus"), lint.ObsName)
}

func TestSuppressionAudit(t *testing.T) {
	linttest.Run(t, corpus("suppress", "corpus"), lint.All()...)
}

// TestDeterministicPathScope pins the deterministic package set: the golden
// checksums only mean something if the partition/method/dne/graph layers
// actually sit inside it.
func TestDeterministicPathScope(t *testing.T) {
	det := []string{
		"github.com/distributedne/dne/internal/partition",
		"github.com/distributedne/dne/internal/methods",
		"github.com/distributedne/dne/internal/methods/all",
		"github.com/distributedne/dne/internal/dne",
		"github.com/distributedne/dne/internal/graph",
		"github.com/distributedne/dne/internal/nepart",
		"github.com/distributedne/dne/internal/dynpart",
		"github.com/distributedne/dne/internal/gen",
	}
	for _, p := range det {
		if !lint.IsDeterministicPath(p) {
			t.Errorf("IsDeterministicPath(%q) = false, want true", p)
		}
	}
	nondet := []string{
		"github.com/distributedne/dne/internal/obs",
		"github.com/distributedne/dne/internal/store",
		"github.com/distributedne/dne/internal/bench",
		"github.com/distributedne/dne/cmd/loadgen",
		"github.com/distributedne/dne/internal/lint",
	}
	for _, p := range nondet {
		if lint.IsDeterministicPath(p) {
			t.Errorf("IsDeterministicPath(%q) = true, want false", p)
		}
	}
}

// TestTreeIsClean runs the full suite over this repository — the same
// invariant CI enforces via cmd/dnelint: zero unsuppressed findings.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree sweep skipped in -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns(loader.ModRoot(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
