// Package nondet shows maprange staying silent outside the deterministic
// package set: no corpus pragma, so map iteration is unconstrained here.
package nondet

func unscoped(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
