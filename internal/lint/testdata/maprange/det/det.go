// Package det is the maprange golden corpus for deterministic packages.
//
//lint:corpus deterministic
package det

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map in deterministic package`
		total += v
	}
	return total
}

// Regression: the real finding fixed in methods.Descriptor.ResolveSpec —
// resolving params by ranging the map made the first reported unknown
// param nondeterministic.
func flaggedFirstError(params map[string]any, declared map[string]bool) string {
	for name := range params { // want `range over map in deterministic package`
		if !declared[name] {
			return name
		}
	}
	return ""
}

func keyCollectIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: recognized, never flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func suppressed(m map[string]int) int {
	total := 0
	//lint:ordered commutative sum; iteration order cannot reach output
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRangeClean(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
