// Package det is the ctxloop golden corpus.
//
//lint:corpus deterministic
package det

import "context"

type edge struct{ u, v uint32 }

func PartitionNoPoll(ctx context.Context, edges []edge) []int32 { // want `PartitionNoPoll takes a context and loops but never polls`
	out := make([]int32, len(edges))
	for i, e := range edges {
		out[i] = int32(e.u % 4)
	}
	return out
}

func PartitionPolled(ctx context.Context, edges []edge) ([]int32, error) {
	out := make([]int32, len(edges))
	for i, e := range edges {
		if i&1023 == 0 { // poll every N edges satisfies the check
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out[i] = int32(e.u % 4)
	}
	return out, nil
}

func checkAt(ctx context.Context, i int) error {
	if i&1023 == 0 {
		return ctx.Err()
	}
	return nil
}

func PartitionDelegated(ctx context.Context, edges []edge) ([]int32, error) {
	out := make([]int32, len(edges))
	for i, e := range edges {
		if err := checkAt(ctx, i); err != nil { // forwarding ctx delegates the poll
			return nil, err
		}
		out[i] = int32(e.u % 4)
	}
	return out, nil
}

func supersteps(ctx context.Context, work chan edge) {
	for { // want `condition-less for loop without a ctx poll`
		e, ok := <-work
		if !ok {
			return
		}
		_ = e
	}
}

func superstepsSelect(ctx context.Context, work chan edge) {
	for {
		select { // select is the channel form of the poll: clean
		case <-ctx.Done():
			return
		case e, ok := <-work:
			if !ok {
				return
			}
			_ = e
		}
	}
}

// helpers with a ctx param but bounded loops and non-Partition names are
// out of scope unless they contain a condition-less for.
func quality(ctx context.Context, owners []int32) map[int32]int64 {
	sizes := map[int32]int64{}
	for _, o := range owners {
		sizes[o]++
	}
	return sizes
}
