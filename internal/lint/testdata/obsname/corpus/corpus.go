// Package corpus is the obsname golden corpus. The Registry/Tracer stubs
// mirror internal/obs's API shape; the analyzer matches registration sites
// by receiver type name, so the stubs exercise exactly the production
// paths.
package corpus

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, kv ...string) *Counter     { return nil }
func (r *Registry) CounterFunc(name, help string, fn func())             {}
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge         { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func())               {}
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram { return nil }
func (r *Registry) DurationHistogram(name, help string, kv ...string) *Histogram {
	return nil
}

type ActiveSpan struct{}

func (a *ActiveSpan) End() {}

type Tracer struct{}

func (t *Tracer) Start(name, cat string) *ActiveSpan { return nil }

func register(reg *Registry) {
	reg.Counter("dne_requests_total", "ok")
	reg.Counter("dne_requests", "missing total") // want `counter "dne_requests" must end in _total`
	// Regression: the real finding fixed in graph.RegisterStreamMetrics — a
	// counter of seconds registered without the _total suffix.
	reg.CounterFunc("dne_stream_stage_stall_seconds", "stall split", func() {}) // want `counter "dne_stream_stage_stall_seconds" must end in _total`
	reg.CounterFunc("dne_stream_stage_stall_seconds_total", "stall split", func() {})
	reg.Gauge("dne_queue_depth", "ok")
	reg.Gauge("dne_shed_total", "gauge posing as counter") // want `gauge "dne_shed_total" must not end in _total`
	reg.Histogram("dne_query_duration_seconds", "ok")
	reg.Histogram("dne_query_hops", "no unit") // want `histogram "dne_query_hops" needs a unit suffix`
	reg.DurationHistogram("dne_apply_duration_seconds", "ok")
	reg.Counter("dneRequestsTotal", "camel case") // want `not snake_case`
	reg.Counter("_total", "no leading letter")    // want `not snake_case`
	//dnelint:ignore obsname legacy dashboard depends on this exact name
	reg.Counter("dne_legacy_hits", "suppressed")
}

func spans(tr *Tracer) {
	s := tr.Start("load", "phase")
	defer s.End()

	tr.Start("drop", "phase") // want `span handle from Tracer.Start discarded`

	s2 := tr.Start("leak", "phase") // want `span s2 started but End is never called`
	_ = s2

	s3 := tr.Start("explicit", "phase")
	work()
	s3.End()

	_ = tr.Start("blank", "phase") // want `span handle from Tracer.Start assigned to _`
}

func work() {}
