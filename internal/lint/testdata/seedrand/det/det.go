// Package det is the seedrand golden corpus.
//
//lint:corpus deterministic
package det

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `math/rand global Intn draws from the shared program-global source`
}

func globalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `math/rand global Shuffle`
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seeded from time.Now\(\)`
}

func unthreaded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `does not mention a seed`
}

func threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // seed flows in explicitly: clean
}

type spec struct{ Seed int64 }

func threadedField(s spec, bucket int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed*1000003 + bucket)) // derived from Spec.Seed: clean
}

func suppressedDraw() int {
	//dnelint:ignore seedrand demo-only path, output never checksummed
	return rand.Intn(10)
}
