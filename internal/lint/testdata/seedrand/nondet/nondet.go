// Package nondet shows seedrand staying silent outside the deterministic
// package set (load generators and benchmarks may draw freely).
package nondet

import "math/rand"

func free() int { return rand.Intn(10) }
