// Package corpus exercises the suppression audit: a suppression comment
// must justify itself and name a real analyzer, or it becomes a finding —
// and a malformed suppression never silences anything.
//
//lint:corpus deterministic
package corpus

func bareOrdered(m map[string]int) int {
	total := 0
	//lint:ordered
	// want(-1) `suppression comment carries no justification`
	for _, v := range m { // want `range over map in deterministic package`
		total += v
	}
	return total
}

func unknownAnalyzer(m map[string]int) int {
	total := 0
	//dnelint:ignore nosuchcheck because reasons
	// want(-1) `suppression names unknown analyzer "nosuchcheck"`
	for _, v := range m { // want `range over map in deterministic package`
		total += v
	}
	return total
}
