// Package corpus is the cappedalloc golden corpus: make() sized by decoded
// input must be bounded between decode and allocation. The analyzer runs in
// every package (no deterministic pragma needed) — hostile-input discipline
// is global.
package corpus

import (
	"bufio"
	"encoding/binary"
)

const maxPrealloc = 1 << 20

func uncapped(hdr []byte) []uint64 {
	n := binary.LittleEndian.Uint64(hdr)
	return make([]uint64, n) // want `make sized by a count decoded from input with no bound check`
}

func uncappedDerived(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	size := int(n) * 8
	return make([]byte, size) // want `make sized by a count decoded from input`
}

func uncappedMap(hdr []byte) map[uint64]bool {
	n := binary.LittleEndian.Uint64(hdr)
	return make(map[uint64]bool, n) // want `make sized by a count decoded from input`
}

func uncappedVarint(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make sized by a count decoded from input`
}

func boundChecked(hdr []byte) ([]uint64, error) {
	n := binary.LittleEndian.Uint64(hdr)
	if n > maxPrealloc {
		n = maxPrealloc
	}
	return make([]uint64, n), nil // ordered comparison bounds n: clean
}

func cappedPreallocIdiom(hdr []byte) []uint64 {
	prealloc := binary.LittleEndian.Uint64(hdr)
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	return make([]uint64, 0, prealloc) // the ReadBinary/ReadShard idiom: clean
}

func minLaundered(hdr []byte) []uint64 {
	n := binary.LittleEndian.Uint64(hdr)
	return make([]uint64, min(n, maxPrealloc)) // min() bounds in place: clean
}

func equalityDoesNotSanitize(hdr []byte) []uint64 {
	n := binary.LittleEndian.Uint64(hdr)
	if n == 0 {
		return nil
	}
	return make([]uint64, n) // want `make sized by a count decoded from input`
}

func lenIsNotTainted(payload []byte) []uint64 {
	return make([]uint64, len(payload)/8) // len of real data, not a header claim: clean
}

func suppressed(hdr []byte) []uint64 {
	n := binary.LittleEndian.Uint64(hdr)
	//dnelint:ignore cappedalloc trusted self-written scratch file, bounded by writer
	return make([]uint64, n)
}
