// Package lint is a self-contained static-analysis suite that mechanically
// enforces the repository's determinism, hostile-input, and ctx/observability
// invariants. It mirrors the golang.org/x/tools/go/analysis model (Analyzer,
// Pass, Diagnostic) but is built only on the standard library's go/ast,
// go/types, and go/build packages so the checkers run offline, with no
// module downloads, exactly like the partitioners they police.
//
// The suite is driven by cmd/dnelint (a multichecker run in CI next to go
// vet) and by the analysistest-style golden corpora under testdata/.
//
// Findings are suppressed site by site, never globally:
//
//	//lint:ordered <why>            accepted by maprange only: iteration
//	                                order provably does not reach output
//	//dnelint:ignore <analyzer> <why>  accepted by every analyzer
//
// A suppression comment must sit on the flagged line or the line directly
// above it, and must carry a justification; bare suppressions are themselves
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run receives a fully type-checked
// package and reports findings through pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //dnelint:ignore
	// suppression comments.
	Name string
	// Doc is the one-paragraph description shown by dnelint -help.
	Doc string
	// Run inspects one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Det marks the package as one of the deterministic packages whose
	// output feeds golden checksums; maprange/seedrand/ctxloop only fire
	// inside them. The driver sets it from the import path
	// (IsDeterministicPath); linttest sets it from a corpus pragma.
	Det bool

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// PkgQualifier reports whether ident is a use of an imported package with
// the given import path (e.g. ident "rand" for "math/rand"). It is the
// type-checked replacement for matching selector text.
func (p *Pass) PkgQualifier(ident *ast.Ident, path string) bool {
	obj := p.TypesInfo.Uses[ident]
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// NamedTypeName returns the bare name of the named (or pointer-to-named)
// type of expr, or "" when expr's type is not named. Generic instantiations
// report their origin name.
func (p *Pass) NamedTypeName(expr ast.Expr) string {
	tv, ok := p.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// IsMapType reports whether expr's core type is a map.
func (p *Pass) IsMapType(expr ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// deterministicPrefixes lists the packages whose outputs feed the golden
// determinism checksums: the partitioner API, every method core, the DNE
// distributed engine, and the graph readers/writers. A stray map-range or
// unseeded RNG in any of them silently breaks bit-identical reproduction.
var deterministicPrefixes = []string{
	"internal/partition",
	"internal/methods",
	"internal/dne",
	"internal/graph",
	"internal/nepart",
	"internal/lppart",
	"internal/sheep",
	"internal/metispart",
	"internal/streampart",
	"internal/hashpart",
	"internal/hyperpart",
	"internal/dynpart",
	"internal/powerlaw",
	"internal/gen",
	"internal/dsa",
	"internal/engine",
}

// IsDeterministicPath reports whether the import path belongs to the
// deterministic package set.
func IsDeterministicPath(path string) bool {
	for _, p := range deterministicPrefixes {
		if strings.HasSuffix(path, p) || strings.Contains(path, p+"/") {
			return true
		}
	}
	return false
}

// suppression is one parsed suppression comment.
type suppression struct {
	file string
	line int
	// analyzer is the analyzer name the comment silences; "ordered" is
	// stored for //lint:ordered and interpreted by maprange alone.
	analyzer      string
	justified     bool
	pos           token.Pos
	used          bool
	orderedMarker bool
}

// Suppressions indexes every suppression comment of a package.
type Suppressions struct {
	byKey map[string][]*suppression // "file:line" -> comments on that line
	all   []*suppression
}

// CollectSuppressions parses //lint:ordered and //dnelint:ignore comments
// from all files of a pass.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byKey: map[string][]*suppression{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var sup *suppression
				switch {
				case strings.HasPrefix(text, "lint:ordered"):
					rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ordered"))
					sup = &suppression{analyzer: "maprange", justified: rest != "", orderedMarker: true}
				case strings.HasPrefix(text, "dnelint:ignore"):
					rest := strings.Fields(strings.TrimPrefix(text, "dnelint:ignore"))
					sup = &suppression{}
					if len(rest) > 0 {
						sup.analyzer = rest[0]
					}
					sup.justified = len(rest) > 1
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				sup.file, sup.line, sup.pos = pos.Filename, pos.Line, c.Pos()
				key := fmt.Sprintf("%s:%d", sup.file, sup.line)
				s.byKey[key] = append(s.byKey[key], sup)
				s.all = append(s.all, sup)
			}
		}
	}
	return s
}

// Match reports whether a diagnostic from analyzer at position pos is
// covered by a suppression on the same line or the line directly above, and
// marks the suppression used. Unjustified suppressions never match: the
// driver turns them into findings of their own.
func (s *Suppressions) Match(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, sup := range s.byKey[fmt.Sprintf("%s:%d", p.Filename, line)] {
			ok := sup.analyzer == analyzer || (sup.orderedMarker && analyzer == "maprange")
			if ok && sup.justified {
				sup.used = true
				return true
			}
		}
	}
	return false
}

// Audit returns a finding for every malformed suppression: missing
// justification, or an analyzer name the suite does not know.
func (s *Suppressions) Audit(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, sup := range s.all {
		switch {
		case !sup.justified:
			out = append(out, Diagnostic{Pos: sup.pos, Analyzer: "suppress",
				Message: "suppression comment carries no justification; write //lint:ordered <why> or //dnelint:ignore <analyzer> <why>"})
		case !sup.orderedMarker && !known[sup.analyzer]:
			out = append(out, Diagnostic{Pos: sup.pos, Analyzer: "suppress",
				Message: fmt.Sprintf("suppression names unknown analyzer %q", sup.analyzer)})
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to pkg, filters findings through the
// package's suppression comments, and returns the surviving diagnostics
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := CollectSuppressions(pkg.Fset, pkg.Files)
	known := map[string]bool{}
	var out []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Det:       pkg.Det,
		}
		pass.report = func(d Diagnostic) {
			if sups.Match(pkg.Fset, d.Analyzer, d.Pos) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	out = append(out, sups.Audit(known)...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
