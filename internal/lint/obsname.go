package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// ObsName validates the observability layer at its registration sites:
//
//   - metric names passed to Registry.Counter/Gauge/Histogram (and their
//     *Func/Duration variants) must be snake_case;
//   - counters must end in the Prometheus-conventional _total (a counter
//     of seconds is _seconds_total, of bytes _bytes_total);
//   - histograms must carry a unit suffix (_seconds or _bytes);
//   - gauges must NOT end in _total — that suffix promises monotonicity;
//   - a span handle returned by Tracer.Start/StartSpan must have End
//     called (directly or deferred) in the same function, or the span is
//     never recorded and the trace silently loses the phase.
//
// Only string-literal names are checked; names built at runtime pass
// through helper functions that are themselves registration sites.
var ObsName = &Analyzer{
	Name: "obsname",
	Doc: "validates metric names (snake_case, _total/_seconds/_bytes unit suffixes) " +
		"at obs registration sites and flags Start spans without a matching End",
	Run: runObsName,
}

var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runObsName(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.NamedTypeName(sel.X) != "Registry" {
				return true
			}
			kind := sel.Sel.Name
			switch kind {
			case "Counter", "CounterFunc", "Gauge", "GaugeFunc", "Histogram", "DurationHistogram":
			default:
				return true
			}
			name, ok := literalString(call.Args)
			if !ok {
				return true
			}
			checkMetricName(pass, call, kind, name)
			return true
		})
	}
	checkSpanEnds(pass)
	return nil
}

func literalString(args []ast.Expr) (string, bool) {
	if len(args) == 0 {
		return "", false
	}
	lit, ok := args[0].(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind, name string) {
	if !snakeRE.MatchString(name) {
		pass.Reportf(call.Pos(), "metric name %q is not snake_case ([a-z0-9_], starting with a letter)", name)
		return
	}
	isCounter := kind == "Counter" || kind == "CounterFunc"
	isGauge := kind == "Gauge" || kind == "GaugeFunc"
	isHist := kind == "Histogram" || kind == "DurationHistogram"
	switch {
	case isCounter && !strings.HasSuffix(name, "_total"):
		pass.Reportf(call.Pos(), "counter %q must end in _total (unit suffixes come before it: _seconds_total, _bytes_total)", name)
	case isGauge && strings.HasSuffix(name, "_total"):
		pass.Reportf(call.Pos(), "gauge %q must not end in _total; that suffix promises a monotonic counter", name)
	case isHist && !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes"):
		pass.Reportf(call.Pos(), "histogram %q needs a unit suffix (_seconds or _bytes)", name)
	case kind == "DurationHistogram" && !strings.HasSuffix(name, "_seconds"):
		pass.Reportf(call.Pos(), "duration histogram %q must end in _seconds", name)
	}
}

// checkSpanEnds walks each function and verifies that every span handle
// produced by Tracer.Start/StartSpan has a matching .End() call.
func checkSpanEnds(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkSpansInBody(pass, body)
			}
			return true
		})
	}
}

func isTracerStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Start" && sel.Sel.Name != "StartSpan" {
		return false
	}
	return pass.NamedTypeName(sel.X) == "Tracer"
}

func checkSpansInBody(pass *Pass, body *ast.BlockStmt) {
	// Handles started in nested function literals belong to that literal's
	// own check; skip them here.
	inOwnScope := func(n ast.Node) bool {
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	}
	var handles []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if !inOwnScope(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isTracerStart(pass, call) {
				pass.Reportf(call.Pos(), "span handle from Tracer.%s discarded; the span is never recorded — call End on it", callName(call))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isTracerStart(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if id.Name == "_" {
						pass.Reportf(call.Pos(), "span handle from Tracer.%s assigned to _; the span is never recorded", callName(call))
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						handles = append(handles, obj)
					}
				}
			}
		}
		return true
	})
	for _, h := range handles {
		if !bodyCallsEnd(pass, body, h) {
			pass.Reportf(h.Pos(), "span %s started but End is never called in this function; the span is never recorded", h.Name())
		}
	}
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Start"
}

func bodyCallsEnd(pass *Pass, body *ast.BlockStmt, handle types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == handle {
			found = true
			return false
		}
		return true
	})
	return found
}
