package lint

import (
	"go/ast"
	"strings"
)

// SeedRand enforces the repository's RNG discipline in deterministic
// packages: all randomness must flow from an explicit seed (ultimately
// Spec.Seed), threaded through rand.New(rand.NewSource(seed)).
//
// Three violations are flagged:
//
//  1. calls to math/rand's global convenience functions (rand.Intn,
//     rand.Shuffle, rand.Seed, …) — they draw from the shared, racy,
//     program-global source;
//  2. RNG sources seeded from the clock: any rand.NewSource/rand.New
//     argument whose expression contains a time.Now() call;
//  3. un-threaded construction: a rand.NewSource argument whose expression
//     mentions no identifier or field named like "seed", which is how an
//     ad-hoc constant or loop counter sneaks in as a source.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc: "flags global math/rand functions, time.Now()-derived seeds, and RNG " +
		"construction whose seed does not flow from an explicit seed value",
	Run: runSeedRand,
}

// randGlobalOK lists the math/rand package-level functions that do NOT draw
// from the global source and stay legal in deterministic code.
var randGlobalOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeedRand(pass *Pass) error {
	if !pass.Det {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			qual, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case pass.PkgQualifier(qual, "math/rand") || pass.PkgQualifier(qual, "math/rand/v2"):
				name := sel.Sel.Name
				if !randGlobalOK[name] {
					pass.Reportf(call.Pos(), "math/rand global %s draws from the shared program-global source; construct rand.New(rand.NewSource(seed)) with a seed threaded from Spec.Seed", name)
					return true
				}
				if name == "NewSource" && len(call.Args) == 1 {
					arg := call.Args[0]
					if exprCallsTimeNow(pass, arg) {
						pass.Reportf(call.Pos(), "RNG seeded from time.Now(): partition output becomes run-dependent; thread the seed from Spec.Seed")
					} else if !exprMentionsSeed(arg) {
						pass.Reportf(call.Pos(), "rand.NewSource argument does not mention a seed; thread an explicit seed (ultimately Spec.Seed) into RNG construction")
					}
				}
			}
			return true
		})
	}
	return nil
}

// exprCallsTimeNow reports whether expr's subtree contains a call to
// time.Now (resolved through the type checker, not by selector text).
func exprCallsTimeNow(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if qual, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Now" && pass.PkgQualifier(qual, "time") {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprMentionsSeed reports whether any identifier or selector field in
// expr's subtree has a name containing "seed" (case-insensitive).
func exprMentionsSeed(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "seed") {
			found = true
			return false
		}
		return true
	})
	return found
}
