package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpts keeps every experiment to a few seconds for CI.
func quickOpts(buf *bytes.Buffer) Options {
	return Options{Shift: -3, Seed: 1, PRIters: 3, Quick: true, Out: buf}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, exp := range All {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(quickOpts(&buf)); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

func TestTable1MatchesPaperRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(Options{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The Random and Distributed NE rows reproduce the paper's constants
	// almost exactly (see internal/bound); spot-check the α=2.2 column.
	for _, want := range []string{"5.94", "2.88"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6IterationsDecreaseWithLambda(t *testing.T) {
	// The paper's Fig. 6 headline: iterations fall by orders of magnitude as
	// λ → 1. Verified directly on one stand-in.
	var buf bytes.Buffer
	o := quickOpts(&buf)
	if err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	// Parse the table: lambda=1e-02 rows must have more iterations than
	// lambda=1e+00 rows for the same graph.
	lines := strings.Split(buf.String(), "\n")
	iters := map[string]map[string]int{}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] == "graph" {
			continue
		}
		m := iters[fields[0]]
		if m == nil {
			m = map[string]int{}
			iters[fields[0]] = m
		}
		var n int
		if _, err := fmtSscan(fields[2], &n); err != nil {
			continue
		}
		m[fields[1]] = n
	}
	checked := 0
	for gname, m := range iters {
		low, okLow := m["1e-02"]
		high, okHigh := m["1e+00"]
		if okLow && okHigh {
			checked++
			if high >= low {
				t.Errorf("%s: iterations at λ=1 (%d) should be below λ=0.01 (%d)", gname, high, low)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no comparable rows parsed from Fig. 6 output")
	}
}

func fmtSscan(s string, n *int) (int, error) {
	var v int
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotNumber
		}
		v = v*10 + int(c-'0')
	}
	*n = v
	return 1, nil
}

var errNotNumber = errorString("not a number")

type errorString string

func (e errorString) Error() string { return string(e) }
