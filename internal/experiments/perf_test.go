package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPerfWritesJSONSnapshot checks the BENCH_dne.json writer: a complete,
// well-formed snapshot with one record per expansion method and sane fields.
func TestPerfWritesJSONSnapshot(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.JSONPath = filepath.Join(t.TempDir(), "BENCH_dne.json")
	if err := Perf(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap PerfSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Parts != 16 || snap.Edges == 0 {
		t.Fatalf("snapshot header incomplete: %+v", snap)
	}
	want := map[string]bool{"dne": false, "ne": false}
	for _, r := range snap.Runs {
		want[r.Method] = true
		if r.Edges != snap.Edges || r.Parts != snap.Parts {
			t.Fatalf("record %q disagrees with header: %+v", r.Method, r)
		}
		if r.WallMS <= 0 || r.PeakMem <= 0 || r.RF < 1 {
			t.Fatalf("record %q has implausible measurements: %+v", r.Method, r)
		}
	}
	for m, seen := range want {
		if !seen {
			t.Fatalf("snapshot missing method %q", m)
		}
	}
}
