package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/live"
	"github.com/distributedne/dne/internal/partition"
)

// LivePhaseRecord is one phase's latency measurement in the live snapshot.
type LivePhaseRecord struct {
	Phase   string  `json:"phase"`
	Queries int64   `json:"queries"`
	QPS     float64 `json:"qps"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// LiveSnapshot is the BENCH_live.json document: the live-graph subsystem
// driven by a seeded ~1M-edge RMAT churn stream, reporting the quality and
// tail-latency contracts the subsystem declares — RF drift vs batch
// re-partitioning the same final graph, migration throughput of the
// bounded rebalancer, and query percentiles while compaction and
// rebalancing run underneath the readers.
type LiveSnapshot struct {
	Graph    string `json:"graph"`
	Vertices uint32 `json:"vertices"`
	Parts    int    `json:"parts"`
	Seed     int64  `json:"seed"`

	Events           int     `json:"events"`
	Applied          int     `json:"applied"`
	FinalEdges       int64   `json:"final_edges"`
	IngestEventsSec  float64 `json:"ingest_events_per_sec"`
	Compactions      int64   `json:"compactions"`
	CompactMS        float64 `json:"compact_ms"`
	RebalanceMS      float64 `json:"rebalance_ms"`
	Moved            int64   `json:"moved"`
	MigratedBytes    int64   `json:"migrated_bytes"`
	MigrationBytesPS float64 `json:"migration_bytes_per_sec"`

	LiveRF  float64 `json:"live_rf"`
	BatchRF float64 `json:"batch_rf"`
	RFDrift float64 `json:"rf_drift"`

	Phases []LivePhaseRecord `json:"phases"`
	// CompactP99OverSteady is the acceptance headline: queries served while
	// the compactor runs must hold p99 within 2x of steady state.
	CompactP99OverSteady float64 `json:"compact_p99_over_steady"`

	Checksum string `json:"checksum"`
}

// ExtLive runs the live-graph benchmark: ingest a seeded churn stream
// incrementally, measure the query mix in steady/compaction/rebalance
// phases, then batch re-partition the identical final graph with HDRF to
// price the incremental placement. When o.JSONPath is set the snapshot is
// written there (the checked-in baseline is regenerated with
// `go run ./cmd/expbench -exp live -json BENCH_live.json`).
func ExtLive(o Options) error {
	scale := 16 + o.Shift
	parts := 8
	queries := 4000
	if o.Quick {
		scale = 11 + o.Shift
		queries = 400
	}
	const edgeFactor = 16
	g := gen.RMAT(scale, edgeFactor, o.Seed)
	events := dynpart.Churn(g, int(1.2*float64(g.NumEdges())), 0.1, o.Seed)

	dir, err := os.MkdirTemp("", "expbench-live-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	lv, err := live.Open(dir, live.Config{NumParts: parts, Seed: o.Seed})
	if err != nil {
		return err
	}
	defer lv.Close()

	fmt.Fprintf(o.out(), "Live graph — churn ingest + phased query mix (RMAT s%d e%d, |E|=%d, %d partitions)\n\n",
		scale, edgeFactor, g.NumEdges(), parts)
	rep, err := bench.RunLive(o.ctx(), lv, events, bench.LiveConfig{
		Queries:         queries,
		Workers:         8,
		KHopRatio:       0.3,
		KHopK:           2,
		Seed:            o.Seed,
		RebalanceBudget: 20000,
	})
	if err != nil {
		return err
	}

	// Price the incremental placement: batch re-partition the identical
	// final live graph with HDRF (the streaming quality reference) and
	// compare covered-vertex replication factors.
	ep := lv.Epoch()
	var finalEdges []graph.Edge
	for s := 0; s < ep.NumShards(); s++ {
		for _, k := range ep.ShardEdgesPacked(s) {
			finalEdges = append(finalEdges, graph.UnpackEdge(k))
		}
	}
	fg := graph.FromEdges(0, finalEdges)
	res, err := method("hdrf").Partition(o.ctx(), fg, partition.NewSpec(parts, o.Seed))
	if err != nil {
		return fmt.Errorf("live: batch hdrf reference: %w", err)
	}
	covered := res.Quality.Replicas - res.Quality.VertexCuts
	batchRF := float64(res.Quality.Replicas) / float64(covered)
	liveRF := rep.Stats.ReplicationFactor

	snap := LiveSnapshot{
		Graph:            fmt.Sprintf("rmat-s%d-e%d", scale, edgeFactor),
		Vertices:         g.NumVertices(),
		Parts:            parts,
		Seed:             o.Seed,
		Events:           rep.Events,
		Applied:          rep.Applied,
		FinalEdges:       rep.Stats.NumEdges,
		IngestEventsSec:  rep.EventsPerSec,
		Compactions:      rep.Stats.Compactions,
		CompactMS:        durMS(rep.CompactElapsed),
		RebalanceMS:      durMS(rep.RebalanceElapsed),
		Moved:            rep.Stats.Moved,
		MigratedBytes:    rep.Stats.MigratedBytes,
		MigrationBytesPS: rep.MigrationBytesPerSec,
		LiveRF:           liveRF,
		BatchRF:          batchRF,
		RFDrift:          liveRF / batchRF,
		Checksum:         fmt.Sprintf("%#x", lv.Checksum()),
	}
	for _, ph := range []bench.LivePhase{rep.Steady, rep.DuringCompaction, rep.DuringRebalance} {
		snap.Phases = append(snap.Phases, LivePhaseRecord{
			Phase:   ph.Phase,
			Queries: ph.Queries,
			QPS:     ph.Throughput,
			P50MS:   durMS(ph.LatencyP50),
			P95MS:   durMS(ph.LatencyP95),
			P99MS:   durMS(ph.LatencyP99),
		})
	}
	if p99s := rep.Steady.LatencyP99; p99s > 0 {
		snap.CompactP99OverSteady = float64(rep.DuringCompaction.LatencyP99) / float64(p99s)
	}

	tbl := &bench.Table{Header: []string{"phase", "queries", "qps", "p50(ms)", "p95(ms)", "p99(ms)"}}
	for _, ph := range snap.Phases {
		tbl.Add(ph.Phase, ph.Queries, fmt.Sprintf("%.0f", ph.QPS),
			fmt.Sprintf("%.3f", ph.P50MS), fmt.Sprintf("%.3f", ph.P95MS), fmt.Sprintf("%.3f", ph.P99MS))
	}
	tbl.Print(o.out())
	fmt.Fprintf(o.out(), "\ningest: %d/%d applied, %.0f events/s; final %d edges, checksum %s\n",
		snap.Applied, snap.Events, snap.IngestEventsSec, snap.FinalEdges, snap.Checksum)
	fmt.Fprintf(o.out(), "rf: live %.3f vs batch hdrf %.3f (drift %.3fx)\n", snap.LiveRF, snap.BatchRF, snap.RFDrift)
	fmt.Fprintf(o.out(), "maintenance: %d compactions (%.0f ms), rebalance %.0f ms moved %d edges (%.0f bytes/s)\n",
		snap.Compactions, snap.CompactMS, snap.RebalanceMS, snap.Moved, snap.MigrationBytesPS)
	fmt.Fprintf(o.out(), "tail cost: compaction p99 / steady p99 = %.2fx\n", snap.CompactP99OverSteady)

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(o.JSONPath, buf, 0o644); err != nil {
			return fmt.Errorf("live: write snapshot: %w", err)
		}
		fmt.Fprintf(o.out(), "wrote %s\n", o.JSONPath)
	}
	return nil
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
