package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

// ObsArm is one arm's measured serving latency (medians across rounds).
type ObsArm struct {
	Arm    string  `json:"arm"`
	Rounds int     `json:"rounds"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	QPS    float64 `json:"qps"`
}

// ObsSnapshot is the BENCH_obs.json document: the instrumentation-overhead
// proof. Both arms run the identical seeded workload against the same
// store; the only difference is whether the store's Obs handles are backed
// by a live registry (every query records into sharded histograms and
// counters) or by the no-op registry (typed-nil handles, one predictable
// branch per record site). RatioP99 near 1.0 is the "near-free" claim.
type ObsSnapshot struct {
	Graph    string  `json:"graph"`
	Edges    int64   `json:"edges"`
	Parts    int     `json:"parts"`
	Queries  int     `json:"queries"`
	Baseline ObsArm  `json:"baseline"`
	Instr    ObsArm  `json:"instrumented"`
	RatioP50 float64 `json:"ratio_p50"`
	RatioP99 float64 `json:"ratio_p99"`
}

// ObsOverhead measures the serving-latency cost of the observability layer
// and writes the BENCH_obs.json snapshot when -json is given. Rounds of the
// two arms interleave so clock drift and cache state land on both equally;
// each arm reports its median across rounds.
func ObsOverhead(o Options) error {
	scale := 12 + o.Shift
	rounds := 5
	queries := 10_000
	if o.Quick {
		scale = 9 + o.Shift
		rounds = 3
		queries = 2_000
	}
	const edgeFactor = 8
	const parts = 8
	g := gen.RMAT(scale, edgeFactor, o.Seed)
	pr, spec, err := methods.New("dne", partition.NewSpec(parts, o.Seed))
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	res, err := pr.Partition(o.ctx(), g, spec)
	if err != nil {
		return fmt.Errorf("obs: partition: %w", err)
	}
	st, err := store.Build(g, res)
	if err != nil {
		return fmt.Errorf("obs: store build: %w", err)
	}

	cfg := bench.ServingConfig{
		Queries:   queries,
		Workers:   4,
		KHopRatio: 0.2,
		KHopK:     2,
		Seed:      o.Seed,
	}
	reg := obs.NewRegistry()
	arms := []struct {
		name   string
		handle *store.Obs
	}{
		// NewObs(nil) is the no-op registry arm: the handle exists, every
		// instrument in it is a typed nil.
		{"noop-registry", store.NewObs(nil)},
		{"instrumented", store.NewObs(reg)},
	}
	type sample struct{ p50, p99, qps float64 }
	results := make([][]sample, len(arms))
	for r := 0; r < rounds; r++ {
		for i, arm := range arms {
			st.SetObs(arm.handle)
			rep, err := bench.RunServing(o.ctx(), st, cfg)
			if err != nil {
				return fmt.Errorf("obs: %s round %d: %w", arm.name, r, err)
			}
			results[i] = append(results[i], sample{
				p50: float64(rep.LatencyP50.Microseconds()) / 1000,
				p99: float64(rep.LatencyP99.Microseconds()) / 1000,
				qps: rep.Throughput,
			})
		}
	}
	median := func(ss []sample, f func(sample) float64) float64 {
		vs := make([]float64, len(ss))
		for i, s := range ss {
			vs[i] = f(s)
		}
		sort.Float64s(vs)
		return vs[len(vs)/2]
	}
	mkArm := func(name string, ss []sample) ObsArm {
		return ObsArm{
			Arm:    name,
			Rounds: len(ss),
			P50MS:  median(ss, func(s sample) float64 { return s.p50 }),
			P99MS:  median(ss, func(s sample) float64 { return s.p99 }),
			QPS:    median(ss, func(s sample) float64 { return s.qps }),
		}
	}
	snap := ObsSnapshot{
		Graph:    fmt.Sprintf("rmat-s%d-e%d", scale, edgeFactor),
		Edges:    g.NumEdges(),
		Parts:    parts,
		Queries:  queries,
		Baseline: mkArm(arms[0].name, results[0]),
		Instr:    mkArm(arms[1].name, results[1]),
	}
	if snap.Baseline.P50MS > 0 {
		snap.RatioP50 = snap.Instr.P50MS / snap.Baseline.P50MS
	}
	if snap.Baseline.P99MS > 0 {
		snap.RatioP99 = snap.Instr.P99MS / snap.Baseline.P99MS
	}

	tbl := &bench.Table{Header: []string{"arm", "rounds", "p50(ms)", "p99(ms)", "qps"}}
	for _, a := range []ObsArm{snap.Baseline, snap.Instr} {
		tbl.Add(a.Arm, a.Rounds, fmt.Sprintf("%.4f", a.P50MS), fmt.Sprintf("%.4f", a.P99MS),
			fmt.Sprintf("%.0f", a.QPS))
	}
	tbl.Print(o.out())
	fmt.Fprintf(o.out(), "p99 ratio instrumented/noop = %.3f (p50 %.3f)\n", snap.RatioP99, snap.RatioP50)

	// Sanity: the instrumented rounds must actually have recorded — an
	// overhead number for instruments that never fired proves nothing.
	var b countWriter
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	if b.n == 0 {
		return fmt.Errorf("obs: instrumented registry exported nothing")
	}

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(o.JSONPath, buf, 0o644); err != nil {
			return fmt.Errorf("obs: write snapshot: %w", err)
		}
		fmt.Fprintf(o.out(), "wrote %s\n", o.JSONPath)
	}
	return nil
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
