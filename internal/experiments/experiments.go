// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§7). Each experiment prints the same rows/series the paper
// reports, at the reduced default scales described in DESIGN.md; pass a
// positive shift to scale toward paper size.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/engine"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// Options configure an experiment run.
type Options struct {
	// Ctx cancels in-flight partitioner runs (nil = background).
	Ctx context.Context
	// Shift scales every dataset by 2^Shift vertices (0 = defaults,
	// negative = quicker, positive = closer to paper scale).
	Shift int
	// Seed for every randomized component.
	Seed int64
	// PRIters is the PageRank iteration count for Table 5 (paper: 100).
	PRIters int
	// Quick restricts sweeps to fewer points (used by unit tests).
	Quick bool
	// JSONPath, when non-empty, makes experiments that support it (perf,
	// obs, live, stream) write a machine-readable snapshot to this file.
	JSONPath string
	Out      io.Writer
}

func (o Options) out() io.Writer { return o.Out }

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// method resolves a registry method; experiments only name methods the
// registry declares, so a miss is a programmer error. The returned
// partitioner resolves every Spec against the descriptor first, so the
// descriptor-declared defaults govern experiment runs exactly as they do
// CLI and HTTP runs.
func method(name string) partition.Partitioner {
	d, ok := methods.Lookup(name)
	if !ok {
		panic("experiments: method not registered: " + name)
	}
	return resolvingMethod{d: d, p: d.Factory()}
}

type resolvingMethod struct {
	d methods.Descriptor
	p partition.Partitioner
}

func (m resolvingMethod) Name() string { return m.p.Name() }

func (m resolvingMethod) Partition(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Result, error) {
	spec, err := m.d.ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	return m.p.Partition(ctx, g, spec)
}

func (o Options) prIters() int {
	if o.PRIters > 0 {
		return o.PRIters
	}
	return 20
}

// qualityBaselines returns the Fig-8 comparison set in the paper's legend
// order, resolved through the method registry.
func qualityBaselines() []partition.Partitioner {
	names := []string{"random", "grid", "oblivious", "ginger", "spinner", "metis", "sheep", "xtrapulp", "dne"}
	prs := make([]partition.Partitioner, len(names))
	for i, n := range names {
		prs[i] = method(n)
	}
	return prs
}

// Fig6 reproduces Fig. 6: iteration count and replication factor of
// Distributed NE under λ ∈ {1e-4 … 1} on 32 partitions, over the four
// mid-size stand-ins.
func Fig6(o Options) error {
	lambdas := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1.0}
	if o.Quick {
		lambdas = []float64{1e-2, 1e-1, 1.0}
	}
	specs := datasets.Mid()
	const parts = 32
	fmt.Fprintf(o.out(), "Fig. 6 — #iterations and replication factor vs λ (|P| = %d)\n\n", parts)
	t := &bench.Table{Header: []string{"graph", "lambda", "iterations", "RF"}}
	for _, spec := range specs {
		g := spec.Build(o.Shift)
		for _, lam := range lambdas {
			cfg := dne.DefaultConfig()
			cfg.Lambda = lam
			cfg.Seed = o.Seed
			res, err := dne.PartitionCtx(o.ctx(), g, parts, cfg)
			if err != nil {
				return fmt.Errorf("fig6 %s λ=%g: %w", spec.Name, lam, err)
			}
			q := res.Partitioning.Measure(g)
			t.Add(spec.Name, fmt.Sprintf("%.0e", lam), res.Iterations, q.ReplicationFactor)
		}
	}
	t.Print(o.out())
	return nil
}

// Table1 reproduces Table 1: theoretical upper bounds of the replication
// factor on power-law graphs with 256 partitions.
func Table1(o Options) error {
	alphas := []float64{2.2, 2.4, 2.6, 2.8}
	const parts = 256
	fmt.Fprintf(o.out(), "Table 1 — theoretical upper bound of RF in power-law graphs (%d partitions)\n\n", parts)
	t := &bench.Table{Header: []string{"Partitioner", "a=2.2", "a=2.4", "a=2.6", "a=2.8"}}
	row := func(name string, f func(alpha float64) float64) {
		cells := []any{name}
		for _, a := range alphas {
			cells = append(cells, fmt.Sprintf("%.2f", f(a)))
		}
		t.Add(cells...)
	}
	row("Random (1D-hash)", func(a float64) float64 { return bound.Random(a, parts) })
	row("Grid (2D-hash)", func(a float64) float64 { return bound.Grid(a, parts) })
	row("DBH", func(a float64) float64 { return bound.DBH(a, parts) })
	row("Distributed NE", bound.DNE)
	t.Print(o.out())
	return nil
}

// Fig8 reproduces Fig. 8(a)–(g): replication factor of the skewed stand-ins
// across partition counts for all nine quality baselines.
func Fig8(o Options) error {
	partsList := []int{4, 8, 16, 32, 64}
	specs := datasets.Skewed
	if o.Quick {
		partsList = []int{8, 32}
		specs = datasets.Mid()[:2]
	}
	fmt.Fprintln(o.out(), "Fig. 8(a)-(g) — replication factor of skewed graphs")
	for _, spec := range specs {
		g := spec.Build(o.Shift)
		fmt.Fprintf(o.out(), "\n%s (|V|=%d |E|=%d; paper: %s vertices, %s edges)\n",
			spec.Name, g.NumVertices(), g.NumEdges(), spec.PaperVertices, spec.PaperEdges)
		header := []string{"partitioner"}
		for _, p := range partsList {
			header = append(header, fmt.Sprintf("P=%d", p))
		}
		t := &bench.Table{Header: header}
		for _, pr := range qualityBaselines() {
			cells := []any{pr.Name()}
			for _, parts := range partsList {
				run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
				if run.Err != nil {
					return fmt.Errorf("fig8 %s %s P=%d: %w", spec.Name, pr.Name(), parts, run.Err)
				}
				cells = append(cells, run.Quality.ReplicationFactor)
			}
			t.Add(cells...)
		}
		t.Print(o.out())
	}
	return nil
}

// Fig8RMAT reproduces Fig. 8(h)–(j): replication factor of RMAT graphs
// across edge factors at |P|=64, for three consecutive scales.
func Fig8RMAT(o Options) error {
	baseScale := 12 + o.Shift
	efs := []int{16, 64, 256, 1024}
	scales := []int{baseScale, baseScale + 1, baseScale + 2}
	const parts = 64
	if o.Quick {
		efs = []int{16, 64}
		scales = scales[:1]
	}
	fmt.Fprintf(o.out(), "Fig. 8(h)-(j) — RF of RMAT graphs vs edge factor (|P| = %d; paper scales 20-22)\n", parts)
	for _, sc := range scales {
		fmt.Fprintf(o.out(), "\nRMAT Scale%d\n", sc)
		header := []string{"partitioner"}
		for _, ef := range efs {
			header = append(header, fmt.Sprintf("EF=%d", ef))
		}
		t := &bench.Table{Header: header}
		comparison := []partition.Partitioner{
			method("xtrapulp"), method("sheep"), method("dne"),
		}
		for _, pr := range comparison {
			cells := []any{pr.Name()}
			for _, ef := range efs {
				g := gen.RMAT(sc, ef, o.Seed+int64(ef))
				run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
				if run.Err != nil {
					return fmt.Errorf("fig8rmat %s EF=%d: %w", pr.Name(), ef, run.Err)
				}
				cells = append(cells, run.Quality.ReplicationFactor)
			}
			t.Add(cells...)
		}
		t.Print(o.out())
	}
	return nil
}

// Fig9 reproduces Fig. 9: memory score (bytes at peak, normalised by |E|) of
// the high-quality methods on the skewed stand-ins (a) and RMAT graphs (b).
func Fig9(o Options) error {
	const parts = 16
	specs := datasets.Skewed
	if o.Quick {
		specs = datasets.Mid()[:2]
	}
	fmt.Fprintf(o.out(), "Fig. 9 — memory score (total bytes / |E|) on %d machines\n\n", parts)
	t := &bench.Table{Header: []string{"graph", "ParMETIS", "Sheep", "X.P.", "D.NE"}}
	for _, spec := range specs {
		g := spec.Build(o.Shift)
		cells := []any{spec.Name}
		for _, pr := range []partition.Partitioner{
			method("metis"),
			method("sheep"),
			// X.P. runs as DistLP: the distributed label-propagation
			// implementation, whose footprint includes the vertex-partitioned
			// layout's edge replication across machines.
			method("distlp"),
			method("dne"),
		} {
			run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("fig9 %s: %w", pr.Name(), run.Err)
			}
			cells = append(cells, fmt.Sprintf("%.1f", run.MemScore(g.NumEdges())))
		}
		t.Add(cells...)
	}
	t.Print(o.out())
	fmt.Fprintln(o.out(), "\n(RMAT series)")
	efs := []int{16, 64, 256}
	if o.Quick {
		efs = []int{16}
	}
	t2 := &bench.Table{Header: []string{"graph", "X.P.", "D.NE"}}
	for _, ef := range efs {
		g := gen.RMAT(11+o.Shift, ef, o.Seed)
		cells := []any{fmt.Sprintf("RMAT s%d EF%d", 11+o.Shift, ef)}
		for _, pr := range []partition.Partitioner{method("distlp"), method("dne")} {
			run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("fig9 rmat %s: %w", pr.Name(), run.Err)
			}
			cells = append(cells, fmt.Sprintf("%.1f", run.MemScore(g.NumEdges())))
		}
		t2.Add(cells...)
	}
	t2.Print(o.out())
	return nil
}

// Fig10 reproduces Fig. 10(a)–(g): elapsed partitioning time vs number of
// machines for the high-quality methods.
func Fig10(o Options) error {
	partsList := []int{4, 8, 16, 32, 64}
	specs := datasets.Skewed
	if o.Quick {
		partsList = []int{4, 16}
		specs = datasets.Mid()[:2]
	}
	fmt.Fprintln(o.out(), "Fig. 10(a)-(g) — elapsed time (s) vs number of machines (= partitions)")
	for _, spec := range specs {
		g := spec.Build(o.Shift)
		fmt.Fprintf(o.out(), "\n%s (|V|=%d |E|=%d)\n", spec.Name, g.NumVertices(), g.NumEdges())
		header := []string{"partitioner"}
		for _, p := range partsList {
			header = append(header, fmt.Sprintf("P=%d", p))
		}
		t := &bench.Table{Header: header}
		for _, pr := range []partition.Partitioner{
			method("metis"), method("sheep"), method("xtrapulp"), method("dne"),
		} {
			cells := []any{pr.Name()}
			for _, parts := range partsList {
				run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
				if run.Err != nil {
					return fmt.Errorf("fig10 %s: %w", pr.Name(), run.Err)
				}
				cells = append(cells, run.Elapsed)
			}
			t.Add(cells...)
		}
		t.Print(o.out())
	}
	return nil
}

// Fig10EF reproduces Fig. 10(h): elapsed time vs edge factor at fixed scale,
// |P| = 64.
func Fig10EF(o Options) error {
	scale := 12 + o.Shift
	efs := []int{16, 64, 256, 1024}
	const parts = 64
	if o.Quick {
		efs = []int{16, 64}
	}
	fmt.Fprintf(o.out(), "Fig. 10(h) — elapsed time (s) vs edge factor (RMAT Scale%d, |P| = %d)\n\n", scale, parts)
	header := []string{"partitioner"}
	for _, ef := range efs {
		header = append(header, fmt.Sprintf("EF=%d", ef))
	}
	t := &bench.Table{Header: header}
	for _, pr := range []partition.Partitioner{
		method("sheep"), method("xtrapulp"), method("dne"),
	} {
		cells := []any{pr.Name()}
		for _, ef := range efs {
			g := gen.RMAT(scale, ef, o.Seed+int64(ef))
			run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("fig10ef %s: %w", pr.Name(), run.Err)
			}
			cells = append(cells, run.Elapsed)
		}
		t.Add(cells...)
	}
	t.Print(o.out())
	return nil
}

// Fig10Scale reproduces Fig. 10(i): elapsed time vs RMAT scale at fixed edge
// factor on 64 machines. The paper uses EF 1024; the default here is 64
// (shiftable).
func Fig10Scale(o Options) error {
	baseScale := 10 + o.Shift
	scales := []int{baseScale, baseScale + 1, baseScale + 2}
	ef := 64
	const parts = 64
	if o.Quick {
		scales = scales[:2]
		ef = 16
	}
	fmt.Fprintf(o.out(), "Fig. 10(i) — elapsed time (s) vs scale (RMAT EF %d, |P| = %d)\n\n", ef, parts)
	header := []string{"partitioner"}
	for _, sc := range scales {
		header = append(header, fmt.Sprintf("Scale%d", sc))
	}
	t := &bench.Table{Header: header}
	for _, pr := range []partition.Partitioner{
		method("sheep"), method("xtrapulp"), method("dne"),
	} {
		cells := []any{pr.Name()}
		for _, sc := range scales {
			g := gen.RMAT(sc, ef, o.Seed+int64(sc))
			run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("fig10scale %s: %w", pr.Name(), run.Err)
			}
			cells = append(cells, run.Elapsed)
		}
		t.Add(cells...)
	}
	t.Print(o.out())
	return nil
}

// Fig10J reproduces Fig. 10(j) / §7.4: weak scaling toward the trillion-edge
// configuration. Vertices per machine are fixed (paper: 2^22; default here
// 2^11, shiftable) while machines sweep {4, 16, 64} and edge factor sweeps
// {16, 64, 256, 1024} — the paper's largest point (Scale30, EF 1024, 256
// machines) is the 1.1-trillion-edge graph.
func Fig10J(o Options) error {
	perMachineScale := 11 + o.Shift
	machines := []int{4, 16, 64}
	efs := []int{16, 64, 256}
	if o.Quick {
		machines = []int{4, 16}
		efs = []int{16}
	}
	fmt.Fprintf(o.out(), "Fig. 10(j) — weak scaling: 2^%d vertices per machine (paper: 2^22)\n\n", perMachineScale)
	header := []string{"EF \\ machines"}
	for _, m := range machines {
		header = append(header, fmt.Sprintf("%d", m))
	}
	t := &bench.Table{Header: header}
	for _, ef := range efs {
		cells := []any{fmt.Sprintf("EF %d", ef)}
		for _, m := range machines {
			scale := perMachineScale
			for mm := m; mm > 1; mm /= 4 {
				scale += 2 // ×4 machines → ×4 vertices
			}
			g := gen.RMAT(scale, ef, o.Seed+int64(ef*m))
			cfg := dne.DefaultConfig()
			cfg.Seed = o.Seed
			start := time.Now()
			res, err := dne.PartitionCtx(o.ctx(), g, m, cfg)
			if err != nil {
				return fmt.Errorf("fig10j m=%d ef=%d: %w", m, ef, err)
			}
			_ = res
			cells = append(cells, time.Since(start))
		}
		t.Add(cells...)
	}
	t.Print(o.out())
	return nil
}

// Table4 reproduces Table 4 (§7.5): replication factor and elapsed time of
// the sequential/streaming algorithms vs Distributed NE on 64 partitions.
func Table4(o Options) error {
	const parts = 64
	specs := datasets.Mid()
	if o.Quick {
		specs = specs[:2]
	}
	fmt.Fprintf(o.out(), "Table 4 — comparison with sequential algorithms (%d partitions)\n\n", parts)
	prs := []partition.Partitioner{
		method("hdrf"), method("ne"), method("sne"), method("dne"),
	}
	tRF := &bench.Table{Header: append([]string{"RF"}, specNames(specs)...)}
	tTime := &bench.Table{Header: append([]string{"Time(s)"}, specNames(specs)...)}
	graphs := make([]*graph.Graph, len(specs))
	for i, spec := range specs {
		graphs[i] = spec.Build(o.Shift)
	}
	for _, pr := range prs {
		rfCells := []any{pr.Name()}
		timeCells := []any{pr.Name()}
		for i := range specs {
			run := bench.Execute(o.ctx(), pr, graphs[i], partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("table4 %s: %w", pr.Name(), run.Err)
			}
			rfCells = append(rfCells, run.Quality.ReplicationFactor)
			timeCells = append(timeCells, run.Elapsed)
		}
		tRF.Add(rfCells...)
		tTime.Add(timeCells...)
	}
	tRF.Print(o.out())
	fmt.Fprintln(o.out())
	tTime.Print(o.out())
	return nil
}

// Table5 reproduces Table 5 (§7.6): SSSP, WCC and PageRank over 64
// partitions for five partitioners, reporting partition quality (RF/EB/VB)
// and per-application elapsed time, communication volume and workload
// balance.
func Table5(o Options) error {
	parts := 64
	specs := datasets.Mid()
	if o.Quick {
		parts = 16
		specs = specs[:1]
	}
	prs := []partition.Partitioner{
		method("random"), method("grid"), method("oblivious"), method("ginger"), method("dne"),
	}
	fmt.Fprintf(o.out(), "Table 5 — graph applications on %d partitions (PageRank: %d iterations)\n", parts, o.prIters())
	for _, spec := range specs {
		g := spec.Build(o.Shift)
		fmt.Fprintf(o.out(), "\n%s (|V|=%d |E|=%d)\n", spec.Name, g.NumVertices(), g.NumEdges())
		t := &bench.Table{Header: []string{
			"partitioner", "RF", "EB", "VB",
			"SSSP ET", "SSSP COM(MB)", "SSSP WB",
			"WCC ET", "WCC COM(MB)", "WCC WB",
			"PR ET", "PR COM(MB)", "PR WB",
		}}
		for _, pr := range prs {
			res, err := pr.Partition(o.ctx(), g, partition.NewSpec(parts, o.Seed))
			if err != nil {
				return fmt.Errorf("table5 %s: %w", pr.Name(), err)
			}
			pt := res.Partitioning
			q := res.Quality
			cells := []any{pr.Name(), q.ReplicationFactor, q.EdgeBalance, q.VertexBalance}
			for _, app := range []string{"sssp", "wcc", "pr"} {
				e := engine.New(g, pt)
				start := time.Now()
				switch app {
				case "sssp":
					e.SSSP(0)
				case "wcc":
					e.WCC()
				case "pr":
					e.PageRank(o.prIters(), 0.85)
				}
				et := time.Since(start)
				cells = append(cells, et,
					fmt.Sprintf("%.1f", float64(e.CommBytes)/(1<<20)), e.WorkloadBalance())
			}
			t.Add(cells...)
		}
		t.Print(o.out())
	}
	return nil
}

// Table6 reproduces Table 6 (§7.7): replication factor on non-skewed road
// networks for eight partitioners.
func Table6(o Options) error {
	const parts = 64
	roads := datasets.Roads
	if o.Quick {
		roads = roads[:1]
	}
	fmt.Fprintf(o.out(), "Table 6 — replication factor of road networks (%d partitions)\n\n", parts)
	prs := []partition.Partitioner{
		method("random"), method("grid"), method("oblivious"), method("ginger"),
		method("metis"), method("sheep"), method("xtrapulp"), method("dne"),
	}
	header := []string{"graph"}
	for _, pr := range prs {
		header = append(header, pr.Name())
	}
	t := &bench.Table{Header: header}
	for _, rd := range roads {
		g := rd.Build(o.Shift)
		cells := []any{rd.Name}
		for _, pr := range prs {
			run := bench.Execute(o.ctx(), pr, g, partition.NewSpec(parts, o.Seed))
			if run.Err != nil {
				return fmt.Errorf("table6 %s: %w", pr.Name(), run.Err)
			}
			cells = append(cells, run.Quality.ReplicationFactor)
		}
		t.Add(cells...)
	}
	t.Print(o.out())
	return nil
}

func specNames(specs []datasets.Spec) []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// All maps experiment ids to their runners, in paper order.
var All = []struct {
	ID   string
	Desc string
	Run  func(Options) error
}{
	{"fig6", "iterations and RF vs lambda (32 partitions)", Fig6},
	{"table1", "theoretical upper bounds (zeta closed forms)", Table1},
	{"fig8", "RF of skewed graphs vs partition count", Fig8},
	{"fig8rmat", "RF of RMAT graphs vs edge factor", Fig8RMAT},
	{"fig9", "memory score of high-quality partitioners", Fig9},
	{"fig10", "elapsed time vs machines", Fig10},
	{"fig10ef", "elapsed time vs edge factor", Fig10EF},
	{"fig10scale", "elapsed time vs RMAT scale", Fig10Scale},
	{"fig10j", "weak scaling toward trillion edges", Fig10J},
	{"table4", "comparison with sequential algorithms", Table4},
	{"table5", "graph applications (SSSP/WCC/PageRank)", Table5},
	{"table6", "road networks (non-skewed)", Table6},
	{"perf", "tracked perf snapshot of the expansion partitioners (BENCH_dne.json)", Perf},
	{"obs", "observability overhead: instrumented vs no-op-registry serving latency (BENCH_obs.json)", ObsOverhead},
	{"stream", "source-based input: stream vs materialized memory, pipelined throughput ladder (BENCH_stream.json)", ExtStream},
	{"live", "live graph: phased query mix, RF drift, migration rate (BENCH_live.json)", ExtLive},
	{"extdyn", "§8 extension: dynamic-graph incremental maintenance", ExtDynamic},
	{"exthyper", "§8 extension: hypergraph partitioning", ExtHyper},
	{"extpl", "§6 premise: power-law fits of the stand-ins", ExtPowerLaw},
}
