package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/partition"
)

// PerfRecord is one method's measurement in the tracked perf snapshot.
type PerfRecord struct {
	Method  string  `json:"method"`
	Edges   int64   `json:"edges"`
	Parts   int     `json:"parts"`
	WallMS  float64 `json:"wall_ms"`
	PeakMem int64   `json:"peak_mem"`
	RF      float64 `json:"rf"`
}

// PerfSnapshot is the BENCH_dne.json document: the seeded reference
// benchmark (RMAT scale 16, edge factor 16 ⇒ ~0.9M canonical edges, 16
// partitions) measured for the expansion partitioners, so the repository
// carries a perf trajectory that regressions are judged against.
type PerfSnapshot struct {
	Graph    string       `json:"graph"`
	Vertices uint32       `json:"vertices"`
	Edges    int64        `json:"edges"`
	Parts    int          `json:"parts"`
	Seed     int64        `json:"seed"`
	Runs     []PerfRecord `json:"runs"`
}

// Perf runs the tracked DNE perf benchmark and prints the snapshot as a
// table; when o.JSONPath is non-empty the snapshot is also written there
// (the checked-in baseline is regenerated with
// `go run ./cmd/expbench -exp perf -json BENCH_dne.json`).
func Perf(o Options) error {
	scale := 16 + o.Shift
	if o.Quick {
		scale = 12 + o.Shift
	}
	const edgeFactor = 16
	const parts = 16
	g := gen.RMAT(scale, edgeFactor, o.Seed)
	snap := PerfSnapshot{
		Graph:    fmt.Sprintf("rmat-s%d-e%d", scale, edgeFactor),
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Parts:    parts,
		Seed:     o.Seed,
	}
	tbl := &bench.Table{Header: []string{"method", "edges", "parts", "wall_ms", "peak_mem", "RF"}}
	for _, name := range []string{"dne", "ne"} {
		run := bench.Execute(o.ctx(), method(name), g, partition.Spec{NumParts: parts, Seed: o.Seed})
		if run.Err != nil {
			return fmt.Errorf("perf: %s: %w", name, run.Err)
		}
		rec := PerfRecord{
			Method:  name,
			Edges:   g.NumEdges(),
			Parts:   parts,
			WallMS:  float64(run.Elapsed.Microseconds()) / 1000,
			PeakMem: run.MemBytes,
			RF:      run.Quality.ReplicationFactor,
		}
		snap.Runs = append(snap.Runs, rec)
		tbl.Add(rec.Method, rec.Edges, rec.Parts, rec.WallMS, rec.PeakMem, rec.RF)
	}
	tbl.Print(o.out())
	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(o.JSONPath, buf, 0o644); err != nil {
			return fmt.Errorf("perf: write snapshot: %w", err)
		}
		fmt.Fprintf(o.out(), "wrote %s\n", o.JSONPath)
	}
	return nil
}
