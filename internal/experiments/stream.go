package experiments

import (
	"fmt"
	"os"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// ExtStream is the source-API counterpart of the §7.5 memory trade-off:
// every stream-capable method partitions the seeded RMAT twice — from the
// in-memory graph and from canonical shard stripes on disk — and the table
// reports both accounted peaks plus the checksum agreement. The stream
// column must be a small fraction of the materialized baseline (the dense
// per-vertex state instead of the resident CSR) while the partitionings
// stay bit-identical.
func ExtStream(o Options) error {
	scale := 13 + o.Shift
	if o.Quick {
		scale = 11
	}
	g := gen.RMAT(scale, 16, o.Seed)
	dir, err := os.MkdirTemp("", "dne-stream-exp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const shards = 4
	if err := graph.WriteCanonicalShards(dir, g, shards); err != nil {
		return err
	}
	src, err := graph.DirSource(dir)
	if err != nil {
		return err
	}
	const parts = 16
	fmt.Fprintf(o.out(), "Source-based input: RMAT scale-%d (|E|=%d), %d shard stripes, %d partitions\n",
		scale, g.NumEdges(), shards, parts)
	t := &bench.Table{Header: []string{"method", "RF", "mem(graph)MB", "mem(stream)MB", "ratio", "t(stream)", "identical"}}
	for _, name := range methods.StreamNames() {
		spec := partition.NewSpec(parts, o.Seed)
		pr, resolved, err := methods.New(name, spec)
		if err != nil {
			return err
		}
		memRun := bench.Execute(o.ctx(), pr, g, resolved)
		if memRun.Err != nil {
			return fmt.Errorf("%s in-memory: %w", name, memRun.Err)
		}
		srcRun := bench.ExecuteSource(o.ctx(), name, src, spec)
		if srcRun.Err != nil {
			return fmt.Errorf("%s source: %w", name, srcRun.Err)
		}
		identical := "no"
		if memRun.Checksum == srcRun.Checksum && memRun.Quality == srcRun.Quality {
			identical = "yes"
		}
		ratio := 0.0
		if memRun.MemBytes > 0 {
			ratio = float64(srcRun.MemBytes) / float64(memRun.MemBytes)
		}
		t.Add(name, srcRun.Quality.ReplicationFactor,
			float64(memRun.MemBytes)/(1<<20), float64(srcRun.MemBytes)/(1<<20),
			ratio, srcRun.Elapsed, identical)
	}
	t.Print(o.out())
	return nil
}
