package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// StreamRung is one scale of the disk-throughput ladder: the same seeded
// RMAT partitioned from freshly written compressed stripes by the
// sequential and the pipelined stream engine. Edges/sec counts partition
// time only (the measured quality pass is excluded by PartitionTime), and
// the read columns show the pipelined engine's I/O-amplification fix: the
// sequential shuffle re-reads the source once per bucket, the pipelined
// one scatters in a single pass.
type StreamRung struct {
	Scale            int     `json:"scale"`
	Edges            int64   `json:"edges"`
	DiskBytes        int64   `json:"disk_bytes"`
	Compression      float64 `json:"compression_ratio"`
	SeqEdgesPerSec   float64 `json:"seq_edges_per_sec"`
	PipedEdgesPerSec float64 `json:"piped_edges_per_sec"`
	Speedup          float64 `json:"speedup"`
	SeqReadMB        float64 `json:"seq_read_mb"`
	PipedReadMB      float64 `json:"piped_read_mb"`
	Identical        bool    `json:"identical"`
}

// StreamSnapshot is the BENCH_stream.json document: raw stream throughput
// of the pipelined engine against the sequential baseline, over an RMAT
// scale ladder, plus the compression the ESZ1 stripes deliver. "Cold" here
// means the shards are written immediately before each rung runs; the OS
// page cache is shared by both arms (the sequential arm runs first, so any
// cache warmth favors the baseline).
type StreamSnapshot struct {
	Method     string       `json:"method"`
	Parts      int          `json:"parts"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Ladder     []StreamRung `json:"ladder"`
}

// ExtStream is the source-API counterpart of the §7.5 memory trade-off,
// extended with the pipelined engine. Part one: every stream-capable
// method partitions the seeded RMAT three ways — from the in-memory graph,
// from compressed canonical stripes sequentially, and from the same
// stripes through the pipelined engine — and the table reports the
// accounted peaks, times, and whether all three partitionings are
// bit-identical. Part two: the throughput ladder (hdrf over an RMAT scale
// ladder, -shift moves it, e.g. -shift 4 reaches 20→24) that BENCH_stream.json
// snapshots.
func ExtStream(o Options) error {
	scale := 13 + o.Shift
	if o.Quick {
		scale = 11
	}
	g := gen.RMAT(scale, 16, o.Seed)
	dir, err := os.MkdirTemp("", "dne-stream-exp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	const shards = 4
	if err := graph.WriteCanonicalShardsCompressed(dir, g, shards); err != nil {
		return err
	}
	src, err := graph.DirSource(dir)
	if err != nil {
		return err
	}
	const parts = 16
	fmt.Fprintf(o.out(), "Source-based input: RMAT scale-%d (|E|=%d), %d compressed stripes, %d partitions\n",
		scale, g.NumEdges(), shards, parts)
	t := &bench.Table{Header: []string{"method", "RF", "mem(graph)MB", "mem(stream)MB", "ratio", "t(seq)", "t(piped)", "identical"}}
	for _, name := range methods.StreamNames() {
		spec := partition.NewSpec(parts, o.Seed)
		pr, resolved, err := methods.New(name, spec)
		if err != nil {
			return err
		}
		memRun := bench.Execute(o.ctx(), pr, g, resolved)
		if memRun.Err != nil {
			return fmt.Errorf("%s in-memory: %w", name, memRun.Err)
		}
		srcRun := bench.ExecuteSource(o.ctx(), name, src, spec)
		if srcRun.Err != nil {
			return fmt.Errorf("%s source: %w", name, srcRun.Err)
		}
		pipedRun := bench.ExecuteSourcePiped(o.ctx(), name, src, spec)
		if pipedRun.Err != nil {
			return fmt.Errorf("%s pipelined: %w", name, pipedRun.Err)
		}
		identical := "no"
		if memRun.Checksum == srcRun.Checksum && memRun.Quality == srcRun.Quality &&
			srcRun.Checksum == pipedRun.Checksum && srcRun.Quality == pipedRun.Quality {
			identical = "yes"
		}
		ratio := 0.0
		if memRun.MemBytes > 0 {
			ratio = float64(srcRun.MemBytes) / float64(memRun.MemBytes)
		}
		t.Add(name, srcRun.Quality.ReplicationFactor,
			float64(memRun.MemBytes)/(1<<20), float64(srcRun.MemBytes)/(1<<20),
			ratio, srcRun.Elapsed, pipedRun.Elapsed, identical)
	}
	t.Print(o.out())

	snap := StreamSnapshot{Method: "hdrf", Parts: parts, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	rungs := []int{16 + o.Shift, 20 + o.Shift}
	if o.Quick {
		rungs = []int{11}
	}
	fmt.Fprintf(o.out(), "\nRaw stream throughput (%s, %d partitions, GOMAXPROCS=%d):\n",
		snap.Method, parts, snap.GOMAXPROCS)
	lt := &bench.Table{Header: []string{"scale", "edges", "disk MB", "zip", "seq Me/s", "piped Me/s", "speedup", "read seq/piped MB", "identical"}}
	for _, rs := range rungs {
		rung, err := runStreamRung(o, snap.Method, rs, parts)
		if err != nil {
			return err
		}
		snap.Ladder = append(snap.Ladder, rung)
		identical := "no"
		if rung.Identical {
			identical = "yes"
		}
		lt.Add(rung.Scale, rung.Edges, fmt.Sprintf("%.1f", float64(rung.DiskBytes)/(1<<20)),
			fmt.Sprintf("%.2fx", rung.Compression),
			fmt.Sprintf("%.2f", rung.SeqEdgesPerSec/1e6), fmt.Sprintf("%.2f", rung.PipedEdgesPerSec/1e6),
			fmt.Sprintf("%.2fx", rung.Speedup),
			fmt.Sprintf("%.0f/%.0f", rung.SeqReadMB, rung.PipedReadMB), identical)
	}
	lt.Print(o.out())

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(o.JSONPath, buf, 0o644); err != nil {
			return fmt.Errorf("stream: write snapshot: %w", err)
		}
		fmt.Fprintf(o.out(), "wrote %s\n", o.JSONPath)
	}
	return nil
}

// runStreamRung writes compressed stripes for one RMAT scale and times the
// sequential and pipelined stream engines over them. Each arm gets a fresh
// DirSource so its byte meter counts that arm alone.
func runStreamRung(o Options, method string, scale, parts int) (StreamRung, error) {
	g := gen.RMAT(scale, 16, o.Seed)
	dir, err := os.MkdirTemp("", "dne-stream-rung-")
	if err != nil {
		return StreamRung{}, err
	}
	defer os.RemoveAll(dir)
	shards := 8
	if err := graph.WriteCanonicalShardsCompressed(dir, g, shards); err != nil {
		return StreamRung{}, err
	}
	stats, err := graph.ShardDirStats(dir)
	if err != nil {
		return StreamRung{}, err
	}
	rung := StreamRung{Scale: scale, Edges: g.NumEdges()}
	var raw int64
	for _, st := range stats {
		rung.DiskBytes += st.DiskBytes
		raw += int64(st.Ratio * float64(st.DiskBytes))
	}
	if rung.DiskBytes > 0 {
		rung.Compression = float64(raw) / float64(rung.DiskBytes)
	}
	run := func(piped bool) (bench.Run, error) {
		src, err := graph.DirSource(dir)
		if err != nil {
			return bench.Run{}, err
		}
		exec := bench.ExecuteSource
		if piped {
			exec = bench.ExecuteSourcePiped
		}
		r := exec(o.ctx(), method, src, partition.NewSpec(parts, o.Seed))
		return r, r.Err
	}
	seq, err := run(false)
	if err != nil {
		return StreamRung{}, fmt.Errorf("scale-%d sequential: %w", scale, err)
	}
	piped, err := run(true)
	if err != nil {
		return StreamRung{}, fmt.Errorf("scale-%d pipelined: %w", scale, err)
	}
	edges := float64(g.NumEdges())
	if s := seq.Elapsed.Seconds(); s > 0 {
		rung.SeqEdgesPerSec = edges / s
	}
	if s := piped.Elapsed.Seconds(); s > 0 {
		rung.PipedEdgesPerSec = edges / s
	}
	if rung.SeqEdgesPerSec > 0 {
		rung.Speedup = rung.PipedEdgesPerSec / rung.SeqEdgesPerSec
	}
	rung.SeqReadMB = seq.Stats.Extra["source_bytes_read"] / (1 << 20)
	rung.PipedReadMB = piped.Stats.Extra["source_bytes_read"] / (1 << 20)
	rung.Identical = seq.Checksum == piped.Checksum && seq.Quality == piped.Quality
	return rung, nil
}
