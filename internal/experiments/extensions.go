package experiments

import (
	"fmt"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hyperpart"
	"github.com/distributedne/dne/internal/powerlaw"
)

// Extension experiments: not tables or figures of the paper, but executable
// versions of its §8 future-work directions (dynamic graphs, hypergraphs)
// and the §6 power-law premise check. They appear in expbench under ext*.

// ExtDynamic seeds a dynamic partitioner from a Distributed NE result and
// tracks RF and balance as a churn stream (20% deletions) applies, comparing
// the maintained partitioning against periodic full re-partitioning.
func ExtDynamic(o Options) error {
	scale := 12 + o.Shift
	if scale < 8 {
		scale = 8
	}
	snapshot := gen.RMAT(scale, 16, o.Seed)
	res, err := dne.PartitionCtx(o.ctx(), snapshot, 16, dneCfg(o.Seed))
	if err != nil {
		return err
	}
	d, err := dynpart.FromStatic(snapshot, res.Partitioning, dynpart.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out(), "ExtDynamic — incremental maintenance vs full re-partition (|P|=16)\n")
	fmt.Fprintf(o.out(), "seed snapshot: %v, DNE live-vertex RF %.3f\n\n", snapshot, d.ReplicationFactor())

	future := gen.RMAT(scale, 16, o.Seed+1)
	events := 8 * int(snapshot.NumEdges()) / 10
	if o.Quick {
		events /= 4
	}
	stream := dynpart.Churn(future, events, 0.2, o.Seed)
	t := &bench.Table{Header: []string{"events", "|E|", "incr RF", "incr EB", "re-part RF", "moved"}}
	steps := 4
	per := (len(stream) + steps - 1) / steps
	applied := 0
	for lo := 0; lo < len(stream); lo += per {
		hi := lo + per
		if hi > len(stream) {
			hi = len(stream)
		}
		d.Apply(stream[lo:hi])
		moved := d.Rebalance(2000)
		applied = hi
		// Full re-partition of the current edge set for comparison.
		cur := graph.FromEdges(0, d.Edges())
		fres, err := dne.PartitionCtx(o.ctx(), cur, 16, dneCfg(o.Seed))
		if err != nil {
			return err
		}
		fq := fres.Partitioning.Measure(cur)
		fullRF := float64(fq.Replicas) / float64(coveredOf(cur))
		t.Add(applied, d.NumEdges(), d.ReplicationFactor(), d.EdgeBalance(), fullRF, moved)
	}
	t.Print(o.out())
	if err := d.CheckInvariants(); err != nil {
		return err
	}
	fmt.Fprintln(o.out(), "\nshape: incremental RF tracks within a small factor of full re-partitioning")
	return nil
}

func coveredOf(g *graph.Graph) int64 {
	var covered int64
	for v := uint32(0); v < g.NumVertices(); v++ {
		if g.Degree(v) > 0 {
			covered++
		}
	}
	return covered
}

// ExtHyper compares the hypergraph partitioners (Random / Greedy / H-NE) on
// a skewed hypergraph — the paper's hypergraph future-work direction.
func ExtHyper(o Options) error {
	n := uint32(1) << (12 + o.Shift)
	m := int(n) * 2
	if o.Quick {
		m /= 2
	}
	h := hyperpart.RandomHypergraph(n, m, 5, o.Seed)
	fmt.Fprintf(o.out(), "ExtHyper — hypergraph partitioning (|V|=%d, hyperedges=%d, pins=%d, |P|=16)\n\n",
		h.NumVertices(), h.NumHyperedges(), h.NumPins())
	t := &bench.Table{Header: []string{"method", "RF", "pin-balance", "edge-balance"}}
	for _, pr := range []hyperpart.Partitioner{
		hyperpart.Random{Seed: o.Seed},
		hyperpart.Greedy{Seed: o.Seed},
		hyperpart.NE{Seed: o.Seed},
	} {
		pt, err := pr.Partition(h, 16)
		if err != nil {
			return err
		}
		q := pt.Measure(h)
		t.Add(pr.Name(), q.ReplicationFactor, q.PinBalance, q.EdgeBalance)
	}
	t.Print(o.out())
	fmt.Fprintln(o.out(), "\nshape: H-NE < Greedy < Random in RF, mirroring Fig. 8's ordering on graphs")
	return nil
}

// ExtPowerLaw validates the §6 premise on the synthetic stand-ins: fits the
// degree tails of the skewed datasets and contrasts them with a road
// lattice, reporting the fitted α that parameterises the Table-1 bounds.
func ExtPowerLaw(o Options) error {
	fmt.Fprintf(o.out(), "ExtPowerLaw — degree-tail fits of the synthetic stand-ins (Clauset MLE)\n\n")
	t := &bench.Table{Header: []string{"graph", "|V|", "|E|", "alpha", "xmin", "KS", "gini"}}
	row := func(name string, g interface {
		NumVertices() uint32
		NumEdges() int64
		Degree(uint32) int64
	}) error {
		degs := make([]int64, 0, g.NumVertices())
		for v := uint32(0); v < g.NumVertices(); v++ {
			if d := g.Degree(v); d > 0 {
				degs = append(degs, d)
			}
		}
		gini := powerlaw.NewHistogram(degs).Gini()
		fit, err := powerlaw.FitTail(degs)
		if err != nil {
			t.Add(name, g.NumVertices(), g.NumEdges(), "n/a", "-", "-", gini)
			return nil
		}
		t.Add(name, g.NumVertices(), g.NumEdges(), fit.Alpha, fit.XMin, fit.KS, gini)
		return nil
	}
	scale := 12 + o.Shift
	if scale < 8 {
		scale = 8
	}
	if err := row("rmat-ef16", gen.RMAT(scale, 16, o.Seed)); err != nil {
		return err
	}
	if err := row("rmat-ef64", gen.RMAT(scale, 64, o.Seed)); err != nil {
		return err
	}
	if err := row("barabasi-albert", gen.BarabasiAlbert(uint32(1)<<scale, 8, o.Seed)); err != nil {
		return err
	}
	if err := row("chung-lu-2.4", gen.PowerLaw(uint32(1)<<scale, 2.4, o.Seed)); err != nil {
		return err
	}
	if err := row("road-lattice", gen.Road(1<<(scale/2), 1<<(scale/2), o.Seed)); err != nil {
		return err
	}
	t.Print(o.out())
	fmt.Fprintln(o.out(), "\nshape: skewed families fit heavy tails (high gini); road does not")
	return nil
}

func dneCfg(seed int64) dne.Config {
	cfg := dne.DefaultConfig()
	cfg.Seed = seed
	return cfg
}
