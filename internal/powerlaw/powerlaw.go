// Package powerlaw implements discrete power-law fitting and sampling after
// Clauset, Shalizi and Newman, "Power-law distributions in empirical data"
// (SIAM Review 2009) — the formulation the paper adopts for its Table-1
// analysis (§6, Eq. 6): Pr[d] = d^(−α) · ζ(α, dmin)^(−1).
//
// The package is used to validate that the synthetic stand-ins in
// internal/datasets actually have the degree skew the paper's analysis
// assumes, and by cmd/graphstat to report the fitted scaling parameter of any
// graph.
package powerlaw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/graph"
)

// Fit is the result of fitting a discrete power law to a sample.
type Fit struct {
	// Alpha is the maximum-likelihood scaling parameter α.
	Alpha float64
	// XMin is the lower cutoff dmin: the power law is fitted to samples
	// >= XMin only.
	XMin int64
	// KS is the Kolmogorov–Smirnov distance between the empirical CDF of
	// the tail (samples >= XMin) and the fitted model.
	KS float64
	// NTail is the number of samples >= XMin.
	NTail int
	// LogLik is the maximized log-likelihood of the tail under the model.
	LogLik float64
}

func (f Fit) String() string {
	return fmt.Sprintf("power-law fit: alpha=%.3f xmin=%d KS=%.4f n_tail=%d", f.Alpha, f.XMin, f.KS, f.NTail)
}

// alphaSearch brackets the MLE search. Real-world skewed graphs have
// 2 < α < 3 (§1); the bracket is generous around that.
const (
	alphaLo = 1.01
	alphaHi = 8.0
)

// FitAlpha returns the maximum-likelihood α for the discrete power law with
// fixed lower cutoff xmin, together with the log-likelihood at the optimum.
// Samples below xmin are ignored. It returns an error if fewer than two
// samples are >= xmin.
func FitAlpha(samples []int64, xmin int64) (alpha, logLik float64, err error) {
	if xmin < 1 {
		return 0, 0, fmt.Errorf("powerlaw: xmin must be >= 1, got %d", xmin)
	}
	var n int
	var sumLog float64
	for _, x := range samples {
		if x >= xmin {
			n++
			sumLog += math.Log(float64(x))
		}
	}
	if n < 2 {
		return 0, 0, fmt.Errorf("powerlaw: need >= 2 samples above xmin=%d, got %d", xmin, n)
	}
	// L(α) = −n·ln ζ(α, xmin) − α·Σ ln x is strictly concave in α, so a
	// golden-section search converges to the global maximum.
	ll := func(a float64) float64 {
		return -float64(n)*math.Log(bound.Zeta(a, float64(xmin))) - a*sumLog
	}
	lo, hi := alphaLo, alphaHi
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := ll(x1), ll(x2)
	for hi-lo > 1e-7 {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = ll(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = ll(x1)
		}
	}
	alpha = (lo + hi) / 2
	return alpha, ll(alpha), nil
}

// KSDistance returns the Kolmogorov–Smirnov distance between the empirical
// distribution of the samples >= xmin and the discrete power law (α, xmin).
// Both CDFs are right-continuous step functions; the distance compares them
// at every data point (empirical at x vs model at x, and empirical just
// below x vs model at x−1), the standard discrete-data KS statistic.
func KSDistance(samples []int64, alpha float64, xmin int64) float64 {
	tail := make([]int64, 0, len(samples))
	for _, x := range samples {
		if x >= xmin {
			tail = append(tail, x)
		}
	}
	if len(tail) == 0 {
		return 1
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	// Incremental Hurwitz zeta: z = ζ(α, k) starting at k = xmin, with
	// ζ(α, k+1) = ζ(α, k) − k^(−α). One pow per integer in [xmin, max].
	zxm := bound.Zeta(alpha, float64(xmin))
	z := zxm // ζ(α, k) for the current k
	k := xmin
	n := float64(len(tail))
	var ks float64
	i := 0
	for i < len(tail) {
		x := tail[i]
		j := i
		for j < len(tail) && tail[j] == x {
			j++
		}
		// Advance z to ζ(α, x): modelBelow = 1 − ζ(α,x)/ζ(α,xmin) is the
		// model CDF at x−1.
		for k < x {
			z -= math.Pow(float64(k), -alpha)
			k++
		}
		modelBelow := 1 - z/zxm
		modelAt := 1 - (z-math.Pow(float64(x), -alpha))/zxm
		empHi := float64(j) / n // empirical CDF at x
		empLo := float64(i) / n // empirical CDF just below x
		if d := math.Abs(empHi - modelAt); d > ks {
			ks = d
		}
		if d := math.Abs(empLo - modelBelow); d > ks {
			ks = d
		}
		i = j
	}
	return ks
}

// maxXMinCandidates caps how many distinct xmin values FitTail scans; the
// smallest distinct values matter most, and graphs can have thousands of
// distinct degrees.
const maxXMinCandidates = 40

// FitTail fits a discrete power law to the samples, selecting xmin by
// minimizing the KS distance over the distinct sample values (the Clauset et
// al. recipe) and α by maximum likelihood at each candidate.
func FitTail(samples []int64) (Fit, error) {
	if len(samples) < 10 {
		return Fit{}, errors.New("powerlaw: need at least 10 samples")
	}
	distinct := distinctSorted(samples)
	if len(distinct) < 2 {
		return Fit{}, errors.New("powerlaw: degenerate sample (single distinct value)")
	}
	// Candidate xmins: the smallest distinct values, capped. Also require a
	// minimum tail mass so the KS estimate is meaningful.
	if len(distinct) > maxXMinCandidates {
		distinct = distinct[:maxXMinCandidates]
	}
	best := Fit{KS: math.Inf(1)}
	for _, xmin := range distinct {
		alpha, ll, err := FitAlpha(samples, xmin)
		if err != nil {
			continue
		}
		nTail := countTail(samples, xmin)
		if nTail < 10 {
			continue
		}
		ks := KSDistance(samples, alpha, xmin)
		if ks < best.KS {
			best = Fit{Alpha: alpha, XMin: xmin, KS: ks, NTail: nTail, LogLik: ll}
		}
	}
	if math.IsInf(best.KS, 1) {
		return Fit{}, errors.New("powerlaw: no viable xmin candidate")
	}
	return best, nil
}

// FitGraph fits the degree distribution of g. Isolated vertices (degree 0)
// are excluded, matching the paper's dmin = 1 assumption.
func FitGraph(g *graph.Graph) (Fit, error) {
	degs := make([]int64, 0, g.NumVertices())
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > 0 {
			degs = append(degs, d)
		}
	}
	return FitTail(degs)
}

func distinctSorted(samples []int64) []int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, x := range s {
		if x < 1 {
			continue
		}
		if len(out) == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
		_ = i
	}
	return out
}

func countTail(samples []int64, xmin int64) int {
	n := 0
	for _, x := range samples {
		if x >= xmin {
			n++
		}
	}
	return n
}

// Sampler draws from the discrete power law Pr[x] ∝ x^(−α), x >= xmin, by
// inverse-CDF lookup over a precomputed table. The table covers all but
// ~1e-9 of the mass; the residual tail collapses onto the last table entry,
// which is beyond any realistic degree.
type Sampler struct {
	xmin int64
	cdf  []float64 // cdf[i] = P(X <= xmin+i)
}

// NewSampler builds a sampler for the discrete power law (alpha, xmin).
// alpha must exceed 1 for the distribution to normalize.
func NewSampler(alpha float64, xmin int64) (*Sampler, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("powerlaw: alpha must be > 1, got %g", alpha)
	}
	if xmin < 1 {
		return nil, fmt.Errorf("powerlaw: xmin must be >= 1, got %d", xmin)
	}
	z := bound.Zeta(alpha, float64(xmin))
	const maxTable = 1 << 22
	cdf := make([]float64, 0, 1024)
	cum := 0.0
	for i := 0; i < maxTable; i++ {
		x := float64(xmin + int64(i))
		cum += math.Pow(x, -alpha) / z
		cdf = append(cdf, cum)
		if 1-cum < 1e-9 {
			break
		}
	}
	return &Sampler{xmin: xmin, cdf: cdf}, nil
}

// Draw returns one sample.
func (s *Sampler) Draw(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return s.xmin + int64(i)
}

// DrawN returns n samples.
func (s *Sampler) DrawN(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = s.Draw(rng)
	}
	return out
}
