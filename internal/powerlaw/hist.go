package powerlaw

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Histogram is a degree histogram: Count[i] is the number of samples equal to
// Value[i]; values are distinct and ascending.
type Histogram struct {
	Value []int64
	Count []int64
	Total int64
}

// NewHistogram builds a histogram from raw samples; values < 1 are dropped.
func NewHistogram(samples []int64) Histogram {
	m := make(map[int64]int64)
	var total int64
	for _, x := range samples {
		if x < 1 {
			continue
		}
		m[x]++
		total++
	}
	h := Histogram{Total: total}
	h.Value = make([]int64, 0, len(m))
	for v := range m {
		h.Value = append(h.Value, v)
	}
	sort.Slice(h.Value, func(i, j int) bool { return h.Value[i] < h.Value[j] })
	h.Count = make([]int64, len(h.Value))
	for i, v := range h.Value {
		h.Count[i] = m[v]
	}
	return h
}

// CCDF returns, aligned with Value, the complementary CDF P(X >= Value[i]).
func (h Histogram) CCDF() []float64 {
	out := make([]float64, len(h.Value))
	var above int64
	for i := len(h.Value) - 1; i >= 0; i-- {
		above += h.Count[i]
		out[i] = float64(above) / float64(h.Total)
	}
	return out
}

// Quantile returns the smallest value v with P(X <= v) >= q, for q in (0,1].
func (h Histogram) Quantile(q float64) int64 {
	if len(h.Value) == 0 {
		return 0
	}
	target := q * float64(h.Total)
	var cum int64
	for i, v := range h.Value {
		cum += h.Count[i]
		if float64(cum) >= target {
			return v
		}
	}
	return h.Value[len(h.Value)-1]
}

// Gini returns the Gini coefficient of the sample — a scale-free skew
// summary (0 = uniform degrees, →1 = extreme skew). Skewed social/web graphs
// typically exceed 0.4; road networks sit near 0.1.
func (h Histogram) Gini() float64 {
	if h.Total == 0 {
		return 0
	}
	// For grouped data sorted ascending:
	// G = 1 − Σ_i f_i (S_{i−1} + S_i) / S_n, with S the cumulative value mass.
	var sumVal float64
	for i := range h.Value {
		sumVal += float64(h.Value[i]) * float64(h.Count[i])
	}
	if sumVal == 0 {
		return 0
	}
	var g, cum float64
	for i := range h.Value {
		next := cum + float64(h.Value[i])*float64(h.Count[i])
		g += float64(h.Count[i]) / float64(h.Total) * (cum + next)
		cum = next
	}
	return 1 - g/sumVal
}

// WriteLogLog writes the CCDF as "value ccdf" rows, the standard log-log
// visual check for a power-law tail.
func (h Histogram) WriteLogLog(w io.Writer) error {
	ccdf := h.CCDF()
	for i, v := range h.Value {
		if _, err := fmt.Fprintf(w, "%d\t%.6g\n", v, ccdf[i]); err != nil {
			return err
		}
	}
	return nil
}

// Mean returns the sample mean.
func (h Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	var s float64
	for i := range h.Value {
		s += float64(h.Value[i]) * float64(h.Count[i])
	}
	return s / float64(h.Total)
}

// Max returns the largest sample value (0 if empty).
func (h Histogram) Max() int64 {
	if len(h.Value) == 0 {
		return 0
	}
	return h.Value[len(h.Value)-1]
}

// SkewSummary bundles the scalar skew indicators reported by cmd/graphstat.
type SkewSummary struct {
	Mean    float64
	Max     int64
	P99     int64
	Gini    float64
	HHIndex float64 // Herfindahl–Hirschman-style concentration of degree mass
}

// Summary computes the SkewSummary of the histogram.
func (h Histogram) Summary() SkewSummary {
	var hh, sumVal float64
	for i := range h.Value {
		sumVal += float64(h.Value[i]) * float64(h.Count[i])
	}
	if sumVal > 0 {
		for i := range h.Value {
			share := float64(h.Value[i]) * float64(h.Count[i]) / sumVal
			// share of total degree mass at this degree value
			hh += share * share / math.Max(float64(h.Count[i]), 1)
		}
	}
	return SkewSummary{
		Mean:    h.Mean(),
		Max:     h.Max(),
		P99:     h.Quantile(0.99),
		Gini:    h.Gini(),
		HHIndex: hh,
	}
}
