package powerlaw

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/gen"
)

func TestFitAlphaRecoversKnownAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, trueAlpha := range []float64{2.2, 2.5, 3.0} {
		s, err := NewSampler(trueAlpha, 1)
		if err != nil {
			t.Fatal(err)
		}
		samples := s.DrawN(rng, 30000)
		alpha, _, err := FitAlpha(samples, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(alpha-trueAlpha) > 0.06 {
			t.Errorf("alpha=%.1f: MLE %.3f off by more than 0.06", trueAlpha, alpha)
		}
	}
}

func TestFitAlphaErrors(t *testing.T) {
	if _, _, err := FitAlpha([]int64{5}, 1); err == nil {
		t.Error("single sample must fail")
	}
	if _, _, err := FitAlpha([]int64{5, 6}, 0); err == nil {
		t.Error("xmin=0 must fail")
	}
	if _, _, err := FitAlpha([]int64{1, 2, 3}, 100); err == nil {
		t.Error("xmin above all samples must fail")
	}
}

func TestFitTailDetectsXMin(t *testing.T) {
	// Power law from xmin=4 with uniform noise below: the KS scan should
	// recover a cutoff near 4.
	rng := rand.New(rand.NewSource(11))
	s, err := NewSampler(2.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	samples := s.DrawN(rng, 20000)
	for i := 0; i < 8000; i++ {
		samples = append(samples, int64(rng.Intn(3))+1) // noise in {1,2,3}
	}
	fit, err := FitTail(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XMin < 3 || fit.XMin > 6 {
		t.Errorf("xmin=%d, want near 4 (%v)", fit.XMin, fit)
	}
	if math.Abs(fit.Alpha-2.5) > 0.12 {
		t.Errorf("alpha=%.3f, want near 2.5", fit.Alpha)
	}
}

func TestKSDistanceSmallForTrueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := NewSampler(2.4, 1)
	samples := s.DrawN(rng, 20000)
	ks := KSDistance(samples, 2.4, 1)
	// KS for n samples from the true model concentrates near 1/sqrt(n).
	if ks > 0.02 {
		t.Errorf("KS %.4f too large for true model", ks)
	}
	// And a badly wrong alpha must be visibly worse.
	if bad := KSDistance(samples, 4.0, 1); bad < 5*ks {
		t.Errorf("KS(alpha=4)=%.4f not clearly worse than KS(true)=%.4f", bad, ks)
	}
}

func TestKSDistanceEmptyTail(t *testing.T) {
	if ks := KSDistance([]int64{1, 2}, 2.5, 100); ks != 1 {
		t.Errorf("empty tail KS = %v, want 1", ks)
	}
}

func TestSamplerMeanMatchesZeta(t *testing.T) {
	// E[X] for the zeta distribution with xmin=1 is ζ(α−1)/ζ(α).
	rng := rand.New(rand.NewSource(5))
	alpha := 2.6
	s, _ := NewSampler(alpha, 1)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Draw(rng))
	}
	want := bound.PowerLawMeanDegree(alpha)
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("sample mean %.3f, want %.3f (±5%%)", got, want)
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0.9, 1); err == nil {
		t.Error("alpha<=1 must fail")
	}
	if _, err := NewSampler(2.5, 0); err == nil {
		t.Error("xmin<1 must fail")
	}
}

func TestSamplerRespectsXMin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, _ := NewSampler(2.2, 7)
	for i := 0; i < 1000; i++ {
		if x := s.Draw(rng); x < 7 {
			t.Fatalf("sample %d below xmin 7", x)
		}
	}
}

func TestFitGraphOnRMAT(t *testing.T) {
	// RMAT graphs are the paper's skewed-graph stand-in; their degree tail
	// must fit a power law with α in the paper's skewed range (roughly 1.5–3.5
	// for Graph500 parameters) and a modest KS distance.
	g := gen.RMAT(13, 16, 42)
	fit, err := FitGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.2 || fit.Alpha > 4.0 {
		t.Errorf("RMAT alpha %.3f outside plausible skewed range (%v)", fit.Alpha, fit)
	}
	if fit.KS > 0.12 {
		t.Errorf("RMAT KS %.4f too large — tail is not power-law-ish (%v)", fit.KS, fit)
	}
}

func TestFitGraphRoadIsNotSkewed(t *testing.T) {
	// A road lattice has near-constant degree: its Gini must be far below an
	// RMAT graph's, which is exactly why the paper treats the two families
	// separately (§7.7).
	road := gen.Road(64, 64, 1)
	rmat := gen.RMAT(12, 16, 1)
	gRoad := NewHistogram(degreesOf(road)).Gini()
	gRMAT := NewHistogram(degreesOf(rmat)).Gini()
	if gRoad > 0.2 {
		t.Errorf("road Gini %.3f unexpectedly skewed", gRoad)
	}
	if gRMAT < gRoad+0.2 {
		t.Errorf("RMAT Gini %.3f not clearly above road %.3f", gRMAT, gRoad)
	}
}

func degreesOf(g interface {
	NumVertices() uint32
	Degree(uint32) int64
}) []int64 {
	out := make([]int64, 0, g.NumVertices())
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > 0 {
			out = append(out, d)
		}
	}
	return out
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]int64{1, 1, 2, 3, 3, 3, 0, -5})
	if h.Total != 6 {
		t.Fatalf("total %d, want 6 (non-positive dropped)", h.Total)
	}
	if h.Max() != 3 {
		t.Errorf("max %d", h.Max())
	}
	if got := h.Mean(); math.Abs(got-13.0/6) > 1e-12 {
		t.Errorf("mean %v", got)
	}
	ccdf := h.CCDF()
	if ccdf[0] != 1 {
		t.Errorf("CCDF at min value = %v, want 1", ccdf[0])
	}
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i] > ccdf[i-1] {
			t.Errorf("CCDF not non-increasing at %d", i)
		}
	}
	if q := h.Quantile(1.0); q != 3 {
		t.Errorf("Quantile(1)=%d", q)
	}
	if q := h.Quantile(0.01); q != 1 {
		t.Errorf("Quantile(0.01)=%d", q)
	}
}

func TestHistogramGiniBounds(t *testing.T) {
	// Uniform degrees: Gini 0. One dominant value: Gini near 1.
	uniform := NewHistogram([]int64{5, 5, 5, 5})
	if g := uniform.Gini(); math.Abs(g) > 1e-9 {
		t.Errorf("uniform Gini %v, want 0", g)
	}
	skewed := make([]int64, 1000)
	for i := range skewed {
		skewed[i] = 1
	}
	skewed = append(skewed, 1_000_000)
	if g := NewHistogram(skewed).Gini(); g < 0.9 {
		t.Errorf("extreme-skew Gini %v, want > 0.9", g)
	}
}

func TestGiniInvariantUnderOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]int64, len(raw))
		for i, x := range raw {
			a[i] = int64(x%100) + 1
		}
		g1 := NewHistogram(a).Gini()
		sort.Slice(a, func(i, j int) bool { return a[i] > a[j] })
		g2 := NewHistogram(a).Gini()
		return math.Abs(g1-g2) < 1e-9 && g1 >= -1e-12 && g1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitTailErrors(t *testing.T) {
	if _, err := FitTail([]int64{1, 2, 3}); err == nil {
		t.Error("too few samples must fail")
	}
	same := make([]int64, 50)
	for i := range same {
		same[i] = 4
	}
	if _, err := FitTail(same); err == nil {
		t.Error("single distinct value must fail")
	}
}
