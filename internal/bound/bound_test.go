package bound

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZetaAgainstKnownValues(t *testing.T) {
	cases := []struct {
		s, q, want float64
	}{
		{2, 1, math.Pi * math.Pi / 6}, // ζ(2) = π²/6
		{4, 1, math.Pow(math.Pi, 4) / 90},
		{2, 2, math.Pi*math.Pi/6 - 1}, // Hurwitz shift
	}
	for _, c := range cases {
		got := Zeta(c.s, c.q)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Zeta(%g,%g) = %.9f, want %.9f", c.s, c.q, got, c.want)
		}
	}
}

func TestTable1PaperValues(t *testing.T) {
	// The rows this implementation reproduces near-exactly (see package doc
	// for the Grid/DBH deviation): Random and Distributed NE at |P|=256.
	const parts = 256
	cases := []struct {
		alpha        float64
		random, dneV float64
	}{
		{2.2, 5.88, 2.88},
		{2.4, 3.46, 2.12},
		{2.6, 2.64, 1.88},
		{2.8, 2.23, 1.75},
	}
	for _, c := range cases {
		if got := Random(c.alpha, parts); math.Abs(got-c.random) > 0.08 {
			t.Errorf("Random(α=%g) = %.3f, paper %.2f", c.alpha, got, c.random)
		}
		if got := DNE(c.alpha); math.Abs(got-c.dneV) > 0.01 {
			t.Errorf("DNE(α=%g) = %.3f, paper %.2f", c.alpha, got, c.dneV)
		}
	}
}

func TestTable1Orderings(t *testing.T) {
	// The table's qualitative claim: DNE's bound beats every hash method,
	// more so at small α. Grid beats Random.
	for _, alpha := range []float64{2.2, 2.4, 2.6} {
		d := DNE(alpha)
		r := Random(alpha, 256)
		g := Grid(alpha, 256)
		b := DBH(alpha, 256)
		if d >= r || d >= g || d >= b {
			t.Errorf("α=%g: DNE %.3f must beat Random %.3f, Grid %.3f, DBH %.3f", alpha, d, r, g, b)
		}
		if g >= r {
			t.Errorf("α=%g: Grid %.3f must beat Random %.3f", alpha, g, r)
		}
	}
}

func TestTheorem1Formula(t *testing.T) {
	if got := Theorem1(100, 50, 10); got != 3.2 {
		t.Errorf("Theorem1 = %g, want 3.2", got)
	}
}

func TestQuickTheorem1Monotonicity(t *testing.T) {
	// Property: the bound grows with |E| and |P|, shrinks with |V|.
	f := func(e, v uint16, p uint8) bool {
		ee, vv, pp := int64(e)+1, int64(v)+1, int(p)+1
		b := Theorem1(ee, vv, pp)
		return Theorem1(ee+1, vv, pp) >= b &&
			Theorem1(ee, vv, pp+1) >= b &&
			b > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerLawMeans(t *testing.T) {
	// Discrete zeta mean at α=2.2: ζ(1.2)/ζ(2.2) ≈ 3.7514.
	if m := PowerLawMeanDegree(2.2); math.Abs(m-3.7514) > 0.01 {
		t.Errorf("zeta mean = %.4f, want ≈3.7514", m)
	}
	// Continuous Pareto mean (α−1)/(α−2) at α=2.2 is 6.
	if m := ParetoMeanDegree(2.2); math.Abs(m-6.0) > 1e-12 {
		t.Errorf("pareto mean = %g, want 6", m)
	}
}
