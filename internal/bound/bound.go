// Package bound implements the theoretical replication-factor bounds of §6:
// Theorem 1's general upper bound for Distributed NE and the power-law
// expected upper bounds for Random (1D hash), Grid (2D hash) and DBH from
// Xie et al. (NIPS'14) used in Table 1.
package bound

import "math"

// Theorem1 returns the Theorem-1 upper bound (|E|+|V|+|P|)/|V| on the
// replication factor produced by Distributed NE (single-expansion mode).
func Theorem1(numEdges, numVertices int64, numParts int) float64 {
	return float64(numEdges+numVertices+int64(numParts)) / float64(numVertices)
}

// Zeta computes the Hurwitz zeta function ζ(s, q) = Σ_{k≥0} (k+q)^(−s) by
// direct summation with an Euler–Maclaurin tail correction. For q=1 this is
// the Riemann zeta function.
func Zeta(s, q float64) float64 {
	// The Euler–Maclaurin tail keeps the truncation error below ~N^(−s−3),
	// so a modest N suffices even for s near 1.
	const cutoff = 2e4
	var sum float64
	// Direct terms.
	n := 0.0
	for ; n < cutoff; n++ {
		t := math.Pow(n+q, -s)
		sum += t
		if t < 1e-14*sum && n > 64 {
			n++
			break
		}
	}
	// Euler–Maclaurin tail: ∫_{n+q}^∞ x^−s dx + ½(n+q)^−s + s/12 (n+q)^−s−1.
	x := n + q
	sum += math.Pow(x, 1-s)/(s-1) - 0.5*math.Pow(x, -s) + s/12*math.Pow(x, -s-1)
	return sum
}

// PowerLawMeanDegree returns E[d] for the discrete power law
// Pr[d] = d^(−alpha)/ζ(alpha,1) with dmin = 1 (Clauset et al. formulation):
// E[d] = ζ(alpha−1,1)/ζ(alpha,1).
func PowerLawMeanDegree(alpha float64) float64 {
	return Zeta(alpha-1, 1) / Zeta(alpha, 1)
}

// DNE returns Distributed NE's expected upper bound on a power-law graph with
// scaling parameter alpha (Table 1):
//
//	E[UB] ≈ E[|E|/|V|] + 1 = ½·ζ(α−1,1)/ζ(α,1) + 1,
//
// assuming |P|/|V| ≈ 0.
func DNE(alpha float64) float64 {
	return 0.5*PowerLawMeanDegree(alpha) + 1
}

// ParetoMeanDegree is the mean degree E[d] = (α−1)/(α−2) of the continuous
// Pareto distribution with dmin = 1. Table 1's hash-method rows (taken from
// Xie et al., NIPS'14) are computed on this continuous model — the VLDB
// paper's Random row equals |P|(1−(1−1/|P|)^{E[d]}) to three digits — whereas
// its Distributed-NE row uses the discrete zeta mean; we follow each source.
func ParetoMeanDegree(alpha float64) float64 {
	return (alpha - 1) / (alpha - 2)
}

// Random returns the Table-1 upper bound on the replication factor of
// 1D-hash (Random) partitioning on a power-law graph:
//
//	RF ≤ |P| · (1 − (1−1/|P|)^{E[d]}), E[d] = (α−1)/(α−2).
//
// A vertex's E[d] incident edges land on independent uniform partitions; the
// bound counts the expected number of distinct ones.
func Random(alpha float64, numParts int) float64 {
	p := float64(numParts)
	return p * (1 - math.Pow(1-1/p, ParetoMeanDegree(alpha)))
}

// Grid returns the Table-1 upper bound for 2D-hash (Grid) partitioning with
// an s×s grid, s = √|P|. A vertex's edges are confined to its grid row and
// column (2s−1 cells): each edge lands in one of the 2s−2 non-corner cells
// with probability 1/(2s) each, or covers the shared corner cell via either
// side:
//
//	RF ≤ (2s−2)(1 − (1−1/(2s))^{E[d]}) + (1 − (1−1/s)^{E[d]}).
//
// This derivation tracks the paper's Grid row to within ~15% (the paper
// evaluates the original bound of [49], whose constants differ slightly);
// the ordering Grid < Random it is cited for always holds.
func Grid(alpha float64, numParts int) float64 {
	s := math.Sqrt(float64(numParts))
	m := ParetoMeanDegree(alpha)
	return (2*s-2)*(1-math.Pow(1-1/(2*s), m)) + (1 - math.Pow(1-1/s, m))
}

// DBH returns the Table-1 upper bound for degree-based hashing. An edge is
// hashed by its lower-degree endpoint, so for a vertex of mean degree E[d]
// only the fraction κ = Pr[neighbor degree < E[d]] of its edges is hashed by
// the other side and scatters it across partitions; the rest pin to its own
// hash:
//
//	RF ≤ |P| · (1 − (1−1/|P|)^{κ·E[d]}), κ = 1 − E[d]^{−(α−1)}.
//
// The paper's DBH row (from [49], Theorem 4) runs ~10% above this form;
// orderings match except that at α = 2.8 DBH and Distributed NE are within
// 2% of each other in both versions.
func DBH(alpha float64, numParts int) float64 {
	p := float64(numParts)
	m := ParetoMeanDegree(alpha)
	kappa := 1 - math.Pow(m, -(alpha-1))
	return p * (1 - math.Pow(1-1/p, kappa*m))
}
