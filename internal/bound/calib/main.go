// Command calib prints the Table-1 bounds next to the paper's values.
package main

import (
	"fmt"

	"github.com/distributedne/dne/internal/bound"
)

func main() {
	alphas := []float64{2.2, 2.4, 2.6, 2.8}
	paper := map[string][]float64{
		"Random": {5.88, 3.46, 2.64, 2.23},
		"Grid":   {4.82, 3.13, 2.47, 2.13},
		"DBH":    {5.54, 3.19, 2.42, 2.05},
		"D.NE":   {2.88, 2.12, 1.88, 1.75},
	}
	for _, m := range []string{"Random", "Grid", "DBH", "D.NE"} {
		fmt.Printf("%-8s", m)
		for i, a := range alphas {
			var v float64
			switch m {
			case "Random":
				v = bound.Random(a, 256)
			case "Grid":
				v = bound.Grid(a, 256)
			case "DBH":
				v = bound.DBH(a, 256)
			case "D.NE":
				v = bound.DNE(a)
			}
			fmt.Printf("  %6.3f(paper %4.2f)", v, paper[m][i])
		}
		fmt.Println()
	}
}
