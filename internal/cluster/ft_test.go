package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sendUntilKilled drives non-blocking sends over a fault-wrapped comm until
// the injected kill fires, returning the op count at death (0 = never
// killed). In-process sends never block, so the schedule is evaluated free
// of any cross-rank timing.
func sendUntilKilled(comm Comm, cfg FaultConfig, maxOps int) (killedAt uint64) {
	f := NewFault(comm, cfg)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*ConnLostError); !ok {
				panic(r)
			}
			killedAt = f.Ops()
		}
	}()
	to := (comm.Rank() + 1) % comm.Size()
	for i := 0; i < maxOps; i++ {
		f.Send(to, TagUser, Int64Body(0))
	}
	return 0
}

func TestFaultScheduleIsDeterministic(t *testing.T) {
	// The same (seed, rank) schedule must kill at the same op on every run —
	// that reproducibility is what the recovery tests build on. Different
	// ranks under the same seed must not all die at the same op.
	seeds := []int64{1, 7, 42, 1001}
	for _, seed := range seeds {
		var first []uint64
		for trial := 0; trial < 3; trial++ {
			c := New(3)
			got := make([]uint64, 3)
			var wg sync.WaitGroup
			for rank := 0; rank < 3; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					got[rank] = sendUntilKilled(c.Node(rank), FaultConfig{Seed: seed, KillRate: 0.02}, 100000)
				}(rank)
			}
			wg.Wait()
			for rank, op := range got {
				if op == 0 {
					t.Fatalf("seed %d rank %d: kill never fired in 100000 ops at rate 0.02", seed, rank)
				}
			}
			if trial == 0 {
				first = got
				if first[0] == first[1] && first[1] == first[2] {
					t.Fatalf("seed %d: all ranks killed at the same op %d — schedule ignores rank", seed, first[0])
				}
				continue
			}
			for rank := range got {
				if got[rank] != first[rank] {
					t.Fatalf("seed %d rank %d: trial %d killed at op %d, trial 0 at %d",
						seed, rank, trial, got[rank], first[rank])
				}
			}
		}
	}
}

func TestFaultKillAtOpFiresExactly(t *testing.T) {
	c := New(2)
	var wg sync.WaitGroup
	got := make([]uint64, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*ConnLostError); !ok {
						panic(r)
					}
				}
			}()
			comm := c.Node(rank)
			if rank == 1 {
				f := NewFault(comm, FaultConfig{KillAtOp: 5})
				// Propagate to rank 0 so it does not block on the dead peer.
				f.OnKill = func(err error) { c.FailAll(err) }
				defer func() { got[1] = f.Ops() }()
				comm = f
			}
			for i := 0; i < 10; i++ {
				AllGatherSum(comm, int64(i))
			}
		}(rank)
	}
	wg.Wait()
	if got[1] != 5 {
		t.Fatalf("rank 1 killed at op %d, want exactly 5", got[1])
	}
}

func TestFaultMatrixWholeMeshTeardown(t *testing.T) {
	// Matrix of (seed, killed rank): the injected kill is propagated to every
	// rank via FailAll — the in-process mirror of the TCP router's closeAll —
	// and every rank must observe ConnLostError, never hang or corrupt.
	const parts = 4
	for _, seed := range []int64{3, 9, 27} {
		for victim := 0; victim < parts; victim++ {
			c := New(parts)
			var lost atomic.Int64
			var wg sync.WaitGroup
			for rank := 0; rank < parts; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*ConnLostError); !ok {
								panic(r)
							}
							lost.Add(1)
						}
					}()
					comm := c.Node(rank)
					if rank == victim {
						f := NewFault(comm, FaultConfig{Seed: seed, KillAtOp: 10 + uint64(seed)})
						f.OnKill = func(err error) { c.FailAll(err) }
						comm = f
					}
					for i := 0; i < 100; i++ {
						AllGatherSum(comm, int64(i))
					}
				}(rank)
			}
			wg.Wait()
			if got := lost.Load(); got != parts {
				t.Fatalf("seed %d victim %d: %d/%d ranks observed the teardown", seed, victim, got, parts)
			}
		}
	}
}

func TestFaultDelaysPreserveResults(t *testing.T) {
	// Injected delays reorder timing but not semantics: collectives still
	// produce exact results.
	const parts = 3
	c := New(parts)
	var wg sync.WaitGroup
	errs := make([]error, parts)
	for rank := 0; rank < parts; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			f := NewFault(c.Node(rank), FaultConfig{Seed: 11, DelayRate: 0.3, MaxDelay: 2 * time.Millisecond})
			for i := 0; i < 20; i++ {
				if sum := AllGatherSum(f, int64(rank)); sum != 3 {
					errs[rank] = errors.New("wrong sum under delay injection")
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestDialRetrySurvivesInjectedFailures(t *testing.T) {
	addr, wait, err := StartRouter("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultConfig{Seed: 5, DialFailRate: 1, MaxDialFails: 3}
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			retries := 0
			p := pol
			p.OnRetry = func(int, error) { retries++ }
			node, err := DialTCPRetry(context.Background(), addr, rank, 2,
				p, DialOptions{Dial: fc.Dialer(rank)})
			if err != nil {
				errs[rank] = err
				return
			}
			if sum := AllGatherSum(node, int64(rank)); sum != 1 {
				errs[rank] = errors.New("wrong sum after retried dial")
			}
			if retries < 3 {
				errs[rank] = errors.New("expected at least 3 retries against the failing dialer")
			}
			node.Close()
		}(rank)
	}
	wg.Wait()
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestDialRetryGivesUp(t *testing.T) {
	fc := FaultConfig{Seed: 5, DialFailRate: 1} // every attempt fails
	_, err := DialTCPRetry(context.Background(), "127.0.0.1:1", 0, 2,
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		DialOptions{Dial: fc.Dialer(0)})
	if err == nil {
		t.Fatal("dial against a permanently failing dialer succeeded")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("error should wrap the last attempt's cause, got: %v", err)
	}
}

// tcpGeneration runs one mesh generation: every live rank dials with retry
// and runs fn; the rank listed in abortAt aborts its connection at the given
// collective round, and every other rank is expected to observe the loss.
func TestTCPRejoinResumesCollectives(t *testing.T) {
	const size = 3
	addr, wait, err := StartRouterOpts("127.0.0.1:0", size, RouterOptions{
		MaxRejoins:   2,
		RejoinWindow: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				// Generation 0: all ranks join, run one collective, then rank 1
				// crashes (Abort = close without Bye).
				node, err := DialTCPRetry(context.Background(), addr, rank, size, pol, DialOptions{})
				if err != nil {
					return err
				}
				lost := func() (lost bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(*ConnLostError); !ok {
								panic(r)
							}
							lost = true
						}
					}()
					for i := 0; ; i++ {
						if sum := AllGatherSum(node, int64(rank)); sum != 3 {
							return false
						}
						if rank == 1 && i == 0 {
							node.Abort()
							return true
						}
					}
				}()
				if !lost {
					return errors.New("never observed the generation-0 teardown")
				}
				node.Abort()
				// Generation 1: every rank re-dials — the crashed rank's
				// restart and the survivors' rejoin look identical.
				node, err = DialTCPRetry(context.Background(), addr, rank, size, pol, DialOptions{})
				if err != nil {
					return err
				}
				for i := 0; i < 5; i++ {
					if sum := AllGatherSum(node, int64(rank)); sum != 3 {
						return errors.New("wrong sum after rejoin")
					}
				}
				return node.Close()
			}()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if globalFT.meshRebuilds.Load() == 0 {
		t.Error("mesh rebuild counter never moved")
	}
}

func TestTCPConcurrentTeardownNoDeadlock(t *testing.T) {
	// Several ranks abort at once mid-collective; the router must tear the
	// mesh down and every surviving rank must observe ConnLostError promptly
	// (no wedged goroutines) — run under -race in CI.
	const size = 4
	addr, wait, err := StartRouterOpts("127.0.0.1:0", size, RouterOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outcomes := make([]string, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := DialTCP(addr, rank, size)
			if err != nil {
				outcomes[rank] = err.Error()
				return
			}
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*ConnLostError); !ok {
						panic(r)
					}
					outcomes[rank] = "lost"
					node.Abort()
				}
			}()
			if sum := AllGatherSum(node, 1); sum != size {
				outcomes[rank] = "bad sum"
				return
			}
			if rank%2 == 1 {
				node.Abort() // ranks 1 and 3 crash simultaneously
				outcomes[rank] = "aborted"
				return
			}
			// Survivors block in the next collective until the teardown.
			AllGatherSum(node, 1)
			outcomes[rank] = "completed"
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("teardown deadlocked")
	}
	if err := wait(); err == nil {
		t.Error("router reported success despite aborted ranks")
	}
	for rank := 0; rank < size; rank += 2 {
		if outcomes[rank] != "lost" {
			t.Errorf("surviving rank %d: %q, want lost", rank, outcomes[rank])
		}
	}
}

func TestRouterHeartbeatTimeoutKillsSilentPeer(t *testing.T) {
	// A worker that holds its connection open but never sends (wedged) must
	// be detected by the router's read deadline and the mesh torn down.
	const size = 2
	addr, wait, err := StartRouterOpts("127.0.0.1:0", size, RouterOptions{
		HeartbeatTimeout: 300 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hb := DialOptions{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 300 * time.Millisecond}
	var wg sync.WaitGroup
	var healthyLost atomic.Bool
	wg.Add(2)
	go func() { // rank 0: heartbeats, blocks on a receive that never comes
		defer wg.Done()
		node, err := DialTCPOpts(context.Background(), addr, 0, size, hb)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*ConnLostError); !ok {
					panic(r)
				}
				healthyLost.Store(true)
				node.Abort()
			}
		}()
		node.Recv(TagUser)
	}()
	go func() { // rank 1: wedged — connected, silent, no heartbeats
		defer wg.Done()
		node, err := DialTCPContext(context.Background(), addr, 1, size)
		if err != nil {
			t.Error(err)
			return
		}
		time.Sleep(2 * time.Second)
		node.Abort()
	}()
	wg.Wait()
	if err := wait(); err == nil {
		t.Error("router reported success despite a wedged peer")
	}
	if !healthyLost.Load() {
		t.Error("healthy rank never observed the wedged peer's teardown")
	}
	if globalFT.heartbeatTimeouts.Load() == 0 {
		t.Error("heartbeat timeout counter never moved")
	}
}

func TestHeartbeatsKeepIdleMeshAlive(t *testing.T) {
	// Both sides heartbeat: an idle-but-healthy mesh must survive several
	// timeout windows and then complete a collective.
	const size = 2
	addr, wait, err := StartRouterOpts("127.0.0.1:0", size, RouterOptions{
		HeartbeatTimeout: 200 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hb := DialOptions{HeartbeatInterval: 50 * time.Millisecond, HeartbeatTimeout: 200 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := DialTCPOpts(context.Background(), addr, rank, size, hb)
			if err != nil {
				errs[rank] = err
				return
			}
			time.Sleep(time.Second) // five timeout windows of application silence
			if sum := AllGatherSum(node, int64(rank)); sum != 1 {
				errs[rank] = errors.New("wrong sum after idle period")
				return
			}
			errs[rank] = node.Close()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}
