package cluster

// Collectives built from point-to-point messages so that their communication
// volume is accounted like everything else. All machines must call the same
// collective in the same order (standard MPI contract).

// AllGatherSum returns the sum of x across all machines, at every machine.
// Implemented as a reduce-to-root followed by a broadcast.
func AllGatherSum(c Comm, x int64) int64 {
	if c.Size() == 1 {
		return x
	}
	if c.Rank() == 0 {
		sum := x
		for i := 1; i < c.Size(); i++ {
			m := c.Recv(tagReduce)
			sum += int64(m.Body.(Int64Body))
		}
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64Body(sum))
		}
		return sum
	}
	c.Send(0, tagReduce, Int64Body(x))
	return int64(c.Recv(tagBcast).Body.(Int64Body))
}

// AllGatherMax returns the maximum of x across all machines, at every machine.
func AllGatherMax(c Comm, x int64) int64 {
	if c.Size() == 1 {
		return x
	}
	if c.Rank() == 0 {
		max := x
		for i := 1; i < c.Size(); i++ {
			m := c.Recv(tagReduce)
			if v := int64(m.Body.(Int64Body)); v > max {
				max = v
			}
		}
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64Body(max))
		}
		return max
	}
	c.Send(0, tagReduce, Int64Body(x))
	return int64(c.Recv(tagBcast).Body.(Int64Body))
}

// Int64SliceBody carries a vector of int64 (per-partition sizes etc.).
type Int64SliceBody []int64

// WireSize implements Body.
func (b Int64SliceBody) WireSize() int { return 8 * len(b) }

// AllGatherSumVec element-wise sums vector x across machines; every machine
// receives the full sum vector. x is not mutated.
func AllGatherSumVec(c Comm, x []int64) []int64 {
	if c.Size() == 1 {
		out := make([]int64, len(x))
		copy(out, x)
		return out
	}
	if c.Rank() == 0 {
		sum := make([]int64, len(x))
		copy(sum, x)
		for i := 1; i < c.Size(); i++ {
			m := c.Recv(tagReduce)
			for j, v := range m.Body.(Int64SliceBody) {
				sum[j] += v
			}
		}
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64SliceBody(sum))
		}
		return sum
	}
	c.Send(0, tagReduce, Int64SliceBody(x))
	in := c.Recv(tagBcast).Body.(Int64SliceBody)
	out := make([]int64, len(in))
	copy(out, in)
	return out
}
