package cluster

import (
	"testing"
	"time"
)

func TestEstimateComponents(t *testing.T) {
	m := CostModel{Latency: time.Microsecond, BandwidthBytesPerSec: 1e9}
	// 1000 messages = 1ms latency; 1e9 bytes = 1s transfer; 10 barriers on
	// 8 machines = 10·3µs.
	got := m.Estimate(1000, 1e9, 10, 8)
	want := time.Millisecond + time.Second + 30*time.Microsecond
	if got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
}

func TestEstimateSingleMachineFree(t *testing.T) {
	if d := InfiniBandEDR().Estimate(1e6, 1e12, 100, 1); d != 0 {
		t.Fatalf("single machine network time %v, want 0", d)
	}
}

func TestInterconnectOrdering(t *testing.T) {
	// The same traffic must cost more on 10GbE than on InfiniBand.
	ib := InfiniBandEDR().Estimate(1e5, 1e9, 50, 64)
	ge := TenGbE().Estimate(1e5, 1e9, 50, 64)
	if ge <= ib {
		t.Fatalf("10GbE %v not above InfiniBand %v", ge, ib)
	}
}

func TestEstimateMonotoneInTraffic(t *testing.T) {
	m := InfiniBandEDR()
	small := m.Estimate(100, 1e6, 5, 16)
	big := m.Estimate(200, 2e6, 5, 16)
	if big <= small {
		t.Fatalf("doubling traffic did not raise the estimate (%v vs %v)", big, small)
	}
}
