package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// recvOrConnLost runs fn and converts a *ConnLostError panic into an error;
// any other panic is re-raised.
func recvOrConnLost(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if cl, ok := r.(*ConnLostError); ok {
				err = cl
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func TestTCPRecvHonorsContextCancellation(t *testing.T) {
	addr, wait, err := StartRouter("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	node, err := DialTCPContext(ctx, addr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		got <- recvOrConnLost(func() { node.Recv(TagUser) })
	}()
	// Nothing will ever arrive; the cancel must wake the blocked Recv.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("Recv returned a message out of nowhere")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Recv failed with %v, want context.Canceled in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after cancellation")
	}
	_ = wait // router sees an abrupt close; its error is irrelevant here
}

func TestTCPRecvHonorsContextDeadline(t *testing.T) {
	addr, _, err := StartRouter("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	node, err := DialTCPContext(ctx, addr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recvErr := recvOrConnLost(func() { node.Recv(TagUser) })
	if recvErr == nil {
		t.Fatal("Recv returned a message out of nowhere")
	}
	if !errors.Is(recvErr, context.DeadlineExceeded) {
		t.Fatalf("Recv failed with %v, want DeadlineExceeded in the chain", recvErr)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline honored only after %v", waited)
	}
}

// TestTCPDeadRankUnblocksSurvivors kills one rank mid-superstep — an abrupt
// connection close with no goodbye, as a crashed process would — and
// requires every surviving rank's blocked Recv to fail promptly instead of
// waiting forever: the router tears the mesh down, which fails every
// worker's mailbox.
func TestTCPDeadRankUnblocksSurvivors(t *testing.T) {
	const size = 3
	const victim = 2
	addr, wait, err := StartRouter("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := DialTCP(addr, rank, size)
			if err != nil {
				results[rank] = err
				return
			}
			results[rank] = recvOrConnLost(func() {
				// Superstep 1 completes normally on all ranks.
				for q := 0; q < size; q++ {
					node.Send(q, TagUser, Int64Body(1))
				}
				node.RecvN(TagUser, size)
				// Superstep 2: the victim dies before sending; the others
				// send and then block in RecvN on messages that will never
				// arrive.
				if rank == victim {
					node.Abort()
					return
				}
				for q := 0; q < size; q++ {
					node.Send(q, TagUser, Int64Body(2))
				}
				node.RecvN(TagUser, size)
			})
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("survivors still blocked 10s after a rank died")
	}
	for rank, err := range results {
		if rank == victim {
			if err != nil {
				t.Errorf("victim failed before dying: %v", err)
			}
			continue
		}
		var cl *ConnLostError
		if !errors.As(err, &cl) {
			t.Errorf("rank %d: got %v, want ConnLostError", rank, err)
		}
	}
	if err := wait(); err == nil {
		t.Error("router wait() reported success despite a dead rank")
	}
}
