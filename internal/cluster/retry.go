package cluster

import (
	"context"
	"fmt"
	"time"
)

// RetryPolicy shapes DialTCPRetry's capped exponential backoff. The zero
// value gives 10 attempts starting at 50ms, doubling to a 2s cap, with
// deterministic jitter derived from Seed (so two ranks with different seeds
// do not dial in lock-step, yet a run is reproducible).
type RetryPolicy struct {
	MaxAttempts int           // total dial attempts; <=0 means 10
	BaseDelay   time.Duration // first backoff; <=0 means 50ms
	MaxDelay    time.Duration // backoff cap; <=0 means 2s
	Seed        int64         // jitter seed
	// OnRetry, when non-nil, observes each failed attempt before its backoff.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the pause before attempt i (0-based): BaseDelay·2^i capped
// at MaxDelay, plus deterministic jitter in [0, delay/2).
func (p RetryPolicy) backoff(i int) time.Duration {
	d := p.BaseDelay
	for k := 0; k < i && d < p.MaxDelay; k++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if half := int64(d / 2); half > 0 {
		d += time.Duration(int64(splitmix64(uint64(p.Seed)^uint64(i)*0x9e3779b97f4a7c15)) % half)
	}
	return d
}

// DialTCPRetry dials the router with capped exponential backoff + jitter:
// transient dial failures (the router is restarting, the rejoin window has
// not opened yet, an injected fault) are retried up to pol.MaxAttempts times
// before the last error is returned. ctx bounds the whole sequence and is
// also the node's watchdog context, exactly as in DialTCPContext.
func DialTCPRetry(ctx context.Context, addr string, rank, size int, pol RetryPolicy, o DialOptions) (*TCPNode, error) {
	pol = pol.withDefaults()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			globalFT.dialRetries.Add(1)
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("cluster: dial retry: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(pol.backoff(attempt - 1)):
			}
		}
		n, err := DialTCPOpts(ctx, addr, rank, size, o)
		if err == nil {
			return n, nil
		}
		lastErr = err
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, err)
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("cluster: dial retry: %w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return nil, fmt.Errorf("cluster: dial retry: %d attempts exhausted: %w", pol.MaxAttempts, lastErr)
}
