package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Comm wrappers used by tests and ablation benches. Algorithms written
// against Comm cannot tell a wrapped communicator from a bare one, so these
// wrappers double as executable proof that the algorithms depend only on the
// message-passing contract.

// Instrumented wraps a Comm and counts sent messages and bytes per tag.
// It is used by the ablation benches (multicast fanout) and by tests that
// assert traffic shapes.
type Instrumented struct {
	Comm
	mu    sync.Mutex
	msgs  map[Tag]int64
	bytes map[Tag]int64
}

// Instrument wraps c.
func Instrument(c Comm) *Instrumented {
	return &Instrumented{Comm: c, msgs: make(map[Tag]int64), bytes: make(map[Tag]int64)}
}

// Send implements Comm.
func (w *Instrumented) Send(to int, tag Tag, body Body) {
	if to != w.Rank() {
		w.mu.Lock()
		w.msgs[tag]++
		w.bytes[tag] += int64(headerBytes + body.WireSize())
		w.mu.Unlock()
	}
	w.Comm.Send(to, tag, body)
}

// TagMessages returns the number of remote messages sent under tag.
func (w *Instrumented) TagMessages(tag Tag) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.msgs[tag]
}

// TagBytes returns the number of remote bytes sent under tag.
func (w *Instrumented) TagBytes(tag Tag) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes[tag]
}

// Chaos wraps a Comm and injects a pseudo-random pause before each remote
// send, scrambling the interleaving of messages *across* senders while
// preserving each sender's own program order (sends are forwarded by a single
// FIFO worker, so per-sender Seq order is untouched). Correct algorithms must
// be insensitive to cross-sender arrival order — receivers re-sort by
// (From, Seq) — and Chaos turns that requirement into something tests can
// exercise: a run under Chaos must produce bit-identical results.
//
// Note that a barrier-synchronised algorithm never has a send outstanding
// when it blocks in a collective on the same Comm, because Send below only
// returns after the inner Send completed for self-sends and enqueues
// asynchronously otherwise; the worker preserves completion order, so any
// Recv that must see the message will still block until it arrives.
type Chaos struct {
	Comm
	queue chan queued
	done  chan struct{}
}

type queued struct {
	to   int
	tag  Tag
	body Body
}

// NewChaos wraps c with pauses uniform in [0, maxDelay) before each remote
// send. Call Close after the algorithm finishes to stop the worker.
func NewChaos(c Comm, seed int64, maxDelay time.Duration) *Chaos {
	w := &Chaos{
		Comm:  c,
		queue: make(chan queued, 1024),
		done:  make(chan struct{}),
	}
	rng := rand.New(rand.NewSource(seed))
	go func() {
		defer close(w.done)
		for q := range w.queue {
			if maxDelay > 0 {
				time.Sleep(time.Duration(rng.Int63n(int64(maxDelay))))
			}
			w.Comm.Send(q.to, q.tag, q.body)
		}
	}()
	return w
}

// Send implements Comm: remote messages are forwarded by the FIFO worker
// after a random pause. Self-sends stay synchronous (free local work).
func (w *Chaos) Send(to int, tag Tag, body Body) {
	if to == w.Rank() {
		w.Comm.Send(to, tag, body)
		return
	}
	w.queue <- queued{to: to, tag: tag, body: body}
}

// Close stops the worker after the queue drains.
func (w *Chaos) Close() {
	close(w.queue)
	<-w.done
}
