package cluster

// Extended collectives. Like the core ones, every collective is built from
// point-to-point messages so its traffic is accounted, and all machines must
// call the same collective in the same order.

// AllGatherMin returns the minimum of x across all machines, at every machine.
func AllGatherMin(c Comm, x int64) int64 {
	if c.Size() == 1 {
		return x
	}
	if c.Rank() == 0 {
		min := x
		for i := 1; i < c.Size(); i++ {
			m := c.Recv(tagReduce)
			if v := int64(m.Body.(Int64Body)); v < min {
				min = v
			}
		}
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64Body(min))
		}
		return min
	}
	c.Send(0, tagReduce, Int64Body(x))
	return int64(c.Recv(tagBcast).Body.(Int64Body))
}

// Bcast distributes root's value to every machine; non-root inputs are
// ignored.
func Bcast(c Comm, root int, x int64) int64 {
	if c.Size() == 1 {
		return x
	}
	if c.Rank() == root {
		for i := 0; i < c.Size(); i++ {
			if i != root {
				c.Send(i, tagBcast, Int64Body(x))
			}
		}
		return x
	}
	return int64(c.Recv(tagBcast).Body.(Int64Body))
}

// Gather collects one value per machine at root, indexed by rank. Non-root
// machines receive nil.
func Gather(c Comm, root int, x int64) []int64 {
	if c.Rank() == root {
		out := make([]int64, c.Size())
		out[root] = x
		for i := 0; i < c.Size()-1; i++ {
			m := c.Recv(tagReduce)
			out[m.From] = int64(m.Body.(Int64Body))
		}
		return out
	}
	c.Send(root, tagReduce, Int64Body(x))
	return nil
}

// AllGather collects one value per machine at every machine, indexed by rank
// (gather to rank 0, then broadcast the vector).
func AllGather(c Comm, x int64) []int64 {
	vec := Gather(c, 0, x)
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64SliceBody(vec))
		}
		return vec
	}
	in := c.Recv(tagBcast).Body.(Int64SliceBody)
	out := make([]int64, len(in))
	copy(out, in)
	return out
}

// ExclusiveScanSum returns the exclusive prefix sum of x over ranks: machine
// r receives Σ_{q<r} x_q. Implemented by an all-gather; the result at rank 0
// is 0.
func ExclusiveScanSum(c Comm, x int64) int64 {
	vec := AllGather(c, x)
	var s int64
	for r := 0; r < c.Rank(); r++ {
		s += vec[r]
	}
	return s
}

// AllToAll performs a personalized exchange: out[q] is this machine's vector
// for machine q; the result's element [q] is the vector machine q sent here.
// out must have length Size().
func AllToAll(c Comm, out [][]int64) [][]int64 {
	size := c.Size()
	if len(out) != size {
		panic("cluster: AllToAll out length must equal Size()")
	}
	for q := 0; q < size; q++ {
		c.Send(q, tagReduce, Int64SliceBody(out[q]))
	}
	in := make([][]int64, size)
	for _, m := range c.RecvN(tagReduce, size) {
		v := m.Body.(Int64SliceBody)
		cp := make([]int64, len(v))
		copy(cp, v)
		in[m.From] = cp
	}
	return in
}

// AllGatherMaxVec element-wise maximizes vector x across machines; every
// machine receives the full max vector. x is not mutated.
func AllGatherMaxVec(c Comm, x []int64) []int64 {
	if c.Size() == 1 {
		out := make([]int64, len(x))
		copy(out, x)
		return out
	}
	if c.Rank() == 0 {
		max := make([]int64, len(x))
		copy(max, x)
		for i := 1; i < c.Size(); i++ {
			m := c.Recv(tagReduce)
			for j, v := range m.Body.(Int64SliceBody) {
				if v > max[j] {
					max[j] = v
				}
			}
		}
		for i := 1; i < c.Size(); i++ {
			c.Send(i, tagBcast, Int64SliceBody(max))
		}
		return max
	}
	c.Send(0, tagReduce, Int64SliceBody(x))
	in := c.Recv(tagBcast).Body.(Int64SliceBody)
	out := make([]int64, len(in))
	copy(out, in)
	return out
}

// AllGatherAnd returns the logical AND of every machine's flag (consensus
// "are we all done?"), at every machine.
func AllGatherAnd(c Comm, flag bool) bool {
	x := int64(1)
	if !flag {
		x = 0
	}
	return AllGatherMin(c, x) == 1
}

// AllGatherOr returns the logical OR of every machine's flag, at every
// machine.
func AllGatherOr(c Comm, flag bool) bool {
	x := int64(0)
	if flag {
		x = 1
	}
	return AllGatherMax(c, x) == 1
}
