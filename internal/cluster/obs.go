package cluster

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"github.com/distributedne/dne/internal/obs"
)

// Clusters are transient — a partition run builds one, uses it, and drops
// it — so per-cluster Stats vanish with the run. The process-cumulative
// aggregates below survive across runs and are what a serving process
// exposes on /metrics: total bytes/messages by tag class and by sending
// rank. Bumped on the same condition as Stats (remote traffic only; local
// delivery is free, as in the paper's cost model).

// maxObsRanks bounds the per-rank aggregate arrays; ranks at or above the
// bound fold into the final "other" slot so pathological cluster sizes
// can't grow the metric surface.
const maxObsRanks = 64

type commObs struct {
	tagBytes [256]atomic.Int64
	tagMsgs  [256]atomic.Int64
	// index maxObsRanks is the overflow ("other") slot.
	rankBytes [maxObsRanks + 1]atomic.Int64
	rankMsgs  [maxObsRanks + 1]atomic.Int64
}

var globalObs commObs

// ftObs aggregates the fault-tolerance layer's process-cumulative failure
// events: dial retries, router mesh rebuilds, heartbeat timeouts, and the
// faults FaultComm injected on purpose.
type ftObs struct {
	dialRetries       atomic.Int64
	meshRebuilds      atomic.Int64
	heartbeatTimeouts atomic.Int64
	injectedKills     atomic.Int64
	injectedDelays    atomic.Int64
	injectedDialFails atomic.Int64
}

var globalFT ftObs

func (o *commObs) record(tag Tag, rank int, wireBytes int64) {
	o.tagBytes[tag].Add(wireBytes)
	o.tagMsgs[tag].Add(1)
	r := rank
	if r < 0 || r >= maxObsRanks {
		r = maxObsRanks
	}
	o.rankBytes[r].Add(wireBytes)
	o.rankMsgs[r].Add(1)
}

// tagLabel names a tag for exposition: reserved collective tags get their
// role, algorithm tags their offset from TagUser.
func tagLabel(t Tag) string {
	switch t {
	case tagBarrier:
		return "barrier"
	case tagReduce:
		return "reduce"
	case tagBcast:
		return "bcast"
	case tagCollCount:
		return "coll_count"
	case tagCollData:
		return "coll_data"
	}
	return fmt.Sprintf("user_%d", t-TagUser)
}

func rankLabel(r int) string {
	if r == maxObsRanks {
		return "other"
	}
	return strconv.Itoa(r)
}

// RegisterMetrics exposes the process-cumulative communication aggregates
// on reg. Families emit only label sets that have seen traffic, so an idle
// process scrapes clean. Nil registry → no-op.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dne_cluster_bytes_total",
		"Remote bytes sent across all clusters in this process, by message tag (header framing included).",
		func(emit func(v float64, kv ...string)) {
			for t := range globalObs.tagBytes {
				if v := globalObs.tagBytes[t].Load(); v > 0 {
					emit(float64(v), "tag", tagLabel(Tag(t)))
				}
			}
		})
	reg.CounterFunc("dne_cluster_messages_total",
		"Remote messages sent across all clusters in this process, by message tag.",
		func(emit func(v float64, kv ...string)) {
			for t := range globalObs.tagMsgs {
				if v := globalObs.tagMsgs[t].Load(); v > 0 {
					emit(float64(v), "tag", tagLabel(Tag(t)))
				}
			}
		})
	reg.CounterFunc("dne_cluster_rank_bytes_total",
		"Remote bytes sent across all clusters in this process, by sending rank.",
		func(emit func(v float64, kv ...string)) {
			for r := range globalObs.rankBytes {
				if v := globalObs.rankBytes[r].Load(); v > 0 {
					emit(float64(v), "rank", rankLabel(r))
				}
			}
		})
	reg.CounterFunc("dne_cluster_rank_messages_total",
		"Remote messages sent across all clusters in this process, by sending rank.",
		func(emit func(v float64, kv ...string)) {
			for r := range globalObs.rankMsgs {
				if v := globalObs.rankMsgs[r].Load(); v > 0 {
					emit(float64(v), "rank", rankLabel(r))
				}
			}
		})
	reg.CounterFunc("dne_cluster_fault_events_total",
		"Fault-tolerance events in this process: dial retries, router mesh rebuilds, heartbeat timeouts, and deliberately injected faults.",
		func(emit func(v float64, kv ...string)) {
			for _, e := range []struct {
				kind string
				v    int64
			}{
				{"dial_retry", globalFT.dialRetries.Load()},
				{"mesh_rebuild", globalFT.meshRebuilds.Load()},
				{"heartbeat_timeout", globalFT.heartbeatTimeouts.Load()},
				{"injected_kill", globalFT.injectedKills.Load()},
				{"injected_delay", globalFT.injectedDelays.Load()},
				{"injected_dial_failure", globalFT.injectedDialFails.Load()},
			} {
				if e.v > 0 {
					emit(float64(e.v), "kind", e.kind)
				}
			}
		})
}
