package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// Deterministic fault injection. FaultComm wraps a Comm and, following a
// schedule that is a pure function of (seed, rank, op-count), kills the
// transport, delays frames, or (through Dialer) fails dial attempts. Because
// the schedule depends on nothing else — no wall clock, no goroutine
// interleaving — a chaos run is reproducible: the same seed kills the same
// rank at the same operation every time, which is what lets tests assert
// that a faulted run recovers to a bit-identical partitioning.

// ErrInjectedFault marks a failure manufactured by FaultComm or
// FaultConfig.Dialer rather than observed on a real transport.
var ErrInjectedFault = errors.New("cluster: injected fault")

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash used to
// derive per-op fault decisions and backoff jitter deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FaultConfig is a deterministic fault schedule. Rates are per-operation
// probabilities in [0, 1], evaluated against the (Seed, rank, op-count)
// hash; caps bound the total injected faults so a schedule cannot starve a
// run forever.
type FaultConfig struct {
	Seed int64

	// KillRate is the per-op probability that the transport dies (every
	// subsequent op also fails, like a real dead connection). MaxKills caps
	// kills per wrapper; 0 means at most one.
	KillRate float64
	MaxKills int

	// KillAtOp, when non-zero, kills the transport exactly at that op count
	// (1-based), regardless of KillRate — precise single-shot schedules.
	KillAtOp uint64

	// DelayRate is the per-op probability of pausing MaxDelay-bounded time
	// before the op proceeds (deterministic duration, real sleep).
	DelayRate float64
	MaxDelay  time.Duration

	// DialFailRate is the per-attempt probability that Dialer fails an
	// attempt; MaxDialFails caps the total injected dial failures (default 0
	// = unlimited, bound attempts with RetryPolicy instead).
	DialFailRate float64
	MaxDialFails int
}

// roll evaluates a rate against a hash: true when the hash's low 30 bits,
// scaled to [0,1), fall under rate.
func roll(h uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(h&((1<<30)-1))/float64(1<<30) < rate
}

// FaultComm wraps a Comm with the FaultConfig schedule. Like any Comm it is
// owned by a single machine goroutine.
type FaultComm struct {
	Comm
	cfg   FaultConfig
	ops   uint64
	kills int
	dead  error // non-nil once the injected transport death happened

	// OnKill, when non-nil, runs once at the moment of an injected kill,
	// before the panic — the in-process recovery tests use it to fail every
	// rank's mailbox, mirroring the TCP router's whole-mesh teardown.
	OnKill func(err error)
}

// NewFault wraps c with the schedule cfg.
func NewFault(c Comm, cfg FaultConfig) *FaultComm {
	if cfg.KillRate > 0 && cfg.MaxKills <= 0 {
		cfg.MaxKills = 1
	}
	return &FaultComm{Comm: c, cfg: cfg}
}

// step advances the op counter and applies the schedule; it panics
// *ConnLostError* on an injected kill (and on every op after one).
func (f *FaultComm) step(tag Tag) {
	if f.dead != nil {
		panic(&ConnLostError{Tag: tag, Err: f.dead})
	}
	f.ops++
	h := splitmix64(uint64(f.cfg.Seed) ^ uint64(f.Rank()+1)*0x9e3779b97f4a7c15 ^ f.ops*0xbf58476d1ce4e5b9)
	kill := f.cfg.KillAtOp != 0 && f.ops == f.cfg.KillAtOp
	if !kill && f.kills < f.cfg.MaxKills && roll(h, f.cfg.KillRate) {
		kill = true
	}
	if kill {
		f.kills++
		f.dead = fmt.Errorf("%w: rank %d killed at op %d (seed %d)", ErrInjectedFault, f.Rank(), f.ops, f.cfg.Seed)
		globalFT.injectedKills.Add(1)
		if f.OnKill != nil {
			f.OnKill(f.dead)
		}
		panic(&ConnLostError{Tag: tag, Err: f.dead})
	}
	if f.cfg.MaxDelay > 0 && roll(splitmix64(h), f.cfg.DelayRate) {
		globalFT.injectedDelays.Add(1)
		time.Sleep(time.Duration(splitmix64(h^0xd6e8feb8) % uint64(f.cfg.MaxDelay)))
	}
}

// Send implements Comm.
func (f *FaultComm) Send(to int, tag Tag, body Body) {
	f.step(tag)
	f.Comm.Send(to, tag, body)
}

// Recv implements Comm.
func (f *FaultComm) Recv(tag Tag) Message {
	f.step(tag)
	return f.Comm.Recv(tag)
}

// RecvN implements Comm.
func (f *FaultComm) RecvN(tag Tag, k int) []Message {
	f.step(tag)
	return f.Comm.RecvN(tag, k)
}

// TryRecvAll implements Comm.
func (f *FaultComm) TryRecvAll(tag Tag) []Message {
	f.step(tag)
	return f.Comm.TryRecvAll(tag)
}

// Barrier implements Comm.
func (f *FaultComm) Barrier() {
	f.step(tagBarrier)
	f.Comm.Barrier()
}

// Ops returns the number of operations the schedule has evaluated.
func (f *FaultComm) Ops() uint64 { return f.ops }

// Dialer returns a DialOptions.Dial that injects deterministic dial
// failures for the given rank per the DialFailRate schedule, delegating
// successful attempts to a real net.Dialer.
func (cfg FaultConfig) Dialer(rank int) func(ctx context.Context, network, addr string) (net.Conn, error) {
	var attempt uint64
	var injected int
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		attempt++
		h := splitmix64(uint64(cfg.Seed) ^ uint64(rank+1)*0x94d049bb133111eb ^ attempt*0x9e3779b97f4a7c15)
		if (cfg.MaxDialFails <= 0 || injected < cfg.MaxDialFails) && roll(h, cfg.DialFailRate) {
			injected++
			globalFT.injectedDialFails.Add(1)
			return nil, fmt.Errorf("%w: dial attempt %d of rank %d refused (seed %d)", ErrInjectedFault, attempt, rank, cfg.Seed)
		}
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}
}
