package cluster

import (
	"encoding/gob"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestRouterRejectsDuplicateRank(t *testing.T) {
	addr, wait, err := StartRouter("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := DialTCP(addr, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Second hello with the same rank: the router must reject it and wait()
	// must surface the error.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(conn).Encode(frame{From: 0, Hello: true}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	err = wait()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("wait() = %v, want duplicate-rank error", err)
	}
}

func TestRouterRejectsOutOfRangeRank(t *testing.T) {
	addr, wait, err := StartRouter("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(conn).Encode(frame{From: 99, Hello: true}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := wait(); err == nil {
		t.Fatal("wait() accepted an out-of-range rank")
	}
}

func TestRouterRejectsBadHello(t *testing.T) {
	addr, wait, err := StartRouter("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A data frame before any hello.
	if err := gob.NewEncoder(conn).Encode(frame{From: 0, To: 0, Tag: TagUser}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := wait(); err == nil {
		t.Fatal("wait() accepted a connection without a hello")
	}
}

func TestTCPLargePayloadRoundTrip(t *testing.T) {
	// Vectors far beyond one TCP segment must arrive intact and in order.
	const n = 1 << 16
	runTCP(t, 2, func(comm Comm) error {
		if comm.Rank() == 0 {
			big := make(Int64SliceBody, n)
			for i := range big {
				big[i] = int64(i)
			}
			comm.Send(1, TagUser, big)
		} else {
			got := comm.Recv(TagUser).Body.(Int64SliceBody)
			if len(got) != n {
				t.Errorf("len %d", len(got))
			}
			for i, v := range got {
				if v != int64(i) {
					t.Errorf("elem %d = %d", i, v)
					break
				}
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPManySmallMessagesOrdered(t *testing.T) {
	// Per-sender Seq order must survive the router.
	const k = 500
	runTCP(t, 2, func(comm Comm) error {
		if comm.Rank() == 0 {
			for i := 0; i < k; i++ {
				comm.Send(1, TagUser, Int64Body(i))
			}
		} else {
			msgs := comm.RecvN(TagUser, k)
			for i, m := range msgs {
				if int64(m.Body.(Int64Body)) != int64(i) {
					t.Errorf("message %d out of order: %v", i, m.Body)
					break
				}
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPConcurrentSendersToOneReceiver(t *testing.T) {
	const sizeN = 5
	runTCP(t, sizeN, func(comm Comm) error {
		if comm.Rank() != 0 {
			var wg sync.WaitGroup
			// Each worker sends from its own goroutine bursts to rank 0;
			// receiver just needs the right totals.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					comm.Send(0, TagUser, Int64Body(1))
				}
			}()
			wg.Wait()
		} else {
			var total int64
			for _, m := range comm.RecvN(TagUser, 100*(sizeN-1)) {
				total += int64(m.Body.(Int64Body))
			}
			if total != 100*(sizeN-1) {
				t.Errorf("total %d", total)
			}
		}
		comm.Barrier()
		return nil
	})
}
