package cluster

import (
	"slices"
	"testing"
)

func init() { RegisterBody(Uint64SliceBody(nil)) }

// The collectives are exercised over the gob-TCP transport, not just the
// in-process cluster: every rank is a goroutine holding a real TCPNode
// through the loopback router, so serialization, framing and the router's
// forwarding order are all on the hook.

func TestTCPAllGatherFamily(t *testing.T) {
	const size = 4
	runTCP(t, size, func(comm Comm) error {
		r := int64(comm.Rank())
		if got := AllGatherSum(comm, r+1); got != 10 {
			t.Errorf("rank %d: AllGatherSum = %d, want 10", r, got)
		}
		if got := AllGatherMax(comm, r*10); got != 30 {
			t.Errorf("rank %d: AllGatherMax = %d, want 30", r, got)
		}
		if got := AllGatherMin(comm, r*10); got != 0 {
			t.Errorf("rank %d: AllGatherMin = %d, want 0", r, got)
		}
		vec := AllGather(comm, r*r)
		for q := 0; q < size; q++ {
			if vec[q] != int64(q*q) {
				t.Errorf("rank %d: AllGather[%d] = %d", r, q, vec[q])
			}
		}
		if got := AllGatherAnd(comm, true); !got {
			t.Errorf("rank %d: AllGatherAnd(all true) = false", r)
		}
		if got := AllGatherOr(comm, comm.Rank() == 2); !got {
			t.Errorf("rank %d: AllGatherOr(one true) = false", r)
		}
		mvec := make([]int64, size)
		mvec[comm.Rank()] = r + 1
		maxv := AllGatherMaxVec(comm, mvec)
		for q := 0; q < size; q++ {
			if maxv[q] != int64(q+1) {
				t.Errorf("rank %d: AllGatherMaxVec[%d] = %d", r, q, maxv[q])
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPBcastAndScan(t *testing.T) {
	const size = 4
	runTCP(t, size, func(comm Comm) error {
		// Bcast from a non-zero root: only the root's value survives.
		if got := Bcast(comm, 2, int64(100+comm.Rank())); got != 102 {
			t.Errorf("rank %d: Bcast = %d, want 102", comm.Rank(), got)
		}
		// Exclusive prefix sum of 2^rank: rank r gets 2^r - 1.
		if got := ExclusiveScanSum(comm, int64(1)<<comm.Rank()); got != int64(1)<<comm.Rank()-1 {
			t.Errorf("rank %d: ExclusiveScanSum = %d, want %d",
				comm.Rank(), got, int64(1)<<comm.Rank()-1)
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPAllToAllInt64(t *testing.T) {
	const size = 3
	runTCP(t, size, func(comm Comm) error {
		out := make([][]int64, size)
		for q := 0; q < size; q++ {
			out[q] = []int64{int64(comm.Rank()), int64(q), int64(comm.Rank() * q)}
		}
		in := AllToAll(comm, out)
		for r := 0; r < size; r++ {
			want := []int64{int64(r), int64(comm.Rank()), int64(r * comm.Rank())}
			if !slices.Equal(in[r], want) {
				t.Errorf("rank %d from %d: got %v want %v", comm.Rank(), r, in[r], want)
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPAllToAllU64Chunked(t *testing.T) {
	// The chunked exchange over TCP: vectors beyond one chunk, plus empty
	// vectors, must reassemble exactly on every rank.
	const size = 3
	n := maxCollChunkWords + 1234
	runTCP(t, size, func(comm Comm) error {
		out := make([][]uint64, size)
		for q := 0; q < size; q++ {
			if q == (comm.Rank()+1)%size {
				continue // leave one destination empty
			}
			out[q] = make([]uint64, n)
			for i := range out[q] {
				out[q][i] = uint64(comm.Rank())<<48 | uint64(i)
			}
		}
		in := AllToAllU64(comm, out)
		for r := 0; r < size; r++ {
			if comm.Rank() == (r+1)%size {
				if len(in[r]) != 0 {
					t.Errorf("rank %d: expected empty vector from %d, got %d words",
						comm.Rank(), r, len(in[r]))
				}
				continue
			}
			if len(in[r]) != n {
				t.Errorf("rank %d: from %d got %d words, want %d", comm.Rank(), r, len(in[r]), n)
				continue
			}
			for i, v := range in[r] {
				if v != uint64(r)<<48|uint64(i) {
					t.Errorf("rank %d: from %d word %d = %#x", comm.Rank(), r, i, v)
					break
				}
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPScattervU64(t *testing.T) {
	const size = 4
	n := maxCollChunkWords + 77
	runTCP(t, size, func(comm Comm) error {
		var parts [][]uint64
		if comm.Rank() == 0 {
			parts = make([][]uint64, size)
			for q := 0; q < size; q++ {
				parts[q] = make([]uint64, n)
				for i := range parts[q] {
					parts[q][i] = uint64(q)<<32 | uint64(i)
				}
			}
		}
		got := ScattervU64(comm, 0, parts)
		if len(got) != n {
			t.Errorf("rank %d: got %d words, want %d", comm.Rank(), len(got), n)
			return nil
		}
		for i, v := range got {
			if v != uint64(comm.Rank())<<32|uint64(i) {
				t.Errorf("rank %d: word %d = %#x", comm.Rank(), i, v)
				break
			}
		}
		comm.Barrier()
		return nil
	})
}
