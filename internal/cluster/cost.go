package cluster

import "time"

// CostModel converts accounted communication (messages, bytes, barriers)
// into simulated wall-clock time on a physical cluster. The in-process
// runtime measures algorithmic work directly, but its communication is
// memcpy-fast; this model recovers the network component the paper's
// InfiniBand testbed would add, so elapsed-time *shapes* (Fig. 10) can be
// sanity-checked against a cluster profile without owning one.
//
// The alpha-beta model is standard: each message costs Latency, each byte
// costs 1/Bandwidth, and each barrier costs one log2(P) latency tree.
type CostModel struct {
	// Latency is the per-message cost (α). InfiniBand EDR ≈ 1µs; 10GbE ≈ 50µs.
	Latency time.Duration
	// BandwidthBytesPerSec is the per-link bandwidth (1/β).
	// InfiniBand EDR ≈ 12.5 GB/s; 10GbE ≈ 1.25 GB/s.
	BandwidthBytesPerSec float64
}

// InfiniBandEDR approximates the paper's interconnect (§7.1, Table 3).
func InfiniBandEDR() CostModel {
	return CostModel{Latency: time.Microsecond, BandwidthBytesPerSec: 12.5e9}
}

// TenGbE approximates a commodity datacenter network.
func TenGbE() CostModel {
	return CostModel{Latency: 50 * time.Microsecond, BandwidthBytesPerSec: 1.25e9}
}

// Estimate returns the simulated network time for the given totals. machines
// scales the barrier tree; barriers may be 0 when unknown.
func (m CostModel) Estimate(messages, bytes int64, barriers, machines int) time.Duration {
	if machines < 2 {
		return 0
	}
	d := time.Duration(messages) * m.Latency
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(bytes) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	depth := 0
	for n := 1; n < machines; n *= 2 {
		depth++
	}
	d += time.Duration(barriers) * time.Duration(depth) * m.Latency
	return d
}
