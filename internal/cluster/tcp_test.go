package cluster

import (
	"sync"
	"testing"
)

func init() { RegisterBody(Int64Body(0)); RegisterBody(Int64SliceBody(nil)) }

// runTCP spins up a router plus size nodes on localhost and runs fn on each.
func runTCP(t *testing.T, size int, fn func(Comm) error) {
	t.Helper()
	addr, wait, err := StartRouter("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node, err := DialTCP(addr, rank, size)
			if err != nil {
				errs[rank] = err
				return
			}
			if err := fn(node); err != nil {
				errs[rank] = err
			}
			errs[rank] = node.Close()
		}(rank)
	}
	wg.Wait()
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestTCPPointToPoint(t *testing.T) {
	runTCP(t, 3, func(comm Comm) error {
		if comm.Rank() == 0 {
			comm.Send(1, TagUser, Int64Body(11))
			comm.Send(2, TagUser, Int64Body(22))
			return nil
		}
		m := comm.Recv(TagUser)
		want := int64(11 * comm.Rank())
		if int64(m.Body.(Int64Body)) != want {
			t.Errorf("rank %d got %v want %d", comm.Rank(), m.Body, want)
		}
		return nil
	})
}

func TestTCPBarrierAndCollectives(t *testing.T) {
	runTCP(t, 4, func(comm Comm) error {
		comm.Barrier()
		if sum := AllGatherSum(comm, int64(comm.Rank())); sum != 6 {
			t.Errorf("rank %d: AllGatherSum = %d, want 6", comm.Rank(), sum)
		}
		vec := make([]int64, 4)
		vec[comm.Rank()] = 1
		out := AllGatherSumVec(comm, vec)
		for i, v := range out {
			if v != 1 {
				t.Errorf("AllGatherSumVec[%d] = %d", i, v)
			}
		}
		comm.Barrier()
		return nil
	})
}

func TestTCPLoopbackIsFree(t *testing.T) {
	runTCP(t, 2, func(comm Comm) error {
		comm.Send(comm.Rank(), TagUser, Int64Body(9))
		m := comm.Recv(TagUser)
		if int64(m.Body.(Int64Body)) != 9 {
			t.Error("loopback lost the message")
		}
		if comm.Stats().MessagesSent.Load() != 0 {
			t.Error("loopback should not count as communication")
		}
		comm.Barrier()
		return nil
	})
}
