package cluster

import (
	"sync/atomic"
	"testing"
)

func TestPointToPointDelivery(t *testing.T) {
	c := New(3)
	err := c.Run(func(comm Comm) error {
		if comm.Rank() == 0 {
			comm.Send(1, TagUser, Int64Body(42))
			comm.Send(2, TagUser, Int64Body(43))
		}
		if comm.Rank() > 0 {
			m := comm.Recv(TagUser)
			want := int64(41 + comm.Rank())
			if int64(m.Body.(Int64Body)) != want {
				t.Errorf("rank %d got %v, want %d", comm.Rank(), m.Body, want)
			}
			if m.From != 0 {
				t.Errorf("rank %d got From=%d", comm.Rank(), m.From)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvNDeterministicOrder(t *testing.T) {
	c := New(4)
	err := c.Run(func(comm Comm) error {
		for to := 0; to < comm.Size(); to++ {
			comm.Send(to, TagUser, Int64Body(comm.Rank()))
		}
		msgs := comm.RecvN(TagUser, comm.Size())
		for i, m := range msgs {
			if m.From != i {
				t.Errorf("rank %d slot %d: From=%d", comm.Rank(), i, m.From)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagFiltering(t *testing.T) {
	c := New(2)
	const tagA, tagB = TagUser, TagUser + 1
	err := c.Run(func(comm Comm) error {
		if comm.Rank() == 0 {
			comm.Send(1, tagA, Int64Body(1))
			comm.Send(1, tagB, Int64Body(2))
			return nil
		}
		// Receive B first even though A was sent first.
		if got := int64(comm.Recv(tagB).Body.(Int64Body)); got != 2 {
			t.Errorf("tagB = %d", got)
		}
		if got := int64(comm.Recv(tagA).Body.(Int64Body)); got != 1 {
			t.Errorf("tagA = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	c := New(8)
	var before, after atomic.Int64
	err := c.Run(func(comm Comm) error {
		before.Add(1)
		comm.Barrier()
		if before.Load() != 8 {
			t.Error("barrier released before all machines arrived")
		}
		comm.Barrier()
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 8 {
		t.Error("not all machines finished")
	}
}

func TestCollectives(t *testing.T) {
	c := New(5)
	err := c.Run(func(comm Comm) error {
		sum := AllGatherSum(comm, int64(comm.Rank()))
		if sum != 0+1+2+3+4 {
			t.Errorf("AllGatherSum = %d", sum)
		}
		max := AllGatherMax(comm, int64(comm.Rank()*10))
		if max != 40 {
			t.Errorf("AllGatherMax = %d", max)
		}
		vec := make([]int64, 5)
		vec[comm.Rank()] = int64(comm.Rank() + 1)
		out := AllGatherSumVec(comm, vec)
		for i, v := range out {
			if v != int64(i+1) {
				t.Errorf("AllGatherSumVec[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesSingleMachine(t *testing.T) {
	c := New(1)
	err := c.Run(func(comm Comm) error {
		if AllGatherSum(comm, 7) != 7 {
			t.Error("singleton sum")
		}
		if out := AllGatherSumVec(comm, []int64{1, 2}); out[1] != 2 {
			t.Error("singleton vec")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := New(2)
	err := c.Run(func(comm Comm) error {
		if comm.Rank() == 0 {
			comm.Send(1, TagUser, Int64Body(1)) // remote: counted
			comm.Send(0, TagUser, Int64Body(1)) // local: free
			comm.Recv(TagUser)
		} else {
			comm.Recv(TagUser)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalMessages(); got != 1 {
		t.Errorf("TotalMessages = %d, want 1 (local sends are free)", got)
	}
	if got := c.TotalBytes(); got != headerBytes+8 {
		t.Errorf("TotalBytes = %d, want %d", got, headerBytes+8)
	}
}

func TestTryRecvAll(t *testing.T) {
	c := New(2)
	err := c.Run(func(comm Comm) error {
		if comm.Rank() == 0 {
			comm.Send(1, TagUser, Int64Body(5))
			comm.Send(1, TagUser, Int64Body(6))
		}
		comm.Barrier()
		if comm.Rank() == 1 {
			msgs := comm.TryRecvAll(TagUser)
			if len(msgs) != 2 {
				t.Errorf("TryRecvAll returned %d messages", len(msgs))
			}
			if len(comm.TryRecvAll(TagUser)) != 0 {
				t.Error("second TryRecvAll should be empty")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
