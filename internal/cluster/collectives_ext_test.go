package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

// runAll drives fn on every machine of a fresh n-cluster and fails the test
// on any error.
func runAll(t *testing.T, n int, fn func(c Comm) error) {
	t.Helper()
	if err := New(n).Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherMin(t *testing.T) {
	runAll(t, 5, func(c Comm) error {
		got := AllGatherMin(c, int64(10-c.Rank()))
		if got != 6 {
			t.Errorf("rank %d: min %d, want 6", c.Rank(), got)
		}
		return nil
	})
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 4; root++ {
		root := root
		runAll(t, 4, func(c Comm) error {
			x := int64(-1)
			if c.Rank() == root {
				x = int64(100 + root)
			}
			if got := Bcast(c, root, x); got != int64(100+root) {
				t.Errorf("root %d rank %d: got %d", root, c.Rank(), got)
			}
			return nil
		})
	}
}

func TestGatherAndAllGather(t *testing.T) {
	runAll(t, 6, func(c Comm) error {
		vec := Gather(c, 2, int64(c.Rank()*c.Rank()))
		if c.Rank() == 2 {
			for r, v := range vec {
				if v != int64(r*r) {
					t.Errorf("gather[%d] = %d", r, v)
				}
			}
		} else if vec != nil {
			t.Errorf("rank %d: non-root got %v", c.Rank(), vec)
		}
		all := AllGather(c, int64(c.Rank()+1))
		for r, v := range all {
			if v != int64(r+1) {
				t.Errorf("allgather[%d] = %d at rank %d", r, v, c.Rank())
			}
		}
		return nil
	})
}

func TestExclusiveScanSum(t *testing.T) {
	runAll(t, 5, func(c Comm) error {
		// x_r = r+1 ⇒ scan at r = r(r+1)/2.
		got := ExclusiveScanSum(c, int64(c.Rank()+1))
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			t.Errorf("rank %d: scan %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestAllToAll(t *testing.T) {
	const n = 4
	runAll(t, n, func(c Comm) error {
		out := make([][]int64, n)
		for q := 0; q < n; q++ {
			out[q] = []int64{int64(c.Rank()), int64(q), int64(c.Rank() * q)}
		}
		in := AllToAll(c, out)
		for src := 0; src < n; src++ {
			want := []int64{int64(src), int64(c.Rank()), int64(src * c.Rank())}
			for j := range want {
				if in[src][j] != want[j] {
					t.Errorf("rank %d from %d: %v want %v", c.Rank(), src, in[src], want)
					break
				}
			}
		}
		return nil
	})
}

func TestAllGatherMaxVec(t *testing.T) {
	runAll(t, 4, func(c Comm) error {
		x := []int64{int64(c.Rank()), int64(-c.Rank()), 7}
		got := AllGatherMaxVec(c, x)
		want := []int64{3, 0, 7}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("rank %d: %v want %v", c.Rank(), got, want)
				break
			}
		}
		return nil
	})
}

func TestAllGatherAndOr(t *testing.T) {
	runAll(t, 4, func(c Comm) error {
		if AllGatherAnd(c, c.Rank() != 2) {
			t.Errorf("rank %d: AND should be false (rank 2 votes no)", c.Rank())
		}
		if !AllGatherAnd(c, true) {
			t.Errorf("rank %d: AND of all-true should be true", c.Rank())
		}
		if AllGatherOr(c, false) {
			t.Errorf("rank %d: OR of all-false should be false", c.Rank())
		}
		if !AllGatherOr(c, c.Rank() == 3) {
			t.Errorf("rank %d: OR should be true (rank 3 votes yes)", c.Rank())
		}
		return nil
	})
}

func TestExtCollectivesSingleMachine(t *testing.T) {
	runAll(t, 1, func(c Comm) error {
		if AllGatherMin(c, 9) != 9 || Bcast(c, 0, 4) != 4 || ExclusiveScanSum(c, 5) != 0 {
			t.Error("size-1 collectives must be identities")
		}
		if v := AllGather(c, 3); len(v) != 1 || v[0] != 3 {
			t.Errorf("AllGather size-1: %v", v)
		}
		return nil
	})
}

func TestQuickAllGatherSumVecMatchesLocalSum(t *testing.T) {
	f := func(vals [][4]int16, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		if len(vals) < n {
			return true
		}
		want := [4]int64{}
		for r := 0; r < n; r++ {
			for j := 0; j < 4; j++ {
				want[j] += int64(vals[r][j])
			}
		}
		ok := true
		err := New(n).Run(func(c Comm) error {
			x := make([]int64, 4)
			for j := 0; j < 4; j++ {
				x[j] = int64(vals[c.Rank()][j])
			}
			got := AllGatherSumVec(c, x)
			for j := 0; j < 4; j++ {
				if got[j] != want[j] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInstrumentedCountsPerTag(t *testing.T) {
	const tagA, tagB = TagUser, TagUser + 1
	runAll(t, 3, func(c Comm) error {
		w := Instrument(c)
		for q := 0; q < w.Size(); q++ {
			w.Send(q, tagA, Int64Body(1))
		}
		if w.Rank() == 0 {
			w.Send(1, tagB, Int64SliceBody{1, 2, 3})
		}
		w.RecvN(tagA, 3)
		if w.Rank() == 1 {
			w.Recv(tagB)
		}
		// Self-sends are free: 2 remote tagA messages each.
		if got := w.TagMessages(tagA); got != 2 {
			t.Errorf("rank %d: tagA msgs %d, want 2", w.Rank(), got)
		}
		if w.Rank() == 0 {
			if got := w.TagBytes(tagB); got != headerBytes+24 {
				t.Errorf("tagB bytes %d", got)
			}
		} else if got := w.TagMessages(tagB); got != 0 {
			t.Errorf("rank %d: tagB msgs %d, want 0", w.Rank(), got)
		}
		w.Barrier()
		return nil
	})
}

func TestChaosPreservesCollectiveResults(t *testing.T) {
	// The same collective sequence under Chaos must give identical results:
	// receivers re-sort by (From, Seq) and the wrapper preserves per-sender
	// order.
	runAll(t, 5, func(c Comm) error {
		w := NewChaos(c, int64(c.Rank())*31+7, 200*time.Microsecond)
		defer w.Close()
		for round := 0; round < 5; round++ {
			sum := AllGatherSum(w, int64(c.Rank()+round))
			want := int64(10 + 5*round)
			if sum != want {
				t.Errorf("round %d rank %d: sum %d, want %d", round, c.Rank(), sum, want)
			}
			vec := AllGatherSumVec(w, []int64{int64(c.Rank()), 1})
			if vec[0] != 10 || vec[1] != 5 {
				t.Errorf("round %d rank %d: vec %v", round, c.Rank(), vec)
			}
			w.Barrier()
		}
		return nil
	})
}
