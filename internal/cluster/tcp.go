package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: the same Comm contract as the in-process cluster, but each
// machine is its own OS process. A router in the rank-0 process accepts one
// connection per worker and forwards frames by destination rank, so workers
// need no mesh of connections. Payloads are gob-encoded Body values; register
// concrete body types with RegisterBody before dialing.
//
// This transport exists to demonstrate that the algorithms are written
// against message passing only (cmd/dneworker, examples/multiprocess); the
// in-process transport remains the default for experiments because it
// eliminates serialisation noise from measurements.
//
// Fault tolerance: with RouterOptions.MaxRejoins > 0 the router survives a
// worker death. The mesh is generational — when any worker connection dies
// mid-run the router tears the whole generation down (every surviving
// worker's read loop fails, so every blocked Recv panics *ConnLostError*),
// then re-accepts a full set of fresh hellos within RejoinWindow and starts
// forwarding again. Workers rejoin with DialTCPRetry and the checkpointing
// layer above (internal/dne) decides where to resume. Heartbeat frames
// (DialOptions.HeartbeatInterval, RouterOptions.HeartbeatTimeout) detect
// wedged-but-open peers: the router echoes each worker's heartbeat, both
// sides bound the silence they tolerate with read deadlines, and a peer
// silent past the bound is treated exactly like a closed one.

// RegisterBody registers a concrete Body implementation for gob transport.
func RegisterBody(b Body) { gob.Register(b) }

// frame is the unit forwarded by the router; Payload is an opaque
// gob-encoded bodyEnvelope so the router never needs body types.
type frame struct {
	From, To int
	Tag      Tag
	Seq      uint64
	Payload  []byte
	Hello    bool // first frame on a connection: From identifies the worker
	Bye      bool // worker is done; router closes after all byes
	Hb       bool // heartbeat; router echoes it back, never forwarded
}

// bodyEnvelope wraps the Body interface for gob.
type bodyEnvelope struct {
	B Body
}

// TCPNode is a Comm over the router.
type TCPNode struct {
	rank, size int
	conn       net.Conn
	enc        *gob.Encoder
	encMu      sync.Mutex
	box        *mailbox
	stats      *Stats
	seq        uint64
	stopWatch  func() bool // releases the context watchdog, if any
	hbStop     chan struct{}
	hbTimeout  time.Duration
	closeOnce  sync.Once
}

var _ Comm = (*TCPNode)(nil)

// RouterOptions configures StartRouterOpts. The zero value reproduces the
// fail-fast router: any dead worker connection tears the mesh down and the
// run is over.
type RouterOptions struct {
	// MaxRejoins is how many times the router will rebuild the mesh after a
	// worker connection dies mid-run. 0 = fail fast.
	MaxRejoins int
	// RejoinWindow bounds how long a rebuild waits for a complete set of
	// fresh hellos (including the restarted rank's). Defaults to 30s when
	// MaxRejoins > 0.
	RejoinWindow time.Duration
	// HeartbeatTimeout, when > 0, declares a worker connection dead after
	// this much silence. Workers must send heartbeats (DialOptions) at an
	// interval comfortably below it.
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives one line per mesh teardown/rebuild.
	Logf func(format string, args ...any)
}

// StartRouter listens on addr and forwards frames among size machines. It
// returns the listener address (useful with ":0") and a function that blocks
// until all machines have said goodbye. Fail-fast: equivalent to
// StartRouterOpts with a zero RouterOptions.
func StartRouter(addr string, size int) (string, func() error, error) {
	return StartRouterOpts(addr, size, RouterOptions{})
}

// routerPeer is one worker connection from the router's point of view.
type routerPeer struct {
	enc  *gob.Encoder
	mu   sync.Mutex
	conn net.Conn
}

func (p *routerPeer) send(f frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enc.Encode(f)
}

// StartRouterOpts listens on addr and forwards frames among size machines,
// rebuilding the mesh up to opt.MaxRejoins times when a worker connection
// dies mid-run (see the package comment on fault tolerance).
func StartRouterOpts(addr string, size int, opt RouterOptions) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: router listen: %w", err)
	}
	if opt.MaxRejoins > 0 && opt.RejoinWindow <= 0 {
		opt.RejoinWindow = 30 * time.Second
	}
	result := make(chan error, 1)
	go func() { result <- routerLoop(ln, size, opt) }()
	wait := func() error {
		err := <-result
		ln.Close()
		return err
	}
	return ln.Addr().String(), wait, nil
}

// routerLoop drives mesh generations until one finishes cleanly (all byes),
// the rejoin budget is exhausted, or a rebuild times out.
func routerLoop(ln net.Listener, size int, opt RouterOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for gen := 0; ; gen++ {
		peers, decs, ranks, err := acceptMesh(ln, size, gen, opt)
		if err != nil {
			return err
		}
		err = runGeneration(peers, decs, ranks, opt)
		if err == nil {
			return nil
		}
		if gen >= opt.MaxRejoins {
			return err
		}
		globalFT.meshRebuilds.Add(1)
		logf("cluster: router: mesh generation %d died (%v); waiting up to %v for %d workers to rejoin",
			gen, err, opt.RejoinWindow, size)
	}
}

// acceptMesh collects one hello per rank. For rebuild generations (gen > 0)
// the whole collection is bounded by opt.RejoinWindow and a later hello for
// an already-seen rank replaces the earlier connection (a worker may have
// abandoned a dial that was sitting in the listen backlog).
func acceptMesh(ln net.Listener, size, gen int, opt RouterOptions) ([]*routerPeer, []*gob.Decoder, []int, error) {
	var deadline time.Time
	if gen > 0 {
		deadline = time.Now().Add(opt.RejoinWindow)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline) // zero deadline = no deadline
		defer tl.SetDeadline(time.Time{})
	}
	peers := make([]*routerPeer, size)
	decoders := make([]*gob.Decoder, size)
	seen := 0
	closeAll := func() {
		for _, p := range peers {
			if p != nil {
				p.conn.Close()
			}
		}
	}
	for seen < size {
		conn, err := ln.Accept()
		if err != nil {
			closeAll()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, nil, nil, fmt.Errorf("cluster: router: mesh rebuild timed out after %v with %d/%d workers", opt.RejoinWindow, seen, size)
			}
			return nil, nil, nil, err
		}
		if !deadline.IsZero() {
			conn.SetReadDeadline(deadline)
		}
		dec := gob.NewDecoder(conn)
		var hello frame
		if err := dec.Decode(&hello); err != nil || !hello.Hello {
			conn.Close()
			closeAll()
			return nil, nil, nil, fmt.Errorf("cluster: router: bad hello: %v", err)
		}
		conn.SetReadDeadline(time.Time{})
		r := hello.From
		if r < 0 || r >= size {
			conn.Close()
			closeAll()
			return nil, nil, nil, fmt.Errorf("cluster: router: invalid rank %d", r)
		}
		if peers[r] != nil {
			if gen == 0 && opt.MaxRejoins == 0 {
				conn.Close()
				closeAll()
				return nil, nil, nil, fmt.Errorf("cluster: router: invalid or duplicate rank %d", r)
			}
			// Newest wins: the older connection is a stale dial the worker
			// abandoned before this one.
			peers[r].conn.Close()
			seen--
		}
		peers[r] = &routerPeer{enc: gob.NewEncoder(conn), conn: conn}
		decoders[r] = dec
		seen++
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = i
	}
	return peers, decoders, ranks, nil
}

// runGeneration forwards frames among one complete mesh until every worker
// says goodbye (returns nil) or any connection dies (tears the whole mesh
// down and returns the first error).
func runGeneration(peers []*routerPeer, decs []*gob.Decoder, ranks []int, opt RouterOptions) error {
	size := len(ranks)
	done := make(chan error, size)

	// closeAll tears the whole mesh down once any worker connection dies
	// mid-run. Closing every connection makes every surviving worker's read
	// loop fail, which fails its mailbox and wakes any blocked Recv — a dead
	// peer must crash the generation loudly, not leave the other ranks
	// waiting forever for frames that will never arrive.
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, p := range peers {
				if p != nil {
					p.conn.Close()
				}
			}
		})
	}

	forward := func(dec *gob.Decoder, rank int) {
		self := peers[rank]
		for {
			if opt.HeartbeatTimeout > 0 {
				self.conn.SetReadDeadline(time.Now().Add(opt.HeartbeatTimeout))
			}
			var f frame
			if err := dec.Decode(&f); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					globalFT.heartbeatTimeouts.Add(1)
					err = fmt.Errorf("cluster: router: rank %d silent past heartbeat timeout %v", rank, opt.HeartbeatTimeout)
				}
				closeAll()
				done <- fmt.Errorf("cluster: router: decode from %d: %w", rank, err)
				return
			}
			if f.Hb {
				// Echo so the worker's own silence bound is satisfied by a
				// healthy router even when no algorithm traffic flows.
				if err := self.send(frame{To: rank, Hb: true}); err != nil {
					closeAll()
					done <- fmt.Errorf("cluster: router: heartbeat echo to %d: %w", rank, err)
					return
				}
				continue
			}
			if f.Bye {
				done <- nil
				return
			}
			if err := peers[f.To].send(f); err != nil {
				closeAll()
				done <- fmt.Errorf("cluster: router: forward to %d: %w", f.To, err)
				return
			}
		}
	}
	for i := range decs {
		go forward(decs[i], ranks[i])
	}
	var firstErr error
	for i := 0; i < size; i++ {
		if err := <-done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Clean finish leaves the bye'd connections open; a failed one already
	// closed everything via closeAll.
	for _, p := range peers {
		p.conn.Close()
	}
	return firstErr
}

// DialOptions configures DialTCPOpts. The zero value is plain DialTCPContext
// behavior.
type DialOptions struct {
	// Dial replaces the TCP dial (tests, fault injection). Nil = net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// HeartbeatInterval, when > 0, sends a heartbeat frame this often so the
	// router can tell a wedged worker from an idle one.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout, when > 0, declares the router dead after this much
	// read silence (heartbeat echoes count). Set it to several intervals.
	HeartbeatTimeout time.Duration
}

// DialTCP connects a machine to the router.
func DialTCP(addr string, rank, size int) (*TCPNode, error) {
	return DialTCPContext(context.Background(), addr, rank, size)
}

// DialTCPContext is DialTCP bound to a context: when ctx is cancelled or
// its deadline passes, the node's connection is closed and every blocked
// Recv is woken with the context error (via the mailbox's failure path), so
// a dead or wedged peer can never hang this process past its deadline. The
// dial itself also honors ctx.
func DialTCPContext(ctx context.Context, addr string, rank, size int) (*TCPNode, error) {
	return DialTCPOpts(ctx, addr, rank, size, DialOptions{})
}

// DialTCPOpts is DialTCPContext with a replaceable dial function and
// optional heartbeats.
func DialTCPOpts(ctx context.Context, addr string, rank, size int, o DialOptions) (*TCPNode, error) {
	dial := o.Dial
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial router: %w", err)
	}
	n := &TCPNode{
		rank: rank, size: size,
		conn:      conn,
		enc:       gob.NewEncoder(conn),
		box:       newMailbox(),
		stats:     &Stats{},
		hbTimeout: o.HeartbeatTimeout,
	}
	if ctx.Done() != nil {
		n.stopWatch = context.AfterFunc(ctx, func() {
			n.box.fail(ctx.Err())
			n.conn.Close()
		})
	}
	if err := n.enc.Encode(frame{From: rank, Hello: true}); err != nil {
		n.release()
		conn.Close()
		return nil, fmt.Errorf("cluster: hello: %w", err)
	}
	if o.HeartbeatInterval > 0 {
		n.hbStop = make(chan struct{})
		go n.heartbeatLoop(o.HeartbeatInterval)
	}
	go n.readLoop()
	return n, nil
}

// release detaches the context watchdog and stops the heartbeat sender.
func (n *TCPNode) release() {
	if n.stopWatch != nil {
		n.stopWatch()
	}
	if n.hbStop != nil {
		n.closeOnce.Do(func() { close(n.hbStop) })
	}
}

// heartbeatLoop sends a heartbeat frame every interval until release. A send
// failure fails the mailbox (waking the machine goroutine wherever it is
// blocked) rather than panicking in this background goroutine.
func (n *TCPNode) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-t.C:
			n.encMu.Lock()
			err := n.enc.Encode(frame{From: n.rank, Hb: true})
			n.encMu.Unlock()
			if err != nil {
				n.box.fail(fmt.Errorf("cluster: heartbeat send: %w", err))
				return
			}
		}
	}
}

func (n *TCPNode) readLoop() {
	dec := gob.NewDecoder(n.conn)
	for {
		if n.hbTimeout > 0 {
			n.conn.SetReadDeadline(time.Now().Add(n.hbTimeout))
		}
		var f frame
		if err := dec.Decode(&f); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				globalFT.heartbeatTimeouts.Add(1)
				err = fmt.Errorf("cluster: router silent past heartbeat timeout %v", n.hbTimeout)
			}
			// Wake any blocked Recv: a dead router must fail the worker
			// loudly, not leave it waiting for frames that will never come.
			n.box.fail(err)
			return
		}
		if f.Hb {
			continue // echo of our own heartbeat; the read deadline is reset above
		}
		var env bodyEnvelope
		if err := gob.NewDecoder(bytes.NewReader(f.Payload)).Decode(&env); err != nil {
			n.box.fail(fmt.Errorf("cluster: decode body: %w", err))
			return
		}
		n.box.put(Message{From: f.From, To: f.To, Tag: f.Tag, Seq: f.Seq, Body: env.B})
	}
}

// Rank implements Comm.
func (n *TCPNode) Rank() int { return n.rank }

// Size implements Comm.
func (n *TCPNode) Size() int { return n.size }

// Stats implements Comm.
func (n *TCPNode) Stats() *Stats { return n.stats }

// Send implements Comm. A dead connection panics *ConnLostError*, the same
// signal a blocked Recv raises, so one recovery path (dne.recoverConnLost)
// covers both directions of the transport dying.
func (n *TCPNode) Send(to int, tag Tag, body Body) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(bodyEnvelope{B: body}); err != nil {
		panic(fmt.Sprintf("cluster: encode body: %v", err))
	}
	n.seq++
	f := frame{From: n.rank, To: to, Tag: tag, Seq: n.seq, Payload: payload.Bytes()}
	if to == n.rank {
		// Local loopback without a network round trip, like the in-process
		// transport (free).
		var env bodyEnvelope
		if err := gob.NewDecoder(bytes.NewReader(f.Payload)).Decode(&env); err != nil {
			panic(err)
		}
		n.box.put(Message{From: f.From, To: to, Tag: tag, Seq: f.Seq, Body: env.B})
		return
	}
	wire := int64(headerBytes + body.WireSize())
	n.stats.MessagesSent.Add(1)
	n.stats.BytesSent.Add(wire)
	globalObs.record(tag, n.rank, wire)
	n.encMu.Lock()
	err := n.enc.Encode(f)
	n.encMu.Unlock()
	if err != nil {
		err = fmt.Errorf("cluster: send to %d: %w", to, err)
		n.box.fail(err)
		panic(&ConnLostError{Tag: tag, Err: err})
	}
}

// Recv implements Comm.
func (n *TCPNode) Recv(tag Tag) Message { return n.box.take(tag) }

// RecvN implements Comm.
func (n *TCPNode) RecvN(tag Tag, k int) []Message {
	msgs := make([]Message, 0, k)
	for len(msgs) < k {
		msgs = append(msgs, n.box.take(tag))
	}
	sortMessages(msgs)
	return msgs
}

// TryRecvAll implements Comm.
func (n *TCPNode) TryRecvAll(tag Tag) []Message {
	msgs := n.box.takeAll(tag)
	sortMessages(msgs)
	return msgs
}

// Barrier implements Comm: workers report to rank 0 and wait for release.
func (n *TCPNode) Barrier() {
	if n.rank == 0 {
		for i := 1; i < n.size; i++ {
			n.Recv(tagBarrier)
		}
		for i := 1; i < n.size; i++ {
			n.Send(i, tagBarrier, Int64Body(1))
		}
		return
	}
	n.Send(0, tagBarrier, Int64Body(1))
	n.Recv(tagBarrier)
}

// Close says goodbye to the router and closes the connection.
func (n *TCPNode) Close() error {
	n.release()
	n.encMu.Lock()
	err := n.enc.Encode(frame{From: n.rank, Bye: true})
	n.encMu.Unlock()
	if err != nil {
		n.conn.Close()
		return err
	}
	return n.conn.Close()
}

// Abort closes the connection without a goodbye, as a crashed process
// would. Tests use it to simulate a rank dying mid-superstep; the
// fault-tolerant rejoin path uses it to discard a dead generation's node.
func (n *TCPNode) Abort() error {
	n.release()
	return n.conn.Close()
}
