package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCP transport: the same Comm contract as the in-process cluster, but each
// machine is its own OS process. A router in the rank-0 process accepts one
// connection per worker and forwards frames by destination rank, so workers
// need no mesh of connections. Payloads are gob-encoded Body values; register
// concrete body types with RegisterBody before dialing.
//
// This transport exists to demonstrate that the algorithms are written
// against message passing only (cmd/dneworker, examples/multiprocess); the
// in-process transport remains the default for experiments because it
// eliminates serialisation noise from measurements.

// RegisterBody registers a concrete Body implementation for gob transport.
func RegisterBody(b Body) { gob.Register(b) }

// frame is the unit forwarded by the router; Payload is an opaque
// gob-encoded bodyEnvelope so the router never needs body types.
type frame struct {
	From, To int
	Tag      Tag
	Seq      uint64
	Payload  []byte
	Hello    bool // first frame on a connection: From identifies the worker
	Bye      bool // worker is done; router closes after all byes
}

// bodyEnvelope wraps the Body interface for gob.
type bodyEnvelope struct {
	B Body
}

// TCPNode is a Comm over the router.
type TCPNode struct {
	rank, size int
	conn       net.Conn
	enc        *gob.Encoder
	encMu      sync.Mutex
	box        *mailbox
	stats      *Stats
	seq        uint64
	stopWatch  func() bool // releases the context watchdog, if any
}

var _ Comm = (*TCPNode)(nil)

// StartRouter listens on addr and forwards frames among size machines. It
// returns the listener address (useful with ":0") and a function that blocks
// until all machines have said goodbye.
func StartRouter(addr string, size int) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: router listen: %w", err)
	}
	type peer struct {
		enc  *gob.Encoder
		mu   sync.Mutex
		conn net.Conn
	}
	peers := make([]*peer, size)
	done := make(chan error, size+1)
	// fatal carries accept-phase failures (bad hello, duplicate rank): the
	// mesh never forms, so no byes will arrive and wait must not block on
	// them.
	fatal := make(chan error, 1)

	// closeAll tears the whole mesh down once any worker connection dies
	// mid-run. Closing every connection makes every surviving worker's read
	// loop fail, which fails its mailbox and wakes any blocked Recv — a dead
	// peer must crash the run loudly, not leave the other ranks waiting
	// forever for frames that will never arrive.
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, p := range peers {
				if p != nil {
					p.conn.Close()
				}
			}
		})
	}

	forward := func(dec *gob.Decoder, rank int) {
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				closeAll()
				done <- fmt.Errorf("cluster: router: decode from %d: %w", rank, err)
				return
			}
			if f.Bye {
				done <- nil
				return
			}
			p := peers[f.To]
			p.mu.Lock()
			err := p.enc.Encode(f)
			p.mu.Unlock()
			if err != nil {
				closeAll()
				done <- fmt.Errorf("cluster: router: forward to %d: %w", f.To, err)
				return
			}
		}
	}
	go func() {
		// Collect every worker's hello before forwarding anything: early
		// frames for not-yet-connected ranks simply sit in their sender's
		// TCP buffer until the mesh is complete.
		decs := make([]*gob.Decoder, 0, size)
		ranks := make([]int, 0, size)
		for i := 0; i < size; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fatal <- err
				return
			}
			dec := gob.NewDecoder(conn)
			var hello frame
			if err := dec.Decode(&hello); err != nil || !hello.Hello {
				conn.Close()
				fatal <- fmt.Errorf("cluster: router: bad hello: %v", err)
				return
			}
			if hello.From < 0 || hello.From >= size || peers[hello.From] != nil {
				conn.Close()
				fatal <- fmt.Errorf("cluster: router: invalid or duplicate rank %d", hello.From)
				return
			}
			peers[hello.From] = &peer{enc: gob.NewEncoder(conn), conn: conn}
			decs = append(decs, dec)
			ranks = append(ranks, hello.From)
		}
		for i := range decs {
			go forward(decs[i], ranks[i])
		}
	}()
	wait := func() error {
		var firstErr error
		for i := 0; i < size; i++ {
			select {
			case err := <-done:
				if err != nil && firstErr == nil {
					firstErr = err
				}
			case err := <-fatal:
				ln.Close()
				return err
			}
		}
		ln.Close()
		return firstErr
	}
	return ln.Addr().String(), wait, nil
}

// DialTCP connects a machine to the router.
func DialTCP(addr string, rank, size int) (*TCPNode, error) {
	return DialTCPContext(context.Background(), addr, rank, size)
}

// DialTCPContext is DialTCP bound to a context: when ctx is cancelled or
// its deadline passes, the node's connection is closed and every blocked
// Recv is woken with the context error (via the mailbox's failure path), so
// a dead or wedged peer can never hang this process past its deadline. The
// dial itself also honors ctx.
func DialTCPContext(ctx context.Context, addr string, rank, size int) (*TCPNode, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial router: %w", err)
	}
	n := &TCPNode{
		rank: rank, size: size,
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		box:   newMailbox(),
		stats: &Stats{},
	}
	if ctx.Done() != nil {
		n.stopWatch = context.AfterFunc(ctx, func() {
			n.box.fail(ctx.Err())
			n.conn.Close()
		})
	}
	if err := n.enc.Encode(frame{From: rank, Hello: true}); err != nil {
		n.release()
		conn.Close()
		return nil, fmt.Errorf("cluster: hello: %w", err)
	}
	go n.readLoop()
	return n, nil
}

// release detaches the context watchdog.
func (n *TCPNode) release() {
	if n.stopWatch != nil {
		n.stopWatch()
	}
}

func (n *TCPNode) readLoop() {
	dec := gob.NewDecoder(n.conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			// Wake any blocked Recv: a dead router must fail the worker
			// loudly, not leave it waiting for frames that will never come.
			n.box.fail(err)
			return
		}
		var env bodyEnvelope
		if err := gob.NewDecoder(bytes.NewReader(f.Payload)).Decode(&env); err != nil {
			n.box.fail(fmt.Errorf("cluster: decode body: %w", err))
			return
		}
		n.box.put(Message{From: f.From, To: f.To, Tag: f.Tag, Seq: f.Seq, Body: env.B})
	}
}

// Rank implements Comm.
func (n *TCPNode) Rank() int { return n.rank }

// Size implements Comm.
func (n *TCPNode) Size() int { return n.size }

// Stats implements Comm.
func (n *TCPNode) Stats() *Stats { return n.stats }

// Send implements Comm.
func (n *TCPNode) Send(to int, tag Tag, body Body) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(bodyEnvelope{B: body}); err != nil {
		panic(fmt.Sprintf("cluster: encode body: %v", err))
	}
	n.seq++
	f := frame{From: n.rank, To: to, Tag: tag, Seq: n.seq, Payload: payload.Bytes()}
	if to == n.rank {
		// Local loopback without a network round trip, like the in-process
		// transport (free).
		var env bodyEnvelope
		if err := gob.NewDecoder(bytes.NewReader(f.Payload)).Decode(&env); err != nil {
			panic(err)
		}
		n.box.put(Message{From: f.From, To: to, Tag: tag, Seq: f.Seq, Body: env.B})
		return
	}
	wire := int64(headerBytes + body.WireSize())
	n.stats.MessagesSent.Add(1)
	n.stats.BytesSent.Add(wire)
	globalObs.record(tag, n.rank, wire)
	n.encMu.Lock()
	err := n.enc.Encode(f)
	n.encMu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("cluster: send to %d: %v", to, err))
	}
}

// Recv implements Comm.
func (n *TCPNode) Recv(tag Tag) Message { return n.box.take(tag) }

// RecvN implements Comm.
func (n *TCPNode) RecvN(tag Tag, k int) []Message {
	msgs := make([]Message, 0, k)
	for len(msgs) < k {
		msgs = append(msgs, n.box.take(tag))
	}
	sortMessages(msgs)
	return msgs
}

// TryRecvAll implements Comm.
func (n *TCPNode) TryRecvAll(tag Tag) []Message {
	msgs := n.box.takeAll(tag)
	sortMessages(msgs)
	return msgs
}

// Barrier implements Comm: workers report to rank 0 and wait for release.
func (n *TCPNode) Barrier() {
	if n.rank == 0 {
		for i := 1; i < n.size; i++ {
			n.Recv(tagBarrier)
		}
		for i := 1; i < n.size; i++ {
			n.Send(i, tagBarrier, Int64Body(1))
		}
		return
	}
	n.Send(0, tagBarrier, Int64Body(1))
	n.Recv(tagBarrier)
}

// Close says goodbye to the router and closes the connection.
func (n *TCPNode) Close() error {
	n.release()
	n.encMu.Lock()
	err := n.enc.Encode(frame{From: n.rank, Bye: true})
	n.encMu.Unlock()
	if err != nil {
		n.conn.Close()
		return err
	}
	return n.conn.Close()
}

// Abort closes the connection without a goodbye, as a crashed process
// would. Tests use it to simulate a rank dying mid-superstep.
func (n *TCPNode) Abort() error {
	n.release()
	return n.conn.Close()
}
