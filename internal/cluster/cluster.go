// Package cluster is the message-passing substrate that stands in for the
// paper's MPI cluster (§7.1: up to 256 machines, IntelMPI). A Cluster hosts N
// logical machines; each machine is driven by one goroutine and owns a
// mailbox. Machines communicate only by sending tagged, sized messages, and
// synchronise with MPI-style collectives (Barrier, AllGatherSum, AllGatherMax)
// that are themselves built from messages so that communication volume is
// accounted exactly.
//
// Two implementations of the Comm interface exist: the in-process one in this
// file (goroutines + mailboxes) and a TCP one in tcp.go used by cmd/dneworker
// for true multi-process runs. Algorithms are written against Comm and cannot
// tell the difference.
package cluster

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Tag identifies a message class. Algorithms define their own tags; the
// collective implementations reserve the tags below.
type Tag uint8

// Reserved collective tags. User tags must be >= TagUser.
const (
	tagBarrier Tag = iota
	tagReduce
	tagBcast
	// tagCollCount / tagCollData frame the chunked large-payload collectives
	// (AllToAllU64, ScattervU64): counts travel separately from data so a
	// receiver never misreads an early data chunk as another sender's count.
	tagCollCount
	tagCollData
	// TagUser is the first tag available to algorithms.
	TagUser
)

// Body is a message payload. WireSize reports the number of bytes the payload
// would occupy on the wire and is used for communication accounting.
type Body interface {
	WireSize() int
}

// headerBytes is the accounted per-message framing overhead (from, to, tag,
// length), mirroring a compact RPC framing.
const headerBytes = 16

// Message is a delivered message.
type Message struct {
	From int
	To   int
	Tag  Tag
	Seq  uint64 // per-sender sequence number, for deterministic ordering
	Body Body
}

// Int64Body is a ready-made payload carrying a single int64 (collectives,
// counters).
type Int64Body int64

// WireSize implements Body.
func (Int64Body) WireSize() int { return 8 }

// Stats accumulates per-machine communication counters.
type Stats struct {
	MessagesSent atomic.Int64
	BytesSent    atomic.Int64
}

// Comm is the communicator handed to each machine. All methods are
// goroutine-safe with respect to other machines but a single machine must not
// call them concurrently with itself (same contract as an MPI rank).
type Comm interface {
	// Rank is this machine's id in [0, Size).
	Rank() int
	// Size is the number of machines.
	Size() int
	// Send delivers body to machine `to` under tag. Send never blocks.
	Send(to int, tag Tag, body Body)
	// Recv blocks until a message with the given tag is available and
	// returns it. Messages with other tags are retained.
	Recv(tag Tag) Message
	// RecvN receives exactly n messages with the given tag, returned in
	// deterministic (From, Seq) order.
	RecvN(tag Tag, n int) []Message
	// TryRecvAll returns all currently buffered messages with the tag, in
	// deterministic order, without blocking.
	TryRecvAll(tag Tag) []Message
	// Barrier blocks until every machine has entered the barrier.
	Barrier()
	// Stats returns this machine's communication counters.
	Stats() *Stats
}

// Cluster is an in-process set of machines.
type Cluster struct {
	n     int
	boxes []*mailbox
	stats []*Stats
	bar   *barrier
	seq   []atomic.Uint64
}

// New creates a cluster of n machines.
func New(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: size must be positive, got %d", n))
	}
	c := &Cluster{
		n:     n,
		boxes: make([]*mailbox, n),
		stats: make([]*Stats, n),
		bar:   newBarrier(n),
		seq:   make([]atomic.Uint64, n),
	}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
		c.stats[i] = &Stats{}
	}
	return c
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return c.n }

// Node returns the communicator for machine rank.
func (c *Cluster) Node(rank int) Comm {
	return &node{c: c, rank: rank}
}

// TotalBytes returns the total bytes sent across all machines.
func (c *Cluster) TotalBytes() int64 {
	var t int64
	for _, s := range c.stats {
		t += s.BytesSent.Load()
	}
	return t
}

// TotalMessages returns the total messages sent across all machines.
func (c *Cluster) TotalMessages() int64 {
	var t int64
	for _, s := range c.stats {
		t += s.MessagesSent.Load()
	}
	return t
}

// FailAll marks every machine's transport dead with err: each blocked or
// future Recv panics *ConnLostError*, exactly as when the TCP router tears a
// mesh down. Fault-injection tests use it so that one rank's injected death
// propagates to the whole in-process mesh the way a real one would.
func (c *Cluster) FailAll(err error) {
	for _, b := range c.boxes {
		b.fail(err)
	}
}

// Run starts fn on every machine concurrently and waits for all to return.
// The first error (by rank) is returned.
func (c *Cluster) Run(fn func(comm Comm) error) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for r := 0; r < c.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(c.Node(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type node struct {
	c    *Cluster
	rank int
}

func (n *node) Rank() int     { return n.rank }
func (n *node) Size() int     { return n.c.n }
func (n *node) Stats() *Stats { return n.c.stats[n.rank] }

func (n *node) Send(to int, tag Tag, body Body) {
	if to < 0 || to >= n.c.n {
		panic(fmt.Sprintf("cluster: send to invalid rank %d (size %d)", to, n.c.n))
	}
	msg := Message{From: n.rank, To: to, Tag: tag, Seq: n.c.seq[n.rank].Add(1), Body: body}
	if to != n.rank {
		// Local (same-machine) traffic is free, as in the paper's
		// communication-cost accounting.
		wire := int64(headerBytes + body.WireSize())
		n.Stats().MessagesSent.Add(1)
		n.Stats().BytesSent.Add(wire)
		globalObs.record(tag, n.rank, wire)
	}
	n.c.boxes[to].put(msg)
}

func (n *node) Recv(tag Tag) Message { return n.c.boxes[n.rank].take(tag) }
func (n *node) RecvN(tag Tag, k int) []Message {
	msgs := make([]Message, 0, k)
	for len(msgs) < k {
		msgs = append(msgs, n.c.boxes[n.rank].take(tag))
	}
	sortMessages(msgs)
	return msgs
}

func (n *node) TryRecvAll(tag Tag) []Message {
	msgs := n.c.boxes[n.rank].takeAll(tag)
	sortMessages(msgs)
	return msgs
}

func (n *node) Barrier() { n.c.bar.wait() }

func sortMessages(msgs []Message) {
	slices.SortFunc(msgs, func(a, b Message) int {
		if a.From != b.From {
			return cmp.Compare(a.From, b.From)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
}

// mailbox is an unbounded, tag-filterable message queue.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Message
	err  error // set by fail: the transport died
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg Message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// ConnLostError is the panic value raised by a blocked Recv when the
// transport dies underneath it (peer crash, router teardown, context
// cancellation). It panics rather than returns so the Comm contract stays
// value-based, but callers that own a whole machine loop can recover it and
// surface a normal error (dne does).
type ConnLostError struct {
	Tag Tag
	Err error
}

// Error implements error.
func (e *ConnLostError) Error() string {
	return fmt.Sprintf("cluster: recv tag %d: connection lost: %v", e.Tag, e.Err)
}

// Unwrap exposes the transport error (e.g. context.Canceled).
func (e *ConnLostError) Unwrap() error { return e.Err }

// take removes and returns the first message with the given tag, blocking
// until one arrives. If the transport has died (fail), take panics with a
// *ConnLostError instead of blocking forever — matching Send's
// panic-on-dead-connection contract.
func (m *mailbox) take(tag Tag) Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.msgs {
			if msg.Tag == tag {
				m.msgs = append(m.msgs[:i], m.msgs[i+1:]...)
				return msg
			}
		}
		if m.err != nil {
			panic(&ConnLostError{Tag: tag, Err: m.err})
		}
		m.cond.Wait()
	}
}

// fail marks the transport dead and wakes every blocked take. The first
// failure wins: the root cause (say, a cancelled context) must not be
// overwritten by the cascade it triggers (the closed-connection read error).
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// takeAll removes and returns all buffered messages with the given tag.
func (m *mailbox) takeAll(tag Tag) []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Message
	kept := m.msgs[:0]
	for _, msg := range m.msgs {
		if msg.Tag == tag {
			out = append(out, msg)
		} else {
			kept = append(kept, msg)
		}
	}
	m.msgs = kept
	return out
}

// barrier is a reusable N-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
