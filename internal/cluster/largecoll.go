package cluster

import "fmt"

// Large-payload collectives. The edge shuffle of the sharded data plane
// moves O(|E|/P) packed edges per rank per exchange — far beyond the scalar
// vectors the core collectives carry — so these stream their bodies in
// bounded chunks. Like every collective here they are built from
// point-to-point messages (bytes and message counts are accounted by Send)
// and behave identically on the in-process and gob-TCP transports. All
// machines must call the same collective in the same order.

// Uint64SliceBody carries a vector of packed uint64 words (edge keys,
// offsets). It is the payload type of the chunked collectives.
type Uint64SliceBody []uint64

// WireSize implements Body.
func (b Uint64SliceBody) WireSize() int { return 8 * len(b) }

// maxCollChunkWords bounds one data message of a chunked collective
// (256 KiB of payload): large exchanges stream in bounded frames instead of
// materializing one message per destination, so per-message buffers stay
// flat no matter how large the exchange is.
const maxCollChunkWords = 1 << 15

// collChunks returns how many data messages a vector of n words travels in.
func collChunks(n int64) int {
	return int((n + maxCollChunkWords - 1) / maxCollChunkWords)
}

// AllToAllU64 performs a personalized exchange of uint64 vectors: out[q] is
// this machine's vector for machine q; the result's element [q] is the
// vector machine q sent here. out must have length Size(). Counts are
// exchanged first, then each vector streams in chunks of at most
// maxCollChunkWords; per-sender FIFO order plus the (From, Seq) sort in
// RecvN reassembles every vector exactly as sent. The returned slices are
// freshly allocated; out is not retained.
func AllToAllU64(c Comm, out [][]uint64) [][]uint64 {
	size := c.Size()
	if len(out) != size {
		panic(fmt.Sprintf("cluster: AllToAllU64 out length %d must equal Size() %d", len(out), size))
	}
	rank := c.Rank()
	// The self-destined vector is copied locally: even transports that make
	// self-sends free still pay serialization for them, and a real
	// all-to-all never puts a rank's own data on the wire.
	for q := 0; q < size; q++ {
		if q != rank {
			c.Send(q, tagCollCount, Int64Body(len(out[q])))
		}
	}
	counts := make([]int64, size)
	counts[rank] = int64(len(out[rank]))
	for _, m := range c.RecvN(tagCollCount, size-1) {
		counts[m.From] = int64(m.Body.(Int64Body))
	}
	for q := 0; q < size; q++ {
		if q == rank {
			continue
		}
		for v := out[q]; len(v) > 0; {
			n := len(v)
			if n > maxCollChunkWords {
				n = maxCollChunkWords
			}
			c.Send(q, tagCollData, Uint64SliceBody(v[:n]))
			v = v[n:]
		}
	}
	in := make([][]uint64, size)
	totalMsgs := 0
	for q := 0; q < size; q++ {
		in[q] = make([]uint64, 0, counts[q])
		if q != rank {
			totalMsgs += collChunks(counts[q])
		}
	}
	in[rank] = append(in[rank], out[rank]...)
	for _, m := range c.RecvN(tagCollData, totalMsgs) {
		in[m.From] = append(in[m.From], m.Body.(Uint64SliceBody)...)
	}
	return in
}

// ScattervU64 distributes root's per-rank vectors: machine q receives
// parts[q]. Only root reads parts (it must have length Size() there); the
// bodies stream in bounded chunks like AllToAllU64. Every machine returns a
// freshly allocated copy of its part.
func ScattervU64(c Comm, root int, parts [][]uint64) []uint64 {
	size := c.Size()
	if c.Rank() == root {
		if len(parts) != size {
			panic(fmt.Sprintf("cluster: ScattervU64 parts length %d must equal Size() %d", len(parts), size))
		}
		for q := 0; q < size; q++ {
			if q == root {
				continue
			}
			c.Send(q, tagCollCount, Int64Body(len(parts[q])))
			for v := parts[q]; len(v) > 0; {
				n := len(v)
				if n > maxCollChunkWords {
					n = maxCollChunkWords
				}
				c.Send(q, tagCollData, Uint64SliceBody(v[:n]))
				v = v[n:]
			}
		}
		out := make([]uint64, len(parts[root]))
		copy(out, parts[root])
		return out
	}
	want := int64(c.Recv(tagCollCount).Body.(Int64Body))
	out := make([]uint64, 0, want)
	for int64(len(out)) < want {
		out = append(out, c.Recv(tagCollData).Body.(Uint64SliceBody)...)
	}
	return out
}
