package cluster

import (
	"slices"
	"sync"
	"testing"
)

// vectorFor builds a deterministic test vector from sender r to receiver q,
// sized so some exchanges cross the chunk boundary and others are empty.
func vectorFor(r, q, scale int) []uint64 {
	n := (r*7 + q*3) % 5 * scale
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(r)<<40 | uint64(q)<<20 | uint64(i)
	}
	return v
}

func TestAllToAllU64InProcess(t *testing.T) {
	for _, scale := range []int{1, 17, maxCollChunkWords/2 + 11} {
		const size = 4
		c := New(size)
		err := c.Run(func(comm Comm) error {
			out := make([][]uint64, size)
			for q := 0; q < size; q++ {
				out[q] = vectorFor(comm.Rank(), q, scale)
			}
			in := AllToAllU64(comm, out)
			for r := 0; r < size; r++ {
				want := vectorFor(r, comm.Rank(), scale)
				if !slices.Equal(in[r], want) {
					t.Errorf("scale %d rank %d: from %d got %d words, want %d",
						scale, comm.Rank(), r, len(in[r]), len(want))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllToAllU64ChunksLargeVectors(t *testing.T) {
	// A vector much larger than one chunk must arrive intact, and the
	// traffic must be split into multiple accounted messages.
	const size = 2
	n := 3*maxCollChunkWords + 5
	c := New(size)
	err := c.Run(func(comm Comm) error {
		out := make([][]uint64, size)
		for q := 0; q < size; q++ {
			out[q] = make([]uint64, n)
			for i := range out[q] {
				out[q][i] = uint64(comm.Rank()*1_000_000 + i)
			}
		}
		in := AllToAllU64(comm, out)
		other := 1 - comm.Rank()
		if len(in[other]) != n {
			t.Errorf("rank %d: got %d words, want %d", comm.Rank(), len(in[other]), n)
			return nil
		}
		for i, v := range in[other] {
			if v != uint64(other*1_000_000+i) {
				t.Errorf("rank %d: word %d = %d", comm.Rank(), i, v)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank sends 1 count + 4 data chunks to the other rank (self
	// traffic is free): 10 remote messages total.
	if got := c.TotalMessages(); got != 10 {
		t.Errorf("TotalMessages = %d, want 10 (chunking not applied?)", got)
	}
	wantBytes := int64(2) * (8 + int64(n)*8 + 5*headerBytes)
	if got := c.TotalBytes(); got != wantBytes {
		t.Errorf("TotalBytes = %d, want %d", got, wantBytes)
	}
}

func TestAllToAllU64BackToBack(t *testing.T) {
	// Two exchanges in a row must not bleed into each other (count frames
	// and data frames travel under different tags).
	const size = 3
	c := New(size)
	err := c.Run(func(comm Comm) error {
		for round := 0; round < 3; round++ {
			out := make([][]uint64, size)
			for q := 0; q < size; q++ {
				out[q] = []uint64{uint64(round), uint64(comm.Rank()), uint64(q)}
			}
			in := AllToAllU64(comm, out)
			for r := 0; r < size; r++ {
				want := []uint64{uint64(round), uint64(r), uint64(comm.Rank())}
				if !slices.Equal(in[r], want) {
					t.Errorf("round %d rank %d from %d: got %v want %v",
						round, comm.Rank(), r, in[r], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScattervU64InProcess(t *testing.T) {
	const size = 4
	const root = 2
	for _, scale := range []int{3, maxCollChunkWords + 9} {
		c := New(size)
		var mu sync.Mutex
		got := make([][]uint64, size)
		err := c.Run(func(comm Comm) error {
			var parts [][]uint64
			if comm.Rank() == root {
				parts = make([][]uint64, size)
				for q := 0; q < size; q++ {
					parts[q] = vectorFor(root, q, scale)
				}
			}
			out := ScattervU64(comm, root, parts)
			mu.Lock()
			got[comm.Rank()] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < size; q++ {
			if !slices.Equal(got[q], vectorFor(root, q, scale)) {
				t.Errorf("scale %d rank %d: wrong part (%d words)", scale, q, len(got[q]))
			}
		}
	}
}

func TestAllToAllU64SingleMachine(t *testing.T) {
	c := New(1)
	err := c.Run(func(comm Comm) error {
		in := AllToAllU64(comm, [][]uint64{{1, 2, 3}})
		if !slices.Equal(in[0], []uint64{1, 2, 3}) {
			t.Errorf("self exchange = %v", in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBytes() != 0 {
		t.Errorf("self exchange cost %d bytes, want 0", c.TotalBytes())
	}
}
