package streampart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "hdrf",
		Summary: "High-Degree Replicated First streaming edge partitioning (Petroni et al., CIKM'15)",
		Params: []methods.ParamSpec{
			{Name: "lambda", Kind: methods.Float, Default: 1.0, Doc: "balance weight λ of the C_bal term", Min: 0, Max: 1024, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "HDRF", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return HDRF{Lambda: spec.Float("lambda", 1.0), Seed: spec.Seed}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "sne",
		Summary: "streaming neighbor expansion: windowed closure sweeps with persistent replica sets (Zhang et al., KDD'17 §5)",
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "imbalance factor α ≥ 1", Min: 1, Max: 16, HasBounds: true},
			{Name: "windows", Kind: methods.Int, Default: 0, Doc: "stream window count (0 = partition count)", Min: 0, Max: 1 << 30, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "SNE", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return SNE{
					Alpha:   spec.Float("alpha", 1.1),
					Windows: spec.Int("windows", 0),
					Seed:    spec.Seed,
				}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "fennel",
		Summary: "FENNEL-style streaming edge partitioning with a convex load cost (Tsourakakis et al., WSDM'14)",
		Params: []methods.ParamSpec{
			{Name: "gamma", Kind: methods.Float, Default: 1.5, Doc: "load-cost exponent γ > 1", Min: 1.000001, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "FENNEL", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return Fennel{Gamma: spec.Float("gamma", 1.5), Seed: spec.Seed}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
}
