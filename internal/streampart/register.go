package streampart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "hdrf",
		Summary: "High-Degree Replicated First streaming edge partitioning (Petroni et al., CIKM'15)",
		Streams: true,
		Params: []methods.ParamSpec{
			{Name: "lambda", Kind: methods.Float, Default: 1.0, Doc: "balance weight λ of the C_bal term", Min: 0, Max: 1024, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "HDRF", Shuffle: true, Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return HDRF{Lambda: spec.Float("lambda", 1.0)}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "sne",
		Summary: "streaming neighbor expansion: windowed closure sweeps with persistent replica sets (Zhang et al., KDD'17 §5)",
		Streams: true,
		Params: []methods.ParamSpec{
			{Name: "alpha", Kind: methods.Float, Default: 1.1, Doc: "imbalance factor α ≥ 1", Min: 1, Max: 16, HasBounds: true},
			{Name: "windows", Kind: methods.Int, Default: 0, Doc: "stream window count (0 = partition count)", Min: 0, Max: 1 << 30, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "SNE", Shuffle: true, Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return SNE{
					Alpha:   spec.Float("alpha", 1.1),
					Windows: spec.Int("windows", 0),
				}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "fennel",
		Summary: "FENNEL-style streaming edge partitioning with a convex load cost (Tsourakakis et al., WSDM'14)",
		Streams: true,
		Params: []methods.ParamSpec{
			{Name: "gamma", Kind: methods.Float, Default: 1.5, Doc: "load-cost exponent γ > 1", Min: 1.000001, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "FENNEL", Shuffle: true, Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return Fennel{Gamma: spec.Float("gamma", 1.5)}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
}
