package streampart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/partition"
)

func testGraph() *graph.Graph { return gen.RMAT(11, 8, 6) }

type edgePartitioner interface {
	Name() string
	Partition(*graph.Graph, int) (*partition.Partitioning, error)
}

func run(t *testing.T, p edgePartitioner, parts int) partition.Quality {
	t.Helper()
	g := testGraph()
	pt, err := p.Partition(g, parts)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return pt.Measure(g)
}

func TestHDRFValidAndBalanced(t *testing.T) {
	q := run(t, HDRF{Seed: 1}, 16)
	if q.EdgeBalance > 1.2 {
		t.Errorf("HDRF edge balance %.3f too loose", q.EdgeBalance)
	}
}

func TestHDRFBeatsRandom(t *testing.T) {
	qh := run(t, HDRF{Seed: 1}, 16)
	qr := run(t, hashpart.Random{Seed: 1}, 16)
	if qh.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("HDRF RF %.3f should beat Random %.3f", qh.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestSNEValidAndCapped(t *testing.T) {
	g := testGraph()
	const parts = 16
	pt, err := SNE{Seed: 1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatal(err)
	}
	capEdges := int64(1.1*float64(g.NumEdges())/parts) + 1
	for q, c := range pt.EdgeCounts() {
		if c > capEdges {
			t.Errorf("partition %d has %d edges, cap %d", q, c, capEdges)
		}
	}
}

func TestSNEComparableToHDRF(t *testing.T) {
	// The paper's SNE clearly beats HDRF (Table 4); the windowed
	// simplification here only matches it (see the package comment), so the
	// invariant tested is "within 5% of HDRF and far better than Random".
	qs := run(t, SNE{Seed: 1}, 64)
	qh := run(t, HDRF{Seed: 1}, 64)
	if qs.ReplicationFactor > qh.ReplicationFactor*1.05 {
		t.Errorf("SNE RF %.3f should track HDRF %.3f within 5%%",
			qs.ReplicationFactor, qh.ReplicationFactor)
	}
	qr := run(t, hashpart.Random{Seed: 1}, 64)
	if qs.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("SNE RF %.3f should beat Random %.3f", qs.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestSNEWindowsParameter(t *testing.T) {
	g := testGraph()
	for _, w := range []int{1, 4, 1000000} {
		pt, err := SNE{Seed: 1, Windows: w}.Partition(g, 8)
		if err != nil {
			t.Fatalf("windows=%d: %v", w, err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("windows=%d: %v", w, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph()
	for _, p := range []edgePartitioner{HDRF{Seed: 4}, SNE{Seed: 4}} {
		a, _ := p.Partition(g, 8)
		b, _ := p.Partition(g, 8)
		for i := range a.Owner {
			if a.Owner[i] != b.Owner[i] {
				t.Fatalf("%s not deterministic", p.Name())
			}
		}
	}
}
