// Package streampart implements the streaming edge partitioners of Table 4:
// HDRF (Petroni et al., CIKM'15) and SNE, the streaming variant of neighbor
// expansion (Zhang et al., KDD'17). Both process the edge stream with bounded
// state and trade quality for memory, exactly the trade-off §7.5 measures.
package streampart

import (
	"context"
	"math/rand"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// HDRF is High-Degree Replicated First streaming partitioning. For each edge
// (u,v) it scores every partition q as
//
//	C_rep(q) = g(u,q)·(2−θu) + g(v,q)·(2−θv)
//	C_bal(q) = λ · (maxSize − size_q) / (ε + maxSize − minSize)
//
// with θu = δ(u)/(δ(u)+δ(v)) and g(x,q)=1 iff q ∈ A(x), and places the edge
// on the argmax — replicating the higher-degree endpoint first. We use exact
// degrees (available offline) rather than streamed partial degrees; this only
// helps HDRF, keeping the comparison conservative.
type HDRF struct {
	// Lambda is the balance weight λ (default 1.0).
	Lambda float64
	Seed   int64
}

// Name returns the display label.
func (HDRF) Name() string { return "HDRF" }

// Partition computes the assignment without cancellation support.
func (h HDRF) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return h.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the streaming core; it polls ctx every
// partition.CheckEvery edges.
func (h HDRF) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1.0
	}
	p := partition.New(numParts, g.NumEdges())
	replicas := make([]bitset.Set, g.NumVertices())
	for v := range replicas {
		replicas[v] = bitset.New(numParts)
	}
	sizes := make([]int64, numParts)
	var maxSize, minSize int64
	rng := rand.New(rand.NewSource(h.Seed))
	order := rng.Perm(int(g.NumEdges()))
	const eps = 1.0
	for n, i := range order {
		if n%partition.CheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := g.Edge(int64(i))
		du, dv := float64(g.Degree(e.U)), float64(g.Degree(e.V))
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU
		best := int32(0)
		bestScore := -1.0
		for q := 0; q < numParts; q++ {
			var rep float64
			if replicas[e.U].Has(q) {
				rep += 2 - thetaU
			}
			if replicas[e.V].Has(q) {
				rep += 2 - thetaV
			}
			bal := lambda * float64(maxSize-sizes[q]) / (eps + float64(maxSize-minSize))
			if s := rep + bal; s > bestScore {
				bestScore = s
				best = int32(q)
			}
		}
		p.Owner[i] = best
		replicas[e.U].Set(int(best))
		replicas[e.V].Set(int(best))
		sizes[best]++
		maxSize, minSize = sizes[0], sizes[0]
		for _, s := range sizes[1:] {
			if s > maxSize {
				maxSize = s
			}
			if s < minSize {
				minSize = s
			}
		}
	}
	return p, nil
}

// SNE is streaming neighbor expansion: the edge stream is consumed in
// windows small enough to hold in memory; Condition-(5) closure sweeps run
// inside each window and the per-vertex replica sets persist across windows
// so later windows extend earlier partitions. This follows the batched
// formulation of Zhang et al. §5 but replaces the in-window min-degree
// expansion with closure sweeps; as a result its quality tracks HDRF rather
// than clearly beating it as in the paper's Table 4 (recorded in
// EXPERIMENTS.md). Window count defaults to the partition count.
type SNE struct {
	Alpha   float64
	Windows int
	Seed    int64
}

// Name returns the display label.
func (SNE) Name() string { return "SNE" }

// Partition computes the assignment without cancellation support.
func (s SNE) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return s.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the streaming core; it polls ctx every
// partition.CheckEvery processed edges (closure sweeps included).
func (s SNE) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	windows := s.Windows
	if windows <= 0 {
		windows = numParts
	}
	totalE := g.NumEdges()
	if int64(windows) > totalE {
		windows = int(totalE)
	}
	p := partition.New(numParts, totalE)
	capEdges := int64(alpha * float64(totalE) / float64(numParts))
	if capEdges < 1 {
		capEdges = 1
	}
	sizes := make([]int64, numParts)
	replicas := make([]bitset.Set, g.NumVertices())
	for v := range replicas {
		replicas[v] = bitset.New(numParts)
	}
	scratch := bitset.New(numParts)

	rng := rand.New(rand.NewSource(s.Seed))
	order := rng.Perm(int(totalE))
	var processed int
	checkCtx := func() error {
		processed++
		if processed%partition.CheckEvery == 0 {
			return ctx.Err()
		}
		return nil
	}
	per := (len(order) + windows - 1) / windows
	for w := 0; w < windows; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(order) {
			hi = len(order)
		}
		if lo >= hi {
			break
		}
		window := order[lo:hi]
		// Within the window, repeatedly sweep Condition-(5) edges — both
		// endpoints already share a partition — into that partition; each
		// sweep's assignments enable the next, mimicking the closure that
		// full neighbor expansion reaches.
		rest := append([]int(nil), window...)
		for sweep := 0; sweep < 8 && len(rest) > 0; sweep++ {
			var defer2 []int
			assignedAny := false
			for _, i := range rest {
				if err := checkCtx(); err != nil {
					return nil, err
				}
				e := g.Edge(int64(i))
				if bitset.IntersectInto(scratch, replicas[e.U], replicas[e.V]) {
					if q := leastLoadedIn(scratch, sizes, capEdges); q >= 0 {
						assign(p, replicas, sizes, i, e, q)
						assignedAny = true
						continue
					}
				}
				defer2 = append(defer2, i)
			}
			rest = defer2
			if !assignedAny {
				break
			}
		}
		// Expansion step over the residual window: place each edge on the
		// least-loaded partition adjacent to the lower-degree endpoint
		// (extending that partition's frontier cheaply), else the globally
		// least-loaded partition.
		for _, i := range rest {
			if err := checkCtx(); err != nil {
				return nil, err
			}
			e := g.Edge(int64(i))
			lowDeg := e.U
			if g.Degree(e.V) < g.Degree(e.U) {
				lowDeg = e.V
			}
			q := int32(-1)
			if !replicas[lowDeg].Empty() {
				q = leastLoadedIn(replicas[lowDeg], sizes, capEdges)
			}
			if q < 0 {
				scratch.Reset()
				scratch.Or(replicas[e.U])
				scratch.Or(replicas[e.V])
				if !scratch.Empty() {
					q = leastLoadedIn(scratch, sizes, capEdges)
				}
			}
			if q < 0 {
				q = leastLoaded(sizes)
			}
			assign(p, replicas, sizes, i, e, q)
		}
	}
	return p, nil
}

func assign(p *partition.Partitioning, replicas []bitset.Set, sizes []int64, i int, e graph.Edge, q int32) {
	p.Owner[i] = q
	replicas[e.U].Set(int(q))
	replicas[e.V].Set(int(q))
	sizes[q]++
}

func leastLoadedIn(s bitset.Set, sizes []int64, capEdges int64) int32 {
	best := int32(-1)
	var bestSize int64
	s.ForEach(func(q int) {
		if sizes[q] >= capEdges {
			return
		}
		if best == -1 || sizes[q] < bestSize {
			best = int32(q)
			bestSize = sizes[q]
		}
	})
	return best
}

func leastLoaded(sizes []int64) int32 {
	best := int32(0)
	for q := 1; q < len(sizes); q++ {
		if sizes[q] < sizes[best] {
			best = int32(q)
		}
	}
	return best
}
