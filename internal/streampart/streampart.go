// Package streampart implements the streaming edge partitioners of Table 4:
// HDRF (Petroni et al., CIKM'15) and SNE, the streaming variant of neighbor
// expansion (Zhang et al., KDD'17). Both consume a graph.Source — an edge
// stream — with dense state bounded by |V|, never holding the edge set:
// exactly the O(chunk)-memory design the paper's §7.5 trade-off measures.
// Both run over a deterministic seeded stream shuffle (graph.Shuffled) —
// replica-greedy placement needs a randomized arrival order — and index
// their output by raw stream position, so the in-memory path (a thin
// adapter over graph.SourceOf) and a canonical shard-dir path produce
// bit-identical partitionings.
package streampart

import (
	"context"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// shuffled is the arrival-order decoration every replica-greedy core in
// this package runs under (see graph.Shuffled): legacy shims apply it here;
// the registry applies it via partition.StreamMethod.Shuffle.
func shuffled(core StreamFuncOf, seed int64) partition.StreamFunc {
	return func(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
		return core(ctx, graph.Shuffled(src, seed), numParts, st)
	}
}

// StreamFuncOf mirrors partition.StreamFunc for the package's concrete
// cores.
type StreamFuncOf = partition.StreamFunc

// HDRF is High-Degree Replicated First streaming partitioning. For each edge
// (u,v) it scores every partition q as
//
//	C_rep(q) = g(u,q)·(2−θu) + g(v,q)·(2−θv)
//	C_bal(q) = λ · (maxSize − size_q) / (ε + maxSize − minSize)
//
// with θu = δ(u)/(δ(u)+δ(v)) and g(x,q)=1 iff q ∈ A(x), and places the edge
// on the argmax — replicating the higher-degree endpoint first. Degrees come
// from a dedicated counting pass over the source (exact, "available
// offline") rather than streamed partial degrees; this only helps HDRF,
// keeping the comparison conservative.
type HDRF struct {
	// Lambda is the balance weight λ (default 1.0).
	Lambda float64
	// Seed drives the stream shuffle of the legacy Partition shim; under
	// the registry the shuffle uses spec.Seed instead.
	Seed int64
}

// Name returns the display label.
func (HDRF) Name() string { return "HDRF" }

// Partition is the deprecated v1 shim over the shuffled stream core.
func (h HDRF) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, shuffled(h.Stream, h.Seed))
}

// Stream is the streaming core: one degree-counting pass, then one
// assignment pass, with dense state (degrees, replica sets, sizes) bounded
// by |V| and |P|. It polls ctx every partition.CheckEvery edges.
func (h HDRF) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	lambda := h.Lambda
	if lambda == 0 {
		lambda = 1.0
	}
	deg, nv, ne, err := partition.DegreesAndCounts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	replicas := partition.NewReplicaSets(numParts, nv)
	sizes := make([]int64, numParts)
	var maxSize, minSize int64
	const eps = 1.0
	st.PeakMemBytes += replicas.Bytes() + int64(nv)*4 + int64(numParts)*8 + graph.SourceBufferBytes
	err = partition.EachEdge(ctx, src, func(pos int64, k uint64) error {
		u, v := graph.Vertex(k>>32), graph.Vertex(k)
		du, dv := float64(deg[u]), float64(deg[v])
		thetaU := du / (du + dv)
		thetaV := 1 - thetaU
		ru, rv := replicas.Row(u), replicas.Row(v)
		best := int32(0)
		bestScore := -1.0
		for q := 0; q < numParts; q++ {
			var rep float64
			if ru.Has(q) {
				rep += 2 - thetaU
			}
			if rv.Has(q) {
				rep += 2 - thetaV
			}
			bal := lambda * float64(maxSize-sizes[q]) / (eps + float64(maxSize-minSize))
			if s := rep + bal; s > bestScore {
				bestScore = s
				best = int32(q)
			}
		}
		p.Owner[pos] = best
		ru.Set(int(best))
		rv.Set(int(best))
		sizes[best]++
		maxSize, minSize = sizes[0], sizes[0]
		for _, s := range sizes[1:] {
			if s > maxSize {
				maxSize = s
			}
			if s < minSize {
				minSize = s
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// SNE is streaming neighbor expansion: the edge stream is consumed in
// windows small enough to hold in memory; Condition-(5) closure sweeps run
// inside each window and the per-vertex replica sets persist across windows
// so later windows extend earlier partitions. This follows the batched
// formulation of Zhang et al. §5 but replaces the in-window min-degree
// expansion with closure sweeps; as a result its quality tracks HDRF rather
// than clearly beating it as in the paper's Table 4 (recorded in
// EXPERIMENTS.md). Window count defaults to the partition count; memory is
// bounded by one window plus the |V|-dense state, not by |E|.
type SNE struct {
	Alpha   float64
	Windows int
	// Seed drives the stream shuffle of the legacy Partition shim (see
	// HDRF).
	Seed int64
}

// Name returns the display label.
func (SNE) Name() string { return "SNE" }

// Partition is the deprecated v1 shim over the shuffled stream core.
func (s SNE) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, shuffled(s.Stream, s.Seed))
}

// Stream is the streaming core; it polls ctx every partition.CheckEvery
// processed edges (closure sweeps included).
func (s SNE) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 1.1
	}
	deg, nv, ne, err := partition.DegreesAndCounts(ctx, src)
	if err != nil {
		return nil, err
	}
	windows := s.Windows
	if windows <= 0 {
		windows = numParts
	}
	if int64(windows) > ne {
		windows = int(ne)
	}
	p := partition.New(numParts, ne)
	capEdges := int64(alpha * float64(ne) / float64(numParts))
	if capEdges < 1 {
		capEdges = 1
	}
	sizes := make([]int64, numParts)
	replicas := partition.NewReplicaSets(numParts, nv)
	scratch := bitset.New(numParts)
	per := 0
	if windows > 0 {
		per = (int(ne) + windows - 1) / windows
	}
	if per < 1 {
		per = 1
	}
	st.PeakMemBytes += replicas.Bytes() + int64(nv)*4 + int64(numParts)*8 +
		int64(per)*(8+8) + graph.SourceBufferBytes

	var processed int
	checkCtx := func() error {
		processed++
		if processed%partition.CheckEvery == 0 {
			return ctx.Err()
		}
		return nil
	}

	// processWindow runs the closure sweeps and the expansion step over one
	// buffered window; poss carries each window edge's raw stream position.
	processWindow := func(window []uint64, poss []int64) error {
		// Within the window, repeatedly sweep Condition-(5) edges — both
		// endpoints already share a partition — into that partition; each
		// sweep's assignments enable the next, mimicking the closure that
		// full neighbor expansion reaches.
		rest := make([]int, len(window))
		for j := range rest {
			rest[j] = j
		}
		for sweep := 0; sweep < 8 && len(rest) > 0; sweep++ {
			var defer2 []int
			assignedAny := false
			for _, j := range rest {
				if err := checkCtx(); err != nil {
					return err
				}
				u, v := graph.Vertex(window[j]>>32), graph.Vertex(window[j])
				if bitset.IntersectInto(scratch, replicas.Row(u), replicas.Row(v)) {
					if q := leastLoadedIn(scratch, sizes, capEdges); q >= 0 {
						assign(p, replicas, sizes, poss[j], u, v, q)
						assignedAny = true
						continue
					}
				}
				defer2 = append(defer2, j)
			}
			rest = defer2
			if !assignedAny {
				break
			}
		}
		// Expansion step over the residual window: place each edge on the
		// least-loaded partition adjacent to the lower-degree endpoint
		// (extending that partition's frontier cheaply), else the globally
		// least-loaded partition.
		for _, j := range rest {
			if err := checkCtx(); err != nil {
				return err
			}
			u, v := graph.Vertex(window[j]>>32), graph.Vertex(window[j])
			lowDeg := u
			if deg[v] < deg[u] {
				lowDeg = v
			}
			q := int32(-1)
			if low := replicas.Row(lowDeg); !low.Empty() {
				q = leastLoadedIn(low, sizes, capEdges)
			}
			if q < 0 {
				scratch.Reset()
				scratch.Or(replicas.Row(u))
				scratch.Or(replicas.Row(v))
				if !scratch.Empty() {
					q = leastLoadedIn(scratch, sizes, capEdges)
				}
			}
			if q < 0 {
				q = leastLoaded(sizes)
			}
			assign(p, replicas, sizes, poss[j], u, v, q)
		}
		return nil
	}

	winKeys := make([]uint64, 0, per)
	winPos := make([]int64, 0, per)
	err = partition.EachEdge(ctx, src, func(pos int64, k uint64) error {
		winKeys = append(winKeys, k)
		winPos = append(winPos, pos)
		if len(winKeys) == per {
			if err := processWindow(winKeys, winPos); err != nil {
				return err
			}
			winKeys, winPos = winKeys[:0], winPos[:0]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(winKeys) > 0 {
		if err := processWindow(winKeys, winPos); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func assign(p *partition.Partitioning, replicas *partition.ReplicaSets, sizes []int64, pos int64, u, v graph.Vertex, q int32) {
	p.Owner[pos] = q
	replicas.Set(u, int(q))
	replicas.Set(v, int(q))
	sizes[q]++
}

func leastLoadedIn(s bitset.Set, sizes []int64, capEdges int64) int32 {
	best := int32(-1)
	var bestSize int64
	s.ForEach(func(q int) {
		if sizes[q] >= capEdges {
			return
		}
		if best == -1 || sizes[q] < bestSize {
			best = int32(q)
			bestSize = sizes[q]
		}
	})
	return best
}

func leastLoaded(sizes []int64) int32 {
	best := int32(0)
	for q := 1; q < len(sizes); q++ {
		if sizes[q] < sizes[best] {
			best = int32(q)
		}
	}
	return best
}
